package busprefetch

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus microbenchmarks of the simulator core. Each
// table/figure benchmark regenerates its experiment at reduced scale and
// reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper end to end. Absolute cycle counts depend on this
// reproduction's synthetic workloads; the *shape* — who wins, by roughly
// what factor, where the crossovers fall — is the result being regenerated
// (see EXPERIMENTS.md for the paper-vs-measured comparison).

import (
	"context"
	"fmt"
	"testing"

	"busprefetch/internal/experiments"
	"busprefetch/internal/memory"
	"busprefetch/internal/obs"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/sim"
	"busprefetch/internal/workload"
)

// benchScale keeps each experiment benchmark to a few seconds per iteration.
const benchScale = 0.2

func newBenchSuite() *experiments.Suite {
	return experiments.NewSuite(experiments.Config{Scale: benchScale, Seed: 1})
}

// BenchmarkTable1 regenerates the workload-characteristics table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("short table")
		}
	}
}

// BenchmarkFigure1 regenerates the miss-rate comparison at the 8-cycle
// transfer latency and reports mp3d's NP and PREF CPU miss rates.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "mp3d" && r.Strategy == prefetch.NP {
				b.ReportMetric(r.CPUMR, "mp3d-NP-cpuMR")
			}
			if r.Workload == "mp3d" && r.Strategy == prefetch.PREF {
				b.ReportMetric(r.TotalMR, "mp3d-PREF-totalMR")
			}
		}
	}
}

// BenchmarkTable2 regenerates the bus-utilization table and reports the
// mp3d/PREF utilization at the 8-cycle transfer.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "mp3d" && r.Strategy == prefetch.PREF && r.Transfer == 8 {
				b.ReportMetric(r.BusUtil, "mp3d-PREF-busutil-T8")
			}
		}
	}
}

// BenchmarkFigure2 regenerates the execution-time sweep and reports the
// best and worst relative times across all workloads and strategies — the
// paper's headline "speedups no greater than X, degradations up to Y".
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		best, worst := 1.0, 1.0
		for _, r := range rows {
			if r.RelTime < best {
				best = r.RelTime
			}
			if r.RelTime > worst {
				worst = r.RelTime
			}
		}
		b.ReportMetric(best, "best-rel-time")
		b.ReportMetric(worst, "worst-rel-time")
	}
}

// BenchmarkUtilization regenerates the §4.2 processor-utilization numbers.
func BenchmarkUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Utilization()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "water" {
				b.ReportMetric(r.FastBus, "water-util-T4")
			}
			if r.Workload == "mp3d" {
				b.ReportMetric(r.FastBus, "mp3d-util-T4")
			}
		}
	}
}

// BenchmarkFigure3 regenerates the CPU-miss component breakdown and reports
// pverify's invalidation share under NP.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "pverify" && r.Strategy == prefetch.NP {
				total := 0.0
				for _, v := range r.Components {
					total += v
				}
				inval := r.Components[sim.InvalNotPref] + r.Components[sim.InvalPref]
				if total > 0 {
					b.ReportMetric(inval/total, "pverify-inval-share")
				}
			}
		}
	}
}

// BenchmarkTable3 regenerates the invalidation / false-sharing rates.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "mp3d" {
				b.ReportMetric(r.FSShare, "mp3d-FS-share")
			}
		}
	}
}

// BenchmarkTable4 regenerates the restructured-program miss rates and
// reports topopt's false-sharing reduction factor.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		var origFS, restrFS float64
		for _, r := range rows {
			if r.Workload == "topopt" && r.Strategy == prefetch.NP {
				if r.Restructured {
					restrFS = r.FalseShareMR
				} else {
					origFS = r.FalseShareMR
				}
			}
		}
		if restrFS > 0 {
			b.ReportMetric(origFS/restrFS, "topopt-FS-reduction")
		}
	}
}

// BenchmarkTable5 regenerates the restructured relative execution times and
// reports how close PREF gets to PWS after restructuring (the paper's
// conclusion: they converge).
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Table5()
		if err != nil {
			b.Fatal(err)
		}
		var pref, pws float64
		for _, r := range rows {
			if r.Workload == "pverify" && r.Transfer == 8 {
				switch r.Strategy {
				case prefetch.PREF:
					pref = r.RelTime
				case prefetch.PWS:
					pws = r.RelTime
				}
			}
		}
		if pws > 0 {
			b.ReportMetric(pref/pws, "pverify-PREF-over-PWS")
		}
	}
}

// BenchmarkAblations regenerates the configuration-sensitivity studies the
// paper describes in prose (cache size, line size, victim cache, protocol,
// prefetch placement) and reports their headline deltas.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		cacheRows, err := s.AblationCacheSize(context.Background(), "mp3d", []int{16, 128})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cacheRows[1].InvalShare-cacheRows[0].InvalShare, "inval-share-gain-128KB")
		lineRows, err := s.AblationLineSize(context.Background(), "mp3d", []int{16, 64})
		if err != nil {
			b.Fatal(err)
		}
		if lineRows[0].FSMR > 0 {
			b.ReportMetric(lineRows[1].FSMR/lineRows[0].FSMR, "FS-growth-64B")
		}
		placeRows, err := s.AblationPrefetchPlacement(context.Background(), "mp3d")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(placeRows[2].RelTime-placeRows[1].RelTime, "buffer-vs-cache-gap")
	}
}

// BenchmarkSimulator measures raw simulation throughput (events/sec) on the
// mp3d workload — the performance of the Charlie-analogue core.
func BenchmarkSimulator(b *testing.B) {
	w, err := workload.ByName("mp3d")
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := w.Generate(workload.Params{Scale: 0.2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Events()*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkObsOverhead measures the observability recorder's cost on the
// BenchmarkSimulator workload at each recording level. "disabled" is the
// default everywhere (the suite grid, the goldens, the bench report) and is
// required to stay within 2% of BenchmarkSimulator — the hot paths guard
// every hook behind a nil check, and this benchmark is the regression gate
// for that guarantee. Compare with:
//
//	go test -bench 'BenchmarkSimulator$|BenchmarkObsOverhead' -count 10
func BenchmarkObsOverhead(b *testing.B) {
	w, err := workload.ByName("mp3d")
	if err != nil {
		b.Fatal(err)
	}
	base, _, err := w.Generate(workload.Params{Scale: 0.2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	tr, err := prefetch.Annotate(base, prefetch.Options{Strategy: prefetch.PREF, Geometry: cfg.Geometry})
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		rec  func() *obs.Recorder
	}{
		{"disabled", func() *obs.Recorder { return nil }},
		{"summary", func() *obs.Recorder { return obs.New(tr.Procs(), obs.Options{}) }},
		{"spans", func() *obs.Recorder { return obs.New(tr.Procs(), obs.Options{Spans: true}) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runCfg := cfg
				runCfg.Obs = bc.rec()
				if _, err := sim.Run(runCfg, tr); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.Events()*b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkOnlineOverhead measures the online-prefetcher kernel's cost on
// the BenchmarkSimulator workload (the bare demand stream an online run
// replays). "none" is the oracle path — no engine configured — and is the
// regression gate for the zero-overhead-when-disabled guarantee: every
// online hook hides behind a nil engine check, so its ns/op must track
// BenchmarkSimulator (CI gates it against bench/baseline.txt). The engine
// variants price each training structure's per-reference Observe cost.
// Compare with:
//
//	go test -bench 'BenchmarkSimulator$|BenchmarkOnlineOverhead' -count 10
func BenchmarkOnlineOverhead(b *testing.B) {
	w, err := workload.ByName("mp3d")
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := w.Generate(workload.Params{Scale: 0.2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	for _, bc := range []struct {
		name   string
		online prefetch.OnlineConfig
	}{
		{"none", prefetch.OnlineConfig{}},
		{"stride", prefetch.OnlineConfig{Kind: prefetch.Stride, Strategy: prefetch.PREF}},
		{"temporal", prefetch.OnlineConfig{Kind: prefetch.Temporal, Strategy: prefetch.PREF}},
		{"pointer", prefetch.OnlineConfig{Kind: prefetch.Pointer, Strategy: prefetch.PREF}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runCfg := cfg
				runCfg.Online = bc.online
				if _, err := sim.Run(runCfg, tr); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.Events()*b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkAnnotate measures offline prefetch-insertion throughput.
func BenchmarkAnnotate(b *testing.B) {
	w, err := workload.ByName("pverify")
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := w.Generate(workload.Params{Scale: 0.2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	geom := memory.DefaultGeometry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prefetch.Annotate(tr, prefetch.Options{Strategy: prefetch.PWS, Geometry: geom}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration measures workload generator throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	for _, name := range []string{"topopt", "mp3d", "water"} {
		b.Run(name, func(b *testing.B) {
			w, err := workload.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, _, err := w.Generate(workload.Params{Scale: 0.2, Seed: int64(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStrategySweep runs all five strategies on one workload (the
// shape of Figure 2's per-workload panel) and reports each relative time.
func BenchmarkStrategySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := Compare(RunSpec{Workload: "pverify", Transfer: 4, Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Strategy != "NP" {
				b.ReportMetric(r.RelativeTime, fmt.Sprintf("rel-%s", r.Strategy))
			}
		}
	}
}
