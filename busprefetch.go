// Package busprefetch reproduces Tullsen & Eggers, "Limitations of Cache
// Prefetching on a Bus-Based Multiprocessor" (ISCA 1993): a trace-driven
// simulation study of compiler-directed cache prefetching on a bus-based
// shared-memory multiprocessor.
//
// The package is the public facade over the full system:
//
//   - five synthetic parallel workloads standing in for the paper's traced
//     programs (Topopt, Mp3d, LocusRoute, Pverify, Water);
//   - an offline oracle prefetch inserter implementing the paper's five
//     disciplines (NP, PREF, EXCL, LPD, PWS);
//   - a cycle-based multiprocessor simulator with snooping caches under a
//     pluggable coherence protocol (Illinois, MSI, or Dragon write-update),
//     a contended split-transaction bus, lockup-free prefetching, and
//     lock/barrier-aware trace replay;
//   - the paper's full metric set: execution time, total / CPU / adjusted
//     miss rates, the Figure 3 miss-component taxonomy, false sharing, bus
//     and processor utilization.
//
// # Quick start
//
//	m, err := busprefetch.Run(busprefetch.RunSpec{
//		Workload: "mp3d",
//		Strategy: "PREF",
//		Transfer: 8,
//	})
//	if err != nil { ... }
//	fmt.Printf("CPU miss rate %.4f, bus utilization %.2f\n",
//		m.CPUMissRate, m.BusUtilization)
//
// Compare strategies the way the paper does (execution time relative to no
// prefetching on the same architecture) with Compare.
package busprefetch

import (
	"context"
	"fmt"

	"busprefetch/internal/coherence"
	"busprefetch/internal/interconnect"
	"busprefetch/internal/memory"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/sim"
	"busprefetch/internal/workload"
)

// Strategies lists the paper's five prefetch disciplines in presentation
// order: "NP", "PREF", "EXCL", "LPD", "PWS".
func Strategies() []string {
	var out []string
	for _, s := range prefetch.Strategies() {
		out = append(out, s.String())
	}
	return out
}

// WorkloadInfo describes one of the five workloads (the paper's Table 1).
type WorkloadInfo struct {
	// Name is the canonical workload name ("topopt", "mp3d", "locus",
	// "pverify", "water").
	Name string
	// Description is a one-line summary.
	Description string
	// DefaultProcs is the process count used when RunSpec.Procs is zero.
	DefaultProcs int
}

// Workloads lists the five workloads in the paper's order.
func Workloads() []WorkloadInfo {
	var out []WorkloadInfo
	for _, w := range workload.All() {
		out = append(out, WorkloadInfo{Name: w.Name, Description: w.Description, DefaultProcs: w.DefaultProcs})
	}
	return out
}

// RunSpec configures one simulation.
type RunSpec struct {
	// Workload is one of the names returned by Workloads. Required.
	Workload string
	// Strategy is one of "NP", "PREF", "EXCL", "LPD", "PWS" (case
	// insensitive). Empty means NP.
	Strategy string
	// Prefetcher selects how prefetches are decided: "oracle" (the default,
	// the paper's offline annotator with perfect future knowledge) or one of
	// the online engines — "stride", "temporal", "pointer" — which train on
	// the demand stream during the run and issue prefetches at simulation
	// time under the selected Strategy. Case insensitive.
	Prefetcher string
	// Transfer is the contended data-transfer latency in cycles (the paper
	// sweeps 4-32). Zero selects 8.
	Transfer int
	// MemLatency is the total memory latency in cycles; zero selects the
	// paper's 100.
	MemLatency int
	// Procs overrides the workload's process count (0 = default).
	Procs int
	// Scale multiplies trace length (0 = 1.0, roughly 10^5 references per
	// process).
	Scale float64
	// Seed seeds the deterministic workload generator (0 = 1).
	Seed int64
	// Restructured uses the false-sharing-restructured data layout
	// (meaningful for topopt and pverify, the programs the paper
	// restructures).
	Restructured bool
	// Distance overrides the prefetch distance in estimated CPU cycles
	// (0 = the strategy default: 100, or 400 for LPD).
	Distance int
	// CacheKB and LineBytes override the cache geometry (0 = the paper's
	// 32 KB direct-mapped cache with 32-byte lines).
	CacheKB   int
	LineBytes int
	// Protocol selects the coherence protocol: "illinois" (default, the
	// paper's), "msi" (the ablation without the private-clean state), or
	// "dragon" (write-update: updates broadcast instead of invalidating).
	Protocol string
	// VictimCacheLines adds a fully-associative victim cache of that many
	// lines behind each data cache (0 = none) — the paper's §4.3
	// suggestion for prefetch-induced conflict misses.
	VictimCacheLines int
	// BufferPrefetch routes prefetches into a non-snooping FIFO buffer
	// instead of the cache (the §3.1 alternative the paper rejects).
	// Write-shared lines are automatically excluded from prefetching, as
	// the buffer's correctness requires.
	BufferPrefetch bool
	// Interconnect selects the fabric: "bus" (default, the paper's single
	// split-transaction bus), "multibus" (address-interleaved data buses),
	// or "directory" (point-to-point with a home-node lookup latency). Case
	// insensitive.
	Interconnect string
	// Buses sets the link count for multibus/directory fabrics (0 = the
	// fabric default: 2 buses, or one directory link per processor).
	Buses int
	// Discipline selects the bus arbitration order: "priority" (default,
	// the paper's demand > prefetch > writeback) or "fcfs". Case
	// insensitive.
	Discipline string
}

func (s RunSpec) normalize() (RunSpec, error) {
	if s.Workload == "" {
		return s, fmt.Errorf("busprefetch: RunSpec.Workload is required")
	}
	if s.Strategy == "" {
		s.Strategy = "NP"
	}
	if s.Prefetcher == "" {
		s.Prefetcher = "oracle"
	}
	if s.Interconnect == "" {
		s.Interconnect = "bus"
	}
	if s.Discipline == "" {
		s.Discipline = "priority"
	}
	if s.Transfer == 0 {
		s.Transfer = 8
	}
	if s.MemLatency == 0 {
		s.MemLatency = 100
	}
	if s.Scale == 0 {
		s.Scale = 1.0
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.CacheKB == 0 {
		s.CacheKB = 32
	}
	if s.LineBytes == 0 {
		s.LineBytes = 32
	}
	return s, nil
}

// SpecString returns the canonical one-line form of the spec: defaults
// filled in, names parsed to their canonical case, every field that
// determines the simulation's result included. Two specs with equal
// SpecStrings produce byte-identical results (runs are deterministic in the
// spec), which is what lets the experiment server key its content-addressed
// result store on it — alongside the build revision — and serve a cached
// result to any client that resubmits the spec. Invalid specs (unknown
// workload names excepted, which fail at generation) return the parse error
// a Run of the same spec would.
func (s RunSpec) SpecString() (string, error) {
	s, err := s.normalize()
	if err != nil {
		return "", err
	}
	strat, err := prefetch.ParseStrategy(s.Strategy)
	if err != nil {
		return "", err
	}
	pf, err := prefetch.ParsePrefetcher(s.Prefetcher)
	if err != nil {
		return "", err
	}
	// Run leaves the simulator's default (Illinois) in place for an empty
	// Protocol; the canonical form names it explicitly.
	if s.Protocol == "" {
		s.Protocol = "illinois"
	}
	proto, err := coherence.Parse(s.Protocol)
	if err != nil {
		return "", err
	}
	ic, err := interconnect.ParseConfig(s.Interconnect, s.Buses, s.Discipline)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("wl=%s|strat=%s|pf=%s|t=%d|mem=%d|procs=%d|scale=%g|seed=%d|restr=%t|dist=%d|cache=%d|line=%d|proto=%s|victim=%d|buffer=%t|ic=%s",
		s.Workload, strat, pf, s.Transfer, s.MemLatency, s.Procs, s.Scale, s.Seed,
		s.Restructured, s.Distance, s.CacheKB, s.LineBytes, proto, s.VictimCacheLines,
		s.BufferPrefetch, ic.String()), nil
}

// MissComponents is the paper's Figure 3 taxonomy, as rates per demand
// reference.
type MissComponents struct {
	NonSharingNotPrefetched   float64
	NonSharingPrefetched      float64
	InvalidationNotPrefetched float64
	InvalidationPrefetched    float64
	PrefetchInProgress        float64
}

// Metrics is the outcome of one simulation, exposing every metric the paper
// reports.
type Metrics struct {
	// Workload, Strategy and Transfer echo the spec.
	Workload string
	Strategy string
	Transfer int

	// Cycles is the parallel execution time in CPU cycles.
	Cycles uint64
	// DemandRefs is the number of demand references (miss-rate denominator).
	DemandRefs uint64

	// CPUMissRate counts all demand misses (including prefetch-in-progress)
	// per demand reference. AdjustedCPUMissRate excludes prefetch-in-
	// progress; TotalMissRate counts every memory fetch, demand or prefetch.
	CPUMissRate         float64
	AdjustedCPUMissRate float64
	TotalMissRate       float64

	// InvalidationMissRate and FalseSharingMissRate follow the paper's
	// Table 3 definitions.
	InvalidationMissRate float64
	FalseSharingMissRate float64

	// Components is the Figure 3 breakdown.
	Components MissComponents

	// BusUtilization is the contended resource's busy fraction;
	// ProcessorUtilization is the mean CPU busy fraction.
	BusUtilization       float64
	ProcessorUtilization float64

	// PrefetchesIssued counts prefetch instructions executed;
	// PrefetchOverhead is prefetches per demand reference (the instruction
	// overhead the annotation added). Both are zero under an online
	// prefetcher, whose stream carries no prefetch instructions.
	PrefetchesIssued uint64
	PrefetchOverhead float64

	// OnlinePrefetches counts bus fetches initiated by an online engine
	// (zero under the oracle).
	OnlinePrefetches uint64

	// BusOps is the total number of bus transactions (fills, invalidations
	// and writebacks).
	BusOps uint64
}

func metricsFrom(spec RunSpec, res *sim.Result) *Metrics {
	m := &Metrics{
		Workload:             spec.Workload,
		Strategy:             spec.Strategy,
		Transfer:             spec.Transfer,
		Cycles:               res.Cycles,
		DemandRefs:           res.Counters.DemandRefs(),
		CPUMissRate:          res.CPUMissRate(),
		AdjustedCPUMissRate:  res.AdjustedCPUMissRate(),
		TotalMissRate:        res.TotalMissRate(),
		InvalidationMissRate: res.InvalidationMissRate(),
		FalseSharingMissRate: res.FalseSharingMissRate(),
		BusUtilization:       res.BusUtilization(),
		ProcessorUtilization: res.MeanProcUtilization(),
		PrefetchesIssued:     res.Counters.PrefetchesIssued,
		PrefetchOverhead:     overheadFrom(res),
		OnlinePrefetches:     res.Counters.OnlineIssued,
		BusOps:               res.Bus.TotalOps(),
	}
	m.Components = MissComponents{
		NonSharingNotPrefetched:   res.MissClassRate(sim.NonSharingNotPref),
		NonSharingPrefetched:      res.MissClassRate(sim.NonSharingPref),
		InvalidationNotPrefetched: res.MissClassRate(sim.InvalNotPref),
		InvalidationPrefetched:    res.MissClassRate(sim.InvalPref),
		PrefetchInProgress:        res.MissClassRate(sim.PrefetchInProgress),
	}
	return m
}

// overheadFrom derives the paper's prefetch-overhead metric (prefetch
// instructions per demand reference) from the run's retirement counters;
// every event in the stream retires, so this equals the static annotation
// count without holding the trace in memory.
func overheadFrom(res *sim.Result) float64 {
	demand := res.Counters.DemandRefs()
	if demand == 0 {
		return 0
	}
	return float64(res.Counters.PrefetchesIssued) / float64(demand)
}

// Run generates the workload trace, annotates it with the requested
// prefetch strategy, simulates it on the configured machine and returns the
// paper's metrics. Runs are deterministic in the spec.
//
// The pipeline is fully streaming: workload events flow from the generator
// through the prefetch annotator into the simulator in fixed-size chunks,
// so memory stays flat in the trace length.
func Run(spec RunSpec) (*Metrics, error) {
	return RunContext(context.Background(), spec)
}

// RunContext is Run under a context: cancelling ctx aborts the simulation at
// its next cancellation poll and returns ctx's error. The experiment server
// uses it to drain in-flight runs on shutdown.
func RunContext(ctx context.Context, spec RunSpec) (*Metrics, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	w, err := workload.ByName(spec.Workload)
	if err != nil {
		return nil, err
	}
	geom := memory.Geometry{CacheSize: spec.CacheKB * 1024, LineSize: spec.LineBytes, Assoc: 1}
	src, _, err := w.Source(workload.Params{
		Procs:        spec.Procs,
		Scale:        spec.Scale,
		Seed:         spec.Seed,
		Restructured: spec.Restructured,
		Geometry:     geom,
	})
	if err != nil {
		return nil, err
	}
	strat, err := prefetch.ParseStrategy(spec.Strategy)
	if err != nil {
		return nil, err
	}
	pfKind, err := prefetch.ParsePrefetcher(spec.Prefetcher)
	if err != nil {
		return nil, err
	}
	annotated, err := prefetch.ByKind(pfKind).AnnotateSource(src, prefetch.Options{
		Strategy:           strat,
		Geometry:           geom,
		Distance:           spec.Distance,
		ExcludeWriteShared: spec.BufferPrefetch && strat != prefetch.NP,
	}, nil)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig()
	cfg.Geometry = geom
	cfg.MemLatency = spec.MemLatency
	cfg.TransferCycles = spec.Transfer
	cfg.VictimCacheLines = spec.VictimCacheLines
	if pfKind.Online() {
		cfg.Online = prefetch.OnlineConfig{Kind: pfKind, Strategy: strat}
	}
	if spec.BufferPrefetch {
		cfg.PrefetchTarget = sim.PrefetchToBuffer
	}
	if spec.Protocol != "" {
		proto, err := coherence.Parse(spec.Protocol)
		if err != nil {
			return nil, fmt.Errorf("busprefetch: unknown protocol %q", spec.Protocol)
		}
		cfg.Protocol = proto
	}
	cfg.Interconnect, err = interconnect.ParseConfig(spec.Interconnect, spec.Buses, spec.Discipline)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunSourceContext(ctx, cfg, annotated)
	if err != nil {
		return nil, err
	}
	return metricsFrom(spec, res), nil
}

// Comparison holds one strategy's metrics plus its execution time relative
// to the NP baseline on the same architecture (the paper's headline metric;
// values below 1 are speedups).
type Comparison struct {
	Metrics
	RelativeTime float64
}

// Compare runs the given strategies (all five when none are named) on one
// workload and architecture, returning them in order with execution times
// relative to NP. The NP baseline is always included first.
func Compare(spec RunSpec, strategies ...string) ([]Comparison, error) {
	if len(strategies) == 0 {
		strategies = Strategies()
	}
	// Ensure NP is present and first.
	ordered := []string{"NP"}
	for _, s := range strategies {
		if s != "NP" && s != "np" {
			ordered = append(ordered, s)
		}
	}
	var out []Comparison
	var npCycles uint64
	for _, s := range ordered {
		spec := spec
		spec.Strategy = s
		m, err := Run(spec)
		if err != nil {
			return nil, err
		}
		c := Comparison{Metrics: *m, RelativeTime: 1}
		if s == "NP" {
			npCycles = m.Cycles
		} else if npCycles > 0 {
			c.RelativeTime = float64(m.Cycles) / float64(npCycles)
		}
		out = append(out, c)
	}
	return out, nil
}

// Speedup converts a relative execution time into the speedup the paper
// quotes (1.39 for a relative time of 0.72, and so on).
func Speedup(relativeTime float64) float64 {
	if relativeTime <= 0 {
		return 0
	}
	return 1 / relativeTime
}
