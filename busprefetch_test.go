package busprefetch

import (
	"testing"
)

func TestWorkloadsAndStrategies(t *testing.T) {
	ws := Workloads()
	if len(ws) != 5 {
		t.Fatalf("workloads = %d", len(ws))
	}
	for _, w := range ws {
		if w.Name == "" || w.Description == "" || w.DefaultProcs < 2 {
			t.Errorf("bad workload info %+v", w)
		}
	}
	ss := Strategies()
	want := []string{"NP", "PREF", "EXCL", "LPD", "PWS"}
	for i, s := range want {
		if ss[i] != s {
			t.Fatalf("strategies = %v", ss)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := Run(RunSpec{Workload: "nope", Scale: 0.05}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Run(RunSpec{Workload: "water", Strategy: "bogus", Scale: 0.05}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunProducesMetrics(t *testing.T) {
	m, err := Run(RunSpec{Workload: "water", Strategy: "PREF", Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles == 0 || m.DemandRefs == 0 {
		t.Fatal("empty metrics")
	}
	if m.CPUMissRate <= 0 || m.CPUMissRate > 1 {
		t.Errorf("CPU miss rate %f", m.CPUMissRate)
	}
	if m.AdjustedCPUMissRate > m.CPUMissRate {
		t.Error("adjusted MR above CPU MR")
	}
	if m.TotalMissRate < m.AdjustedCPUMissRate {
		t.Error("total MR below adjusted CPU MR")
	}
	if m.BusUtilization <= 0 || m.BusUtilization > 1 {
		t.Errorf("bus utilization %f", m.BusUtilization)
	}
	if m.ProcessorUtilization <= 0 || m.ProcessorUtilization > 1 {
		t.Errorf("processor utilization %f", m.ProcessorUtilization)
	}
	if m.PrefetchesIssued == 0 || m.PrefetchOverhead <= 0 {
		t.Error("PREF issued no prefetches")
	}
	sum := m.Components.NonSharingNotPrefetched + m.Components.NonSharingPrefetched +
		m.Components.InvalidationNotPrefetched + m.Components.InvalidationPrefetched +
		m.Components.PrefetchInProgress
	if diff := sum - m.CPUMissRate; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("components sum %f != CPU MR %f", sum, m.CPUMissRate)
	}
}

func TestRunDeterminism(t *testing.T) {
	spec := RunSpec{Workload: "mp3d", Strategy: "PWS", Scale: 0.05, Transfer: 16}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Error("identical specs produced different metrics")
	}
}

func TestCompare(t *testing.T) {
	results, err := Compare(RunSpec{Workload: "water", Scale: 0.1}, "PREF")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Strategy != "NP" || results[0].RelativeTime != 1 {
		t.Errorf("baseline = %+v", results[0])
	}
	if results[1].Strategy != "PREF" || results[1].RelativeTime <= 0 {
		t.Errorf("PREF = %+v", results[1])
	}
}

func TestCompareDefaultsToAllStrategies(t *testing.T) {
	results, err := Compare(RunSpec{Workload: "water", Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d, want all five strategies", len(results))
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(0.72) < 1.38 || Speedup(0.72) > 1.40 {
		t.Errorf("Speedup(0.72) = %f", Speedup(0.72))
	}
	if Speedup(0) != 0 {
		t.Error("Speedup(0) must not divide by zero")
	}
}

func TestCustomGeometryAndDistance(t *testing.T) {
	m, err := Run(RunSpec{Workload: "water", Strategy: "PREF", Scale: 0.05,
		CacheKB: 16, LineBytes: 64, Distance: 250})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

// TestHeadlineResult asserts the paper's abstract at reduced scale: on a
// bus-based multiprocessor with high memory latency, prefetching helps on a
// fast bus and the benefit shrinks or reverses near saturation.
func TestHeadlineResult(t *testing.T) {
	if testing.Short() {
		t.Skip("headline integration in -short mode")
	}
	fast, err := Compare(RunSpec{Workload: "mp3d", Transfer: 4, Scale: 0.2}, "PREF")
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Compare(RunSpec{Workload: "mp3d", Transfer: 32, Scale: 0.2}, "PREF")
	if err != nil {
		t.Fatal(err)
	}
	if fast[1].RelativeTime >= 1 {
		t.Errorf("no speedup on the fast bus: %f", fast[1].RelativeTime)
	}
	if slow[1].RelativeTime < fast[1].RelativeTime {
		t.Errorf("saturated bus gained more (%f) than fast bus (%f)",
			slow[1].RelativeTime, fast[1].RelativeTime)
	}
	if slow[1].RelativeTime < 0.9 {
		t.Errorf("saturated bus still shows a large speedup: %f", slow[1].RelativeTime)
	}
}

func TestProtocolOption(t *testing.T) {
	illinois, err := Run(RunSpec{Workload: "mp3d", Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	msi, err := Run(RunSpec{Workload: "mp3d", Scale: 0.05, Protocol: "msi"})
	if err != nil {
		t.Fatal(err)
	}
	if msi.BusOps <= illinois.BusOps {
		t.Errorf("MSI bus ops %d not above Illinois %d (first-write upgrades missing)",
			msi.BusOps, illinois.BusOps)
	}
	if _, err := Run(RunSpec{Workload: "mp3d", Scale: 0.05, Protocol: "mesi2"}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestVictimCacheOption(t *testing.T) {
	plain, err := Run(RunSpec{Workload: "topopt", Strategy: "PREF", Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := Run(RunSpec{Workload: "topopt", Strategy: "PREF", Scale: 0.05, VictimCacheLines: 8})
	if err != nil {
		t.Fatal(err)
	}
	if victim.CPUMissRate >= plain.CPUMissRate {
		t.Errorf("victim cache did not cut topopt's conflict misses: %.4f vs %.4f",
			victim.CPUMissRate, plain.CPUMissRate)
	}
}

func TestBufferPrefetchOption(t *testing.T) {
	buffer, err := Run(RunSpec{Workload: "mp3d", Strategy: "PREF", Scale: 0.05, BufferPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	cachePf, err := Run(RunSpec{Workload: "mp3d", Strategy: "PREF", Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// The non-snooping buffer cannot prefetch shared data, so it must issue
	// far fewer prefetches on this shared-heavy workload.
	if buffer.PrefetchesIssued >= cachePf.PrefetchesIssued {
		t.Errorf("buffer mode issued %d prefetches, cache mode %d — write-shared exclusion missing",
			buffer.PrefetchesIssued, cachePf.PrefetchesIssued)
	}
}

func TestInterconnectOption(t *testing.T) {
	single, err := Run(RunSpec{Workload: "mp3d", Strategy: "PREF", Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	quad, err := Run(RunSpec{Workload: "mp3d", Strategy: "PREF", Scale: 0.05,
		Interconnect: "multibus", Buses: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Four address-interleaved buses must relieve the paper's bottleneck on
	// its most bus-bound workload.
	if quad.Cycles >= single.Cycles {
		t.Errorf("quad bus did not speed up mp3d: %d vs %d cycles", quad.Cycles, single.Cycles)
	}
	if _, err := Run(RunSpec{Workload: "mp3d", Scale: 0.05, Interconnect: "nosuch"}); err == nil {
		t.Error("unknown interconnect accepted")
	}
	if _, err := Run(RunSpec{Workload: "mp3d", Scale: 0.05, Discipline: "nosuch"}); err == nil {
		t.Error("unknown discipline accepted")
	}
	if _, err := Run(RunSpec{Workload: "mp3d", Scale: 0.05, Buses: 2}); err == nil {
		t.Error("multi-link single bus accepted")
	}
}
