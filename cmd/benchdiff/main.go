// Command benchdiff compares two files of standard `go test -bench` output
// and reports, per benchmark, the median ns/op of each side and the delta.
// It is the repository's dependency-free stand-in for benchstat: CI runs the
// microbenchmark suite and gates merges on benchdiff against the checked-in
// bench/baseline.txt (see PERFORMANCE.md for the workflow).
//
// Usage:
//
//	benchdiff old.txt new.txt                       # report all deltas
//	benchdiff -gate FullCell=10 old.txt new.txt     # also fail >10% regressions
//
// Each -gate NAME=PCT (repeatable) fails the run with exit status 1 when the
// named benchmark's median ns/op regressed by more than PCT percent, or when
// the benchmark is missing from either file — a silently vanished gate
// benchmark must not pass. NAME matches any benchmark whose name contains it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"busprefetch/internal/buildinfo"
)

// gate is one -gate NAME=PCT regression bound.
type gate struct {
	name string
	pct  float64
}

// gateList implements flag.Value for repeated -gate flags.
type gateList []gate

func (g *gateList) String() string {
	parts := make([]string, len(*g))
	for i, x := range *g {
		parts[i] = fmt.Sprintf("%s=%g", x.name, x.pct)
	}
	return strings.Join(parts, ",")
}

func (g *gateList) Set(s string) error {
	name, pctStr, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("gate %q: want NAME=PCT", s)
	}
	pct, err := strconv.ParseFloat(pctStr, 64)
	if err != nil || pct < 0 {
		return fmt.Errorf("gate %q: bad percentage %q", s, pctStr)
	}
	*g = append(*g, gate{name: name, pct: pct})
	return nil
}

func main() {
	var gates gateList
	flag.Var(&gates, "gate", "fail when benchmark NAME=PCT regresses more than PCT percent (repeatable)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("benchdiff"))
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-gate NAME=PCT]... OLD NEW")
		os.Exit(2)
	}
	old, err := parseFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := parseFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	report(os.Stdout, old, cur)
	if errs := checkGates(gates, old, cur); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "benchdiff:", e)
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	samples, err := parseBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return samples, nil
}

// parseBench collects ns/op samples per benchmark from `go test -bench`
// output. The trailing -N GOMAXPROCS suffix is stripped so results compare
// across machines with different core counts.
func parseBench(r io.Reader) (map[string][]float64, error) {
	samples := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Fields: Name iterations value "ns/op" [extra metrics]...
		if fields[3] != "ns/op" {
			continue
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		samples[name] = append(samples[name], v)
	}
	return samples, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// deltaPct returns the percentage change from old to new (positive = slower).
func deltaPct(old, cur float64) float64 {
	if old == 0 {
		return 0
	}
	return (cur - old) / old * 100
}

func report(w io.Writer, old, cur map[string][]float64) {
	names := make([]string, 0, len(old)+len(cur))
	seen := make(map[string]bool)
	for n := range old {
		names = append(names, n)
		seen[n] = true
	}
	for n := range cur {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-40s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, n := range names {
		o, hasOld := old[n]
		c, hasCur := cur[n]
		switch {
		case !hasOld:
			fmt.Fprintf(w, "%-40s %14s %14.0f %9s\n", n, "-", median(c), "new")
		case !hasCur:
			fmt.Fprintf(w, "%-40s %14.0f %14s %9s\n", n, median(o), "-", "gone")
		default:
			fmt.Fprintf(w, "%-40s %14.0f %14.0f %+8.1f%%\n", n, median(o), median(c), deltaPct(median(o), median(c)))
		}
	}
}

// checkGates verifies every gated benchmark is present on both sides and
// within its regression bound.
func checkGates(gates []gate, old, cur map[string][]float64) []error {
	var errs []error
	for _, g := range gates {
		oldName, curName := "", ""
		for n := range old {
			if strings.Contains(n, g.name) {
				oldName = n
				break
			}
		}
		for n := range cur {
			if strings.Contains(n, g.name) {
				curName = n
				break
			}
		}
		if oldName == "" || curName == "" {
			errs = append(errs, fmt.Errorf("gate %s: benchmark missing (old %q, new %q)", g.name, oldName, curName))
			continue
		}
		if d := deltaPct(median(old[oldName]), median(cur[curName])); d > g.pct {
			errs = append(errs, fmt.Errorf("gate %s: %s regressed %.1f%% (limit %.1f%%)", g.name, curName, d, g.pct))
		}
	}
	return errs
}
