package main

import (
	"strings"
	"testing"
)

const oldOut = `goos: linux
goarch: amd64
pkg: busprefetch/internal/sim
BenchmarkFullCell 	      16	  70000000 ns/op	   2100000 events/s
BenchmarkFullCell 	      16	  72000000 ns/op	   2050000 events/s
BenchmarkFullCell 	      16	  71000000 ns/op	   2080000 events/s
BenchmarkProbeHit-8 	   26979	     45000 ns/op
BenchmarkProbeHit-8 	   27453	     44000 ns/op
PASS
`

const newOut = `pkg: busprefetch/internal/sim
BenchmarkFullCell 	      82	  14000000 ns/op	  10000000 events/s
BenchmarkFullCell 	      85	  15000000 ns/op	   9800000 events/s
BenchmarkFullCell 	      85	  14500000 ns/op	   9900000 events/s
BenchmarkProbeHit-8 	   44252	     50000 ns/op
BenchmarkProbeHit-8 	   43665	     51000 ns/op
PASS
`

func parseString(t *testing.T, s string) map[string][]float64 {
	t.Helper()
	m, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBench(t *testing.T) {
	m := parseString(t, oldOut)
	if got := len(m["BenchmarkFullCell"]); got != 3 {
		t.Errorf("FullCell samples = %d, want 3", got)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	if got := len(m["BenchmarkProbeHit"]); got != 2 {
		t.Errorf("ProbeHit samples = %d, want 2", got)
	}
	if m["BenchmarkFullCell"][0] != 70000000 {
		t.Errorf("first FullCell sample = %v, want 70000000", m["BenchmarkFullCell"][0])
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
}

func TestGatePassesOnImprovement(t *testing.T) {
	old, cur := parseString(t, oldOut), parseString(t, newOut)
	errs := checkGates([]gate{{name: "FullCell", pct: 10}}, old, cur)
	if len(errs) != 0 {
		t.Errorf("improvement flagged as regression: %v", errs)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	old, cur := parseString(t, oldOut), parseString(t, newOut)
	// ProbeHit went 44.5us -> 50.5us: a ~13.5% regression.
	errs := checkGates([]gate{{name: "ProbeHit", pct: 10}}, old, cur)
	if len(errs) != 1 {
		t.Fatalf("regression not flagged: %v", errs)
	}
	// A looser bound admits it.
	if errs := checkGates([]gate{{name: "ProbeHit", pct: 20}}, old, cur); len(errs) != 0 {
		t.Errorf("within-bound change flagged: %v", errs)
	}
}

func TestGateFailsWhenBenchmarkMissing(t *testing.T) {
	old, cur := parseString(t, oldOut), parseString(t, newOut)
	if errs := checkGates([]gate{{name: "NoSuchBench", pct: 10}}, old, cur); len(errs) != 1 {
		t.Errorf("missing gate benchmark not flagged: %v", errs)
	}
}

func TestReportListsAllBenchmarks(t *testing.T) {
	old, cur := parseString(t, oldOut), parseString(t, newOut)
	var sb strings.Builder
	report(&sb, old, cur)
	out := sb.String()
	for _, want := range []string{"BenchmarkFullCell", "BenchmarkProbeHit", "-79.6%", "+13.5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
