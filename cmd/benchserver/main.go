// Command benchserver serves the experiment suite over HTTP: an always-on
// service accepting single simulations (POST /v1/runs) and whole sweep grids
// (POST /v1/sweeps), scheduling them onto bounded workers with per-tenant
// queue backpressure, and fronting every computation with a
// content-addressed result store keyed by (canonical spec, build revision) —
// a spec resubmitted by any client is served from cache, byte-identical,
// without recomputation. Sweeps render through the same suite path as
// mkfigures, so a report fetched over HTTP matches mkfigures stdout exactly.
//
// Usage:
//
//	benchserver                           # listen on :8080, in-memory cache
//	benchserver -addr localhost:9090      # another address
//	benchserver -store /var/lib/bench     # durable result + checkpoint store
//	benchserver -workers 4 -shards 8      # 4 concurrent jobs, 8-way sweeps
//	benchserver -queue 16                 # deeper per-tenant queues
//
// Then, from any client:
//
//	curl -s localhost:8080/v1/sweeps?wait=1 -d '{"scale":0.1,"sections":["table2"]}'
//
// On SIGINT/SIGTERM the server drains: new submissions get 503, in-flight
// jobs finish (bounded by -drain-timeout, after which they are aborted
// through their contexts), then the process exits. See docs/API.md for the
// full endpoint reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"busprefetch/internal/buildinfo"
	"busprefetch/internal/runner"
	"busprefetch/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "benchserver:", err)
		}
		os.Exit(1)
	}
}

// run is the whole command behind flag parsing; every failure comes back as
// an error and turns into one diagnostic line and a non-zero exit. It
// returns nil on a clean drain after ctx is cancelled.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchserver", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 2, "concurrent jobs (runs or whole sweeps)")
		shards       = fs.Int("shards", 0, "per-sweep cell parallelism (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 8, "per-tenant queue depth (queued + running); beyond it submissions get 429")
		store        = fs.String("store", "", "durable store directory: results and sweep cells persist here across restarts (empty = in-memory only)")
		timeout      = fs.Duration("timeout", 0, "per-sweep-cell wall-clock budget (0 = none)")
		retries      = fs.Int("retries", 0, "extra attempts for retryably-failing sweep cells")
		retain       = fs.Int("retain", 512, "finished job resources kept addressable; older ones are evicted (results stay in the result store)")
		drainTimeout = fs.Duration("drain-timeout", time.Minute, "how long shutdown waits for in-flight jobs before aborting them")
		version      = fs.Bool("version", false, "print version and exit")
		quiet        = fs.Bool("q", false, "suppress per-job log output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("benchserver"))
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only)", fs.Arg(0))
	}
	if *workers <= 0 {
		return fmt.Errorf("-workers must be positive, got %d", *workers)
	}
	if *queue <= 0 {
		return fmt.Errorf("-queue must be positive, got %d", *queue)
	}
	if *drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", *drainTimeout)
	}
	if *retain <= 0 {
		return fmt.Errorf("-retain must be positive, got %d", *retain)
	}

	opts := server.Options{
		Workers:      *workers,
		Shards:       *shards,
		QueueDepth:   *queue,
		Timeout:      *timeout,
		Retries:      *retries,
		JobRetention: *retain,
	}
	if !*quiet {
		opts.Logf = log.New(os.Stderr, "benchserver: ", log.LstdFlags).Printf
	}
	if *store != "" {
		cs, err := runner.OpenCheckpointStore(*store)
		if err != nil {
			return err
		}
		opts.Checkpoints = cs
	}

	// jobCtx outlives ctx: a signal starts the drain rather than killing
	// running jobs; only a blown drain deadline cancels them.
	jobCtx, abortJobs := context.WithCancel(context.Background())
	defer abortJobs()
	srv := server.New(jobCtx, opts)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "benchserver: listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: drain accepted work within the deadline, abort
	// whatever remains through the job context, then close the listener.
	if !*quiet {
		fmt.Fprintf(os.Stderr, "benchserver: draining (up to %v)...\n", *drainTimeout)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "benchserver: drain deadline hit; aborting in-flight jobs")
		}
		abortJobs()
		if err := srv.Drain(context.Background()); err != nil {
			return err
		}
	}
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, "benchserver: drained, exiting")
	}
	return nil
}
