package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestVersionFlag: -version prints the stamped identity and exits clean.
func TestVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "benchserver ") {
		t.Errorf("-version printed %q", out.String())
	}
}

// TestFlagValidation: bad flag values fail before binding a socket.
func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "0"},
		{"-queue", "-1"},
		{"-drain-timeout", "0s"},
		{"positional"},
		{"-no-such-flag"},
	} {
		if err := run(context.Background(), args, &strings.Builder{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestServeAndGracefulExit boots the server on an ephemeral port, exercises
// a real request over TCP, then cancels the context and expects a clean
// drain — the SIGINT path end to end.
func TestServeAndGracefulExit(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := newPipeWriter()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-q"}, pw)
	}()

	// The startup line names the bound address.
	line, err := pr.line(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := strings.CutPrefix(strings.TrimSpace(line), "benchserver: listening on http://")
	if !ok {
		t.Fatalf("startup line %q", line)
	}

	resp, err := http.Get("http://" + addr + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct{ Status string }
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, hz)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run exited with %v, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after cancellation")
	}
}

// pipeWriter adapts a line-buffered channel to io.Writer for capturing the
// startup message without racing the server goroutine.
type pipeWriter struct{ ch chan string }

func newPipeWriter() (*pipeWriter, *pipeWriter) {
	p := &pipeWriter{ch: make(chan string, 8)}
	return p, p
}

func (p *pipeWriter) Write(b []byte) (int, error) {
	p.ch <- string(b)
	return len(b), nil
}

func (p *pipeWriter) line(timeout time.Duration) (string, error) {
	select {
	case s := <-p.ch:
		return s, nil
	case <-time.After(timeout):
		return "", fmt.Errorf("no output within %v", timeout)
	}
}
