// Command chaossoak drives the fault-injection soak harness (internal/chaos)
// from the command line: N randomized fault plans — transient stalls, spins,
// violations, panics, mid-sweep kills, torn checkpoint writes — against real
// sweeps, under a wall-clock budget. CI's scheduled chaos job runs it with a
// clock-derived seed; rerun a failure with the seed it printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"busprefetch/internal/chaos"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chaossoak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 0, "master seed for the fault plans (0 derives one from the clock)")
	plans := fs.Int("plans", 50, "number of randomized fault plans")
	budget := fs.Duration("budget", 60*time.Second, "wall-clock budget; plans not yet started when it expires are skipped (0 = unlimited)")
	scale := fs.Float64("scale", 0.1, "sweep scale each plan runs at")
	jobs := fs.Int("jobs", 0, "worker pool size per sweep (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-cell attempt timeout")
	retries := fs.Int("retries", 2, "per-cell retry budget")
	dir := fs.String("dir", "", "checkpoint root (empty = a temp dir, removed afterwards)")
	quiet := fs.Bool("q", false, "suppress per-plan progress lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	opts := chaos.Options{
		Seed:        *seed,
		Plans:       *plans,
		Budget:      *budget,
		Scale:       *scale,
		Jobs:        *jobs,
		CellTimeout: *timeout,
		Retries:     *retries,
		Dir:         *dir,
	}
	if !*quiet {
		opts.Log = func(format string, args ...any) { fmt.Fprintf(stdout, format+"\n", args...) }
	}
	fmt.Fprintf(stdout, "chaossoak: seed=%d plans=%d budget=%v scale=%g timeout=%v retries=%d\n",
		*seed, *plans, *budget, *scale, *timeout, *retries)
	rep, err := chaos.Soak(ctx, opts)
	if rep != nil {
		fmt.Fprintln(stdout, rep)
	}
	if err != nil {
		fmt.Fprintf(stderr, "chaossoak: %v (replay with -seed %d)\n", err, *seed)
		return 1
	}
	return 0
}
