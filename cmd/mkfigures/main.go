// Command mkfigures regenerates every table and figure of the paper's
// evaluation section and prints them in the paper's layout. With -out it
// also writes the results into a Markdown report (the data behind
// EXPERIMENTS.md).
//
// The suite cells are independent simulations; they are sharded across a
// bounded worker pool (-jobs) and reduced in canonical order, so stdout is
// byte-identical for every worker count. -bench-out records the run's
// wall-clock trajectory (per cell, total, trace-cache hit rate) as JSON for
// cross-commit comparison; -metrics-out records the observability slice
// (prefetch lifetimes, latency histograms, bus occupancy) the same way.
//
// Usage:
//
//	mkfigures                 # full suite at scale 1 (several minutes)
//	mkfigures -scale 0.25     # quick pass
//	mkfigures -only fig2      # a single experiment
//	mkfigures -protocol dragon # the whole grid under write-update coherence
//	mkfigures -prefetcher stride # the whole grid with online stride prefetching
//	mkfigures -interconnect multibus -buses 4 # the whole grid on a quad bus
//	mkfigures -jobs 8         # shard cells across 8 workers
//	mkfigures -out results.md # also write a Markdown report
//	mkfigures -bench-out BENCH_suite.json  # record the perf trajectory
//	mkfigures -metrics-out METRICS_suite.json  # record prefetch-lifetime metrics
//	mkfigures -trace-out mp3d.json -trace-cell mp3d/PREF/8  # Perfetto trace
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"busprefetch/internal/buildinfo"
	"busprefetch/internal/coherence"
	"busprefetch/internal/experiments"
	"busprefetch/internal/interconnect"
	"busprefetch/internal/obs"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/runner"
)

func main() {
	// First Ctrl-C / SIGTERM cancels the sweep cleanly (running cells abort
	// at the simulator's next poll, completed cells stay checkpointed under
	// -resume); a second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "mkfigures:", err)
		}
		os.Exit(1)
	}
}

// run is the whole command behind flag parsing; every failure comes back as
// an error and turns into one diagnostic line and a non-zero exit.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mkfigures", flag.ContinueOnError)
	var (
		scale      = fs.Float64("scale", 1.0, "trace length multiplier")
		seed       = fs.Int64("seed", 1, "workload generator seed")
		only       = fs.String("only", "", "run one experiment: "+strings.Join(experiments.SectionNames(), ", "))
		jobs       = fs.Int("jobs", 0, "worker pool size for sharding cells (0 = GOMAXPROCS)")
		protoStr   = fs.String("protocol", "illinois", "coherence protocol for the suite grid: illinois, msi, or dragon")
		pfName     = fs.String("prefetcher", "oracle", "prefetcher for the suite grid: oracle, stride, temporal, or pointer")
		icName     = fs.String("interconnect", "bus", "interconnect fabric for the suite grid: bus, multibus, or directory")
		buses      = fs.Int("buses", 0, "link count for multibus/directory fabrics (0 = fabric default)")
		discName   = fs.String("discipline", "priority", "bus arbitration discipline for the suite grid: priority or fcfs")
		out        = fs.String("out", "", "also write the report to this file")
		benchOut   = fs.String("bench-out", "", "write a JSON benchmark report (wall-clock per cell, trace-cache hit rate) to this file")
		metricsOut = fs.String("metrics-out", "", "write the observability slice (prefetch lifetimes, latency histograms) as JSON to this file")
		traceOut   = fs.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto-loadable) of one cell to this file")
		traceCell  = fs.String("trace-cell", "mp3d/PREF/8", "the workload/strategy/transfer cell -trace-out records")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		execTrace  = fs.String("exectrace", "", "write a runtime/trace execution trace to this file")
		materialize = fs.Bool("materialize", false, "materialize full traces before simulating instead of the streaming hot path (slower; same results)")
		timeout    = fs.Duration("timeout", 0, "per-cell wall-clock budget (0 = none); a timed-out cell is retried per -retries")
		retries    = fs.Int("retries", 0, "extra attempts for retryably-failing cells (stalls, timeouts, transient faults)")
		resume     = fs.String("resume", "", "checkpoint directory: completed cells persist here and an interrupted sweep resumes from it")
		version    = fs.Bool("version", false, "print version and exit")
		quiet      = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("mkfigures"))
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only)", fs.Arg(0))
	}
	if *only != "" && !experiments.ValidSection(*only) {
		return fmt.Errorf("unknown experiment %q (valid: %s)", *only, strings.Join(experiments.SectionNames(), ", "))
	}
	if *traceOut == "" {
		// Catch a -trace-cell with no -trace-out: silently ignoring it would
		// hide a typo'd invocation.
		cellSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "trace-cell" {
				cellSet = true
			}
		})
		if cellSet {
			return fmt.Errorf("-trace-cell has no effect without -trace-out")
		}
	}
	proto, err := coherence.Parse(*protoStr)
	if err != nil {
		return err
	}
	pfKind, err := prefetch.ParsePrefetcher(*pfName)
	if err != nil {
		return err
	}
	icCfg, err := interconnect.ParseConfig(*icName, *buses, *discName)
	if err != nil {
		return err
	}

	prof := obs.Profiling{PprofAddr: *pprofAddr, CPUProfile: *cpuProfile, ExecTrace: *execTrace}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()
	if addr := prof.Addr(); addr != "" {
		fmt.Fprintf(os.Stderr, "mkfigures: pprof listening on http://%s/debug/pprof/\n", addr)
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Parallelism: *jobs, Protocol: proto,
		Prefetcher: pfKind, Interconnect: icCfg, Timeout: *timeout, Retries: *retries,
		Materialize: *materialize}
	if *resume != "" {
		store, err := runner.OpenCheckpointStore(*resume)
		if err != nil {
			return err
		}
		cfg.Checkpoints = store
	}
	suite := experiments.NewSuite(cfg)

	want := func(name string) bool { return *only == "" || strings.EqualFold(*only, name) }

	start := time.Now()

	// Pre-run the shared simulation grid in parallel.
	keys := suite.KeysFor(want)
	if len(keys) > 0 && !*quiet {
		fmt.Fprintf(os.Stderr, "mkfigures: simulating %d configurations (scale %.2f, %d workers)...\n",
			len(keys), *scale, suite.Workers())
	}
	progress := func(done, total int) {
		if !*quiet && done%10 == 0 {
			fmt.Fprintf(os.Stderr, "  %d/%d (%.0fs elapsed)\n", done, total, time.Since(start).Seconds())
		}
	}
	var cellErrs *experiments.CellErrors
	if err := suite.Prewarm(ctx, keys, progress); err != nil {
		// Individual failed cells are annotated in the tables; the rest of
		// the report still renders. A cancelled sweep, or anything else, is
		// fatal — with a resume hint when the work is recoverable.
		if !errors.As(err, &cellErrs) {
			return interruptHint(err, *resume)
		}
		fmt.Fprintln(os.Stderr, "mkfigures: warning:", err)
	}

	reportText, err := suite.RenderSections(ctx, want)
	if err != nil {
		return interruptHint(err, *resume)
	}
	fmt.Fprintln(stdout, reportText)

	if *out != "" {
		md := fmt.Sprintf("# Reproduction results (scale %.2f, seed %d)\n\n```\n%s\n```\n", *scale, *seed, reportText)
		if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "mkfigures: wrote %s\n", *out)
		}
	}

	if *benchOut != "" {
		bench := suite.Bench(time.Since(start))
		if err := bench.WriteFile(*benchOut); err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "mkfigures: wrote %s (%d cells, %.0fms total, %d/%d workers/cores, trace-cache hit rate %.2f)\n",
				*benchOut, len(bench.Cells), bench.TotalMillis, bench.Workers, runtime.GOMAXPROCS(0), bench.TraceCacheHitRate)
		}
	}

	if *metricsOut != "" {
		cells, err := suite.Observability(ctx, nil)
		if err != nil {
			return interruptHint(err, *resume)
		}
		metrics := runner.NewMetricsReport(*scale, *seed, experiments.MetricsCells(cells))
		if cellErrs != nil {
			metrics.SetErrors(cellErrs.Failures())
		}
		if err := metrics.WriteFile(*metricsOut); err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "mkfigures: wrote %s (%d cells)\n", *metricsOut, len(metrics.Cells))
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		err = suite.RecordChromeTrace(*traceCell, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "mkfigures: wrote %s (cell %s)\n", *traceOut, *traceCell)
		}
	}
	return nil
}

// interruptHint decorates a cancellation error with the way back: resumed
// sweeps recompute only the cells the interrupted one never finished.
func interruptHint(err error, resumeDir string) error {
	if err == nil || !(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return err
	}
	if resumeDir != "" {
		return fmt.Errorf("%w (completed cells are checkpointed; rerun with -resume %s to continue)", err, resumeDir)
	}
	return fmt.Errorf("%w (rerun with -resume DIR to make sweeps interruptible without losing work)", err)
}
