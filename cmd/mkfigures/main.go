// Command mkfigures regenerates every table and figure of the paper's
// evaluation section and prints them in the paper's layout. With -out it
// also writes the results into a Markdown report (the data behind
// EXPERIMENTS.md).
//
// The suite cells are independent simulations; they are sharded across a
// bounded worker pool (-jobs) and reduced in canonical order, so stdout is
// byte-identical for every worker count. -bench-out records the run's
// wall-clock trajectory (per cell, total, trace-cache hit rate) as JSON for
// cross-commit comparison.
//
// Usage:
//
//	mkfigures                 # full suite at scale 1 (several minutes)
//	mkfigures -scale 0.25     # quick pass
//	mkfigures -only fig2      # a single experiment
//	mkfigures -protocol dragon # the whole grid under write-update coherence
//	mkfigures -jobs 8         # shard cells across 8 workers
//	mkfigures -out results.md # also write a Markdown report
//	mkfigures -bench-out BENCH_suite.json  # record the perf trajectory
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"busprefetch/internal/coherence"
	"busprefetch/internal/experiments"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1.0, "trace length multiplier")
		seed     = flag.Int64("seed", 1, "workload generator seed")
		only     = flag.String("only", "", "run one experiment: "+strings.Join(experiments.SectionNames(), ", "))
		jobs     = flag.Int("jobs", 0, "worker pool size for sharding cells (0 = GOMAXPROCS)")
		protoStr = flag.String("protocol", "illinois", "coherence protocol for the suite grid: illinois, msi, or dragon")
		out      = flag.String("out", "", "also write the report to this file")
		benchOut = flag.String("bench-out", "", "write a JSON benchmark report (wall-clock per cell, trace-cache hit rate) to this file")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *only != "" && !experiments.ValidSection(*only) {
		fatal(fmt.Errorf("unknown experiment %q (valid: %s)", *only, strings.Join(experiments.SectionNames(), ", ")))
	}
	proto, err := coherence.Parse(*protoStr)
	if err != nil {
		fatal(err)
	}
	suite := experiments.NewSuite(experiments.Config{Scale: *scale, Seed: *seed, Parallelism: *jobs, Protocol: proto})

	want := func(name string) bool { return *only == "" || strings.EqualFold(*only, name) }

	start := time.Now()

	// Pre-run the shared simulation grid in parallel.
	keys := suite.KeysFor(want)
	if len(keys) > 0 && !*quiet {
		fmt.Fprintf(os.Stderr, "mkfigures: simulating %d configurations (scale %.2f, %d workers)...\n",
			len(keys), *scale, suite.Workers())
	}
	progress := func(done, total int) {
		if !*quiet && done%10 == 0 {
			fmt.Fprintf(os.Stderr, "  %d/%d (%.0fs elapsed)\n", done, total, time.Since(start).Seconds())
		}
	}
	if err := suite.Prewarm(keys, progress); err != nil {
		// Individual failed cells are annotated in the tables; the rest of
		// the report still renders. Anything else is fatal.
		var cells *experiments.CellErrors
		if !errors.As(err, &cells) {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "mkfigures: warning:", err)
	}

	reportText, err := suite.RenderSections(want)
	if err != nil {
		fatal(err)
	}
	fmt.Println(reportText)

	if *out != "" {
		md := fmt.Sprintf("# Reproduction results (scale %.2f, seed %d)\n\n```\n%s\n```\n", *scale, *seed, reportText)
		if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "mkfigures: wrote %s\n", *out)
		}
	}

	if *benchOut != "" {
		bench := suite.Bench(time.Since(start))
		if err := bench.WriteFile(*benchOut); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "mkfigures: wrote %s (%d cells, %.0fms total, %d/%d workers/cores, trace-cache hit rate %.2f)\n",
				*benchOut, len(bench.Cells), bench.TotalMillis, bench.Workers, runtime.GOMAXPROCS(0), bench.TraceCacheHitRate)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mkfigures:", err)
	os.Exit(1)
}
