// Command mkfigures regenerates every table and figure of the paper's
// evaluation section and prints them in the paper's layout. With -out it
// also writes the results into a Markdown report (the data behind
// EXPERIMENTS.md).
//
// Usage:
//
//	mkfigures                 # full suite at scale 1 (several minutes)
//	mkfigures -scale 0.25     # quick pass
//	mkfigures -only fig2      # a single experiment
//	mkfigures -out results.md # also write a Markdown report
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"busprefetch/internal/experiments"
)

func main() {
	var (
		scale = flag.Float64("scale", 1.0, "trace length multiplier")
		seed  = flag.Int64("seed", 1, "workload generator seed")
		only  = flag.String("only", "", "run one experiment: table1, fig1, table2, fig2, util, fig3, table3, table4, table5, ablations")
		out   = flag.String("out", "", "also write the report to this file")
		quiet = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	suite := experiments.NewSuite(experiments.Config{Scale: *scale, Seed: *seed})

	want := func(name string) bool { return *only == "" || strings.EqualFold(*only, name) }

	// Pre-run the shared simulation grid in parallel.
	var keys []experiments.Key
	if want("fig1") || want("table2") || want("fig2") || want("util") || want("fig3") || want("table3") {
		keys = append(keys, suite.GridKeys()...)
	}
	if want("table4") || want("table5") {
		keys = append(keys, suite.RestructuredKeys()...)
	}
	if len(keys) > 0 && !*quiet {
		fmt.Fprintf(os.Stderr, "mkfigures: simulating %d configurations (scale %.2f)...\n", len(keys), *scale)
	}
	start := time.Now()
	progress := func(done, total int) {
		if !*quiet && done%10 == 0 {
			fmt.Fprintf(os.Stderr, "  %d/%d (%.0fs elapsed)\n", done, total, time.Since(start).Seconds())
		}
	}
	if err := suite.Prewarm(keys, progress); err != nil {
		// Individual failed cells are annotated in the tables; the rest of
		// the report still renders. Anything else is fatal.
		var cells *experiments.CellErrors
		if !errors.As(err, &cells) {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "mkfigures: warning:", err)
	}

	var sections []string
	add := func(name, body string, err error) {
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		sections = append(sections, body)
	}

	if want("table1") {
		rows, err := suite.Table1()
		add("table1", experiments.RenderTable1(rows), err)
	}
	if want("fig1") {
		rows, err := suite.Figure1()
		add("fig1", experiments.RenderFigure1(rows), err)
	}
	if want("table2") {
		rows, err := suite.Table2()
		add("table2", experiments.RenderTable2(rows), err)
	}
	if want("fig2") {
		rows, err := suite.Figure2()
		add("fig2", experiments.RenderFigure2(rows, suite.Config().Transfers), err)
	}
	if want("util") {
		rows, err := suite.Utilization()
		add("util", experiments.RenderUtilization(rows), err)
	}
	if want("fig3") {
		rows, err := suite.Figure3()
		add("fig3", experiments.RenderFigure3(rows), err)
	}
	if want("table3") {
		rows, err := suite.Table3()
		add("table3", experiments.RenderTable3(rows), err)
	}
	if want("table4") {
		rows, err := suite.Table4()
		add("table4", experiments.RenderTable4(rows), err)
	}
	if want("table5") {
		rows, err := suite.Table5()
		add("table5", experiments.RenderTable5(rows, suite.Config().Transfers), err)
	}
	if want("ablations") {
		rows, err := suite.AblationCacheSize("mp3d", nil)
		add("ablation-cache", experiments.RenderAblation("Ablation: cache size (mp3d, NP, T=8)", rows), err)
		rows, err = suite.AblationLineSize("mp3d", nil)
		add("ablation-line", experiments.RenderAblation("Ablation: line size (mp3d, NP, T=8)", rows), err)
		rows, err = suite.AblationAssociativity("topopt")
		add("ablation-assoc", experiments.RenderAblation("Ablation: associativity & victim cache (topopt, PREF, T=8)", rows), err)
		rows, err = suite.AblationProtocol("mp3d")
		add("ablation-protocol", experiments.RenderAblation("Ablation: Illinois vs MSI (mp3d, T=8)", rows), err)
		rows, err = suite.AblationPrefetchPlacement("mp3d")
		add("ablation-placement", experiments.RenderAblation("Ablation: cache vs buffer prefetching (mp3d, T=8)", rows), err)
	}

	reportText := strings.Join(sections, "\n")
	fmt.Println(reportText)

	if *out != "" {
		md := fmt.Sprintf("# Reproduction results (scale %.2f, seed %d)\n\n```\n%s\n```\n", *scale, *seed, reportText)
		if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "mkfigures: wrote %s\n", *out)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mkfigures:", err)
	os.Exit(1)
}
