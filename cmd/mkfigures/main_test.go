package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"busprefetch/internal/runner"
)

func TestRunVersion(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "mkfigures ") {
		t.Errorf("-version output %q does not name the binary", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-only", "nosuch"},
		{"-protocol", "nosuch"},
		{"-interconnect", "nosuch"},
		{"-discipline", "nosuch"},
		{"-interconnect", "bus", "-buses", "2"}, // a single bus is one link
		{"-trace-cell", "mp3d/PREF/8"},          // no -trace-out
		{"stray-arg"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunBadTraceCell(t *testing.T) {
	dir := t.TempDir()
	cases := []string{
		"mp3d",             // wrong arity
		"mp3d/NOSUCH/8",    // unknown strategy
		"mp3d/PREF/x",      // non-numeric transfer
		"nosuch/PREF/8",    // unknown workload
		"mp3d/PREF/999999", // transfer out of range
	}
	for _, cell := range cases {
		var out bytes.Buffer
		args := []string{"-q", "-only", "table1", "-scale", "0.02",
			"-trace-out", filepath.Join(dir, "t.json"), "-trace-cell", cell}
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("trace cell %q accepted, want error", cell)
		}
	}
}

// TestRunMetricsAndTraceOut runs a tiny suite slice with both observability
// outputs and checks each file parses in its documented format.
func TestRunMetricsAndTraceOut(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	traceFile := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	args := []string{"-q", "-only", "table1", "-scale", "0.02", "-seed", "7",
		"-metrics-out", metrics,
		"-trace-out", traceFile, "-trace-cell", "water/PREF/8"}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatal(err)
	}

	m, err := runner.ReadMetricsReport(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if m.Scale != 0.02 || m.Seed != 7 || len(m.Cells) == 0 {
		t.Errorf("metrics report header/cells wrong: scale %v seed %v cells %d", m.Scale, m.Seed, len(m.Cells))
	}
	for _, c := range m.Cells {
		if c.Summary == nil {
			t.Errorf("cell %s: nil summary", c.Cell)
		}
	}

	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
}
