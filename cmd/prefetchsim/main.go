// Command prefetchsim runs one simulation — a (workload, prefetch strategy,
// memory architecture) triple — and prints the metrics the paper reports:
// miss rates with the Figure 3 component breakdown, bus utilization,
// processor utilization, and execution time.
//
// Usage:
//
//	prefetchsim -workload mp3d -strategy PREF -transfer 8
//	prefetchsim -workload pverify -all -transfer 4      # all five strategies
//	prefetchsim -workload mp3d -strategy PREF -prefetcher stride  # online engine
//	prefetchsim -workload mp3d -all -interconnect multibus -buses 4  # quad-bus fabric
//	prefetchsim -workload topopt -all -restructured
//	prefetchsim -trace water.bptr -strategy PREF   # replay a saved trace
//	prefetchsim -strategy PREF -trace-out run.json # export a Perfetto trace
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"

	"busprefetch/internal/buildinfo"
	"busprefetch/internal/bus"
	"busprefetch/internal/coherence"
	"busprefetch/internal/interconnect"
	"busprefetch/internal/obs"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/runner"
	"busprefetch/internal/sim"
	"busprefetch/internal/trace"
	"busprefetch/internal/workload"
)

func main() {
	// First Ctrl-C / SIGTERM cancels the runs cleanly mid-simulation; a
	// second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "prefetchsim:", err)
		}
		os.Exit(1)
	}
}

// workloadNames returns the valid -workload values.
func workloadNames() string {
	var names []string
	for _, w := range workload.All() {
		names = append(names, w.Name)
	}
	return strings.Join(names, ", ")
}

// strategyNames returns the valid -strategy values.
func strategyNames() string {
	var names []string
	for _, s := range prefetch.Strategies() {
		names = append(names, s.String())
	}
	return strings.Join(names, ", ")
}

// prefetcherNames returns the valid -prefetcher values.
func prefetcherNames() string {
	var names []string
	for _, k := range prefetch.Kinds() {
		names = append(names, k.String())
	}
	return strings.Join(names, ", ")
}

// interconnectNames returns the valid -interconnect values.
func interconnectNames() string {
	var names []string
	for _, k := range interconnect.Kinds() {
		names = append(names, k.String())
	}
	return strings.Join(names, ", ")
}

// disciplineNames returns the valid -discipline values.
func disciplineNames() string {
	var names []string
	for _, d := range bus.Disciplines() {
		names = append(names, d.String())
	}
	return strings.Join(names, ", ")
}

// run is the whole command: every failure — an unknown workload, a bad flag
// combination, a corrupt trace file, a simulation fault — comes back as an
// error and turns into one diagnostic line and a non-zero exit, never a panic.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	if ctx == nil {
		ctx = context.Background()
	}
	fs := flag.NewFlagSet("prefetchsim", flag.ContinueOnError)
	var (
		wlName       = fs.String("workload", "mp3d", "workload: "+workloadNames())
		stratName    = fs.String("strategy", "NP", "prefetch strategy: "+strategyNames())
		pfName       = fs.String("prefetcher", "oracle", "prefetcher: "+prefetcherNames()+" (online engines issue at simulation time)")
		icName       = fs.String("interconnect", "bus", "interconnect fabric: "+interconnectNames())
		buses        = fs.Int("buses", 0, "link count for multibus/directory fabrics (0 = fabric default)")
		discName     = fs.String("discipline", "priority", "bus arbitration discipline: "+disciplineNames())
		all          = fs.Bool("all", false, "run all five strategies and compare")
		transfer     = fs.Int("transfer", 8, "contended data-transfer latency in cycles (paper: 4-32)")
		latency      = fs.Int("latency", 100, "total memory latency in cycles")
		protoStr     = fs.String("protocol", "illinois", "coherence protocol: illinois, msi, or dragon")
		procs        = fs.Int("procs", 0, "processor count (0 = workload default)")
		scale        = fs.Float64("scale", 1.0, "trace length multiplier")
		seed         = fs.Int64("seed", 1, "workload generator seed")
		restructured = fs.Bool("restructured", false, "use the false-sharing-restructured layout")
		jobs         = fs.Int("jobs", 0, "worker pool size for -all strategy runs (0 = GOMAXPROCS)")
		materialize  = fs.Bool("materialize", false, "materialize the full trace before simulating instead of the streaming hot path (slower; same results)")
		distance     = fs.Int("distance", 0, "prefetch distance in cycles (0 = strategy default)")
		regions      = fs.Bool("regions", false, "attribute CPU misses to workload data structures")
		tracePath    = fs.String("trace", "", "replay a saved binary trace instead of generating a workload")
		traceOut     = fs.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the run to this file")
		pprofAddr    = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		execTrace    = fs.String("exectrace", "", "write a runtime/trace execution trace to this file")
		timeout      = fs.Duration("timeout", 0, "per-run wall-clock budget (0 = none); a timed-out run is retried per -retries")
		retries      = fs.Int("retries", 0, "extra attempts for retryably-failing runs (stalls, timeouts)")
		version      = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("prefetchsim"))
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only)", fs.Arg(0))
	}
	if *traceOut != "" && *all {
		return fmt.Errorf("-trace-out records a single run; it cannot be combined with -all")
	}

	prof := obs.Profiling{PprofAddr: *pprofAddr, CPUProfile: *cpuProfile, ExecTrace: *execTrace}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()
	if addr := prof.Addr(); addr != "" {
		fmt.Fprintf(os.Stderr, "prefetchsim: pprof listening on http://%s/debug/pprof/\n", addr)
	}
	if *tracePath != "" {
		// Generation flags are meaningless when replaying a saved trace;
		// silently ignoring them would hide a typo'd invocation.
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "workload", "procs", "scale", "seed", "restructured":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("%s cannot be combined with -trace (the trace is already generated)",
				strings.Join(conflict, ", "))
		}
	}

	// Resolve the protocol and strategy before the (possibly expensive)
	// trace generation so a typo'd flag fails in milliseconds.
	proto, err := coherence.Parse(*protoStr)
	if err != nil {
		return err
	}
	pfKind, err := prefetch.ParsePrefetcher(*pfName)
	if err != nil {
		return err
	}
	icCfg, err := interconnect.ParseConfig(*icName, *buses, *discName)
	if err != nil {
		return err
	}
	var strategies []prefetch.Strategy
	if *all {
		strategies = prefetch.Strategies()
	} else {
		s, err := prefetch.ParseStrategy(*stratName)
		if err != nil {
			return fmt.Errorf("unknown strategy %q (valid: %s)", *stratName, strategyNames())
		}
		strategies = append(strategies, s)
	}

	// The default path is fully streaming: the workload source (or the
	// decoded BPTR source) feeds the annotator feeds the simulator in
	// fixed-size chunks. -materialize builds the whole trace up front
	// instead; both paths produce identical results.
	var (
		base *trace.Trace
		src  trace.Source
		info workload.Info
	)
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		if *materialize {
			base, err = trace.Decode(f)
		} else {
			src, err = trace.DecodeSource(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		name := ""
		if base != nil {
			name = base.Name
		} else {
			name = src.Name()
		}
		info = workload.Info{Name: name, Description: "replayed from " + *tracePath}
	} else {
		w, err := workload.ByName(*wlName)
		if err != nil {
			return fmt.Errorf("unknown workload %q (valid: %s)", *wlName, workloadNames())
		}
		params := workload.Params{Procs: *procs, Scale: *scale, Seed: *seed, Restructured: *restructured}
		if *materialize {
			base, info, err = w.Generate(params)
		} else {
			src, info, err = w.Source(params)
		}
		if err != nil {
			return err
		}
	}

	cfg := sim.DefaultConfig()
	cfg.MemLatency = *latency
	cfg.TransferCycles = *transfer
	cfg.Protocol = proto
	cfg.Interconnect = icCfg
	if *regions {
		cfg.Regions = info.Regions
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	var st trace.Stats
	if base != nil {
		st = trace.Summarize(base, cfg.Geometry)
	} else {
		if st, err = trace.SummarizeSource(src, cfg.Geometry); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "workload %s: %d procs, %d demand refs (%d reads, %d writes), %d locks, %d barriers\n",
		info.Name, st.Procs, st.DemandRefs, st.Reads, st.Writes, st.Locks, st.Barriers)
	fabric := ""
	if spec := icCfg.String(); spec != "bus" {
		// Non-default fabrics are worth a header mention; the default single
		// bus keeps the paper-baseline output byte-identical.
		fabric = "; " + spec + " fabric"
	}
	fmt.Fprintf(stdout, "data touched %d KB, shared %d KB, write-shared %d KB; transfer latency %d/%d cycles; %s protocol%s\n\n",
		st.TouchedData/1024, st.SharedData/1024, st.WriteShared/1024, *transfer, *latency, proto, fabric)

	// The per-strategy runs are independent simulations of the same base
	// trace: shard them across the worker pool and print in canonical
	// strategy order afterwards, so the output is identical at any -jobs.
	results := make([]*sim.Result, len(strategies))
	tasks := make([]runner.Task, len(strategies))
	var rec *obs.Recorder
	for i, s := range strategies {
		tasks[i] = runner.Task{Label: s.String(), Run: func(ctx context.Context) error {
			err, _ := runner.Retry(ctx, runner.Policy{MaxAttempts: *retries + 1, Seed: *seed}, func(ctx context.Context) error {
				if *timeout > 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, *timeout)
					defer cancel()
				}
				opts := prefetch.Options{Strategy: s, Geometry: cfg.Geometry, Distance: *distance}
				runCfg := cfg
				runCfg.Label = info.Name + "/" + s.String()
				if pfKind.Online() {
					runCfg.Online = prefetch.OnlineConfig{Kind: pfKind, Strategy: s}
					runCfg.Label += "/" + pfKind.String()
				}
				var res *sim.Result
				if base != nil {
					annotated, err := prefetch.ByKind(pfKind).Annotate(base, opts)
					if err != nil {
						return err
					}
					if *traceOut != "" {
						// -all is excluded above, so this is the only task and
						// the recorder assignment is race-free.
						rec = obs.New(annotated.Procs(), obs.Options{Spans: true})
						runCfg.Obs = rec
					}
					res, err = sim.RunContext(ctx, runCfg, annotated)
					if err != nil {
						return fmt.Errorf("strategy %s: %w", s, err)
					}
				} else {
					annotated, err := prefetch.ByKind(pfKind).AnnotateSource(src, opts, nil)
					if err != nil {
						return err
					}
					if *traceOut != "" {
						rec = obs.New(annotated.Procs(), obs.Options{Spans: true})
						runCfg.Obs = rec
					}
					res, err = sim.RunSourceContext(ctx, runCfg, annotated)
					if err != nil {
						return fmt.Errorf("strategy %s: %w", s, err)
					}
				}
				results[i] = res
				return nil
			})
			return err
		}}
	}
	errs, _ := runner.NewPool(*jobs).Do(ctx, tasks, nil)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	var npCycles uint64
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tcycles\trel.time\tCPU MR\tadj MR\ttotal MR\tinval MR\tFS MR\tbus util\tproc util\tprefetches\tpf-hits")
	for i, s := range strategies {
		res := results[i]
		if s == prefetch.NP {
			npCycles = res.Cycles
		}
		rel := "-"
		if npCycles > 0 {
			rel = fmt.Sprintf("%.3f", float64(res.Cycles)/float64(npCycles))
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.2f\t%.2f\t%d\t%d\n",
			s, res.Cycles, rel,
			res.CPUMissRate(), res.AdjustedCPUMissRate(), res.TotalMissRate(),
			res.InvalidationMissRate(), res.FalseSharingMissRate(),
			res.BusUtilization(), res.MeanProcUtilization(),
			res.Counters.PrefetchesIssued, res.Counters.PrefetchCacheHits)
		if err := tw.Flush(); err != nil {
			return err
		}
		printComponents(stdout, res)
		printOnline(stdout, res)
		if *regions {
			printRegions(stdout, res)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		err = rec.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "prefetchsim: wrote %s\n", *traceOut)
	}
	return nil
}

// printRegions shows which data structures the CPU misses came from,
// largest contributor first.
func printRegions(w io.Writer, res *sim.Result) {
	type row struct {
		name string
		rm   sim.RegionMisses
	}
	var rows []row
	for name, rm := range res.RegionMisses {
		rows = append(rows, row{name, rm})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].rm.Total() != rows[j].rm.Total() {
			return rows[i].rm.Total() > rows[j].rm.Total()
		}
		return rows[i].name < rows[j].name
	})
	total := res.Counters.TotalCPUMisses()
	fmt.Fprintf(w, "    misses by data structure:\n")
	for _, r := range rows {
		if r.rm.Total() == 0 {
			continue
		}
		inval := r.rm.CPUMisses[sim.InvalNotPref] + r.rm.CPUMisses[sim.InvalPref]
		fmt.Fprintf(w, "      %-18s %6.1f%%  (inval %.0f%%, false sharing %.0f%%)\n",
			r.name, 100*float64(r.rm.Total())/float64(total),
			100*float64(inval)/float64(r.rm.Total()),
			100*float64(r.rm.FalseSharing)/float64(r.rm.Total()))
	}
}

func printComponents(w io.Writer, res *sim.Result) {
	c := &res.Counters
	total := c.TotalCPUMisses()
	if total == 0 {
		return
	}
	fmt.Fprintf(w, "    miss components:")
	for m := sim.MissClass(0); m < sim.NumMissClasses; m++ {
		fmt.Fprintf(w, "  %s %.1f%%", m, 100*float64(c.CPUMisses[m])/float64(total))
	}
	fmt.Fprintf(w, "  | false sharing %.1f%% of inval\n", pct(c.FalseSharing, c.InvalidationMisses()))
	busy, mem, lock, barrier, buffer := res.WaitBreakdown()
	fmt.Fprintf(w, "    time: busy %.2f mem %.2f lock %.2f barrier %.2f buffer %.2f\n",
		busy, mem, lock, barrier, buffer)
}

// printOnline shows the online engine's issue accounting and internal
// bookkeeping; silent on oracle runs, so their output is unchanged.
func printOnline(w io.Writer, res *sim.Result) {
	if res.Online == nil {
		return
	}
	c := &res.Counters
	fmt.Fprintf(w, "    online: emitted %d (issued %d, filtered %d, dropped %d); trained %d useful %d untimely %d divergence %d\n",
		c.OnlineEmitted, c.OnlineIssued, c.OnlineFiltered, c.OnlineDropped,
		res.Online.Trained, res.Online.Useful, res.Online.Untimely, res.Online.Divergence)
}

func pct(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
