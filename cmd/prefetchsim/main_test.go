package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"busprefetch/internal/check"
	"busprefetch/internal/trace"
)

func TestRunHappyPath(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-workload", "water", "-strategy", "PREF", "-scale", "0.05"}, &out)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	got := out.String()
	for _, want := range []string{"workload water", "strategy", "PREF", "bus util"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-workload", "nosuch"}, &out)
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "nosuch") || !strings.Contains(msg, "mp3d") || !strings.Contains(msg, "water") {
		t.Errorf("error %q does not list the valid workloads", msg)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("error is not one line: %q", msg)
	}
}

func TestRunUnknownStrategy(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-workload", "water", "-strategy", "nosuch", "-scale", "0.05"}, &out)
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "nosuch") || !strings.Contains(msg, "PREF") || !strings.Contains(msg, "PWS") {
		t.Errorf("error %q does not list the valid strategies", msg)
	}
}

func TestRunBadFlagCombos(t *testing.T) {
	cases := [][]string{
		{"-trace", "x.bptr", "-workload", "mp3d"},
		{"-trace", "x.bptr", "-restructured"},
		{"-workload", "water", "-scale", "-1"},
		{"-workload", "water", "-transfer", "0", "-scale", "0.05"},
		{"-workload", "water", "-transfer", "999", "-scale", "0.05"},
		{"-workload", "water", "-all", "-trace-out", "t.json", "-scale", "0.05"},
		{"stray-arg"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunVersion(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "prefetchsim ") {
		t.Errorf("-version output %q does not name the binary", out.String())
	}
}

// TestRunTraceOut exercises the Perfetto export end to end: a small run with
// -trace-out must leave a file that parses as a Chrome trace-event JSON
// object with a non-empty traceEvents array.
func TestRunTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	var out bytes.Buffer
	err := run(context.Background(), []string{"-workload", "water", "-strategy", "PREF", "-scale", "0.05", "-trace-out", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	var complete, meta int
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
		case "M":
			meta++
		}
	}
	if meta == 0 || complete == 0 {
		t.Errorf("trace has %d metadata and %d complete events, want both > 0", meta, complete)
	}

	// The same run without -trace-out prints identical results: recording
	// must not change what the simulator reports.
	var plain bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "water", "-strategy", "PREF", "-scale", "0.05"}, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.String() != out.String() {
		t.Errorf("recording changed the printed results:\n--- recorded ---\n%s\n--- plain ---\n%s", out.String(), plain.String())
	}
}

func TestRunCorruptTraceRejected(t *testing.T) {
	// Encode a tiny valid trace, flip one bit, and replay it: the CRC footer
	// must reject the file with an error, not a panic or a bogus simulation.
	tr := &trace.Trace{Name: "t", Streams: []trace.Stream{
		{{Kind: trace.Read, Addr: 0x1000}},
		{{Kind: trace.Read, Addr: 0x2000, Gap: 3}},
	}}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	corrupt, _ := check.NewInjector(3).FlipBit(buf.Bytes(), 100)
	dir := t.TempDir()
	path := filepath.Join(dir, "corrupt.bptr")
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run(context.Background(), []string{"-trace", path}, &out)
	if err == nil {
		t.Fatal("corrupt trace accepted")
	}
	if !strings.Contains(err.Error(), "trace:") {
		t.Errorf("error %q does not come from the trace codec", err)
	}

	// The pristine file replays fine.
	good := filepath.Join(dir, "good.bptr")
	if err := os.WriteFile(good, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), []string{"-trace", good}, &out); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestRunInterconnectFlags(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-workload", "water", "-strategy", "PREF",
		"-scale", "0.05", "-interconnect", "multibus", "-buses", "4", "-discipline", "fcfs"}, &out)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if got := out.String(); !strings.Contains(got, "multibus:4/fcfs fabric") {
		t.Errorf("header does not name the fabric:\n%s", got)
	}

	// The default single bus must not grow a fabric note — the baseline
	// output is pinned by docs and habit.
	out.Reset()
	if err := run(context.Background(), []string{"-workload", "water", "-strategy", "NP", "-scale", "0.05"}, &out); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if strings.Contains(out.String(), "fabric") {
		t.Errorf("default run mentions a fabric:\n%s", out.String())
	}

	for _, args := range [][]string{
		{"-interconnect", "nosuch"},
		{"-discipline", "nosuch"},
		{"-interconnect", "bus", "-buses", "2"}, // a single bus is one link
	} {
		if err := run(context.Background(), append([]string{"-workload", "water", "-scale", "0.05"}, args...), &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
