// Command tracegen generates a workload's multiprocessor address trace,
// prints its statistics and sharing profile, and can save it in the binary
// trace format (readable back by the library's trace.Decode).
//
// Usage:
//
//	tracegen -workload mp3d                       # statistics only
//	tracegen -workload water -o water.bptr        # save the trace
//	tracegen -workload pverify -restructured -pws # show PWS annotation stats
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"busprefetch/internal/buildinfo"
	"busprefetch/internal/memory"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/trace"
	"busprefetch/internal/workload"
)

func main() {
	var (
		wlName       = flag.String("workload", "mp3d", "workload: topopt, mp3d, locus, pverify, water")
		procs        = flag.Int("procs", 0, "processor count (0 = workload default)")
		scale        = flag.Float64("scale", 1.0, "trace length multiplier")
		seed         = flag.Int64("seed", 1, "generator seed")
		restructured = flag.Bool("restructured", false, "use the restructured layout")
		stratName    = flag.String("strategy", "NP", "annotate with a prefetch strategy before reporting/saving")
		outPath      = flag.String("o", "", "write the trace in binary format to this file")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("tracegen"))
		return
	}

	w, err := workload.ByName(*wlName)
	if err != nil {
		fatal(err)
	}
	t, info, err := w.Generate(workload.Params{Procs: *procs, Scale: *scale, Seed: *seed, Restructured: *restructured})
	if err != nil {
		fatal(err)
	}

	geom := memory.DefaultGeometry()
	strat, err := prefetch.ParseStrategy(*stratName)
	if err != nil {
		fatal(err)
	}
	if strat != prefetch.NP {
		t, err = prefetch.Annotate(t, prefetch.Options{Strategy: strat, Geometry: geom})
		if err != nil {
			fatal(err)
		}
	}

	st := trace.Summarize(t, geom)
	fmt.Printf("workload %s (%s)\n", info.Name, info.Description)
	fmt.Printf("  processes:      %d\n", st.Procs)
	fmt.Printf("  events:         %d\n", st.Events)
	fmt.Printf("  demand refs:    %d (%d reads, %d writes, %d sync locks)\n", st.DemandRefs, st.Reads, st.Writes, st.Locks)
	fmt.Printf("  prefetches:     %d (overhead %.1f%%)\n", st.Prefetches, 100*prefetch.Overhead(t))
	fmt.Printf("  barriers:       %d\n", st.Barriers)
	fmt.Printf("  data touched:   %d KB (declared data set %d KB)\n", st.TouchedData/1024, info.DataSet/1024)
	fmt.Printf("  shared data:    %d KB touched by >1 process\n", st.SharedData/1024)
	fmt.Printf("  write-shared:   %d KB\n", st.WriteShared/1024)

	prof := trace.AnalyzeSharing(t, geom)
	priv, rs, ws := prof.Counts()
	fmt.Printf("  lines: %d private, %d read-shared, %d write-shared\n", priv, rs, ws)

	if *outPath != "" {
		// Write via temp + rename so a crash or Ctrl-C mid-encode leaves
		// either the previous complete trace or none — never a torn file a
		// later replay would have to diagnose.
		f, err := os.CreateTemp(filepath.Dir(*outPath), filepath.Base(*outPath)+".tmp*")
		if err != nil {
			fatal(err)
		}
		defer os.Remove(f.Name())
		if err := trace.Encode(f, t); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if err := os.Rename(f.Name(), *outPath); err != nil {
			fatal(err)
		}
		fi, err := os.Stat(*outPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %s (%d bytes, %.2f bytes/event)\n", *outPath, fi.Size(), float64(fi.Size())/float64(st.Events))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
