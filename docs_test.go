package busprefetch

// Documentation gates, run as part of the normal test suite and by the CI
// docs job: every internal package must carry its godoc overview in a
// dedicated doc.go, and every relative link in the top-level markdown
// documents must resolve to a real file.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestInternalPackagesHaveDocGo enforces the documentation layout: each
// internal/* package keeps its package-level godoc overview in doc.go, so
// the overview has one predictable home and code files start at the code.
func TestInternalPackagesHaveDocGo(t *testing.T) {
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no internal packages found")
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg := e.Name()
		path := filepath.Join("internal", pkg, "doc.go")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("package internal/%s has no doc.go: %v", pkg, err)
			continue
		}
		text := string(data)
		if !strings.HasPrefix(text, "// Package "+pkg+" ") && !strings.HasPrefix(text, "// Package "+pkg+"\n") {
			t.Errorf("internal/%s/doc.go does not open with a %q godoc comment", pkg, "Package "+pkg)
		}
		if !strings.Contains(text, "\npackage "+pkg+"\n") && !strings.HasSuffix(text, "\npackage "+pkg) {
			t.Errorf("internal/%s/doc.go does not declare package %s", pkg, pkg)
		}
	}
}

// markdownLink matches [text](target) links, including image links.
var markdownLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinksResolve checks every relative link in the tracked
// documents: a renamed or deleted file must break the build, not the
// reader. Targets resolve relative to the directory of the document that
// links them, so docs/ files may link ../README.md and vice versa.
func TestMarkdownLinksResolve(t *testing.T) {
	docs := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "PERFORMANCE.md", "ROADMAP.md", "CHANGES.md", "docs/API.md"}
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		for _, m := range markdownLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(doc), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not exist", doc, m[1])
			}
		}
	}
}

// flagRegistration matches a flag definition in a CLI main.go:
// flag.String("name", ...) or fs.Bool("name", ...).
var flagRegistration = regexp.MustCompile(`(?:flag|fs)\.(?:String|Bool|Int|Int64|Float64|Duration)\("([^"]+)"`)

// cliFlags extracts the set of flags a command registers, from its source.
func cliFlags(t *testing.T, cmd string) map[string]bool {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join("cmd", cmd, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("cmd/%s: %v (%d files)", cmd, err, len(matches))
	}
	flags := make(map[string]bool)
	for _, path := range matches {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range flagRegistration.FindAllStringSubmatch(string(data), -1) {
			flags[m[1]] = true
		}
	}
	if len(flags) == 0 {
		t.Fatalf("cmd/%s registers no flags; the extraction regexp has drifted from the code style", cmd)
	}
	return flags
}

// flagTableRow matches one row of a README flag table whose first cell is
// the backticked flag name.
var flagTableRow = regexp.MustCompile("(?m)^\\| `-([^`]+)` \\|(.*)\\|$")

// TestReadmeFlagTablesMatchCLIs pins the README flag documentation to the
// CLIs' actual flag sets, in both directions: every flag a CLI registers
// must have a README row with its column checked, and every checked cell
// must correspond to a registered flag — so adding, removing or renaming a
// flag without updating the table breaks the build, not the reader.
func TestReadmeFlagTablesMatchCLIs(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(data)

	// The combined tracegen/prefetchsim/mkfigures table: columns T, P, M.
	clis := []struct {
		name   string
		column int
	}{{"tracegen", 0}, {"prefetchsim", 1}, {"mkfigures", 2}}
	documented := map[string]map[string]bool{}
	for _, c := range clis {
		documented[c.name] = map[string]bool{}
	}
	benchserverDocumented := map[string]bool{}
	for _, m := range flagTableRow.FindAllStringSubmatch(readme, -1) {
		name, cells := m[1], strings.Split(m[2], "|")
		if len(cells) >= 4 {
			// T/P/M row: flag | T | P | M | meaning.
			for _, c := range clis {
				if strings.Contains(cells[c.column], "✓") {
					documented[c.name][name] = true
				}
			}
		} else {
			// Two-cell row: the benchserver table (flag | meaning).
			benchserverDocumented[name] = true
		}
	}

	for _, c := range clis {
		actual := cliFlags(t, c.name)
		for f := range actual {
			if !documented[c.name][f] {
				t.Errorf("README flag table: %s registers -%s but its column is not checked", c.name, f)
			}
		}
		for f := range documented[c.name] {
			if !actual[f] {
				t.Errorf("README flag table: %s column checks -%s, which the CLI does not register", c.name, f)
			}
		}
	}

	actual := cliFlags(t, "benchserver")
	for f := range actual {
		if !benchserverDocumented[f] {
			t.Errorf("README benchserver table: missing registered flag -%s", f)
		}
	}
	for f := range benchserverDocumented {
		if !actual[f] {
			t.Errorf("README benchserver table documents -%s, which the CLI does not register", f)
		}
	}
}
