package busprefetch

// Documentation gates, run as part of the normal test suite and by the CI
// docs job: every internal package must carry its godoc overview in a
// dedicated doc.go, and every relative link in the top-level markdown
// documents must resolve to a real file.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestInternalPackagesHaveDocGo enforces the documentation layout: each
// internal/* package keeps its package-level godoc overview in doc.go, so
// the overview has one predictable home and code files start at the code.
func TestInternalPackagesHaveDocGo(t *testing.T) {
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no internal packages found")
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg := e.Name()
		path := filepath.Join("internal", pkg, "doc.go")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("package internal/%s has no doc.go: %v", pkg, err)
			continue
		}
		text := string(data)
		if !strings.HasPrefix(text, "// Package "+pkg+" ") && !strings.HasPrefix(text, "// Package "+pkg+"\n") {
			t.Errorf("internal/%s/doc.go does not open with a %q godoc comment", pkg, "Package "+pkg)
		}
		if !strings.Contains(text, "\npackage "+pkg+"\n") && !strings.HasSuffix(text, "\npackage "+pkg) {
			t.Errorf("internal/%s/doc.go does not declare package %s", pkg, pkg)
		}
	}
}

// markdownLink matches [text](target) links, including image links.
var markdownLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinksResolve checks every relative link in the top-level
// documents: a renamed or deleted file must break the build, not the reader.
func TestMarkdownLinksResolve(t *testing.T) {
	docs := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "PERFORMANCE.md", "ROADMAP.md", "CHANGES.md"}
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		for _, m := range markdownLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s links to %q, which does not exist", doc, m[1])
			}
		}
	}
}
