// Distance: explore the prefetch-distance tradeoff of the paper's §4.3. A
// short distance leaves prefetches in progress when the CPU wants the data
// (cheap partial stalls); a long distance completes every prefetch but holds
// prefetched lines in the cache longer, where they both evict live data and
// get evicted before use — conflict misses. The paper's conclusion:
// "prefetching algorithms should strive to receive the prefetched data
// exactly on time", and stretching the distance until no prefetch is ever
// late does not pay.
//
//	go run ./examples/distance
//	go run ./examples/distance -workload topopt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"busprefetch"
)

func main() {
	workload := flag.String("workload", "mp3d", "workload to sweep")
	transfer := flag.Int("transfer", 8, "data-transfer latency in cycles")
	scale := flag.Float64("scale", 0.5, "trace length multiplier")
	flag.Parse()

	fmt.Printf("Prefetch distance sweep: %s (PREF, transfer = %d cycles)\n\n", *workload, *transfer)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "distance\trel. time\tpf-in-progress MR\tconflict (non-sharing pref'd) MR\tCPU MR")
	for _, dist := range []int{25, 50, 100, 200, 400, 800} {
		results, err := busprefetch.Compare(busprefetch.RunSpec{
			Workload: *workload,
			Transfer: *transfer,
			Scale:    *scale,
			Distance: dist,
		}, "PREF")
		if err != nil {
			log.Fatal(err)
		}
		pf := results[1]
		fmt.Fprintf(tw, "%d\t%.3f\t%.4f\t%.4f\t%.4f\n",
			dist, pf.RelativeTime,
			pf.Components.PrefetchInProgress,
			pf.Components.NonSharingPrefetched,
			pf.CPUMissRate)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nAs the distance grows, prefetch-in-progress misses disappear but")
	fmt.Println("prefetched-then-replaced conflict misses take their place — trading the")
	fmt.Println("cheapest miss type for the most expensive one.")
}
