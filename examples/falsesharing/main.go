// Falsesharing: reproduce the paper's §4.4 result that restructuring shared
// data to remove false sharing both eliminates most invalidation misses and
// lets a plain uniprocessor-style prefetcher (PREF) approach the specialized
// write-shared strategy (PWS).
//
// The demo runs Topopt and Pverify — the two programs the paper restructures
// — in their original (false-sharing-prone) and restructured layouts, and
// prints the miss rates and relative execution times of Tables 4 and 5.
//
//	go run ./examples/falsesharing
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"busprefetch"
)

func main() {
	transfer := flag.Int("transfer", 8, "data-transfer latency in cycles")
	scale := flag.Float64("scale", 0.5, "trace length multiplier")
	flag.Parse()

	fmt.Printf("Restructuring shared data to remove false sharing (transfer = %d cycles)\n\n", *transfer)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tlayout\tstrategy\trel. time\tCPU MR\tinval MR\tfalse-sharing MR")
	for _, wl := range []string{"topopt", "pverify"} {
		for _, restructured := range []bool{false, true} {
			layout := "original"
			if restructured {
				layout = "restructured"
			}
			results, err := busprefetch.Compare(busprefetch.RunSpec{
				Workload:     wl,
				Transfer:     *transfer,
				Scale:        *scale,
				Restructured: restructured,
			}, "PREF", "PWS")
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range results {
				fmt.Fprintf(tw, "%s\t%s\t%s\t%.3f\t%.4f\t%.4f\t%.4f\n",
					wl, layout, r.Strategy, r.RelativeTime,
					r.CPUMissRate, r.InvalidationMissRate, r.FalseSharingMissRate)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nRestructuring slashes the false-sharing miss rate; what invalidation")
	fmt.Println("misses remain are true sharing. With the sharing problem gone, PREF's")
	fmt.Println("relative time approaches PWS's — uniprocessor-oriented prefetching works")
	fmt.Println("again, exactly the paper's conclusion.")
}
