// Quickstart: run one workload under every prefetching strategy on the
// paper's default machine and print the headline comparison — execution time
// relative to no prefetching, miss rates and bus utilization.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -workload pverify -transfer 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"busprefetch"
)

func main() {
	workload := flag.String("workload", "mp3d", "workload to simulate")
	transfer := flag.Int("transfer", 8, "data-transfer latency in cycles (4-32)")
	scale := flag.Float64("scale", 0.5, "trace length multiplier")
	flag.Parse()

	fmt.Printf("Prefetching on a bus-based multiprocessor: %s, %d-cycle data transfer\n\n", *workload, *transfer)

	results, err := busprefetch.Compare(busprefetch.RunSpec{
		Workload: *workload,
		Transfer: *transfer,
		Scale:    *scale,
	})
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\trel. time\tspeedup\tCPU MR\ttotal MR\tbus util\tproc util")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%.3f\t%.2f\t%.4f\t%.4f\t%.2f\t%.2f\n",
			r.Strategy, r.RelativeTime, busprefetch.Speedup(r.RelativeTime),
			r.CPUMissRate, r.TotalMissRate, r.BusUtilization, r.ProcessorUtilization)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nNote how every prefetching strategy raises the total miss rate and bus")
	fmt.Println("utilization even when it lowers the CPU miss rate — the paper's central")
	fmt.Println("tension on a bandwidth-limited machine.")
}
