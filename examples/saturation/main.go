// Saturation: sweep the contended data-transfer latency from a fast bus to a
// saturated one and watch prefetching's benefit evaporate — the paper's
// Figure 2 phenomenon. On a fast bus prefetching hides latency; as the bus
// approaches saturation the extra traffic prefetching generates crowds out
// the very misses it was hiding, and the speedup shrinks toward (or past)
// zero.
//
//	go run ./examples/saturation
//	go run ./examples/saturation -workload mp3d
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"busprefetch"
)

func main() {
	workload := flag.String("workload", "pverify", "workload to sweep")
	strategy := flag.String("strategy", "PREF", "prefetch strategy to compare against NP")
	scale := flag.Float64("scale", 0.5, "trace length multiplier")
	flag.Parse()

	fmt.Printf("Bus saturation sweep: %s with %s prefetching\n\n", *workload, *strategy)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "transfer cycles\tNP bus util\t"+*strategy+" bus util\trel. time\tspeedup")
	for _, transfer := range []int{4, 8, 16, 24, 32} {
		results, err := busprefetch.Compare(busprefetch.RunSpec{
			Workload: *workload,
			Transfer: transfer,
			Scale:    *scale,
		}, *strategy)
		if err != nil {
			log.Fatal(err)
		}
		np, pf := results[0], results[1]
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.3f\t%.2f\n",
			transfer, np.BusUtilization, pf.BusUtilization,
			pf.RelativeTime, busprefetch.Speedup(pf.RelativeTime))
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nThe speedup is largest on the fast bus and decays as the data transfer")
	fmt.Println("slows: once the bus saturates, execution time tracks total bus operations,")
	fmt.Println("which prefetching can only increase.")
}
