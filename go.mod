module busprefetch

go 1.23
