module busprefetch

go 1.22
