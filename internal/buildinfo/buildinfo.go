package buildinfo

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// String returns "name version (go1.xx, rev abcdef12)" for the running
// binary. Fields the build did not stamp (for example the VCS revision in a
// non-git build, or the module version in a `go run` build) are omitted
// rather than faked.
func String(name string) string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return name + " (build info unavailable)"
	}
	return describe(name, info)
}

// describe is String on an explicit *debug.BuildInfo, split out for testing.
func describe(name string, info *debug.BuildInfo) string {
	version := info.Main.Version
	if version == "" {
		version = "(devel)"
	}
	var extras []string
	if info.GoVersion != "" {
		extras = append(extras, info.GoVersion)
	}
	if rev, dirty := vcs(info); rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		extras = append(extras, "rev "+rev)
	}
	s := fmt.Sprintf("%s %s", name, version)
	if len(extras) > 0 {
		s += " (" + strings.Join(extras, ", ") + ")"
	}
	return s
}

// Revision returns the VCS revision stamped into the running binary
// ("abcdef123456", with "+dirty" appended for modified trees), or "unknown"
// when the build carries none. Checkpoint keys embed it so persisted sweep
// results can never resurrect across code changes.
func Revision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := vcs(info)
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// vcs extracts the VCS revision and modified flag from the build settings.
func vcs(info *debug.BuildInfo) (rev string, dirty bool) {
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return rev, dirty
}
