package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestStringNamesTheBinary(t *testing.T) {
	got := String("prefetchsim")
	if !strings.HasPrefix(got, "prefetchsim ") {
		t.Errorf("String() = %q, want prefix %q", got, "prefetchsim ")
	}
	if strings.Contains(got, "\n") {
		t.Errorf("version string is not one line: %q", got)
	}
}

func TestDescribeStampedBuild(t *testing.T) {
	info := &debug.BuildInfo{
		GoVersion: "go1.23.0",
		Main:      debug.Module{Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123"},
			{Key: "vcs.modified", Value: "true"},
		},
	}
	got := describe("mkfigures", info)
	want := "mkfigures v1.2.3 (go1.23.0, rev 0123456789ab+dirty)"
	if got != want {
		t.Errorf("describe() = %q, want %q", got, want)
	}
}

func TestDescribeBareBuild(t *testing.T) {
	got := describe("tracegen", &debug.BuildInfo{})
	if got != "tracegen (devel)" {
		t.Errorf("describe() = %q, want %q", got, "tracegen (devel)")
	}
}
