// Package buildinfo formats the one-line -version string the CLIs share,
// from the build metadata the Go linker already embeds (debug/buildinfo).
// No version constant to forget to bump: the module version, VCS revision
// and toolchain come straight from the binary.
package buildinfo
