package bus

import "testing"

// The bus microbenchmark drives arbitration under the worst contention the
// simulator produces: every processor keeps a demand fetch, a speculative
// prefetch, and a writeback outstanding at all times, so each grant decision
// scans a fully populated pending structure. The body is a plain function
// returning the final traffic counters, and TestContentionBodyDeterministic
// pins them in normal `go test` mode so the benchmarked arbitration can
// never drift from the simulated semantics (see PERFORMANCE.md).

// runContention saturates an nproc-processor bus: each processor submits a
// demand fill, a prefetch fill, and a writeback, and resubmits each the
// moment it completes, rounds times. Returns the final stats.
func runContention(nproc, rounds int) Stats {
	s := &testSched{}
	b, err := New(s, nproc)
	if err != nil {
		panic(err)
	}
	var submit func(proc, remaining int, class Class, op Op)
	submit = func(proc, remaining int, class Class, op Op) {
		r := &Request{Ready: s.now, Occupancy: 4, Class: class, Op: op, Proc: proc}
		r.OnComplete = func(uint64) {
			if remaining > 1 {
				submit(proc, remaining-1, class, op)
			}
		}
		if err := b.Submit(s.now, r); err != nil {
			panic(err)
		}
	}
	for p := 0; p < nproc; p++ {
		submit(p, rounds, Demand, OpFill)
		submit(p, rounds, Prefetch, OpFill)
		submit(p, rounds, Writeback, OpWriteback)
	}
	s.run()
	return b.Stats()
}

func BenchmarkArbitrationContended(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := runContention(16, 32)
		if st.TotalOps() != 16*32*3 {
			b.Fatalf("granted %d ops, want %d", st.TotalOps(), 16*32*3)
		}
	}
}

// TestContentionBodyDeterministic runs the benchmark body once as plain test
// code and pins every counter: all submitted transactions are granted, the
// bus never idles under saturation, and the demand/prefetch split matches
// the submitted mix.
func TestContentionBodyDeterministic(t *testing.T) {
	const nproc, rounds = 16, 32
	st := runContention(nproc, rounds)
	total := uint64(nproc * rounds * 3)
	if st.TotalOps() != total {
		t.Errorf("TotalOps = %d, want %d", st.TotalOps(), total)
	}
	if want := total * 4; st.BusyCycles != want {
		t.Errorf("BusyCycles = %d, want %d (no idle gaps under saturation)", st.BusyCycles, want)
	}
	fills := uint64(nproc * rounds * 2)
	if st.Ops[OpFill] != fills {
		t.Errorf("fills = %d, want %d", st.Ops[OpFill], fills)
	}
	if st.Ops[OpWriteback] != uint64(nproc*rounds) {
		t.Errorf("writebacks = %d, want %d", st.Ops[OpWriteback], nproc*rounds)
	}
	if st.DemandGrants != uint64(nproc*rounds) || st.PrefetchGrants != uint64(nproc*rounds) {
		t.Errorf("demand/prefetch grants = %d/%d, want %d/%d",
			st.DemandGrants, st.PrefetchGrants, nproc*rounds, nproc*rounds)
	}
	// Determinism: an identical rerun must produce identical counters.
	if again := runContention(nproc, rounds); again != st {
		t.Errorf("rerun stats differ: %+v vs %+v", again, st)
	}
}
