package bus

import (
	"fmt"

	"busprefetch/internal/names"
)

// Scheduler lets the bus schedule future work on the simulation's event
// queue. internal/sim implements it.
type Scheduler interface {
	// At schedules fn to run at time t (>= current simulation time). Events
	// scheduled earlier run first; ties run in scheduling order.
	At(t uint64, fn func(now uint64))
}

// Class is an arbitration priority class.
type Class uint8

const (
	// Demand requests block a CPU: demand fetches, upgrades, and prefetches
	// a CPU is now stalled on.
	Demand Class = iota
	// Prefetch requests are speculative; they lose arbitration to demand.
	Prefetch
	// Writeback requests drain dirty victims; nobody waits on them.
	Writeback
	numClasses
)

var classNames = []string{"demand", "prefetch", "writeback"}

func (c Class) String() string { return names.Lookup("Class", classNames, int(c)) }

// Op classifies a request for traffic accounting.
type Op uint8

const (
	// OpFill is a data transfer that fills a cache line (from memory or
	// another cache).
	OpFill Op = iota
	// OpInvalidate is an address-only invalidation (a write to a Shared
	// line upgrading to Modified).
	OpInvalidate
	// OpWriteback is a dirty-line writeback to memory.
	OpWriteback
	// OpUpdate is a word-update broadcast: a write-update protocol's write
	// to a shared line, carrying the address and one word of data instead of
	// invalidating the remote copies.
	OpUpdate
	numOps
)

var opNames = []string{"fill", "invalidate", "writeback", "update"}

func (o Op) String() string { return names.Lookup("Op", opNames, int(o)) }

// Discipline is the bus's arbitration service discipline.
type Discipline uint8

const (
	// Priority is the paper's machine (§3.3): all Demand-class requests are
	// considered before any Prefetch, and writebacks come last; within a
	// class, round-robin from the last winner.
	Priority Discipline = iota
	// FCFS grants strictly in submission order regardless of class — the
	// alternative service discipline of the queueing analyses in the related
	// work. A stalled CPU's demand fetch waits behind earlier prefetches and
	// writebacks.
	FCFS
	numDisciplines
)

var disciplineNames = []string{"priority", "fcfs"}

func (d Discipline) String() string { return names.Lookup("Discipline", disciplineNames, int(d)) }

// Valid reports whether d is a known discipline.
func (d Discipline) Valid() bool { return d < numDisciplines }

// Disciplines returns every discipline in declaration order.
func Disciplines() []Discipline { return []Discipline{Priority, FCFS} }

// ParseDiscipline resolves a discipline name ("priority", "fcfs"),
// case-insensitively.
func ParseDiscipline(name string) (Discipline, error) {
	i, err := names.Parse("discipline", disciplineNames, name)
	if err != nil {
		return Priority, fmt.Errorf("bus: %w", err)
	}
	return Discipline(i), nil
}

// Request is one bus transaction.
type Request struct {
	// Ready is the earliest time the request may be granted (issue time plus
	// the uncontended latency portion).
	Ready uint64
	// Occupancy is how many cycles the request holds the bus once granted.
	Occupancy uint64
	// Class is the arbitration priority. Promote can raise it later.
	Class Class
	// Op classifies the transaction for traffic accounting.
	Op Op
	// Addr is the line address the transaction concerns. The single bus
	// ignores it; multi-link interconnects route on it, so it must be stable
	// for the life of the request.
	Addr uint64
	// Proc is the requesting processor, used for round-robin fairness.
	// While the request is pending, Class and Proc index the bus's internal
	// queues and must not be mutated directly; use Promote to raise a
	// pending request's class.
	Proc int
	// OnGrant, if non-nil, runs at the grant time — the transaction's
	// serialization point, where the simulator performs snooping.
	OnGrant func(grant uint64)
	// OnComplete, if non-nil, runs when the occupancy ends (grant +
	// Occupancy) — where fills install their line.
	OnComplete func(complete uint64)

	seq     uint64
	pending bool
	granted bool
}

// Granted reports whether the request has been granted the bus.
func (r *Request) Granted() bool { return r.granted }

// Reset clears a completed (or never-submitted) request's bookkeeping so the
// same allocation can carry a new transaction — internal/sim pools its
// request structs to keep the per-fetch path allocation-free. Resetting a
// still-pending request is ignored; the subsequent Submit then fails with
// the double-submission error.
func (r *Request) Reset() {
	if r.pending {
		return
	}
	r.granted = false
	r.seq = 0
}

// Stats counts bus traffic.
type Stats struct {
	// BusyCycles is the total occupancy granted.
	BusyCycles uint64
	// Ops counts transactions by kind.
	Ops [numOps]uint64
	// DemandGrants and PrefetchGrants split fills by the class they held at
	// grant time.
	DemandGrants   uint64
	PrefetchGrants uint64
}

// TotalOps returns the total number of bus transactions.
func (s *Stats) TotalOps() uint64 {
	var n uint64
	for _, v := range s.Ops {
		n += v
	}
	return n
}

// Observer receives every grant at the moment arbitration decides it: the
// grant time, the occupancy the winner will hold, its op, the arbitration
// class it held at the grant, and the requesting processor. The observability
// layer uses it to build bus-occupancy timelines; a nil observer (the
// default) costs one predictable branch per grant.
type Observer func(grant, occupancy uint64, op Op, class Class, proc int)

// Bus is the contended resource.
//
// Pending requests live in per-class, per-processor queues rather than one
// scanned slice: arbitration order is (class, round-robin distance from the
// last winner, submission order), so the winner is found by walking the
// processors of the highest non-empty class in round-robin order and taking
// the first ready request — no full scan, no mid-slice splice. Each queue
// holds one processor's same-class requests in submission (seq) order; the
// queues are tiny (a processor has at most one outstanding demand fetch, a
// prefetch-buffer-depth of prefetches, and a handful of writebacks), so the
// occasional mid-queue removal is a short copy within one small slice.
type Bus struct {
	sched      Scheduler
	nproc      int
	freeAt     uint64
	lastWin    int // processor that won the previous arbitration
	observer   Observer
	seq        uint64
	discipline Discipline

	// queues[class][proc] holds that processor's pending requests of that
	// class in submission order. classCount tracks entries per class so
	// arbitration skips empty classes without touching their queues;
	// npending is the total.
	queues     [numClasses][]procQueue
	classCount [numClasses]int
	npending   int

	// attemptAt is the earliest outstanding grant-attempt event, or noAttempt.
	attemptAt uint64
	// completionDone guards the cycle at which the in-service transaction
	// ends: independently scheduled arbitration events can fire at exactly
	// freeAt *before* the completion callback installs the transaction's
	// results, and a grant issued then would snoop stale cache state. No
	// grant may happen at freeAt until the completion callback has run.
	completionDone bool
	// inService is the granted transaction whose occupancy is running; its
	// completion event is the single outstanding call of completeFn.
	inService *Request

	// attemptFn and completeFn are the bus's event callbacks bound once at
	// construction, so scheduling them does not allocate a method-value
	// closure per event.
	attemptFn  func(uint64)
	completeFn func(uint64)

	stats Stats
}

// procQueue is one processor's pending requests of one class, in submission
// order.
type procQueue []*Request

const noAttempt = ^uint64(0)

// New creates a bus for nproc processors using sched for future events,
// arbitrating with the paper's Priority discipline.
func New(sched Scheduler, nproc int) (*Bus, error) {
	return NewWithDiscipline(sched, nproc, Priority)
}

// NewWithDiscipline creates a bus arbitrating under the given service
// discipline.
func NewWithDiscipline(sched Scheduler, nproc int, d Discipline) (*Bus, error) {
	if sched == nil {
		return nil, fmt.Errorf("bus: nil scheduler")
	}
	if nproc <= 0 {
		return nil, fmt.Errorf("bus: processor count %d must be positive", nproc)
	}
	if !d.Valid() {
		return nil, fmt.Errorf("bus: unknown discipline %d", int(d))
	}
	b := &Bus{sched: sched, nproc: nproc, lastWin: nproc - 1, discipline: d, attemptAt: noAttempt, completionDone: true}
	for c := range b.queues {
		b.queues[c] = make([]procQueue, nproc)
	}
	b.attemptFn = b.attempt
	b.completeFn = b.complete
	return b, nil
}

// Discipline returns the bus's service discipline.
func (b *Bus) Discipline() Discipline { return b.discipline }

// Stats returns the traffic counters accumulated so far.
func (b *Bus) Stats() Stats { return b.stats }

// SetObserver installs (or, with nil, removes) the grant observer.
func (b *Bus) SetObserver(fn Observer) { b.observer = fn }

// Pending returns the number of requests awaiting a grant.
func (b *Bus) Pending() int { return b.npending }

// FreeAt returns the time the bus next becomes free.
func (b *Bus) FreeAt() uint64 { return b.freeAt }

// Submit queues a request. now is the current simulation time; the request's
// Ready is clamped up to now. A nil, re-submitted, or zero-occupancy fill
// request is rejected with an error — the request is not queued and the bus
// state is unchanged, so the caller can fail its run with context instead of
// crashing the process.
func (b *Bus) Submit(now uint64, r *Request) error {
	if r == nil {
		return fmt.Errorf("bus: nil request at cycle %d", now)
	}
	if r.pending || r.granted {
		return fmt.Errorf("bus: %v %v request from proc %d submitted twice at cycle %d", r.Class, r.Op, r.Proc, now)
	}
	if r.Proc < 0 || r.Proc >= b.nproc {
		return fmt.Errorf("bus: request from proc %d outside [0, %d) at cycle %d", r.Proc, b.nproc, now)
	}
	if r.Ready < now {
		r.Ready = now
	}
	b.seq++
	r.seq = b.seq
	r.pending = true
	q := &b.queues[r.Class][r.Proc]
	*q = append(*q, r)
	b.classCount[r.Class]++
	b.npending++
	b.scheduleAttempt(now, max(r.Ready, b.freeAt))
	return nil
}

// remove drops the request at index i of the given class/proc queue. The
// queue is small (bounded by one processor's outstanding requests of one
// class), so the copy is a few pointer moves; the vacated tail slot is
// cleared so the queue does not pin the request for the GC.
func (b *Bus) remove(class Class, proc, i int) {
	q := b.queues[class][proc]
	copy(q[i:], q[i+1:])
	q[len(q)-1] = nil
	b.queues[class][proc] = q[:len(q)-1]
	b.classCount[class]--
	b.npending--
}

// Promote raises a still-pending request to Demand class (a CPU is now
// blocked on a previously speculative prefetch). It is a no-op once granted.
func (b *Bus) Promote(r *Request) {
	if !r.pending || r.Class == Demand {
		return
	}
	q := b.queues[r.Class][r.Proc]
	for i, p := range q {
		if p == r {
			b.remove(r.Class, r.Proc, i)
			break
		}
	}
	r.Class = Demand
	// Re-queue in submission order: the promoted request keeps its original
	// seq, so it slots in ahead of any demand request submitted after it.
	dq := b.queues[Demand][r.Proc]
	at := len(dq)
	for at > 0 && dq[at-1].seq > r.seq {
		at--
	}
	dq = append(dq, nil)
	copy(dq[at+1:], dq[at:])
	dq[at] = r
	b.queues[Demand][r.Proc] = dq
	b.classCount[Demand]++
	b.npending++
}

// Cancel removes a still-pending request (unused by the core simulator but
// available to extensions such as prefetch dropping). It reports whether the
// request was removed before being granted.
func (b *Bus) Cancel(r *Request) bool {
	if !r.pending {
		return false
	}
	for i, p := range b.queues[r.Class][r.Proc] {
		if p == r {
			b.remove(r.Class, r.Proc, i)
			r.pending = false
			return true
		}
	}
	return false
}

func (b *Bus) scheduleAttempt(now, t uint64) {
	if t < now {
		t = now
	}
	if b.attemptAt <= t {
		return // an earlier or equal attempt is already outstanding
	}
	b.attemptAt = t
	b.sched.At(t, b.attemptFn)
}

// attempt runs one arbitration round at time now.
func (b *Bus) attempt(now uint64) {
	if b.attemptAt == now || b.attemptAt < now {
		b.attemptAt = noAttempt
	}
	if b.freeAt > now || (b.freeAt == now && !b.completionDone) {
		// Busy, or the in-service transaction ends this cycle but has not
		// installed its results yet; its completion will re-arm arbitration.
		return
	}
	r, class, proc, idx := b.pick(now)
	if r == nil {
		// Nothing ready yet: re-arm at the earliest future Ready.
		earliest := noAttempt
		for c := range b.queues {
			if b.classCount[c] == 0 {
				continue
			}
			for _, q := range b.queues[c] {
				for _, p := range q {
					if p.Ready < earliest {
						earliest = p.Ready
					}
				}
			}
		}
		if earliest != noAttempt {
			b.scheduleAttempt(now, earliest)
		}
		return
	}
	b.remove(class, proc, idx)
	r.pending = false
	r.granted = true
	b.lastWin = r.Proc
	b.freeAt = now + r.Occupancy
	b.completionDone = false
	b.stats.BusyCycles += r.Occupancy
	b.stats.Ops[r.Op]++
	if r.Op == OpFill {
		if r.Class == Demand {
			b.stats.DemandGrants++
		} else {
			b.stats.PrefetchGrants++
		}
	}
	if b.observer != nil {
		b.observer(now, r.Occupancy, r.Op, r.Class, r.Proc)
	}
	if r.OnGrant != nil {
		r.OnGrant(now)
	}
	b.inService = r
	b.sched.At(b.freeAt, b.completeFn)
}

// complete ends the in-service transaction's occupancy: it runs the
// transaction's OnComplete (fills install their line here, before any snoop
// of the next grant can observe the cache), then runs the next arbitration
// round. Exactly one completion event is outstanding per grant, so the
// single inService field and the bound completeFn replace the per-grant
// closure the old implementation allocated.
func (b *Bus) complete(t uint64) {
	r := b.inService
	b.inService = nil
	b.completionDone = true
	if r.OnComplete != nil {
		r.OnComplete(t)
	}
	b.attempt(t)
}

// pick selects the winning pending request at time now, or nil. Under the
// Priority discipline the selection order is: highest class (Demand <
// Prefetch < Writeback numerically), then round-robin distance from the last
// winner, then submission order. With per-class per-proc queues that order is
// positional: walk the processors of the first non-empty class starting just
// past the last winner, and within a processor's queue (kept in submission
// order) take the first ready entry.
func (b *Bus) pick(now uint64) (*Request, Class, int, int) {
	if b.discipline == FCFS {
		return b.pickFCFS(now)
	}
	for c := Class(0); c < numClasses; c++ {
		if b.classCount[c] == 0 {
			continue
		}
		qs := b.queues[c]
		for k := 1; k <= b.nproc; k++ {
			p := b.lastWin + k
			if p >= b.nproc {
				p -= b.nproc
			}
			for i, r := range qs[p] {
				if r.Ready <= now {
					return r, c, p, i
				}
			}
		}
	}
	return nil, 0, 0, 0
}

// pickFCFS selects the ready request with the lowest submission seq across
// every class and processor — strict arrival order, classes ignored. Each
// queue is kept in submission order, so its first ready entry is its
// lowest-seq ready candidate and the scan can stop there; the winner is the
// minimum of those per-queue candidates.
func (b *Bus) pickFCFS(now uint64) (*Request, Class, int, int) {
	var (
		best     *Request
		bc       Class
		bp, bi   int
		bestSeq  = ^uint64(0)
		haveBest = false
	)
	for c := Class(0); c < numClasses; c++ {
		if b.classCount[c] == 0 {
			continue
		}
		for p, q := range b.queues[c] {
			for i, r := range q {
				if r.Ready > now {
					continue
				}
				if !haveBest || r.seq < bestSeq {
					best, bc, bp, bi, bestSeq, haveBest = r, c, p, i, r.seq, true
				}
				break
			}
		}
	}
	if !haveBest {
		return nil, 0, 0, 0
	}
	return best, bc, bp, bi
}
