// Package bus models the contended memory resource of the paper's
// split-transaction bus architecture.
//
// The paper separates the fixed 100-cycle memory latency into an uncontended
// portion (address transmission and memory lookup, assumed pipelined across
// processors) and a contended portion — the data-bus transfer of 4 to 32
// cycles that serializes on a single shared resource and is the machine's
// potential bottleneck. This package implements only the contended resource:
// callers submit a request that becomes Ready after its uncontended phase,
// the bus grants requests one at a time, and each grant occupies the resource
// for the request's Occupancy cycles.
//
// Arbitration is round-robin across processors and "favors blocking loads
// over prefetches" (paper §3.3): all Demand-class requests are considered
// before any Prefetch-class request, and writebacks come last.
package bus

import (
	"fmt"

	"busprefetch/internal/names"
)

// Scheduler lets the bus schedule future work on the simulation's event
// queue. internal/sim implements it.
type Scheduler interface {
	// At schedules fn to run at time t (>= current simulation time). Events
	// scheduled earlier run first; ties run in scheduling order.
	At(t uint64, fn func(now uint64))
}

// Class is an arbitration priority class.
type Class uint8

const (
	// Demand requests block a CPU: demand fetches, upgrades, and prefetches
	// a CPU is now stalled on.
	Demand Class = iota
	// Prefetch requests are speculative; they lose arbitration to demand.
	Prefetch
	// Writeback requests drain dirty victims; nobody waits on them.
	Writeback
)

var classNames = []string{"demand", "prefetch", "writeback"}

func (c Class) String() string { return names.Lookup("Class", classNames, int(c)) }

// Op classifies a request for traffic accounting.
type Op uint8

const (
	// OpFill is a data transfer that fills a cache line (from memory or
	// another cache).
	OpFill Op = iota
	// OpInvalidate is an address-only invalidation (a write to a Shared
	// line upgrading to Modified).
	OpInvalidate
	// OpWriteback is a dirty-line writeback to memory.
	OpWriteback
	// OpUpdate is a word-update broadcast: a write-update protocol's write
	// to a shared line, carrying the address and one word of data instead of
	// invalidating the remote copies.
	OpUpdate
	numOps
)

var opNames = []string{"fill", "invalidate", "writeback", "update"}

func (o Op) String() string { return names.Lookup("Op", opNames, int(o)) }

// Request is one bus transaction.
type Request struct {
	// Ready is the earliest time the request may be granted (issue time plus
	// the uncontended latency portion).
	Ready uint64
	// Occupancy is how many cycles the request holds the bus once granted.
	Occupancy uint64
	// Class is the arbitration priority. Promote can raise it later.
	Class Class
	// Op classifies the transaction for traffic accounting.
	Op Op
	// Proc is the requesting processor, used for round-robin fairness.
	Proc int
	// OnGrant, if non-nil, runs at the grant time — the transaction's
	// serialization point, where the simulator performs snooping.
	OnGrant func(grant uint64)
	// OnComplete, if non-nil, runs when the occupancy ends (grant +
	// Occupancy) — where fills install their line.
	OnComplete func(complete uint64)

	seq     uint64
	pending bool
	granted bool
}

// Granted reports whether the request has been granted the bus.
func (r *Request) Granted() bool { return r.granted }

// Stats counts bus traffic.
type Stats struct {
	// BusyCycles is the total occupancy granted.
	BusyCycles uint64
	// Ops counts transactions by kind.
	Ops [numOps]uint64
	// DemandGrants and PrefetchGrants split fills by the class they held at
	// grant time.
	DemandGrants   uint64
	PrefetchGrants uint64
}

// TotalOps returns the total number of bus transactions.
func (s *Stats) TotalOps() uint64 {
	var n uint64
	for _, v := range s.Ops {
		n += v
	}
	return n
}

// Observer receives every grant at the moment arbitration decides it: the
// grant time, the occupancy the winner will hold, its op, the arbitration
// class it held at the grant, and the requesting processor. The observability
// layer uses it to build bus-occupancy timelines; a nil observer (the
// default) costs one predictable branch per grant.
type Observer func(grant, occupancy uint64, op Op, class Class, proc int)

// Bus is the contended resource.
type Bus struct {
	sched    Scheduler
	nproc    int
	freeAt   uint64
	pending  []*Request
	lastWin  int // processor that won the previous arbitration
	observer Observer
	seq      uint64
	// attemptAt is the earliest outstanding grant-attempt event, or noAttempt.
	attemptAt uint64
	// completionDone guards the cycle at which the in-service transaction
	// ends: independently scheduled arbitration events can fire at exactly
	// freeAt *before* the completion callback installs the transaction's
	// results, and a grant issued then would snoop stale cache state. No
	// grant may happen at freeAt until the completion callback has run.
	completionDone bool

	stats Stats
}

const noAttempt = ^uint64(0)

// New creates a bus for nproc processors using sched for future events.
func New(sched Scheduler, nproc int) (*Bus, error) {
	if sched == nil {
		return nil, fmt.Errorf("bus: nil scheduler")
	}
	if nproc <= 0 {
		return nil, fmt.Errorf("bus: processor count %d must be positive", nproc)
	}
	return &Bus{sched: sched, nproc: nproc, lastWin: nproc - 1, attemptAt: noAttempt, completionDone: true}, nil
}

// Stats returns the traffic counters accumulated so far.
func (b *Bus) Stats() Stats { return b.stats }

// SetObserver installs (or, with nil, removes) the grant observer.
func (b *Bus) SetObserver(fn Observer) { b.observer = fn }

// Pending returns the number of requests awaiting a grant.
func (b *Bus) Pending() int { return len(b.pending) }

// FreeAt returns the time the bus next becomes free.
func (b *Bus) FreeAt() uint64 { return b.freeAt }

// Submit queues a request. now is the current simulation time; the request's
// Ready is clamped up to now. A nil, re-submitted, or zero-occupancy fill
// request is rejected with an error — the request is not queued and the bus
// state is unchanged, so the caller can fail its run with context instead of
// crashing the process.
func (b *Bus) Submit(now uint64, r *Request) error {
	if r == nil {
		return fmt.Errorf("bus: nil request at cycle %d", now)
	}
	if r.pending || r.granted {
		return fmt.Errorf("bus: %v %v request from proc %d submitted twice at cycle %d", r.Class, r.Op, r.Proc, now)
	}
	if r.Proc < 0 || r.Proc >= b.nproc {
		return fmt.Errorf("bus: request from proc %d outside [0, %d) at cycle %d", r.Proc, b.nproc, now)
	}
	if r.Ready < now {
		r.Ready = now
	}
	b.seq++
	r.seq = b.seq
	r.pending = true
	b.pending = append(b.pending, r)
	b.scheduleAttempt(now, max(r.Ready, b.freeAt))
	return nil
}

// Promote raises a still-pending request to Demand class (a CPU is now
// blocked on a previously speculative prefetch). It is a no-op once granted.
func (b *Bus) Promote(r *Request) {
	if r.pending {
		r.Class = Demand
	}
}

// Cancel removes a still-pending request (unused by the core simulator but
// available to extensions such as prefetch dropping). It reports whether the
// request was removed before being granted.
func (b *Bus) Cancel(r *Request) bool {
	if !r.pending {
		return false
	}
	for i, p := range b.pending {
		if p == r {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			r.pending = false
			return true
		}
	}
	return false
}

func (b *Bus) scheduleAttempt(now, t uint64) {
	if t < now {
		t = now
	}
	if b.attemptAt <= t {
		return // an earlier or equal attempt is already outstanding
	}
	b.attemptAt = t
	b.sched.At(t, b.attempt)
}

// attempt runs one arbitration round at time now.
func (b *Bus) attempt(now uint64) {
	if b.attemptAt == now || b.attemptAt < now {
		b.attemptAt = noAttempt
	}
	if b.freeAt > now || (b.freeAt == now && !b.completionDone) {
		// Busy, or the in-service transaction ends this cycle but has not
		// installed its results yet; its completion will re-arm arbitration.
		return
	}
	idx := b.pick(now)
	if idx < 0 {
		// Nothing ready yet: re-arm at the earliest future Ready.
		earliest := noAttempt
		for _, r := range b.pending {
			if r.Ready < earliest {
				earliest = r.Ready
			}
		}
		if earliest != noAttempt {
			b.scheduleAttempt(now, earliest)
		}
		return
	}
	r := b.pending[idx]
	b.pending = append(b.pending[:idx], b.pending[idx+1:]...)
	r.pending = false
	r.granted = true
	b.lastWin = r.Proc
	b.freeAt = now + r.Occupancy
	b.completionDone = false
	b.stats.BusyCycles += r.Occupancy
	b.stats.Ops[r.Op]++
	if r.Op == OpFill {
		if r.Class == Demand {
			b.stats.DemandGrants++
		} else {
			b.stats.PrefetchGrants++
		}
	}
	if b.observer != nil {
		b.observer(now, r.Occupancy, r.Op, r.Class, r.Proc)
	}
	if r.OnGrant != nil {
		r.OnGrant(now)
	}
	complete := b.freeAt
	b.sched.At(complete, func(t uint64) {
		b.completionDone = true
		if r.OnComplete != nil {
			r.OnComplete(t)
		}
		// The bus is free again; run the next arbitration round after the
		// completion has installed its results (fills before snoops).
		b.attempt(t)
	})
}

// pick selects the winning pending request at time now, or -1. Selection
// order: highest class (Demand < Prefetch < Writeback numerically), then
// round-robin distance from the last winner, then submission order.
func (b *Bus) pick(now uint64) int {
	best := -1
	for i, r := range b.pending {
		if r.Ready > now {
			continue
		}
		if best < 0 || b.better(r, b.pending[best]) {
			best = i
		}
	}
	return best
}

func (b *Bus) better(a, c *Request) bool {
	if a.Class != c.Class {
		return a.Class < c.Class
	}
	da, dc := b.robinDist(a.Proc), b.robinDist(c.Proc)
	if da != dc {
		return da < dc
	}
	return a.seq < c.seq
}

// robinDist returns how far proc is past the last winner in cyclic order;
// the last winner itself gets the largest distance.
func (b *Bus) robinDist(proc int) int {
	d := proc - b.lastWin
	if d <= 0 {
		d += b.nproc
	}
	return d
}
