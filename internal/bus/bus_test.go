package bus

import (
	"container/heap"
	"testing"
)

// testSched is a minimal deterministic event queue for driving the bus in
// isolation.
type testSched struct {
	h   schedHeap
	now uint64
	seq uint64
}

type schedEvent struct {
	t   uint64
	seq uint64
	fn  func(uint64)
}

type schedHeap []schedEvent

func (h schedHeap) Len() int { return len(h) }
func (h schedHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h schedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *schedHeap) Push(x interface{}) { *h = append(*h, x.(schedEvent)) }
func (h *schedHeap) Pop() interface{} {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

func (s *testSched) At(t uint64, fn func(uint64)) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.h, schedEvent{t, s.seq, fn})
}

func (s *testSched) run() {
	for s.h.Len() > 0 {
		e := heap.Pop(&s.h).(schedEvent)
		s.now = e.t
		e.fn(e.t)
	}
}

func mustNew(t *testing.T, s Scheduler, nproc int) *Bus {
	t.Helper()
	b, err := New(s, nproc)
	if err != nil {
		t.Fatalf("New(%d): %v", nproc, err)
	}
	return b
}

func mkReq(ready, occ uint64, class Class, proc int, grants *[]grantRecord, name string) *Request {
	r := &Request{Ready: ready, Occupancy: occ, Class: class, Op: OpFill, Proc: proc}
	r.OnGrant = func(g uint64) {
		*grants = append(*grants, grantRecord{name, g})
	}
	return r
}

type grantRecord struct {
	name  string
	grant uint64
}

func TestSingleRequestGrantedAtReady(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 4)
	var grants []grantRecord
	var completeAt uint64
	r := mkReq(100, 8, Demand, 0, &grants, "r")
	r.OnComplete = func(c uint64) { completeAt = c }
	b.Submit(0, r)
	s.run()
	if len(grants) != 1 || grants[0].grant != 100 {
		t.Fatalf("grants = %v, want r@100", grants)
	}
	if completeAt != 108 {
		t.Errorf("complete at %d, want 108", completeAt)
	}
	if got := b.Stats().BusyCycles; got != 8 {
		t.Errorf("busy cycles %d, want 8", got)
	}
}

func TestSerialization(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 4)
	var grants []grantRecord
	b.Submit(0, mkReq(10, 8, Demand, 0, &grants, "a"))
	b.Submit(0, mkReq(10, 8, Demand, 1, &grants, "b"))
	s.run()
	if len(grants) != 2 {
		t.Fatalf("grants = %v", grants)
	}
	if grants[0].grant != 10 || grants[1].grant != 18 {
		t.Errorf("grants at %d,%d; want 10,18", grants[0].grant, grants[1].grant)
	}
}

func TestDemandBeatsPrefetch(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 4)
	var grants []grantRecord
	// Both ready at 10; prefetch submitted first but demand must win.
	b.Submit(0, mkReq(10, 8, Prefetch, 0, &grants, "pf"))
	b.Submit(0, mkReq(10, 8, Demand, 1, &grants, "dm"))
	s.run()
	if grants[0].name != "dm" {
		t.Errorf("grant order %v, demand must win arbitration", grants)
	}
}

func TestWritebackLosesToBoth(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 4)
	var grants []grantRecord
	b.Submit(0, mkReq(5, 4, Writeback, 0, &grants, "wb"))
	b.Submit(0, mkReq(5, 4, Prefetch, 1, &grants, "pf"))
	b.Submit(0, mkReq(5, 4, Demand, 2, &grants, "dm"))
	s.run()
	want := []string{"dm", "pf", "wb"}
	for i, w := range want {
		if grants[i].name != w {
			t.Fatalf("grant order %v, want %v", grants, want)
		}
	}
}

func TestRoundRobinAmongSameClass(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 4)
	var grants []grantRecord
	// lastWin starts at proc 3, so round-robin order is 0,1,2,3.
	b.Submit(0, mkReq(0, 2, Demand, 2, &grants, "p2"))
	b.Submit(0, mkReq(0, 2, Demand, 0, &grants, "p0"))
	b.Submit(0, mkReq(0, 2, Demand, 3, &grants, "p3"))
	b.Submit(0, mkReq(0, 2, Demand, 1, &grants, "p1"))
	s.run()
	want := []string{"p0", "p1", "p2", "p3"}
	for i, w := range want {
		if grants[i].name != w {
			t.Fatalf("grant order %v, want %v", grants, want)
		}
	}
}

func TestRoundRobinRotates(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 2)
	var grants []grantRecord
	// After proc 0 wins, proc 1 must come before proc 0 again.
	b.Submit(0, mkReq(0, 2, Demand, 0, &grants, "a0"))
	s.run()
	b.Submit(s.now, mkReq(s.now, 2, Demand, 0, &grants, "b0"))
	b.Submit(s.now, mkReq(s.now, 2, Demand, 1, &grants, "b1"))
	s.run()
	if grants[1].name != "b1" || grants[2].name != "b0" {
		t.Errorf("grant order %v, want b1 before b0 after proc 0 won", grants)
	}
}

func TestPromote(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 4)
	var grants []grantRecord
	pf := mkReq(10, 8, Prefetch, 0, &grants, "pf")
	b.Submit(0, pf)
	b.Submit(0, mkReq(10, 8, Prefetch, 1, &grants, "pf2"))
	b.Promote(pf)
	if pf.Class != Demand {
		t.Fatal("Promote did not raise the class")
	}
	s.run()
	if grants[0].name != "pf" {
		t.Errorf("promoted request lost arbitration: %v", grants)
	}
}

func TestCancel(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 4)
	var grants []grantRecord
	r := mkReq(10, 8, Prefetch, 0, &grants, "r")
	b.Submit(0, r)
	if !b.Cancel(r) {
		t.Fatal("Cancel failed on pending request")
	}
	if b.Cancel(r) {
		t.Fatal("Cancel succeeded twice")
	}
	s.run()
	if len(grants) != 0 {
		t.Errorf("cancelled request granted: %v", grants)
	}
}

func TestStatsByOp(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 2)
	var grants []grantRecord
	inv := mkReq(0, 2, Demand, 0, &grants, "inv")
	inv.Op = OpInvalidate
	wb := mkReq(0, 8, Writeback, 0, &grants, "wb")
	wb.Op = OpWriteback
	b.Submit(0, mkReq(0, 8, Demand, 1, &grants, "fill"))
	b.Submit(0, inv)
	b.Submit(0, wb)
	s.run()
	st := b.Stats()
	if st.Ops[OpFill] != 1 || st.Ops[OpInvalidate] != 1 || st.Ops[OpWriteback] != 1 {
		t.Errorf("ops = %v", st.Ops)
	}
	if st.TotalOps() != 3 {
		t.Errorf("TotalOps = %d", st.TotalOps())
	}
	if st.BusyCycles != 18 {
		t.Errorf("BusyCycles = %d, want 18", st.BusyCycles)
	}
	if st.DemandGrants != 1 || st.PrefetchGrants != 0 {
		t.Errorf("fill grant split = %d/%d", st.DemandGrants, st.PrefetchGrants)
	}
}

func TestCompletionRunsBeforeNextGrant(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 2)
	var order []string
	a := &Request{Ready: 0, Occupancy: 4, Class: Demand, Proc: 0,
		OnComplete: func(uint64) { order = append(order, "a-complete") }}
	c := &Request{Ready: 0, Occupancy: 4, Class: Demand, Proc: 1,
		OnGrant: func(uint64) { order = append(order, "c-grant") }}
	b.Submit(0, a)
	b.Submit(0, c)
	s.run()
	if len(order) != 2 || order[0] != "a-complete" || order[1] != "c-grant" {
		t.Errorf("order = %v; fills must install before the next snoop", order)
	}
}

func TestDoubleSubmitRejected(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 2)
	r := &Request{Ready: 0, Occupancy: 1, Proc: 0}
	if err := b.Submit(0, r); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if err := b.Submit(0, r); err == nil {
		t.Error("double submit accepted; want error")
	}
	if got := b.Pending(); got != 1 {
		t.Errorf("pending after rejected resubmit = %d, want 1", got)
	}
	s.run()
	// A granted request must also be rejected on resubmission.
	if err := b.Submit(s.now, r); err == nil {
		t.Error("resubmit of granted request accepted; want error")
	}
}

func TestSubmitRejectsBadRequest(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 2)
	if err := b.Submit(0, nil); err == nil {
		t.Error("nil request accepted; want error")
	}
	if err := b.Submit(0, &Request{Ready: 0, Occupancy: 1, Proc: 7}); err == nil {
		t.Error("out-of-range proc accepted; want error")
	}
	if err := b.Submit(0, &Request{Ready: 0, Occupancy: 1, Proc: -1}); err == nil {
		t.Error("negative proc accepted; want error")
	}
	if got := b.Pending(); got != 0 {
		t.Errorf("rejected submissions left %d pending requests", got)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(&testSched{}, 0); err == nil {
		t.Error("New accepted zero processors")
	}
	if _, err := New(&testSched{}, -3); err == nil {
		t.Error("New accepted negative processors")
	}
	if _, err := New(nil, 4); err == nil {
		t.Error("New accepted nil scheduler")
	}
}

// TestRoundRobinFairnessUnderSaturation keeps four processors' demand
// streams saturating the bus — each processor resubmits a fresh request the
// moment its previous one completes — and verifies the round-robin arbiter
// shares grants evenly (no processor is starved or favored).
func TestRoundRobinFairnessUnderSaturation(t *testing.T) {
	s := &testSched{}
	const nproc = 4
	const perProc = 64
	b := mustNew(t, s, nproc)
	counts := make([]int, nproc)
	var submit func(proc, remaining int)
	submit = func(proc, remaining int) {
		r := &Request{Ready: s.now, Occupancy: 4, Class: Demand, Op: OpFill, Proc: proc}
		r.OnGrant = func(uint64) { counts[proc]++ }
		r.OnComplete = func(uint64) {
			if remaining > 1 {
				submit(proc, remaining-1)
			}
		}
		if err := b.Submit(s.now, r); err != nil {
			t.Fatalf("submit proc %d: %v", proc, err)
		}
	}
	for p := 0; p < nproc; p++ {
		submit(p, perProc)
	}
	s.run()
	for p, c := range counts {
		if c != perProc {
			t.Errorf("proc %d got %d grants, want %d", p, c, perProc)
		}
	}
	// Under permanent saturation the arbiter must also interleave, not run
	// one processor to completion: the bus can never be idle between the
	// first submission and the last completion.
	st := b.Stats()
	if st.BusyCycles != nproc*perProc*4 {
		t.Errorf("busy cycles %d, want %d (no idle gaps under saturation)", st.BusyCycles, nproc*perProc*4)
	}
}

func TestLateReadyRequestWaits(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 2)
	var grants []grantRecord
	b.Submit(0, mkReq(50, 4, Demand, 0, &grants, "late"))
	b.Submit(0, mkReq(0, 4, Prefetch, 1, &grants, "early-pf"))
	s.run()
	// The prefetch is the only request ready at t=0 and must not wait for
	// the (higher-priority) demand that is not ready yet.
	if grants[0].name != "early-pf" || grants[0].grant != 0 {
		t.Errorf("grants = %v", grants)
	}
	if grants[1].grant != 50 {
		t.Errorf("late demand granted at %d, want 50", grants[1].grant)
	}
}
