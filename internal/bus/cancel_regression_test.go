package bus

import "testing"

// These tests pin the removal semantics of the pending-request structure.
//
// Audit (pre-queue-rewrite): the repository had two mid-slice removal sites
// using the append(s[:i], s[i+1:]...) idiom inside a loop — Bus.Cancel here
// and proc.dropBuffered in internal/sim. Both return immediately after the
// splice, so the classic index-skip (the element shifted into position i is
// never visited) could not fire. The hazard was latent, not live: any future
// change that keeps iterating after the splice — a "cancel all prefetches"
// sweep, a multi-match removal — would silently skip the successor of every
// removed element. The tests below pin the observable contract (every
// surviving request is granted exactly once, in arbitration order, whatever
// was removed around it) so both the old scan-and-splice structure and the
// indexed-queue rewrite are held to the same behaviour.

// cancelAll removes every pending request matching pred, the shape of sweep
// a future extension would write. It must be correct in the face of the
// underlying container's removal semantics (this is where the index-skip
// hazard would bite a slice-splice implementation that iterated by index).
func cancelAll(b *Bus, reqs []*Request, pred func(*Request) bool) int {
	n := 0
	for _, r := range reqs {
		if pred(r) && b.Cancel(r) {
			n++
		}
	}
	return n
}

// TestCancelAdjacentRequests cancels two adjacent same-proc requests in
// submission order — the exact pattern that skips an element when a removal
// loop keeps iterating after a splice — and verifies the survivors are all
// granted exactly once.
func TestCancelAdjacentRequests(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 2)
	var grants []grantRecord
	reqs := []*Request{
		mkReq(0, 4, Prefetch, 0, &grants, "pf0"),
		mkReq(0, 4, Prefetch, 0, &grants, "pf1"),
		mkReq(0, 4, Prefetch, 0, &grants, "pf2"),
		mkReq(0, 4, Prefetch, 0, &grants, "pf3"),
	}
	for _, r := range reqs {
		if err := b.Submit(0, r); err != nil {
			t.Fatal(err)
		}
	}
	// Cancel pf1 and pf2 — adjacent in the pending structure. A splice that
	// kept iterating would skip pf2 after removing pf1.
	if got := cancelAll(b, reqs[1:3], func(*Request) bool { return true }); got != 2 {
		t.Fatalf("cancelled %d requests, want 2", got)
	}
	if got := b.Pending(); got != 2 {
		t.Fatalf("Pending() = %d after cancelling 2 of 4, want 2", got)
	}
	s.run()
	if len(grants) != 2 || grants[0].name != "pf0" || grants[1].name != "pf3" {
		t.Fatalf("grants = %v, want [pf0 pf3]", grants)
	}
}

// TestCancelHeadSameProcSuccessorStillGranted cancels the head request of a
// two-deep same-processor queue: the successor slides into the head slot and
// must still win the next arbitration.
func TestCancelHeadSameProcSuccessorStillGranted(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 2)
	var grants []grantRecord
	head := mkReq(0, 4, Demand, 0, &grants, "head")
	succ := mkReq(0, 4, Demand, 0, &grants, "succ")
	b.Submit(0, head)
	b.Submit(0, succ)
	if !b.Cancel(head) {
		t.Fatal("Cancel(head) failed")
	}
	s.run()
	if len(grants) != 1 || grants[0].name != "succ" || grants[0].grant != 0 {
		t.Fatalf("grants = %v, want succ@0", grants)
	}
	if head.Granted() {
		t.Error("cancelled request was granted")
	}
}

// TestCancelFromGrantCallback cancels a pending prefetch from inside another
// request's OnGrant — removal re-entering the bus mid-arbitration. The
// cancelled request must never be granted and the remaining ones must be.
func TestCancelFromGrantCallback(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 4)
	var grants []grantRecord
	victim := mkReq(0, 4, Prefetch, 2, &grants, "victim")
	survivor := mkReq(0, 4, Prefetch, 3, &grants, "survivor")
	killer := &Request{Ready: 0, Occupancy: 4, Class: Demand, Op: OpFill, Proc: 0}
	killer.OnGrant = func(g uint64) {
		grants = append(grants, grantRecord{"killer", g})
		if !b.Cancel(victim) {
			t.Error("Cancel(victim) from OnGrant failed")
		}
	}
	b.Submit(0, killer)
	b.Submit(0, victim)
	b.Submit(0, survivor)
	s.run()
	want := []grantRecord{{"killer", 0}, {"survivor", 4}}
	if len(grants) != len(want) {
		t.Fatalf("grants = %v, want %v", grants, want)
	}
	for i := range want {
		if grants[i] != want[i] {
			t.Fatalf("grants = %v, want %v", grants, want)
		}
	}
	if victim.Granted() {
		t.Error("victim was granted after cancellation")
	}
}

// TestCancelEveryPendingThenResubmit drains the whole pending structure by
// cancellation and verifies a fresh submission still arms arbitration (the
// bus must not be left waiting on a stale attempt for removed work).
func TestCancelEveryPendingThenResubmit(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 2)
	var grants []grantRecord
	reqs := []*Request{
		mkReq(10, 4, Prefetch, 0, &grants, "a"),
		mkReq(10, 4, Prefetch, 1, &grants, "b"),
		mkReq(10, 4, Writeback, 0, &grants, "c"),
	}
	for _, r := range reqs {
		b.Submit(0, r)
	}
	if got := cancelAll(b, reqs, func(*Request) bool { return true }); got != 3 {
		t.Fatalf("cancelled %d, want 3", got)
	}
	if got := b.Pending(); got != 0 {
		t.Fatalf("Pending() = %d, want 0", got)
	}
	fresh := mkReq(20, 4, Demand, 1, &grants, "fresh")
	b.Submit(0, fresh)
	s.run()
	if len(grants) != 1 || grants[0].name != "fresh" || grants[0].grant != 20 {
		t.Fatalf("grants = %v, want fresh@20", grants)
	}
}

// TestCancelInterleavedWithGrants alternates grants and cancellations across
// classes and processors and checks the exact surviving grant order against
// the arbitration rule (class, then round-robin distance, then submission
// order).
func TestCancelInterleavedWithGrants(t *testing.T) {
	s := &testSched{}
	b := mustNew(t, s, 3)
	var grants []grantRecord
	d0 := mkReq(0, 4, Demand, 0, &grants, "d0")
	d1 := mkReq(0, 4, Demand, 1, &grants, "d1")
	p0 := mkReq(0, 4, Prefetch, 0, &grants, "p0")
	p2 := mkReq(0, 4, Prefetch, 2, &grants, "p2")
	w1 := mkReq(0, 4, Writeback, 1, &grants, "w1")
	for _, r := range []*Request{d0, d1, p0, p2, w1} {
		b.Submit(0, r)
	}
	// Cancel d1 (mid-structure, between d0 and the prefetches) and p0.
	b.Cancel(d1)
	b.Cancel(p0)
	s.run()
	// lastWin starts at nproc-1=2, so round-robin favors proc 0 first.
	want := []grantRecord{{"d0", 0}, {"p2", 4}, {"w1", 8}}
	if len(grants) != len(want) {
		t.Fatalf("grants = %v, want %v", grants, want)
	}
	for i := range want {
		if grants[i] != want[i] {
			t.Fatalf("grants = %v, want %v", grants, want)
		}
	}
}
