// Package bus models the contended memory resource of the paper's
// split-transaction bus architecture.
//
// The paper separates the fixed 100-cycle memory latency into an uncontended
// portion (address transmission and memory lookup, assumed pipelined across
// processors) and a contended portion — the data-bus transfer of 4 to 32
// cycles that serializes on a single shared resource and is the machine's
// potential bottleneck. This package implements only the contended resource:
// callers submit a request that becomes Ready after its uncontended phase,
// the bus grants requests one at a time, and each grant occupies the resource
// for the request's Occupancy cycles.
//
// Arbitration is selectable via Discipline. The default, Priority, is the
// paper's machine: round-robin across processors, "favor[ing] blocking loads
// over prefetches" (paper §3.3) — all Demand-class requests are considered
// before any Prefetch-class request, and writebacks come last. FCFS instead
// grants strictly in submission order regardless of class, the alternative
// service discipline the related queueing analyses consider.
//
// One Bus is one link. internal/interconnect composes buses into larger
// fabrics (multi-bus, directory) and routes requests by Request.Addr; the
// bus itself never interprets the address.
package bus
