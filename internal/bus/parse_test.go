package bus

import (
	"strings"
	"testing"
)

// TestParseDiscipline follows the tree's shared parser contract (see
// prefetch.TestParsers): case-insensitive resolution, self-documenting
// rejection diagnostics.
func TestParseDiscipline(t *testing.T) {
	valid := map[string]Discipline{
		"priority": Priority, "Priority": Priority, "PRIORITY": Priority,
		"fcfs": FCFS, "FCFS": FCFS, "Fcfs": FCFS,
	}
	for in, want := range valid {
		got, err := ParseDiscipline(in)
		if err != nil || got != want {
			t.Errorf("ParseDiscipline(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bogus := range []string{"", "fifo", "lifo", "priorityy", "f c f s"} {
		_, err := ParseDiscipline(bogus)
		if err == nil {
			t.Errorf("ParseDiscipline(%q) accepted", bogus)
			continue
		}
		for _, name := range disciplineNames {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("ParseDiscipline(%q) error %q does not list valid name %q", bogus, err, name)
			}
		}
		if !strings.Contains(err.Error(), "valid:") {
			t.Errorf("ParseDiscipline(%q) error %q lacks the valid-names diagnostic", bogus, err)
		}
	}
	if got := Discipline(7).String(); got != "Discipline(7)" {
		t.Errorf("out-of-range Discipline renders %q", got)
	}
	for _, d := range Disciplines() {
		if !d.Valid() {
			t.Errorf("Disciplines() returned invalid %v", d)
		}
		back, err := ParseDiscipline(d.String())
		if err != nil || back != d {
			t.Errorf("ParseDiscipline(%v.String()) = %v, %v", d, back, err)
		}
	}
}
