package cache

import (
	"testing"

	"busprefetch/internal/memory"
)

// The cache microbenchmarks exercise the three operations the simulation
// kernel performs per reference — the hitting probe, the allocate-on-miss,
// and the remote snoop — over a fixed, deterministic address schedule. Each
// benchmark's body is a plain function returning its observable outcome, and
// TestBenchBodiesDeterministic pins those outcomes in normal `go test` mode,
// so the benchmarked path can never drift from the simulated semantics (see
// PERFORMANCE.md).

// benchAddrs returns a deterministic address schedule: n addresses walking
// lines cyclically over a working set of wsLines lines.
func benchAddrs(geom memory.Geometry, n, wsLines int) []memory.Addr {
	addrs := make([]memory.Addr, n)
	for i := range addrs {
		line := i % wsLines
		addrs[i] = memory.Addr(line*geom.LineSize) + memory.Addr((i*memory.WordSize)%geom.LineSize)
	}
	return addrs
}

// probeHits probes every address once after prefilling the cache; the
// working set fits, so every probe hits. Returns the hit count.
func probeHits(c *Cache, addrs []memory.Addr) int {
	hits := 0
	for _, a := range addrs {
		if _, hit := c.Probe(a); hit {
			hits++
		}
	}
	return hits
}

// allocateChurn allocates every address in a working set twice the cache
// size, counting evictions of real (tagged) lines.
func allocateChurn(c *Cache, addrs []memory.Addr) int {
	evictions := 0
	for _, a := range addrs {
		l, ev := c.Allocate(a)
		l.State = Exclusive
		if ev.HadTag {
			evictions++
		}
	}
	return evictions
}

// snoopSweep applies an invalidating snoop to every address and counts the
// copies that were valid when snooped.
func snoopSweep(c *Cache, addrs []memory.Addr) int {
	killed := 0
	for _, a := range addrs {
		if c.SnoopInvalidate(a, 0) != Invalid {
			killed++
		}
	}
	return killed
}

func prefill(c *Cache, geom memory.Geometry, wsLines int) {
	for i := 0; i < wsLines; i++ {
		l, _ := c.Allocate(memory.Addr(i * geom.LineSize))
		l.State = Shared
	}
}

func BenchmarkProbeHit(b *testing.B) {
	geom := memory.DefaultGeometry()
	c := New(geom)
	ws := geom.Lines() / 2
	prefill(c, geom, ws)
	addrs := benchAddrs(geom, 4096, ws)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := probeHits(c, addrs); got != len(addrs) {
			b.Fatalf("probe hits %d, want %d", got, len(addrs))
		}
	}
}

func BenchmarkAllocateChurn(b *testing.B) {
	geom := memory.DefaultGeometry()
	c := New(geom)
	// Working set twice the cache: every allocation past the first lap
	// displaces a resident line.
	addrs := benchAddrs(geom, 4096, geom.Lines()*2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		allocateChurn(c, addrs)
	}
}

func BenchmarkSnoop(b *testing.B) {
	geom := memory.DefaultGeometry()
	c := New(geom)
	ws := geom.Lines() / 2
	addrs := benchAddrs(geom, 4096, ws)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		prefill(c, geom, ws)
		b.StartTimer()
		snoopSweep(c, addrs)
	}
}

// TestBenchBodiesDeterministic runs each benchmark body once, as plain test
// code, and asserts the outcome the benchmark loop checks (or would observe)
// is exactly what the cache semantics demand. If a benchmark body diverges
// from the simulated semantics — probing the wrong working set, allocating
// with a different geometry — this test fails before any timing is trusted.
func TestBenchBodiesDeterministic(t *testing.T) {
	geom := memory.DefaultGeometry()

	c := New(geom)
	ws := geom.Lines() / 2
	prefill(c, geom, ws)
	addrs := benchAddrs(geom, 4096, ws)
	if got := probeHits(c, addrs); got != len(addrs) {
		t.Errorf("probeHits = %d, want %d (working set fits, every probe must hit)", got, len(addrs))
	}

	churn := New(geom)
	churnAddrs := benchAddrs(geom, 4096, geom.Lines()*2)
	first := allocateChurn(churn, churnAddrs)
	// 4096 allocations over 2048 distinct lines into a 1024-line cache:
	// the first 1024 allocations fill cold sets, every later one evicts.
	if want := len(churnAddrs) - geom.Lines(); first != want {
		t.Errorf("allocateChurn (cold) = %d evictions, want %d", first, want)
	}
	if again := allocateChurn(churn, churnAddrs); again != len(churnAddrs) {
		t.Errorf("allocateChurn (warm) = %d evictions, want %d (every set full)", again, len(churnAddrs))
	}

	sc := New(geom)
	prefill(sc, geom, ws)
	if got := snoopSweep(sc, addrs); got != ws {
		t.Errorf("snoopSweep = %d valid copies killed, want %d (each line snooped valid once)", got, ws)
	}
}
