package cache

import (
	"math/bits"

	"busprefetch/internal/memory"
	"busprefetch/internal/names"
)

// State is a per-line coherence state. Invalid, Shared, Exclusive and
// Modified are the Illinois (MESI) states the paper's protocol uses;
// SharedMod additionally serves the write-update (Dragon) protocol, which
// allows dirty lines to be shared.
type State uint8

const (
	// Invalid: the line holds no usable data. A line can be Invalid with a
	// valid tag, which is how the simulator recognizes invalidation misses
	// ("the tags match, but the state has been marked invalid").
	Invalid State = iota
	// Shared: clean, possibly present in other caches. (Dragon's
	// shared-clean Sc state is this same value.)
	Shared
	// Exclusive is the private-clean state: clean and guaranteed to be in no
	// other cache, so it can be written without a bus operation.
	Exclusive
	// Modified: dirty and exclusively owned; must be written back on
	// replacement and supplied by this cache on remote access.
	Modified
	// SharedMod is the write-update (Dragon) shared-dirty state: present in
	// other caches, modified relative to memory, and this cache is the
	// update-owner responsible for supplying data and the eventual
	// writeback. Unreachable under the write-invalidate protocols.
	SharedMod
	// NumStates is the number of coherence states. Dense per-state transition
	// tables (see SnoopTable and internal/sim's protocol tables) are indexed
	// [NumStates]State.
	NumStates
)

var stateNames = []string{"I", "S", "E", "M", "Sm"}

func (s State) String() string { return names.Lookup("State", stateNames, int(s)) }

// Valid reports whether the state holds usable data.
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether the state is modified relative to memory, so a
// replacement owes a writeback bus operation.
func (s State) Dirty() bool { return s == Modified || s == SharedMod }

// NoInvalidatingWord marks a line that was not invalidated by a remote write
// (or whose invalidation word is unknown).
const NoInvalidatingWord = -1

// Line is one cache line with the metadata the paper's analysis needs.
type Line struct {
	// Tag is the global line number (address / line size). Meaningful even
	// when State is Invalid, so invalidation misses can be recognized.
	Tag uint64
	// State is the coherence state.
	State State
	// PrefetchedUnused is set when the line was filled by a prefetch and no
	// demand access has touched it yet. It survives invalidation so a
	// subsequent miss can be classified "prefetched, but disappeared from
	// the cache before use".
	PrefetchedUnused bool
	// WordsAccessed is a bitmask of words demand-accessed by the local
	// processor during the line's current (or, after invalidation, most
	// recent) residence. Used for false-sharing classification.
	WordsAccessed uint64
	// InvalidatingWord is the word index written by the remote processor
	// whose write invalidated this line, or NoInvalidatingWord. An
	// invalidation miss is a false-sharing miss when the local processor
	// never accessed that word (Eggers & Jeremiassen's definition, paper
	// §4.4).
	InvalidatingWord int8
	// lru is the per-set recency stamp (larger = more recent).
	lru uint64

	// tagValid distinguishes a never-used line from an invalidated one.
	tagValid bool
}

// HasTag reports whether the line's tag field holds a real (possibly
// invalidated) line number rather than cold-start garbage.
func (l *Line) HasTag() bool { return l.tagValid }

// Eviction describes what Allocate displaced.
type Eviction struct {
	// LineAddr is the address of the first byte of the displaced line; only
	// meaningful when HadTag.
	LineAddr memory.Addr
	// HadTag is true when a real line (valid or invalidated) was displaced.
	HadTag bool
	// State is the displaced line's coherence state; Modified means the
	// caller owes a writeback bus operation.
	State State
	// PrefetchedUnused is true when the displaced line had been prefetched
	// and never demand-used — a wasted prefetch whose eventual demand miss
	// must be classified "prefetched".
	PrefetchedUnused bool
}

// Cache is a set-associative cache with LRU replacement. Assoc 1 gives the
// paper's direct-mapped cache; Geometry.Assoc 0 gives a fully-associative
// cache (used by the PWS filter).
type Cache struct {
	geom  memory.Geometry
	ways  int
	sets  int
	lines []Line // sets*ways entries, set-major
	clock uint64

	// lineShift and setMask are the geometry's index arithmetic resolved
	// once at construction (LineSize and Sets are validated powers of two).
	// The per-reference lookup path must not re-derive them: Geometry's
	// methods divide by non-constant field values, which the profiler showed
	// dominating Lookup before these were cached.
	lineShift uint
	setMask   uint64
}

// New builds an empty cache with the given geometry. It panics on an invalid
// geometry: geometry is static configuration fixed at process start, so an
// error return would only be rethrown by every caller.
func New(geom memory.Geometry) *Cache {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		geom:      geom,
		ways:      geom.Ways(),
		sets:      geom.Sets(),
		lineShift: uint(bits.TrailingZeros64(uint64(geom.LineSize))),
		setMask:   uint64(geom.Sets() - 1),
	}
	c.lines = make([]Line, c.sets*c.ways)
	for i := range c.lines {
		c.lines[i].InvalidatingWord = NoInvalidatingWord
	}
	return c
}

// Geometry returns the cache's geometry.
func (c *Cache) Geometry() memory.Geometry { return c.geom }

func (c *Cache) set(a memory.Addr) []Line {
	s := int((uint64(a) >> c.lineShift) & c.setMask)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Lookup returns the line whose tag matches a (valid or invalidated), or nil.
// It does not update recency.
func (c *Cache) Lookup(a memory.Addr) *Line {
	tag := uint64(a) >> c.lineShift
	si := int(tag&c.setMask) * c.ways
	set := c.lines[si : si+c.ways]
	for i := range set {
		if set[i].tagValid && set[i].Tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Probe looks a up and reports whether it hits (tag match with valid state).
// The returned line is non-nil whenever the tag matches, even if invalid, so
// the caller can classify an invalidation miss. Probe refreshes recency on a
// hit.
func (c *Cache) Probe(a memory.Addr) (line *Line, hit bool) {
	line = c.Lookup(a)
	if line != nil && line.State.Valid() {
		c.clock++
		line.lru = c.clock
		return line, true
	}
	return line, false
}

// Allocate installs a line for address a, displacing the set's invalid or
// least-recently-used entry, and returns the fresh line plus a description of
// what was displaced. The caller sets the new line's State. If a's tag is
// already present in the set (for example an invalidated line being
// re-fetched), that entry is reused and Eviction.HadTag is false.
func (c *Cache) Allocate(a memory.Addr) (*Line, Eviction) {
	tag := c.geom.LineNumber(a)
	set := c.set(a)
	victim := -1
	for i := range set {
		if set[i].tagValid && set[i].Tag == tag {
			victim = i
			break
		}
	}
	var ev Eviction
	if victim < 0 {
		// Prefer an untagged entry, then an invalidated one, then LRU.
		for i := range set {
			if !set[i].tagValid {
				victim = i
				break
			}
		}
		if victim < 0 {
			for i := range set {
				if victim < 0 {
					victim = i
					continue
				}
				vi, vb := !set[i].State.Valid(), !set[victim].State.Valid()
				switch {
				case vi != vb:
					if vi {
						victim = i
					}
				case set[i].lru < set[victim].lru:
					victim = i
				}
			}
		}
		if set[victim].tagValid {
			ev = Eviction{
				LineAddr:         memory.Addr(set[victim].Tag) * memory.Addr(c.geom.LineSize),
				HadTag:           true,
				State:            set[victim].State,
				PrefetchedUnused: set[victim].PrefetchedUnused,
			}
		}
	}
	l := &set[victim]
	c.clock++
	*l = Line{Tag: tag, tagValid: true, lru: c.clock, InvalidatingWord: NoInvalidatingWord}
	return l, ev
}

// Snoop applies a coherence-protocol transition to the line containing a, if
// this cache holds it valid, and returns the line's prior state (Invalid when
// it did not hold the line). next maps the held state to its post-snoop
// state; internal/coherence supplies it per protocol and bus operation. When
// the transition invalidates the line, the tag and word-access history are
// kept and word is recorded as the invalidating word for false-sharing
// classification (pass NoInvalidatingWord when no specific word applies).
func (c *Cache) Snoop(a memory.Addr, word int, next func(State) State) State {
	l := c.Lookup(a)
	if l == nil || !l.State.Valid() {
		return Invalid
	}
	prior := l.State
	l.State = next(prior)
	if l.State == Invalid {
		if word >= 0 && word < 64 {
			l.InvalidatingWord = int8(word)
		} else {
			l.InvalidatingWord = NoInvalidatingWord
		}
	}
	return prior
}

// SnoopTable is Snoop with the transition supplied as a dense state table
// instead of a function: next[s] is the post-snoop state of a copy held in
// state s. It is the simulation kernel's hot snoop path — a table lookup
// instead of an indirect call per resident copy — and is otherwise identical
// to Snoop, including the invalidating-word bookkeeping.
func (c *Cache) SnoopTable(a memory.Addr, word int, next *[NumStates]State) State {
	l := c.Lookup(a)
	if l == nil || !l.State.Valid() {
		return Invalid
	}
	prior := l.State
	l.State = next[prior]
	if l.State == Invalid {
		if word >= 0 && word < 64 {
			l.InvalidatingWord = int8(word)
		} else {
			l.InvalidatingWord = NoInvalidatingWord
		}
	}
	return prior
}

// SnoopInvalidate handles a remote write (or read-for-ownership or exclusive
// prefetch) under a write-invalidate protocol: if this cache holds the line
// containing a, it is invalidated in place — the tag is kept, word-access
// history is kept, and the invalidating word is recorded for false-sharing
// classification. It returns the line's prior state (Invalid if the cache
// did not hold it).
func (c *Cache) SnoopInvalidate(a memory.Addr, word int) State {
	return c.Snoop(a, word, func(State) State { return Invalid })
}

// SnoopRead handles a remote read of the line containing a under a
// write-invalidate protocol. An owned line (Exclusive or Modified) is
// downgraded to Shared; in the Illinois protocol the holding cache also
// supplies the data. It returns the prior state.
func (c *Cache) SnoopRead(a memory.Addr) State {
	return c.Snoop(a, NoInvalidatingWord, func(s State) State {
		if s == Exclusive || s == Modified {
			return Shared
		}
		return s
	})
}

// HoldsValid reports whether the cache currently holds a valid copy of the
// line containing a.
func (c *Cache) HoldsValid(a memory.Addr) bool {
	l := c.Lookup(a)
	return l != nil && l.State.Valid()
}

// StateOf returns the coherence state of the line containing a (Invalid when
// absent). Intended for tests and invariant checks.
func (c *Cache) StateOf(a memory.Addr) State {
	l := c.Lookup(a)
	if l == nil {
		return Invalid
	}
	return l.State
}

// ForEachValid calls fn for every valid line, passing its line address and
// state. Used by invariant checks and utilization reports.
func (c *Cache) ForEachValid(fn func(la memory.Addr, st State)) {
	for i := range c.lines {
		if c.lines[i].tagValid && c.lines[i].State.Valid() {
			fn(memory.Addr(c.lines[i].Tag)*memory.Addr(c.geom.LineSize), c.lines[i].State)
		}
	}
}

// ValidLines returns the number of valid lines currently held.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].tagValid && c.lines[i].State.Valid() {
			n++
		}
	}
	return n
}
