package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"busprefetch/internal/memory"
)

func smallGeom() memory.Geometry {
	// 4 sets, direct mapped, 32-byte lines: easy to force conflicts.
	return memory.Geometry{CacheSize: 4 * 32, LineSize: 32, Assoc: 1}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
	if Invalid.Valid() || !Shared.Valid() || !Exclusive.Valid() || !Modified.Valid() {
		t.Error("Valid() predicate wrong")
	}
}

func TestProbeMissOnEmpty(t *testing.T) {
	c := New(smallGeom())
	line, hit := c.Probe(0x100)
	if hit || line != nil {
		t.Errorf("empty cache hit: line=%v hit=%v", line, hit)
	}
}

func TestAllocateAndHit(t *testing.T) {
	c := New(smallGeom())
	l, ev := c.Allocate(0x100)
	if ev.HadTag {
		t.Error("first allocation displaced something")
	}
	l.State = Exclusive
	got, hit := c.Probe(0x100 + 12) // any word of the line
	if !hit || got != l {
		t.Error("line not found after allocate")
	}
}

func TestAllocateEvictsAndReportsWriteback(t *testing.T) {
	g := smallGeom()
	c := New(g)
	l, _ := c.Allocate(0)
	l.State = Modified
	// Same set: addresses 4 lines apart.
	conflicting := memory.Addr(4 * 32)
	l2, ev := c.Allocate(conflicting)
	if !ev.HadTag || ev.State != Modified || ev.LineAddr != 0 {
		t.Errorf("eviction = %+v, want dirty line 0", ev)
	}
	l2.State = Exclusive
	if c.HoldsValid(0) {
		t.Error("evicted line still present")
	}
}

func TestAllocateReusesMatchingTag(t *testing.T) {
	c := New(smallGeom())
	l, _ := c.Allocate(0x40)
	l.State = Shared
	l.WordsAccessed = 0xF
	// Re-allocating the same line (e.g. refetch after invalidation) must not
	// report an eviction.
	l2, ev := c.Allocate(0x40)
	if ev.HadTag {
		t.Errorf("re-allocation reported eviction %+v", ev)
	}
	if l2.WordsAccessed != 0 {
		t.Error("re-allocation did not reset metadata")
	}
}

func TestSnoopInvalidateKeepsTagAndRecordsWord(t *testing.T) {
	c := New(smallGeom())
	l, _ := c.Allocate(0x40)
	l.State = Modified
	prior := c.SnoopInvalidate(0x40, 5)
	if prior != Modified {
		t.Errorf("prior state %v, want M", prior)
	}
	got := c.Lookup(0x40)
	if got == nil || got.State != Invalid {
		t.Fatal("line lost or still valid after invalidation")
	}
	if !got.HasTag() {
		t.Error("invalidation dropped the tag (invalidation misses undetectable)")
	}
	if got.InvalidatingWord != 5 {
		t.Errorf("InvalidatingWord = %d, want 5", got.InvalidatingWord)
	}
	if _, hit := c.Probe(0x40); hit {
		t.Error("invalidated line still hits")
	}
}

func TestSnoopInvalidateMissingLine(t *testing.T) {
	c := New(smallGeom())
	if prior := c.SnoopInvalidate(0x40, 0); prior != Invalid {
		t.Errorf("snoop of absent line returned %v", prior)
	}
}

func TestSnoopReadDowngrades(t *testing.T) {
	c := New(smallGeom())
	for _, st := range []State{Exclusive, Modified} {
		l, _ := c.Allocate(0x40)
		l.State = st
		if prior := c.SnoopRead(0x40); prior != st {
			t.Errorf("prior = %v, want %v", prior, st)
		}
		if got := c.StateOf(0x40); got != Shared {
			t.Errorf("state after remote read = %v, want S", got)
		}
	}
	// Shared stays shared.
	l, _ := c.Allocate(0x60)
	l.State = Shared
	c.SnoopRead(0x60)
	if got := c.StateOf(0x60); got != Shared {
		t.Errorf("shared line became %v", got)
	}
}

func TestEvictionReportsPrefetchedUnused(t *testing.T) {
	c := New(smallGeom())
	l, _ := c.Allocate(0)
	l.State = Exclusive
	l.PrefetchedUnused = true
	_, ev := c.Allocate(4 * 32)
	if !ev.PrefetchedUnused {
		t.Error("eviction lost the prefetched-unused flag")
	}
	// Even an invalidated prefetched line reports the flag, so wasted
	// prefetches can still be classified after displacement.
	l2, _ := c.Allocate(2 * 32) // set 2
	l2.State = Shared
	l2.PrefetchedUnused = true
	c.SnoopInvalidate(2*32, 0)
	_, ev2 := c.Allocate(6 * 32) // same set
	if !ev2.HadTag || !ev2.PrefetchedUnused {
		t.Errorf("invalidated prefetched line eviction = %+v", ev2)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 2-way cache with 2 sets.
	g := memory.Geometry{CacheSize: 4 * 32, LineSize: 32, Assoc: 2}
	c := New(g)
	a, b, d := memory.Addr(0), memory.Addr(2*32), memory.Addr(4*32) // all set 0
	l, _ := c.Allocate(a)
	l.State = Exclusive
	l, _ = c.Allocate(b)
	l.State = Exclusive
	c.Probe(a) // a is now more recent than b
	l, ev := c.Allocate(d)
	l.State = Exclusive
	if !ev.HadTag || ev.LineAddr != b {
		t.Errorf("LRU eviction chose %#x, want b=%#x", uint64(ev.LineAddr), uint64(b))
	}
	if !c.HoldsValid(a) || !c.HoldsValid(d) {
		t.Error("wrong lines resident")
	}
}

func TestAllocatePrefersInvalidVictim(t *testing.T) {
	g := memory.Geometry{CacheSize: 4 * 32, LineSize: 32, Assoc: 2}
	c := New(g)
	a, b, d := memory.Addr(0), memory.Addr(2*32), memory.Addr(4*32)
	l, _ := c.Allocate(a)
	l.State = Exclusive
	l, _ = c.Allocate(b)
	l.State = Exclusive
	c.SnoopInvalidate(a, 0)
	c.Probe(b)
	_, ev := c.Allocate(d)
	if ev.LineAddr != a {
		t.Errorf("victim %#x, want the invalidated line %#x", uint64(ev.LineAddr), uint64(a))
	}
}

func TestFullyAssociative(t *testing.T) {
	g := memory.Geometry{CacheSize: 16 * 32, LineSize: 32, Assoc: 0}
	c := New(g)
	for i := 0; i < 16; i++ {
		l, ev := c.Allocate(memory.Addr(i * 32))
		l.State = Exclusive
		if ev.HadTag {
			t.Fatalf("eviction before capacity at line %d", i)
		}
	}
	// 17th line evicts the LRU (line 0).
	l, ev := c.Allocate(16 * 32)
	l.State = Exclusive
	if !ev.HadTag || ev.LineAddr != 0 {
		t.Errorf("eviction = %+v, want line 0", ev)
	}
}

func TestValidLinesAndForEach(t *testing.T) {
	c := New(smallGeom())
	l, _ := c.Allocate(0)
	l.State = Shared
	l, _ = c.Allocate(32)
	l.State = Modified
	c.SnoopInvalidate(0, 1)
	if got := c.ValidLines(); got != 1 {
		t.Errorf("ValidLines = %d, want 1", got)
	}
	n := 0
	c.ForEachValid(func(la memory.Addr, st State) {
		n++
		if la != 32 || st != Modified {
			t.Errorf("ForEachValid visited %#x %v", uint64(la), st)
		}
	})
	if n != 1 {
		t.Errorf("ForEachValid visited %d lines", n)
	}
}

// TestCacheMatchesReferenceModel drives the cache with random operations and
// compares hit/miss outcomes against a trivial map-based model.
func TestCacheMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := smallGeom()
		c := New(g)
		type refLine struct {
			addr memory.Addr
			used uint64
		}
		ref := map[int]*refLine{} // set -> resident line (direct mapped)
		clock := uint64(0)
		for op := 0; op < 500; op++ {
			a := memory.Addr(r.Intn(64) * 32)
			set := g.SetIndex(a)
			la := g.LineAddr(a)
			clock++
			_, hit := c.Probe(a)
			refHit := ref[set] != nil && ref[set].addr == la
			if hit != refHit {
				return false
			}
			if !hit {
				l, _ := c.Allocate(a)
				l.State = Exclusive
				ref[set] = &refLine{addr: la, used: clock}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
