// Package cache implements the per-processor data cache simulated in the
// paper: direct-mapped, copy-back, 32 KB with 32-byte lines. The same
// structure doubles, with different geometry, as the offline uniprocessor
// cache filter and as the 16-line fully-associative temporal-locality filter
// used by the PWS prefetching strategy.
//
// The package stores cache state and per-line bookkeeping; the coherence
// state machine itself lives in internal/coherence (one Protocol
// implementation per protocol), and the protocol's bus side (who supplies
// data, when invalidations are posted) in internal/sim, which sees all
// caches at once. Snoop applies a protocol-supplied transition; the
// SnoopInvalidate and SnoopRead conveniences bake in the write-invalidate
// transitions shared by Illinois and MSI.
package cache
