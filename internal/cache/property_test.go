package cache

import (
	"math/rand"
	"testing"

	"busprefetch/internal/memory"
)

// Metamorphic property: a cache's hit/miss behaviour depends only on the
// *structure* of the address stream — which accesses touch the same line,
// and which lines contend for the same set — never on the absolute address
// values. Any relabeling that preserves line identity and set mapping must
// reproduce the exact miss sequence. Two such relabelings:
//
//   - offset: a += k * CacheSize. Adds k*Lines to every line number, which
//     is 0 mod Sets (Sets divides Lines), so every line keeps its set.
//   - xor: a ^= x for a line-aligned x. Line numbers become ln ^ (x/LineSize);
//     with power-of-two Sets this permutes the sets consistently, so each
//     set's access sequence is preserved under the permutation.
//
// A regression here means the cache started keying decisions on raw
// addresses (or leaking state between sets), which would silently skew every
// miss rate in the paper reproduction.

// missSequence replays a demand-access stream (read/write alternating by
// step) against a fresh cache and records per-access miss booleans.
func missSequence(geom memory.Geometry, addrs []memory.Addr) []bool {
	c := New(geom)
	out := make([]bool, len(addrs))
	states := []State{Shared, Exclusive, Modified}
	for i, a := range addrs {
		_, hit := c.Probe(a)
		out[i] = !hit
		if !hit {
			l, _ := c.Allocate(a)
			l.State = states[i%len(states)]
		}
	}
	return out
}

// localizedStream builds a pseudo-random address stream with enough reuse
// and set conflict to exercise hits, capacity misses and LRU decisions.
func localizedStream(rng *rand.Rand, geom memory.Geometry, n int) []memory.Addr {
	hot := make([]memory.Addr, 64)
	for i := range hot {
		// Hot words concentrated in a few sets to force conflicts.
		hot[i] = memory.Addr(rng.Intn(8*geom.CacheSize)) &^ 3
	}
	addrs := make([]memory.Addr, n)
	for i := range addrs {
		if rng.Intn(100) < 70 {
			addrs[i] = hot[rng.Intn(len(hot))]
		} else {
			addrs[i] = memory.Addr(rng.Intn(64*geom.CacheSize)) &^ 3
		}
	}
	return addrs
}

func relabelOffset(addrs []memory.Addr, geom memory.Geometry, k int) []memory.Addr {
	out := make([]memory.Addr, len(addrs))
	for i, a := range addrs {
		out[i] = a + memory.Addr(k*geom.CacheSize)
	}
	return out
}

func relabelXor(addrs []memory.Addr, x memory.Addr) []memory.Addr {
	out := make([]memory.Addr, len(addrs))
	for i, a := range addrs {
		out[i] = a ^ x
	}
	return out
}

func TestMissSequenceInvariantUnderRelabeling(t *testing.T) {
	geometries := []memory.Geometry{
		{CacheSize: 32 * 1024, LineSize: 32, Assoc: 1}, // the paper's cache
		{CacheSize: 32 * 1024, LineSize: 32, Assoc: 2},
		{CacheSize: 16 * 1024, LineSize: 16, Assoc: 4},
		{CacheSize: 512, LineSize: 32, Assoc: 0}, // fully associative (PWS filter shape)
	}
	rng := rand.New(rand.NewSource(42))
	for _, geom := range geometries {
		addrs := localizedStream(rng, geom, 20000)
		base := missSequence(geom, addrs)

		for _, k := range []int{1, 3, 117} {
			got := missSequence(geom, relabelOffset(addrs, geom, k))
			if !equalBools(base, got) {
				t.Errorf("%v: miss sequence changed under +%d*CacheSize relabeling at access %d",
					geom, k, firstDiff(base, got))
			}
		}
		for _, x := range []memory.Addr{
			memory.Addr(geom.LineSize) * 5,
			memory.Addr(geom.CacheSize) * 2,
			memory.Addr(geom.LineSize) * 1023,
		} {
			got := missSequence(geom, relabelXor(addrs, x))
			if !equalBools(base, got) {
				t.Errorf("%v: miss sequence changed under xor-%#x relabeling at access %d",
					geom, uint64(x), firstDiff(base, got))
			}
		}
	}
}

// TestRelabelingSanity guards the test itself: a relabeling that does NOT
// preserve structure (sub-line offset, so some accesses change lines) must
// change the miss sequence — otherwise the property above is vacuous.
func TestRelabelingSanity(t *testing.T) {
	geom := memory.Geometry{CacheSize: 32 * 1024, LineSize: 32, Assoc: 1}
	rng := rand.New(rand.NewSource(43))
	addrs := localizedStream(rng, geom, 20000)
	base := missSequence(geom, addrs)
	broken := make([]memory.Addr, len(addrs))
	for i, a := range addrs {
		broken[i] = a + 20 // not line-aligned: straddles line boundaries
	}
	if equalBools(base, missSequence(geom, broken)) {
		t.Error("structure-breaking relabeling left the miss sequence unchanged; the property test has no power")
	}
}

func equalBools(a, b []bool) bool { return firstDiff(a, b) == -1 }

func firstDiff(a, b []bool) int {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}
