package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"busprefetch/internal/cache"
	"busprefetch/internal/check"
	"busprefetch/internal/experiments"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/runner"
	"busprefetch/internal/sim"
)

// chaosTransfer is the single data-transfer point every plan sweeps at: the
// paper's headline T=8, keeping each plan's grid to workloads x strategies.
const chaosTransfer = 8

// faultKind enumerates the fault archetypes a plan can inject.
type faultKind int

const (
	// faultNone is the control: no injected fault, so the plan exercises the
	// kill/torn-write/resume machinery alone.
	faultNone faultKind = iota
	// faultStall drops every lock release on the target cell's first attempt:
	// the first acquirer of each contended lock keeps it, the waiters starve,
	// and the progress watchdog must abort with a retryable StallError.
	faultStall
	// faultSpin wedges a processor in a busy loop on the first attempt: the
	// run looks alive (work retires every cycle), so only the per-cell
	// timeout can end it — a retryable DeadlineExceeded.
	faultSpin
	// faultViolation corrupts cache state on every attempt; the coherence
	// checker must abort with a terminal *check.Violation.
	faultViolation
	// faultPanic panics inside the target cell on every attempt; the worker
	// pool must isolate it as a terminal *runner.PanicError.
	faultPanic
)

func (k faultKind) String() string {
	switch k {
	case faultNone:
		return "none"
	case faultStall:
		return "stall"
	case faultSpin:
		return "spin"
	case faultViolation:
		return "violation"
	case faultPanic:
		return "panic"
	}
	return fmt.Sprintf("faultKind(%d)", int(k))
}

// terminal reports whether the kind injects a deterministic fault — one that
// must end classified terminal rather than retried to success.
func (k faultKind) terminal() bool { return k == faultViolation || k == faultPanic }

// Options configures a soak run. The zero value is usable: Soak fills in the
// defaults noted on each field.
type Options struct {
	// Seed is the master seed; every plan's randomized choices (fault target,
	// kill point, torn-write victim) derive from it, so a soak is replayable
	// by seed.
	Seed int64
	// Plans is how many fault plans to run (default 8). Kinds cycle
	// none/stall/spin/violation/panic, so 5 plans cover every archetype.
	Plans int
	// Budget, when positive, bounds the soak's wall clock: plans that have
	// not started when it expires are skipped (and counted in the report).
	Budget time.Duration
	// Scale is the sweep scale each plan runs at (default 0.1 — large enough
	// for real sharing, small enough to run dozens of plans in seconds).
	Scale float64
	// Jobs bounds each sweep's worker pool; 0 selects GOMAXPROCS.
	Jobs int
	// CellTimeout bounds each cell attempt (default 2s). It must be set:
	// the spin fault is undetectable by the watchdog and only a deadline
	// terminates it.
	CellTimeout time.Duration
	// Retries is each sweep's per-cell retry budget (default 2).
	Retries int
	// Dir is the root under which each plan gets its own checkpoint store;
	// empty selects a temp dir removed when Soak returns.
	Dir string
	// Log, when non-nil, receives per-plan progress lines.
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Plans <= 0 {
		o.Plans = 8
	}
	if o.Scale == 0 {
		o.Scale = 0.1
	}
	if o.CellTimeout <= 0 {
		o.CellTimeout = 2 * time.Second
	}
	if o.Retries <= 0 {
		o.Retries = 2
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// Report summarizes a soak: what was injected and what the engine survived.
type Report struct {
	// Plans is how many fault plans ran to completion; Skipped is how many
	// the wall-clock budget cut.
	Plans, Skipped int
	// Kills is how many sweeps were cancelled mid-flight; each was then
	// resumed (Resumes) from its checkpoint store, restoring CheckpointHits
	// cells instead of recomputing them.
	Kills, Resumes, CheckpointHits int
	// TornWrites is how many checkpoint entries were bit-flipped on disk
	// between a kill and its resume.
	TornWrites int
	// Injected counts cell attempts that ran with a fault armed. Retried
	// counts transient-fault cells that needed more than one attempt to
	// succeed; Terminal counts cells that failed terminally, by design.
	Injected, Retried, Terminal int
}

func (r *Report) String() string {
	return fmt.Sprintf("chaos: %d plan(s) ok, %d skipped: %d kill(s), %d resume(s), %d checkpoint hit(s), %d torn write(s), %d armed attempt(s), %d retried cell(s), %d terminal cell(s)",
		r.Plans, r.Skipped, r.Kills, r.Resumes, r.CheckpointHits, r.TornWrites, r.Injected, r.Retried, r.Terminal)
}

// wantTable2 selects the one report section every plan renders for the
// golden-convergence check.
func wantTable2(name string) bool { return name == "table2" }

// Soak runs o.Plans randomized fault plans and returns the tally. Each plan
// builds a real experiment sweep (workloads x strategies at T=8, scale
// o.Scale, seed 1 — pinned so every plan converges to one golden), injects
// one fault archetype into one randomly chosen cell, randomly kills the sweep
// mid-flight, possibly corrupts a checkpoint entry on disk, resumes the way a
// fresh process would, and then asserts the resilience contract documented in
// the package comment. The first violated assertion aborts the soak with an
// error naming the plan; replay it with the same Options to reproduce.
func Soak(ctx context.Context, o Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o = o.withDefaults()
	root := o.Dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "busprefetch-chaos-*")
		if err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	// The convergence target: the bytes a fault-free sweep renders.
	clean := experiments.NewSuite(suiteConfig(o, nil, "", nil))
	keys := clean.GridKeys()
	if err := clean.Prewarm(ctx, keys, nil); err != nil {
		return nil, fmt.Errorf("chaos: fault-free golden sweep failed: %w", err)
	}
	golden, err := clean.RenderSections(ctx, wantTable2)
	if err != nil {
		return nil, fmt.Errorf("chaos: rendering golden: %w", err)
	}

	rep := &Report{}
	start := time.Now()
	kinds := []faultKind{faultNone, faultStall, faultSpin, faultViolation, faultPanic}
	for i := 0; i < o.Plans; i++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if o.Budget > 0 && time.Since(start) > o.Budget {
			rep.Skipped = o.Plans - i
			o.Log("chaos: budget %v spent after %d plan(s), skipping %d", o.Budget, i, rep.Skipped)
			break
		}
		kind := kinds[i%len(kinds)]
		rng := rand.New(rand.NewSource(o.Seed ^ int64(i+1)*0x9e3779b97f4a7c))
		dir := filepath.Join(root, fmt.Sprintf("plan-%03d", i))
		if err := runPlan(ctx, o, rep, golden, keys, i, kind, rng, dir); err != nil {
			return rep, fmt.Errorf("chaos: plan %d (%s, seed %d): %w", i, kind, o.Seed, err)
		}
		rep.Plans++
	}
	return rep, nil
}

// suiteConfig builds one plan's sweep configuration. The sweep seed is pinned
// so every plan (and the golden) simulates identical traces.
func suiteConfig(o Options, perRun func(experiments.Key, *sim.Config), salt string, store *runner.CheckpointStore) experiments.Config {
	return experiments.Config{
		Scale:       o.Scale,
		Seed:        1,
		Transfers:   []int{chaosTransfer},
		Parallelism: o.Jobs,
		Timeout:     o.CellTimeout,
		Retries:     o.Retries,
		PerRun:      perRun,
		Salt:        salt,
		Checkpoints: store,
	}
}

// plan carries one fault plan's target and the attempt bookkeeping its PerRun
// hook maintains. The counters are shared across a kill and its resume: a
// transient fault arms exactly one attempt per plan, however many sweeps it
// takes to reach convergence.
type plan struct {
	kind   faultKind
	target experiments.Key

	mu       sync.Mutex
	attempts int // simulate() invocations of the target, across kill + resume
	injected int // attempts that ran with the fault armed
}

// perRun is the suite hook that injects the plan's fault into its target cell.
func (p *plan) perRun(k experiments.Key, cfg *sim.Config) {
	if k != p.target {
		return
	}
	p.mu.Lock()
	p.attempts++
	armed := p.kind.terminal() || p.attempts == 1
	if armed {
		p.injected++
	}
	p.mu.Unlock()
	if !armed {
		return
	}
	switch p.kind {
	case faultStall:
		// Drop every release by every processor; with any lock contention,
		// whoever acquires first keeps the lock and the waiters starve. The
		// tightened watchdog threshold keeps the doomed attempt short.
		drops := make([]check.LockDrop, 32)
		for i := range drops {
			drops[i] = check.LockDrop{Proc: i, Nth: -1}
		}
		cfg.WatchdogCycles = 50_000
		cfg.Faults = &check.Plan{DropReleases: drops}
	case faultSpin:
		cfg.Faults = &check.Plan{Spins: []check.Spin{{Proc: 0, OnFill: 0}}}
	case faultViolation:
		cfg.CheckInvariants = true
		cfg.Faults = &check.Plan{Flips: []check.StateFlip{
			{Proc: 0, To: cache.Modified, OnFill: -1},
		}}
	case faultPanic:
		panic(fmt.Sprintf("chaos: injected panic in %v", k))
	}
}

// pickTarget chooses the cell a plan poisons. Two kinds constrain the choice:
// a dropped release needs lock traffic (mp3d is barrier-only), and the
// state-flip recipe is pinned to the configuration the coherence checker is
// proven to catch at small scales (mp3d under NP shares its cells heavily, so
// forcing a fill to Modified while another processor holds the line trips
// owner-with-sharers immediately).
func pickTarget(kind faultKind, rng *rand.Rand) experiments.Key {
	strategies := prefetch.Strategies()
	k := experiments.Key{Strategy: strategies[rng.Intn(len(strategies))], Transfer: chaosTransfer}
	switch kind {
	case faultViolation:
		return experiments.Key{Workload: "mp3d", Strategy: prefetch.NP, Transfer: chaosTransfer}
	case faultStall:
		locky := []string{"water", "pverify", "locus", "topopt"}
		k.Workload = locky[rng.Intn(len(locky))]
	default:
		names := experiments.WorkloadNames()
		k.Workload = names[rng.Intn(len(names))]
	}
	return k
}

// runPlan executes one fault plan end to end and asserts its contract.
func runPlan(ctx context.Context, o Options, rep *Report, golden string, keys []experiments.Key, idx int, kind faultKind, rng *rand.Rand, dir string) error {
	p := &plan{kind: kind, target: pickTarget(kind, rng)}
	perRun := p.perRun
	salt := fmt.Sprintf("chaos/%s/plan-%d", kind, idx)
	if kind == faultNone {
		perRun = nil
		p.target = experiments.Key{}
	}
	doKill := rng.Intn(3) > 0
	wantTorn := doKill && rng.Intn(2) == 0
	killAfter := 1 + rng.Intn(len(keys)/2)

	store, err := runner.OpenCheckpointStore(dir)
	if err != nil {
		return err
	}
	s := experiments.NewSuite(suiteConfig(o, perRun, salt, store))
	o.Log("chaos: plan %d: fault=%s target=%v kill=%v(after %d cells) torn=%v", idx, kind, p.target, doKill, killAfter, wantTorn)

	killed := false
	if doKill {
		kctx, cancel := context.WithCancel(ctx)
		err := s.Prewarm(kctx, keys, func(done, total int) {
			if done >= killAfter {
				cancel()
			}
		})
		cancel()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, context.Canceled) {
			killed = true
			rep.Kills++
			if wantTorn {
				torn, terr := tearOne(dir, rng)
				if terr != nil {
					return terr
				}
				if torn {
					rep.TornWrites++
				}
			}
			// Resume the way a fresh process would: reopen the store on the
			// same directory and rebuild the suite from scratch.
			if store, err = runner.OpenCheckpointStore(dir); err != nil {
				return err
			}
			s = experiments.NewSuite(suiteConfig(o, perRun, salt, store))
			rep.Resumes++
		}
		// A sweep that finished before the kill fired is just an unkilled
		// plan; the final Prewarm below re-reports its memoized outcome.
	}

	ferr := s.Prewarm(ctx, keys, nil)
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if err := p.assert(ferr); err != nil {
		return err
	}

	if killed {
		rep.CheckpointHits += int(store.Stats().Hits)
	}
	p.mu.Lock()
	rep.Injected += p.injected
	retried := !kind.terminal() && p.attempts > 1
	p.mu.Unlock()
	if retried {
		rep.Retried++
	}
	if kind.terminal() {
		rep.Terminal++
	}

	// Golden convergence: a plan whose faults were transient (or absent) must
	// render exactly the fault-free bytes, whatever mix of retries, kills,
	// checkpoint restores, and quarantined torn entries it went through.
	// Terminal plans skip the render: their failed cell is a permanent fact
	// the report would annotate (and a panicking cell must only ever run
	// under the pool's isolation).
	if !kind.terminal() {
		out, err := s.RenderSections(ctx, wantTable2)
		if err != nil {
			return fmt.Errorf("rendering after convergence: %w", err)
		}
		if out != golden {
			return fmt.Errorf("converged render diverges from the fault-free golden (%d vs %d bytes)", len(out), len(golden))
		}
	}

	corrupt, err := store.Verify()
	if err != nil {
		return fmt.Errorf("verifying store: %w", err)
	}
	if len(corrupt) > 0 {
		return fmt.Errorf("store left corrupt after the plan: %v", corrupt)
	}
	return nil
}

// assert checks one plan's converged outcome against its fault kind.
func (p *plan) assert(ferr error) error {
	if !p.kind.terminal() {
		if ferr != nil {
			return fmt.Errorf("transient plan did not converge: %w", ferr)
		}
		return nil
	}
	var cells *experiments.CellErrors
	if !errors.As(ferr, &cells) {
		return fmt.Errorf("terminal plan returned %T (%v), want *experiments.CellErrors", ferr, ferr)
	}
	if len(cells.Cells) != 1 || cells.Cells[0].Key != p.target {
		return fmt.Errorf("terminal plan failed cells %v, want exactly %v", cells.Cells, p.target)
	}
	ce := cells.Cells[0]
	if !ce.Terminal {
		return fmt.Errorf("deterministic fault classified retryable: %v", ce.Err)
	}
	switch p.kind {
	case faultViolation:
		var v *check.Violation
		if !errors.As(ce.Err, &v) {
			return fmt.Errorf("violation plan failed with %T (%v), want *check.Violation", ce.Err, ce.Err)
		}
	case faultPanic:
		var pe *runner.PanicError
		if !errors.As(ce.Err, &pe) {
			return fmt.Errorf("panic plan failed with %T (%v), want *runner.PanicError", ce.Err, ce.Err)
		}
	}
	return nil
}

// tearOne flips one random bit of one random checkpoint entry on disk — the
// torn or bit-rotted write the store's CRC discipline must quarantine on the
// next read. It reports whether a file was actually corrupted: a kill can
// land before any entry was written.
func tearOne(dir string, rng *rand.Rand) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return false, nil
	}
	name := filepath.Join(dir, files[rng.Intn(len(files))])
	data, err := os.ReadFile(name)
	if err != nil {
		return false, err
	}
	torn, _ := check.NewInjector(rng.Int63()).FlipBit(data, -1)
	if err := os.WriteFile(name, torn, 0o644); err != nil {
		return false, err
	}
	return true, nil
}
