package chaos

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestChaosSoak runs one full cycle of the five fault archetypes with a
// pinned seed: every assertion the harness makes (termination, fault
// classification, store integrity, golden convergence after kills, torn
// writes, and resumes) runs inside Soak itself, so the test mostly checks
// that the soak finishes and that the tally shows the faults really fired.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak takes a few seconds (the spin fault burns a full cell timeout)")
	}
	rep, err := Soak(context.Background(), Options{
		Seed:  7,
		Plans: 5,
		Dir:   t.TempDir(),
		Log:   t.Logf,
	})
	if err != nil {
		t.Fatalf("soak failed: %v\n(report so far: %v)", err, rep)
	}
	t.Log(rep)
	if rep.Plans != 5 || rep.Skipped != 0 {
		t.Errorf("ran %d plan(s), skipped %d, want 5 and 0", rep.Plans, rep.Skipped)
	}
	if rep.Terminal != 2 {
		t.Errorf("terminal cells = %d, want 2 (one violation, one panic)", rep.Terminal)
	}
	if rep.Injected < 3 {
		t.Errorf("armed attempts = %d, want at least one per faulted plan", rep.Injected)
	}
	if rep.Kills == 0 {
		t.Error("no sweep was killed mid-flight (seed no longer exercises the kill path)")
	}
	if rep.Resumes != rep.Kills {
		t.Errorf("kills = %d but resumes = %d; every kill must resume", rep.Kills, rep.Resumes)
	}
	if rep.Kills > 0 && rep.CheckpointHits == 0 {
		t.Error("resumed sweeps restored no cells from the checkpoint store")
	}
}

// TestChaosSoakBudget: a spent budget skips the remaining plans instead of
// overrunning — the property that keeps the scheduled CI job bounded.
func TestChaosSoakBudget(t *testing.T) {
	rep, err := Soak(context.Background(), Options{
		Seed:   11,
		Plans:  1000,
		Budget: time.Nanosecond, // spent before the first plan starts
		Dir:    t.TempDir(),
	})
	if err != nil {
		t.Fatalf("soak failed: %v", err)
	}
	// The golden sweep runs before the budget check, so the only cost is one
	// clean sweep; all thousand plans must be skipped.
	if rep.Plans != 0 || rep.Skipped != 1000 {
		t.Errorf("ran %d plan(s), skipped %d, want 0 and 1000", rep.Plans, rep.Skipped)
	}
}

// TestChaosSoakCancellation: cancelling the soak's own context stops it
// between plans with the context's error, not an assertion failure.
func TestChaosSoakCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Soak(ctx, Options{Seed: 3, Plans: 5, Dir: t.TempDir()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled soak returned %v, want context.Canceled", err)
	}
}
