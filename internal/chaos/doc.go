// Package chaos is the sweep engine's fault-injection soak harness. It
// drives randomized fault plans — transient watchdog stalls, wedged-but-busy
// spins, coherence-invariant violations, panicking cells, mid-sweep kills,
// and torn checkpoint writes — through real experiment sweeps and asserts
// the engine's resilience contract:
//
//   - Termination: every plan ends. Stalls are diagnosed by the progress
//     watchdog, spins by the per-cell timeout; nothing hangs the soak.
//   - Isolation and classification: injected transient faults retry to
//     success; deterministic faults (violations, panics) fail exactly their
//     cell, classified terminal, while the rest of the sweep completes.
//   - Store integrity: killing a sweep mid-flight and corrupting checkpoint
//     entries between runs never corrupts results — torn entries self-heal
//     and CheckpointStore.Verify finds a clean store afterwards.
//   - Golden convergence: after any mix of retries, kills, and resumes, a
//     plan without deterministic faults renders the byte-identical report a
//     fault-free sweep produces.
//
// The harness lives in the library (not only in a test) so CI's scheduled
// chaos job and local soaks share one implementation: see TestChaosSoak for
// the short deterministic slice and .github/workflows/chaos.yml for the
// randomized scheduled run.
package chaos
