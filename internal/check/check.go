// Package check is the simulator's always-on validation and fault-injection
// subsystem. The paper's results depend on Charlie replaying *legal*
// interleavings through a correct Illinois protocol; this package supplies
// the machinery that turns a protocol bug, a corrupted trace, or a hung
// replay into a structured, diagnosable error instead of a panic:
//
//   - Coherence verifies the Illinois single-owner / no-M-sharer invariants
//     for one line across all caches, returning a *Violation with the cycle,
//     the line, and every cache's view of it.
//   - PrefetchAccounting verifies a processor's prefetch issue-buffer
//     bookkeeping (the 16-deep lockup-free buffer of paper §3.3).
//   - StallError (watchdog.go) reports a deadlocked or livelocked replay,
//     naming the blocked processors and the synchronization object each one
//     waits on.
//   - Plan and Injector (inject.go) inject faults — dropped lock releases,
//     flipped cache states, corrupted or truncated trace records, flipped
//     bits in encoded traces — so tests can prove the checker, the watchdog
//     and the trace codec actually catch each failure class.
package check

import (
	"fmt"
	"strings"

	"busprefetch/internal/cache"
	"busprefetch/internal/memory"
)

// ProcLineState is one processor's view of a cache line at a check point:
// the data-cache state, the victim-cache state (Invalid when there is no
// victim cache or it does not hold the line), and whether the processor has
// a fetch of the line in flight.
type ProcLineState struct {
	Proc        int
	State       cache.State
	VictimState cache.State
	// Inflight is true when the processor has an outstanding fetch of the
	// line; Excl and IsPrefetch describe that fetch.
	Inflight   bool
	Excl       bool
	IsPrefetch bool
}

func (p ProcLineState) String() string {
	s := fmt.Sprintf("proc%d=%v", p.Proc, p.State)
	if p.VictimState.Valid() {
		s += fmt.Sprintf("(victim %v)", p.VictimState)
	}
	if p.Inflight {
		s += fmt.Sprintf(" inflight(excl=%v,pf=%v)", p.Excl, p.IsPrefetch)
	}
	return s
}

// Violation is a detected invariant violation. It is an error; the simulator
// aborts the run and returns it, so one corrupted run fails with a diagnosis
// instead of taking the whole experiment suite down.
type Violation struct {
	// Cycle is the simulation time at which the violation was detected.
	Cycle uint64
	// Line is the cache-line address the violation concerns (zero for
	// per-processor accounting violations).
	Line memory.Addr
	// Rule names the broken invariant ("multiple-owner", "owner-with-sharers",
	// "prefetch-accounting").
	Rule string
	// Detail is a human-readable elaboration.
	Detail string
	// States is every cache's view of the line at detection time (nil for
	// accounting violations).
	States []ProcLineState
}

func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %s violated at cycle %d", v.Rule, v.Cycle)
	if v.Line != 0 {
		fmt.Fprintf(&b, " for line 0x%x", uint64(v.Line))
	}
	if v.Detail != "" {
		fmt.Fprintf(&b, ": %s", v.Detail)
	}
	if len(v.States) > 0 {
		b.WriteString(" [")
		first := true
		for _, s := range v.States {
			if s.State == cache.Invalid && !s.VictimState.Valid() && !s.Inflight {
				continue
			}
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(s.String())
		}
		b.WriteString("]")
	}
	return b.String()
}

// Coherence verifies the Illinois invariants for one line given every
// cache's view of it: at most one owner (Modified or Exclusive, in the data
// cache or the victim cache), and no Shared copies anywhere while an owner
// exists. It returns nil when the states are legal.
//
// Callers check at a bus transaction's serialization point (the grant),
// before snooping repairs remote copies — a corrupted state is caught there
// before the protocol's normal actions can mask it — and again after a fill
// installs its line.
func Coherence(cycle uint64, line memory.Addr, states []ProcLineState) *Violation {
	owners, sharers := 0, 0
	for _, s := range states {
		switch s.State {
		case cache.Modified, cache.Exclusive:
			owners++
		case cache.Shared:
			sharers++
		}
		switch s.VictimState {
		case cache.Modified, cache.Exclusive:
			owners++
		case cache.Shared:
			sharers++
		}
	}
	switch {
	case owners > 1:
		return &Violation{
			Cycle:  cycle,
			Line:   line,
			Rule:   "multiple-owner",
			Detail: fmt.Sprintf("%d caches own the line", owners),
			States: append([]ProcLineState(nil), states...),
		}
	case owners == 1 && sharers > 0:
		return &Violation{
			Cycle:  cycle,
			Line:   line,
			Rule:   "owner-with-sharers",
			Detail: fmt.Sprintf("1 owner coexists with %d shared copies", sharers),
			States: append([]ProcLineState(nil), states...),
		}
	}
	return nil
}

// PrefetchAccounting verifies a processor's prefetch issue-buffer counters:
// the outstanding count must equal the number of in-flight prefetch
// transactions and stay within [0, depth]. A mismatch means the simulator
// leaked or double-freed an issue-buffer slot.
func PrefetchAccounting(cycle uint64, proc, outstanding, inflightPrefetches, depth int) *Violation {
	if outstanding == inflightPrefetches && outstanding >= 0 && outstanding <= depth {
		return nil
	}
	return &Violation{
		Cycle: cycle,
		Rule:  "prefetch-accounting",
		Detail: fmt.Sprintf("proc %d: %d outstanding prefetches, %d in flight, depth %d",
			proc, outstanding, inflightPrefetches, depth),
	}
}
