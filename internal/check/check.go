package check

import (
	"fmt"
	"strings"

	"busprefetch/internal/cache"
	"busprefetch/internal/memory"
)

// ProcLineState is one processor's view of a cache line at a check point:
// the data-cache state, the victim-cache state (Invalid when there is no
// victim cache or it does not hold the line), and whether the processor has
// a fetch of the line in flight.
type ProcLineState struct {
	Proc        int
	State       cache.State
	VictimState cache.State
	// Inflight is true when the processor has an outstanding fetch of the
	// line; Excl and IsPrefetch describe that fetch.
	Inflight   bool
	Excl       bool
	IsPrefetch bool
}

func (p ProcLineState) String() string {
	s := fmt.Sprintf("proc%d=%v", p.Proc, p.State)
	if p.VictimState.Valid() {
		s += fmt.Sprintf("(victim %v)", p.VictimState)
	}
	if p.Inflight {
		s += fmt.Sprintf(" inflight(excl=%v,pf=%v)", p.Excl, p.IsPrefetch)
	}
	return s
}

// Violation is a detected invariant violation. It is an error; the simulator
// aborts the run and returns it, so one corrupted run fails with a diagnosis
// instead of taking the whole experiment suite down.
type Violation struct {
	// Cycle is the simulation time at which the violation was detected.
	Cycle uint64
	// Line is the cache-line address the violation concerns (zero for
	// per-processor accounting violations).
	Line memory.Addr
	// Rule names the broken invariant ("multiple-owner", "owner-with-sharers",
	// "prefetch-accounting").
	Rule string
	// Detail is a human-readable elaboration.
	Detail string
	// States is every cache's view of the line at detection time (nil for
	// accounting violations).
	States []ProcLineState
}

func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %s violated at cycle %d", v.Rule, v.Cycle)
	if v.Line != 0 {
		fmt.Fprintf(&b, " for line 0x%x", uint64(v.Line))
	}
	if v.Detail != "" {
		fmt.Fprintf(&b, ": %s", v.Detail)
	}
	if len(v.States) > 0 {
		b.WriteString(" [")
		first := true
		for _, s := range v.States {
			if s.State == cache.Invalid && !s.VictimState.Valid() && !s.Inflight {
				continue
			}
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(s.String())
		}
		b.WriteString("]")
	}
	return b.String()
}

// LineRule is a coherence protocol's per-line legality predicate: given
// every cache's view of one line it returns the name and detail of the
// broken invariant, or an empty rule name when the states are legal.
// internal/coherence supplies the rule for the simulated protocol
// (Protocol.Invariant); CheckLine turns a non-empty answer into a Violation.
type LineRule func(states []ProcLineState) (rule, detail string)

// CheckLine verifies one line's cross-cache states against a protocol's
// legality rule and returns the Violation, or nil when the states are legal.
//
// Callers check at a bus transaction's serialization point (the grant),
// before snooping repairs remote copies — a corrupted state is caught there
// before the protocol's normal actions can mask it — and again after a fill
// installs its line.
func CheckLine(cycle uint64, line memory.Addr, states []ProcLineState, legal LineRule) *Violation {
	rule, detail := legal(states)
	if rule == "" {
		return nil
	}
	return &Violation{
		Cycle:  cycle,
		Line:   line,
		Rule:   rule,
		Detail: detail,
		States: append([]ProcLineState(nil), states...),
	}
}

// tally counts one line's copies across every cache and victim cache:
// exclusively-owned (Modified or Exclusive), shared-clean (Shared), and
// shared-dirty (SharedMod) states.
func tally(states []ProcLineState) (excl, shared, sharedMod int) {
	count := func(s cache.State) {
		switch s {
		case cache.Modified, cache.Exclusive:
			excl++
		case cache.Shared:
			shared++
		case cache.SharedMod:
			sharedMod++
		}
	}
	for _, s := range states {
		count(s.State)
		count(s.VictimState)
	}
	return excl, shared, sharedMod
}

// InvalidationOwnership is the write-invalidate protocols' legality rule
// (Illinois and MSI): at most one owner (Modified or Exclusive, in the data
// cache or the victim cache), no Shared copies anywhere while an owner
// exists, and no SharedMod copies ever — shared-dirty lines exist only
// under a write-update protocol.
func InvalidationOwnership(states []ProcLineState) (rule, detail string) {
	excl, shared, sharedMod := tally(states)
	switch {
	case sharedMod > 0:
		return "foreign-state", fmt.Sprintf("%d shared-modified copies under a write-invalidate protocol", sharedMod)
	case excl > 1:
		return "multiple-owner", fmt.Sprintf("%d caches own the line", excl)
	case excl == 1 && shared > 0:
		return "owner-with-sharers", fmt.Sprintf("1 owner coexists with %d shared copies", shared)
	}
	return "", ""
}

// UpdateOwnership is the write-update (Dragon) legality rule: an Exclusive
// or Modified copy excludes every other valid copy, and at most one cache
// holds the line SharedMod (the update-owner responsible for supplying data
// and the eventual writeback). Any number of Shared copies may coexist with
// that owner.
func UpdateOwnership(states []ProcLineState) (rule, detail string) {
	excl, shared, sharedMod := tally(states)
	switch {
	case excl > 1:
		return "multiple-owner", fmt.Sprintf("%d caches own the line exclusively", excl)
	case excl == 1 && shared+sharedMod > 0:
		return "owner-with-sharers", fmt.Sprintf("1 exclusive owner coexists with %d shared copies", shared+sharedMod)
	case sharedMod > 1:
		return "multiple-update-owner", fmt.Sprintf("%d caches hold the line shared-modified", sharedMod)
	}
	return "", ""
}

// Coherence verifies the write-invalidate (Illinois) invariants for one
// line; it is CheckLine with the InvalidationOwnership rule. Kept as the
// convenience entry point for callers and tests that simulate the paper's
// protocol.
func Coherence(cycle uint64, line memory.Addr, states []ProcLineState) *Violation {
	return CheckLine(cycle, line, states, InvalidationOwnership)
}

// PrefetchAccounting verifies a processor's prefetch issue-buffer counters:
// the outstanding count must equal the number of in-flight prefetch
// transactions and stay within [0, depth]. A mismatch means the simulator
// leaked or double-freed an issue-buffer slot.
func PrefetchAccounting(cycle uint64, proc, outstanding, inflightPrefetches, depth int) *Violation {
	if outstanding == inflightPrefetches && outstanding >= 0 && outstanding <= depth {
		return nil
	}
	return &Violation{
		Cycle: cycle,
		Rule:  "prefetch-accounting",
		Detail: fmt.Sprintf("proc %d: %d outstanding prefetches, %d in flight, depth %d",
			proc, outstanding, inflightPrefetches, depth),
	}
}
