package check

import (
	"strings"
	"testing"

	"busprefetch/internal/cache"
	"busprefetch/internal/memory"
	"busprefetch/internal/trace"
)

func TestCoherenceAcceptsLegalStates(t *testing.T) {
	cases := []struct {
		name   string
		states []ProcLineState
	}{
		{"all invalid", []ProcLineState{{Proc: 0}, {Proc: 1}}},
		{"one modified", []ProcLineState{{Proc: 0, State: cache.Modified}, {Proc: 1}}},
		{"one exclusive", []ProcLineState{{Proc: 0, State: cache.Exclusive}, {Proc: 1}}},
		{"many shared", []ProcLineState{
			{Proc: 0, State: cache.Shared}, {Proc: 1, State: cache.Shared}, {Proc: 2, State: cache.Shared}}},
		{"victim owner alone", []ProcLineState{{Proc: 0, VictimState: cache.Modified}, {Proc: 1}}},
	}
	for _, c := range cases {
		if v := Coherence(10, 0x1000, c.states); v != nil {
			t.Errorf("%s: unexpected violation %v", c.name, v)
		}
	}
}

func TestCoherenceMultipleOwner(t *testing.T) {
	v := Coherence(42, 0x2000, []ProcLineState{
		{Proc: 0, State: cache.Modified},
		{Proc: 1, State: cache.Exclusive},
	})
	if v == nil {
		t.Fatal("two owners accepted")
	}
	if v.Rule != "multiple-owner" || v.Cycle != 42 || v.Line != 0x2000 {
		t.Errorf("violation = %+v", v)
	}
	if msg := v.Error(); !strings.Contains(msg, "multiple-owner") || !strings.Contains(msg, "0x2000") {
		t.Errorf("Error() = %q", msg)
	}
}

func TestCoherenceOwnerWithSharers(t *testing.T) {
	v := Coherence(7, 0x3000, []ProcLineState{
		{Proc: 0, State: cache.Modified},
		{Proc: 1, State: cache.Shared},
		{Proc: 2, State: cache.Shared},
	})
	if v == nil {
		t.Fatal("owner with sharers accepted")
	}
	if v.Rule != "owner-with-sharers" {
		t.Errorf("rule = %q", v.Rule)
	}
	// The report must include every valid cache's view of the line.
	msg := v.Error()
	for _, want := range []string{"proc0=M", "proc1=S", "proc2=S"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestCoherenceCountsVictimCacheCopies(t *testing.T) {
	// An owner in one cache plus an owner in another cache's victim cache is
	// still two owners.
	v := Coherence(1, 0x4000, []ProcLineState{
		{Proc: 0, State: cache.Exclusive},
		{Proc: 1, VictimState: cache.Modified},
	})
	if v == nil || v.Rule != "multiple-owner" {
		t.Errorf("victim-cache owner not counted: %v", v)
	}
}

func TestPrefetchAccounting(t *testing.T) {
	if v := PrefetchAccounting(1, 0, 3, 3, 16); v != nil {
		t.Errorf("legal accounting rejected: %v", v)
	}
	if v := PrefetchAccounting(1, 0, 0, 0, 16); v != nil {
		t.Errorf("idle accounting rejected: %v", v)
	}
	cases := []struct{ outstanding, inflight, depth int }{
		{2, 3, 16},  // leaked slot
		{-1, -1, 16} /* negative count */, {17, 17, 16}, // over depth
	}
	for _, c := range cases {
		v := PrefetchAccounting(5, 2, c.outstanding, c.inflight, c.depth)
		if v == nil {
			t.Errorf("accepted outstanding=%d inflight=%d depth=%d", c.outstanding, c.inflight, c.depth)
			continue
		}
		if v.Rule != "prefetch-accounting" {
			t.Errorf("rule = %q", v.Rule)
		}
	}
}

func TestStallErrorReport(t *testing.T) {
	e := &StallError{
		Cycle:  1234,
		Reason: "event queue drained with unfinished processors",
		Stalls: []ProcStall{
			{Proc: 3, Event: 10, Events: 20, Wait: WaitLock, Object: 0x5000, HasObject: true, Holder: 1},
			{Proc: 4, Event: 5, Events: 20, Wait: WaitBarrier, Object: 7, HasObject: true, Holder: -1},
		},
	}
	msg := e.Error()
	for _, want := range []string{"cycle 1234", "proc 3", "lock 0x5000 held by proc 1", "proc 4", "barrier 0x7"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestPlanDropRelease(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.DropRelease(0, 0x10, 0) {
		t.Error("nil plan dropped a release")
	}
	p := &Plan{DropReleases: []LockDrop{
		{Proc: 1, Addr: 0x40, Nth: 2},
		{Proc: 2, Nth: -1}, // any lock, every release
	}}
	cases := []struct {
		proc int
		addr memory.Addr
		nth  int
		want bool
	}{
		{1, 0x40, 2, true},
		{1, 0x40, 1, false}, // wrong ordinal
		{1, 0x80, 2, false}, // wrong lock
		{0, 0x40, 2, false}, // wrong proc
		{2, 0x40, 0, true},
		{2, 0x99, 57, true},
	}
	for _, c := range cases {
		if got := p.DropRelease(c.proc, c.addr, c.nth); got != c.want {
			t.Errorf("DropRelease(%d, %#x, %d) = %v, want %v", c.proc, uint64(c.addr), c.nth, got, c.want)
		}
	}
}

func TestPlanFlipsAfterFill(t *testing.T) {
	var nilPlan *Plan
	if fs := nilPlan.FlipsAfterFill(0, 0, 0x1000); fs != nil {
		t.Error("nil plan produced flips")
	}
	p := &Plan{Flips: []StateFlip{
		{Proc: 0, Addr: 0, To: cache.Modified, OnFill: 3}, // the just-filled line
		{Proc: 0, Addr: 0x2000, To: cache.Shared, OnFill: -1},
		{Proc: 1, To: cache.Modified, OnFill: -1},
	}}
	fs := p.FlipsAfterFill(0, 3, 0x7000)
	if len(fs) != 2 {
		t.Fatalf("got %d flips, want 2", len(fs))
	}
	if fs[0].Addr != 0x7000 {
		t.Errorf("zero Addr not resolved to filled line: %#x", uint64(fs[0].Addr))
	}
	if fs[1].Addr != 0x2000 {
		t.Errorf("explicit Addr rewritten: %#x", uint64(fs[1].Addr))
	}
	if fs := p.FlipsAfterFill(0, 2, 0x7000); len(fs) != 1 {
		t.Errorf("wrong-ordinal fill got %d flips, want 1 (the every-fill one)", len(fs))
	}
	if fs := p.FlipsAfterFill(2, 0, 0x7000); len(fs) != 0 {
		t.Errorf("unrelated proc got %d flips", len(fs))
	}
}

func testTrace() *trace.Trace {
	return &trace.Trace{Streams: []trace.Stream{
		{{Kind: trace.Lock, Addr: 0x40}, {Kind: trace.Read, Addr: 0x1000}, {Kind: trace.Unlock, Addr: 0x40}},
		{{Kind: trace.Read, Addr: 0x2000, Gap: 5}},
	}}
}

func TestInjectorDoesNotMutateOriginal(t *testing.T) {
	in := NewInjector(1)
	orig := testTrace()
	if _, err := in.CorruptKind(orig, 0, 2, trace.Write); err != nil {
		t.Fatal(err)
	}
	if _, err := in.CorruptAddr(orig, 0, 0, 0x9999); err != nil {
		t.Fatal(err)
	}
	if _, err := in.DropEvent(orig, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := in.TruncateStream(orig, 0, 1); err != nil {
		t.Fatal(err)
	}
	want := testTrace()
	if len(orig.Streams[0]) != len(want.Streams[0]) {
		t.Fatal("original stream length changed")
	}
	for i, e := range orig.Streams[0] {
		if e != want.Streams[0][i] {
			t.Errorf("original event %d changed: %v", i, e)
		}
	}
}

func TestInjectorCorruptions(t *testing.T) {
	in := NewInjector(1)
	// Turning an Unlock into a Write unbalances the locks; Validate rejects it.
	c, err := in.CorruptKind(testTrace(), 0, 2, trace.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted a lost lock release")
	}
	// Releasing the wrong lock is equally unbalanced.
	c, err = in.CorruptAddr(testTrace(), 0, 2, 0x80)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted a mismatched lock release")
	}
	// Dropping the release entirely.
	c, err = in.DropEvent(testTrace(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted a dropped lock release")
	}
	// Truncating mid-critical-section.
	c, err = in.TruncateStream(testTrace(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted a truncated critical section")
	}
}

func TestInjectorBounds(t *testing.T) {
	in := NewInjector(1)
	if _, err := in.CorruptKind(testTrace(), 5, 0, trace.Write); err == nil {
		t.Error("out-of-range proc accepted")
	}
	if _, err := in.DropEvent(testTrace(), 0, 99); err == nil {
		t.Error("out-of-range event accepted")
	}
	if _, err := in.TruncateStream(testTrace(), 0, 99); err == nil {
		t.Error("out-of-range keep accepted")
	}
}

func TestFlipBit(t *testing.T) {
	in := NewInjector(7)
	data := []byte{0x00, 0xff, 0x55}
	out, bit := in.FlipBit(data, 9)
	if bit != 9 {
		t.Errorf("bit = %d, want 9", bit)
	}
	if out[1] != 0xff^0x02 {
		t.Errorf("byte 1 = %#x", out[1])
	}
	if data[1] != 0xff {
		t.Error("FlipBit mutated its input")
	}
	// A random flip changes exactly one bit.
	out, bit = in.FlipBit(data, -1)
	if bit < 0 || bit >= len(data)*8 {
		t.Fatalf("random bit %d out of range", bit)
	}
	diff := 0
	for i := range data {
		for b := 0; b < 8; b++ {
			if (data[i]^out[i])&(1<<uint(b)) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d bits differ, want 1", diff)
	}
	// Empty input: no crash, no flip.
	if out, bit := in.FlipBit(nil, -1); len(out) != 0 || bit != -1 {
		t.Errorf("FlipBit(nil) = %v, %d", out, bit)
	}
}
