// Package check is the simulator's always-on validation and fault-injection
// subsystem. The paper's results depend on Charlie replaying *legal*
// interleavings through a correct Illinois protocol; this package supplies
// the machinery that turns a protocol bug, a corrupted trace, or a hung
// replay into a structured, diagnosable error instead of a panic:
//
//   - CheckLine verifies a protocol-supplied legality rule (LineRule) for
//     one line across all caches, returning a *Violation with the cycle, the
//     line, and every cache's view of it. InvalidationOwnership is the
//     write-invalidate (Illinois, MSI) rule, UpdateOwnership the
//     write-update (Dragon) rule; internal/coherence selects the rule per
//     protocol, so the checker enforces whatever machine is simulated
//     instead of hardcoded Illinois rules.
//   - PrefetchAccounting verifies a processor's prefetch issue-buffer
//     bookkeeping (the 16-deep lockup-free buffer of paper §3.3).
//   - StallError (watchdog.go) reports a deadlocked or livelocked replay,
//     naming the blocked processors and the synchronization object each one
//     waits on.
//   - Plan and Injector (inject.go) inject faults — dropped lock releases,
//     flipped cache states, corrupted or truncated trace records, flipped
//     bits in encoded traces — so tests can prove the checker, the watchdog
//     and the trace codec actually catch each failure class.
package check
