package check

import (
	"fmt"
	"math/rand"

	"busprefetch/internal/cache"
	"busprefetch/internal/memory"
	"busprefetch/internal/trace"
)

// LockDrop is a runtime fault: the simulator performs the Nth lock release
// by processor Proc normally at the memory level but "loses" the release
// signal, so queued waiters are never granted the lock — the classic
// never-released-lock hang the progress watchdog must catch.
type LockDrop struct {
	// Proc is the releasing processor.
	Proc int
	// Addr is the lock address; zero matches any lock.
	Addr memory.Addr
	// Nth is the 0-based ordinal of the release (counted per processor,
	// across all locks when Addr is zero); negative drops every release.
	Nth int
}

// StateFlip is a runtime fault: after processor Proc completes its OnFill-th
// line fill, the processor's cached copy of line Addr is forced to state To,
// bypassing the protocol — the corruption the coherence checker must catch.
type StateFlip struct {
	// Proc is the processor whose cache is corrupted.
	Proc int
	// Addr is the line to corrupt; zero means the line the triggering fill
	// just installed.
	Addr memory.Addr
	// To is the state forced onto the line.
	To cache.State
	// OnFill is the 0-based ordinal of the triggering fill; negative
	// triggers on every fill.
	OnFill int
}

// Spin is a runtime fault: after processor Proc completes its OnFill-th line
// fill, the processor abandons its stream and busy-loops forever, retiring
// progress-bearing no-op work every cycle. Unlike a dropped lock release —
// which the progress watchdog diagnoses — a spinning processor looks exactly
// like real work, so only an external deadline (a cancelled or timed-out
// context) can terminate the run. It models the wedged-but-busy cell the
// sweep engine's per-cell timeout exists for.
type Spin struct {
	// Proc is the processor that starts spinning.
	Proc int
	// OnFill is the 0-based ordinal of the triggering fill; negative
	// triggers on the processor's first fill.
	OnFill int
}

// Plan is a set of runtime faults the simulator applies during a run
// (sim.Config.Faults). A Plan is stateless and read-only: the simulator
// tracks per-processor ordinals, so one Plan can safely poison several
// concurrent runs.
type Plan struct {
	DropReleases []LockDrop
	Flips        []StateFlip
	Spins        []Spin
}

// DropRelease reports whether the plan suppresses the given release: the
// nth release (0-based) performed by proc, of the lock at addr.
func (p *Plan) DropRelease(proc int, addr memory.Addr, nth int) bool {
	if p == nil {
		return false
	}
	for _, d := range p.DropReleases {
		if d.Proc != proc {
			continue
		}
		if d.Addr != 0 && d.Addr != addr {
			continue
		}
		if d.Nth < 0 || d.Nth == nth {
			return true
		}
	}
	return false
}

// FlipsAfterFill returns the state flips to apply after proc's fill-th
// completed line fill installed line filled. Returned flips have Addr
// resolved (zero becomes the filled line).
func (p *Plan) FlipsAfterFill(proc, fill int, filled memory.Addr) []StateFlip {
	if p == nil {
		return nil
	}
	var out []StateFlip
	for _, f := range p.Flips {
		if f.Proc != proc {
			continue
		}
		if f.OnFill >= 0 && f.OnFill != fill {
			continue
		}
		if f.Addr == 0 {
			f.Addr = filled
		}
		out = append(out, f)
	}
	return out
}

// SpinAfterFill reports whether the plan sends proc into a busy loop after
// its fill-th completed line fill.
func (p *Plan) SpinAfterFill(proc, fill int) bool {
	if p == nil {
		return false
	}
	for _, s := range p.Spins {
		if s.Proc != proc {
			continue
		}
		if s.OnFill < 0 || s.OnFill == fill {
			return true
		}
	}
	return false
}

// Injector mutates traces and encoded trace bytes to model data corruption.
// All trace operations work on a deep copy; the original is never modified.
// The seed makes randomized faults (FlipBit with a negative bit index)
// reproducible.
type Injector struct {
	rng *rand.Rand
}

// NewInjector returns an injector whose randomized faults derive from seed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

func (in *Injector) checkEvent(t *trace.Trace, proc, event int) error {
	if proc < 0 || proc >= len(t.Streams) {
		return fmt.Errorf("check: inject: proc %d outside [0, %d)", proc, len(t.Streams))
	}
	if event < 0 || event >= len(t.Streams[proc]) {
		return fmt.Errorf("check: inject: proc %d event %d outside [0, %d)", proc, event, len(t.Streams[proc]))
	}
	return nil
}

// CorruptKind returns a copy of t with one event's kind rewritten — for
// example turning an Unlock into a plain Write, losing the release
// semantics, or a Read into garbage trace.Validate must reject.
func (in *Injector) CorruptKind(t *trace.Trace, proc, event int, k trace.Kind) (*trace.Trace, error) {
	if err := in.checkEvent(t, proc, event); err != nil {
		return nil, err
	}
	c := t.Clone()
	c.Streams[proc][event].Kind = k
	return c, nil
}

// CorruptAddr returns a copy of t with one event's address rewritten (a
// lock release aimed at the wrong lock, a barrier with a divergent id, ...).
func (in *Injector) CorruptAddr(t *trace.Trace, proc, event int, a memory.Addr) (*trace.Trace, error) {
	if err := in.checkEvent(t, proc, event); err != nil {
		return nil, err
	}
	c := t.Clone()
	c.Streams[proc][event].Addr = a
	return c, nil
}

// DropEvent returns a copy of t with one event removed from a stream.
func (in *Injector) DropEvent(t *trace.Trace, proc, event int) (*trace.Trace, error) {
	if err := in.checkEvent(t, proc, event); err != nil {
		return nil, err
	}
	c := t.Clone()
	s := c.Streams[proc]
	c.Streams[proc] = append(s[:event], s[event+1:]...)
	return c, nil
}

// TruncateStream returns a copy of t keeping only the first keep events of
// one processor's stream — a trace cut off mid-computation.
func (in *Injector) TruncateStream(t *trace.Trace, proc, keep int) (*trace.Trace, error) {
	if proc < 0 || proc >= len(t.Streams) {
		return nil, fmt.Errorf("check: inject: proc %d outside [0, %d)", proc, len(t.Streams))
	}
	if keep < 0 || keep > len(t.Streams[proc]) {
		return nil, fmt.Errorf("check: inject: keep %d outside [0, %d]", keep, len(t.Streams[proc]))
	}
	c := t.Clone()
	c.Streams[proc] = c.Streams[proc][:keep]
	return c, nil
}

// FlipBit returns a copy of data with one bit inverted, and the bit's index.
// A negative bit selects a uniformly random bit using the injector's seed.
// Flipping any bit of an encoded trace must make Decode fail (the CRC
// footer), never panic.
func (in *Injector) FlipBit(data []byte, bit int) ([]byte, int) {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out, -1
	}
	if bit < 0 {
		bit = in.rng.Intn(len(out) * 8)
	}
	bit %= len(out) * 8
	out[bit/8] ^= 1 << uint(bit%8)
	return out, bit
}
