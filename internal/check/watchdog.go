package check

import (
	"fmt"
	"strings"

	"busprefetch/internal/memory"
)

// WaitKind classifies what a stalled processor is blocked on.
type WaitKind int

const (
	// WaitUnknown: the processor is unfinished but not blocked on any known
	// object (it may simply never have been resumed).
	WaitUnknown WaitKind = iota
	// WaitMemory: blocked on an outstanding line fetch.
	WaitMemory
	// WaitLock: queued on a mutex another processor holds.
	WaitLock
	// WaitBarrier: waiting for the remaining processors to arrive.
	WaitBarrier
	// WaitBufferSlot: waiting for a prefetch issue-buffer slot.
	WaitBufferSlot
)

func (k WaitKind) String() string {
	switch k {
	case WaitMemory:
		return "memory"
	case WaitLock:
		return "lock"
	case WaitBarrier:
		return "barrier"
	case WaitBufferSlot:
		return "prefetch-buffer slot"
	}
	return "unknown"
}

// ProcStall describes one blocked processor in a stall report.
type ProcStall struct {
	// Proc is the processor id.
	Proc int
	// Event and Events locate the stalled event within the stream.
	Event, Events int
	// Wait says what the processor is blocked on.
	Wait WaitKind
	// Object is the synchronization object or line address waited on,
	// meaningful when HasObject (a barrier's Object is its identifier, not a
	// memory location).
	Object    memory.Addr
	HasObject bool
	// Holder is the processor holding the contended lock (WaitLock only);
	// -1 when unknown or not applicable.
	Holder int
}

func (p ProcStall) String() string {
	s := fmt.Sprintf("proc %d at event %d/%d waiting on %v", p.Proc, p.Event, p.Events, p.Wait)
	if p.HasObject {
		s += fmt.Sprintf(" 0x%x", uint64(p.Object))
	}
	if p.Wait == WaitLock && p.Holder >= 0 {
		s += fmt.Sprintf(" held by proc %d", p.Holder)
	}
	return s
}

// StallError is the progress watchdog's report: the replay stopped making
// progress (deadlock) or stopped retiring events while still processing
// them (livelock). It names every blocked processor and the object it waits
// on, so one hung run fails with a diagnosis instead of spinning forever or
// crashing the suite.
type StallError struct {
	// Label names the run that stalled (the sweep cell, e.g.
	// "mp3d/PREF/T=8"), when the caller supplied one (sim.Config.Label).
	// Empty for unlabeled runs.
	Label string
	// Cycle is the simulation time at which the stall was detected.
	Cycle uint64
	// Progress is the elapsed-progress snapshot: how many units of work
	// (retired events, absorbed gaps, completed fetches) the whole machine
	// had retired when the stall was detected. Together with Cycle it places
	// the stall on the run's timeline — "hung at the start" and "hung after
	// billions of cycles of real work" are different bugs.
	Progress uint64
	// Reason says how the watchdog tripped ("event queue drained with
	// unfinished processors", "no progress for N cycles", ...).
	Reason string
	// Stalls lists the blocked processors.
	Stalls []ProcStall
}

func (e *StallError) Error() string {
	var b strings.Builder
	b.WriteString("check: progress watchdog")
	if e.Label != "" {
		fmt.Fprintf(&b, " [%s]", e.Label)
	}
	fmt.Fprintf(&b, " at cycle %d (%d events retired): %s", e.Cycle, e.Progress, e.Reason)
	if len(e.Stalls) > 0 {
		fmt.Fprintf(&b, ": %d stalled:", len(e.Stalls))
		for i, s := range e.Stalls {
			if i > 0 {
				b.WriteString(";")
			}
			b.WriteString(" " + s.String())
		}
	}
	return b.String()
}
