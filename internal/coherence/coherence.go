package coherence

import (
	"fmt"
	"strings"

	"busprefetch/internal/cache"
	"busprefetch/internal/check"
	"busprefetch/internal/names"
)

// Kind identifies a coherence protocol.
type Kind int

const (
	// Illinois is the paper's protocol (Papamarcos & Patel): a read fill
	// with no other sharers enters the private-clean (Exclusive) state, so
	// a subsequent write needs no bus operation — "its most important
	// feature for our purposes" (§3.3), and what gives exclusive prefetches
	// their meaning.
	Illinois Kind = iota
	// MSI is the ablation protocol without the private-clean state: every
	// read fills Shared, so every first write to a line costs an
	// invalidation bus operation. Comparing MSI against Illinois isolates
	// how much the private-clean state matters on this machine.
	MSI
	// Dragon is the write-update ablation: writes to shared lines broadcast
	// word updates on the bus instead of invalidating remote copies, so
	// invalidation misses disappear entirely while every write to shared
	// data occupies the bus. Comparing Dragon against Illinois asks the
	// paper's follow-up: what happens to the miss taxonomy and bus demand
	// when invalidations are replaced by updates?
	Dragon
	numKinds
)

var kindNames = []string{"Illinois", "MSI", "Dragon"}

func (k Kind) String() string { return names.Lookup("Protocol", kindNames, int(k)) }

// Valid reports whether k names a known protocol.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// Kinds returns every protocol in presentation order.
func Kinds() []Kind { return []Kind{Illinois, MSI, Dragon} }

// Parse resolves a protocol name ("illinois", "msi", "dragon",
// case-insensitive) to its Kind.
func Parse(name string) (Kind, error) {
	for _, k := range Kinds() {
		if strings.EqualFold(name, k.String()) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("coherence: unknown protocol %q (valid: illinois, msi, dragon)", name)
}

// WriteAction is the bus operation a write hitting a valid line requires.
type WriteAction uint8

const (
	// WriteSilent: no bus operation; the line transitions locally.
	WriteSilent WriteAction = iota
	// WriteUpgrade: an address-only invalidation broadcast (bus.OpInvalidate)
	// that removes every remote copy before the write completes.
	WriteUpgrade
	// WriteUpdate: a word-update broadcast (bus.OpUpdate) that refreshes
	// every remote copy in place instead of invalidating it.
	WriteUpdate
)

var writeActionNames = []string{"silent", "upgrade", "update"}

func (a WriteAction) String() string {
	return names.Lookup("WriteAction", writeActionNames, int(a))
}

// Fill describes a completing line fetch to the protocol.
type Fill struct {
	// Excl is true for a read-for-ownership: a demand write miss or an
	// exclusive prefetch.
	Excl bool
	// IsPrefetch is true when a prefetch, not a blocked demand access,
	// initiated the fetch.
	IsPrefetch bool
	// Sharers is true when another cache held a valid copy of the line at
	// the fetch's bus grant (the coherence point).
	Sharers bool
}

// Protocol is one coherence protocol's complete state machine. Every
// transition the simulator performs — local write hits, fill-state
// selection, snoop responses, and the legality predicate the invariant
// checker enforces — is answered here; internal/sim holds no per-protocol
// branches.
//
// Implementations must be stateless values: the per-line state lives in
// internal/cache, and one Protocol instance serves every cache of a run.
type Protocol interface {
	// Kind identifies the protocol.
	Kind() Kind
	// String returns the protocol's presentation name.
	String() string

	// WriteHit returns the bus action a write hitting a valid line in state
	// st requires. For WriteSilent the line immediately assumes next; for
	// WriteUpgrade and WriteUpdate next is meaningless — the post-grant
	// state comes from WriterState once the broadcast's snoop has run.
	WriteHit(st cache.State) (action WriteAction, next cache.State)

	// FillState returns the state a completing fetch installs in.
	FillState(f Fill) cache.State

	// WriterState returns the writer's state at the grant of its
	// WriteUpgrade or WriteUpdate broadcast, given whether any remote cache
	// still held a valid copy after the snoop.
	WriterState(action WriteAction, sharers bool) cache.State

	// SnoopRead returns the next state of a valid resident copy when a
	// remote read fill of the line is observed on the bus.
	SnoopRead(st cache.State) cache.State
	// SnoopWrite returns the next state of a valid resident copy when a
	// remote write takes the line: a read-for-ownership fill, an exclusive
	// prefetch, or an invalidation upgrade.
	SnoopWrite(st cache.State) cache.State
	// SnoopUpdate returns the next state of a valid resident copy when a
	// remote word-update broadcast for the line is observed. Only
	// write-update protocols put updates on the bus.
	SnoopUpdate(st cache.State) cache.State

	// Invariant returns the per-line legality predicate internal/check
	// enforces for this protocol at every serialization point.
	Invariant() check.LineRule
}

// ByKind returns the protocol implementation for k. It panics on an unknown
// kind: kinds are validated at configuration time (sim.Config.Validate), so
// an invalid kind here is a programming error.
func ByKind(k Kind) Protocol {
	switch k {
	case Illinois:
		return illinois{}
	case MSI:
		return msi{}
	case Dragon:
		return dragon{}
	}
	panic(fmt.Sprintf("coherence: no implementation for %v", k))
}

// Protocols returns one instance of every protocol, in Kinds order.
func Protocols() []Protocol {
	ps := make([]Protocol, 0, numKinds)
	for _, k := range Kinds() {
		ps = append(ps, ByKind(k))
	}
	return ps
}
