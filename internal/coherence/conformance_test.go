package coherence

import (
	"testing"

	"busprefetch/internal/cache"
	"busprefetch/internal/check"
)

// This file is the protocol conformance suite: every (state, event) pair of
// every protocol is pinned in explicit tables, and a set of protocol-generic
// laws — fills install valid states, exclusivity requires the absence of
// sharers, the single-owner and no-stale-sharer invariants — runs over
// Protocols(), so any future implementation added to the registry is
// exercised without new test plumbing.

var validStates = []cache.State{cache.Shared, cache.Exclusive, cache.Modified, cache.SharedMod}

// allFills enumerates every Fill the simulator can present.
func allFills() []Fill {
	var fs []Fill
	for _, excl := range []bool{false, true} {
		for _, pf := range []bool{false, true} {
			for _, sh := range []bool{false, true} {
				fs = append(fs, Fill{Excl: excl, IsPrefetch: pf, Sharers: sh})
			}
		}
	}
	return fs
}

type writeHitCase struct {
	action WriteAction
	next   cache.State // meaningful only for WriteSilent
}

// The exact transition tables. Key order: Shared, Exclusive, Modified,
// SharedMod.
var writeHitTable = map[Kind]map[cache.State]writeHitCase{
	Illinois: {
		cache.Shared:    {WriteUpgrade, cache.Shared},
		cache.Exclusive: {WriteSilent, cache.Modified},
		cache.Modified:  {WriteSilent, cache.Modified},
		cache.SharedMod: {WriteUpgrade, cache.SharedMod}, // foreign state: treated as shared
	},
	MSI: {
		cache.Shared:    {WriteUpgrade, cache.Shared},
		cache.Exclusive: {WriteSilent, cache.Modified}, // unreachable, but writes like an owner
		cache.Modified:  {WriteSilent, cache.Modified},
		cache.SharedMod: {WriteUpgrade, cache.SharedMod},
	},
	Dragon: {
		cache.Shared:    {WriteUpdate, cache.Shared},
		cache.Exclusive: {WriteSilent, cache.Modified},
		cache.Modified:  {WriteSilent, cache.Modified},
		cache.SharedMod: {WriteUpdate, cache.SharedMod},
	},
}

var snoopReadTable = map[Kind]map[cache.State]cache.State{
	Illinois: {
		cache.Shared:    cache.Shared,
		cache.Exclusive: cache.Shared,
		cache.Modified:  cache.Shared,
		cache.SharedMod: cache.SharedMod,
	},
	MSI: {
		cache.Shared:    cache.Shared,
		cache.Exclusive: cache.Shared,
		cache.Modified:  cache.Shared,
		cache.SharedMod: cache.SharedMod,
	},
	Dragon: {
		cache.Shared:    cache.Shared,
		cache.Exclusive: cache.Shared,
		cache.Modified:  cache.SharedMod, // owner keeps writeback responsibility
		cache.SharedMod: cache.SharedMod,
	},
}

var snoopWriteTable = map[Kind]map[cache.State]cache.State{
	Illinois: {
		cache.Shared:    cache.Invalid,
		cache.Exclusive: cache.Invalid,
		cache.Modified:  cache.Invalid,
		cache.SharedMod: cache.Invalid,
	},
	MSI: {
		cache.Shared:    cache.Invalid,
		cache.Exclusive: cache.Invalid,
		cache.Modified:  cache.Invalid,
		cache.SharedMod: cache.Invalid,
	},
	Dragon: {
		cache.Shared:    cache.Shared,
		cache.Exclusive: cache.Shared,
		cache.Modified:  cache.Shared,
		cache.SharedMod: cache.Shared, // the remote writer takes over as update-owner
	},
}

var snoopUpdateTable = map[Kind]map[cache.State]cache.State{
	// Write-invalidate protocols never see updates; a resident copy is
	// unaffected.
	Illinois: {
		cache.Shared:    cache.Shared,
		cache.Exclusive: cache.Exclusive,
		cache.Modified:  cache.Modified,
		cache.SharedMod: cache.SharedMod,
	},
	MSI: {
		cache.Shared:    cache.Shared,
		cache.Exclusive: cache.Exclusive,
		cache.Modified:  cache.Modified,
		cache.SharedMod: cache.SharedMod,
	},
	Dragon: {
		cache.Shared:    cache.Shared,
		cache.Exclusive: cache.Shared,
		cache.Modified:  cache.Shared,
		cache.SharedMod: cache.Shared,
	},
}

var fillTable = map[Kind]map[Fill]cache.State{
	Illinois: {
		{Excl: false, IsPrefetch: false, Sharers: false}: cache.Exclusive, // the private-clean fill
		{Excl: false, IsPrefetch: false, Sharers: true}:  cache.Shared,
		{Excl: false, IsPrefetch: true, Sharers: false}:  cache.Exclusive,
		{Excl: false, IsPrefetch: true, Sharers: true}:   cache.Shared,
		{Excl: true, IsPrefetch: false, Sharers: false}:  cache.Modified,
		{Excl: true, IsPrefetch: false, Sharers: true}:   cache.Modified,
		{Excl: true, IsPrefetch: true, Sharers: false}:   cache.Exclusive,
		{Excl: true, IsPrefetch: true, Sharers: true}:    cache.Exclusive,
	},
	MSI: {
		{Excl: false, IsPrefetch: false, Sharers: false}: cache.Shared, // no private-clean state
		{Excl: false, IsPrefetch: false, Sharers: true}:  cache.Shared,
		{Excl: false, IsPrefetch: true, Sharers: false}:  cache.Shared,
		{Excl: false, IsPrefetch: true, Sharers: true}:   cache.Shared,
		{Excl: true, IsPrefetch: false, Sharers: false}:  cache.Modified,
		{Excl: true, IsPrefetch: false, Sharers: true}:   cache.Modified,
		{Excl: true, IsPrefetch: true, Sharers: false}:   cache.Modified,
		{Excl: true, IsPrefetch: true, Sharers: true}:    cache.Modified,
	},
	Dragon: {
		{Excl: false, IsPrefetch: false, Sharers: false}: cache.Exclusive,
		{Excl: false, IsPrefetch: false, Sharers: true}:  cache.Shared,
		{Excl: false, IsPrefetch: true, Sharers: false}:  cache.Exclusive,
		{Excl: false, IsPrefetch: true, Sharers: true}:   cache.Shared,
		{Excl: true, IsPrefetch: false, Sharers: false}:  cache.Modified,
		{Excl: true, IsPrefetch: false, Sharers: true}:   cache.SharedMod, // write miss joins the sharers as owner
		{Excl: true, IsPrefetch: true, Sharers: false}:   cache.Exclusive, // excl prefetch degenerates to a read fill
		{Excl: true, IsPrefetch: true, Sharers: true}:    cache.Shared,
	},
}

var writerStateTable = map[Kind]map[WriteAction]map[bool]cache.State{
	Illinois: {
		WriteUpgrade: {false: cache.Modified, true: cache.Modified},
		WriteUpdate:  {false: cache.Modified, true: cache.Modified},
	},
	MSI: {
		WriteUpgrade: {false: cache.Modified, true: cache.Modified},
		WriteUpdate:  {false: cache.Modified, true: cache.Modified},
	},
	Dragon: {
		WriteUpgrade: {false: cache.Modified, true: cache.Modified},
		WriteUpdate:  {false: cache.Modified, true: cache.SharedMod},
	},
}

func TestTransitionTables(t *testing.T) {
	for _, p := range Protocols() {
		k := p.Kind()
		for st, want := range writeHitTable[k] {
			act, next := p.WriteHit(st)
			if act != want.action {
				t.Errorf("%v: WriteHit(%v) action = %v, want %v", k, st, act, want.action)
			}
			if act == WriteSilent && next != want.next {
				t.Errorf("%v: WriteHit(%v) next = %v, want %v", k, st, next, want.next)
			}
		}
		for st, want := range snoopReadTable[k] {
			if got := p.SnoopRead(st); got != want {
				t.Errorf("%v: SnoopRead(%v) = %v, want %v", k, st, got, want)
			}
		}
		for st, want := range snoopWriteTable[k] {
			if got := p.SnoopWrite(st); got != want {
				t.Errorf("%v: SnoopWrite(%v) = %v, want %v", k, st, got, want)
			}
		}
		for st, want := range snoopUpdateTable[k] {
			if got := p.SnoopUpdate(st); got != want {
				t.Errorf("%v: SnoopUpdate(%v) = %v, want %v", k, st, got, want)
			}
		}
		for f, want := range fillTable[k] {
			if got := p.FillState(f); got != want {
				t.Errorf("%v: FillState(%+v) = %v, want %v", k, f, got, want)
			}
		}
		for act, bySharers := range writerStateTable[k] {
			for sharers, want := range bySharers {
				if got := p.WriterState(act, sharers); got != want {
					t.Errorf("%v: WriterState(%v, sharers=%v) = %v, want %v", k, act, sharers, got, want)
				}
			}
		}
	}
}

// TestTablesAreComplete guards the conformance tables themselves: every
// protocol in the registry must have an entry for every state and every
// fill, so adding a protocol (or a state) without extending the tables fails
// loudly instead of silently skipping pairs.
func TestTablesAreComplete(t *testing.T) {
	for _, p := range Protocols() {
		k := p.Kind()
		for _, st := range validStates {
			if _, ok := writeHitTable[k][st]; !ok {
				t.Errorf("writeHitTable[%v] missing state %v", k, st)
			}
			if _, ok := snoopReadTable[k][st]; !ok {
				t.Errorf("snoopReadTable[%v] missing state %v", k, st)
			}
			if _, ok := snoopWriteTable[k][st]; !ok {
				t.Errorf("snoopWriteTable[%v] missing state %v", k, st)
			}
			if _, ok := snoopUpdateTable[k][st]; !ok {
				t.Errorf("snoopUpdateTable[%v] missing state %v", k, st)
			}
		}
		for _, f := range allFills() {
			if _, ok := fillTable[k][f]; !ok {
				t.Errorf("fillTable[%v] missing fill %+v", k, f)
			}
		}
	}
}

// TestProtocolLaws asserts the protocol-generic requirements any future
// implementation must satisfy, independent of its particular tables.
func TestProtocolLaws(t *testing.T) {
	for _, p := range Protocols() {
		k := p.Kind()

		// Fills must install usable data.
		for _, f := range allFills() {
			if st := p.FillState(f); !st.Valid() {
				t.Errorf("%v: FillState(%+v) = %v, not a valid state", k, f, st)
			}
			// A non-exclusive fill that observed sharers must not install an
			// exclusivity-asserting state.
			if !f.Excl && f.Sharers {
				if st := p.FillState(f); st == cache.Exclusive || st == cache.Modified {
					t.Errorf("%v: read fill with sharers installed exclusive state %v", k, f)
				}
			}
		}

		// A held Modified line writes silently: ownership is already paid for.
		if act, next := p.WriteHit(cache.Modified); act != WriteSilent || next != cache.Modified {
			t.Errorf("%v: WriteHit(M) = (%v, %v), want silent Modified", k, act, next)
		}

		for _, st := range validStates {
			// After a remote write, no stale exclusivity may remain.
			if got := p.SnoopWrite(st); got == cache.Exclusive || got == cache.Modified {
				t.Errorf("%v: SnoopWrite(%v) left exclusive state %v", k, st, got)
			}
			// After a remote read, a copy cannot remain Exclusive-clean.
			if got := p.SnoopRead(st); got == cache.Exclusive {
				t.Errorf("%v: SnoopRead(%v) left the copy Exclusive", k, st)
			}
			// Write actions other than WriteSilent must resolve to an owned,
			// dirty state once the broadcast completes.
			act, _ := p.WriteHit(st)
			if act != WriteSilent {
				for _, sharers := range []bool{false, true} {
					if got := p.WriterState(act, sharers); !got.Dirty() {
						t.Errorf("%v: WriterState(%v, sharers=%v) = %v, not dirty", k, act, sharers, got)
					}
				}
			}
		}
	}
}

// line builds a ProcLineState vector from data-cache states.
func line(states ...cache.State) []check.ProcLineState {
	out := make([]check.ProcLineState, len(states))
	for i, s := range states {
		out[i] = check.ProcLineState{Proc: i, State: s}
	}
	return out
}

// TestInvariants pins each protocol's legality predicate: the single-owner
// and no-stale-sharer rules every protocol enforces, plus the per-protocol
// refinements (no SharedMod under write-invalidate, at most one update-owner
// under Dragon).
func TestInvariants(t *testing.T) {
	type verdict struct {
		name   string
		states []check.ProcLineState
		rule   string // expected broken rule; "" = legal
	}
	common := []verdict{
		{"all invalid", line(cache.Invalid, cache.Invalid), ""},
		{"one modified", line(cache.Modified, cache.Invalid), ""},
		{"one exclusive", line(cache.Exclusive, cache.Invalid), ""},
		{"many shared", line(cache.Shared, cache.Shared, cache.Shared), ""},
		{"two owners", line(cache.Modified, cache.Exclusive), "multiple-owner"},
		{"two modified", line(cache.Modified, cache.Modified), "multiple-owner"},
		{"owner with sharer", line(cache.Modified, cache.Shared), "owner-with-sharers"},
		{"exclusive with sharer", line(cache.Exclusive, cache.Shared), "owner-with-sharers"},
	}
	perKind := map[Kind][]verdict{
		Illinois: {
			{"shared-dirty is foreign", line(cache.SharedMod, cache.Shared), "foreign-state"},
		},
		MSI: {
			{"shared-dirty is foreign", line(cache.SharedMod), "foreign-state"},
		},
		Dragon: {
			{"update-owner with sharers", line(cache.SharedMod, cache.Shared, cache.Shared), ""},
			{"lone update-owner", line(cache.SharedMod), ""},
			{"two update-owners", line(cache.SharedMod, cache.SharedMod), "multiple-update-owner"},
			{"exclusive with update-owner", line(cache.Modified, cache.SharedMod), "owner-with-sharers"},
		},
	}
	for _, p := range Protocols() {
		legal := p.Invariant()
		for _, v := range append(append([]verdict(nil), common...), perKind[p.Kind()]...) {
			rule, _ := legal(v.states)
			if rule != v.rule {
				t.Errorf("%v: %s: rule = %q, want %q", p.Kind(), v.name, rule, v.rule)
			}
		}
	}
}

func TestParseAndRegistry(t *testing.T) {
	for _, k := range Kinds() {
		if !k.Valid() {
			t.Errorf("%v not Valid()", k)
		}
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Errorf("Parse(%q) = %v, %v", k.String(), got, err)
		}
		if ByKind(k).Kind() != k {
			t.Errorf("ByKind(%v).Kind() mismatch", k)
		}
	}
	if k, err := Parse("dragon"); err != nil || k != Dragon {
		t.Errorf("Parse(dragon) = %v, %v", k, err)
	}
	if _, err := Parse("mesi2"); err == nil {
		t.Error("Parse accepted an unknown protocol")
	}
	if Kind(99).Valid() {
		t.Error("Kind(99) reported valid")
	}
	if got := Kind(99).String(); got != "Protocol(99)" {
		t.Errorf("Kind(99).String() = %q", got)
	}
}
