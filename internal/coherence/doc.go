// Package coherence is the simulator's pluggable coherence-protocol kernel.
//
// A Protocol owns the full per-line state machine the paper's Charlie
// simulator hardwired: what a write hitting a valid line must do on the bus
// (nothing, an address-only invalidation upgrade, or a word-update
// broadcast), which state a completing fetch installs given whether remote
// sharers were observed at the bus grant, how a resident copy reacts to each
// snooped bus operation, and which cross-cache line states are legal (the
// predicate internal/check enforces).
//
// internal/sim drives the machine — bus arbitration, snoop ordering, miss
// classification — and consults the Protocol at every transition, so a new
// protocol is one implementation of this interface instead of another
// `if protocol ==` threaded through four packages. Three protocols ship:
//
//   - Illinois, the paper's write-invalidate protocol (Papamarcos & Patel),
//     whose private-clean Exclusive state lets the first write to an
//     unshared line proceed without a bus operation;
//   - MSI, the ablation without the private-clean state, where every first
//     write costs an invalidation;
//   - Dragon, a write-update ablation: writes to shared lines broadcast
//     word updates (bus.OpUpdate) instead of invalidating, eliminating
//     invalidation misses at the price of sustained update traffic.
package coherence
