package coherence

import (
	"busprefetch/internal/cache"
	"busprefetch/internal/check"
)

// dragon is the write-update ablation (after the Xerox Dragon protocol):
// writes to shared lines broadcast word updates on the bus instead of
// invalidating remote copies. Lines are never invalidated by coherence
// actions, so invalidation misses — the component the paper shows
// uniprocessor-style prefetching cannot cover — disappear entirely; in
// exchange, every write to shared data occupies the bus for the update.
//
// State mapping onto cache.State: Exclusive is Dragon's exclusive-clean E,
// Shared its shared-clean Sc, SharedMod its shared-dirty Sm (the
// update-owner, responsible for supplying data and the eventual writeback),
// and Modified its exclusive-dirty M. The sharers wire of the real Dragon
// bus is modeled by the snoop result at each grant: a broadcast that finds
// no remaining sharers leaves the writer exclusive, ending the updates.
type dragon struct{}

func (dragon) Kind() Kind     { return Dragon }
func (dragon) String() string { return Dragon.String() }

func (dragon) WriteHit(st cache.State) (WriteAction, cache.State) {
	switch st {
	case cache.Exclusive, cache.Modified:
		// Exclusive copies write silently, exactly as in Illinois.
		return WriteSilent, cache.Modified
	default:
		// Shared or SharedMod: the write must broadcast its word so every
		// remote copy stays current.
		return WriteUpdate, st
	}
}

func (dragon) FillState(f Fill) cache.State {
	if f.Excl && !f.IsPrefetch {
		// Demand write fill: the write completes on resume. With sharers
		// the line is shared-dirty and this cache becomes the update-owner;
		// the retried write then broadcasts its update. Without sharers the
		// line is exclusively dirty and the write is silent.
		if f.Sharers {
			return cache.SharedMod
		}
		return cache.Modified
	}
	// Read fills — demand, prefetch, and exclusive prefetch alike — install
	// clean: an update protocol cannot pre-claim ownership of a shared line
	// without writing, so an exclusive prefetch degenerates to a read fill.
	if f.Sharers {
		return cache.Shared
	}
	return cache.Exclusive
}

func (dragon) WriterState(action WriteAction, sharers bool) cache.State {
	if action == WriteUpdate && sharers {
		// Remote copies remain: the writer holds the line shared-dirty and
		// keeps broadcasting subsequent writes.
		return cache.SharedMod
	}
	// No sharer answered the broadcast (or, defensively, an upgrade): the
	// writer owns the line outright and stops updating.
	return cache.Modified
}

func (dragon) SnoopRead(st cache.State) cache.State {
	switch st {
	case cache.Exclusive:
		return cache.Shared
	case cache.Modified:
		// The owner supplies the data and keeps writeback responsibility.
		return cache.SharedMod
	default:
		return st
	}
}

// SnoopWrite handles a remote write miss: the remote cache fills SharedMod
// and takes over as update-owner; resident copies stay valid (they will
// receive the written word by update) but relinquish any ownership.
func (dragon) SnoopWrite(cache.State) cache.State { return cache.Shared }

// SnoopUpdate absorbs a remote word-update: the update's writer becomes the
// owner; every other copy — including a previous update-owner — demotes to
// shared-clean with fresh data.
func (dragon) SnoopUpdate(cache.State) cache.State { return cache.Shared }

func (dragon) Invariant() check.LineRule { return check.UpdateOwnership }
