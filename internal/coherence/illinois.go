package coherence

import (
	"busprefetch/internal/cache"
	"busprefetch/internal/check"
)

// illinois is the paper's write-invalidate protocol (Papamarcos & Patel):
// MESI with cache-to-cache supply. Its signature transition is the
// private-clean fill — a read with no other sharers enters Exclusive, so
// the first write to unshared data costs no bus operation.
type illinois struct{}

func (illinois) Kind() Kind     { return Illinois }
func (illinois) String() string { return Illinois.String() }

func (illinois) WriteHit(st cache.State) (WriteAction, cache.State) {
	switch st {
	case cache.Exclusive, cache.Modified:
		// The silent Exclusive-to-Modified transition is the protocol's
		// whole point: ownership already held, no bus operation.
		return WriteSilent, cache.Modified
	default:
		// A Shared copy must invalidate the others before the write.
		return WriteUpgrade, st
	}
}

func (illinois) FillState(f Fill) cache.State {
	switch {
	case f.Excl && f.IsPrefetch:
		// Exclusive prefetch: ownership without data modification.
		return cache.Exclusive
	case f.Excl:
		// Demand write fill (read-for-ownership): the write completes on
		// resume, so the line is dirty.
		return cache.Modified
	case f.Sharers:
		return cache.Shared
	default:
		// The private-clean fill: no other cache held the line.
		return cache.Exclusive
	}
}

func (illinois) WriterState(WriteAction, bool) cache.State { return cache.Modified }

func (illinois) SnoopRead(st cache.State) cache.State {
	if st == cache.Exclusive || st == cache.Modified {
		return cache.Shared // the owner supplies the data and demotes
	}
	return st
}

func (illinois) SnoopWrite(cache.State) cache.State { return cache.Invalid }

// SnoopUpdate never occurs under a write-invalidate protocol; a resident
// copy is unaffected.
func (illinois) SnoopUpdate(st cache.State) cache.State { return st }

func (illinois) Invariant() check.LineRule { return check.InvalidationOwnership }
