package coherence

import (
	"busprefetch/internal/cache"
	"busprefetch/internal/check"
)

// msi is the ablation protocol without the Illinois private-clean state:
// every read fills Shared, so every first write to a line — shared or not —
// costs an invalidation bus operation. Exclusive prefetches still acquire
// ownership, but the only owned state is Modified.
type msi struct{}

func (msi) Kind() Kind     { return MSI }
func (msi) String() string { return MSI.String() }

func (msi) WriteHit(st cache.State) (WriteAction, cache.State) {
	switch st {
	case cache.Exclusive, cache.Modified:
		// Exclusive is unreachable under MSI (no private-clean fill), but a
		// held ownership state writes silently, as in Illinois.
		return WriteSilent, cache.Modified
	default:
		return WriteUpgrade, st
	}
}

func (msi) FillState(f Fill) cache.State {
	if f.Excl {
		// MSI has no private-clean state, so ownership — demand write or
		// exclusive prefetch — means Modified.
		return cache.Modified
	}
	// Every read fills Shared, sharers or not: the first write will pay.
	return cache.Shared
}

func (msi) WriterState(WriteAction, bool) cache.State { return cache.Modified }

func (msi) SnoopRead(st cache.State) cache.State {
	if st == cache.Exclusive || st == cache.Modified {
		return cache.Shared
	}
	return st
}

func (msi) SnoopWrite(cache.State) cache.State { return cache.Invalid }

// SnoopUpdate never occurs under a write-invalidate protocol; a resident
// copy is unaffected.
func (msi) SnoopUpdate(st cache.State) cache.State { return st }

func (msi) Invariant() check.LineRule { return check.InvalidationOwnership }
