package experiments

import (
	"context"
	"fmt"

	"busprefetch/internal/memory"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/report"
	"busprefetch/internal/runner"
	"busprefetch/internal/sim"
)

// The ablations reproduce the configuration variations the paper describes
// but does not tabulate (§3.3: "Several other configurations were
// simulated... with larger caches, non-sharing misses were reduced, making
// invalidation miss effects much more dominant; larger block sizes increased
// false sharing") and the design alternatives it points at (§4.3's victim
// cache and set associativity; §3.1's non-snooping prefetch buffer; §3.3's
// reliance on the Illinois private-clean state).

// AblationRow is one configuration's headline metrics.
type AblationRow struct {
	// Label identifies the varied parameter value ("64KB", "2-way", ...).
	Label string
	// Strategy is the prefetch discipline simulated.
	Strategy prefetch.Strategy
	// RelTime is execution time relative to the row marked baseline (the
	// first row of the sweep with the same strategy).
	RelTime float64
	CPUMR   float64
	InvalMR float64
	FSMR    float64
	// UpdMR is word-update broadcasts per demand reference — the sustained
	// bus cost a write-update protocol (Dragon) pays in place of
	// invalidation misses. Zero under write-invalidate protocols.
	UpdMR   float64
	BusUtil float64
	// InvalShare is invalidation misses as a fraction of CPU misses.
	InvalShare float64
}

func (s *Suite) runConfig(ctx context.Context, label, wl string, strat prefetch.Strategy, cfg sim.Config,
	restructured bool, annotate func(prefetch.Options) prefetch.Options) (*sim.Result, error) {
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	// Ablation traces must be generated with the ablation geometry so the
	// layouts (conflict-pair placement, padding) stay consistent with the
	// simulated cache. The trace cache keys on geometry, so sweeps that vary
	// only the simulator configuration (protocol, latency, distance, victim
	// cache) share one generation, as do ablations at the default geometry
	// and the main suite grid.
	opts := prefetch.Options{Strategy: strat, Geometry: cfg.Geometry}
	if annotate != nil {
		opts = annotate(opts)
	}
	cfg.Label = label
	return s.runCell(ctx, cfg, wl, restructured, cfg.Geometry, prefetch.Oracle, opts, nil)
}

// variantRun is one cell of an ablation sweep.
type variantRun struct {
	label        string
	workload     string
	strat        prefetch.Strategy
	cfg          sim.Config
	restructured bool
	annotate     func(prefetch.Options) prefetch.Options
}

// runVariants executes an ablation sweep on the suite's worker pool and
// returns the results in input (canonical) order, so downstream baseline
// arithmetic sees the same sequence a serial sweep would have produced.
// Unlike the suite grid, ablation sweeps fail outright on the first failing
// variant (in canonical order) — they are supplementary sweeps with
// within-sweep baselines, so a partial sweep would mislead more than it
// informs.
func (s *Suite) runVariants(ctx context.Context, sweep string, variants []variantRun) ([]*sim.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tasks := make([]runner.Task, len(variants))
	results := make([]*sim.Result, len(variants))
	for i, v := range variants {
		label := fmt.Sprintf("ablation:%s/%s/%s/%s", sweep, v.workload, v.label, v.strat)
		tasks[i] = runner.Task{
			Label: label,
			Run: func(ctx context.Context) error {
				err, _ := runner.Retry(ctx, s.retryPolicy(label), func(ctx context.Context) error {
					res, err := s.runConfig(ctx, label, v.workload, v.strat, v.cfg, v.restructured, v.annotate)
					if err != nil {
						return err
					}
					results[i] = res
					return nil
				})
				return err
			},
		}
	}
	errs, times := s.pool.Do(ctx, tasks, nil)
	s.recordTimings(times)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s (%s): %w", variants[i].label, sweep, err)
		}
	}
	return results, nil
}

func ablationRow(label string, strat prefetch.Strategy, res *sim.Result, baseline uint64) AblationRow {
	row := AblationRow{
		Label:    label,
		Strategy: strat,
		CPUMR:    res.CPUMissRate(),
		InvalMR:  res.InvalidationMissRate(),
		FSMR:     res.FalseSharingMissRate(),
		UpdMR:    res.UpdateRate(),
		BusUtil:  res.BusUtilization(),
	}
	if baseline > 0 {
		row.RelTime = float64(res.Cycles) / float64(baseline)
	} else {
		row.RelTime = 1
	}
	if total := res.Counters.TotalCPUMisses(); total > 0 {
		row.InvalShare = float64(res.Counters.InvalidationMisses()) / float64(total)
	}
	return row
}

// AblationCacheSize sweeps the cache capacity on one workload under NP. The
// paper's reported effect: larger caches remove non-sharing misses, so
// invalidation misses dominate even more.
func (s *Suite) AblationCacheSize(ctx context.Context, wl string, sizesKB []int) ([]AblationRow, error) {
	if len(sizesKB) == 0 {
		sizesKB = []int{16, 32, 64, 128}
	}
	var variants []variantRun
	for _, kb := range sizesKB {
		cfg := sim.DefaultConfig()
		cfg.Geometry = memory.Geometry{CacheSize: kb * 1024, LineSize: 32, Assoc: 1}
		variants = append(variants, variantRun{
			label: fmt.Sprintf("%dKB", kb), workload: wl, strat: prefetch.NP, cfg: cfg,
		})
	}
	return s.sweepRows(ctx, "cache-size", variants)
}

// sweepRows runs a sweep whose baseline is its first variant's cycles.
func (s *Suite) sweepRows(ctx context.Context, sweep string, variants []variantRun) ([]AblationRow, error) {
	results, err := s.runVariants(ctx, sweep, variants)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	var base uint64
	for i, res := range results {
		if base == 0 {
			base = res.Cycles
		}
		rows = append(rows, ablationRow(variants[i].label, variants[i].strat, res, base))
	}
	return rows, nil
}

// AblationLineSize sweeps the cache-line size under NP. The paper's
// reported effect: larger blocks increase false sharing and with it the
// invalidation miss total.
func (s *Suite) AblationLineSize(ctx context.Context, wl string, sizes []int) ([]AblationRow, error) {
	if len(sizes) == 0 {
		sizes = []int{16, 32, 64, 128}
	}
	var variants []variantRun
	for _, ls := range sizes {
		cfg := sim.DefaultConfig()
		cfg.Geometry = memory.Geometry{CacheSize: 32 * 1024, LineSize: ls, Assoc: 1}
		variants = append(variants, variantRun{
			label: fmt.Sprintf("%dB", ls), workload: wl, strat: prefetch.NP, cfg: cfg,
		})
	}
	return s.sweepRows(ctx, "line-size", variants)
}

// AblationAssociativity compares the direct-mapped cache against
// set-associative ones and a direct-mapped cache with a victim cache, under
// PREF on Topopt — the paper's suggestion for the conflict misses
// prefetching introduces ("the magnitude of this conflict would likely be
// reduced by a victim cache or a set-associative cache", §4.3).
func (s *Suite) AblationAssociativity(ctx context.Context, wl string) ([]AblationRow, error) {
	type variant struct {
		label  string
		assoc  int
		victim int
	}
	shapes := []variant{
		{"direct-mapped", 1, 0},
		{"direct+victim8", 1, 8},
		{"2-way", 2, 0},
		{"4-way", 4, 0},
	}
	var variants []variantRun
	for _, v := range shapes {
		cfg := sim.DefaultConfig()
		cfg.Geometry = memory.Geometry{CacheSize: 32 * 1024, LineSize: 32, Assoc: v.assoc}
		cfg.VictimCacheLines = v.victim
		variants = append(variants, variantRun{label: v.label, workload: wl, strat: prefetch.PREF, cfg: cfg})
	}
	return s.sweepRows(ctx, "associativity", variants)
}

// AblationProtocol compares the three coherence protocols — Illinois, the
// MSI ablation without its private-clean state, and Dragon write-update —
// under NP, PREF, and EXCL, at each given data-transfer cost (nil selects 8
// and 32 cycles, the ends of the paper's sweep). MSI quantifies why the
// paper calls the private-clean state its protocol's most important feature;
// Dragon answers the follow-up the related work poses: replacing
// invalidations with word updates removes invalidation misses entirely (the
// component prefetching cannot cover) but pays for them in sustained update
// traffic, and the higher the transfer cost the more that traffic competes
// with fills for the bus. The baseline is Illinois/NP at the first transfer
// cost.
func (s *Suite) AblationProtocol(ctx context.Context, wl string, transfers []int) ([]AblationRow, error) {
	if len(transfers) == 0 {
		transfers = []int{8, 32}
	}
	var variants []variantRun
	for _, tc := range transfers {
		for _, proto := range []sim.Protocol{sim.Illinois, sim.MSI, sim.Dragon} {
			for _, strat := range []prefetch.Strategy{prefetch.NP, prefetch.PREF, prefetch.EXCL} {
				cfg := sim.DefaultConfig()
				cfg.Protocol = proto
				cfg.TransferCycles = tc
				variants = append(variants, variantRun{
					label: fmt.Sprintf("%s/t%d", proto, tc), workload: wl, strat: strat, cfg: cfg,
				})
			}
		}
	}
	return s.sweepRows(ctx, "protocol", variants)
}

// AblationPrefetchPlacement compares cache prefetching against the
// non-snooping prefetch buffer of §3.1. Buffered prefetching cannot touch
// write-shared data, so on these workloads it covers far less — the paper's
// reason to study cache prefetching only.
func (s *Suite) AblationPrefetchPlacement(ctx context.Context, wl string) ([]AblationRow, error) {
	np := sim.DefaultConfig()
	buf := sim.DefaultConfig()
	buf.PrefetchTarget = sim.PrefetchToBuffer
	variants := []variantRun{
		{label: "no prefetch", workload: wl, strat: prefetch.NP, cfg: np},
		{label: "cache prefetch", workload: wl, strat: prefetch.PREF, cfg: np},
		{label: "buffer prefetch", workload: wl, strat: prefetch.PREF, cfg: buf,
			annotate: func(o prefetch.Options) prefetch.Options {
				o.ExcludeWriteShared = true
				return o
			}},
	}
	return s.sweepRows(ctx, "placement", variants)
}

// RenderAblation formats any ablation sweep.
func RenderAblation(title string, rows []AblationRow) string {
	t := report.NewTable(title,
		"Config", "Strategy", "Rel. time", "CPU MR", "Inval MR", "FS MR", "Upd MR", "Inval share", "Bus util")
	for _, r := range rows {
		t.AddRow(r.Label, r.Strategy.String(),
			fmt.Sprintf("%.3f", r.RelTime), fmt.Sprintf("%.4f", r.CPUMR),
			fmt.Sprintf("%.4f", r.InvalMR), fmt.Sprintf("%.4f", r.FSMR),
			fmt.Sprintf("%.4f", r.UpdMR),
			fmt.Sprintf("%.0f%%", 100*r.InvalShare), fmt.Sprintf("%.2f", r.BusUtil))
	}
	return t.String()
}

// AblationDistance sweeps the prefetch distance under PREF (the §4.3
// study): short distances leave prefetches in progress, long ones trade
// them for conflict misses, and "increasing the prefetch distance to the
// point that virtually all prefetches complete does not pay off".
func (s *Suite) AblationDistance(ctx context.Context, wl string, distances []int) ([]AblationRow, error) {
	if len(distances) == 0 {
		distances = []int{25, 50, 100, 200, 400, 800}
	}
	cfg := sim.DefaultConfig()
	// Baseline: NP at the same architecture (the sweep's first variant).
	variants := []variantRun{{label: "NP", workload: wl, strat: prefetch.NP, cfg: cfg}}
	for _, d := range distances {
		d := d
		variants = append(variants, variantRun{
			label: fmt.Sprintf("dist %d", d), workload: wl, strat: prefetch.PREF, cfg: cfg,
			annotate: func(o prefetch.Options) prefetch.Options {
				o.Distance = d
				return o
			}})
	}
	return s.sweepRows(ctx, "distance", variants)
}

// AblationMemLatency sweeps the total memory latency under NP and PREF. The
// paper's premise: "prefetching is less useful and possibly harmful if
// there is little latency to hide" — at low latency the gains collapse.
func (s *Suite) AblationMemLatency(ctx context.Context, wl string, latencies []int) ([]AblationRow, error) {
	if len(latencies) == 0 {
		latencies = []int{25, 50, 100, 200}
	}
	var variants []variantRun
	for _, lat := range latencies {
		cfg := sim.DefaultConfig()
		cfg.MemLatency = lat
		if cfg.TransferCycles > lat {
			cfg.TransferCycles = lat
		}
		label := fmt.Sprintf("latency %d", lat)
		variants = append(variants,
			variantRun{label: label, workload: wl, strat: prefetch.NP, cfg: cfg},
			variantRun{label: label, workload: wl, strat: prefetch.PREF, cfg: cfg})
	}
	results, err := s.runVariants(ctx, "mem-latency", variants)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for i := 0; i < len(results); i += 2 {
		np, pf := results[i], results[i+1]
		// RelTime here is PREF relative to NP at the same latency.
		rows = append(rows, ablationRow(variants[i].label, prefetch.PREF, pf, np.Cycles))
	}
	return rows, nil
}
