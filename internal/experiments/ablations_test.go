package experiments

import (
	"context"
	"strings"
	"testing"
)

func ablSuite() *Suite { return NewSuite(Config{Scale: 0.15, Seed: 1}) }

func TestAblationCacheSize(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := ablSuite().AblationCacheSize(context.Background(), "mp3d", []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper: larger caches reduce non-sharing misses, so invalidation
	// misses become MORE dominant.
	if rows[1].InvalShare <= rows[0].InvalShare {
		t.Errorf("invalidation share fell with cache size: %.2f -> %.2f",
			rows[0].InvalShare, rows[1].InvalShare)
	}
	if rows[1].CPUMR >= rows[0].CPUMR {
		t.Errorf("CPU miss rate rose with cache size: %.4f -> %.4f", rows[0].CPUMR, rows[1].CPUMR)
	}
}

func TestAblationLineSize(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := ablSuite().AblationLineSize(context.Background(), "mp3d", []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	// The paper: larger block sizes increase false sharing.
	if rows[1].FSMR <= rows[0].FSMR {
		t.Errorf("false sharing fell with line size: %.4f -> %.4f", rows[0].FSMR, rows[1].FSMR)
	}
}

func TestAblationAssociativity(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := ablSuite().AblationAssociativity(context.Background(), "topopt")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	dm := rows[0]
	// Both the victim cache and associativity must cut Topopt's conflict
	// misses (paper §4.3): CPU miss rate strictly below direct-mapped.
	for _, r := range rows[1:] {
		if r.CPUMR >= dm.CPUMR {
			t.Errorf("%s: CPU MR %.4f not below direct-mapped %.4f", r.Label, r.CPUMR, dm.CPUMR)
		}
		if r.RelTime >= 1.0 {
			t.Errorf("%s: no speedup over direct-mapped (%.3f)", r.Label, r.RelTime)
		}
	}
}

func TestAblationProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := ablSuite().AblationProtocol(context.Background(), "mp3d", []int{8})
	if err != nil {
		t.Fatal(err)
	}
	// 3 protocols x 3 strategies at one transfer cost.
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	find := func(label, strat string) AblationRow {
		for _, r := range rows {
			if r.Label == label && r.Strategy.String() == strat {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", label, strat)
		return AblationRow{}
	}
	illinoisNP := find("Illinois/t8", "NP")
	msiNP := find("MSI/t8", "NP")
	dragonNP := find("Dragon/t8", "NP")
	// MSI pays an invalidation bus operation for every first write to a
	// line; Illinois's private-clean state avoids it. Mp3d rereads and
	// rewrites its own (mostly single-owner) particle lines every step, so
	// MSI must demand visibly more of the bus or run longer.
	if msiNP.BusUtil <= illinoisNP.BusUtil && msiNP.RelTime <= illinoisNP.RelTime {
		t.Errorf("MSI (bus %.3f, time %.3f) not costlier than Illinois (bus %.3f, time %.3f)",
			msiNP.BusUtil, msiNP.RelTime, illinoisNP.BusUtil, illinoisNP.RelTime)
	}
	for _, r := range rows {
		if strings.HasPrefix(r.Label, "Dragon") {
			// A write-update protocol never invalidates, so invalidation
			// misses (false sharing included) cannot exist...
			if r.InvalMR != 0 || r.FSMR != 0 {
				t.Errorf("Dragon %s: invalidation misses survive (inval %.4f, fs %.4f)",
					r.Strategy, r.InvalMR, r.FSMR)
			}
			// ...but writes to shared lines pay in update broadcasts.
			if r.UpdMR == 0 {
				t.Errorf("Dragon %s: no update traffic on a sharing workload", r.Strategy)
			}
		} else if r.UpdMR != 0 {
			t.Errorf("%s %s: update traffic under a write-invalidate protocol (%.4f)",
				r.Label, r.Strategy, r.UpdMR)
		}
	}
	// The paper's trade made quantitative: Dragon removes the invalidation
	// misses prefetching cannot cover, but its sustained update broadcasts
	// must cost more total bus occupancy than Illinois pays under NP.
	// occupancy = BusUtil * Cycles, and RelTime is Cycles over the shared
	// baseline, so BusUtil*RelTime compares occupancies directly.
	if d, i := dragonNP.BusUtil*dragonNP.RelTime, illinoisNP.BusUtil*illinoisNP.RelTime; d <= i {
		t.Errorf("Dragon NP bus occupancy (%.3f) does not exceed Illinois (%.3f)", d, i)
	}
}

func TestAblationPrefetchPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := ablSuite().AblationPrefetchPlacement(context.Background(), "mp3d")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	np, cachePf, bufPf := rows[0], rows[1], rows[2]
	// Cache prefetching must beat the non-snooping buffer on a workload
	// dominated by shared data — the paper's §3.1 argument.
	if cachePf.RelTime >= np.RelTime {
		t.Errorf("cache prefetching did not help: %.3f", cachePf.RelTime)
	}
	if bufPf.RelTime <= cachePf.RelTime {
		t.Errorf("buffer prefetching (%.3f) beat cache prefetching (%.3f) on shared-heavy mp3d",
			bufPf.RelTime, cachePf.RelTime)
	}
}

func TestRenderAblation(t *testing.T) {
	rows := []AblationRow{{Label: "x", RelTime: 1, CPUMR: 0.01}}
	out := RenderAblation("Ablation: test", rows)
	if !strings.Contains(out, "Ablation: test") || !strings.Contains(out, "0.0100") {
		t.Errorf("render:\n%s", out)
	}
}

func TestAblationDistance(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := ablSuite().AblationDistance(context.Background(), "mp3d", []int{25, 100, 800})
	if err != nil {
		t.Fatal(err)
	}
	// rows[0] is NP; distances follow. The paper: stretching the distance
	// until all prefetches complete does not pay off — dist 800 must not
	// beat dist 100 meaningfully.
	d100, d800 := rows[2], rows[3]
	if d800.RelTime < d100.RelTime-0.02 {
		t.Errorf("dist 800 (%.3f) clearly beat dist 100 (%.3f) — the paper's §4.3 result inverted",
			d800.RelTime, d100.RelTime)
	}
	// And every PREF variant should beat NP at this (8-cycle) architecture.
	for _, r := range rows[1:] {
		if r.RelTime >= 1.05 {
			t.Errorf("%s: rel time %.3f far above NP", r.Label, r.RelTime)
		}
	}
}

func TestAblationMemLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := ablSuite().AblationMemLatency(context.Background(), "mp3d", []int{25, 200})
	if err != nil {
		t.Fatal(err)
	}
	// With little latency to hide, prefetching gains collapse: the
	// improvement at latency 25 must be smaller than at latency 200.
	gain25 := 1 - rows[0].RelTime
	gain200 := 1 - rows[1].RelTime
	if gain25 >= gain200 {
		t.Errorf("prefetching gained more at low latency (%.3f) than high (%.3f)", gain25, gain200)
	}
}
