package experiments

import (
	"encoding/json"
	"fmt"

	"busprefetch/internal/buildinfo"
	"busprefetch/internal/bus"
	"busprefetch/internal/obs"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/sim"
)

// Checkpointing persists completed sweep cells through Config.Checkpoints so
// an interrupted sweep (Ctrl-C, a crash, kill -9) resumes with only the
// missing cells recomputed. Keys are canonical spec strings — every field
// that determines a cell's result, plus the build revision — so any
// configuration or code change misses cleanly instead of resurrecting stale
// data. Payloads are all-integer JSON snapshots: integers round-trip JSON
// exactly, so a resumed sweep renders byte-identical reports.
//
// Only successful results are checkpointed; errors always re-run. Ablation
// sweeps are not checkpointed — they are small deterministic re-runs with
// within-sweep baselines, cheap to recompute relative to the grid.

// cellSnapshot is the persisted form of one grid cell's sim.Result. Every
// field is integral (uint64s, arrays and maps of uint64s), so the JSON
// round-trip is exact and a resumed render is byte-identical to the original.
type cellSnapshot struct {
	Cycles       uint64
	Counters     sim.Counters
	Bus          bus.Stats
	Links        []bus.Stats `json:",omitempty"`
	Procs        []sim.ProcStats
	RegionMisses map[string]sim.RegionMisses `json:",omitempty"`
}

// obsSnapshot is the persisted form of one observability cell. obs.Summary is
// all-integer by design (fixed histogram bucket counts, not floats), so it
// shares the exactness guarantee.
type obsSnapshot struct {
	Summary           *obs.Summary
	AdjustedCPUMisses uint64
}

// onlineSnapshot is the persisted form of one online-vs-oracle cell. Every
// field is integral (counters, histogram buckets, engine tallies), so it
// shares the exactness guarantee.
type onlineSnapshot struct {
	Cycles   uint64
	NPCycles uint64
	Counters sim.Counters
	Summary  *obs.Summary
	Stats    *prefetch.EngineStats `json:",omitempty"`
}

// checkpointsEnabled reports whether the suite may consult the checkpoint
// store. A PerRun hook can silently change what a cell computes, so with one
// installed the store is only trusted when the caller segregated the
// namespace with a Salt that names the variation.
func (s *Suite) checkpointsEnabled() bool {
	return s.cfg.Checkpoints != nil && (s.cfg.PerRun == nil || s.cfg.Salt != "")
}

// SpecString returns the canonical suite-configuration spec: every
// Config field that is invariant across a sweep's cells, plus the build
// revision, in the exact form the checkpoint keys embed. The experiment
// server keys its content-addressed result store on it (plus the per-request
// fields a cell key ignores — the transfer sweep and the section list), so
// two sweeps that agree on the spec share one computation and any code or
// configuration change misses cleanly instead of resurrecting stale reports.
func (c Config) SpecString() string {
	c = c.withDefaults()
	return fmt.Sprintf("build=%s|salt=%s|scale=%g|seed=%d|mem=%d|proto=%s|pf=%s|ic=%s",
		buildinfo.Revision(), c.Salt, c.Scale, c.Seed, c.MemLatency, c.Protocol, c.Prefetcher, c.Interconnect.String())
}

// specPrefix is the suite-wide portion of every checkpoint key.
func (s *Suite) specPrefix(kind string) string {
	return kind + "|" + s.cfg.SpecString()
}

// cellKey is the canonical spec string for one grid cell.
func (s *Suite) cellKey(k Key) string {
	return fmt.Sprintf("%s|wl=%s|strat=%s|t=%d|restr=%t",
		s.specPrefix("busprefetch-cell/v1"), k.Workload, k.Strategy, k.Transfer, k.Restructured)
}

// obsKey is the canonical spec string for one observability cell.
func (s *Suite) obsKey(c *ObsCell) string {
	return fmt.Sprintf("%s|wl=%s|strat=%s|t=%d",
		s.specPrefix("busprefetch-obs/v1"), c.Workload, c.Strategy, c.Transfer)
}

// onlineKey is the canonical spec string for one online-vs-oracle cell.
func (s *Suite) onlineKey(c *OnlineCell) string {
	return fmt.Sprintf("%s|wl=%s|engine=%s|t=%d",
		s.specPrefix("busprefetch-online/v1"), c.Workload, c.Engine, c.Transfer)
}

// icKey is the canonical spec string for one interconnect cell. The cell's own
// topology spec is embedded — the sweep's cells deliberately ignore the
// suite-level Interconnect, each simulating its own fabric.
func (s *Suite) icKey(c *InterconnectCell) string {
	return fmt.Sprintf("%s|wl=%s|topo=%s|strat=%s|t=%d",
		s.specPrefix("busprefetch-ic/v1"), c.Workload, c.IC.String(), c.Strategy, c.Transfer)
}

// loadCellCheckpoint returns the persisted result for k, if the store holds a
// valid one. The Result's Config is rebuilt the way simulate builds it (sans
// PerRun — checkpointing under PerRun requires a Salt, and the Config field
// is diagnostic, not measured).
func (s *Suite) loadCellCheckpoint(k Key) (*sim.Result, bool) {
	if !s.checkpointsEnabled() {
		return nil, false
	}
	payload, ok, err := s.cfg.Checkpoints.Get(s.cellKey(k))
	if err != nil || !ok {
		return nil, false
	}
	var snap cellSnapshot
	if json.Unmarshal(payload, &snap) != nil {
		return nil, false
	}
	cfg := sim.DefaultConfig()
	cfg.Label = k.String()
	cfg.MemLatency = s.cfg.MemLatency
	cfg.TransferCycles = k.Transfer
	cfg.Protocol = s.cfg.Protocol
	cfg.Interconnect = s.cfg.Interconnect
	return &sim.Result{
		Config:       cfg,
		Cycles:       snap.Cycles,
		Counters:     snap.Counters,
		Bus:          snap.Bus,
		Links:        snap.Links,
		Procs:        snap.Procs,
		RegionMisses: snap.RegionMisses,
	}, true
}

// storeCellCheckpoint persists a completed cell. Best-effort: a full or
// read-only checkpoint volume must not fail the sweep, so errors are dropped
// (the cell simply re-runs on resume) and surface only through
// CheckpointStore.Stats.
func (s *Suite) storeCellCheckpoint(k Key, res *sim.Result) {
	if !s.checkpointsEnabled() {
		return
	}
	payload, err := json.Marshal(cellSnapshot{
		Cycles:       res.Cycles,
		Counters:     res.Counters,
		Bus:          res.Bus,
		Links:        res.Links,
		Procs:        res.Procs,
		RegionMisses: res.RegionMisses,
	})
	if err != nil {
		return
	}
	_ = s.cfg.Checkpoints.Put(s.cellKey(k), payload)
}

// loadObsCheckpoint fills c from a persisted observability cell, if any.
func (s *Suite) loadObsCheckpoint(c *ObsCell) bool {
	if !s.checkpointsEnabled() {
		return false
	}
	payload, ok, err := s.cfg.Checkpoints.Get(s.obsKey(c))
	if err != nil || !ok {
		return false
	}
	var snap obsSnapshot
	if json.Unmarshal(payload, &snap) != nil || snap.Summary == nil {
		return false
	}
	c.Summary = snap.Summary
	c.AdjustedCPUMisses = snap.AdjustedCPUMisses
	return true
}

// storeObsCheckpoint persists a completed observability cell, best-effort.
func (s *Suite) storeObsCheckpoint(c *ObsCell) {
	if !s.checkpointsEnabled() {
		return
	}
	payload, err := json.Marshal(obsSnapshot{Summary: c.Summary, AdjustedCPUMisses: c.AdjustedCPUMisses})
	if err != nil {
		return
	}
	_ = s.cfg.Checkpoints.Put(s.obsKey(c), payload)
}

// loadOnlineCheckpoint fills c from a persisted online cell, if any.
func (s *Suite) loadOnlineCheckpoint(c *OnlineCell) bool {
	if !s.checkpointsEnabled() {
		return false
	}
	payload, ok, err := s.cfg.Checkpoints.Get(s.onlineKey(c))
	if err != nil || !ok {
		return false
	}
	var snap onlineSnapshot
	if json.Unmarshal(payload, &snap) != nil || snap.Summary == nil {
		return false
	}
	c.Cycles, c.NPCycles = snap.Cycles, snap.NPCycles
	c.Counters = snap.Counters
	c.Summary = snap.Summary
	c.Stats = snap.Stats
	return true
}

// icSnapshot is the persisted form of one interconnect cell. Every field is
// integral, so it shares the exactness guarantee.
type icSnapshot struct {
	Cycles   uint64
	Counters sim.Counters
	Bus      bus.Stats
	Links    []bus.Stats `json:",omitempty"`
}

// loadICCheckpoint fills c from a persisted interconnect cell, if any.
func (s *Suite) loadICCheckpoint(c *InterconnectCell) bool {
	if !s.checkpointsEnabled() {
		return false
	}
	payload, ok, err := s.cfg.Checkpoints.Get(s.icKey(c))
	if err != nil || !ok {
		return false
	}
	var snap icSnapshot
	if json.Unmarshal(payload, &snap) != nil || snap.Cycles == 0 {
		return false
	}
	c.Cycles = snap.Cycles
	c.Counters = snap.Counters
	c.Bus = snap.Bus
	c.Links = snap.Links
	return true
}

// storeICCheckpoint persists a completed interconnect cell, best-effort.
func (s *Suite) storeICCheckpoint(c *InterconnectCell) {
	if !s.checkpointsEnabled() {
		return
	}
	payload, err := json.Marshal(icSnapshot{
		Cycles:   c.Cycles,
		Counters: c.Counters,
		Bus:      c.Bus,
		Links:    c.Links,
	})
	if err != nil {
		return
	}
	_ = s.cfg.Checkpoints.Put(s.icKey(c), payload)
}

// storeOnlineCheckpoint persists a completed online cell, best-effort.
func (s *Suite) storeOnlineCheckpoint(c *OnlineCell) {
	if !s.checkpointsEnabled() {
		return
	}
	payload, err := json.Marshal(onlineSnapshot{
		Cycles:   c.Cycles,
		NPCycles: c.NPCycles,
		Counters: c.Counters,
		Summary:  c.Summary,
		Stats:    c.Stats,
	})
	if err != nil {
		return
	}
	_ = s.cfg.Checkpoints.Put(s.onlineKey(c), payload)
}
