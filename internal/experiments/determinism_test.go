package experiments

import (
	"context"
	"testing"
)

// The differential determinism contract: the rendered report is a pure
// function of (scale, seed) — worker count must not change a byte, and the
// seed must actually matter.

// renderAt runs a reduced suite at the given parallelism and returns the
// rendered T=8 sections.
func renderAt(t *testing.T, jobs int, seed int64) string {
	t.Helper()
	s := NewSuite(Config{Scale: 0.05, Seed: seed, Transfers: []int{8}, Parallelism: jobs})
	if err := s.Prewarm(context.Background(), t8Keys(s), nil); err != nil {
		t.Fatal(err)
	}
	out, err := s.RenderSections(context.Background(), t8Sections)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRenderDeterministicAcrossWorkerCounts runs the same reduced suite with
// 1 worker and with 8, and demands byte-identical tables. This is the
// acceptance bar for the parallel engine: sharding is invisible in the
// output.
func TestRenderDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := renderAt(t, 1, 1)
	parallel := renderAt(t, 8, 1)
	if serial != parallel {
		t.Errorf("-jobs=1 and -jobs=8 rendered different reports:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", serial, parallel)
	}
	if len(serial) == 0 {
		t.Fatal("rendered report is empty")
	}
}

// TestRenderRepeatable: the same configuration twice in one process renders
// identically (no hidden global state, map-iteration order, or timing leaks
// into the report).
func TestRenderRepeatable(t *testing.T) {
	a := renderAt(t, 4, 1)
	b := renderAt(t, 4, 1)
	if a != b {
		t.Error("two runs of the identical configuration rendered different reports")
	}
}

// TestSeedSensitivity guards against the opposite failure: a determinism
// mechanism so aggressive it ignores the seed. Different seeds must change
// the workload traces and therefore the measured numbers.
func TestSeedSensitivity(t *testing.T) {
	seed1 := renderAt(t, 4, 1)
	seed2 := renderAt(t, 4, 2)
	if seed1 == seed2 {
		t.Error("seeds 1 and 2 rendered identical reports; the seed is being dropped somewhere")
	}
}
