// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): workload characteristics (Table 1), miss rates under the
// five prefetching strategies (Figure 1), bus utilizations (Table 2),
// relative execution times across the memory-architecture sweep (Figure 2),
// processor utilizations (§4.2), the CPU-miss component breakdown (Figure 3),
// invalidation and false-sharing rates (Table 3), and the restructured-
// program results (Tables 4 and 5).
//
// A Suite memoizes simulation results so experiments that share runs (for
// example Figure 1, Table 2 and Figure 2 all need the strategy x transfer
// grid) simulate each configuration once. Runs are independent and execute
// in parallel across CPUs; results are deterministic regardless of
// parallelism.
package experiments
