package experiments

import (
	"context"
	"strings"
	"testing"

	"busprefetch/internal/prefetch"
)

// testSuite returns a suite small enough for CI but large enough for the
// paper's qualitative shapes to hold.
func testSuite() *Suite {
	return NewSuite(Config{Scale: 0.15, Seed: 1, Transfers: []int{4, 8, 16, 32}})
}

func TestSuiteMemoizes(t *testing.T) {
	s := testSuite()
	k := Key{Workload: "water", Strategy: prefetch.NP, Transfer: 8}
	a, err := s.Result(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Result(k)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Result call did not return the memoized pointer")
	}
}

func TestPrewarmParallel(t *testing.T) {
	s := testSuite()
	keys := []Key{
		{Workload: "water", Strategy: prefetch.NP, Transfer: 4},
		{Workload: "water", Strategy: prefetch.PREF, Transfer: 4},
		{Workload: "water", Strategy: prefetch.NP, Transfer: 4}, // duplicate
	}
	var calls int
	if err := s.Prewarm(context.Background(), keys, func(done, total int) {
		calls++
		if total != 2 {
			t.Errorf("total = %d, want 2 after dedup", total)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("progress calls = %d", calls)
	}
}

func TestTable1(t *testing.T) {
	s := testSuite()
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DataSetKB <= 0 || r.SharedKB <= 0 || r.Processes < 2 || r.RefsPerProc <= 0 {
			t.Errorf("implausible row %+v", r)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "mp3d") || !strings.Contains(out, "Processes") {
		t.Errorf("render missing content:\n%s", out)
	}
}

// TestPaperShapes is the central integration test: one reduced-scale run of
// the whole grid, asserting the qualitative results the paper reports.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	s := testSuite()
	if err := s.Prewarm(context.Background(), s.GridKeys(), nil); err != nil {
		t.Fatal(err)
	}

	get := func(wl string, st prefetch.Strategy, tr int) *resultProxy {
		res, err := s.Result(Key{Workload: wl, Strategy: st, Transfer: tr})
		if err != nil {
			t.Fatal(err)
		}
		return &resultProxy{res.TotalMissRate(), res.CPUMissRate(), res.AdjustedCPUMissRate(),
			res.BusUtilization(), res.Cycles}
	}

	for _, wl := range WorkloadNames() {
		np4, pref4 := get(wl, prefetch.NP, 4), get(wl, prefetch.PREF, 4)

		// Figure 1: prefetching lowers the CPU miss rate...
		if pref4.cpuMR >= np4.cpuMR {
			t.Errorf("%s: PREF did not lower the CPU miss rate (%.4f -> %.4f)", wl, np4.cpuMR, pref4.cpuMR)
		}
		// ...and the adjusted CPU miss rate falls even further.
		if pref4.adjMR > pref4.cpuMR {
			t.Errorf("%s: adjusted MR above CPU MR", wl)
		}
		// Table 2: bus demand rises with prefetching at every latency.
		for _, tr := range []int{4, 8, 16, 32} {
			np, pf := get(wl, prefetch.NP, tr), get(wl, prefetch.PREF, tr)
			if pf.busUtil+0.005 < np.busUtil {
				t.Errorf("%s T=%d: PREF lowered bus utilization (%.3f -> %.3f)", wl, tr, np.busUtil, pf.busUtil)
			}
		}
		// Figure 2: whatever benefit prefetching has at the fast bus, it
		// shrinks (or becomes a degradation) at the saturated bus.
		gain4 := float64(get(wl, prefetch.NP, 4).cycles) / float64(get(wl, prefetch.PREF, 4).cycles)
		gain32 := float64(get(wl, prefetch.NP, 32).cycles) / float64(get(wl, prefetch.PREF, 32).cycles)
		if gain32 > gain4+0.02 {
			t.Errorf("%s: prefetching gained MORE at saturation (%.3f) than at the fast bus (%.3f)", wl, gain32, gain4)
		}
		// Bus utilization grows monotonically-ish with transfer latency.
		if get(wl, prefetch.NP, 32).busUtil+0.02 < get(wl, prefetch.NP, 4).busUtil {
			t.Errorf("%s: bus utilization fell from T=4 to T=32", wl)
		}
	}

	// PWS covers invalidation misses PREF cannot (the paper's §4.4).
	for _, wl := range []string{"pverify", "mp3d"} {
		pref, err := s.Result(Key{Workload: wl, Strategy: prefetch.PREF, Transfer: 4})
		if err != nil {
			t.Fatal(err)
		}
		pws, err := s.Result(Key{Workload: wl, Strategy: prefetch.PWS, Transfer: 4})
		if err != nil {
			t.Fatal(err)
		}
		if pws.AdjustedCPUMissRate() >= pref.AdjustedCPUMissRate() {
			t.Errorf("%s: PWS adjusted MR %.4f not below PREF %.4f",
				wl, pws.AdjustedCPUMissRate(), pref.AdjustedCPUMissRate())
		}
		if pws.Counters.PrefetchesIssued <= pref.Counters.PrefetchesIssued {
			t.Errorf("%s: PWS issued no extra prefetches", wl)
		}
	}
}

type resultProxy struct {
	totalMR, cpuMR, adjMR, busUtil float64
	cycles                         uint64
}

// TestRestructuringShapes verifies Tables 4-5 qualitatively: restructuring
// slashes false sharing and closes the PREF-vs-PWS gap.
func TestRestructuringShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("restructuring grid in -short mode")
	}
	s := NewSuite(Config{Scale: 0.15, Seed: 1, Transfers: []int{8}})
	for _, wl := range []string{"topopt", "pverify"} {
		orig, err := s.Result(Key{Workload: wl, Strategy: prefetch.NP, Transfer: 8})
		if err != nil {
			t.Fatal(err)
		}
		restr, err := s.Result(Key{Workload: wl, Strategy: prefetch.NP, Transfer: 8, Restructured: true})
		if err != nil {
			t.Fatal(err)
		}
		if restr.FalseSharingMissRate() > orig.FalseSharingMissRate()/2 {
			t.Errorf("%s: restructuring left FS at %.4f (was %.4f)",
				wl, restr.FalseSharingMissRate(), orig.FalseSharingMissRate())
		}
		if restr.CPUMissRate() >= orig.CPUMissRate() {
			t.Errorf("%s: restructuring did not lower the miss rate", wl)
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	s := NewSuite(Config{Scale: 0.1, Seed: 1, Transfers: []int{8}})
	t3, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderTable3(t3); !strings.Contains(out, "Invalidation") {
		t.Errorf("Table 3 render:\n%s", out)
	}
	u, err := s.Utilization()
	if err == nil {
		_ = RenderUtilization(u)
	} else {
		// Utilization needs T=4 and T=32; this config only has T=8, so an
		// error is acceptable here... but it should not panic.
		t.Logf("utilization on reduced sweep: %v", err)
	}
}
