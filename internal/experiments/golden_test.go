package experiments

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"busprefetch/internal/prefetch"
)

// The golden-result regression harness: the scale-1, seed-1 suite — the
// configuration behind results_scale1.txt and EXPERIMENTS.md — must
// reproduce the committed goldens byte for byte. Any change to trace
// generation, annotation, the simulator, or the renderers that shifts a
// single digit fails here, which is the point: paper-fidelity numbers only
// change deliberately, together with a golden update.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/experiments -run TestGolden -update
//	BUSPREFETCH_GOLDEN_FULL=1 go test ./internal/experiments -run TestGolden -update -timeout 30m
var update = flag.Bool("update", false, "rewrite golden files from the current output")

// goldenCompare asserts got matches the named golden file (or rewrites it
// under -update). got is compared with a trailing newline so the files are
// exactly what `mkfigures` prints to stdout.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	full := got + "\n"
	if *update {
		if err := os.WriteFile(path, []byte(full), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(full))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if full == string(want) {
		return
	}
	// Pinpoint the first divergent line so a failure reads as a diff, not a
	// wall of text.
	gotLines, wantLines := strings.Split(full, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("output diverges from %s at line %d:\n  golden: %q\n  got:    %q",
				path, i+1, wantLines[i], gotLines[i])
		}
	}
	t.Fatalf("output length differs from %s: %d lines vs %d golden lines",
		path, len(gotLines), len(wantLines))
}

// t8Sections are the report sections that need only the 8-cycle transfer
// column of the grid — 25 cells instead of 155, cheap enough to assert on
// every full test run.
func t8Sections(name string) bool {
	switch name {
	case "table1", "fig1", "fig3", "table3":
		return true
	}
	return false
}

// t8Keys returns the scale-1 grid restricted to the 8-cycle transfer.
func t8Keys(s *Suite) []Key {
	var keys []Key
	for _, wl := range WorkloadNames() {
		for _, st := range prefetch.Strategies() {
			keys = append(keys, Key{Workload: wl, Strategy: st, Transfer: 8})
		}
	}
	return keys
}

// TestGoldenScale1T8Slice asserts the paper-fidelity (scale 1, seed 1)
// results for every section that reads the T=8 grid: Table 1, Figure 1,
// Figure 3 and Table 3.
func TestGoldenScale1T8Slice(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-1 suite slice in -short mode")
	}
	s := NewSuite(Config{Scale: 1, Seed: 1})
	if err := s.Prewarm(context.Background(), t8Keys(s), nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.RenderSections(context.Background(), t8Sections)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_scale1_t8.txt", got)
}

// TestGoldenProtocolT8Slice asserts the three-way coherence-protocol
// ablation (Illinois / MSI / Dragon under NP, PREF, EXCL on mp3d) at the
// paper-fidelity scale, restricted to the 8-cycle transfer so it stays cheap
// enough for every full test run. The 32-cycle half of the default sweep is
// covered by the full golden.
func TestGoldenProtocolT8Slice(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-1 protocol ablation in -short mode")
	}
	s := NewSuite(Config{Scale: 1, Seed: 1})
	rows, err := s.AblationProtocol(context.Background(), "mp3d", []int{8})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_protocol_t8.txt", RenderAblation("Ablation: coherence protocols (mp3d, T=8)", rows))
}

// TestGoldenScale1Full asserts the entire default report — every table,
// figure and ablation at scale 1 — against the committed golden. The full
// grid takes minutes of CPU, so the test only runs when asked for:
//
//	BUSPREFETCH_GOLDEN_FULL=1 go test ./internal/experiments -run TestGoldenScale1Full -timeout 30m
func TestGoldenScale1Full(t *testing.T) {
	if os.Getenv("BUSPREFETCH_GOLDEN_FULL") == "" {
		t.Skip("set BUSPREFETCH_GOLDEN_FULL=1 to run the full scale-1 golden (several CPU-minutes)")
	}
	s := NewSuite(Config{Scale: 1, Seed: 1})
	all := func(string) bool { return true }
	if err := s.Prewarm(context.Background(), s.KeysFor(all), nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.RenderSections(context.Background(), all)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_scale1_full.txt", got)
}
