package experiments

import (
	"context"
	"fmt"

	"busprefetch/internal/bus"
	"busprefetch/internal/interconnect"
	"busprefetch/internal/memory"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/report"
	"busprefetch/internal/runner"
	"busprefetch/internal/sim"
)

// The interconnect section turns the paper's conclusion into a dial. The
// paper shows prefetching barely helps (and at T=32 actively hurts) because
// the single bus, not the miss latency, is the bottleneck — so the natural
// follow-up is: how much interconnect bandwidth does it take before the
// prefetches stop fighting the demand traffic and start winning? The sweep
// re-runs the paper's bus-bound headline workload (mp3d) under NP and PREF
// on a ladder of fabrics in ascending-bandwidth order — the paper's priority
// bus, the same bus under FCFS arbitration, dual and quad address-interleaved
// buses, and a directory/point-to-point endpoint — at the cheap (T=8) and
// saturated (T=32) transfer costs. Each topology carries its own in-sweep NP
// baseline, so the relative time column answers the question directly: the
// first rung of the ladder where PREF's ratio drops below 1 is the bandwidth
// at which prefetching flips from harmful to helpful.

// InterconnectVariant pairs a fabric configuration with its display label.
type InterconnectVariant struct {
	Label string
	Cfg   interconnect.Config
}

// InterconnectVariants lists the swept fabrics in ascending-bandwidth order.
// The order is load-bearing: RenderInterconnect reports the first variant
// whose PREF/NP ratio drops below 1 as the flip point.
func InterconnectVariants() []InterconnectVariant {
	return []InterconnectVariant{
		{"bus", interconnect.Config{}},
		{"bus/fcfs", interconnect.Config{Discipline: bus.FCFS}},
		{"dual", interconnect.Config{Kind: interconnect.MultiBus, Links: 2}},
		{"quad", interconnect.Config{Kind: interconnect.MultiBus, Links: 4}},
		{"directory", interconnect.Config{Kind: interconnect.Directory}},
	}
}

// InterconnectTransfers lists the data-transfer costs the interconnect
// section sweeps: the paper's headline T=8 point and the bus-saturated T=32
// extreme, where the limitation argument is sharpest.
func InterconnectTransfers() []int { return []int{8, 32} }

// interconnectWorkload is the section's fixed workload: mp3d, the paper's
// most bus-bound program and the one where prefetching hurts the most.
const interconnectWorkload = "mp3d"

// InterconnectCell is one cell of the interconnect sweep: a (topology,
// strategy, transfer) triple's execution time and fabric occupancy on the
// sweep's fixed workload.
type InterconnectCell struct {
	Workload string
	// Topology is the variant's display label; IC is its configuration
	// (embedded in the checkpoint key, so relabeling is free but retuning a
	// fabric re-runs its cells).
	Topology string
	IC       interconnect.Config
	Strategy prefetch.Strategy
	Transfer int
	// Cycles is the cell's parallel execution time.
	Cycles uint64
	// Counters is the run's full counter block.
	Counters sim.Counters
	// Bus aggregates occupancy across the fabric's links; Links holds the
	// per-link split on multi-link fabrics (nil on a single bus).
	Bus   bus.Stats
	Links []bus.Stats
}

// Label returns the cell's label, "workload/topology/strategy/transfer".
func (c InterconnectCell) Label() string {
	return fmt.Sprintf("%s/%s/%s/%d", c.Workload, c.Topology, c.Strategy, c.Transfer)
}

// links returns the cell's link count (1 on a single bus).
func (c InterconnectCell) links() int {
	if len(c.Links) > 1 {
		return len(c.Links)
	}
	return 1
}

// Utilization returns the mean per-link fraction of cycles the fabric was
// occupied (the multi-link generalization of the paper's bus utilization).
func (c InterconnectCell) Utilization() float64 {
	if c.Cycles == 0 {
		return 0
	}
	u := float64(c.Bus.BusyCycles) / (float64(c.Cycles) * float64(c.links()))
	if u > 1 {
		u = 1 // rounding guard: a link can be busy through the final cycle
	}
	return u
}

// Interconnect runs the topology sweep — every InterconnectVariants fabric
// under NP and PREF at InterconnectTransfers (or the given transfers) on the
// sweep's fixed workload — on the suite's worker pool and returns cells in
// canonical (topology-major, then strategy, then transfer) order. Unlike the
// grid sections, the NP baselines are in-sweep: each topology normalizes
// PREF against its own NP run, so the relative time isolates what
// prefetching does *given* that fabric. The cells run under the suite's
// retry budget and per-cell timeout, resume from the checkpoint store when
// one is configured, and abort when ctx is cancelled. The suite-level
// Interconnect config is deliberately ignored — each cell simulates its own
// fabric.
func (s *Suite) Interconnect(ctx context.Context, transfers []int) ([]InterconnectCell, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(transfers) == 0 {
		transfers = InterconnectTransfers()
	}
	var cells []InterconnectCell
	for _, v := range InterconnectVariants() {
		for _, strat := range []prefetch.Strategy{prefetch.NP, prefetch.PREF} {
			for _, tr := range transfers {
				cells = append(cells, InterconnectCell{
					Workload: interconnectWorkload,
					Topology: v.Label,
					IC:       v.Cfg,
					Strategy: strat,
					Transfer: tr,
				})
			}
		}
	}
	tasks := make([]runner.Task, len(cells))
	for i := range cells {
		c := &cells[i]
		tasks[i] = runner.Task{
			Label: "ic:" + c.Label(),
			Run: func(ctx context.Context) error {
				if s.loadICCheckpoint(c) {
					return nil
				}
				err, _ := runner.Retry(ctx, s.retryPolicy("ic:"+c.Label()), func(ctx context.Context) error {
					return s.runICCell(ctx, c)
				})
				if err == nil {
					s.storeICCheckpoint(c)
				}
				return err
			},
		}
	}
	errs, times := s.pool.Do(ctx, tasks, nil)
	s.recordTimings(times)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cells[i].Label(), err)
		}
	}
	return cells, nil
}

// runICCell runs one interconnect cell attempt, filling c on success. The
// prefetch annotation is always the oracle's — the section isolates the
// fabric, so the prefetch decisions are held at the paper's baseline.
func (s *Suite) runICCell(ctx context.Context, c *InterconnectCell) error {
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	cfg := sim.DefaultConfig()
	cfg.Label = "ic:" + c.Label()
	cfg.MemLatency = s.cfg.MemLatency
	cfg.TransferCycles = c.Transfer
	cfg.Protocol = s.cfg.Protocol
	if s.cfg.PerRun != nil {
		s.cfg.PerRun(Key{Workload: c.Workload, Strategy: c.Strategy, Transfer: c.Transfer}, &cfg)
	}
	cfg.Interconnect = c.IC // after PerRun: the sweep's topology always wins
	res, err := s.runCell(ctx, cfg, c.Workload, false, memory.Geometry{}, prefetch.Oracle,
		prefetch.Options{Strategy: c.Strategy, Geometry: cfg.Geometry}, nil)
	if err != nil {
		return err
	}
	c.Cycles = res.Cycles
	c.Counters = res.Counters
	c.Bus = res.Bus
	c.Links = res.Links
	return nil
}

// icBaselines indexes the sweep's NP cycles by (topology, transfer).
func icBaselines(cells []InterconnectCell) map[[2]string]uint64 {
	np := make(map[[2]string]uint64)
	for _, c := range cells {
		if c.Strategy == prefetch.NP {
			np[[2]string{c.Topology, fmt.Sprint(c.Transfer)}] = c.Cycles
		}
	}
	return np
}

// RenderInterconnect formats the interconnect section: one row per cell with
// the relative execution time against the same topology's NP baseline, the
// mean per-link utilization, and the fabric's transaction count — followed
// by one finding line per transfer cost naming the first fabric (in the
// variants' ascending-bandwidth order) where PREF beats NP, i.e. the
// interconnect bandwidth at which prefetching flips from harmful to helpful.
func RenderInterconnect(cells []InterconnectCell) string {
	np := icBaselines(cells)
	t := report.NewTable(
		fmt.Sprintf("Interconnect bandwidth ladder (%s, oracle PREF vs NP per fabric)", interconnectWorkload),
		"Topology", "Links", "Strat", "T", "Cycles", "Rel.time", "Util", "Ops")
	for _, c := range cells {
		rel := "—"
		if base := np[[2]string{c.Topology, fmt.Sprint(c.Transfer)}]; base > 0 {
			rel = fmt.Sprintf("%.3f", float64(c.Cycles)/float64(base))
		}
		t.AddRow(c.Topology, fmt.Sprintf("%d", c.links()), c.Strategy.String(),
			fmt.Sprintf("%d", c.Transfer), fmt.Sprintf("%d", c.Cycles), rel,
			fmt.Sprintf("%.2f", c.Utilization()), fmt.Sprintf("%d", c.Bus.TotalOps()))
	}
	out := t.String()
	// One deterministic finding line per transfer cost, in the transfers'
	// first-seen order; the variants' order within cells is already the
	// bandwidth ladder.
	var transfers []int
	seen := map[int]bool{}
	for _, c := range cells {
		if !seen[c.Transfer] {
			seen[c.Transfer] = true
			transfers = append(transfers, c.Transfer)
		}
	}
	for _, tr := range transfers {
		first := func(threshold float64) (string, float64, bool) {
			for _, c := range cells {
				if c.Transfer != tr || c.Strategy != prefetch.PREF {
					continue
				}
				base := np[[2]string{c.Topology, fmt.Sprint(tr)}]
				if base == 0 {
					continue
				}
				if r := float64(c.Cycles) / float64(base); r < threshold {
					return c.Topology, r, true
				}
			}
			return "", 0, false
		}
		beats, beatsR, ok := first(1)
		if !ok {
			out += fmt.Sprintf("T=%d: prefetching never beats NP on this ladder\n", tr)
			continue
		}
		line := fmt.Sprintf("T=%d: prefetching first beats NP at %s (rel. time %.3f)", tr, beats, beatsR)
		if win, winR, ok := first(icClearWin); ok {
			line += fmt.Sprintf("; first clear win (<%.2f) at %s (rel. time %.3f)", icClearWin, win, winR)
		} else {
			line += fmt.Sprintf("; never a clear win (<%.2f) on this ladder", icClearWin)
		}
		out += line + "\n"
	}
	return out
}

// icClearWin is the relative-time threshold below which the finding lines
// call prefetching a clear win rather than a marginal one.
const icClearWin = 0.9
