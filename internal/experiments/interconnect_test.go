package experiments

import (
	"context"
	"strings"
	"testing"

	"busprefetch/internal/interconnect"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/runner"
)

// icRender runs the interconnect sweep on a reduced suite at the given
// parallelism and returns the rendered section.
func icRender(t *testing.T, jobs int) string {
	t.Helper()
	s := NewSuite(Config{Scale: 0.05, Seed: 1, Transfers: []int{8}, Parallelism: jobs})
	got, err := s.RenderSections(context.Background(), func(name string) bool { return name == "interconnect" })
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestInterconnectDeterministicAcrossWorkerCounts: every fabric is a
// deterministic event loop and the cells reduce in canonical order, so the
// rendered sweep must be byte-identical at -jobs 1 and -jobs 8.
func TestInterconnectDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := icRender(t, 1)
	parallel := icRender(t, 8)
	if serial != parallel {
		t.Errorf("interconnect section differs across worker counts:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "Interconnect bandwidth ladder") {
		t.Fatalf("section missing title:\n%s", serial)
	}
	if !strings.Contains(serial, "T=8: prefetching") {
		t.Fatalf("section missing the flip-point finding line:\n%s", serial)
	}
}

func TestInterconnectCells(t *testing.T) {
	s := NewSuite(Config{Scale: 0.05, Seed: 1, Transfers: []int{8}})
	cells, err := s.Interconnect(context.Background(), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(InterconnectVariants()) * 2; len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	// Canonical order: topology-major over InterconnectVariants × {NP, PREF}.
	if cells[0].Label() != "mp3d/bus/NP/8" || cells[len(cells)-1].Label() != "mp3d/directory/PREF/8" {
		t.Errorf("cells out of canonical order: first %s, last %s", cells[0].Label(), cells[len(cells)-1].Label())
	}
	for _, c := range cells {
		if c.Cycles == 0 {
			t.Fatalf("%s: missing cycle count", c.Label())
		}
		if c.Bus.TotalOps() == 0 {
			t.Errorf("%s: fabric carried no transactions", c.Label())
		}
		if got := len(c.Links); c.IC.Kind == interconnect.SingleBus && got != 0 {
			t.Errorf("%s: single bus reported %d per-link stats, want none", c.Label(), got)
		}
		if len(c.Links) > 0 {
			var busy uint64
			for _, l := range c.Links {
				busy += l.BusyCycles
			}
			if busy != c.Bus.BusyCycles {
				t.Errorf("%s: per-link busy cycles sum to %d, aggregate %d", c.Label(), busy, c.Bus.BusyCycles)
			}
		}
		if u := c.Utilization(); u <= 0 || u > 1 {
			t.Errorf("%s: utilization %f out of range", c.Label(), u)
		}
	}
	// The multi-link fabrics must report their per-link split.
	byTopo := map[string]int{}
	for _, c := range cells {
		byTopo[c.Topology] = len(c.Links)
	}
	if byTopo["dual"] != 2 || byTopo["quad"] != 4 {
		t.Errorf("multibus link stats: dual=%d quad=%d, want 2 and 4", byTopo["dual"], byTopo["quad"])
	}
	if byTopo["directory"] < 2 {
		t.Errorf("directory reported %d links, want one per processor", byTopo["directory"])
	}
}

// TestInterconnectCheckpointResume: interconnect cells resume from the store
// too — the second sweep restores every cell, recomputes nothing, and renders
// byte-identical output.
func TestInterconnectCheckpointResume(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	store1, err := runner.OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSuite(resumeConfig(store1))
	cells1, err := s1.Interconnect(ctx, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	// The sweep's NP baselines are in-sweep, so it checkpoints exactly its
	// own cells — no grid entries.
	if puts := store1.Stats().Puts; puts != uint64(len(cells1)) {
		t.Fatalf("first run checkpointed %d cells, want %d", puts, len(cells1))
	}

	store2, err := runner.OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSuite(resumeConfig(store2))
	cells2, err := s2.Interconnect(ctx, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	stats := store2.Stats()
	if stats.Hits != uint64(len(cells1)) || stats.Puts != 0 {
		t.Errorf("resume hits=%d puts=%d, want all %d cells restored and none recomputed",
			stats.Hits, stats.Puts, len(cells1))
	}
	if got, want := RenderInterconnect(cells2), RenderInterconnect(cells1); got != want {
		t.Error("restored interconnect cells render differently")
	}
}

// TestInterconnectSuiteConfigKeyed: a suite-level fabric override must not
// alias grid checkpoints across topologies — the spec prefix embeds the
// canonical fabric string.
func TestInterconnectSuiteConfigKeyed(t *testing.T) {
	base := NewSuite(Config{Scale: 0.1, Seed: 1, Transfers: []int{8}})
	multi := NewSuite(Config{Scale: 0.1, Seed: 1, Transfers: []int{8},
		Interconnect: InterconnectVariants()[2].Cfg})
	k := Key{Workload: "mp3d", Strategy: prefetch.NP, Transfer: 8}
	a, b := base.cellKey(k), multi.cellKey(k)
	if a == b {
		t.Fatalf("grid cell key ignores the suite fabric: %q", a)
	}
	if !strings.Contains(a, "|ic=bus|") && !strings.HasSuffix(a, "|ic=bus") {
		t.Errorf("default key %q does not pin the single bus", a)
	}
	if !strings.Contains(b, "ic=multibus:2") {
		t.Errorf("multibus key %q does not name the fabric", b)
	}
}

// TestGoldenInterconnectT8 pins the scale-1 interconnect ladder at the T=8
// point (the T=32 half is covered by the full golden), the way the other
// golden slices pin the paper tables.
func TestGoldenInterconnectT8(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-1 interconnect slice in -short mode")
	}
	s := NewSuite(Config{Scale: 1, Seed: 1})
	cells, err := s.Interconnect(context.Background(), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_interconnect_t8.txt", RenderInterconnect(cells))
}
