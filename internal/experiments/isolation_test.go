package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"busprefetch/internal/cache"
	"busprefetch/internal/check"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/sim"
)

// poisonedSuite returns a small suite in which exactly one cell — mp3d/NP/T=8
// — runs with invariant checking and an injected cache-state corruption, so
// that cell (and only that cell) fails with a *check.Violation.
func poisonedSuite() (*Suite, Key) {
	bad := Key{Workload: "mp3d", Strategy: prefetch.NP, Transfer: 8}
	s := NewSuite(Config{
		Scale:     0.1,
		Seed:      1,
		Transfers: []int{8},
		PerRun: func(k Key, cfg *sim.Config) {
			if k == bad {
				cfg.CheckInvariants = true
				cfg.Faults = &check.Plan{Flips: []check.StateFlip{
					{Proc: 0, To: cache.Modified, OnFill: -1},
				}}
			}
		},
	})
	return s, bad
}

func TestPoisonedCellFailsAlone(t *testing.T) {
	s, bad := poisonedSuite()
	if _, err := s.Result(bad); err == nil {
		t.Fatal("poisoned cell succeeded")
	} else {
		var v *check.Violation
		if !errors.As(err, &v) {
			t.Fatalf("poisoned cell error is %T (%v), want *check.Violation", err, err)
		}
	}
	// The same workload under a different strategy is untouched.
	good := Key{Workload: "mp3d", Strategy: prefetch.PREF, Transfer: 8}
	if _, err := s.Result(good); err != nil {
		t.Fatalf("healthy cell failed: %v", err)
	}
	// The failure is memoized: asking again returns the same error without
	// re-simulating.
	_, err1 := s.Result(bad)
	_, err2 := s.Result(bad)
	if err1 == nil || err1 != err2 {
		t.Errorf("memoized errors differ: %v vs %v", err1, err2)
	}
}

func TestTableRendersAroundPoisonedCell(t *testing.T) {
	s, bad := poisonedSuite()
	rows, err := s.Figure1()
	if err != nil {
		t.Fatalf("Figure1 failed outright: %v", err)
	}
	var failed, healthy int
	for _, r := range rows {
		if r.Err != "" {
			failed++
			if r.Workload != bad.Workload || r.Strategy != bad.Strategy {
				t.Errorf("unexpected failed cell %s/%s: %s", r.Workload, r.Strategy, r.Err)
			}
		} else {
			healthy++
		}
	}
	if failed != 1 {
		t.Errorf("%d failed rows, want exactly 1", failed)
	}
	if healthy == 0 {
		t.Error("no healthy rows rendered")
	}
	out := RenderFigure1(rows)
	if !strings.Contains(out, "—") {
		t.Errorf("render has no placeholder for the failed cell:\n%s", out)
	}
	if !strings.Contains(out, "check:") {
		t.Errorf("render does not annotate the failure:\n%s", out)
	}
	if !strings.Contains(out, "water") {
		t.Errorf("render lost the healthy workloads:\n%s", out)
	}
}

func TestPrewarmReportsCellErrors(t *testing.T) {
	s, bad := poisonedSuite()
	good := Key{Workload: "water", Strategy: prefetch.NP, Transfer: 8}
	err := s.Prewarm(context.Background(), []Key{bad, good}, nil)
	if err == nil {
		t.Fatal("Prewarm with a poisoned cell returned nil")
	}
	var cells *CellErrors
	if !errors.As(err, &cells) {
		t.Fatalf("Prewarm error is %T (%v), want *CellErrors", err, err)
	}
	if len(cells.Cells) != 1 || cells.Cells[0].Key != bad {
		t.Errorf("CellErrors = %v, want just %v", cells, bad)
	}
	if !strings.Contains(err.Error(), "1 of the suite's runs failed") {
		t.Errorf("Error() = %q", err.Error())
	}
	// The healthy key prewarmed fine.
	if _, err := s.Result(good); err != nil {
		t.Errorf("healthy cell failed after Prewarm: %v", err)
	}
}
