package experiments

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"busprefetch/internal/memory"
	"busprefetch/internal/obs"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/report"
	"busprefetch/internal/runner"
	"busprefetch/internal/sim"
)

// The observability section re-runs a focused slice of the grid — the
// Figure 3 workloads under the four prefetching strategies at T=8 — with the
// internal/obs recorder enabled, and reports what the end-of-run aggregates
// cannot: the fate of each prefetch that reached the bus (the paper's §4
// prefetch-fate discussion, cast in the coverage/accuracy/timeliness
// taxonomy of the prefetching-survey literature) and the distribution — not
// just the mean — of prefetch latencies, per the service-discipline
// analyses of the related bus-modeling work. These cells are separate from
// the memoized grid, which always runs with recording disabled, so the main
// tables measure the machine the benchmark report times.

// ObsStrategies lists the prefetching strategies the observability section
// profiles: every discipline that actually issues prefetches.
func ObsStrategies() []prefetch.Strategy {
	return []prefetch.Strategy{prefetch.PREF, prefetch.EXCL, prefetch.LPD, prefetch.PWS}
}

// ObsTransfer is the data-transfer cost the observability section runs at —
// the paper's headline T=8 point.
const ObsTransfer = 8

// ObsCell is one recorded cell: a (workload, strategy) pair's observability
// summary plus the demand-miss count its coverage metric needs.
type ObsCell struct {
	Workload string
	Strategy prefetch.Strategy
	Transfer int
	Summary  *obs.Summary
	// AdjustedCPUMisses is the run's demand-miss count excluding
	// prefetch-in-progress misses (the coverage denominator's second term).
	AdjustedCPUMisses uint64
}

// Label returns the cell's metrics-report label, "workload/strategy/transfer".
func (c ObsCell) Label() string {
	return fmt.Sprintf("%s/%s/%d", c.Workload, c.Strategy, c.Transfer)
}

// Observability runs the recorded slice — the Figure 3 workloads (or the
// given ones) under ObsStrategies at ObsTransfer — on the suite's worker
// pool and returns cells in canonical (workload-major) order. Recording is
// deterministic, so the cells are byte-identical at any worker count. The
// cells run under the suite's retry budget and per-cell timeout, resume from
// the checkpoint store when one is configured, and abort when ctx is
// cancelled.
func (s *Suite) Observability(ctx context.Context, workloads []string) ([]ObsCell, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(workloads) == 0 {
		workloads = Figure3Workloads()
	}
	var cells []ObsCell
	for _, wl := range workloads {
		for _, st := range ObsStrategies() {
			cells = append(cells, ObsCell{Workload: wl, Strategy: st, Transfer: ObsTransfer})
		}
	}
	tasks := make([]runner.Task, len(cells))
	for i := range cells {
		c := &cells[i]
		tasks[i] = runner.Task{
			Label: "obs:" + c.Label(),
			Run: func(ctx context.Context) error {
				if s.loadObsCheckpoint(c) {
					return nil
				}
				err, _ := runner.Retry(ctx, s.retryPolicy("obs:"+c.Label()), func(ctx context.Context) error {
					return s.runObsCell(ctx, c)
				})
				if err == nil {
					s.storeObsCheckpoint(c)
				}
				return err
			},
		}
	}
	errs, times := s.pool.Do(ctx, tasks, nil)
	s.recordTimings(times)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cells[i].Label(), err)
		}
	}
	return cells, nil
}

// runObsCell runs one recorded cell attempt, filling c on success.
func (s *Suite) runObsCell(ctx context.Context, c *ObsCell) error {
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	cfg := sim.DefaultConfig()
	cfg.Label = "obs:" + c.Label()
	cfg.MemLatency = s.cfg.MemLatency
	cfg.TransferCycles = c.Transfer
	cfg.Protocol = s.cfg.Protocol
	if s.cfg.PerRun != nil {
		s.cfg.PerRun(Key{Workload: c.Workload, Strategy: c.Strategy, Transfer: c.Transfer}, &cfg)
	}
	res, err := s.runCell(ctx, cfg, c.Workload, false, memory.Geometry{}, prefetch.Oracle,
		prefetch.Options{Strategy: c.Strategy, Geometry: cfg.Geometry},
		func(procs int, cfg *sim.Config) { cfg.Obs = obs.New(procs, obs.Options{}) })
	if err != nil {
		return err
	}
	c.Summary = res.Obs
	c.AdjustedCPUMisses = res.Counters.AdjustedCPUMisses()
	return nil
}

// RecordChromeTrace re-runs the single cell named by label —
// "workload/strategy/transfer", for example "mp3d/PREF/8" — with full span
// recording enabled and writes its Chrome trace-event JSON (loadable in
// Perfetto or chrome://tracing) to w. Span recording holds every phase and
// bus interval in memory, so this is a one-cell export, not a suite mode.
func (s *Suite) RecordChromeTrace(label string, w io.Writer) error {
	parts := strings.Split(label, "/")
	if len(parts) != 3 {
		return fmt.Errorf("bad trace cell %q (want workload/strategy/transfer, e.g. mp3d/PREF/8)", label)
	}
	strat, err := prefetch.ParseStrategy(parts[1])
	if err != nil {
		return fmt.Errorf("trace cell %q: %w", label, err)
	}
	transfer, err := strconv.Atoi(parts[2])
	if err != nil {
		return fmt.Errorf("trace cell %q: bad transfer %q", label, parts[2])
	}
	cfg := sim.DefaultConfig()
	cfg.Label = "trace:" + label
	cfg.MemLatency = s.cfg.MemLatency
	cfg.TransferCycles = transfer
	cfg.Protocol = s.cfg.Protocol
	if s.cfg.PerRun != nil {
		s.cfg.PerRun(Key{Workload: parts[0], Strategy: strat, Transfer: transfer}, &cfg)
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("trace cell %q: %w", label, err)
	}
	var rec *obs.Recorder
	_, err = s.runCell(context.Background(), cfg, parts[0], false, memory.Geometry{}, prefetch.Oracle,
		prefetch.Options{Strategy: strat, Geometry: cfg.Geometry},
		func(procs int, cfg *sim.Config) {
			rec = obs.New(procs, obs.Options{Spans: true})
			cfg.Obs = rec
		})
	if err != nil {
		return err
	}
	return rec.WriteChromeTrace(w)
}

// MetricsCells converts recorded cells to the metrics-report form.
func MetricsCells(cells []ObsCell) []runner.CellMetrics {
	out := make([]runner.CellMetrics, len(cells))
	for i, c := range cells {
		out[i] = runner.CellMetrics{Cell: c.Label(), Summary: c.Summary}
	}
	return out
}

// RenderObservability formats the observability section: one row per cell
// with the lifetime-class shares, the taxonomy metrics, and issue→fill
// latency percentiles interpolated from the fixed-bucket histograms.
func RenderObservability(cells []ObsCell) string {
	t := report.NewTable(
		fmt.Sprintf("Observability: prefetch lifetimes and latency (T=%d)", ObsTransfer),
		"Workload", "Strategy", "Fetched",
		"Useful", "Late", "Evicted", "Inval", "Unused",
		"Acc", "Timely", "Cover", "p50", "p90", "p99")
	for _, c := range cells {
		s := c.Summary
		total := s.LifetimesTotal()
		share := func(class obs.LifetimeClass) string {
			if total == 0 {
				return "—"
			}
			return fmt.Sprintf("%.1f%%", 100*float64(s.LifetimeCount(class))/float64(total))
		}
		t.AddRow(c.Workload, c.Strategy.String(), fmt.Sprintf("%d", total),
			share(obs.LifeUseful), share(obs.LifeLate), share(obs.LifeEvicted),
			share(obs.LifeInvalidated), share(obs.LifeUnused),
			fmt.Sprintf("%.2f", s.Accuracy()), fmt.Sprintf("%.2f", s.Timeliness()),
			fmt.Sprintf("%.2f", s.Coverage(c.AdjustedCPUMisses)),
			fmt.Sprintf("%.0f", s.IssueToFill.Quantile(0.50)),
			fmt.Sprintf("%.0f", s.IssueToFill.Quantile(0.90)),
			fmt.Sprintf("%.0f", s.IssueToFill.Quantile(0.99)))
	}
	return t.String()
}
