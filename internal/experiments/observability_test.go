package experiments

import (
	"context"
	"strings"
	"testing"
)

// obsRender runs the observability slice on a reduced suite at the given
// parallelism and returns the rendered section.
func obsRender(t *testing.T, jobs int) string {
	t.Helper()
	s := NewSuite(Config{Scale: 0.05, Seed: 1, Transfers: []int{8}, Parallelism: jobs})
	got, err := s.RenderSections(context.Background(), func(name string) bool { return name == "observability" })
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestObservabilityDeterministicAcrossWorkerCounts is the acceptance bar the
// issue names: the recorded section is byte-identical at -jobs 1 and
// -jobs 8.
func TestObservabilityDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := obsRender(t, 1)
	parallel := obsRender(t, 8)
	if serial != parallel {
		t.Errorf("observability section differs across worker counts:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "Observability: prefetch lifetimes") {
		t.Fatalf("section missing title:\n%s", serial)
	}
}

func TestObservabilityCells(t *testing.T) {
	s := NewSuite(Config{Scale: 0.05, Seed: 1, Transfers: []int{8}})
	cells, err := s.Observability(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(Figure3Workloads()) * len(ObsStrategies()); len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Summary == nil {
			t.Fatalf("%s: nil summary", c.Label())
		}
		if c.Summary.LifetimesTotal() == 0 {
			t.Errorf("%s: no prefetch lifetimes recorded for a prefetching strategy", c.Label())
		}
		if c.Summary.IssueToFill.Samples == 0 {
			t.Errorf("%s: no issue→fill samples", c.Label())
		}
	}
	// Canonical order: workload-major over Figure3Workloads × ObsStrategies.
	if cells[0].Label() != "topopt/PREF/8" || cells[len(cells)-1].Label() != "mp3d/PWS/8" {
		t.Errorf("cells out of canonical order: first %s, last %s", cells[0].Label(), cells[len(cells)-1].Label())
	}
	m := MetricsCells(cells)
	if len(m) != len(cells) || m[0].Cell != cells[0].Label() || m[0].Summary != cells[0].Summary {
		t.Error("MetricsCells lost cells or reordered them")
	}
}

// TestGoldenObsT8 pins the scale-1 observability section — prefetch-latency
// percentiles and lifetime-class shares for PREF/EXCL/LPD/PWS at T=8 — the
// way the other golden slices pin the paper tables.
func TestGoldenObsT8(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-1 observability slice in -short mode")
	}
	s := NewSuite(Config{Scale: 1, Seed: 1})
	got, err := s.RenderSections(context.Background(), func(name string) bool { return name == "observability" })
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_obs_t8.txt", got)
}
