package experiments

import (
	"context"
	"fmt"

	"busprefetch/internal/memory"
	"busprefetch/internal/obs"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/report"
	"busprefetch/internal/runner"
	"busprefetch/internal/sim"
)

// The online section asks the question the oracle annotator cannot: does the
// paper's conclusion — prefetching helps little on a bus-based machine
// because the bus, not the miss rate, is the bottleneck — survive when the
// prefetcher is *imperfect*? It re-runs the transfer-cost comparison on the
// Figure 3 workloads with the prefetch decisions made at simulation time by
// each online engine (stride, temporal, pointer), beside the oracle's PREF
// annotation, at the paper's cheap (T=8) and expensive (T=32) bus points,
// with the obs recorder classifying every prefetch's fate. Like the
// observability slice, these cells are separate from the memoized grid; only
// the NP baselines (for relative time) come from the grid, so the normalizer
// is the same machine the main tables report.

// OnlineTransfers lists the data-transfer costs the online section sweeps:
// the paper's headline T=8 point and the bus-saturated T=32 extreme, where
// the limitation argument is sharpest.
func OnlineTransfers() []int { return []int{8, 32} }

// OnlineCell is one cell of the online-vs-oracle sweep: a (workload,
// prefetcher, transfer) triple's execution time, miss counters, engine
// bookkeeping, and recorded prefetch lifetimes.
type OnlineCell struct {
	Workload string
	Engine   prefetch.Kind
	Transfer int
	// Cycles is the cell's parallel execution time; NPCycles is the
	// no-prefetching baseline at the same transfer cost (the relative-time
	// denominator, read from the memoized grid).
	Cycles   uint64
	NPCycles uint64
	// Counters is the run's full counter block (miss rates, online issue
	// accounting).
	Counters sim.Counters
	// Summary is the obs lifetime/latency record.
	Summary *obs.Summary
	// Stats is the engine's own bookkeeping; nil on the oracle row.
	Stats *prefetch.EngineStats
}

// Label returns the cell's label, "workload/engine/transfer".
func (c OnlineCell) Label() string {
	return fmt.Sprintf("%s/%s/%d", c.Workload, c.Engine, c.Transfer)
}

// RelativeTime returns the cell's execution time relative to the NP baseline
// (the paper's headline metric; below 1 is a speedup).
func (c OnlineCell) RelativeTime() float64 {
	if c.NPCycles == 0 {
		return 0
	}
	return float64(c.Cycles) / float64(c.NPCycles)
}

// onlineNPKeys returns the grid cells the online sweep's baselines need.
func onlineNPKeys(workloads []string, transfers []int) []Key {
	var keys []Key
	for _, wl := range workloads {
		for _, tr := range transfers {
			keys = append(keys, Key{Workload: wl, Strategy: prefetch.NP, Transfer: tr})
		}
	}
	return keys
}

// Online runs the online-vs-oracle sweep — the Figure 3 workloads (or the
// given ones) under every prefetcher kind at OnlineTransfers (or the given
// transfers) — on the suite's worker pool and returns cells in canonical
// (workload-major, then kind, then transfer) order. The NP baselines are
// prewarmed through the memoized grid first, so every cell's relative time
// normalizes against the same baseline the main tables use. The cells run
// under the suite's retry budget and per-cell timeout, resume from the
// checkpoint store when one is configured, and abort when ctx is cancelled.
func (s *Suite) Online(ctx context.Context, workloads []string, transfers []int) ([]OnlineCell, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(workloads) == 0 {
		workloads = Figure3Workloads()
	}
	if len(transfers) == 0 {
		transfers = OnlineTransfers()
	}
	if err := s.Prewarm(ctx, onlineNPKeys(workloads, transfers), nil); err != nil {
		return nil, err
	}
	var cells []OnlineCell
	for _, wl := range workloads {
		for _, k := range prefetch.Kinds() {
			for _, tr := range transfers {
				cells = append(cells, OnlineCell{Workload: wl, Engine: k, Transfer: tr})
			}
		}
	}
	tasks := make([]runner.Task, len(cells))
	for i := range cells {
		c := &cells[i]
		tasks[i] = runner.Task{
			Label: "online:" + c.Label(),
			Run: func(ctx context.Context) error {
				if s.loadOnlineCheckpoint(c) {
					return nil
				}
				err, _ := runner.Retry(ctx, s.retryPolicy("online:"+c.Label()), func(ctx context.Context) error {
					return s.runOnlineCell(ctx, c)
				})
				if err == nil {
					s.storeOnlineCheckpoint(c)
				}
				return err
			},
		}
	}
	errs, times := s.pool.Do(ctx, tasks, nil)
	s.recordTimings(times)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cells[i].Label(), err)
		}
	}
	return cells, nil
}

// runOnlineCell runs one online cell attempt, filling c on success. The
// oracle row annotates PREF offline; an engine row replays the bare demand
// stream and lets the engine issue at simulation time under the same PREF
// discipline, so the two differ only in *when* the prefetch decision is made.
func (s *Suite) runOnlineCell(ctx context.Context, c *OnlineCell) error {
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	np, err := s.result(ctx, Key{Workload: c.Workload, Strategy: prefetch.NP, Transfer: c.Transfer})
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig()
	cfg.Label = "online:" + c.Label()
	cfg.MemLatency = s.cfg.MemLatency
	cfg.TransferCycles = c.Transfer
	cfg.Protocol = s.cfg.Protocol
	if s.cfg.PerRun != nil {
		s.cfg.PerRun(Key{Workload: c.Workload, Strategy: prefetch.PREF, Transfer: c.Transfer}, &cfg)
	}
	if c.Engine.Online() {
		cfg.Online = prefetch.OnlineConfig{Kind: c.Engine, Strategy: prefetch.PREF}
	}
	res, err := s.runCell(ctx, cfg, c.Workload, false, memory.Geometry{}, c.Engine,
		prefetch.Options{Strategy: prefetch.PREF, Geometry: cfg.Geometry},
		func(procs int, cfg *sim.Config) { cfg.Obs = obs.New(procs, obs.Options{}) })
	if err != nil {
		return err
	}
	c.Cycles, c.NPCycles = res.Cycles, np.Cycles
	c.Counters = res.Counters
	c.Summary = res.Obs
	c.Stats = res.Online
	return nil
}

// RenderOnline formats the online section: one row per cell with the
// relative execution time, the adjusted miss rate, and the recorded
// prefetch-fate taxonomy, so oracle and engine rows read off the same
// ruler.
func RenderOnline(cells []OnlineCell) string {
	t := report.NewTable(
		"Online engines vs oracle annotation (PREF discipline)",
		"Workload", "Engine", "T", "Rel.time", "adj MR", "Fetched",
		"Useful", "Late", "Evicted", "Inval", "Unused",
		"Acc", "Timely", "Cover")
	for _, c := range cells {
		s := c.Summary
		total := s.LifetimesTotal()
		share := func(class obs.LifetimeClass) string {
			if total == 0 {
				return "—"
			}
			return fmt.Sprintf("%.1f%%", 100*float64(s.LifetimeCount(class))/float64(total))
		}
		adjMR := 0.0
		if refs := c.Counters.DemandRefs(); refs > 0 {
			adjMR = float64(c.Counters.AdjustedCPUMisses()) / float64(refs)
		}
		t.AddRow(c.Workload, c.Engine.String(), fmt.Sprintf("%d", c.Transfer),
			fmt.Sprintf("%.3f", c.RelativeTime()),
			fmt.Sprintf("%.4f", adjMR),
			fmt.Sprintf("%d", total),
			share(obs.LifeUseful), share(obs.LifeLate), share(obs.LifeEvicted),
			share(obs.LifeInvalidated), share(obs.LifeUnused),
			fmt.Sprintf("%.2f", s.Accuracy()), fmt.Sprintf("%.2f", s.Timeliness()),
			fmt.Sprintf("%.2f", s.Coverage(c.Counters.AdjustedCPUMisses())))
	}
	return t.String()
}
