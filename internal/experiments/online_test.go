package experiments

import (
	"context"
	"strings"
	"testing"

	"busprefetch/internal/prefetch"
	"busprefetch/internal/runner"
)

// onlineRender runs the online-vs-oracle sweep on a reduced suite at the
// given parallelism and returns the rendered section.
func onlineRender(t *testing.T, jobs int) string {
	t.Helper()
	s := NewSuite(Config{Scale: 0.05, Seed: 1, Transfers: []int{8}, Parallelism: jobs})
	got, err := s.RenderSections(context.Background(), func(name string) bool { return name == "online" })
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestOnlineDeterministicAcrossWorkerCounts: the engines' training is
// per-processor state inside a deterministic event loop, so the rendered
// sweep must be byte-identical at -jobs 1 and -jobs 8.
func TestOnlineDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := onlineRender(t, 1)
	parallel := onlineRender(t, 8)
	if serial != parallel {
		t.Errorf("online section differs across worker counts:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "Online engines vs oracle annotation") {
		t.Fatalf("section missing title:\n%s", serial)
	}
}

func TestOnlineCells(t *testing.T) {
	s := NewSuite(Config{Scale: 0.05, Seed: 1, Transfers: []int{8}})
	cells, err := s.Online(context.Background(), nil, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(Figure3Workloads()) * len(prefetch.Kinds()); len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	// Canonical order: workload-major over Figure3Workloads × Kinds.
	if cells[0].Label() != "topopt/oracle/8" || cells[len(cells)-1].Label() != "mp3d/pointer/8" {
		t.Errorf("cells out of canonical order: first %s, last %s", cells[0].Label(), cells[len(cells)-1].Label())
	}
	for _, c := range cells {
		if c.Summary == nil {
			t.Fatalf("%s: nil summary", c.Label())
		}
		if c.NPCycles == 0 || c.Cycles == 0 {
			t.Errorf("%s: missing cycle counts (cycles=%d, NP=%d)", c.Label(), c.Cycles, c.NPCycles)
		}
		if c.Engine.Online() {
			if c.Stats == nil {
				t.Fatalf("%s: engine cell carries no engine stats", c.Label())
			}
			cnt := &c.Counters
			if got := cnt.OnlineIssued + cnt.OnlineFiltered + cnt.OnlineDropped; got != cnt.OnlineEmitted {
				t.Errorf("%s: online accounting leak: issued+filtered+dropped=%d, emitted=%d",
					c.Label(), got, cnt.OnlineEmitted)
			}
			if uint64(c.Summary.LifetimesTotal()) != cnt.OnlineIssued {
				t.Errorf("%s: obs recorded %d prefetch lifetimes, simulator issued %d",
					c.Label(), c.Summary.LifetimesTotal(), cnt.OnlineIssued)
			}
		} else {
			if c.Stats != nil {
				t.Errorf("%s: oracle cell carries engine stats", c.Label())
			}
			if c.Summary.LifetimesTotal() == 0 {
				t.Errorf("%s: oracle run recorded no prefetch lifetimes", c.Label())
			}
			if c.Counters.OnlineEmitted != 0 {
				t.Errorf("%s: oracle run counted %d online emissions", c.Label(), c.Counters.OnlineEmitted)
			}
		}
	}
}

// TestOnlineCheckpointResume: online cells resume from the store too — the
// second sweep restores every recorded cell, recomputes nothing, and renders
// byte-identical output.
func TestOnlineCheckpointResume(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	store1, err := runner.OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSuite(resumeConfig(store1))
	cells1, err := s1.Online(ctx, []string{"mp3d"}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	// The sweep checkpoints its own cells plus the NP grid baseline.
	if puts := store1.Stats().Puts; puts != uint64(len(cells1))+1 {
		t.Fatalf("first run checkpointed %d cells, want %d online + 1 NP baseline", puts, len(cells1))
	}

	store2, err := runner.OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSuite(resumeConfig(store2))
	cells2, err := s2.Online(ctx, []string{"mp3d"}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	stats := store2.Stats()
	if stats.Hits != uint64(len(cells1))+1 || stats.Puts != 0 {
		t.Errorf("resume hits=%d puts=%d, want all %d cells restored and none recomputed",
			stats.Hits, stats.Puts, len(cells1)+1)
	}
	if got, want := RenderOnline(cells2), RenderOnline(cells1); got != want {
		t.Error("restored online cells render differently")
	}
}

// TestGoldenOnlineT8 pins the scale-1 online-vs-oracle sweep at the T=8
// point (the T=32 half is covered by the full golden), the way the other
// golden slices pin the paper tables.
func TestGoldenOnlineT8(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-1 online slice in -short mode")
	}
	s := NewSuite(Config{Scale: 1, Seed: 1})
	cells, err := s.Online(context.Background(), nil, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_online_t8.txt", RenderOnline(cells))
}
