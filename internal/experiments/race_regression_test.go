package experiments

import (
	"context"
	"testing"

	"busprefetch/internal/prefetch"
)

// TestPrewarmSharesTracesAcrossWorkers: eight workers, five strategies, one
// workload — every cell needs the same base trace, so the trace cache's
// singleflight is hit from all workers at once while the first generation is
// still in flight. Run under -race (CI does) this is the regression test
// that Prewarm and the trace cache never share mutable workload builder
// state across goroutines; a shared builder shows up as a detector report or
// as divergent memoized results.
func TestPrewarmSharesTracesAcrossWorkers(t *testing.T) {
	s := NewSuite(Config{Scale: 0.05, Seed: 1, Transfers: []int{8}, Parallelism: 8})
	var keys []Key
	for _, st := range prefetch.Strategies() {
		keys = append(keys, Key{Workload: "mp3d", Strategy: st, Transfer: 8})
	}
	if err := s.Prewarm(context.Background(), keys, nil); err != nil {
		t.Fatal(err)
	}
	// All five cells simulated one shared generation: 1 miss, 4 hits.
	bench := s.Bench(0)
	if bench.TraceCacheMisses != 1 {
		t.Errorf("trace generations = %d, want 1 (strategies must share the base trace)", bench.TraceCacheMisses)
	}
	if bench.TraceCacheHits != 4 {
		t.Errorf("trace cache hits = %d, want 4", bench.TraceCacheHits)
	}
	if len(bench.Cells) != 5 {
		t.Errorf("bench recorded %d cells, want 5", len(bench.Cells))
	}
	// And the memoized results stay internally consistent: NP re-queried
	// returns the identical pointer (no per-worker duplicate simulations).
	a, err := s.Result(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Result(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("re-query returned a different result object")
	}
}
