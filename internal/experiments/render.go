package experiments

import (
	"context"
	"fmt"
	"strings"
)

// This file assembles the full paper report from a suite in one canonical
// order. cmd/mkfigures and the golden-result regression test share it, so
// "what mkfigures prints" and "what the goldens assert" are the same bytes
// by construction — and because every table is rendered from memoized
// results in canonical loops, the assembled report is byte-identical
// regardless of how many workers simulated the cells.

// SectionNames lists the report sections in presentation order; these are
// also the valid values of mkfigures' -only flag.
func SectionNames() []string {
	return []string{"table1", "fig1", "table2", "fig2", "util", "fig3", "table3", "table4", "table5", "ablations", "protocols", "observability", "online", "interconnect"}
}

// ValidSection reports whether name selects a known section
// (case-insensitive).
func ValidSection(name string) bool {
	for _, s := range SectionNames() {
		if strings.EqualFold(s, name) {
			return true
		}
	}
	return false
}

// KeysFor returns the suite cells the selected sections need, for
// prewarming. want selects sections by name; the ablations run their own
// sweeps outside the shared grid, so they contribute no keys.
func (s *Suite) KeysFor(want func(name string) bool) []Key {
	var keys []Key
	if want("fig1") || want("table2") || want("fig2") || want("util") || want("fig3") || want("table3") {
		keys = append(keys, s.GridKeys()...)
	}
	if want("table4") || want("table5") {
		keys = append(keys, s.RestructuredKeys()...)
	}
	if want("online") {
		// The online sweep runs its own recorded cells, but normalizes
		// against the grid's NP baselines.
		keys = append(keys, onlineNPKeys(Figure3Workloads(), OnlineTransfers())...)
	}
	// The interconnect sweep contributes no keys: its NP baselines are
	// in-sweep (per topology), not grid cells.
	return keys
}

// RenderSections renders the selected sections in canonical order and joins
// them exactly as mkfigures prints them. A section that fails to build
// returns an error naming it; per-cell failures inside a section do not —
// they render as annotated placeholders (see tables.go). ctx cancels the
// section sweeps that still have cells to run (the ablations and the
// observability slice; the grid renders from memoized results).
func (s *Suite) RenderSections(ctx context.Context, want func(name string) bool) (string, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var sections []string
	add := func(name, body string, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		sections = append(sections, body)
		return nil
	}

	if want("table1") {
		rows, err := s.Table1()
		if err := add("table1", RenderTable1(rows), err); err != nil {
			return "", err
		}
	}
	if want("fig1") {
		rows, err := s.Figure1()
		if err := add("fig1", RenderFigure1(rows), err); err != nil {
			return "", err
		}
	}
	if want("table2") {
		rows, err := s.Table2()
		if err := add("table2", RenderTable2(rows), err); err != nil {
			return "", err
		}
	}
	if want("fig2") {
		rows, err := s.Figure2()
		if err := add("fig2", RenderFigure2(rows, s.cfg.Transfers), err); err != nil {
			return "", err
		}
	}
	if want("util") {
		rows, err := s.Utilization()
		if err := add("util", RenderUtilization(rows), err); err != nil {
			return "", err
		}
	}
	if want("fig3") {
		rows, err := s.Figure3()
		if err := add("fig3", RenderFigure3(rows), err); err != nil {
			return "", err
		}
	}
	if want("table3") {
		rows, err := s.Table3()
		if err := add("table3", RenderTable3(rows), err); err != nil {
			return "", err
		}
	}
	if want("table4") {
		rows, err := s.Table4()
		if err := add("table4", RenderTable4(rows), err); err != nil {
			return "", err
		}
	}
	if want("table5") {
		rows, err := s.Table5()
		if err := add("table5", RenderTable5(rows, s.cfg.Transfers), err); err != nil {
			return "", err
		}
	}
	if want("ablations") {
		rows, err := s.AblationCacheSize(ctx, "mp3d", nil)
		if err := add("ablation-cache", RenderAblation("Ablation: cache size (mp3d, NP, T=8)", rows), err); err != nil {
			return "", err
		}
		rows, err = s.AblationLineSize(ctx, "mp3d", nil)
		if err := add("ablation-line", RenderAblation("Ablation: line size (mp3d, NP, T=8)", rows), err); err != nil {
			return "", err
		}
		rows, err = s.AblationAssociativity(ctx, "topopt")
		if err := add("ablation-assoc", RenderAblation("Ablation: associativity & victim cache (topopt, PREF, T=8)", rows), err); err != nil {
			return "", err
		}
		rows, err = s.AblationPrefetchPlacement(ctx, "mp3d")
		if err := add("ablation-placement", RenderAblation("Ablation: cache vs buffer prefetching (mp3d, T=8)", rows), err); err != nil {
			return "", err
		}
	}
	if want("protocols") {
		// The three-way coherence ablation is its own section so the golden
		// harness can pin it (testdata/golden_protocol_t8.txt) without
		// re-running the other sweeps.
		rows, err := s.AblationProtocol(ctx, "mp3d", nil)
		if err := add("ablation-protocol", RenderAblation("Ablation: coherence protocols (mp3d, T=8)", rows), err); err != nil {
			return "", err
		}
	}
	if want("observability") {
		// Its own golden file (testdata/golden_obs_t8.txt) pins the recorded
		// slice without re-running the main grid.
		cells, err := s.Observability(ctx, nil)
		if err := add("observability", RenderObservability(cells), err); err != nil {
			return "", err
		}
	}
	if want("online") {
		// Its own golden file (testdata/golden_online_t8.txt) pins the T=8
		// half of the online-vs-oracle sweep without re-running the grid.
		cells, err := s.Online(ctx, nil, nil)
		if err := add("online", RenderOnline(cells), err); err != nil {
			return "", err
		}
	}
	if want("interconnect") {
		// Its own golden file (testdata/golden_interconnect_t8.txt) pins the
		// T=8 half of the topology ladder without re-running the grid.
		cells, err := s.Interconnect(ctx, nil)
		if err := add("interconnect", RenderInterconnect(cells), err); err != nil {
			return "", err
		}
	}

	return strings.Join(sections, "\n"), nil
}
