package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"busprefetch/internal/check"
	"busprefetch/internal/runner"
)

func resumeConfig(store *runner.CheckpointStore) Config {
	return Config{Scale: 0.1, Seed: 1, Transfers: []int{8}, Checkpoints: store}
}

func wantTable2Only(name string) bool { return name == "table2" }

// TestResumeEquivalence is the checkpoint/resume contract end to end: kill a
// sweep partway, resume it in a fresh suite (the way a new process would),
// and the resumed sweep must restore every completed cell from the store,
// recompute only the missing ones, and render byte-identical output to an
// uninterrupted sweep.
func TestResumeEquivalence(t *testing.T) {
	ctx := context.Background()

	clean := NewSuite(resumeConfig(nil))
	keys := clean.GridKeys()
	if err := clean.Prewarm(ctx, keys, nil); err != nil {
		t.Fatalf("uninterrupted sweep failed: %v", err)
	}
	golden, err := clean.RenderSections(ctx, wantTable2Only)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	store1, err := runner.OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSuite(resumeConfig(store1))
	const killAfter = 5
	kctx, cancel := context.WithCancel(ctx)
	defer cancel()
	kerr := s1.Prewarm(kctx, keys, func(done, total int) {
		if done >= killAfter {
			cancel()
		}
	})
	if !errors.Is(kerr, context.Canceled) {
		t.Fatalf("killed sweep returned %v, want context.Canceled", kerr)
	}
	if puts := store1.Stats().Puts; puts == 0 {
		t.Fatal("killed sweep checkpointed nothing")
	}

	store2, err := runner.OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSuite(resumeConfig(store2))
	if err := s2.Prewarm(ctx, keys, nil); err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	// Read the counters before rendering: Table2 sweeps its own fixed
	// transfer set, so the render below legitimately computes (and
	// checkpoints) cells beyond the prewarmed grid.
	stats := store2.Stats()
	if stats.Hits < killAfter {
		t.Errorf("resume restored %d cells, want at least the %d that completed before the kill", stats.Hits, killAfter)
	}
	if got, want := stats.Puts, uint64(len(keys))-stats.Hits; got != want {
		t.Errorf("resume recomputed %d cells with %d restored of %d; want exactly the missing %d",
			got, stats.Hits, len(keys), want)
	}
	out, err := s2.RenderSections(ctx, wantTable2Only)
	if err != nil {
		t.Fatal(err)
	}
	if out != golden {
		t.Errorf("resumed render diverges from the uninterrupted sweep (%d vs %d bytes)", len(out), len(golden))
	}
	if corrupt, err := store2.Verify(); err != nil || len(corrupt) > 0 {
		t.Errorf("store after resume: corrupt=%v err=%v", corrupt, err)
	}
}

// TestResumeTornWriteSelfHeals: a checkpoint entry corrupted on disk between
// runs (torn write, bit rot) must be quarantined and recomputed — never
// served — and the healed sweep still renders byte-identical output.
func TestResumeTornWriteSelfHeals(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	store1, err := runner.OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSuite(resumeConfig(store1))
	keys := s1.GridKeys()
	if err := s1.Prewarm(ctx, keys, nil); err != nil {
		t.Fatal(err)
	}
	if puts := store1.Stats().Puts; puts != uint64(len(keys)) {
		t.Fatalf("sweep checkpointed %d of %d cells", puts, len(keys))
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			victim = filepath.Join(dir, e.Name())
			break
		}
	}
	if victim == "" {
		t.Fatal("completed sweep left no checkpoint entries")
	}
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	torn, _ := check.NewInjector(1).FlipBit(data, -1)
	if err := os.WriteFile(victim, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := runner.OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSuite(resumeConfig(store2))
	if err := s2.Prewarm(ctx, keys, nil); err != nil {
		t.Fatalf("sweep over a torn store failed: %v", err)
	}
	stats := store2.Stats()
	if stats.Corrupt != 1 {
		t.Errorf("corrupt entries detected = %d, want 1", stats.Corrupt)
	}
	if stats.Hits != uint64(len(keys))-1 || stats.Puts != 1 {
		t.Errorf("hits=%d puts=%d over %d keys; want %d restored and exactly the torn cell recomputed",
			stats.Hits, stats.Puts, len(keys), len(keys)-1)
	}

	clean := NewSuite(resumeConfig(nil))
	golden, err := clean.RenderSections(ctx, wantTable2Only)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s2.RenderSections(ctx, wantTable2Only)
	if err != nil {
		t.Fatal(err)
	}
	if out != golden {
		t.Error("healed render diverges from a fault-free one")
	}
	if corrupt, err := store2.Verify(); err != nil || len(corrupt) > 0 {
		t.Errorf("store after self-heal: corrupt=%v err=%v", corrupt, err)
	}
}

// TestObservabilityCheckpointResume: the recorded observability cells resume
// from the store too, and a restored cell renders byte-identical output.
func TestObservabilityCheckpointResume(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	store1, err := runner.OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSuite(resumeConfig(store1))
	cells1, err := s1.Observability(ctx, []string{"mp3d"})
	if err != nil {
		t.Fatal(err)
	}
	if puts := store1.Stats().Puts; puts != uint64(len(cells1)) {
		t.Fatalf("first run checkpointed %d of %d obs cells", puts, len(cells1))
	}

	store2, err := runner.OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSuite(resumeConfig(store2))
	cells2, err := s2.Observability(ctx, []string{"mp3d"})
	if err != nil {
		t.Fatal(err)
	}
	stats := store2.Stats()
	if stats.Hits != uint64(len(cells1)) || stats.Puts != 0 {
		t.Errorf("resume hits=%d puts=%d, want all %d cells restored", stats.Hits, stats.Puts, len(cells1))
	}
	if got, want := RenderObservability(cells2), RenderObservability(cells1); got != want {
		t.Error("restored observability cells render differently")
	}
}
