package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"time"

	"busprefetch/internal/interconnect"
	"busprefetch/internal/memory"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/runner"
	"busprefetch/internal/sim"
	"busprefetch/internal/trace"
	"busprefetch/internal/workload"
)

// Config scales and seeds the whole experiment suite.
type Config struct {
	// Scale multiplies trace lengths (1.0 = calibrated default).
	Scale float64
	// Seed seeds the workload generators.
	Seed int64
	// MemLatency is the total memory latency (paper: 100).
	MemLatency int
	// Transfers is the data-transfer sweep; nil selects the paper's
	// {4, 8, 16, 24, 32}.
	Transfers []int
	// Protocol selects the coherence protocol every grid cell simulates
	// (the zero value is Illinois, the paper's machine). The protocol
	// ablation ignores it — it sweeps protocols itself.
	Protocol sim.Protocol
	// Prefetcher selects how every grid cell's prefetches are decided: the
	// oracle annotator (the zero value, the paper's machine) or one of the
	// online engines, which replay the bare demand stream and issue at
	// simulation time under each cell's strategy. The online-vs-oracle
	// section ignores it — it sweeps prefetchers itself — and the
	// observability slice always records the oracle.
	Prefetcher prefetch.Kind
	// Interconnect selects the fabric every grid cell simulates (the zero
	// value is the paper's single priority bus). The interconnect section
	// ignores it — it sweeps topologies itself.
	Interconnect interconnect.Config
	// Parallelism bounds concurrent simulations; 0 selects GOMAXPROCS.
	Parallelism int
	// Materialize disables the streaming hot path: every cell generates its
	// full trace, annotates it in memory, and replays the materialized
	// result — the pre-fusion pipeline. The default (false) streams events
	// generator → annotator → simulator in pooled chunks with nothing
	// materialized. Results are identical either way (the streaming seam is
	// byte-exact); the flag exists as an escape hatch and as the comparison
	// baseline for the performance suite.
	Materialize bool
	// PerRun, when non-nil, adjusts one run's simulator configuration just
	// before it executes (after the suite's own fields are applied). Tests
	// use it to enable invariant checking or to poison a single cell with
	// injected faults (sim.Config.Faults) and prove the rest of the suite
	// still renders.
	PerRun func(k Key, cfg *sim.Config)
	// Timeout, when positive, bounds each cell attempt's wall clock (trace
	// generation included): the attempt's context expires and the simulator
	// aborts at its next cancellation poll. A timed-out attempt is retryable.
	Timeout time.Duration
	// Retries is how many extra attempts a retryably-failing cell gets
	// (injected transient faults, watchdog stalls, per-cell timeouts).
	// Terminal failures — invariant violations, panics, a cancelled sweep —
	// never retry. Zero means one attempt, no retries.
	Retries int
	// Checkpoints, when non-nil, persists each completed cell so an
	// interrupted sweep resumes recomputing only the missing ones. See
	// checkpoint.go for the key discipline and the exactness guarantee.
	Checkpoints *runner.CheckpointStore
	// Salt segregates checkpoint namespaces. It is required for
	// checkpointing when PerRun is set (the hook can change what a cell
	// computes, so the caller must name the variation); otherwise optional.
	Salt string
}

// DefaultConfig returns the paper's sweep at full scale.
func DefaultConfig() Config {
	return Config{Scale: 1.0, Seed: 1, MemLatency: 100, Transfers: []int{4, 8, 16, 24, 32}}
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MemLatency == 0 {
		c.MemLatency = 100
	}
	if len(c.Transfers) == 0 {
		c.Transfers = []int{4, 8, 16, 24, 32}
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Key identifies one simulation run.
type Key struct {
	Workload     string
	Strategy     prefetch.Strategy
	Transfer     int
	Restructured bool
}

func (k Key) String() string {
	r := ""
	if k.Restructured {
		r = " restructured"
	}
	return fmt.Sprintf("%s/%s/T=%d%s", k.Workload, k.Strategy, k.Transfer, r)
}

// Suite runs and memoizes simulations. Parallel execution is delegated to
// internal/runner: a bounded worker pool shards the independent cells, a
// singleflight trace cache generates each (workload, scale, seed,
// restructured, geometry) trace exactly once, and every reduction happens in
// canonical cell order, so the rendered output is byte-identical at any
// worker count.
type Suite struct {
	cfg    Config
	pool   *runner.Pool
	traces *runner.TraceCache

	mu      sync.Mutex
	results map[Key]*sim.Result
	// errs memoizes failed runs: a poisoned or broken configuration fails
	// once (after its retry budget) and every table that needs the cell gets
	// the same error without re-simulating. Failures observed while the
	// sweep's own context was dying are NOT memoized — a cancelled sweep
	// must not poison the cell for a later resume.
	errs map[Key]cellFailure
	// timings accumulates the wall-clock of every pool-executed task for
	// the benchmark report.
	timings []runner.Timing
}

// NewSuite creates a suite with the given configuration.
func NewSuite(cfg Config) *Suite {
	cfg = cfg.withDefaults()
	return &Suite{
		cfg:     cfg,
		pool:    runner.NewPool(cfg.Parallelism),
		traces:  runner.NewTraceCache(),
		results: make(map[Key]*sim.Result),
		errs:    make(map[Key]cellFailure),
	}
}

// Config returns the suite's effective configuration.
func (s *Suite) Config() Config { return s.cfg }

// Workers returns the suite's worker-pool bound.
func (s *Suite) Workers() int { return s.pool.Workers() }

// Info returns the Table 1 metadata for a workload. It comes from the
// workload's plan (layout and sizing), so no trace is generated.
func (s *Suite) Info(name string) (workload.Info, error) {
	_, info, err := s.sourceFor(context.Background(), name, false, memory.Geometry{})
	return info, err
}

// traceKey is the cache key for a workload variant at a layout geometry.
func (s *Suite) traceKey(name string, restructured bool, g memory.Geometry) runner.TraceKey {
	return runner.TraceKey{
		Workload:     name,
		Scale:        s.cfg.Scale,
		Seed:         s.cfg.Seed,
		Restructured: restructured,
		Geometry:     g,
	}
}

// traceFor returns (generating on first use) the unannotated trace for a
// workload variant at the given layout geometry; the zero geometry selects
// the default. The underlying cache is shared with the ablations, so an
// ablation at the default geometry reuses the suite's base traces.
func (s *Suite) traceFor(ctx context.Context, name string, restructured bool, g memory.Geometry) (*trace.Trace, workload.Info, error) {
	return s.traces.Get(ctx, s.traceKey(name, restructured, g), func() (*trace.Trace, workload.Info, error) {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, workload.Info{}, err
		}
		return w.Generate(workload.Params{
			Scale: s.cfg.Scale, Seed: s.cfg.Seed, Restructured: restructured, Geometry: g,
		})
	})
}

// sourceFor returns (planning on first use) the unannotated streaming
// source for a workload variant. Planning does the layout and sizing work
// only; events are produced on demand every time the source is drained,
// so one cached source serves any number of concurrent cells without
// holding a trace in memory.
func (s *Suite) sourceFor(ctx context.Context, name string, restructured bool, g memory.Geometry) (trace.Source, workload.Info, error) {
	return s.traces.GetSource(ctx, s.traceKey(name, restructured, g), func() (trace.Source, workload.Info, error) {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, workload.Info{}, err
		}
		return w.Source(workload.Params{
			Scale: s.cfg.Scale, Seed: s.cfg.Seed, Restructured: restructured, Geometry: g,
		})
	})
}

// runCell is the shared cell executor: it resolves a workload variant,
// annotates it with prefetcher pf under opt, and simulates it under cfg.
// By default the whole pipeline streams — events flow generator →
// annotator → simulator in pooled chunks, nothing materialized; under
// Config.Materialize it runs the pre-fusion generate/annotate/replay
// pipeline instead. The two are result-identical.
//
// genGeom is the layout geometry the trace is generated at (zero selects
// the default); opt.Geometry is the annotation geometry, which PerRun
// hooks may have adjusted independently. preRun, when non-nil, runs just
// before the simulation with the processor count — the observability
// cells size their recorder with it.
func (s *Suite) runCell(ctx context.Context, cfg sim.Config, wl string, restructured bool,
	genGeom memory.Geometry, pf prefetch.Kind, opt prefetch.Options,
	preRun func(procs int, cfg *sim.Config)) (*sim.Result, error) {
	p := prefetch.ByKind(pf)
	if s.cfg.Materialize {
		t, _, err := s.traceFor(ctx, wl, restructured, genGeom)
		if err != nil {
			return nil, err
		}
		annotated, err := p.Annotate(t, opt)
		if err != nil {
			return nil, err
		}
		if preRun != nil {
			preRun(annotated.Procs(), &cfg)
		}
		return sim.RunContext(ctx, cfg, annotated)
	}
	src, _, err := s.sourceFor(ctx, wl, restructured, genGeom)
	if err != nil {
		return nil, err
	}
	var prof *trace.SharingProfile
	if opt.Strategy == prefetch.PWS || opt.ExcludeWriteShared {
		// The write-shared line set needs a whole-stream pre-pass; memoize
		// it per (trace, geometry) so the cells that share it analyze once.
		prof, err = s.traces.SharingProfile(ctx, s.traceKey(wl, restructured, genGeom), opt.Geometry, src)
		if err != nil {
			return nil, err
		}
	}
	annotated, err := p.AnnotateSource(src, opt, prof)
	if err != nil {
		return nil, err
	}
	if preRun != nil {
		preRun(annotated.Procs(), &cfg)
	}
	return sim.RunSourceContext(ctx, cfg, annotated)
}

// baseTrace returns the default-geometry trace for a workload variant.
func (s *Suite) baseTrace(ctx context.Context, name string, restructured bool) (*trace.Trace, error) {
	t, _, err := s.traceFor(ctx, name, restructured, memory.Geometry{})
	return t, err
}

// recordTimings appends pool timings for the benchmark report.
func (s *Suite) recordTimings(times []runner.Timing) {
	s.mu.Lock()
	s.timings = append(s.timings, times...)
	s.mu.Unlock()
}

// Bench assembles the benchmark report for everything the suite has executed
// through its worker pool so far. total is the end-to-end wall clock the
// caller measured around the run.
func (s *Suite) Bench(total time.Duration) *runner.BenchReport {
	s.mu.Lock()
	timings := append([]runner.Timing(nil), s.timings...)
	s.mu.Unlock()
	return runner.NewBenchReport(s.cfg.Scale, s.cfg.Seed, s.pool.Workers(),
		runtime.GOMAXPROCS(0), timings, total, s.traces)
}

// cellFailure is a memoized failed run: the final error plus how many
// attempts the retry policy spent reaching it.
type cellFailure struct {
	err      error
	attempts int
}

// Result simulates (or returns the memoized result for) one configuration.
// A failed run is memoized too: the error comes back for every table that
// needs the cell, without re-simulating, and without affecting any other
// cell.
func (s *Suite) Result(k Key) (*sim.Result, error) {
	return s.result(context.Background(), k)
}

// result is Result under a context: the sweep's cancellation (and the
// per-cell Timeout) propagate into the simulation's event loop, retryable
// failures re-run under the suite's retry budget, and completed cells are
// persisted to the checkpoint store when one is configured.
func (s *Suite) result(ctx context.Context, k Key) (*sim.Result, error) {
	s.mu.Lock()
	if r, ok := s.results[k]; ok {
		s.mu.Unlock()
		return r, nil
	}
	if f, ok := s.errs[k]; ok {
		s.mu.Unlock()
		return nil, f.err
	}
	s.mu.Unlock()

	if res, ok := s.loadCellCheckpoint(k); ok {
		s.mu.Lock()
		defer s.mu.Unlock()
		if cached, ok := s.results[k]; ok {
			return cached, nil
		}
		s.results[k] = res
		return res, nil
	}

	var res *sim.Result
	err, attempts := runner.Retry(ctx, s.retryPolicy(k.String()), func(ctx context.Context) error {
		r, rerr := s.simulate(ctx, k)
		if rerr == nil {
			res = r
		}
		return rerr
	})
	if err == nil {
		s.storeCellCheckpoint(k, res)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.results[k]; ok {
		return cached, nil
	}
	if f, ok := s.errs[k]; ok {
		return nil, f.err
	}
	if err != nil {
		if ctx == nil || ctx.Err() == nil {
			// Genuine failure: memoize it (with its attempt count) so every
			// table annotates the same cell the same way. When the sweep
			// itself was cancelled the failure is circumstantial — leave the
			// cell unmemoized so a resume recomputes it.
			s.errs[k] = cellFailure{err: err, attempts: attempts}
		}
		return nil, err
	}
	s.results[k] = res
	return res, nil
}

// retryPolicy builds the per-cell retry policy. The jitter seed mixes the
// suite seed with the cell label, so retry schedules are deterministic per
// cell but decorrelated across cells.
func (s *Suite) retryPolicy(label string) runner.Policy {
	h := fnv.New64a()
	h.Write([]byte(label))
	return runner.Policy{
		MaxAttempts: s.cfg.Retries + 1,
		Seed:        s.cfg.Seed ^ int64(h.Sum64()),
	}
}

// simulate runs one cell attempt uncached, under the per-cell timeout.
func (s *Suite) simulate(ctx context.Context, k Key) (*sim.Result, error) {
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	cfg := sim.DefaultConfig()
	cfg.Label = k.String()
	cfg.MemLatency = s.cfg.MemLatency
	cfg.TransferCycles = k.Transfer
	cfg.Protocol = s.cfg.Protocol
	cfg.Interconnect = s.cfg.Interconnect
	if s.cfg.PerRun != nil {
		s.cfg.PerRun(k, &cfg)
	}
	if s.cfg.Prefetcher.Online() {
		cfg.Online = prefetch.OnlineConfig{Kind: s.cfg.Prefetcher, Strategy: k.Strategy}
	}
	res, err := s.runCell(ctx, cfg, k.Workload, k.Restructured, memory.Geometry{},
		s.cfg.Prefetcher, prefetch.Options{Strategy: k.Strategy, Geometry: cfg.Geometry}, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: %v: %w", k, err)
	}
	return res, nil
}

// CellError records one failed suite cell.
type CellError struct {
	Key Key
	Err error
	// Attempts is how many times the cell ran before the error stuck.
	Attempts int
	// Terminal reports the error's classification (see runner.Classify):
	// terminal failures are deterministic facts about the configuration,
	// retryable ones exhausted their attempt budget.
	Terminal bool
}

// CellErrors aggregates every failed cell of a Prewarm pass. It is an error,
// but one the caller can choose to treat as a warning: each failed cell is
// memoized, the healthy cells all simulated, and the table builders annotate
// the failures in place.
type CellErrors struct {
	Cells []CellError
}

func (e *CellErrors) Error() string {
	msg := fmt.Sprintf("experiments: %d of the suite's runs failed:", len(e.Cells))
	for _, c := range e.Cells {
		class := "retryable, exhausted"
		if c.Terminal {
			class = "terminal"
		}
		msg += fmt.Sprintf("\n  %v [%s, %d attempt(s)]: %v", c.Key, class, c.Attempts, c.Err)
	}
	return msg
}

// Failures converts the cell errors to the metrics-report form.
func (e *CellErrors) Failures() []runner.CellFailure {
	out := make([]runner.CellFailure, len(e.Cells))
	for i, c := range e.Cells {
		class := runner.Retryable
		if c.Terminal {
			class = runner.Terminal
		}
		out[i] = runner.CellFailure{
			Cell:     c.Key.String(),
			Err:      c.Err.Error(),
			Attempts: c.Attempts,
			Class:    class.String(),
		}
	}
	return out
}

// Prewarm simulates the given keys in parallel on the suite's worker pool.
// Every key is attempted: a failing cell does not stop the others. When any
// cell failed, Prewarm returns a *CellErrors naming each one (in
// deterministic key order) with its attempt count and classification; the
// failures are memoized, so the table builders will annotate exactly those
// cells rather than failing outright.
//
// Cancelling ctx stops the sweep: running cells abort at the simulator's
// next cancellation poll, queued cells are skipped, and Prewarm returns
// ctx.Err() — not a CellErrors — since nothing definitive was learned about
// the skipped cells. Completed cells stay memoized (and checkpointed, when a
// store is configured), so a resumed sweep recomputes only what is missing.
//
// Concurrent cells that need the same base trace do not duplicate its
// generation: the trace cache singleflights, so the first cell generates
// while the rest wait, then all share the immutable trace. Each cell runs
// its own simulator with its own progress watchdog (sim.Config.WatchdogCycles),
// so a hung cell aborts alone.
func (s *Suite) Prewarm(ctx context.Context, keys []Key, progress func(done, total int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Deduplicate and order deterministically so error reporting is stable.
	seen := make(map[Key]bool, len(keys))
	var todo []Key
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			todo = append(todo, k)
		}
	}
	sort.Slice(todo, func(i, j int) bool { return todo[i].String() < todo[j].String() })

	tasks := make([]runner.Task, len(todo))
	for i, k := range todo {
		tasks[i] = runner.Task{Label: k.String(), Run: func(ctx context.Context) error {
			_, err := s.result(ctx, k)
			return err
		}}
	}
	errs, times := s.pool.Do(ctx, tasks, progress)
	s.recordTimings(times)
	if err := ctx.Err(); err != nil {
		return err
	}

	var failed []CellError
	s.mu.Lock()
	for i, err := range errs {
		if err == nil {
			continue
		}
		ce := CellError{Key: todo[i], Err: err, Attempts: 1,
			Terminal: runner.Classify(err) == runner.Terminal}
		if f, ok := s.errs[todo[i]]; ok {
			ce.Attempts = f.attempts
		}
		failed = append(failed, ce)
	}
	s.mu.Unlock()
	if len(failed) > 0 {
		return &CellErrors{Cells: failed}
	}
	return nil
}

// WorkloadNames returns the five paper workloads in presentation order.
func WorkloadNames() []string {
	var names []string
	for _, w := range workload.All() {
		names = append(names, w.Name)
	}
	return names
}

// GridKeys returns the (workload x strategy x transfer) grid used by
// Figures 1-2 and Table 2.
func (s *Suite) GridKeys() []Key {
	var keys []Key
	for _, wl := range WorkloadNames() {
		for _, st := range prefetch.Strategies() {
			for _, tr := range s.cfg.Transfers {
				keys = append(keys, Key{Workload: wl, Strategy: st, Transfer: tr})
			}
		}
	}
	return keys
}

// RestructuredKeys returns the runs Tables 4 and 5 need.
func (s *Suite) RestructuredKeys() []Key {
	var keys []Key
	for _, wl := range []string{"topopt", "pverify"} {
		for _, st := range []prefetch.Strategy{prefetch.NP, prefetch.PREF, prefetch.PWS} {
			for _, tr := range s.cfg.Transfers {
				keys = append(keys, Key{Workload: wl, Strategy: st, Transfer: tr, Restructured: true})
			}
		}
	}
	return keys
}
