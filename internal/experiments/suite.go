// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): workload characteristics (Table 1), miss rates under the
// five prefetching strategies (Figure 1), bus utilizations (Table 2),
// relative execution times across the memory-architecture sweep (Figure 2),
// processor utilizations (§4.2), the CPU-miss component breakdown (Figure 3),
// invalidation and false-sharing rates (Table 3), and the restructured-
// program results (Tables 4 and 5).
//
// A Suite memoizes simulation results so experiments that share runs (for
// example Figure 1, Table 2 and Figure 2 all need the strategy x transfer
// grid) simulate each configuration once. Runs are independent and execute
// in parallel across CPUs; results are deterministic regardless of
// parallelism.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"busprefetch/internal/prefetch"
	"busprefetch/internal/sim"
	"busprefetch/internal/trace"
	"busprefetch/internal/workload"
)

// Config scales and seeds the whole experiment suite.
type Config struct {
	// Scale multiplies trace lengths (1.0 = calibrated default).
	Scale float64
	// Seed seeds the workload generators.
	Seed int64
	// MemLatency is the total memory latency (paper: 100).
	MemLatency int
	// Transfers is the data-transfer sweep; nil selects the paper's
	// {4, 8, 16, 24, 32}.
	Transfers []int
	// Parallelism bounds concurrent simulations; 0 selects GOMAXPROCS.
	Parallelism int
}

// DefaultConfig returns the paper's sweep at full scale.
func DefaultConfig() Config {
	return Config{Scale: 1.0, Seed: 1, MemLatency: 100, Transfers: []int{4, 8, 16, 24, 32}}
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MemLatency == 0 {
		c.MemLatency = 100
	}
	if len(c.Transfers) == 0 {
		c.Transfers = []int{4, 8, 16, 24, 32}
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Key identifies one simulation run.
type Key struct {
	Workload     string
	Strategy     prefetch.Strategy
	Transfer     int
	Restructured bool
}

func (k Key) String() string {
	r := ""
	if k.Restructured {
		r = " restructured"
	}
	return fmt.Sprintf("%s/%s/T=%d%s", k.Workload, k.Strategy, k.Transfer, r)
}

// Suite runs and memoizes simulations.
type Suite struct {
	cfg Config

	mu      sync.Mutex
	results map[Key]*sim.Result
	infos   map[string]workload.Info
	traces  map[traceKey]*trace.Trace
}

type traceKey struct {
	workload     string
	restructured bool
}

// NewSuite creates a suite with the given configuration.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		cfg:     cfg.withDefaults(),
		results: make(map[Key]*sim.Result),
		infos:   make(map[string]workload.Info),
		traces:  make(map[traceKey]*trace.Trace),
	}
}

// Config returns the suite's effective configuration.
func (s *Suite) Config() Config { return s.cfg }

// Info returns the Table 1 metadata for a workload, generating its trace if
// needed.
func (s *Suite) Info(name string) (workload.Info, error) {
	if _, err := s.baseTrace(name, false); err != nil {
		return workload.Info{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.infos[name], nil
}

// baseTrace returns (generating and caching on first use) the unannotated
// trace for a workload variant.
func (s *Suite) baseTrace(name string, restructured bool) (*trace.Trace, error) {
	s.mu.Lock()
	if t, ok := s.traces[traceKey{name, restructured}]; ok {
		s.mu.Unlock()
		return t, nil
	}
	s.mu.Unlock()

	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	t, info, err := w.Generate(workload.Params{Scale: s.cfg.Scale, Seed: s.cfg.Seed, Restructured: restructured})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.traces[traceKey{name, restructured}]; ok {
		return cached, nil
	}
	s.traces[traceKey{name, restructured}] = t
	if !restructured {
		s.infos[name] = info
	}
	return t, nil
}

// Result simulates (or returns the memoized result for) one configuration.
func (s *Suite) Result(k Key) (*sim.Result, error) {
	s.mu.Lock()
	if r, ok := s.results[k]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	base, err := s.baseTrace(k.Workload, k.Restructured)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig()
	cfg.MemLatency = s.cfg.MemLatency
	cfg.TransferCycles = k.Transfer
	annotated, err := prefetch.Annotate(base, prefetch.Options{Strategy: k.Strategy, Geometry: cfg.Geometry})
	if err != nil {
		return nil, fmt.Errorf("experiments: annotating %v: %w", k, err)
	}
	res, err := sim.Run(cfg, annotated)
	if err != nil {
		return nil, fmt.Errorf("experiments: simulating %v: %w", k, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.results[k]; ok {
		return cached, nil
	}
	s.results[k] = res
	return res, nil
}

// Prewarm simulates the given keys in parallel, bounded by the configured
// parallelism. The first error (in deterministic key order) is returned.
func (s *Suite) Prewarm(keys []Key, progress func(done, total int)) error {
	// Deduplicate and order deterministically so error reporting is stable.
	seen := make(map[Key]bool, len(keys))
	var todo []Key
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			todo = append(todo, k)
		}
	}
	sort.Slice(todo, func(i, j int) bool { return todo[i].String() < todo[j].String() })

	// Generate base traces serially first: concurrent generation of the
	// same trace would waste work.
	for _, k := range todo {
		if _, err := s.baseTrace(k.Workload, k.Restructured); err != nil {
			return err
		}
	}

	sem := make(chan struct{}, s.cfg.Parallelism)
	errs := make([]error, len(todo))
	var wg sync.WaitGroup
	var done int
	var progressMu sync.Mutex
	for i, k := range todo {
		wg.Add(1)
		go func(i int, k Key) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, errs[i] = s.Result(k)
			if progress != nil {
				progressMu.Lock()
				done++
				progress(done, len(todo))
				progressMu.Unlock()
			}
		}(i, k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// WorkloadNames returns the five paper workloads in presentation order.
func WorkloadNames() []string {
	var names []string
	for _, w := range workload.All() {
		names = append(names, w.Name)
	}
	return names
}

// GridKeys returns the (workload x strategy x transfer) grid used by
// Figures 1-2 and Table 2.
func (s *Suite) GridKeys() []Key {
	var keys []Key
	for _, wl := range WorkloadNames() {
		for _, st := range prefetch.Strategies() {
			for _, tr := range s.cfg.Transfers {
				keys = append(keys, Key{Workload: wl, Strategy: st, Transfer: tr})
			}
		}
	}
	return keys
}

// RestructuredKeys returns the runs Tables 4 and 5 need.
func (s *Suite) RestructuredKeys() []Key {
	var keys []Key
	for _, wl := range []string{"topopt", "pverify"} {
		for _, st := range []prefetch.Strategy{prefetch.NP, prefetch.PREF, prefetch.PWS} {
			for _, tr := range s.cfg.Transfers {
				keys = append(keys, Key{Workload: wl, Strategy: st, Transfer: tr, Restructured: true})
			}
		}
	}
	return keys
}
