package experiments

import (
	"context"
	"fmt"

	"busprefetch/internal/memory"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/report"
	"busprefetch/internal/sim"
	"busprefetch/internal/trace"
)

// Tables and figures isolate failures per cell: a run that errors (a
// poisoned configuration, an injected fault, a generation bug) produces a
// row whose Err field carries the diagnosis, and every other cell still
// computes. The renderers print failed cells as "—" and append the error
// beneath the table, so one bad configuration cannot take the whole report
// down.

// errNotes appends per-cell failure annotations beneath a rendered table.
func errNotes(body string, notes []string) string {
	for _, n := range notes {
		body += "  ! " + n + "\n"
	}
	return body
}

// Table1Row describes one workload (paper Table 1).
type Table1Row struct {
	Workload    string
	Description string
	DataSetKB   float64
	SharedKB    float64
	Processes   int
	RefsPerProc int
	// Err is non-empty when the workload failed to generate; the other
	// fields are then zero.
	Err string
}

// Table1 reproduces the paper's workload-characteristics table.
func (s *Suite) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range WorkloadNames() {
		info, err := s.Info(name)
		if err != nil {
			rows = append(rows, Table1Row{Workload: name, Err: err.Error()})
			continue
		}
		refsPerProc, err := s.refsPerProc(name)
		if err != nil {
			rows = append(rows, Table1Row{Workload: name, Err: err.Error()})
			continue
		}
		rows = append(rows, Table1Row{
			Workload:    name,
			Description: info.Description,
			DataSetKB:   float64(info.DataSet) / 1024,
			SharedKB:    float64(info.SharedData) / 1024,
			Processes:   info.Procs,
			RefsPerProc: refsPerProc,
		})
	}
	return rows, nil
}

// refsPerProc counts a workload's demand references per processor. The
// streaming default drains the source once without materializing the trace;
// Materialize reads the count off the cached trace.
func (s *Suite) refsPerProc(name string) (int, error) {
	if s.cfg.Materialize {
		t, err := s.baseTrace(context.Background(), name, false)
		if err != nil {
			return 0, err
		}
		return t.DemandRefs() / t.Procs(), nil
	}
	src, _, err := s.sourceFor(context.Background(), name, false, memory.Geometry{})
	if err != nil {
		return 0, err
	}
	_, demand, err := trace.CountEvents(src)
	if err != nil {
		return 0, err
	}
	return demand / src.Procs(), nil
}

// RenderTable1 formats Table 1.
func RenderTable1(rows []Table1Row) string {
	t := report.NewTable("Table 1: Workload used in experiments",
		"Program", "Data Set (KB)", "Shared Data (KB)", "Processes", "Refs/Proc")
	var notes []string
	for _, r := range rows {
		if r.Err != "" {
			t.AddRow(r.Workload, "—", "—", "—", "—")
			notes = append(notes, r.Workload+": "+r.Err)
			continue
		}
		t.AddRow(r.Workload, fmt.Sprintf("%.0f", r.DataSetKB), fmt.Sprintf("%.0f", r.SharedKB),
			r.Processes, r.RefsPerProc)
	}
	return errNotes(t.String(), notes)
}

// Figure1Row holds the miss rates of one (workload, strategy) cell of the
// paper's Figure 1 (measured at the 8-cycle transfer latency, as the paper
// plots).
type Figure1Row struct {
	Workload string
	Strategy prefetch.Strategy
	TotalMR  float64
	CPUMR    float64
	AdjMR    float64
	// Err is non-empty when this cell's run failed.
	Err string
}

// Figure1 reproduces the total / CPU / adjusted-CPU miss-rate chart.
func (s *Suite) Figure1() ([]Figure1Row, error) {
	var rows []Figure1Row
	for _, wl := range WorkloadNames() {
		for _, st := range prefetch.Strategies() {
			res, err := s.Result(Key{Workload: wl, Strategy: st, Transfer: 8})
			if err != nil {
				rows = append(rows, Figure1Row{Workload: wl, Strategy: st, Err: err.Error()})
				continue
			}
			rows = append(rows, Figure1Row{
				Workload: wl,
				Strategy: st,
				TotalMR:  res.TotalMissRate(),
				CPUMR:    res.CPUMissRate(),
				AdjMR:    res.AdjustedCPUMissRate(),
			})
		}
	}
	return rows, nil
}

// RenderFigure1 formats Figure 1 as a table.
func RenderFigure1(rows []Figure1Row) string {
	t := report.NewTable("Figure 1: Total and CPU miss rates (8-cycle data transfer)",
		"Workload", "Strategy", "Total MR", "CPU MR", "Adjusted CPU MR")
	var notes []string
	for _, r := range rows {
		if r.Err != "" {
			t.AddRow(r.Workload, r.Strategy.String(), "—", "—", "—")
			notes = append(notes, fmt.Sprintf("%s/%s: %s", r.Workload, r.Strategy, r.Err))
			continue
		}
		t.AddRow(r.Workload, r.Strategy.String(),
			fmt.Sprintf("%.4f", r.TotalMR), fmt.Sprintf("%.4f", r.CPUMR), fmt.Sprintf("%.4f", r.AdjMR))
	}
	return errNotes(t.String(), notes)
}

// Table2Row is one bus-utilization cell.
type Table2Row struct {
	Workload string
	Strategy prefetch.Strategy
	Transfer int
	BusUtil  float64
	// Err is non-empty when this cell's run failed.
	Err string
}

// Table2 reproduces the selected bus utilizations (the paper reports
// transfers 4, 8, 16 and 32).
func (s *Suite) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, wl := range WorkloadNames() {
		for _, st := range prefetch.Strategies() {
			for _, tr := range []int{4, 8, 16, 32} {
				res, err := s.Result(Key{Workload: wl, Strategy: st, Transfer: tr})
				if err != nil {
					rows = append(rows, Table2Row{Workload: wl, Strategy: st, Transfer: tr, Err: err.Error()})
					continue
				}
				rows = append(rows, Table2Row{Workload: wl, Strategy: st, Transfer: tr, BusUtil: res.BusUtilization()})
			}
		}
	}
	return rows, nil
}

// RenderTable2 formats Table 2 with one row per (workload, strategy).
func RenderTable2(rows []Table2Row) string {
	t := report.NewTable("Table 2: Selected bus utilizations",
		"Workload", "Strategy", "4 cycles", "8 cycles", "16 cycles", "32 cycles")
	type key struct {
		wl string
		st prefetch.Strategy
	}
	cells := map[key]map[int]string{}
	var order []key
	var notes []string
	for _, r := range rows {
		k := key{r.Workload, r.Strategy}
		if cells[k] == nil {
			cells[k] = map[int]string{}
			order = append(order, k)
		}
		if r.Err != "" {
			cells[k][r.Transfer] = "—"
			notes = append(notes, fmt.Sprintf("%s/%s/T=%d: %s", r.Workload, r.Strategy, r.Transfer, r.Err))
			continue
		}
		cells[k][r.Transfer] = fmt.Sprintf("%.2f", r.BusUtil)
	}
	for _, k := range order {
		t.AddRow(k.wl, k.st.String(), cells[k][4], cells[k][8], cells[k][16], cells[k][32])
	}
	return errNotes(t.String(), notes)
}

// Figure2Row is one point of the execution-time chart: execution time of a
// strategy relative to NP at the same transfer latency.
type Figure2Row struct {
	Workload string
	Strategy prefetch.Strategy
	Transfer int
	RelTime  float64
	// Err is non-empty when this cell's run — or its NP baseline — failed.
	Err string
}

// Figure2 reproduces the relative-execution-time curves for the four
// prefetching strategies over the data-bus latency sweep.
func (s *Suite) Figure2() ([]Figure2Row, error) {
	var rows []Figure2Row
	for _, wl := range WorkloadNames() {
		np := make(map[int]uint64)
		npErr := make(map[int]string)
		for _, tr := range s.cfg.Transfers {
			res, err := s.Result(Key{Workload: wl, Strategy: prefetch.NP, Transfer: tr})
			if err != nil {
				npErr[tr] = fmt.Sprintf("NP baseline failed: %v", err)
				continue
			}
			np[tr] = res.Cycles
		}
		for _, st := range prefetch.Strategies() {
			if st == prefetch.NP {
				continue
			}
			for _, tr := range s.cfg.Transfers {
				if msg, bad := npErr[tr]; bad {
					rows = append(rows, Figure2Row{Workload: wl, Strategy: st, Transfer: tr, Err: msg})
					continue
				}
				res, err := s.Result(Key{Workload: wl, Strategy: st, Transfer: tr})
				if err != nil {
					rows = append(rows, Figure2Row{Workload: wl, Strategy: st, Transfer: tr, Err: err.Error()})
					continue
				}
				if np[tr] == 0 {
					// A degenerate (empty) trace finishes in zero cycles;
					// dividing by it would put NaN in the chart.
					rows = append(rows, Figure2Row{Workload: wl, Strategy: st, Transfer: tr,
						Err: "NP baseline ran 0 cycles"})
					continue
				}
				rows = append(rows, Figure2Row{
					Workload: wl, Strategy: st, Transfer: tr,
					RelTime: float64(res.Cycles) / float64(np[tr]),
				})
			}
		}
	}
	return rows, nil
}

// RenderFigure2 formats Figure 2 as one chart per workload. A workload with
// any failed cell is reported as a note instead of a misleading partial
// chart.
func RenderFigure2(rows []Figure2Row, transfers []int) string {
	out := ""
	for _, wl := range WorkloadNames() {
		var notes []string
		for _, r := range rows {
			if r.Workload == wl && r.Err != "" {
				notes = append(notes, fmt.Sprintf("%s/%s/T=%d: %s", r.Workload, r.Strategy, r.Transfer, r.Err))
			}
		}
		if len(notes) > 0 {
			out += errNotes(fmt.Sprintf("Figure 2 (%s): omitted, cells failed\n", wl), notes) + "\n"
			continue
		}
		chart := &report.Chart{
			Title:  fmt.Sprintf("Figure 2 (%s): execution time relative to NP vs data-bus latency", wl),
			XLabel: "T cycles",
		}
		for _, tr := range transfers {
			chart.XTicks = append(chart.XTicks, fmt.Sprintf("%d", tr))
		}
		for _, st := range prefetch.Strategies() {
			if st == prefetch.NP {
				continue
			}
			ser := report.Series{Name: st.String()}
			for _, tr := range transfers {
				for _, r := range rows {
					if r.Workload == wl && r.Strategy == st && r.Transfer == tr {
						ser.Points = append(ser.Points, r.RelTime)
					}
				}
			}
			chart.Series = append(chart.Series, ser)
		}
		out += chart.String() + "\n"
	}
	return out
}

// UtilizationRow reports a workload's NP processor utilization at the
// fastest and slowest bus (paper §4.2).
type UtilizationRow struct {
	Workload string
	FastBus  float64 // transfer = 4
	SlowBus  float64 // transfer = 32
	// MaxSpeedup is the bound 1/utilization at the fast bus — "the best any
	// memory-latency hiding technique can do".
	MaxSpeedup float64
	// Err is non-empty when either of the workload's runs failed.
	Err string
}

// Utilization reproduces the processor-utilization discussion of §4.2.
func (s *Suite) Utilization() ([]UtilizationRow, error) {
	var rows []UtilizationRow
	for _, wl := range WorkloadNames() {
		fast, err := s.Result(Key{Workload: wl, Strategy: prefetch.NP, Transfer: 4})
		if err != nil {
			rows = append(rows, UtilizationRow{Workload: wl, Err: err.Error()})
			continue
		}
		slow, err := s.Result(Key{Workload: wl, Strategy: prefetch.NP, Transfer: 32})
		if err != nil {
			rows = append(rows, UtilizationRow{Workload: wl, Err: err.Error()})
			continue
		}
		u := fast.MeanProcUtilization()
		max := 0.0
		if u > 0 {
			max = 1 / u
		}
		rows = append(rows, UtilizationRow{
			Workload: wl, FastBus: u, SlowBus: slow.MeanProcUtilization(), MaxSpeedup: max,
		})
	}
	return rows, nil
}

// RenderUtilization formats the §4.2 utilization summary.
func RenderUtilization(rows []UtilizationRow) string {
	t := report.NewTable("Processor utilization without prefetching (§4.2)",
		"Workload", "Fast bus (T=4)", "Slow bus (T=32)", "Max possible speedup")
	var notes []string
	for _, r := range rows {
		if r.Err != "" {
			t.AddRow(r.Workload, "—", "—", "—")
			notes = append(notes, r.Workload+": "+r.Err)
			continue
		}
		t.AddRow(r.Workload, fmt.Sprintf("%.2f", r.FastBus), fmt.Sprintf("%.2f", r.SlowBus),
			fmt.Sprintf("%.1f", r.MaxSpeedup))
	}
	return errNotes(t.String(), notes)
}

// Figure3Row is the CPU-miss component breakdown of one (workload, strategy)
// bar of the paper's Figure 3.
type Figure3Row struct {
	Workload string
	Strategy prefetch.Strategy
	// Components holds per-class miss rates (misses per demand reference),
	// indexed by sim.MissClass.
	Components [sim.NumMissClasses]float64
	// Err is non-empty when this cell's run failed.
	Err string
}

// Figure3Workloads lists the workloads the paper breaks down in Figure 3.
func Figure3Workloads() []string { return []string{"topopt", "pverify", "mp3d"} }

// Figure3 reproduces the miss-component stacks at the 8-cycle transfer.
func (s *Suite) Figure3() ([]Figure3Row, error) {
	var rows []Figure3Row
	for _, wl := range Figure3Workloads() {
		for _, st := range prefetch.Strategies() {
			res, err := s.Result(Key{Workload: wl, Strategy: st, Transfer: 8})
			if err != nil {
				rows = append(rows, Figure3Row{Workload: wl, Strategy: st, Err: err.Error()})
				continue
			}
			row := Figure3Row{Workload: wl, Strategy: st}
			for m := sim.MissClass(0); m < sim.NumMissClasses; m++ {
				row.Components[m] = res.MissClassRate(m)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderFigure3 formats Figure 3 as a table of stacked components.
func RenderFigure3(rows []Figure3Row) string {
	t := report.NewTable("Figure 3: Sources of CPU misses (8-cycle data transfer; rates per demand reference)",
		"Workload", "Strategy",
		"non-sharing !pf", "inval !pf", "non-sharing pf", "inval pf", "pf-in-progress", "total")
	var notes []string
	for _, r := range rows {
		if r.Err != "" {
			t.AddRow(r.Workload, r.Strategy.String(), "—", "—", "—", "—", "—", "—")
			notes = append(notes, fmt.Sprintf("%s/%s: %s", r.Workload, r.Strategy, r.Err))
			continue
		}
		total := 0.0
		for _, v := range r.Components {
			total += v
		}
		t.AddRow(r.Workload, r.Strategy.String(),
			fmt.Sprintf("%.4f", r.Components[sim.NonSharingNotPref]),
			fmt.Sprintf("%.4f", r.Components[sim.InvalNotPref]),
			fmt.Sprintf("%.4f", r.Components[sim.NonSharingPref]),
			fmt.Sprintf("%.4f", r.Components[sim.InvalPref]),
			fmt.Sprintf("%.4f", r.Components[sim.PrefetchInProgress]),
			fmt.Sprintf("%.4f", total))
	}
	return errNotes(t.String(), notes)
}

// Table3Row reports a workload's invalidation and false-sharing miss rates
// without prefetching.
type Table3Row struct {
	Workload     string
	InvalMR      float64
	FalseShareMR float64
	// FSShare is the fraction of invalidation misses that are false sharing.
	FSShare float64
	// Err is non-empty when this cell's run failed.
	Err string
}

// Table3 reproduces the total invalidation and false-sharing miss rates.
func (s *Suite) Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, wl := range WorkloadNames() {
		res, err := s.Result(Key{Workload: wl, Strategy: prefetch.NP, Transfer: 8})
		if err != nil {
			rows = append(rows, Table3Row{Workload: wl, Err: err.Error()})
			continue
		}
		row := Table3Row{
			Workload:     wl,
			InvalMR:      res.InvalidationMissRate(),
			FalseShareMR: res.FalseSharingMissRate(),
		}
		if row.InvalMR > 0 {
			row.FSShare = row.FalseShareMR / row.InvalMR
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable3 formats Table 3.
func RenderTable3(rows []Table3Row) string {
	t := report.NewTable("Table 3: Total invalidation and false sharing miss rates (NP, 8-cycle transfer)",
		"Workload", "Total Invalidation MR", "Total False Sharing MR", "FS share of inval")
	var notes []string
	for _, r := range rows {
		if r.Err != "" {
			t.AddRow(r.Workload, "—", "—", "—")
			notes = append(notes, r.Workload+": "+r.Err)
			continue
		}
		t.AddRow(r.Workload, fmt.Sprintf("%.4f", r.InvalMR), fmt.Sprintf("%.4f", r.FalseShareMR),
			fmt.Sprintf("%.0f%%", 100*r.FSShare))
	}
	return errNotes(t.String(), notes)
}

// Table4Row reports miss rates for a restructured program under one
// prefetch discipline at the 8-cycle transfer.
type Table4Row struct {
	Workload     string
	Strategy     prefetch.Strategy
	Restructured bool
	CPUMR        float64
	TotalMR      float64
	InvalMR      float64
	FalseShareMR float64
	// Err is non-empty when this cell's run failed.
	Err string
}

// Table4 reproduces the restructured-program miss rates, with the original
// layouts included for comparison.
func (s *Suite) Table4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, wl := range []string{"topopt", "pverify"} {
		for _, restr := range []bool{false, true} {
			for _, st := range []prefetch.Strategy{prefetch.NP, prefetch.PREF, prefetch.PWS} {
				res, err := s.Result(Key{Workload: wl, Strategy: st, Transfer: 8, Restructured: restr})
				if err != nil {
					rows = append(rows, Table4Row{Workload: wl, Strategy: st, Restructured: restr, Err: err.Error()})
					continue
				}
				rows = append(rows, Table4Row{
					Workload: wl, Strategy: st, Restructured: restr,
					CPUMR:        res.CPUMissRate(),
					TotalMR:      res.TotalMissRate(),
					InvalMR:      res.InvalidationMissRate(),
					FalseShareMR: res.FalseSharingMissRate(),
				})
			}
		}
	}
	return rows, nil
}

// RenderTable4 formats Table 4.
func RenderTable4(rows []Table4Row) string {
	t := report.NewTable("Table 4: Miss rates for restructured programs (8-cycle transfer)",
		"Workload", "Layout", "Strategy", "CPU MR", "Total MR", "Total Inval MR", "Total FS MR")
	var notes []string
	for _, r := range rows {
		layout := "original"
		if r.Restructured {
			layout = "restructured"
		}
		if r.Err != "" {
			t.AddRow(r.Workload, layout, r.Strategy.String(), "—", "—", "—", "—")
			notes = append(notes, fmt.Sprintf("%s/%s/%s: %s", r.Workload, layout, r.Strategy, r.Err))
			continue
		}
		t.AddRow(r.Workload, layout, r.Strategy.String(),
			fmt.Sprintf("%.4f", r.CPUMR), fmt.Sprintf("%.4f", r.TotalMR),
			fmt.Sprintf("%.4f", r.InvalMR), fmt.Sprintf("%.4f", r.FalseShareMR))
	}
	return errNotes(t.String(), notes)
}

// Table5Row reports a restructured program's execution time relative to its
// own NP run at the same transfer latency.
type Table5Row struct {
	Workload string
	Strategy prefetch.Strategy
	Transfer int
	RelTime  float64
	// Err is non-empty when this cell's run — or its NP baseline — failed.
	Err string
}

// Table5 reproduces the relative execution times for the restructured
// programs over the transfer sweep.
func (s *Suite) Table5() ([]Table5Row, error) {
	var rows []Table5Row
	for _, wl := range []string{"topopt", "pverify"} {
		np := map[int]uint64{}
		npErr := map[int]string{}
		for _, tr := range s.cfg.Transfers {
			res, err := s.Result(Key{Workload: wl, Strategy: prefetch.NP, Transfer: tr, Restructured: true})
			if err != nil {
				npErr[tr] = fmt.Sprintf("NP baseline failed: %v", err)
				continue
			}
			np[tr] = res.Cycles
		}
		for _, st := range []prefetch.Strategy{prefetch.PREF, prefetch.PWS} {
			for _, tr := range s.cfg.Transfers {
				if msg, bad := npErr[tr]; bad {
					rows = append(rows, Table5Row{Workload: wl, Strategy: st, Transfer: tr, Err: msg})
					continue
				}
				res, err := s.Result(Key{Workload: wl, Strategy: st, Transfer: tr, Restructured: true})
				if err != nil {
					rows = append(rows, Table5Row{Workload: wl, Strategy: st, Transfer: tr, Err: err.Error()})
					continue
				}
				if np[tr] == 0 {
					// Same guard as Figure2: never divide by a zero-cycle
					// baseline.
					rows = append(rows, Table5Row{Workload: wl, Strategy: st, Transfer: tr,
						Err: "NP baseline ran 0 cycles"})
					continue
				}
				rows = append(rows, Table5Row{Workload: wl, Strategy: st, Transfer: tr,
					RelTime: float64(res.Cycles) / float64(np[tr])})
			}
		}
	}
	return rows, nil
}

// RenderTable5 formats Table 5.
func RenderTable5(rows []Table5Row, transfers []int) string {
	headers := []string{"Workload", "Strategy"}
	for _, tr := range transfers {
		headers = append(headers, fmt.Sprintf("T=%d", tr))
	}
	t := report.NewTable("Table 5: Relative execution times for restructured programs", headers...)
	type key struct {
		wl string
		st prefetch.Strategy
	}
	cells := map[key]map[int]string{}
	var order []key
	var notes []string
	for _, r := range rows {
		k := key{r.Workload, r.Strategy}
		if cells[k] == nil {
			cells[k] = map[int]string{}
			order = append(order, k)
		}
		if r.Err != "" {
			cells[k][r.Transfer] = "—"
			notes = append(notes, fmt.Sprintf("%s/%s/T=%d: %s", r.Workload, r.Strategy, r.Transfer, r.Err))
			continue
		}
		cells[k][r.Transfer] = fmt.Sprintf("%.3f", r.RelTime)
	}
	for _, k := range order {
		row := []interface{}{k.wl, k.st.String()}
		for _, tr := range transfers {
			row = append(row, cells[k][tr])
		}
		t.AddRow(row...)
	}
	return errNotes(t.String(), notes)
}

// SharingSummary summarizes a workload's sharing profile (supporting data
// for Table 1 and DESIGN.md).
func (s *Suite) SharingSummary(name string) (trace.Stats, error) {
	if s.cfg.Materialize {
		t, err := s.baseTrace(context.Background(), name, false)
		if err != nil {
			return trace.Stats{}, err
		}
		return trace.Summarize(t, memory.DefaultGeometry()), nil
	}
	src, _, err := s.sourceFor(context.Background(), name, false, memory.Geometry{})
	if err != nil {
		return trace.Stats{}, err
	}
	return trace.SummarizeSource(src, memory.DefaultGeometry())
}
