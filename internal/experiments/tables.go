package experiments

import (
	"fmt"

	"busprefetch/internal/memory"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/report"
	"busprefetch/internal/sim"
	"busprefetch/internal/trace"
)

// Table1Row describes one workload (paper Table 1).
type Table1Row struct {
	Workload    string
	Description string
	DataSetKB   float64
	SharedKB    float64
	Processes   int
	RefsPerProc int
}

// Table1 reproduces the paper's workload-characteristics table.
func (s *Suite) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range WorkloadNames() {
		info, err := s.Info(name)
		if err != nil {
			return nil, err
		}
		t, err := s.baseTrace(name, false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Workload:    name,
			Description: info.Description,
			DataSetKB:   float64(info.DataSet) / 1024,
			SharedKB:    float64(info.SharedData) / 1024,
			Processes:   info.Procs,
			RefsPerProc: t.DemandRefs() / t.Procs(),
		})
	}
	return rows, nil
}

// RenderTable1 formats Table 1.
func RenderTable1(rows []Table1Row) string {
	t := report.NewTable("Table 1: Workload used in experiments",
		"Program", "Data Set (KB)", "Shared Data (KB)", "Processes", "Refs/Proc")
	for _, r := range rows {
		t.AddRow(r.Workload, fmt.Sprintf("%.0f", r.DataSetKB), fmt.Sprintf("%.0f", r.SharedKB),
			r.Processes, r.RefsPerProc)
	}
	return t.String()
}

// Figure1Row holds the miss rates of one (workload, strategy) cell of the
// paper's Figure 1 (measured at the 8-cycle transfer latency, as the paper
// plots).
type Figure1Row struct {
	Workload string
	Strategy prefetch.Strategy
	TotalMR  float64
	CPUMR    float64
	AdjMR    float64
}

// Figure1 reproduces the total / CPU / adjusted-CPU miss-rate chart.
func (s *Suite) Figure1() ([]Figure1Row, error) {
	var rows []Figure1Row
	for _, wl := range WorkloadNames() {
		for _, st := range prefetch.Strategies() {
			res, err := s.Result(Key{Workload: wl, Strategy: st, Transfer: 8})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Figure1Row{
				Workload: wl,
				Strategy: st,
				TotalMR:  res.TotalMissRate(),
				CPUMR:    res.CPUMissRate(),
				AdjMR:    res.AdjustedCPUMissRate(),
			})
		}
	}
	return rows, nil
}

// RenderFigure1 formats Figure 1 as a table.
func RenderFigure1(rows []Figure1Row) string {
	t := report.NewTable("Figure 1: Total and CPU miss rates (8-cycle data transfer)",
		"Workload", "Strategy", "Total MR", "CPU MR", "Adjusted CPU MR")
	for _, r := range rows {
		t.AddRow(r.Workload, r.Strategy.String(),
			fmt.Sprintf("%.4f", r.TotalMR), fmt.Sprintf("%.4f", r.CPUMR), fmt.Sprintf("%.4f", r.AdjMR))
	}
	return t.String()
}

// Table2Row is one bus-utilization cell.
type Table2Row struct {
	Workload string
	Strategy prefetch.Strategy
	Transfer int
	BusUtil  float64
}

// Table2 reproduces the selected bus utilizations (the paper reports
// transfers 4, 8, 16 and 32).
func (s *Suite) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, wl := range WorkloadNames() {
		for _, st := range prefetch.Strategies() {
			for _, tr := range []int{4, 8, 16, 32} {
				res, err := s.Result(Key{Workload: wl, Strategy: st, Transfer: tr})
				if err != nil {
					return nil, err
				}
				rows = append(rows, Table2Row{Workload: wl, Strategy: st, Transfer: tr, BusUtil: res.BusUtilization()})
			}
		}
	}
	return rows, nil
}

// RenderTable2 formats Table 2 with one row per (workload, strategy).
func RenderTable2(rows []Table2Row) string {
	t := report.NewTable("Table 2: Selected bus utilizations",
		"Workload", "Strategy", "4 cycles", "8 cycles", "16 cycles", "32 cycles")
	type key struct {
		wl string
		st prefetch.Strategy
	}
	cells := map[key]map[int]float64{}
	var order []key
	for _, r := range rows {
		k := key{r.Workload, r.Strategy}
		if cells[k] == nil {
			cells[k] = map[int]float64{}
			order = append(order, k)
		}
		cells[k][r.Transfer] = r.BusUtil
	}
	for _, k := range order {
		t.AddRow(k.wl, k.st.String(),
			fmt.Sprintf("%.2f", cells[k][4]), fmt.Sprintf("%.2f", cells[k][8]),
			fmt.Sprintf("%.2f", cells[k][16]), fmt.Sprintf("%.2f", cells[k][32]))
	}
	return t.String()
}

// Figure2Row is one point of the execution-time chart: execution time of a
// strategy relative to NP at the same transfer latency.
type Figure2Row struct {
	Workload string
	Strategy prefetch.Strategy
	Transfer int
	RelTime  float64
}

// Figure2 reproduces the relative-execution-time curves for the four
// prefetching strategies over the data-bus latency sweep.
func (s *Suite) Figure2() ([]Figure2Row, error) {
	var rows []Figure2Row
	for _, wl := range WorkloadNames() {
		np := make(map[int]uint64)
		for _, tr := range s.cfg.Transfers {
			res, err := s.Result(Key{Workload: wl, Strategy: prefetch.NP, Transfer: tr})
			if err != nil {
				return nil, err
			}
			np[tr] = res.Cycles
		}
		for _, st := range prefetch.Strategies() {
			if st == prefetch.NP {
				continue
			}
			for _, tr := range s.cfg.Transfers {
				res, err := s.Result(Key{Workload: wl, Strategy: st, Transfer: tr})
				if err != nil {
					return nil, err
				}
				rows = append(rows, Figure2Row{
					Workload: wl, Strategy: st, Transfer: tr,
					RelTime: float64(res.Cycles) / float64(np[tr]),
				})
			}
		}
	}
	return rows, nil
}

// RenderFigure2 formats Figure 2 as one chart per workload.
func RenderFigure2(rows []Figure2Row, transfers []int) string {
	out := ""
	for _, wl := range WorkloadNames() {
		chart := &report.Chart{
			Title:  fmt.Sprintf("Figure 2 (%s): execution time relative to NP vs data-bus latency", wl),
			XLabel: "T cycles",
		}
		for _, tr := range transfers {
			chart.XTicks = append(chart.XTicks, fmt.Sprintf("%d", tr))
		}
		for _, st := range prefetch.Strategies() {
			if st == prefetch.NP {
				continue
			}
			ser := report.Series{Name: st.String()}
			for _, tr := range transfers {
				for _, r := range rows {
					if r.Workload == wl && r.Strategy == st && r.Transfer == tr {
						ser.Points = append(ser.Points, r.RelTime)
					}
				}
			}
			chart.Series = append(chart.Series, ser)
		}
		out += chart.String() + "\n"
	}
	return out
}

// UtilizationRow reports a workload's NP processor utilization at the
// fastest and slowest bus (paper §4.2).
type UtilizationRow struct {
	Workload string
	FastBus  float64 // transfer = 4
	SlowBus  float64 // transfer = 32
	// MaxSpeedup is the bound 1/utilization at the fast bus — "the best any
	// memory-latency hiding technique can do".
	MaxSpeedup float64
}

// Utilization reproduces the processor-utilization discussion of §4.2.
func (s *Suite) Utilization() ([]UtilizationRow, error) {
	var rows []UtilizationRow
	for _, wl := range WorkloadNames() {
		fast, err := s.Result(Key{Workload: wl, Strategy: prefetch.NP, Transfer: 4})
		if err != nil {
			return nil, err
		}
		slow, err := s.Result(Key{Workload: wl, Strategy: prefetch.NP, Transfer: 32})
		if err != nil {
			return nil, err
		}
		u := fast.MeanProcUtilization()
		max := 0.0
		if u > 0 {
			max = 1 / u
		}
		rows = append(rows, UtilizationRow{
			Workload: wl, FastBus: u, SlowBus: slow.MeanProcUtilization(), MaxSpeedup: max,
		})
	}
	return rows, nil
}

// RenderUtilization formats the §4.2 utilization summary.
func RenderUtilization(rows []UtilizationRow) string {
	t := report.NewTable("Processor utilization without prefetching (§4.2)",
		"Workload", "Fast bus (T=4)", "Slow bus (T=32)", "Max possible speedup")
	for _, r := range rows {
		t.AddRow(r.Workload, fmt.Sprintf("%.2f", r.FastBus), fmt.Sprintf("%.2f", r.SlowBus),
			fmt.Sprintf("%.1f", r.MaxSpeedup))
	}
	return t.String()
}

// Figure3Row is the CPU-miss component breakdown of one (workload, strategy)
// bar of the paper's Figure 3.
type Figure3Row struct {
	Workload string
	Strategy prefetch.Strategy
	// Components holds per-class miss rates (misses per demand reference),
	// indexed by sim.MissClass.
	Components [sim.NumMissClasses]float64
}

// Figure3Workloads lists the workloads the paper breaks down in Figure 3.
func Figure3Workloads() []string { return []string{"topopt", "pverify", "mp3d"} }

// Figure3 reproduces the miss-component stacks at the 8-cycle transfer.
func (s *Suite) Figure3() ([]Figure3Row, error) {
	var rows []Figure3Row
	for _, wl := range Figure3Workloads() {
		for _, st := range prefetch.Strategies() {
			res, err := s.Result(Key{Workload: wl, Strategy: st, Transfer: 8})
			if err != nil {
				return nil, err
			}
			row := Figure3Row{Workload: wl, Strategy: st}
			for m := sim.MissClass(0); m < sim.NumMissClasses; m++ {
				row.Components[m] = res.MissClassRate(m)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderFigure3 formats Figure 3 as a table of stacked components.
func RenderFigure3(rows []Figure3Row) string {
	t := report.NewTable("Figure 3: Sources of CPU misses (8-cycle data transfer; rates per demand reference)",
		"Workload", "Strategy",
		"non-sharing !pf", "inval !pf", "non-sharing pf", "inval pf", "pf-in-progress", "total")
	for _, r := range rows {
		total := 0.0
		for _, v := range r.Components {
			total += v
		}
		t.AddRow(r.Workload, r.Strategy.String(),
			fmt.Sprintf("%.4f", r.Components[sim.NonSharingNotPref]),
			fmt.Sprintf("%.4f", r.Components[sim.InvalNotPref]),
			fmt.Sprintf("%.4f", r.Components[sim.NonSharingPref]),
			fmt.Sprintf("%.4f", r.Components[sim.InvalPref]),
			fmt.Sprintf("%.4f", r.Components[sim.PrefetchInProgress]),
			fmt.Sprintf("%.4f", total))
	}
	return t.String()
}

// Table3Row reports a workload's invalidation and false-sharing miss rates
// without prefetching.
type Table3Row struct {
	Workload     string
	InvalMR      float64
	FalseShareMR float64
	// FSShare is the fraction of invalidation misses that are false sharing.
	FSShare float64
}

// Table3 reproduces the total invalidation and false-sharing miss rates.
func (s *Suite) Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, wl := range WorkloadNames() {
		res, err := s.Result(Key{Workload: wl, Strategy: prefetch.NP, Transfer: 8})
		if err != nil {
			return nil, err
		}
		row := Table3Row{
			Workload:     wl,
			InvalMR:      res.InvalidationMissRate(),
			FalseShareMR: res.FalseSharingMissRate(),
		}
		if row.InvalMR > 0 {
			row.FSShare = row.FalseShareMR / row.InvalMR
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable3 formats Table 3.
func RenderTable3(rows []Table3Row) string {
	t := report.NewTable("Table 3: Total invalidation and false sharing miss rates (NP, 8-cycle transfer)",
		"Workload", "Total Invalidation MR", "Total False Sharing MR", "FS share of inval")
	for _, r := range rows {
		t.AddRow(r.Workload, fmt.Sprintf("%.4f", r.InvalMR), fmt.Sprintf("%.4f", r.FalseShareMR),
			fmt.Sprintf("%.0f%%", 100*r.FSShare))
	}
	return t.String()
}

// Table4Row reports miss rates for a restructured program under one
// prefetch discipline at the 8-cycle transfer.
type Table4Row struct {
	Workload     string
	Strategy     prefetch.Strategy
	Restructured bool
	CPUMR        float64
	TotalMR      float64
	InvalMR      float64
	FalseShareMR float64
}

// Table4 reproduces the restructured-program miss rates, with the original
// layouts included for comparison.
func (s *Suite) Table4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, wl := range []string{"topopt", "pverify"} {
		for _, restr := range []bool{false, true} {
			for _, st := range []prefetch.Strategy{prefetch.NP, prefetch.PREF, prefetch.PWS} {
				res, err := s.Result(Key{Workload: wl, Strategy: st, Transfer: 8, Restructured: restr})
				if err != nil {
					return nil, err
				}
				rows = append(rows, Table4Row{
					Workload: wl, Strategy: st, Restructured: restr,
					CPUMR:        res.CPUMissRate(),
					TotalMR:      res.TotalMissRate(),
					InvalMR:      res.InvalidationMissRate(),
					FalseShareMR: res.FalseSharingMissRate(),
				})
			}
		}
	}
	return rows, nil
}

// RenderTable4 formats Table 4.
func RenderTable4(rows []Table4Row) string {
	t := report.NewTable("Table 4: Miss rates for restructured programs (8-cycle transfer)",
		"Workload", "Layout", "Strategy", "CPU MR", "Total MR", "Total Inval MR", "Total FS MR")
	for _, r := range rows {
		layout := "original"
		if r.Restructured {
			layout = "restructured"
		}
		t.AddRow(r.Workload, layout, r.Strategy.String(),
			fmt.Sprintf("%.4f", r.CPUMR), fmt.Sprintf("%.4f", r.TotalMR),
			fmt.Sprintf("%.4f", r.InvalMR), fmt.Sprintf("%.4f", r.FalseShareMR))
	}
	return t.String()
}

// Table5Row reports a restructured program's execution time relative to its
// own NP run at the same transfer latency.
type Table5Row struct {
	Workload string
	Strategy prefetch.Strategy
	Transfer int
	RelTime  float64
}

// Table5 reproduces the relative execution times for the restructured
// programs over the transfer sweep.
func (s *Suite) Table5() ([]Table5Row, error) {
	var rows []Table5Row
	for _, wl := range []string{"topopt", "pverify"} {
		np := map[int]uint64{}
		for _, tr := range s.cfg.Transfers {
			res, err := s.Result(Key{Workload: wl, Strategy: prefetch.NP, Transfer: tr, Restructured: true})
			if err != nil {
				return nil, err
			}
			np[tr] = res.Cycles
		}
		for _, st := range []prefetch.Strategy{prefetch.PREF, prefetch.PWS} {
			for _, tr := range s.cfg.Transfers {
				res, err := s.Result(Key{Workload: wl, Strategy: st, Transfer: tr, Restructured: true})
				if err != nil {
					return nil, err
				}
				rows = append(rows, Table5Row{Workload: wl, Strategy: st, Transfer: tr,
					RelTime: float64(res.Cycles) / float64(np[tr])})
			}
		}
	}
	return rows, nil
}

// RenderTable5 formats Table 5.
func RenderTable5(rows []Table5Row, transfers []int) string {
	headers := []string{"Workload", "Strategy"}
	for _, tr := range transfers {
		headers = append(headers, fmt.Sprintf("T=%d", tr))
	}
	t := report.NewTable("Table 5: Relative execution times for restructured programs", headers...)
	type key struct {
		wl string
		st prefetch.Strategy
	}
	cells := map[key]map[int]float64{}
	var order []key
	for _, r := range rows {
		k := key{r.Workload, r.Strategy}
		if cells[k] == nil {
			cells[k] = map[int]float64{}
			order = append(order, k)
		}
		cells[k][r.Transfer] = r.RelTime
	}
	for _, k := range order {
		row := []interface{}{k.wl, k.st.String()}
		for _, tr := range transfers {
			row = append(row, fmt.Sprintf("%.3f", cells[k][tr]))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// SharingSummary summarizes a workload's sharing profile (supporting data
// for Table 1 and DESIGN.md).
func (s *Suite) SharingSummary(name string) (trace.Stats, error) {
	t, err := s.baseTrace(name, false)
	if err != nil {
		return trace.Stats{}, err
	}
	return trace.Summarize(t, memory.DefaultGeometry()), nil
}
