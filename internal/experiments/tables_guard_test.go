package experiments

import (
	"strings"
	"testing"

	"busprefetch/internal/prefetch"
	"busprefetch/internal/sim"
)

// These tests pin the zero-baseline guards in Figure2 and Table5: a
// degenerate run whose NP baseline finished in zero cycles (an empty trace
// does) must surface as an annotated error row, never as a NaN in a chart.
// The zero-cycle results are injected straight into the suite's memo table
// so no simulator change can silently un-cover the guard.

// seedResult plants a memoized result for one cell.
func seedResult(s *Suite, k Key, cycles uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results[k] = &sim.Result{Cycles: cycles}
}

func TestFigure2ZeroCycleBaseline(t *testing.T) {
	s := NewSuite(Config{Scale: 0.05, Seed: 1, Transfers: []int{8}})
	for _, wl := range WorkloadNames() {
		for _, st := range prefetch.Strategies() {
			cycles := uint64(100)
			if st == prefetch.NP {
				cycles = 0
			}
			seedResult(s, Key{Workload: wl, Strategy: st, Transfer: 8}, cycles)
		}
	}
	rows, err := s.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Err == "" {
			t.Errorf("%s/%s: zero-cycle NP baseline produced a clean row (RelTime %v)", r.Workload, r.Strategy, r.RelTime)
		}
	}
	got := RenderFigure2(rows, s.cfg.Transfers)
	if strings.Contains(got, "NaN") {
		t.Errorf("rendered Figure 2 contains NaN:\n%s", got)
	}
	if !strings.Contains(got, "0 cycles") {
		t.Errorf("rendered Figure 2 does not explain the failed baseline:\n%s", got)
	}
}

func TestTable5ZeroCycleBaseline(t *testing.T) {
	s := NewSuite(Config{Scale: 0.05, Seed: 1, Transfers: []int{8}})
	for _, wl := range []string{"topopt", "pverify"} {
		seedResult(s, Key{Workload: wl, Strategy: prefetch.NP, Transfer: 8, Restructured: true}, 0)
		for _, st := range []prefetch.Strategy{prefetch.PREF, prefetch.PWS} {
			seedResult(s, Key{Workload: wl, Strategy: st, Transfer: 8, Restructured: true}, 100)
		}
	}
	rows, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Err == "" {
			t.Errorf("%s/%s: zero-cycle NP baseline produced a clean row (RelTime %v)", r.Workload, r.Strategy, r.RelTime)
		}
	}
	got := RenderTable5(rows, s.cfg.Transfers)
	if strings.Contains(got, "NaN") {
		t.Errorf("rendered Table 5 contains NaN:\n%s", got)
	}
}
