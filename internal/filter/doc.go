// Package filter implements the offline cache filters the paper's prefetch
// insertion uses.
//
// The baseline ("oracle") prefetcher identifies candidates by running each
// processor's address stream through a uniprocessor cache filter of the same
// geometry as the simulated cache and marking the data misses (paper §3.1).
// Because the filter sees only one processor's stream, it predicts
// non-sharing misses — first uses, capacity and conflict misses — perfectly,
// and invalidation misses not at all, which is exactly the oracle the paper
// studies.
//
// The PWS strategy additionally runs the write-shared references through a
// small (16-line) fully-associative filter as "a first-order approximation of
// temporal locality": the longer a shared line has not been touched, the more
// likely it has been invalidated, so accesses that miss in the small filter
// become extra prefetch candidates (paper §4.1).
package filter
