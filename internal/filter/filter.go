package filter

import (
	"math/bits"

	"busprefetch/internal/memory"
	"busprefetch/internal/trace"
)

// Cache is a uniprocessor cache filter: it reports, for a sequence of
// accesses, which would miss. It has no coherence; every fill installs the
// line valid.
//
// The filter is the inner loop of prefetch annotation — one Access per
// trace event — so it keeps only what that loop needs: a flat tag array
// with per-entry recency stamps, not internal/cache's coherence-state
// lines. Replacement is the same discipline as cache.Cache's Allocate
// restricted to always-valid lines (first empty way, else lowest recency,
// first index winning ties), so the marked miss sequence is bit-identical
// to the cache-backed filter this replaces.
type Cache struct {
	ways      int
	lineShift uint
	setMask   uint64
	tags      []uint64 // sets*ways, set-major; tag+1, 0 = empty
	stamp     []uint64 // recency, parallel to tags
	clock     uint64
}

// NewCache returns an empty filter with the given geometry. It panics on an
// invalid geometry, like cache.New: geometry is static configuration.
func NewCache(geom memory.Geometry) *Cache {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	n := geom.Sets() * geom.Ways()
	return &Cache{
		ways:      geom.Ways(),
		lineShift: uint(bits.TrailingZeros64(uint64(geom.LineSize))),
		setMask:   uint64(geom.Sets() - 1),
		tags:      make([]uint64, n),
		stamp:     make([]uint64, n),
	}
}

// Access touches a and reports whether it missed (and filled). The
// direct-mapped case — the paper's cache, so nearly every Access in a run —
// is a single compare-and-store kept small enough to inline; recency stamps
// are irrelevant with one way per set.
func (f *Cache) Access(a memory.Addr) (miss bool) {
	tag := uint64(a) >> f.lineShift
	if f.ways == 1 {
		i := int(tag & f.setMask)
		if f.tags[i] == tag+1 {
			return false
		}
		f.tags[i] = tag + 1
		return true
	}
	return f.accessAssoc(tag)
}

// accessAssoc is Access for associative sets: LRU with first-index
// tie-breaking, matching cache.Cache's Allocate over always-valid lines.
func (f *Cache) accessAssoc(tag uint64) (miss bool) {
	si := int(tag&f.setMask) * f.ways
	set := f.tags[si : si+f.ways]
	f.clock++
	for i, t := range set {
		if t == tag+1 {
			f.stamp[si+i] = f.clock
			return false
		}
	}
	victim := -1
	for i, t := range set {
		if t == 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < f.ways; i++ {
			if f.stamp[si+i] < f.stamp[si+victim] {
				victim = i
			}
		}
	}
	set[victim] = tag + 1
	f.stamp[si+victim] = f.clock
	return true
}

// Holds reports whether the filter currently holds a's line.
func (f *Cache) Holds(a memory.Addr) bool {
	tag := uint64(a) >> f.lineShift
	si := int(tag&f.setMask) * f.ways
	for _, t := range f.tags[si : si+f.ways] {
		if t == tag+1 {
			return true
		}
	}
	return false
}

// MarkMisses runs a processor's stream through a uniprocessor filter with
// geometry geom and returns a bitmap, indexed by event position, marking the
// demand accesses that miss. Lock and unlock accesses update the filter
// state (they occupy cache space) but are never marked: synchronization
// variables are not prefetch candidates.
func MarkMisses(s trace.Stream, geom memory.Geometry) []bool {
	f := NewCache(geom)
	miss := make([]bool, len(s))
	for i, e := range s {
		switch e.Kind {
		case trace.Read, trace.Write:
			miss[i] = f.Access(e.Addr)
		case trace.Lock, trace.Unlock:
			f.Access(e.Addr)
		}
	}
	return miss
}

// PWSGeometry returns the paper's 16-line fully-associative temporal-
// locality filter for the given line size.
func PWSGeometry(lineSize int) memory.Geometry {
	return memory.Geometry{CacheSize: 16 * lineSize, LineSize: lineSize, Assoc: 0}
}

// MarkWriteSharedMisses runs only the stream's references to write-shared
// lines (per isWS) through the 16-line associative filter and marks the
// misses — the redundant prefetch candidates of the PWS strategy. Lock and
// unlock events are excluded: prefetching a mutex is never useful.
func MarkWriteSharedMisses(s trace.Stream, geom memory.Geometry, isWS func(memory.Addr) bool) []bool {
	f := NewCache(PWSGeometry(geom.LineSize))
	miss := make([]bool, len(s))
	for i, e := range s {
		if !e.Kind.IsDemand() || !isWS(e.Addr) {
			continue
		}
		miss[i] = f.Access(e.Addr)
	}
	return miss
}
