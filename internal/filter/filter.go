package filter

import (
	"busprefetch/internal/cache"
	"busprefetch/internal/memory"
	"busprefetch/internal/trace"
)

// Cache is a uniprocessor cache filter: it reports, for a sequence of
// accesses, which would miss. It has no coherence; every fill installs the
// line valid.
type Cache struct {
	c *cache.Cache
}

// NewCache returns an empty filter with the given geometry.
func NewCache(geom memory.Geometry) *Cache {
	return &Cache{c: cache.New(geom)}
}

// Access touches a and reports whether it missed (and filled).
func (f *Cache) Access(a memory.Addr) (miss bool) {
	if _, hit := f.c.Probe(a); hit {
		return false
	}
	line, _ := f.c.Allocate(a)
	line.State = cache.Exclusive
	return true
}

// Holds reports whether the filter currently holds a's line.
func (f *Cache) Holds(a memory.Addr) bool { return f.c.HoldsValid(a) }

// MarkMisses runs a processor's stream through a uniprocessor filter with
// geometry geom and returns a bitmap, indexed by event position, marking the
// demand accesses that miss. Lock and unlock accesses update the filter
// state (they occupy cache space) but are never marked: synchronization
// variables are not prefetch candidates.
func MarkMisses(s trace.Stream, geom memory.Geometry) []bool {
	f := NewCache(geom)
	miss := make([]bool, len(s))
	for i, e := range s {
		switch e.Kind {
		case trace.Read, trace.Write:
			miss[i] = f.Access(e.Addr)
		case trace.Lock, trace.Unlock:
			f.Access(e.Addr)
		}
	}
	return miss
}

// PWSGeometry returns the paper's 16-line fully-associative temporal-
// locality filter for the given line size.
func PWSGeometry(lineSize int) memory.Geometry {
	return memory.Geometry{CacheSize: 16 * lineSize, LineSize: lineSize, Assoc: 0}
}

// MarkWriteSharedMisses runs only the stream's references to write-shared
// lines (per isWS) through the 16-line associative filter and marks the
// misses — the redundant prefetch candidates of the PWS strategy. Lock and
// unlock events are excluded: prefetching a mutex is never useful.
func MarkWriteSharedMisses(s trace.Stream, geom memory.Geometry, isWS func(memory.Addr) bool) []bool {
	f := NewCache(PWSGeometry(geom.LineSize))
	miss := make([]bool, len(s))
	for i, e := range s {
		if !e.Kind.IsDemand() || !isWS(e.Addr) {
			continue
		}
		miss[i] = f.Access(e.Addr)
	}
	return miss
}
