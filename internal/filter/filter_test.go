package filter

import (
	"testing"

	"busprefetch/internal/memory"
	"busprefetch/internal/trace"
)

func TestCacheFilterBasics(t *testing.T) {
	g := memory.Geometry{CacheSize: 2 * 32, LineSize: 32, Assoc: 1}
	f := NewCache(g)
	if !f.Access(0) {
		t.Error("first access must miss")
	}
	if f.Access(16) {
		t.Error("same line must hit")
	}
	if !f.Access(2 * 32) { // same set, conflicting line
		t.Error("conflicting line must miss")
	}
}

func TestCacheFilterConflictEviction(t *testing.T) {
	g := memory.Geometry{CacheSize: 2 * 32, LineSize: 32, Assoc: 1}
	f := NewCache(g)
	f.Access(0)
	f.Access(2 * 32) // evicts line 0 (same set, direct mapped)
	if f.Holds(0) {
		t.Error("line 0 should have been evicted")
	}
	if !f.Access(0) {
		t.Error("re-access of evicted line must miss")
	}
}

func TestMarkMisses(t *testing.T) {
	g := memory.DefaultGeometry()
	s := trace.Stream{
		{Kind: trace.Read, Addr: 0x1000},     // miss
		{Kind: trace.Read, Addr: 0x1004},     // hit (same line)
		{Kind: trace.Write, Addr: 0x2000},    // miss
		{Kind: trace.Prefetch, Addr: 0x3000}, // not a demand access: unmarked
		{Kind: trace.Read, Addr: 0x1008},     // hit
		{Kind: trace.Barrier, Addr: 0},       // unmarked
	}
	miss := MarkMisses(s, g)
	want := []bool{true, false, true, false, false, false}
	for i := range want {
		if miss[i] != want[i] {
			t.Errorf("event %d: miss=%v, want %v", i, miss[i], want[i])
		}
	}
}

func TestMarkMissesLockLinesNeverMarked(t *testing.T) {
	g := memory.DefaultGeometry()
	s := trace.Stream{
		{Kind: trace.Lock, Addr: 0x5000},
		{Kind: trace.Unlock, Addr: 0x5000},
		{Kind: trace.Read, Addr: 0x5004}, // same line as the lock: now resident
	}
	miss := MarkMisses(s, g)
	if miss[0] || miss[1] {
		t.Error("lock operations must never be prefetch candidates")
	}
	if miss[2] {
		t.Error("lock access should have installed the line in the filter")
	}
}

func TestPWSGeometry(t *testing.T) {
	g := PWSGeometry(32)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Lines() != 16 || g.Sets() != 1 {
		t.Errorf("PWS filter is %d lines in %d sets, want 16 fully associative", g.Lines(), g.Sets())
	}
}

func TestMarkWriteSharedMisses(t *testing.T) {
	g := memory.DefaultGeometry()
	ws := map[memory.Addr]bool{0x1000: true}
	isWS := func(a memory.Addr) bool { return ws[g.LineAddr(a)] }
	s := trace.Stream{
		{Kind: trace.Read, Addr: 0x1000}, // WS, first touch: miss -> candidate
		{Kind: trace.Read, Addr: 0x2000}, // not WS: ignored
		{Kind: trace.Read, Addr: 0x1004}, // WS, filter hit: not a candidate
	}
	miss := MarkWriteSharedMisses(s, g, isWS)
	if !miss[0] || miss[1] || miss[2] {
		t.Errorf("marks = %v, want [true false false]", miss)
	}
}

// TestTemporalLocalityWindow verifies the 16-line filter's core behaviour:
// re-touching a line within 16 distinct lines hits, beyond 16 misses — the
// paper's first-order approximation of temporal locality.
func TestTemporalLocalityWindow(t *testing.T) {
	g := memory.DefaultGeometry()
	all := func(memory.Addr) bool { return true }

	near := trace.Stream{{Kind: trace.Read, Addr: 0}}
	for i := 1; i <= 15; i++ {
		near = append(near, trace.Event{Kind: trace.Read, Addr: memory.Addr(i * 32)})
	}
	near = append(near, trace.Event{Kind: trace.Read, Addr: 0}) // within window
	miss := MarkWriteSharedMisses(near, g, all)
	if miss[len(miss)-1] {
		t.Error("line re-touched within 16 lines must hit the PWS filter")
	}

	far := trace.Stream{{Kind: trace.Read, Addr: 0}}
	for i := 1; i <= 16; i++ {
		far = append(far, trace.Event{Kind: trace.Read, Addr: memory.Addr(i * 32)})
	}
	far = append(far, trace.Event{Kind: trace.Read, Addr: 0}) // evicted
	miss = MarkWriteSharedMisses(far, g, all)
	if !miss[len(miss)-1] {
		t.Error("line re-touched after 16 distinct lines must miss the PWS filter")
	}
}
