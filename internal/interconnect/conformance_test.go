package interconnect

import (
	"fmt"
	"testing"

	"busprefetch/internal/bus"
)

// The conformance suite pins every topology against the laws the simulator
// relies on: determinism, conservation of requests, occupancy accounting,
// per-link non-overlap, same-address serialization, and grant-before-complete
// snoop ordering. Each law is checked on the same deterministic synthetic
// schedule for every topology, so a new implementation inherits the whole
// contract by appearing in conformanceConfigs.

// fakeSched is a minimal event queue with the simulator's ordering contract:
// events run by (time, scheduling order).
type fakeSched struct {
	now uint64
	seq int
	evs []fakeEvent
}

type fakeEvent struct {
	t   uint64
	seq int
	fn  func(uint64)
}

func (s *fakeSched) At(t uint64, fn func(uint64)) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.evs = append(s.evs, fakeEvent{t: t, seq: s.seq, fn: fn})
}

func (s *fakeSched) run() {
	for len(s.evs) > 0 {
		best := 0
		for i, e := range s.evs {
			if e.t < s.evs[best].t || (e.t == s.evs[best].t && e.seq < s.evs[best].seq) {
				best = i
			}
		}
		e := s.evs[best]
		s.evs = append(s.evs[:best], s.evs[best+1:]...)
		s.now = e.t
		e.fn(e.t)
	}
}

// conformanceConfigs lists every topology the suite pins.
func conformanceConfigs() []Config {
	return []Config{
		{},                         // the paper's single priority bus
		{Discipline: bus.FCFS},     // single bus, FCFS service
		{Kind: MultiBus, Links: 2}, // dual bus
		{Kind: MultiBus, Links: 4}, // quad bus
		{Kind: MultiBus, Links: 3}, // non-power-of-two routing
		{Kind: Directory},          // per-processor home links
		{Kind: Directory, Links: 4, LookupCycles: 7},
	}
}

const (
	confProcs = 4
	confShift = 5 // 32-byte lines
	confReqs  = 64
)

// schedule is the deterministic synthetic submission plan shared by every
// law: a small LCG mixes classes, ops, lines, and submit times so requests
// contend, share lines, and arrive out of Ready order.
type plannedReq struct {
	submitAt  uint64
	ready     uint64
	occupancy uint64
	class     bus.Class
	op        bus.Op
	addr      uint64
	proc      int
}

func confPlan() []plannedReq {
	plan := make([]plannedReq, confReqs)
	state := uint64(0x9e3779b97f4a7c15)
	next := func(mod uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % mod
	}
	for i := range plan {
		submit := uint64(i) * 3
		plan[i] = plannedReq{
			submitAt:  submit,
			ready:     submit + next(20),
			occupancy: 1 + next(8),
			class:     bus.Class(next(3)),
			op:        bus.Op(next(4)),
			addr:      (next(8)) << confShift, // 8 distinct lines
			proc:      int(next(confProcs)),
		}
	}
	return plan
}

// traceEntry is one observed event: a grant (with its link) or a completion.
type traceEntry struct {
	kind string // "grant" or "complete"
	req  int
	link int
	t    uint64
}

// runConformance executes the shared plan on a fresh fabric and returns the
// observed event log plus the per-request grant/complete/link records.
func runConformance(t *testing.T, cfg Config) (ic Interconnect, log []traceEntry, reqs []*bus.Request) {
	t.Helper()
	sched := &fakeSched{}
	ic, err := New(cfg, sched, confProcs)
	if err != nil {
		t.Fatalf("New(%v): %v", cfg, err)
	}
	lastLink := -1
	ic.SetObserver(func(link int, grant, occupancy uint64, op bus.Op, class bus.Class, proc int) {
		lastLink = link
	})
	plan := confPlan()
	reqs = make([]*bus.Request, len(plan))
	for i, p := range plan {
		i, p := i, p
		r := &bus.Request{
			Ready: p.ready, Occupancy: p.occupancy,
			Class: p.class, Op: p.op, Addr: p.addr, Proc: p.proc,
		}
		r.OnGrant = func(g uint64) {
			log = append(log, traceEntry{kind: "grant", req: i, link: lastLink, t: g})
		}
		r.OnComplete = func(c uint64) {
			log = append(log, traceEntry{kind: "complete", req: i, link: -1, t: c})
		}
		reqs[i] = r
		sched.At(p.submitAt, func(now uint64) {
			if err := ic.Submit(now, r); err != nil {
				t.Errorf("Submit req %d: %v", i, err)
			}
		})
	}
	sched.run()
	return ic, log, reqs
}

func TestConformance(t *testing.T) {
	for _, cfg := range conformanceConfigs() {
		t.Run(cfg.String(), func(t *testing.T) {
			ic, log, reqs := runConformance(t, cfg)
			plan := confPlan()

			// Determinism: an identical second run observes an identical log.
			_, log2, _ := runConformance(t, cfg)
			if fmt.Sprint(log) != fmt.Sprint(log2) {
				t.Error("two identical runs observed different event logs")
			}

			// Conservation: every request granted exactly once and completed
			// exactly once, nothing left pending, op counts match.
			grants := make(map[int]traceEntry)
			completes := make(map[int]uint64)
			for _, e := range log {
				switch e.kind {
				case "grant":
					if _, dup := grants[e.req]; dup {
						t.Fatalf("req %d granted twice", e.req)
					}
					grants[e.req] = e
				case "complete":
					if _, dup := completes[e.req]; dup {
						t.Fatalf("req %d completed twice", e.req)
					}
					completes[e.req] = e.t
				}
			}
			if len(grants) != len(reqs) || len(completes) != len(reqs) {
				t.Fatalf("granted %d, completed %d of %d requests", len(grants), len(completes), len(reqs))
			}
			if p := ic.Pending(); p != 0 {
				t.Errorf("Pending() = %d after drain", p)
			}
			agg := ic.Stats()
			if got, want := agg.TotalOps(), uint64(len(reqs)); got != want {
				t.Errorf("TotalOps = %d, want %d", got, want)
			}

			// Occupancy: aggregate busy cycles equal the sum of granted
			// occupancies, and the per-link split both sums to the aggregate
			// and matches the occupancy granted on each link.
			var wantBusy uint64
			perLink := make([]uint64, ic.Links())
			for i, p := range plan {
				wantBusy += p.occupancy
				perLink[grants[i].link] += p.occupancy
			}
			if agg.BusyCycles != wantBusy {
				t.Errorf("aggregate BusyCycles = %d, want %d", agg.BusyCycles, wantBusy)
			}
			links := ic.LinkStats()
			if len(links) != ic.Links() {
				t.Fatalf("LinkStats has %d entries, Links() = %d", len(links), ic.Links())
			}
			var linkSum uint64
			for l, ls := range links {
				linkSum += ls.BusyCycles
				if ls.BusyCycles != perLink[l] {
					t.Errorf("link %d BusyCycles = %d, observer says %d", l, ls.BusyCycles, perLink[l])
				}
			}
			if linkSum != agg.BusyCycles {
				t.Errorf("per-link busy cycles sum to %d, aggregate is %d", linkSum, agg.BusyCycles)
			}

			// Grant and completion timing: no grant before Ready (including
			// any topology-added latency, now folded into the request), each
			// completion exactly occupancy after its grant.
			for i := range reqs {
				if g := grants[i].t; g < reqs[i].Ready {
					t.Errorf("req %d granted at %d before Ready %d", i, g, reqs[i].Ready)
				}
				if c, g := completes[i], grants[i].t; c != g+plan[i].occupancy {
					t.Errorf("req %d completed at %d, want grant %d + occupancy %d", i, c, g, plan[i].occupancy)
				}
			}

			// Per-link non-overlap and snoop ordering: on each link, a grant's
			// occupancy window ends (and its completion runs) before the next
			// grant on that link.
			lastEnd := make([]uint64, ic.Links())
			lastReq := make([]int, ic.Links())
			for l := range lastReq {
				lastReq[l] = -1
			}
			for _, e := range log {
				if e.kind != "grant" {
					continue
				}
				l := e.link
				if prev := lastReq[l]; prev >= 0 {
					if e.t < lastEnd[l] {
						t.Errorf("link %d: req %d granted at %d inside req %d's occupancy (ends %d)",
							l, e.req, e.t, prev, lastEnd[l])
					}
				}
				lastEnd[l] = e.t + plan[e.req].occupancy
				lastReq[l] = e.req
			}

			// Same-address serialization: all transactions on one line grant
			// on the same link, so their grant order is a total order.
			lineLink := make(map[uint64]int)
			for i, p := range plan {
				if l, ok := lineLink[p.addr]; ok && l != grants[i].link {
					t.Errorf("line %#x granted on links %d and %d", p.addr, l, grants[i].link)
				}
				lineLink[p.addr] = grants[i].link
			}

			// The log interleaves grant before complete per request.
			seenGrant := make(map[int]bool)
			for _, e := range log {
				switch e.kind {
				case "grant":
					seenGrant[e.req] = true
				case "complete":
					if !seenGrant[e.req] {
						t.Fatalf("req %d completed before its grant", e.req)
					}
				}
			}
		})
	}
}

// TestSingleBusMatchesRawBus pins the seam itself: the SingleBus fabric must
// produce exactly the schedule a bare bus.Bus produces for the same
// submissions — the refactor moved the bus behind an interface, not changed
// it.
func TestSingleBusMatchesRawBus(t *testing.T) {
	type run struct{ log []string }
	drive := func(submit func(sched *fakeSched, reqs []*bus.Request)) run {
		var r run
		sched := &fakeSched{}
		plan := confPlan()
		reqs := make([]*bus.Request, len(plan))
		for i, p := range plan {
			i := i
			reqs[i] = &bus.Request{Ready: p.ready, Occupancy: p.occupancy,
				Class: p.class, Op: p.op, Addr: p.addr, Proc: p.proc}
			reqs[i].OnGrant = func(g uint64) { r.log = append(r.log, fmt.Sprintf("g %d %d", i, g)) }
			reqs[i].OnComplete = func(c uint64) { r.log = append(r.log, fmt.Sprintf("c %d %d", i, c)) }
		}
		submit(sched, reqs)
		sched.run()
		return r
	}

	viaSeam := drive(func(sched *fakeSched, reqs []*bus.Request) {
		ic, err := New(Config{}, sched, confProcs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range reqs {
			i, r := i, r
			sched.At(confPlan()[i].submitAt, func(now uint64) {
				if err := ic.Submit(now, r); err != nil {
					t.Error(err)
				}
			})
		}
	})
	raw := drive(func(sched *fakeSched, reqs []*bus.Request) {
		b, err := bus.New(sched, confProcs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range reqs {
			i, r := i, r
			sched.At(confPlan()[i].submitAt, func(now uint64) {
				if err := b.Submit(now, r); err != nil {
					t.Error(err)
				}
			})
		}
	})
	if fmt.Sprint(viaSeam.log) != fmt.Sprint(raw.log) {
		t.Errorf("seam and raw bus schedules differ:\nseam: %v\nraw:  %v", viaSeam.log, raw.log)
	}
}

// TestDisciplineSwapContentionFree is the metamorphic law of the service
// disciplines: on a contention-free schedule — each request submitted, ready,
// and fully drained before the next arrives — arbitration never has a choice,
// so FCFS and Priority must produce byte-identical schedules.
func TestDisciplineSwapContentionFree(t *testing.T) {
	drive := func(d bus.Discipline) []string {
		var log []string
		sched := &fakeSched{}
		ic, err := New(Config{Discipline: d}, sched, confProcs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			i := i
			at := uint64(i) * 1000 // far beyond any occupancy: never two pending
			r := &bus.Request{Ready: at, Occupancy: uint64(1 + i%8),
				Class: bus.Class(i % 3), Op: bus.Op(i % 4),
				Addr: uint64(i%4) << confShift, Proc: i % confProcs}
			r.OnGrant = func(g uint64) { log = append(log, fmt.Sprintf("g %d %d", i, g)) }
			r.OnComplete = func(c uint64) { log = append(log, fmt.Sprintf("c %d %d", i, c)) }
			sched.At(at, func(now uint64) {
				if err := ic.Submit(now, r); err != nil {
					t.Error(err)
				}
			})
		}
		sched.run()
		return log
	}
	prio, fcfs := drive(bus.Priority), drive(bus.FCFS)
	if fmt.Sprint(prio) != fmt.Sprint(fcfs) {
		t.Errorf("contention-free schedules differ:\npriority: %v\nfcfs:     %v", prio, fcfs)
	}
}

// TestDisciplinesDivergeUnderContention is the counterpart: with a demand
// request submitted after (but ready alongside) a writeback, Priority grants
// the demand first and FCFS the writeback, so the disciplines must not be
// secretly identical.
func TestDisciplinesDivergeUnderContention(t *testing.T) {
	order := func(d bus.Discipline) []string {
		var log []string
		sched := &fakeSched{}
		ic, err := New(Config{Discipline: d}, sched, 2)
		if err != nil {
			t.Fatal(err)
		}
		wb := &bus.Request{Ready: 10, Occupancy: 8, Class: bus.Writeback, Op: bus.OpWriteback, Proc: 0}
		wb.OnGrant = func(uint64) { log = append(log, "writeback") }
		demand := &bus.Request{Ready: 10, Occupancy: 8, Class: bus.Demand, Op: bus.OpFill, Proc: 1}
		demand.OnGrant = func(uint64) { log = append(log, "demand") }
		sched.At(0, func(now uint64) {
			if err := ic.Submit(now, wb); err != nil {
				t.Error(err)
			}
			if err := ic.Submit(now, demand); err != nil {
				t.Error(err)
			}
		})
		sched.run()
		return log
	}
	prio, fcfs := order(bus.Priority), order(bus.FCFS)
	if got, want := fmt.Sprint(prio), "[demand writeback]"; got != want {
		t.Errorf("priority order = %v, want %v", got, want)
	}
	if got, want := fmt.Sprint(fcfs), "[writeback demand]"; got != want {
		t.Errorf("fcfs order = %v, want %v", got, want)
	}
}

// TestDirectoryLookupLatency: the Directory topology delays each request's
// earliest grant by the home-node lookup, and only the Directory does.
func TestDirectoryLookupLatency(t *testing.T) {
	grantAt := func(cfg Config) uint64 {
		sched := &fakeSched{}
		ic, err := New(cfg, sched, 2)
		if err != nil {
			t.Fatal(err)
		}
		var g uint64
		r := &bus.Request{Ready: 100, Occupancy: 8, Class: bus.Demand, Op: bus.OpFill, Proc: 0}
		r.OnGrant = func(t uint64) { g = t }
		sched.At(0, func(now uint64) {
			if err := ic.Submit(now, r); err != nil {
				t.Error(err)
			}
		})
		sched.run()
		return g
	}
	if g := grantAt(Config{}); g != 100 {
		t.Errorf("single bus granted at %d, want 100", g)
	}
	if g := grantAt(Config{Kind: Directory, LookupCycles: 15}); g != 115 {
		t.Errorf("directory granted at %d, want 100+15", g)
	}
	if g := grantAt(Config{Kind: Directory}); g != 100+DefaultLookupCycles {
		t.Errorf("directory granted at %d, want 100+%d", g, DefaultLookupCycles)
	}
}

// TestPromoteCancelRouteStably: Promote and Cancel find the link Submit
// used, because routing is a pure function of the stable Addr.
func TestPromoteCancelRouteStably(t *testing.T) {
	sched := &fakeSched{}
	ic, err := New(Config{Kind: MultiBus, Links: 4, RouteShift: confShift}, sched, confProcs)
	if err != nil {
		t.Fatal(err)
	}
	var granted []int
	for i := 0; i < 8; i++ {
		i := i
		r := &bus.Request{Ready: 50, Occupancy: 4, Class: bus.Prefetch, Op: bus.OpFill,
			Addr: uint64(i) << confShift, Proc: i % confProcs}
		r.OnGrant = func(uint64) { granted = append(granted, i) }
		sched.At(0, func(now uint64) {
			if err := ic.Submit(now, r); err != nil {
				t.Error(err)
			}
		})
		if i%2 == 0 {
			sched.At(1, func(uint64) { ic.Promote(r) })
		} else {
			sched.At(1, func(uint64) {
				if !ic.Cancel(r) {
					t.Errorf("Cancel(req %d) found nothing", i)
				}
			})
		}
	}
	sched.run()
	if ic.Pending() != 0 {
		t.Errorf("Pending() = %d after drain", ic.Pending())
	}
	if len(granted) != 4 {
		t.Errorf("granted %v, want exactly the 4 promoted requests", granted)
	}
	for _, g := range granted {
		if g%2 != 0 {
			t.Errorf("cancelled request %d was granted", g)
		}
	}
}
