// Package interconnect generalizes the machine's contended memory fabric
// behind one seam, the Interconnect interface: request admission, service
// discipline, occupancy accounting, and the grant/complete callbacks the
// coherence layer snoops through. The paper hard-codes a single
// split-transaction bus; this package keeps that machine as the zero-value
// configuration — byte-identical to the pre-seam simulator — and adds the
// topologies the paper's open question needs:
//
//   - SingleBus: the paper's bus, with a selectable service discipline
//     (bus.Priority, the paper's arbitration, or bus.FCFS per the related
//     queueing analyses).
//   - MultiBus: N independent data buses with address-interleaved routing
//     (line address modulo N), each with its own arbitration and occupancy
//     stats — the mid-1990s scale-out answer.
//   - Directory: a point-to-point model in which every line has a home node
//     reached through its own link, with a fixed directory-lookup latency
//     added to each transaction's uncontended phase — the "what replaced
//     buses" endpoint.
//
// Every topology is composed from bus.Bus links; a request's line address
// (bus.Request.Addr) picks its link, so transactions on the same line still
// serialize on one resource and the grant remains the coherence
// serialization point. The sharer bookkeeping in internal/sim is already
// directory-precise — snoops touch only caches that hold copies — so the
// topologies differ purely in timing and bandwidth, never in coherence
// outcomes.
package interconnect
