package interconnect

import (
	"fmt"

	"busprefetch/internal/bus"
	"busprefetch/internal/names"
)

// Kind identifies an interconnect topology.
type Kind uint8

const (
	// SingleBus is the paper's machine: one split-transaction bus.
	SingleBus Kind = iota
	// MultiBus is N independent data buses with address-interleaved routing.
	MultiBus
	// Directory is a point-to-point model: every line has a home node with
	// its own link, and each transaction pays a directory-lookup latency
	// before service.
	Directory
	numKinds
)

var kindNames = []string{"bus", "multibus", "directory"}

func (k Kind) String() string { return names.Lookup("Kind", kindNames, int(k)) }

// Valid reports whether k names a known topology.
func (k Kind) Valid() bool { return k < numKinds }

// Kinds returns every topology in declaration order.
func Kinds() []Kind { return []Kind{SingleBus, MultiBus, Directory} }

// ParseKind resolves a topology name ("bus", "multibus", "directory"),
// case-insensitively.
func ParseKind(name string) (Kind, error) {
	i, err := names.Parse("interconnect", kindNames, name)
	if err != nil {
		return SingleBus, fmt.Errorf("interconnect: %w", err)
	}
	return Kind(i), nil
}

// ParseConfig builds a validated Config from CLI-style inputs: a topology
// name, a link count (0 = the topology's default), and an arbitration
// discipline name. It is the shared backend of the CLIs' -interconnect,
// -buses, and -discipline flags.
func ParseConfig(kind string, links int, discipline string) (Config, error) {
	k, err := ParseKind(kind)
	if err != nil {
		return Config{}, err
	}
	d, err := bus.ParseDiscipline(discipline)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{Kind: k, Links: links, Discipline: d}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// DefaultMultiBusLinks is the MultiBus link count when Config.Links is zero.
const DefaultMultiBusLinks = 2

// DefaultLookupCycles is the Directory home-node lookup latency when
// Config.LookupCycles is zero: the indirection cost the point-to-point
// fabric pays per transaction in exchange for not sharing a bus.
const DefaultLookupCycles = 20

// Config selects and parameterizes a topology. The zero value is the paper's
// machine — a single priority-arbitrated bus — and simulates byte-identically
// to the pre-seam simulator.
type Config struct {
	// Kind is the topology.
	Kind Kind
	// Links is the parallel-link count: data buses for MultiBus (0 selects
	// DefaultMultiBusLinks), home-node links for Directory (0 selects one
	// per processor). SingleBus requires 0 or 1.
	Links int
	// Discipline is the per-link arbitration service discipline.
	Discipline bus.Discipline
	// LookupCycles is the Directory home-node lookup latency added to every
	// transaction's uncontended phase (0 selects DefaultLookupCycles).
	// Only Directory pays it; other kinds require it to be 0.
	LookupCycles int
	// RouteShift drops the line-offset bits before interleaving, so
	// consecutive lines land on consecutive links. The simulator sets it to
	// log2(line size); it only matters when Links > 1.
	RouteShift uint
}

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	switch {
	case !c.Kind.Valid():
		return fmt.Errorf("interconnect: unknown kind %d", int(c.Kind))
	case !c.Discipline.Valid():
		return fmt.Errorf("interconnect: unknown discipline %d", int(c.Discipline))
	case c.Links < 0:
		return fmt.Errorf("interconnect: negative link count %d", c.Links)
	case c.Kind == SingleBus && c.Links > 1:
		return fmt.Errorf("interconnect: single bus with %d links (use multibus)", c.Links)
	case c.LookupCycles < 0:
		return fmt.Errorf("interconnect: negative lookup latency %d", c.LookupCycles)
	case c.Kind != Directory && c.LookupCycles != 0:
		return fmt.Errorf("interconnect: lookup latency %d on a %s topology (directory only)", c.LookupCycles, c.Kind)
	case c.RouteShift > 63:
		return fmt.Errorf("interconnect: route shift %d exceeds the address width", c.RouteShift)
	}
	return nil
}

// links resolves the effective link count for nproc processors.
func (c Config) links(nproc int) int {
	if c.Links > 0 {
		return c.Links
	}
	switch c.Kind {
	case MultiBus:
		return DefaultMultiBusLinks
	case Directory:
		return nproc
	default:
		return 1
	}
}

// lookup resolves the effective Directory lookup latency.
func (c Config) lookup() uint64 {
	if c.Kind != Directory {
		return 0
	}
	if c.LookupCycles > 0 {
		return uint64(c.LookupCycles)
	}
	return DefaultLookupCycles
}

// String renders the canonical spec form used in checkpoint keys and
// diagnostics: every field that changes a simulated result appears.
func (c Config) String() string {
	var s string
	switch c.Kind {
	case MultiBus:
		s = fmt.Sprintf("multibus:%d", c.links(0))
	case Directory:
		if c.Links > 0 {
			s = fmt.Sprintf("directory:%d+%d", c.Links, c.lookup())
		} else {
			s = fmt.Sprintf("directory:np+%d", c.lookup())
		}
	default:
		s = "bus"
	}
	if c.Discipline != bus.Priority {
		s += "/" + c.Discipline.String()
	}
	return s
}

// Observer receives every grant on every link: the link index, the grant
// time, the occupancy the winner holds, its op, the arbitration class it
// held, and the requesting processor.
type Observer func(link int, grant, occupancy uint64, op bus.Op, class bus.Class, proc int)

// Interconnect is the contended memory fabric: it admits requests, arbitrates
// them onto links under a service discipline, accounts occupancy, and fires
// each request's OnGrant (the coherence serialization point, where the
// simulator snoops) and OnComplete callbacks.
//
// The contract every implementation obeys (pinned by the conformance suite):
// a submitted request is granted exactly once, no earlier than its Ready
// time, and completed exactly once at grant+Occupancy; grants on one link
// never overlap; requests for the same Addr serialize on one link, so their
// grant order is a total order the coherence layer can rely on; and the
// whole schedule is a deterministic function of the submission sequence.
type Interconnect interface {
	// Submit queues a request at simulation time now. The request's Addr
	// routes it; Ready may be adjusted upward by topology latency (the
	// Directory lookup) before admission.
	Submit(now uint64, r *bus.Request) error
	// Promote raises a still-pending request to Demand class on its link.
	Promote(r *bus.Request)
	// Cancel removes a still-pending request, reporting whether it was
	// removed before being granted.
	Cancel(r *bus.Request) bool
	// Pending returns the number of requests awaiting a grant, across links.
	Pending() int
	// Links returns the parallel-link count.
	Links() int
	// Stats returns the aggregate traffic counters, summed across links.
	Stats() bus.Stats
	// LinkStats returns per-link traffic counters, indexed by link.
	LinkStats() []bus.Stats
	// SetObserver installs (or, with nil, removes) the per-grant observer.
	SetObserver(fn Observer)
}

// New builds the configured fabric for nproc processors on sched. Every
// topology is composed from bus.Bus links; the zero Config yields the
// paper's single priority bus.
func New(cfg Config, sched bus.Scheduler, nproc int) (Interconnect, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.links(nproc)
	if n <= 0 {
		return nil, fmt.Errorf("interconnect: resolved link count %d for %d processors", n, nproc)
	}
	f := &fabric{shift: cfg.RouteShift, lookup: cfg.lookup(), links: make([]*bus.Bus, n)}
	for i := range f.links {
		b, err := bus.NewWithDiscipline(sched, nproc, cfg.Discipline)
		if err != nil {
			return nil, err
		}
		f.links[i] = b
	}
	return f, nil
}

// fabric implements every topology: one or more bus links plus a routing
// function and an admission latency. Requests route by line address, so all
// transactions on a line serialize on the same link and the grant stays a
// coherence serialization point regardless of link count.
type fabric struct {
	links  []*bus.Bus
	shift  uint
	lookup uint64
}

// route returns the link a request belongs to. Addr is stable for the life
// of a request, so Promote and Cancel recompute the same link Submit used.
func (f *fabric) route(r *bus.Request) *bus.Bus {
	if len(f.links) == 1 {
		return f.links[0]
	}
	return f.links[(r.Addr>>f.shift)%uint64(len(f.links))]
}

func (f *fabric) Submit(now uint64, r *bus.Request) error {
	if r == nil {
		return fmt.Errorf("interconnect: nil request at cycle %d", now)
	}
	if f.lookup != 0 {
		// The home-node directory lookup extends the transaction's
		// uncontended phase; the link's occupancy is unchanged.
		r.Ready += f.lookup
	}
	return f.route(r).Submit(now, r)
}

func (f *fabric) Promote(r *bus.Request) { f.route(r).Promote(r) }

func (f *fabric) Cancel(r *bus.Request) bool { return f.route(r).Cancel(r) }

func (f *fabric) Pending() int {
	n := 0
	for _, b := range f.links {
		n += b.Pending()
	}
	return n
}

func (f *fabric) Links() int { return len(f.links) }

func (f *fabric) Stats() bus.Stats {
	var agg bus.Stats
	for _, b := range f.links {
		s := b.Stats()
		agg.BusyCycles += s.BusyCycles
		for i := range s.Ops {
			agg.Ops[i] += s.Ops[i]
		}
		agg.DemandGrants += s.DemandGrants
		agg.PrefetchGrants += s.PrefetchGrants
	}
	return agg
}

func (f *fabric) LinkStats() []bus.Stats {
	out := make([]bus.Stats, len(f.links))
	for i, b := range f.links {
		out[i] = b.Stats()
	}
	return out
}

func (f *fabric) SetObserver(fn Observer) {
	for i, b := range f.links {
		if fn == nil {
			b.SetObserver(nil)
			continue
		}
		link := i
		b.SetObserver(func(grant, occupancy uint64, op bus.Op, class bus.Class, proc int) {
			fn(link, grant, occupancy, op, class, proc)
		})
	}
}
