package interconnect

import (
	"strings"
	"testing"

	"busprefetch/internal/bus"
)

// TestParseKind mirrors the tree's shared parser contract (see
// prefetch.TestParsers): case-insensitive resolution of every registered
// name, and a rejection diagnostic listing every valid name.
func TestParseKind(t *testing.T) {
	valid := map[string]Kind{
		"bus": SingleBus, "Bus": SingleBus, "BUS": SingleBus,
		"multibus": MultiBus, "MultiBus": MultiBus,
		"directory": Directory, "DIRECTORY": Directory,
	}
	for in, want := range valid {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bogus := range []string{"", "ring", "buss", "multi bus", "crossbar"} {
		_, err := ParseKind(bogus)
		if err == nil {
			t.Errorf("ParseKind(%q) accepted", bogus)
			continue
		}
		for _, name := range kindNames {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("ParseKind(%q) error %q does not list valid name %q", bogus, err, name)
			}
		}
		if !strings.Contains(err.Error(), "valid:") {
			t.Errorf("ParseKind(%q) error %q lacks the valid-names diagnostic", bogus, err)
		}
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Errorf("out-of-range Kind renders %q", got)
	}
	for _, k := range Kinds() {
		if !k.Valid() {
			t.Errorf("Kinds() returned invalid kind %v", k)
		}
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Errorf("ParseKind(%v.String()) = %v, %v", k, back, err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		cfg Config
		ok  bool
	}{
		{Config{}, true},
		{Config{Discipline: bus.FCFS}, true},
		{Config{Kind: MultiBus}, true},
		{Config{Kind: MultiBus, Links: 4}, true},
		{Config{Kind: Directory, Links: 8, LookupCycles: 30}, true},
		{Config{Kind: SingleBus, Links: 1}, true},
		{Config{Kind: numKinds}, false},                  // unknown kind
		{Config{Discipline: 9}, false},                   // unknown discipline
		{Config{Links: -1}, false},                       // negative links
		{Config{Kind: SingleBus, Links: 2}, false},       // single bus, many links
		{Config{LookupCycles: -1}, false},                // negative latency
		{Config{Kind: MultiBus, LookupCycles: 5}, false}, // lookup on a bus
		{Config{RouteShift: 64}, false},                  // shift past address width
	} {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("Validate(%+v) = %v, want ok", tc.cfg, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("Validate(%+v) accepted", tc.cfg)
		}
	}
}

// TestConfigString pins the canonical spec forms the checkpoint keys embed:
// a change here silently invalidates (or worse, aliases) persisted cells.
func TestConfigString(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		want string
	}{
		{Config{}, "bus"},
		{Config{Discipline: bus.FCFS}, "bus/fcfs"},
		{Config{Kind: MultiBus}, "multibus:2"},
		{Config{Kind: MultiBus, Links: 4}, "multibus:4"},
		{Config{Kind: MultiBus, Links: 4, Discipline: bus.FCFS}, "multibus:4/fcfs"},
		{Config{Kind: Directory}, "directory:np+20"},
		{Config{Kind: Directory, Links: 8, LookupCycles: 30}, "directory:8+30"},
	} {
		if got := tc.cfg.String(); got != tc.want {
			t.Errorf("%+v.String() = %q, want %q", tc.cfg, got, tc.want)
		}
	}
}
