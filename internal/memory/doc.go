// Package memory provides address arithmetic and address-space layout for the
// simulated machine.
//
// The simulator and the offline prefetch tools all reason about 32-byte cache
// lines and 4-byte words, mirroring the configuration studied by Tullsen and
// Eggers (32 KB direct-mapped caches, 32-byte blocks, on a 32-bit Sequent
// Symmetry). The geometry is configurable, but every address consumer in this
// repository shares the definitions in this package so the trace generators,
// cache filter and multiprocessor simulator can never disagree about which
// word falls in which line.
package memory
