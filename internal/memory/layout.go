package memory

import "fmt"

// Region is a named, contiguous range of the simulated address space claimed
// by a workload data structure (a particle array, a cost grid, a lock table,
// and so on). Regions exist so trace generators can lay out their data
// structures explicitly and so tests can assert which structure an address
// belongs to.
type Region struct {
	Name string
	Base Addr
	Size int
	// Shared records whether the workload intends the region to be accessed
	// by more than one processor. It is advisory metadata used by reports;
	// the simulator derives actual sharing from the trace itself.
	Shared bool
}

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool {
	return a >= r.Base && a < r.Base+Addr(r.Size)
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Layout allocates regions sequentially in the simulated address space.
// Allocation is deterministic: the same sequence of Alloc calls always yields
// the same addresses, which keeps workload traces reproducible.
type Layout struct {
	next    Addr
	line    int
	regions []Region
}

// NewLayout returns a Layout that allocates line-aligned regions starting at
// base. lineSize is used for alignment decisions (AllocLines, pad) and must
// be a positive power of two; anything else is a configuration error the
// caller (a workload generator or CLI) reports rather than a crash.
func NewLayout(base Addr, lineSize int) (*Layout, error) {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("memory: line size %d is not a positive power of two", lineSize)
	}
	return &Layout{next: align(base, Addr(lineSize)), line: lineSize}, nil
}

func align(a, to Addr) Addr { return (a + to - 1) &^ (to - 1) }

// Alloc claims size bytes for a region named name, aligned to the word size.
func (l *Layout) Alloc(name string, size int, shared bool) Region {
	l.next = align(l.next, WordSize)
	r := Region{Name: name, Base: l.next, Size: size, Shared: shared}
	l.regions = append(l.regions, r)
	l.next += Addr(size)
	return r
}

// AllocLines claims size bytes starting on a fresh cache line, so the region
// cannot falsely share its first line with the previous region.
func (l *Layout) AllocLines(name string, size int, shared bool) Region {
	l.next = align(l.next, Addr(l.line))
	r := Region{Name: name, Base: l.next, Size: size, Shared: shared}
	l.regions = append(l.regions, r)
	l.next += align(Addr(size), Addr(l.line))
	return r
}

// Record registers a region that was laid out externally (for example by a
// restructure.Mapper) without moving the cursor. Callers pair it with Skip.
func (l *Layout) Record(name string, base Addr, size int, shared bool) Region {
	r := Region{Name: name, Base: base, Size: size, Shared: shared}
	l.regions = append(l.regions, r)
	return r
}

// Skip advances the allocation cursor by size bytes without recording a
// region. Workloads use it to force particular cache-mapping conflicts (for
// example, Topopt places two private arrays exactly one cache-size apart so
// they collide in a direct-mapped cache, as the real program's arrays did).
func (l *Layout) Skip(size int) { l.next += Addr(size) }

// AlignTo rounds the cursor up so the next allocation starts at an address
// congruent to offset modulo modulus. It panics on a non-power-of-two modulus.
func (l *Layout) AlignTo(modulus int, offset int) {
	m := Addr(modulus)
	if m == 0 || m&(m-1) != 0 {
		panic(fmt.Sprintf("memory: bad modulus %d", modulus))
	}
	want := Addr(offset) & (m - 1)
	cur := l.next & (m - 1)
	if cur != want {
		l.next += (want - cur) & (m - 1)
	}
}

// Regions returns all allocated regions in allocation order.
func (l *Layout) Regions() []Region { return l.regions }

// Find returns the region containing a, if any.
func (l *Layout) Find(a Addr) (Region, bool) {
	for _, r := range l.regions {
		if r.Contains(a) {
			return r, true
		}
	}
	return Region{}, false
}

// Top returns the first unallocated address.
func (l *Layout) Top() Addr { return l.next }
