package memory

import "fmt"

// Addr is a byte address in the simulated shared address space.
type Addr uint64

// WordSize is the size of a machine word in bytes. The traced machine is a
// 32-bit multiprocessor, so a word is four bytes; false-sharing detection
// operates at word granularity.
const WordSize = 4

// Geometry describes a cache's shape. The paper's experiments all use a
// direct-mapped 32 KB cache with 32-byte lines; associativity is kept so the
// PWS temporal-locality filter (16-line fully associative) can reuse the same
// description.
type Geometry struct {
	// CacheSize is the total capacity in bytes.
	CacheSize int
	// LineSize is the cache-line (block) size in bytes. Must be a power of
	// two and a multiple of WordSize.
	LineSize int
	// Assoc is the set associativity; 1 means direct mapped. Assoc == 0 is
	// treated as fully associative (one set).
	Assoc int
}

// DefaultGeometry is the paper's simulated data cache: 32 KB, direct mapped,
// 32-byte lines.
func DefaultGeometry() Geometry {
	return Geometry{CacheSize: 32 * 1024, LineSize: 32, Assoc: 1}
}

// Validate reports an error if the geometry is internally inconsistent.
func (g Geometry) Validate() error {
	switch {
	case g.LineSize <= 0 || g.LineSize&(g.LineSize-1) != 0:
		return fmt.Errorf("memory: line size %d is not a positive power of two", g.LineSize)
	case g.LineSize%WordSize != 0:
		return fmt.Errorf("memory: line size %d is not a multiple of the %d-byte word", g.LineSize, WordSize)
	case g.CacheSize <= 0 || g.CacheSize%g.LineSize != 0:
		return fmt.Errorf("memory: cache size %d is not a positive multiple of line size %d", g.CacheSize, g.LineSize)
	case g.Assoc < 0:
		return fmt.Errorf("memory: negative associativity %d", g.Assoc)
	}
	lines := g.CacheSize / g.LineSize
	assoc := g.Assoc
	if assoc == 0 {
		assoc = lines
	}
	if lines%assoc != 0 {
		return fmt.Errorf("memory: %d lines not divisible by associativity %d", lines, assoc)
	}
	sets := lines / assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("memory: set count %d is not a power of two", sets)
	}
	return nil
}

// Lines returns the number of cache lines the geometry holds.
func (g Geometry) Lines() int { return g.CacheSize / g.LineSize }

// Ways returns the effective associativity (Lines() when fully associative).
func (g Geometry) Ways() int {
	if g.Assoc == 0 {
		return g.Lines()
	}
	return g.Assoc
}

// Sets returns the number of cache sets.
func (g Geometry) Sets() int { return g.Lines() / g.Ways() }

// WordsPerLine returns how many words a line holds.
func (g Geometry) WordsPerLine() int { return g.LineSize / WordSize }

// LineAddr returns the address of the first byte of the line containing a.
func (g Geometry) LineAddr(a Addr) Addr { return a &^ Addr(g.LineSize-1) }

// LineNumber returns the global line number of the line containing a.
func (g Geometry) LineNumber(a Addr) uint64 { return uint64(a) / uint64(g.LineSize) }

// SetIndex returns the cache set that address a maps to.
func (g Geometry) SetIndex(a Addr) int {
	return int(g.LineNumber(a) & uint64(g.Sets()-1))
}

// WordIndex returns the index of the word within its line (0-based).
func (g Geometry) WordIndex(a Addr) int {
	return int(a&Addr(g.LineSize-1)) / WordSize
}

// WordMask returns a bitmask with the bit for a's word within its line set.
// Lines are at most 64 words (256 bytes) for the mask to stay in a uint64;
// Validate callers in this repository never exceed that.
func (g Geometry) WordMask(a Addr) uint64 { return 1 << uint(g.WordIndex(a)) }

// String implements fmt.Stringer.
func (g Geometry) String() string {
	switch {
	case g.Assoc == 1:
		return fmt.Sprintf("%dKB direct-mapped, %dB lines", g.CacheSize/1024, g.LineSize)
	case g.Assoc == 0:
		return fmt.Sprintf("%dB fully-associative, %dB lines", g.CacheSize, g.LineSize)
	default:
		return fmt.Sprintf("%dKB %d-way, %dB lines", g.CacheSize/1024, g.Assoc, g.LineSize)
	}
}
