package memory

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	if g.CacheSize != 32*1024 || g.LineSize != 32 || g.Assoc != 1 {
		t.Fatalf("unexpected default geometry %+v", g)
	}
	if g.Lines() != 1024 {
		t.Errorf("Lines() = %d, want 1024", g.Lines())
	}
	if g.Sets() != 1024 {
		t.Errorf("Sets() = %d, want 1024 for direct mapped", g.Sets())
	}
	if g.WordsPerLine() != 8 {
		t.Errorf("WordsPerLine() = %d, want 8", g.WordsPerLine())
	}
}

func TestGeometryValidateRejectsBadShapes(t *testing.T) {
	cases := []struct {
		name string
		g    Geometry
	}{
		{"zero line", Geometry{CacheSize: 1024, LineSize: 0, Assoc: 1}},
		{"non-power-of-two line", Geometry{CacheSize: 1024, LineSize: 24, Assoc: 1}},
		{"line smaller than word multiple", Geometry{CacheSize: 1024, LineSize: 2, Assoc: 1}},
		{"cache not multiple of line", Geometry{CacheSize: 1000, LineSize: 32, Assoc: 1}},
		{"negative assoc", Geometry{CacheSize: 1024, LineSize: 32, Assoc: -1}},
		{"lines not divisible by assoc", Geometry{CacheSize: 3 * 32, LineSize: 32, Assoc: 2}},
		{"sets not power of two", Geometry{CacheSize: 96, LineSize: 32, Assoc: 1}},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.g)
		}
	}
}

func TestFullyAssociativeGeometry(t *testing.T) {
	g := Geometry{CacheSize: 16 * 32, LineSize: 32, Assoc: 0}
	if err := g.Validate(); err != nil {
		t.Fatalf("fully associative geometry invalid: %v", err)
	}
	if g.Sets() != 1 {
		t.Errorf("Sets() = %d, want 1", g.Sets())
	}
	if g.Ways() != 16 {
		t.Errorf("Ways() = %d, want 16", g.Ways())
	}
}

func TestAddressArithmetic(t *testing.T) {
	g := DefaultGeometry()
	a := Addr(0x1234_5678)
	if got := g.LineAddr(a); got != 0x1234_5660 {
		t.Errorf("LineAddr = %#x, want 0x12345660", uint64(got))
	}
	if got := g.WordIndex(a); got != 6 {
		t.Errorf("WordIndex = %d, want 6 (offset 0x18/4)", got)
	}
	if got := g.WordMask(a); got != 1<<6 {
		t.Errorf("WordMask = %#x, want 1<<6", got)
	}
	if got := g.SetIndex(a); got != int((0x12345678/32)%1024) {
		t.Errorf("SetIndex = %d", got)
	}
}

func TestAddressArithmeticProperties(t *testing.T) {
	g := DefaultGeometry()
	f := func(raw uint64) bool {
		a := Addr(raw)
		la := g.LineAddr(a)
		return la <= a &&
			a-la < Addr(g.LineSize) &&
			g.WordIndex(a) < g.WordsPerLine() &&
			g.SetIndex(a) < g.Sets() &&
			g.LineAddr(la) == la &&
			g.SetIndex(a) == g.SetIndex(la)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSameLineSameSet(t *testing.T) {
	g := DefaultGeometry()
	f := func(raw uint64, off uint8) bool {
		a := Addr(raw)
		b := g.LineAddr(a) + Addr(int(off)%g.LineSize)
		return g.LineNumber(a) == g.LineNumber(b) && g.SetIndex(a) == g.SetIndex(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustLayout(t *testing.T, base Addr, lineSize int) *Layout {
	t.Helper()
	l, err := NewLayout(base, lineSize)
	if err != nil {
		t.Fatalf("NewLayout(%#x, %d): %v", uint64(base), lineSize, err)
	}
	return l
}

func TestNewLayoutRejectsBadLineSize(t *testing.T) {
	for _, ls := range []int{0, -32, 24} {
		if _, err := NewLayout(0, ls); err == nil {
			t.Errorf("NewLayout accepted line size %d", ls)
		}
	}
}

func TestLayoutSequentialAllocation(t *testing.T) {
	l := mustLayout(t, 0x1000, 32)
	r1 := l.Alloc("a", 100, false)
	r2 := l.Alloc("b", 10, true)
	if r1.Base != 0x1000 {
		t.Errorf("first region at %#x, want 0x1000", uint64(r1.Base))
	}
	if r2.Base < r1.End() {
		t.Errorf("regions overlap: %#x < %#x", uint64(r2.Base), uint64(r1.End()))
	}
	if r2.Base%WordSize != 0 {
		t.Errorf("region not word aligned: %#x", uint64(r2.Base))
	}
	if !r1.Contains(r1.Base) || r1.Contains(r1.End()) {
		t.Error("Contains boundary behaviour wrong")
	}
}

func TestLayoutAllocLinesAlignment(t *testing.T) {
	l := mustLayout(t, 0x1000, 32)
	l.Alloc("odd", 7, false)
	r := l.AllocLines("aligned", 100, false)
	if r.Base%32 != 0 {
		t.Errorf("AllocLines region not line aligned: %#x", uint64(r.Base))
	}
	next := l.Alloc("next", 4, false)
	if next.Base < r.Base+Addr(128) { // 100 rounded up to 128
		t.Errorf("AllocLines did not round region size to lines: next at %#x", uint64(next.Base))
	}
}

func TestLayoutAlignTo(t *testing.T) {
	l := mustLayout(t, 0, 32)
	l.Alloc("pad", 100, false)
	l.AlignTo(32*1024, 512)
	r := l.Alloc("x", 4, false)
	if got := uint64(r.Base) % (32 * 1024); got != 512 {
		t.Errorf("AlignTo: base %% cacheSize = %d, want 512", got)
	}
	// Aligning when already aligned must not move the cursor.
	l2 := mustLayout(t, 0x8000, 32)
	l2.AlignTo(0x8000, 0)
	if l2.Top() != 0x8000 {
		t.Errorf("AlignTo moved an already-aligned cursor to %#x", uint64(l2.Top()))
	}
}

func TestLayoutFind(t *testing.T) {
	l := mustLayout(t, 0x1000, 32)
	a := l.Alloc("a", 64, false)
	b := l.Alloc("b", 64, true)
	if r, ok := l.Find(a.Base + 10); !ok || r.Name != "a" {
		t.Errorf("Find(a+10) = %v, %v", r, ok)
	}
	if r, ok := l.Find(b.Base); !ok || r.Name != "b" {
		t.Errorf("Find(b) = %v, %v", r, ok)
	}
	if _, ok := l.Find(0); ok {
		t.Error("Find(0) found a region before the base")
	}
}
