// Package names holds the one table-driven enum-name lookup every package's
// String methods share. Each enum keeps a names table next to its constants;
// Lookup renders in-range values from the table and out-of-range values as
// "Type(n)", so adding an enum value is a one-line table edit instead of a
// new switch arm — the copy-pasted switch pattern is where stale names hide.
package names
