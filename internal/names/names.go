package names

import (
	"fmt"
	"strings"
)

// Lookup returns names[i] when i is in range, and "typ(i)" otherwise.
func Lookup(typ string, names []string, i int) string {
	if i >= 0 && i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("%s(%d)", typ, i)
}

// Parse resolves s against names case-insensitively and returns its index.
// Unknown names fail with a diagnostic that lists every valid name, so a CLI
// error is self-documenting. Every enum parser in the tree shares this one
// contract (and its table-driven test shape).
func Parse(typ string, names []string, s string) (int, error) {
	for i, n := range names {
		if strings.EqualFold(s, n) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("unknown %s %q (valid: %s)", typ, s, strings.Join(names, ", "))
}
