// Package names holds the one table-driven enum-name lookup every package's
// String methods share. Each enum keeps a names table next to its constants;
// Lookup renders in-range values from the table and out-of-range values as
// "Type(n)", so adding an enum value is a one-line table edit instead of a
// new switch arm — the copy-pasted switch pattern is where stale names hide.
package names

import "fmt"

// Lookup returns names[i] when i is in range, and "typ(i)" otherwise.
func Lookup(typ string, names []string, i int) string {
	if i >= 0 && i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("%s(%d)", typ, i)
}
