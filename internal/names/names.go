package names

import "fmt"

// Lookup returns names[i] when i is in range, and "typ(i)" otherwise.
func Lookup(typ string, names []string, i int) string {
	if i >= 0 && i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("%s(%d)", typ, i)
}
