package names

import "testing"

func TestLookup(t *testing.T) {
	table := []string{"zero", "one"}
	tests := []struct {
		i    int
		want string
	}{
		{0, "zero"},
		{1, "one"},
		{2, "Thing(2)"},
		{-1, "Thing(-1)"},
	}
	for _, tt := range tests {
		if got := Lookup("Thing", table, tt.i); got != tt.want {
			t.Errorf("Lookup(Thing, %d) = %q, want %q", tt.i, got, tt.want)
		}
	}
	if got := Lookup("Empty", nil, 0); got != "Empty(0)" {
		t.Errorf("Lookup on nil table = %q, want Empty(0)", got)
	}
}
