package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: the recorder's spans serialized in the Trace
// Event Format that chrome://tracing and Perfetto (ui.perfetto.dev) load
// directly. Each processor becomes one thread track, the bus a final track,
// and every span a complete ("X") event. Simulation cycles are emitted as
// microseconds — the units are fictional but the proportions are exact, and
// Perfetto's zoom/aggregate tooling works unchanged.

// traceEvent is one entry of the Trace Event Format's traceEvents array.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   uint64 `json:"ts"`
	Dur  uint64 `json:"dur,omitempty"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Args any    `json:"args,omitempty"`
}

// traceFile is the JSON-object form of the Trace Event Format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the recorder's spans as Chrome trace-event
// JSON. The recorder must have been created with Options{Spans: true};
// without spans the output contains only the track-name metadata. A nil
// recorder writes an empty but valid trace.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	f := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if r != nil {
		busTid := len(r.procs)
		spans := r.Spans()
		// Multi-link interconnect spans land on BusTrack-N; give each link
		// its own named timeline after the processors.
		links := 1
		for _, s := range spans {
			if s.Track < 0 && BusTrack-s.Track+1 > links {
				links = BusTrack - s.Track + 1
			}
		}
		for tid := 0; tid < len(r.procs); tid++ {
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
				Args: map[string]string{"name": fmt.Sprintf("proc %d", tid)},
			})
		}
		for l := 0; l < links; l++ {
			name := "bus"
			if l > 0 {
				name = fmt.Sprintf("bus %d", l)
			}
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: busTid + l,
				Args: map[string]string{"name": name},
			})
		}
		for _, s := range spans {
			ev := traceEvent{Name: s.Name, Ph: "X", Ts: s.Start, Dur: s.End - s.Start, Pid: 0, Tid: s.Track}
			if s.Track < 0 {
				ev.Tid = busTid + (BusTrack - s.Track)
			}
			if s.Detail != "" {
				ev.Args = map[string]string{"class": s.Detail}
			}
			f.TraceEvents = append(f.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}
