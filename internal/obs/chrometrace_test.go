package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestChromeTraceValidates decodes the exported JSON back through the Trace
// Event Format schema the acceptance criteria name: a traceEvents array of
// events with name/ph/ts/pid/tid, "X" events carrying dur.
func TestChromeTraceValidates(t *testing.T) {
	r := New(2, Options{Spans: true})
	r.Wait(0, PhaseMemWait, 10, 110)
	r.Wait(1, PhaseLockWait, 5, 50)
	r.BusOccupied(10, 8, "fill", "demand", 0)
	r.BusOccupied(30, 2, "invalidate", "demand", 1)
	r.ProcFinished(0, 200)
	r.ProcFinished(1, 200)
	r.Finish(200)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   *uint64         `json:"ts"`
			Dur  uint64          `json:"dur"`
			Pid  *int            `json:"pid"`
			Tid  *int            `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var meta, complete, busEvents int
	for _, ev := range f.TraceEvents {
		if ev.Ts == nil || ev.Pid == nil || ev.Tid == nil || ev.Name == "" {
			t.Fatalf("event missing required fields: %+v", ev)
		}
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if *ev.Tid == 2 { // bus track for a 2-proc recorder
				busEvents++
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 3 { // proc 0, proc 1, bus
		t.Errorf("metadata events = %d, want 3", meta)
	}
	// 2 waits + 2 compute gaps (none at t=0... proc0 has compute [0,10)? No:
	// Wait(0,...,10,110) emits compute [0,10) and mem-wait; proc1 compute
	// [0,5) and lock-wait; two ProcFinished tails; two bus spans.
	if complete < 6 {
		t.Errorf("complete events = %d, want >= 6", complete)
	}
	if busEvents != 2 {
		t.Errorf("bus-track events = %d, want 2", busEvents)
	}
}

func TestChromeTraceNilAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	var r *Recorder
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f map[string]any
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil-recorder trace invalid: %v", err)
	}
	if _, ok := f["traceEvents"]; !ok {
		t.Fatal("nil-recorder trace missing traceEvents")
	}

	buf.Reset()
	if err := New(1, Options{}).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("span-less trace invalid: %v", err)
	}
}
