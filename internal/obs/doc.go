// Package obs is the simulator's observability layer: a per-run event
// recorder that turns the end-of-run aggregates of internal/sim and
// internal/bus into inspectable timelines and distributions.
//
// Three kinds of signal are captured:
//
//   - Per-processor phase intervals — compute time and each wait cause
//     (memory, lock, barrier, prefetch-buffer slot) — as spans.
//   - Bus occupancy intervals, tagged with the operation (fill, invalidate,
//     writeback, update), arbitration class, and requesting processor.
//   - Full prefetch lifetimes: issue → bus grant → fill → first demand use,
//     or the early ends (demand merged with the fetch still in flight,
//     eviction before use, remote invalidation before use, never used).
//     The classes map onto the coverage / accuracy / timeliness taxonomy of
//     the prefetching-survey literature and the paper's §4 discussion of
//     prefetch fates.
//
// A nil *Recorder is the disabled state: every method is nil-safe, call
// sites in the simulator additionally guard with a nil check, and a disabled
// run performs zero observability allocations (guarded by a benchmark and an
// allocation test). Recording never changes simulated behaviour — the
// recorder only observes times the simulator already computed — so enabling
// it cannot change a single reported number.
//
// Latency distributions use fixed bucket edges (LatencyBuckets, SlackBuckets)
// so serialized summaries are deterministic across runs, worker counts, and
// platforms.
package obs
