package obs

import (
	"fmt"
	"sort"
)

// Phase is a processor activity class for span recording.
type Phase uint8

const (
	// PhaseCompute covers instruction execution and completed accesses.
	PhaseCompute Phase = iota
	// PhaseMemWait is a demand-miss, upgrade, or prefetch-in-progress stall.
	PhaseMemWait
	// PhaseLockWait is time queued on a held lock.
	PhaseLockWait
	// PhaseBarrierWait is time parked at a barrier.
	PhaseBarrierWait
	// PhaseBufferWait is time stalled for a prefetch issue-buffer slot.
	PhaseBufferWait
	// NumPhases is the number of phases.
	NumPhases
)

var phaseNames = [NumPhases]string{"compute", "mem-wait", "lock-wait", "barrier-wait", "buffer-wait"}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase(?)"
}

// LifetimeClass is the fate of one prefetch that reached the bus.
type LifetimeClass uint8

const (
	// LifeUseful: the fill completed before the demand access arrived, and a
	// demand access used the line while it was still resident — the prefetch
	// the taxonomy calls accurate and timely.
	LifeUseful LifetimeClass = iota
	// LifeLate: a demand access merged with the prefetch while it was still
	// in flight (the paper's prefetch-in-progress miss) — accurate but not
	// timely; only part of the latency was hidden.
	LifeLate
	// LifeEvicted: the prefetched line (or its prefetch-buffer entry) was
	// displaced by a later fill before any demand use — a wasted prefetch
	// that also cost a conflict.
	LifeEvicted
	// LifeInvalidated: a remote processor's write invalidated the line (or
	// dropped the non-snooping buffer entry) before any demand use — the
	// sharing fate prefetching cannot win, §4.4's central observation.
	LifeInvalidated
	// LifeUnused: the line was still resident and untouched when the run
	// ended (or the fetch never completed) — inaccurate speculation.
	LifeUnused
	// NumLifetimeClasses is the number of fates.
	NumLifetimeClasses
)

var lifetimeNames = [NumLifetimeClasses]string{"useful", "late", "evicted", "invalidated", "unused"}

func (c LifetimeClass) String() string {
	if int(c) < len(lifetimeNames) {
		return lifetimeNames[c]
	}
	return "lifetime(?)"
}

// LatencyBuckets is the fixed upper-edge set (in cycles, inclusive) for
// issue→grant and issue→fill histograms. The paper's 100-cycle memory
// latency sits mid-range; the tail buckets absorb bus-saturation queueing.
// A final implicit +Inf bucket catches everything beyond the last edge.
var LatencyBuckets = []uint64{25, 50, 75, 100, 150, 200, 300, 500, 1000, 5000}

// SlackBuckets is the fixed upper-edge set for fill→first-use distances:
// how long a useful prefetch sat resident before paying off. Short slack
// means just-in-time; long slack means eviction exposure.
var SlackBuckets = []uint64{10, 25, 50, 100, 200, 400, 800, 1600, 5000, 20000}

// Histogram is a fixed-bucket latency distribution. Buckets[i] counts
// samples <= Edges[i]; the final element of Counts is the overflow bucket.
// With fixed edges the JSON form is deterministic for a deterministic run.
type Histogram struct {
	// Edges are the inclusive upper bucket edges in cycles.
	Edges []uint64 `json:"edges"`
	// Counts has len(Edges)+1 entries; the last is the overflow bucket.
	Counts []uint64 `json:"counts"`
	// Samples and Sum support exact means.
	Samples uint64 `json:"samples"`
	Sum     uint64 `json:"sum"`
}

// NewHistogram creates an empty histogram over the given edges.
func NewHistogram(edges []uint64) Histogram {
	return Histogram{Edges: edges, Counts: make([]uint64, len(edges)+1)}
}

// Observe adds one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.Edges), func(i int) bool { return h.Edges[i] >= v })
	h.Counts[i]++
	h.Samples++
	h.Sum += v
}

// Mean returns the exact sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Samples == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Samples)
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1) by linear
// interpolation inside the containing bucket. It is a pure function of the
// bucket counts, so it is deterministic; with fixed edges it is accurate to
// the bucket width. Overflow-bucket quantiles return the last finite edge.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Samples == 0 {
		return 0
	}
	rank := q * float64(h.Samples)
	var cum uint64
	lo := uint64(0)
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		hi := lo
		if i < len(h.Edges) {
			hi = h.Edges[i]
		}
		if float64(cum+c) >= rank {
			if i >= len(h.Edges) {
				return float64(h.Edges[len(h.Edges)-1])
			}
			within := (rank - float64(cum)) / float64(c)
			return float64(lo) + within*float64(hi-lo)
		}
		cum += c
		lo = hi
	}
	return float64(h.Edges[len(h.Edges)-1])
}

// Span is one interval on the simulated timeline.
type Span struct {
	// Name labels the span ("compute", "fill", "prefetch mp3d", ...).
	Name string
	// Track is the timeline the span belongs to: a processor id, or BusTrack.
	Track int
	// Start and End are simulation cycles (End >= Start).
	Start, End uint64
	// Detail optionally refines the name ("proc 3", "demand", ...).
	Detail string
}

// BusTrack is the Span.Track value for bus-occupancy spans. On a multi-link
// interconnect, link N's spans land on BusTrack-N, so link tracks stay
// distinct from (and sort before) processor tracks.
const BusTrack = -1

// lifetime is one in-progress prefetch being tracked.
type lifetime struct {
	issue, grant, fill uint64
	granted, filled    bool
	// merged is set when a demand access caught the prefetch in flight.
	merged bool
}

// procObs is the per-processor recording state.
type procObs struct {
	// pending tracks outstanding prefetch lifetimes by line address.
	pending map[uint64]*lifetime
	// lastSpanEnd is where the processor's previous span ended; the gap up
	// to a wait's start is recorded as compute.
	lastSpanEnd uint64
}

// BusOpCount aggregates one bus operation kind's grants and occupancy.
type BusOpCount struct {
	Grants uint64 `json:"grants"`
	Cycles uint64 `json:"cycles"`
}

// Summary is the reduced (histogram-level) view of one recorded run — what
// the metrics report serializes and the observability report section reads.
type Summary struct {
	// Lifetimes counts completed prefetch lifetimes by fate, indexed by
	// LifetimeClass (serialized as a name-keyed map for self-description).
	Lifetimes map[string]uint64 `json:"lifetimes"`
	// IssueToGrant is the arbitration-queue delay distribution of prefetch
	// fetches (issue to bus grant).
	IssueToGrant Histogram `json:"issue_to_grant"`
	// IssueToFill is the full prefetch latency distribution (issue to line
	// install).
	IssueToFill Histogram `json:"issue_to_fill"`
	// FillToUse is the resident-slack distribution of useful prefetches
	// (install to first demand use).
	FillToUse Histogram `json:"fill_to_use"`
	// BusOps aggregates bus grants and occupancy cycles by operation name,
	// split by arbitration class for fills ("fill/demand", "fill/prefetch").
	BusOps map[string]BusOpCount `json:"bus_ops"`
	// PhaseCycles sums each processor phase across the machine, keyed by
	// phase name. Compute is busy cycles; the waits are stall cycles.
	PhaseCycles map[string]uint64 `json:"phase_cycles"`
}

// LifetimeCount returns the count recorded for one fate.
func (s *Summary) LifetimeCount(c LifetimeClass) uint64 {
	return s.Lifetimes[c.String()]
}

// LifetimesTotal returns the number of classified prefetch lifetimes.
func (s *Summary) LifetimesTotal() uint64 {
	var n uint64
	for _, v := range s.Lifetimes {
		n += v
	}
	return n
}

// Accuracy returns the fraction of bus-reaching prefetches that were demand
// used at all (useful + late), per the survey's accuracy metric.
func (s *Summary) Accuracy() float64 {
	total := s.LifetimesTotal()
	if total == 0 {
		return 0
	}
	return float64(s.LifetimeCount(LifeUseful)+s.LifetimeCount(LifeLate)) / float64(total)
}

// Timeliness returns, of the accurate prefetches, the fraction that
// completed before their demand access arrived.
func (s *Summary) Timeliness() float64 {
	acc := s.LifetimeCount(LifeUseful) + s.LifetimeCount(LifeLate)
	if acc == 0 {
		return 0
	}
	return float64(s.LifetimeCount(LifeUseful)) / float64(acc)
}

// Coverage returns the fraction of would-be demand fetches that prefetching
// absorbed: useful prefetches over useful prefetches plus the demand misses
// that still initiated fetches. The caller supplies the run's adjusted CPU
// miss count (sim.Counters.AdjustedCPUMisses).
func (s *Summary) Coverage(adjustedCPUMisses uint64) float64 {
	useful := s.LifetimeCount(LifeUseful)
	if useful+adjustedCPUMisses == 0 {
		return 0
	}
	return float64(useful) / float64(useful+adjustedCPUMisses)
}

// Recorder collects observability data for one simulation run. The zero
// value is not useful; create one with New. A nil *Recorder is the disabled
// recorder: every method no-ops.
type Recorder struct {
	withSpans bool
	spans     []Span

	procs []procObs

	lifetimes [NumLifetimeClasses]uint64
	issGrant  Histogram
	issFill   Histogram
	fillUse   Histogram

	busOps map[string]BusOpCount

	phaseCycles [NumPhases]uint64

	finished bool
	endAt    uint64
}

// Options configures a Recorder.
type Options struct {
	// Spans retains every phase and bus interval for trace export. Off, the
	// recorder keeps only histogram- and counter-level state, which is what
	// the metrics report and the observability report section need.
	Spans bool
}

// New creates a recorder for a run with the given processor count.
func New(procs int, opt Options) *Recorder {
	r := &Recorder{
		withSpans: opt.Spans,
		procs:     make([]procObs, procs),
		issGrant:  NewHistogram(LatencyBuckets),
		issFill:   NewHistogram(LatencyBuckets),
		fillUse:   NewHistogram(SlackBuckets),
		busOps:    make(map[string]BusOpCount),
	}
	for i := range r.procs {
		r.procs[i].pending = make(map[uint64]*lifetime)
	}
	return r
}

// Enabled reports whether the recorder is live (non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// pend returns the pending lifetime for (proc, la), or nil.
func (r *Recorder) pend(proc int, la uint64) *lifetime {
	if proc < 0 || proc >= len(r.procs) {
		return nil
	}
	return r.procs[proc].pending[la]
}

// PrefetchIssued opens a lifetime: a prefetch for line la left proc's issue
// buffer for the bus at time now.
func (r *Recorder) PrefetchIssued(proc int, la uint64, now uint64) {
	if r == nil || proc < 0 || proc >= len(r.procs) {
		return
	}
	r.procs[proc].pending[la] = &lifetime{issue: now}
}

// PrefetchGranted marks the lifetime's bus grant.
func (r *Recorder) PrefetchGranted(proc int, la uint64, now uint64) {
	if r == nil {
		return
	}
	if lt := r.pend(proc, la); lt != nil && !lt.granted {
		lt.grant, lt.granted = now, true
		r.issGrant.Observe(now - lt.issue)
	}
}

// PrefetchMerged marks that a demand access merged with the in-flight
// prefetch: the lifetime will close as LifeLate when the fill lands.
func (r *Recorder) PrefetchMerged(proc int, la uint64, now uint64) {
	if r == nil {
		return
	}
	if lt := r.pend(proc, la); lt != nil {
		lt.merged = true
	}
}

// PrefetchFilled marks the line install. A lifetime a demand access already
// merged with closes here as LifeLate; otherwise it stays open awaiting its
// first use or early death.
func (r *Recorder) PrefetchFilled(proc int, la uint64, now uint64) {
	if r == nil {
		return
	}
	lt := r.pend(proc, la)
	if lt == nil || lt.filled {
		return
	}
	lt.fill, lt.filled = now, true
	r.issFill.Observe(now - lt.issue)
	if lt.merged {
		r.close(proc, la, LifeLate)
	}
	if r.withSpans {
		r.spans = append(r.spans, Span{Name: "prefetch-inflight", Track: proc, Start: lt.issue, End: now})
	}
}

// PrefetchFirstUse closes a lifetime as LifeUseful: a demand access touched
// the prefetched line while it was still resident.
func (r *Recorder) PrefetchFirstUse(proc int, la uint64, now uint64) {
	if r == nil {
		return
	}
	if lt := r.pend(proc, la); lt != nil && lt.filled {
		r.fillUse.Observe(now - lt.fill)
		r.close(proc, la, LifeUseful)
	}
}

// PrefetchEvicted closes a lifetime as LifeEvicted: the unused line (or its
// buffer entry) was displaced.
func (r *Recorder) PrefetchEvicted(proc int, la uint64, now uint64) {
	if r == nil {
		return
	}
	if lt := r.pend(proc, la); lt != nil && lt.filled {
		r.close(proc, la, LifeEvicted)
	}
}

// PrefetchInvalidated closes a lifetime as LifeInvalidated: a remote write
// killed the unused copy.
func (r *Recorder) PrefetchInvalidated(proc int, la uint64, now uint64) {
	if r == nil {
		return
	}
	if lt := r.pend(proc, la); lt != nil && lt.filled {
		r.close(proc, la, LifeInvalidated)
	}
}

// close retires a pending lifetime into its class counter.
func (r *Recorder) close(proc int, la uint64, c LifetimeClass) {
	delete(r.procs[proc].pending, la)
	r.lifetimes[c]++
}

// Wait records one completed wait interval for a processor, attributing the
// preceding gap (since the processor's previous recorded interval) to
// compute. Phase totals always accumulate; the spans themselves are kept
// only in span mode.
func (r *Recorder) Wait(proc int, phase Phase, start, end uint64) {
	if r == nil || proc < 0 || proc >= len(r.procs) || end < start {
		return
	}
	p := &r.procs[proc]
	if start > p.lastSpanEnd {
		r.phaseCycles[PhaseCompute] += start - p.lastSpanEnd
		if r.withSpans {
			r.spans = append(r.spans, Span{Name: PhaseCompute.String(), Track: proc, Start: p.lastSpanEnd, End: start})
		}
	}
	r.phaseCycles[phase] += end - start
	if r.withSpans {
		r.spans = append(r.spans, Span{Name: phase.String(), Track: proc, Start: start, End: end})
	}
	p.lastSpanEnd = end
}

// ProcFinished records a processor's final compute stretch, from its last
// recorded interval to its finish time.
func (r *Recorder) ProcFinished(proc int, finish uint64) {
	if r == nil || proc < 0 || proc >= len(r.procs) {
		return
	}
	p := &r.procs[proc]
	if finish > p.lastSpanEnd {
		r.phaseCycles[PhaseCompute] += finish - p.lastSpanEnd
		if r.withSpans {
			r.spans = append(r.spans, Span{Name: PhaseCompute.String(), Track: proc, Start: p.lastSpanEnd, End: finish})
		}
		p.lastSpanEnd = finish
	}
}

// BusOccupied records one bus grant: the resource is held for
// [grant, grant+occupancy) by proc's op transaction of the given
// arbitration class.
func (r *Recorder) BusOccupied(grant, occupancy uint64, op, class string, proc int) {
	r.BusOccupiedLink(0, grant, occupancy, op, class, proc)
}

// BusOccupiedLink is BusOccupied on a multi-link interconnect: link 0 records
// exactly as BusOccupied does (so single-bus recordings are byte-identical to
// the pre-seam recorder), and higher links get "@link"-suffixed op keys and
// their own occupancy track (BusTrack-link).
func (r *Recorder) BusOccupiedLink(link int, grant, occupancy uint64, op, class string, proc int) {
	if r == nil {
		return
	}
	key := op
	if op == "fill" {
		key = op + "/" + class
	}
	track := BusTrack
	if link > 0 {
		key = fmt.Sprintf("%s@%d", key, link)
		track = BusTrack - link
	}
	c := r.busOps[key]
	c.Grants++
	c.Cycles += occupancy
	r.busOps[key] = c
	if r.withSpans {
		r.spans = append(r.spans, Span{Name: op, Track: track, Start: grant, End: grant + occupancy, Detail: class})
	}
}

// Finish flushes end-of-run state: every still-pending lifetime closes as
// LifeUnused (resident-but-never-used, or never completed). Idempotent.
func (r *Recorder) Finish(end uint64) {
	if r == nil || r.finished {
		return
	}
	r.finished = true
	r.endAt = end
	for i := range r.procs {
		p := &r.procs[i]
		r.lifetimes[LifeUnused] += uint64(len(p.pending))
		p.pending = nil
	}
}

// Spans returns the retained spans (span mode only), ordered by start time,
// then track, then name, so export is deterministic.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	s := append([]Span(nil), r.spans...)
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Start != s[j].Start {
			return s[i].Start < s[j].Start
		}
		if s[i].Track != s[j].Track {
			return s[i].Track < s[j].Track
		}
		return s[i].Name < s[j].Name
	})
	return s
}

// Summary reduces the recording to its serializable form. Call after Finish.
func (r *Recorder) Summary() *Summary {
	if r == nil {
		return nil
	}
	s := &Summary{
		Lifetimes:    make(map[string]uint64, NumLifetimeClasses),
		IssueToGrant: r.issGrant,
		IssueToFill:  r.issFill,
		FillToUse:    r.fillUse,
		BusOps:       make(map[string]BusOpCount, len(r.busOps)),
		PhaseCycles:  make(map[string]uint64, NumPhases),
	}
	for c := LifetimeClass(0); c < NumLifetimeClasses; c++ {
		if r.lifetimes[c] > 0 {
			s.Lifetimes[c.String()] = r.lifetimes[c]
		}
	}
	for k, v := range r.busOps {
		s.BusOps[k] = v
	}
	for p := Phase(0); p < NumPhases; p++ {
		if r.phaseCycles[p] > 0 {
			s.PhaseCycles[p.String()] = r.phaseCycles[p]
		}
	}
	return s
}
