package obs

import (
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.PrefetchIssued(0, 1, 2)
	r.PrefetchGranted(0, 1, 3)
	r.PrefetchMerged(0, 1, 4)
	r.PrefetchFilled(0, 1, 5)
	r.PrefetchFirstUse(0, 1, 6)
	r.PrefetchEvicted(0, 1, 7)
	r.PrefetchInvalidated(0, 1, 8)
	r.Wait(0, PhaseMemWait, 1, 5)
	r.ProcFinished(0, 10)
	r.BusOccupied(1, 8, "fill", "demand", 0)
	r.Finish(10)
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder spans = %v", got)
	}
	if got := r.Summary(); got != nil {
		t.Fatalf("nil recorder summary = %v", got)
	}
}

// TestDisabledRecorderAllocatesNothing pins the tentpole's zero-allocation
// claim: with the recorder disabled (nil) the entire method surface performs
// no heap allocation.
func TestDisabledRecorderAllocatesNothing(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		r.PrefetchIssued(0, 1, 2)
		r.PrefetchGranted(0, 1, 3)
		r.PrefetchMerged(0, 1, 4)
		r.PrefetchFilled(0, 1, 5)
		r.PrefetchFirstUse(0, 1, 6)
		r.PrefetchEvicted(0, 1, 7)
		r.PrefetchInvalidated(0, 1, 8)
		r.Wait(0, PhaseMemWait, 1, 5)
		r.BusOccupied(1, 8, "fill", "demand", 0)
		r.Finish(10)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocated %.1f times per op batch", allocs)
	}
}

func TestLifetimeClassification(t *testing.T) {
	r := New(2, Options{})

	// Useful: issue -> grant -> fill -> first use.
	r.PrefetchIssued(0, 100, 10)
	r.PrefetchGranted(0, 100, 105)
	r.PrefetchFilled(0, 100, 113)
	r.PrefetchFirstUse(0, 100, 150)

	// Late: a demand access merged while in flight.
	r.PrefetchIssued(0, 200, 20)
	r.PrefetchMerged(0, 200, 60)
	r.PrefetchGranted(0, 200, 115)
	r.PrefetchFilled(0, 200, 123)

	// Evicted before use.
	r.PrefetchIssued(1, 300, 30)
	r.PrefetchGranted(1, 300, 125)
	r.PrefetchFilled(1, 300, 133)
	r.PrefetchEvicted(1, 300, 400)

	// Invalidated before use.
	r.PrefetchIssued(1, 400, 40)
	r.PrefetchGranted(1, 400, 135)
	r.PrefetchFilled(1, 400, 143)
	r.PrefetchInvalidated(1, 400, 500)

	// Unused: filled, still resident at the end.
	r.PrefetchIssued(0, 500, 50)
	r.PrefetchGranted(0, 500, 145)
	r.PrefetchFilled(0, 500, 153)

	// Unused: never completed.
	r.PrefetchIssued(1, 600, 60)

	r.Finish(1000)
	s := r.Summary()

	want := map[string]uint64{
		"useful": 1, "late": 1, "evicted": 1, "invalidated": 1, "unused": 2,
	}
	for k, v := range want {
		if s.Lifetimes[k] != v {
			t.Errorf("Lifetimes[%q] = %d, want %d (all: %v)", k, s.Lifetimes[k], v, s.Lifetimes)
		}
	}
	if got := s.LifetimesTotal(); got != 6 {
		t.Errorf("LifetimesTotal = %d, want 6", got)
	}
	// 2 of 6 bus-reaching prefetches were demand used.
	if got := s.Accuracy(); got != 2.0/6.0 {
		t.Errorf("Accuracy = %v, want 1/3", got)
	}
	// 1 of the 2 accurate prefetches completed in time.
	if got := s.Timeliness(); got != 0.5 {
		t.Errorf("Timeliness = %v, want 0.5", got)
	}
	// 1 useful prefetch vs 9 demand misses that still fetched.
	if got := s.Coverage(9); got != 0.1 {
		t.Errorf("Coverage(9) = %v, want 0.1", got)
	}
	if got := s.IssueToGrant.Samples; got != 5 {
		t.Errorf("IssueToGrant.Samples = %d, want 5", got)
	}
	if got := s.IssueToFill.Samples; got != 5 {
		t.Errorf("IssueToFill.Samples = %d, want 5", got)
	}
	if got := s.FillToUse.Samples; got != 1 {
		t.Errorf("FillToUse.Samples = %d, want 1", got)
	}
}

func TestDoubleEventsAreIdempotent(t *testing.T) {
	r := New(1, Options{})
	r.PrefetchIssued(0, 100, 10)
	r.PrefetchGranted(0, 100, 105)
	r.PrefetchGranted(0, 100, 110) // ignored: already granted
	r.PrefetchFilled(0, 100, 113)
	r.PrefetchFilled(0, 100, 120) // ignored: already filled
	r.PrefetchFirstUse(0, 100, 150)
	r.PrefetchFirstUse(0, 100, 160)    // ignored: lifetime closed
	r.PrefetchEvicted(0, 100, 170)     // ignored: lifetime closed
	r.PrefetchInvalidated(0, 100, 180) // ignored: lifetime closed
	r.Finish(1000)
	r.Finish(2000) // idempotent
	s := r.Summary()
	if got := s.LifetimesTotal(); got != 1 {
		t.Fatalf("LifetimesTotal = %d, want 1 (lifetimes: %v)", got, s.Lifetimes)
	}
	if s.Lifetimes["useful"] != 1 {
		t.Fatalf("Lifetimes = %v, want 1 useful", s.Lifetimes)
	}
	if s.IssueToGrant.Samples != 1 || s.IssueToFill.Samples != 1 {
		t.Fatalf("histogram samples = %d/%d, want 1/1", s.IssueToGrant.Samples, s.IssueToFill.Samples)
	}
}

func TestUnfilledLifetimeIgnoresEarlyDeath(t *testing.T) {
	// Eviction/invalidation/first-use events for a lifetime that never
	// filled must not close it; it ends as unused.
	r := New(1, Options{})
	r.PrefetchIssued(0, 100, 10)
	r.PrefetchFirstUse(0, 100, 20)
	r.PrefetchEvicted(0, 100, 30)
	r.PrefetchInvalidated(0, 100, 40)
	r.Finish(100)
	s := r.Summary()
	if s.Lifetimes["unused"] != 1 || s.LifetimesTotal() != 1 {
		t.Fatalf("Lifetimes = %v, want exactly 1 unused", s.Lifetimes)
	}
}

func TestOutOfRangeProcIgnored(t *testing.T) {
	r := New(1, Options{})
	r.PrefetchIssued(-1, 1, 2)
	r.PrefetchIssued(7, 1, 2)
	r.Wait(-1, PhaseMemWait, 0, 5)
	r.Wait(7, PhaseMemWait, 0, 5)
	r.ProcFinished(9, 5)
	r.Finish(10)
	s := r.Summary()
	if s.LifetimesTotal() != 0 || len(s.PhaseCycles) != 0 {
		t.Fatalf("out-of-range events recorded: %v %v", s.Lifetimes, s.PhaseCycles)
	}
}

func TestWaitAttributesComputeGaps(t *testing.T) {
	r := New(1, Options{Spans: true})
	r.Wait(0, PhaseMemWait, 10, 110)   // compute [0,10), mem-wait [10,110)
	r.Wait(0, PhaseLockWait, 150, 200) // compute [110,150), lock-wait [150,200)
	r.Wait(0, PhaseBarrierWait, 200, 260)
	r.Wait(0, PhaseBufferWait, 260, 270)
	r.ProcFinished(0, 300) // compute [270,300)
	r.ProcFinished(0, 300) // no-op: already there
	r.Finish(300)
	s := r.Summary()
	want := map[string]uint64{
		"compute": 10 + 40 + 30, "mem-wait": 100, "lock-wait": 50, "barrier-wait": 60, "buffer-wait": 10,
	}
	for k, v := range want {
		if s.PhaseCycles[k] != v {
			t.Errorf("PhaseCycles[%q] = %d, want %d", k, s.PhaseCycles[k], v)
		}
	}
	spans := r.Spans()
	if len(spans) != 7 {
		t.Fatalf("got %d spans, want 7: %v", len(spans), spans)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("spans not ordered by start: %v", spans)
		}
	}
}

func TestBusOccupiedAggregates(t *testing.T) {
	r := New(1, Options{Spans: true})
	r.BusOccupied(10, 8, "fill", "demand", 0)
	r.BusOccupied(20, 8, "fill", "prefetch", 0)
	r.BusOccupied(30, 8, "fill", "demand", 0)
	r.BusOccupied(40, 2, "invalidate", "demand", 0)
	r.BusOccupied(50, 8, "writeback", "writeback", 0)
	r.Finish(100)
	s := r.Summary()
	if c := s.BusOps["fill/demand"]; c.Grants != 2 || c.Cycles != 16 {
		t.Errorf("fill/demand = %+v, want 2 grants / 16 cycles", c)
	}
	if c := s.BusOps["fill/prefetch"]; c.Grants != 1 || c.Cycles != 8 {
		t.Errorf("fill/prefetch = %+v, want 1 grant / 8 cycles", c)
	}
	if c := s.BusOps["invalidate"]; c.Grants != 1 || c.Cycles != 2 {
		t.Errorf("invalidate = %+v", c)
	}
	if c := s.BusOps["writeback"]; c.Grants != 1 || c.Cycles != 8 {
		t.Errorf("writeback = %+v", c)
	}
	var busSpans int
	for _, sp := range r.Spans() {
		if sp.Track == BusTrack {
			busSpans++
		}
	}
	if busSpans != 5 {
		t.Errorf("bus spans = %d, want 5", busSpans)
	}
}

func TestSummaryOnlyModeKeepsNoSpans(t *testing.T) {
	r := New(1, Options{})
	r.Wait(0, PhaseMemWait, 10, 110)
	r.BusOccupied(10, 8, "fill", "demand", 0)
	r.PrefetchIssued(0, 100, 10)
	r.PrefetchGranted(0, 100, 105)
	r.PrefetchFilled(0, 100, 113)
	r.Finish(200)
	if got := r.Spans(); len(got) != 0 {
		t.Fatalf("summary-only recorder kept %d spans", len(got))
	}
	if r.Summary().PhaseCycles["mem-wait"] != 100 {
		t.Fatal("summary-only recorder lost phase totals")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]uint64{10, 20, 40})
	for _, v := range []uint64{5, 10, 11, 19, 35, 100} {
		h.Observe(v)
	}
	if got := h.Counts; got[0] != 2 || got[1] != 2 || got[2] != 1 || got[3] != 1 {
		t.Fatalf("counts = %v", got)
	}
	if got := h.Mean(); got != 180.0/6.0 {
		t.Errorf("Mean = %v, want 30", got)
	}
	// The median rank (3 of 6) falls at the top of the (10,20] bucket.
	if got := h.Quantile(0.5); got <= 10 || got > 20 {
		t.Errorf("Quantile(0.5) = %v, want in (10,20]", got)
	}
	// The max falls in the overflow bucket, reported as the last finite edge.
	if got := h.Quantile(1.0); got != 40 {
		t.Errorf("Quantile(1.0) = %v, want 40", got)
	}
	var empty Histogram
	empty = NewHistogram([]uint64{10})
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile/mean not 0")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	for v := uint64(0); v < 2000; v += 7 {
		h.Observe(v)
	}
	prev := -1.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, got, prev)
		}
		prev = got
	}
}

func TestPhaseAndLifetimeNames(t *testing.T) {
	if PhaseCompute.String() != "compute" || PhaseBufferWait.String() != "buffer-wait" {
		t.Error("phase names wrong")
	}
	if Phase(250).String() != "phase(?)" {
		t.Error("out-of-range phase name")
	}
	if LifeUseful.String() != "useful" || LifeUnused.String() != "unused" {
		t.Error("lifetime names wrong")
	}
	if LifetimeClass(250).String() != "lifetime(?)" {
		t.Error("out-of-range lifetime name")
	}
}
