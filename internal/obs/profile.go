package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
	rtrace "runtime/trace"
)

// Profiling is the shared -pprof/-cpuprofile/-exectrace plumbing of the
// CLIs: an optional pprof HTTP listener plus optional CPU-profile and
// execution-trace files. Start it once after flag parsing; Stop flushes and
// closes everything. The zero value (no options set) starts nothing.
type Profiling struct {
	// PprofAddr, when non-empty, serves net/http/pprof on the address
	// (for example "localhost:6060").
	PprofAddr string
	// CPUProfile, when non-empty, writes a runtime/pprof CPU profile there.
	CPUProfile string
	// ExecTrace, when non-empty, writes a runtime/trace execution trace there.
	ExecTrace string

	ln         net.Listener
	cpuFile    *os.File
	traceFile  *os.File
	cpuStarted bool
}

// Start opens the configured profiling outputs. On error everything already
// started is stopped, so a failed Start never leaks files or listeners.
func (p *Profiling) Start() error {
	if p.PprofAddr != "" {
		ln, err := net.Listen("tcp", p.PprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		p.ln = ln
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln) //nolint:errcheck // shut down by closing the listener
	}
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			p.Stop()
			return fmt.Errorf("cpu profile: %w", err)
		}
		p.cpuFile = f
		if err := rpprof.StartCPUProfile(f); err != nil {
			p.Stop()
			return fmt.Errorf("cpu profile: %w", err)
		}
		p.cpuStarted = true
	}
	if p.ExecTrace != "" {
		f, err := os.Create(p.ExecTrace)
		if err != nil {
			p.Stop()
			return fmt.Errorf("exec trace: %w", err)
		}
		p.traceFile = f
		if err := rtrace.Start(f); err != nil {
			p.Stop()
			return fmt.Errorf("exec trace: %w", err)
		}
	}
	return nil
}

// Addr returns the pprof listener's bound address (useful with ":0"), or "".
func (p *Profiling) Addr() string {
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// Stop flushes and closes everything Start opened. Safe to call multiple
// times and on a Profiling whose Start failed partway.
func (p *Profiling) Stop() {
	if rtrace.IsEnabled() {
		rtrace.Stop()
	}
	if p.traceFile != nil {
		p.traceFile.Close()
		p.traceFile = nil
	}
	if p.cpuStarted {
		rpprof.StopCPUProfile()
		p.cpuStarted = false
	}
	if p.cpuFile != nil {
		p.cpuFile.Close()
		p.cpuFile = nil
	}
	if p.ln != nil {
		p.ln.Close()
		p.ln = nil
	}
	// Keep the goroutine accounting honest in tests that start many servers.
	runtime.Gosched()
}
