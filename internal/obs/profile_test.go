package obs

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func TestProfilingZeroValueIsNoop(t *testing.T) {
	var p Profiling
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if p.Addr() != "" {
		t.Errorf("Addr = %q, want empty", p.Addr())
	}
	p.Stop()
	p.Stop() // idempotent
}

func TestProfilingPprofServer(t *testing.T) {
	p := Profiling{PprofAddr: "127.0.0.1:0"}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", p.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint status %d", resp.StatusCode)
	}
}

func TestProfilingFiles(t *testing.T) {
	dir := t.TempDir()
	p := Profiling{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		ExecTrace:  filepath.Join(dir, "exec.trace"),
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = fmt.Sprintf("warm %d", i)
	}
	p.Stop()
	for _, f := range []string{p.CPUProfile, p.ExecTrace} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestProfilingBadAddr(t *testing.T) {
	p := Profiling{PprofAddr: "256.256.256.256:99999"}
	if err := p.Start(); err == nil {
		p.Stop()
		t.Fatal("expected error for bad listen address")
	}
}
