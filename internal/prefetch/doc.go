// Package prefetch implements the paper's offline prefetch insertion: the
// "ideal for current compiler-directed prefetching technology", an oracle
// that perfectly predicts non-sharing misses and places a prefetch
// instruction a fixed number of estimated CPU cycles ahead of each predicted
// miss (paper §3.1).
//
// The five disciplines of §4.1 are reproduced exactly:
//
//	NP    no prefetching (the annotation is the identity).
//	PREF  prefetch every access the uniprocessor cache filter predicts to
//	      miss, 100 cycles ahead, in shared mode.
//	EXCL  as PREF, but predicted write misses prefetch in exclusive mode.
//	LPD   as PREF with a 400-cycle prefetch distance.
//	PWS   as PREF, plus redundant prefetches of write-shared lines chosen
//	      by a 16-line associative temporal-locality filter.
//
// The oracle is one implementation of the pluggable Prefetcher interface
// (engine.go). Beside it sit three online engines — stride, temporal
// (SISB-style), and pointer-chase — that train on the demand stream during
// the simulation and issue prefetches with no future knowledge, selected
// per run by sim.Config.Online (see DESIGN.md §5b).
package prefetch
