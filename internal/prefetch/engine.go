package prefetch

// The pluggable prefetcher kernel. The paper's prefetcher is an offline
// oracle: Annotate inserts prefetch events into the trace with perfect
// knowledge of future misses. This file extracts the seam that lets online
// engines — prefetchers that train on the demand stream *during* the
// simulation, with no future knowledge — slot in beside it, mirroring how
// internal/coherence extracted Protocol from the simulator.
//
// A Prefetcher is the selectable unit: the oracle (Annotate wrapped behind
// the interface) or one of three online engines. Online engines implement
// Engine, the per-processor training/prediction unit the simulator drives:
// the proc loop shows every demand reference to Observe, which may return
// candidate prefetch line addresses; the simulator issues them as bus
// fetches subject to the same outstanding-prefetch bound as oracle
// prefetch instructions, except that a full issue buffer *drops* the
// candidate instead of stalling the CPU — an online engine is hardware
// beside the processor, not an instruction in its stream.
//
// The traces carry no program counter, so engines key their tables on a PC
// proxy the simulator derives from the event's instruction gap (see
// sim/proc.go): references from the same static access site share their
// generator-assigned gap, which makes the proxy address-independent —
// exactly the property the PC-indexed tables need.

import (
	"fmt"

	"busprefetch/internal/memory"
	"busprefetch/internal/names"
	"busprefetch/internal/trace"
)

// Kind identifies a prefetcher implementation.
type Kind int

const (
	// Oracle is the paper's offline prefetcher: Annotate inserts prefetch
	// events into the trace ahead of predicted misses, with perfect
	// coverage by construction. The zero value, so a zero sim.Config runs
	// exactly as before the online kernel existed.
	Oracle Kind = iota
	// Stride is the sequential/stride engine: a per-PC table that learns
	// each access site's address stride and, once confident, prefetches
	// the lines the site will touch next.
	Stride
	// Temporal is the PC-indexed temporal engine (SISB-style): a training
	// unit records, per PC, the previous miss line, building a mapping
	// cache of observed miss successions; predictions replay the recorded
	// chain from the current miss.
	Temporal
	// Pointer is the pointer-chase engine for linked data structures: it
	// learns which far lines a line's contents lead to, and on each fill
	// scans those learned out-edges as candidates — the trace-driven
	// stand-in for scanning the filled line's words for pointers (the
	// traces carry addresses, not data values).
	Pointer
	numPrefetchers
)

var prefetcherNames = []string{"oracle", "stride", "temporal", "pointer"}

func (k Kind) String() string { return names.Lookup("Prefetcher", prefetcherNames, int(k)) }

// Valid reports whether k names a known prefetcher.
func (k Kind) Valid() bool { return k >= 0 && k < numPrefetchers }

// Online reports whether k trains during simulation (everything but the
// oracle).
func (k Kind) Online() bool { return k.Valid() && k != Oracle }

// Kinds returns every prefetcher in presentation order.
func Kinds() []Kind { return []Kind{Oracle, Stride, Temporal, Pointer} }

// ParsePrefetcher resolves a prefetcher name ("oracle", "stride",
// "temporal", "pointer", case-insensitive) to its Kind.
func ParsePrefetcher(name string) (Kind, error) {
	i, err := names.Parse("prefetcher", prefetcherNames, name)
	if err != nil {
		return 0, fmt.Errorf("prefetch: %w", err)
	}
	return Kind(i), nil
}

// Prefetcher is one selectable prefetching implementation: the offline
// oracle or an online engine.
type Prefetcher interface {
	// Kind identifies the prefetcher.
	Kind() Kind
	// String returns the prefetcher's presentation name.
	String() string
	// Annotate prepares a trace for a run under this prefetcher. The
	// oracle inserts prefetch events per the options; online prefetchers
	// return an unmodified clone — their prefetches are issued at
	// simulation time by the Engine, so the replayed stream is exactly
	// the NP demand stream.
	Annotate(t *trace.Trace, opt Options) (*trace.Trace, error)
	// AnnotateSource is Annotate over a streaming trace.Source — the
	// fused hot path. The oracle returns a transforming source whose
	// streams are byte-identical to Annotate's output; online
	// prefetchers return src unchanged (sources are read-only, so no
	// clone is needed). prof optionally supplies a memoized sharing
	// profile (computed with opt.Geometry) for the strategies that need
	// whole-trace knowledge; nil means compute it on demand.
	AnnotateSource(src trace.Source, opt Options, prof *trace.SharingProfile) (trace.Source, error)
	// NewEngine returns a fresh per-processor online engine, or nil for
	// the oracle (which needs none). Engines are stateful and must not be
	// shared across processors or runs.
	NewEngine(opt EngineOptions) Engine
}

// ByKind returns the prefetcher implementation for k. It panics on an
// unknown kind: kinds are validated at configuration time, so an invalid
// kind here is a programming error.
func ByKind(k Kind) Prefetcher {
	switch k {
	case Oracle:
		return oraclePrefetcher{}
	case Stride, Temporal, Pointer:
		return onlinePrefetcher{kind: k}
	}
	panic(fmt.Sprintf("prefetch: no implementation for %v", k))
}

// Prefetchers returns one instance of every prefetcher, in Kinds order.
func Prefetchers() []Prefetcher {
	ps := make([]Prefetcher, 0, numPrefetchers)
	for _, k := range Kinds() {
		ps = append(ps, ByKind(k))
	}
	return ps
}

// Ref is one demand reference shown to an online engine, in program order.
type Ref struct {
	// PC is the access site's identity — on real hardware the program
	// counter; here the simulator's gap-derived proxy (see package
	// comment). Engines only ever compare PCs for equality.
	PC uint64
	// Addr is the word-granular reference address.
	Addr memory.Addr
	// Line is Addr's cache-line address.
	Line memory.Addr
	// Write is true for demand writes (lock accesses are never shown).
	Write bool
	// Miss is true when the access missed the local cache hierarchy —
	// including merges with a still-in-flight prefetch.
	Miss bool
}

// Candidate is one line an engine proposes to prefetch.
type Candidate struct {
	// Line is the line address to fetch.
	Line memory.Addr
	// Excl requests a read-for-ownership fetch (the EXCL discipline's
	// exclusive prefetch).
	Excl bool
}

// Engine is one processor's online prefetcher. The simulator calls Observe
// for every demand reference the processor retires, issues the returned
// candidates (bounded by the outstanding-prefetch limit), and reports
// fills and first uses back so the engine can score itself.
//
// Engines must be deterministic: candidate order and content may depend
// only on the sequence of calls, never on map iteration order or time.
type Engine interface {
	// Kind identifies the engine.
	Kind() Kind
	// Observe shows the engine one demand reference and returns the
	// candidate prefetches it wants issued, appended to cand (whose
	// backing array the caller reuses; engines must not retain it). At
	// most its configured degree of candidates per call. Engines train
	// on every call but emit nothing under the NP strategy.
	Observe(r Ref, cand []Candidate) []Candidate
	// Fill reports a line install (demand or prefetch) into the
	// processor's cache or prefetch buffer.
	Fill(la memory.Addr, wasPrefetch bool)
	// Useful reports the first demand use of a prefetched line — the
	// engine's accuracy feedback.
	Useful(la memory.Addr)
	// Stats returns the engine's training/issue bookkeeping.
	Stats() EngineStats
}

// DefaultDegree is the number of candidate lines an engine may emit per
// observed reference when EngineOptions.Degree is zero.
const DefaultDegree = 2

// lpdLookahead is the online analogue of the LPD strategy's 400-cycle
// prefetch distance: engines predict 4x further ahead (LongDistance /
// DefaultDistance) along their learned pattern.
const lpdLookahead = LongDistance / DefaultDistance

// EngineOptions parameterizes an online engine.
type EngineOptions struct {
	// Strategy is the prefetch discipline the engine applies online: NP
	// emits nothing, EXCL turns write-site predictions into exclusive
	// fetches, LPD predicts lpdLookahead steps further along the learned
	// pattern, and PREF/PWS are identical — PWS's extra write-shared
	// coverage needs the oracle's whole-trace sharing knowledge, which an
	// online engine does not have.
	Strategy Strategy
	// Geometry supplies the line size candidates are aligned to.
	Geometry memory.Geometry
	// Degree bounds candidates per observed reference; zero selects
	// DefaultDegree.
	Degree int
}

func (o EngineOptions) degree() int {
	if o.Degree > 0 {
		return o.Degree
	}
	return DefaultDegree
}

func (o EngineOptions) lookahead() int {
	if o.Strategy == LPD {
		return lpdLookahead
	}
	return 1
}

// excl reports whether a prediction triggered by r should fetch exclusive.
func (o EngineOptions) excl(r Ref) bool {
	return o.Strategy == EXCL && r.Write
}

// EngineStats is an engine's own bookkeeping, in the style of the SISB
// accurate/untimely/divergence counters. The authoritative
// coverage/accuracy/timeliness measurement is the obs lifetime taxonomy;
// these counters are the engine's internal view, cheap enough to keep
// always-on.
type EngineStats struct {
	// Observed counts demand references shown to the engine.
	Observed uint64
	// Trained counts table updates (entries created or patterns learned).
	Trained uint64
	// Emitted counts candidate lines proposed.
	Emitted uint64
	// Useful counts prefetched lines that saw a first demand use.
	Useful uint64
	// Untimely counts demand misses on lines the engine had recently
	// proposed but that had not filled yet (tracked over a bounded window
	// of recent emissions).
	Untimely uint64
	// Divergence counts learned patterns overwritten by contradicting
	// observations (the temporal engine's mapping rewrites).
	Divergence uint64
}

// Add accumulates o into s (per-processor engines sum to a run total).
func (s *EngineStats) Add(o EngineStats) {
	s.Observed += o.Observed
	s.Trained += o.Trained
	s.Emitted += o.Emitted
	s.Useful += o.Useful
	s.Untimely += o.Untimely
	s.Divergence += o.Divergence
}

// OnlineConfig selects and parameterizes an online engine for a
// simulation run (sim.Config.Online). The zero value — the oracle —
// enables nothing: the simulator constructs no engines and its hot paths
// are byte-identical to a build without the online kernel.
type OnlineConfig struct {
	// Kind selects the engine; Oracle (the zero value) disables online
	// prefetching.
	Kind Kind
	// Strategy is the discipline the engine applies (see
	// EngineOptions.Strategy).
	Strategy Strategy
	// Degree bounds candidates per observed reference; zero selects
	// DefaultDegree.
	Degree int
}

// Enabled reports whether an online engine is configured.
func (c OnlineConfig) Enabled() bool { return c.Kind != Oracle }

// Validate reports an error for inconsistent configurations.
func (c OnlineConfig) Validate() error {
	if !c.Kind.Valid() {
		return fmt.Errorf("prefetch: unknown prefetcher %d", int(c.Kind))
	}
	if c.Strategy < NP || c.Strategy >= NumStrategies {
		return fmt.Errorf("prefetch: bad strategy %d", int(c.Strategy))
	}
	if c.Degree < 0 {
		return fmt.Errorf("prefetch: negative degree %d", c.Degree)
	}
	return nil
}

// NewEngine constructs the configured per-processor engine, or nil when
// online prefetching is disabled.
func (c OnlineConfig) NewEngine(g memory.Geometry) Engine {
	if !c.Enabled() {
		return nil
	}
	return ByKind(c.Kind).NewEngine(EngineOptions{Strategy: c.Strategy, Geometry: g, Degree: c.Degree})
}

// oraclePrefetcher adapts the offline annotator to the Prefetcher
// interface.
type oraclePrefetcher struct{}

func (oraclePrefetcher) Kind() Kind     { return Oracle }
func (oraclePrefetcher) String() string { return Oracle.String() }
func (oraclePrefetcher) Annotate(t *trace.Trace, opt Options) (*trace.Trace, error) {
	return Annotate(t, opt)
}
func (oraclePrefetcher) AnnotateSource(src trace.Source, opt Options, prof *trace.SharingProfile) (trace.Source, error) {
	return AnnotateSource(src, opt, prof)
}
func (oraclePrefetcher) NewEngine(EngineOptions) Engine { return nil }

// onlinePrefetcher is the shared Prefetcher wrapper for the online
// engines: annotation is a validated clone (the demand stream replays
// unmodified), and NewEngine dispatches on the kind.
type onlinePrefetcher struct{ kind Kind }

func (p onlinePrefetcher) Kind() Kind     { return p.kind }
func (p onlinePrefetcher) String() string { return p.kind.String() }

func (p onlinePrefetcher) Annotate(t *trace.Trace, opt Options) (*trace.Trace, error) {
	if err := opt.Geometry.Validate(); err != nil {
		return nil, err
	}
	if opt.Strategy < NP || opt.Strategy >= NumStrategies {
		return nil, fmt.Errorf("prefetch: bad strategy %d", int(opt.Strategy))
	}
	return t.Clone(), nil
}

func (p onlinePrefetcher) AnnotateSource(src trace.Source, opt Options, _ *trace.SharingProfile) (trace.Source, error) {
	if err := opt.Geometry.Validate(); err != nil {
		return nil, err
	}
	if opt.Strategy < NP || opt.Strategy >= NumStrategies {
		return nil, fmt.Errorf("prefetch: bad strategy %d", int(opt.Strategy))
	}
	// Online engines replay the unmodified demand stream; their
	// prefetches are issued at simulation time. Sources are read-only,
	// so the stream passes through without even Annotate's clone.
	return src, nil
}

func (p onlinePrefetcher) NewEngine(opt EngineOptions) Engine {
	switch p.kind {
	case Stride:
		return newStrideEngine(opt)
	case Temporal:
		return newTemporalEngine(opt)
	case Pointer:
		return newPointerEngine(opt)
	}
	panic(fmt.Sprintf("prefetch: no engine for %v", p.kind))
}

// pendingCap bounds the recent-emission window the untimely counter scans.
const pendingCap = 64

// track is the bookkeeping every engine embeds: the NP gate, the stats
// block, and a bounded FIFO of recently emitted lines used to detect
// untimely prefetches (a demand miss arriving before the fill).
type track struct {
	opt     EngineOptions
	stats   EngineStats
	pending []memory.Addr
}

// enabled reports whether the engine may emit candidates at all.
func (t *track) enabled() bool { return t.opt.Strategy != NP }

// emit appends c to cand and records the emission for untimely tracking.
func (t *track) emit(cand []Candidate, c Candidate) []Candidate {
	t.stats.Emitted++
	if len(t.pending) >= pendingCap {
		copy(t.pending, t.pending[1:])
		t.pending = t.pending[:len(t.pending)-1]
	}
	t.pending = append(t.pending, c.Line)
	return append(cand, c)
}

// noteFill drops la from the pending window: the prefetch arrived.
func (t *track) noteFill(la memory.Addr) {
	for i, x := range t.pending {
		if x == la {
			t.pending = append(t.pending[:i], t.pending[i+1:]...)
			return
		}
	}
}

// noteMiss scores a demand miss against the pending window: a hit there
// means the engine predicted the line but not early enough.
func (t *track) noteMiss(r Ref) {
	if !r.Miss {
		return
	}
	for i, x := range t.pending {
		if x == r.Line {
			t.stats.Untimely++
			t.pending = append(t.pending[:i], t.pending[i+1:]...)
			return
		}
	}
}

// Useful implements Engine.Useful.
func (t *track) Useful(memory.Addr) { t.stats.Useful++ }

// Stats implements Engine.Stats.
func (t *track) Stats() EngineStats { return t.stats }
