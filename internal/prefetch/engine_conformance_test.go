package prefetch_test

import (
	"testing"

	"busprefetch/internal/memory"
	"busprefetch/internal/prefetch"
)

// The engine conformance suite, mirroring the coherence-protocol one:
// each online engine's issue behavior is pinned on explicit demand
// sequences — stride detection, temporal replay, pointer-chase candidate
// extraction — and a set of engine-generic laws (degree bound, line
// alignment, NP never issues, fresh engines are independent) runs over
// every registered engine, so a future engine added to the registry is
// exercised without new test plumbing.

// step is one scripted call into an engine: a demand reference to
// observe, or a fill notification.
type step struct {
	// fill, when true, delivers Fill(fillLine, fillWasPref) instead of an
	// observation.
	fill        bool
	fillLine    memory.Addr
	fillWasPref bool

	ref prefetch.Ref
	// want is the exact candidate list Observe must return for this step.
	want []prefetch.Candidate
}

// obs builds an observation step. The line is derived from the address.
func obs(pc uint64, addr memory.Addr, write, miss bool, want ...prefetch.Candidate) step {
	g := memory.DefaultGeometry()
	return step{
		ref:  prefetch.Ref{PC: pc, Addr: addr, Line: g.LineAddr(addr), Write: write, Miss: miss},
		want: want,
	}
}

func fill(la memory.Addr, wasPref bool) step {
	return step{fill: true, fillLine: la, fillWasPref: wasPref}
}

func cand(la memory.Addr) prefetch.Candidate { return prefetch.Candidate{Line: la} }
func excl(la memory.Addr) prefetch.Candidate { return prefetch.Candidate{Line: la, Excl: true} }
func engineOpt(st prefetch.Strategy) prefetch.EngineOptions {
	return prefetch.EngineOptions{Strategy: st, Geometry: memory.DefaultGeometry()}
}

// runScript drives a fresh engine through the steps, failing on the first
// mismatch between returned and expected candidates.
func runScript(t *testing.T, kind prefetch.Kind, opt prefetch.EngineOptions, steps []step) {
	t.Helper()
	e := prefetch.ByKind(kind).NewEngine(opt)
	if e == nil {
		t.Fatalf("%v: NewEngine returned nil", kind)
	}
	if e.Kind() != kind {
		t.Fatalf("engine reports kind %v, want %v", e.Kind(), kind)
	}
	var buf []prefetch.Candidate
	for i, s := range steps {
		if s.fill {
			e.Fill(s.fillLine, s.fillWasPref)
			continue
		}
		buf = e.Observe(s.ref, buf[:0])
		if len(buf) != len(s.want) {
			t.Fatalf("step %d (%v): got %d candidates %v, want %d %v",
				i, s.ref, len(buf), buf, len(s.want), s.want)
		}
		for j := range buf {
			if buf[j] != s.want[j] {
				t.Fatalf("step %d (%v): candidate %d = %v, want %v", i, s.ref, j, buf[j], s.want[j])
			}
		}
	}
}

// TestStrideDetection pins the stride engine's issue decisions: two
// repeats of a stride build confidence, the third access predicts. Strides
// of a line or more predict along the raw stride; sub-line strides widen
// to whole lines so the engine asks for the next lines, not next words.
func TestStrideDetection(t *testing.T) {
	t.Run("two-line stride", func(t *testing.T) {
		runScript(t, prefetch.Stride, engineOpt(prefetch.PREF), []step{
			obs(1, 0x1000, false, true),
			obs(1, 0x1040, false, true),
			obs(1, 0x1080, false, true, cand(0x10C0), cand(0x1100)),
			obs(1, 0x10C0, false, false, cand(0x1100), cand(0x1140)),
		})
	})
	t.Run("sub-line stride widens to next lines", func(t *testing.T) {
		runScript(t, prefetch.Stride, engineOpt(prefetch.PREF), []step{
			obs(1, 0x2000, false, true),
			obs(1, 0x2004, false, false),
			obs(1, 0x2008, false, false, cand(0x2020), cand(0x2040)),
		})
	})
	t.Run("negative stride", func(t *testing.T) {
		runScript(t, prefetch.Stride, engineOpt(prefetch.PREF), []step{
			obs(1, 0x3080, false, true),
			obs(1, 0x3040, false, true),
			obs(1, 0x3000, false, true, cand(0x2FC0), cand(0x2F80)),
		})
	})
	t.Run("stride change resets confidence", func(t *testing.T) {
		runScript(t, prefetch.Stride, engineOpt(prefetch.PREF), []step{
			obs(1, 0x1000, false, true),
			obs(1, 0x1040, false, true),
			obs(1, 0x9000, false, true), // break: new stride, confidence resets
			obs(1, 0x9040, false, true), // one repeat: not confident yet
			obs(1, 0x9080, false, true, cand(0x90C0), cand(0x9100)),
		})
	})
	t.Run("PCs are independent", func(t *testing.T) {
		runScript(t, prefetch.Stride, engineOpt(prefetch.PREF), []step{
			obs(1, 0x1000, false, true),
			obs(2, 0x1040, false, true),
			obs(1, 0x1080, false, true), // PC 1's stride is 0x80, seen once
			obs(2, 0x10C0, false, true), // PC 2's stride is 0x80, seen once
			obs(1, 0x1100, false, true, cand(0x1180), cand(0x1200)),
		})
	})
	t.Run("LPD predicts further ahead", func(t *testing.T) {
		runScript(t, prefetch.Stride, engineOpt(prefetch.LPD), []step{
			obs(1, 0x1000, false, true),
			obs(1, 0x1040, false, true),
			// lookahead 4: skip 4 strides ahead, then degree lines.
			obs(1, 0x1080, false, true, cand(0x1180), cand(0x11C0)),
		})
	})
	t.Run("EXCL marks write-site predictions exclusive", func(t *testing.T) {
		runScript(t, prefetch.Stride, engineOpt(prefetch.EXCL), []step{
			obs(1, 0x1000, true, true),
			obs(1, 0x1040, true, true),
			obs(1, 0x1080, true, true, excl(0x10C0), excl(0x1100)),
			// The same site read instead of written: plain prefetches.
			obs(1, 0x10C0, false, false, cand(0x1100), cand(0x1140)),
		})
	})
}

// TestTemporalReplay pins the temporal engine: the training unit learns
// per-PC miss successions into the mapping cache, and a recurring miss
// replays the learned chain.
func TestTemporalReplay(t *testing.T) {
	t.Run("learned chain replays", func(t *testing.T) {
		runScript(t, prefetch.Temporal, engineOpt(prefetch.PREF), []step{
			obs(1, 0x1000, false, true),                             // A
			obs(1, 0x5000, false, true),                             // B: learn A->B
			obs(1, 0x9000, false, true),                             // C: learn B->C
			obs(1, 0x1000, false, true, cand(0x5000), cand(0x9000)), // A again: replay B, C
		})
	})
	t.Run("hits neither train nor trigger", func(t *testing.T) {
		runScript(t, prefetch.Temporal, engineOpt(prefetch.PREF), []step{
			obs(1, 0x1000, false, true),
			obs(1, 0x5000, false, false), // hit: invisible to the miss stream
			obs(1, 0x9000, false, true),  // learn A->C, not A->B->C
			obs(1, 0x1000, false, true, cand(0x9000)),
		})
	})
	t.Run("divergence overwrites the mapping", func(t *testing.T) {
		runScript(t, prefetch.Temporal, engineOpt(prefetch.PREF), []step{
			obs(1, 0x1000, false, true),
			obs(1, 0x5000, false, true),               // learn A->B
			obs(1, 0x1000, false, true, cand(0x5000)), // A: replay B
			obs(1, 0x9000, false, true),               // diverge: A->C overwrites A->B
			obs(1, 0x1000, false, true, cand(0x9000)),
		})
	})
	t.Run("LPD skips ahead along the chain", func(t *testing.T) {
		runScript(t, prefetch.Temporal, engineOpt(prefetch.LPD), []step{
			obs(1, 0x1000, false, true),
			obs(1, 0x5000, false, true),
			obs(1, 0x9000, false, true),
			obs(1, 0xd000, false, true),
			obs(1, 0x11000, false, true),
			obs(1, 0x15000, false, true),
			// A again: the chain is B,C,D,E,F; lookahead 4 skips B,C,D.
			obs(1, 0x1000, false, true, cand(0x11000), cand(0x15000)),
		})
	})
}

// TestPointerChase pins the pointer engine: a far miss following a
// reference learns a pointer edge; a fill of the source line queues the
// learned targets ("scanning the filled line's contents"), emitted at the
// next observation.
func TestPointerChase(t *testing.T) {
	t.Run("fill scans learned edges", func(t *testing.T) {
		runScript(t, prefetch.Pointer, engineOpt(prefetch.PREF), []step{
			obs(1, 0x1000, false, true), // A
			obs(2, 0x8000, false, true), // far jump: learn A->B
			fill(0x1000, false),         // A fills: its "contents" point at B
			obs(3, 0x2000, false, false, cand(0x8000)),
		})
	})
	t.Run("near jumps are stride territory", func(t *testing.T) {
		runScript(t, prefetch.Pointer, engineOpt(prefetch.PREF), []step{
			obs(1, 0x1000, false, true),
			obs(2, 0x1020, false, true), // next line: not a pointer signature
			fill(0x1000, false),
			obs(3, 0x2000, false, false),
		})
	})
	t.Run("hits do not learn edges", func(t *testing.T) {
		runScript(t, prefetch.Pointer, engineOpt(prefetch.PREF), []step{
			obs(1, 0x1000, false, true),
			obs(2, 0x8000, false, false), // far but a hit: no dereference miss
			fill(0x1000, false),
			obs(3, 0x2000, false, false),
		})
	})
	t.Run("fan-out is bounded FIFO", func(t *testing.T) {
		var steps []step
		// Learn pointerFanout+1 = 5 edges out of line A; the oldest drops.
		targets := []memory.Addr{0x8000, 0x10000, 0x18000, 0x20000, 0x28000}
		for _, b := range targets {
			steps = append(steps,
				obs(1, 0x1000, false, true),
				obs(2, b, false, true))
		}
		steps = append(steps, fill(0x1000, false))
		// Degree 2 emits the two oldest surviving edges (0x8000 fell out).
		steps = append(steps, obs(3, 0x2000, false, false, cand(0x10000), cand(0x18000)))
		runScript(t, prefetch.Pointer, engineOpt(prefetch.PREF), steps)
	})
}

// onlineKinds returns the registered online engines.
func onlineKinds() []prefetch.Kind {
	var ks []prefetch.Kind
	for _, k := range prefetch.Kinds() {
		if k.Online() {
			ks = append(ks, k)
		}
	}
	return ks
}

// exerciseStream is a deterministic mixed reference stream that makes
// every engine train and emit: strided runs, recurring miss chains, and
// far jumps, with interleaved fills.
func exerciseStream(e prefetch.Engine, degree int, visit func(step int, cands []prefetch.Candidate)) {
	g := memory.DefaultGeometry()
	var buf []prefetch.Candidate
	n := 0
	emit := func(r prefetch.Ref) {
		r.Line = g.LineAddr(r.Addr)
		buf = e.Observe(r, buf[:0])
		visit(n, buf)
		n++
		// Pretend every candidate eventually fills, so fill-triggered
		// paths (pointer chasing) run too.
		for _, c := range buf {
			e.Fill(c.Line, true)
		}
	}
	for rep := 0; rep < 3; rep++ {
		for i := 0; i < 32; i++ {
			emit(prefetch.Ref{PC: 1, Addr: memory.Addr(0x1000 + i*4), Write: i%8 == 0, Miss: i%8 == 0})
		}
		for i := 0; i < 16; i++ {
			emit(prefetch.Ref{PC: 2, Addr: memory.Addr(0x40000 + i*0x4000), Write: false, Miss: true})
			e.Fill(g.LineAddr(memory.Addr(0x40000+i*0x4000)), false)
		}
		for i := 0; i < 8; i++ {
			emit(prefetch.Ref{PC: 3, Addr: memory.Addr(0x200000 + i*64), Write: true, Miss: i%2 == 0})
		}
	}
}

// TestEngineLaws runs the engine-generic conformance laws over every
// registered online engine: candidates per observation never exceed the
// configured degree, candidates are line-aligned, the NP strategy never
// issues, and a fresh engine reproduces itself exactly (determinism).
func TestEngineLaws(t *testing.T) {
	g := memory.DefaultGeometry()
	for _, kind := range onlineKinds() {
		for _, degree := range []int{1, 2, 4} {
			opt := prefetch.EngineOptions{Strategy: prefetch.PREF, Geometry: g, Degree: degree}
			t.Run(kind.String(), func(t *testing.T) {
				e := prefetch.ByKind(kind).NewEngine(opt)
				total := 0
				exerciseStream(e, degree, func(step int, cands []prefetch.Candidate) {
					if len(cands) > degree {
						t.Fatalf("degree %d: step %d returned %d candidates", degree, step, len(cands))
					}
					for _, c := range cands {
						if g.LineAddr(c.Line) != c.Line {
							t.Fatalf("step %d: candidate %#x not line-aligned", step, uint64(c.Line))
						}
					}
					total += len(cands)
				})
				if total == 0 {
					t.Errorf("%v/degree %d: engine never emitted on the exercise stream", kind, degree)
				}
				st := e.Stats()
				if st.Observed == 0 || st.Emitted != uint64(total) {
					t.Errorf("%v: stats %+v inconsistent with %d observed emissions", kind, st, total)
				}
			})
		}
	}
}

// TestEnginesNeverIssueUnderNP: the NP strategy means no prefetching —
// engines may train, but not one candidate leaves any engine.
func TestEnginesNeverIssueUnderNP(t *testing.T) {
	for _, kind := range onlineKinds() {
		e := prefetch.ByKind(kind).NewEngine(engineOpt(prefetch.NP))
		exerciseStream(e, prefetch.DefaultDegree, func(step int, cands []prefetch.Candidate) {
			if len(cands) != 0 {
				t.Fatalf("%v: emitted %v under NP at step %d", kind, cands, step)
			}
		})
		if st := e.Stats(); st.Emitted != 0 {
			t.Errorf("%v: stats claim %d emissions under NP", kind, st.Emitted)
		}
	}
}

// TestEngineDeterminism: two fresh engines fed the same stream return the
// same candidates at every step — no map-order or time dependence.
func TestEngineDeterminism(t *testing.T) {
	for _, kind := range onlineKinds() {
		a := prefetch.ByKind(kind).NewEngine(engineOpt(prefetch.PREF))
		b := prefetch.ByKind(kind).NewEngine(engineOpt(prefetch.PREF))
		var got [][]prefetch.Candidate
		exerciseStream(a, prefetch.DefaultDegree, func(step int, cands []prefetch.Candidate) {
			got = append(got, append([]prefetch.Candidate(nil), cands...))
		})
		exerciseStream(b, prefetch.DefaultDegree, func(step int, cands []prefetch.Candidate) {
			want := got[step]
			if len(cands) != len(want) {
				t.Fatalf("%v: step %d diverged: %v vs %v", kind, step, cands, want)
			}
			for i := range cands {
				if cands[i] != want[i] {
					t.Fatalf("%v: step %d diverged: %v vs %v", kind, step, cands, want)
				}
			}
		})
	}
}

// TestOracleHasNoEngine pins the oracle's place in the registry: it
// annotates offline and constructs no online engine.
func TestOracleHasNoEngine(t *testing.T) {
	p := prefetch.ByKind(prefetch.Oracle)
	if e := p.NewEngine(engineOpt(prefetch.PREF)); e != nil {
		t.Errorf("oracle returned an engine: %v", e)
	}
	for _, p := range prefetch.Prefetchers() {
		if p.Kind().Online() && p.NewEngine(engineOpt(prefetch.PREF)) == nil {
			t.Errorf("%v: online prefetcher returned no engine", p.Kind())
		}
	}
}
