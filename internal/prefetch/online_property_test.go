package prefetch_test

import (
	"testing"

	"busprefetch/internal/memory"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/sim"
)

// Property tests for the online engines, extending the annotation-time
// properties to simulation-time issue: online prefetching must never
// perturb the demand stream, the paper's miss-rate hierarchy must survive
// online runs, and stride issue decisions must depend only on address
// deltas.

// TestOnlinePreservesDemandStream: an online engine issues fetches beside
// the processor; it must never add, drop, reorder or retarget a demand
// reference. The annotated trace is the NP demand stream verbatim, and
// the run retires exactly the demand counts the NP baseline retires.
func TestOnlinePreservesDemandStream(t *testing.T) {
	geom := memory.DefaultGeometry()
	for name, base := range generateAll(t) {
		baseline, err := sim.Run(sim.DefaultConfig(), base)
		if err != nil {
			t.Fatalf("%s/NP: %v", name, err)
		}
		for _, k := range prefetch.Kinds() {
			if !k.Online() {
				continue
			}
			annotated, err := prefetch.ByKind(k).Annotate(base, prefetch.Options{Strategy: prefetch.PREF, Geometry: geom})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, k, err)
			}
			for p := range base.Streams {
				if len(annotated.Streams[p]) != len(base.Streams[p]) {
					t.Fatalf("%s/%v proc %d: online annotation changed the stream length", name, k, p)
				}
				for i := range base.Streams[p] {
					if annotated.Streams[p][i] != base.Streams[p][i] {
						t.Fatalf("%s/%v proc %d: online annotation changed event %d", name, k, p, i)
					}
				}
			}
			cfg := sim.DefaultConfig()
			cfg.Online = prefetch.OnlineConfig{Kind: k, Strategy: prefetch.PREF}
			res, err := sim.Run(cfg, annotated)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, k, err)
			}
			c, b := &res.Counters, &baseline.Counters
			if c.Reads != b.Reads || c.Writes != b.Writes || c.SyncRefs != b.SyncRefs {
				t.Errorf("%s/%v: demand counts (r=%d w=%d s=%d) diverge from NP baseline (r=%d w=%d s=%d)",
					name, k, c.Reads, c.Writes, c.SyncRefs, b.Reads, b.Writes, b.SyncRefs)
			}
			if c.PrefetchesIssued != 0 {
				t.Errorf("%s/%v: online run executed %d prefetch instructions; the stream should have none",
					name, k, c.PrefetchesIssued)
			}
			if got := c.OnlineIssued + c.OnlineFiltered + c.OnlineDropped; got != c.OnlineEmitted {
				t.Errorf("%s/%v: online accounting leak: issued+filtered+dropped=%d, emitted=%d",
					name, k, got, c.OnlineEmitted)
			}
			if c.OnlineIssued != c.PrefetchFetches {
				t.Errorf("%s/%v: online issued %d but prefetch fetches %d — a fetch came from nowhere",
					name, k, c.OnlineIssued, c.PrefetchFetches)
			}
		}
	}
}

// TestMissRateOrderingOnline extends the paper's metric hierarchy —
// adjusted CPU miss rate <= CPU miss rate <= total miss rate — to runs
// driven by each online engine, with the invariant checker verifying the
// outstanding-prefetch bound at every completion.
func TestMissRateOrderingOnline(t *testing.T) {
	for name, base := range generateAll(t) {
		for _, k := range prefetch.Kinds() {
			if !k.Online() {
				continue
			}
			cfg := sim.DefaultConfig()
			cfg.Online = prefetch.OnlineConfig{Kind: k, Strategy: prefetch.PREF}
			cfg.CheckInvariants = true
			res, err := sim.Run(cfg, base)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, k, err)
			}
			adj, cpu, total := res.AdjustedCPUMissRate(), res.CPUMissRate(), res.TotalMissRate()
			if adj > cpu {
				t.Errorf("%s/%v: adjusted MR %.6f above CPU MR %.6f", name, k, adj, cpu)
			}
			if cpu > total {
				t.Errorf("%s/%v: CPU MR %.6f above total MR %.6f", name, k, cpu, total)
			}
			if res.Online == nil {
				t.Fatalf("%s/%v: no engine stats on an online run", name, k)
			}
			// The engine sees every demand reference except the
			// lock-operation accesses (sync refs are not shown).
			if want := res.Counters.DemandRefs() - res.Counters.SyncRefs; res.Online.Observed != want {
				t.Errorf("%s/%v: engine observed %d refs, simulator retired %d non-sync",
					name, k, res.Online.Observed, want)
			}
			if res.Online.Emitted != res.Counters.OnlineEmitted {
				t.Errorf("%s/%v: engine emitted %d, simulator recorded %d",
					name, k, res.Online.Emitted, res.Counters.OnlineEmitted)
			}
		}
	}
}

// TestStrideRelabelInvariance is the metamorphic property of the stride
// engine: issue decisions depend only on address *deltas*, so relabeling
// the address space by a constant line-aligned offset must shift every
// candidate by exactly that offset — same count, same order, same Excl
// flags.
func TestStrideRelabelInvariance(t *testing.T) {
	g := memory.DefaultGeometry()
	const offset = memory.Addr(0x740000) // line-aligned relabeling constant
	// A deterministic mixed stream: unit stride, line stride, a stride
	// break, writes, and an irregular tail.
	var refs []prefetch.Ref
	for i := 0; i < 64; i++ {
		refs = append(refs, prefetch.Ref{PC: 1, Addr: memory.Addr(0x1000 + i*4), Miss: i%8 == 0})
	}
	for i := 0; i < 32; i++ {
		refs = append(refs, prefetch.Ref{PC: 2, Addr: memory.Addr(0x8000 + i*96), Write: true, Miss: true})
	}
	for i := 0; i < 16; i++ {
		refs = append(refs, prefetch.Ref{PC: 3, Addr: memory.Addr(0x40000 + (i*i)*32), Miss: true})
	}
	for _, st := range []prefetch.Strategy{prefetch.PREF, prefetch.EXCL, prefetch.LPD} {
		opt := prefetch.EngineOptions{Strategy: st, Geometry: g}
		a := prefetch.ByKind(prefetch.Stride).NewEngine(opt)
		b := prefetch.ByKind(prefetch.Stride).NewEngine(opt)
		var bufA, bufB []prefetch.Candidate
		for i, r := range refs {
			r.Line = g.LineAddr(r.Addr)
			bufA = a.Observe(r, bufA[:0])
			shifted := r
			shifted.Addr += offset
			shifted.Line = g.LineAddr(shifted.Addr)
			bufB = b.Observe(shifted, bufB[:0])
			if len(bufA) != len(bufB) {
				t.Fatalf("%s: step %d: %d candidates vs %d after relabeling", st, i, len(bufA), len(bufB))
			}
			for j := range bufA {
				want := prefetch.Candidate{Line: bufA[j].Line + offset, Excl: bufA[j].Excl}
				if bufB[j] != want {
					t.Fatalf("%s: step %d candidate %d: relabeled engine emitted %v, want %v",
						st, i, j, bufB[j], want)
				}
			}
		}
	}
}
