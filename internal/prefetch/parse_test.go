package prefetch

import (
	"strings"
	"testing"
)

// The shared table-driven parser test: ParseStrategy and ParsePrefetcher
// obey the same contract — case-insensitive resolution of every
// registered name, and a rejection diagnostic that lists every valid name
// so the CLI error is self-documenting.

func TestParsers(t *testing.T) {
	for _, p := range []struct {
		parser string
		parse  func(string) (string, error) // normalized: returns String() of the parsed value
		valid  map[string]string            // input -> expected String()
		names  []string                     // every name the error must list
	}{
		{
			parser: "ParseStrategy",
			parse: func(s string) (string, error) {
				st, err := ParseStrategy(s)
				return st.String(), err
			},
			valid: map[string]string{
				"NP": "NP", "np": "NP",
				"PREF": "PREF", "pref": "PREF", "Pref": "PREF",
				"EXCL": "EXCL", "excl": "EXCL",
				"LPD": "LPD", "lpd": "LPD",
				"PWS": "PWS", "pws": "PWS",
			},
			names: []string{"NP", "PREF", "EXCL", "LPD", "PWS"},
		},
		{
			parser: "ParsePrefetcher",
			parse: func(s string) (string, error) {
				k, err := ParsePrefetcher(s)
				return k.String(), err
			},
			valid: map[string]string{
				"oracle": "oracle", "Oracle": "oracle", "ORACLE": "oracle",
				"stride": "stride", "Stride": "stride",
				"temporal": "temporal", "TEMPORAL": "temporal",
				"pointer": "pointer", "Pointer": "pointer",
			},
			names: []string{"oracle", "stride", "temporal", "pointer"},
		},
	} {
		t.Run(p.parser, func(t *testing.T) {
			for in, want := range p.valid {
				got, err := p.parse(in)
				if err != nil || got != want {
					t.Errorf("%s(%q) = %v, %v; want %v", p.parser, in, got, err, want)
				}
			}
			for _, bogus := range []string{"", "bogus", "PREFX", "oraclee", "n p"} {
				_, err := p.parse(bogus)
				if err == nil {
					t.Errorf("%s(%q) accepted", p.parser, bogus)
					continue
				}
				for _, name := range p.names {
					if !strings.Contains(err.Error(), name) {
						t.Errorf("%s(%q) error %q does not list valid name %q", p.parser, bogus, err, name)
					}
				}
				if !strings.Contains(err.Error(), "valid:") {
					t.Errorf("%s(%q) error %q lacks the valid-names diagnostic", p.parser, bogus, err)
				}
			}
		})
	}
}
