package prefetch

import "busprefetch/internal/memory"

// The pointer-chase engine for linked data structures, after the
// content-directed / fill-scanning family (e.g. arXiv 1801.08088): real
// hardware scans each filled cache line for values that look like
// pointers and prefetches what they point at. This reproduction's traces
// carry addresses, not data values, so the line-content scan is modeled
// by a learned out-edge table: when a demand miss jumps from line A to a
// *far* line B — too far to be a stride neighbor, the signature of a
// pointer dereference — the engine records the edge A -> B, standing in
// for "line A's contents hold a pointer to B". When a line with known
// out-edges fills, the engine queues those edges as candidates, exactly
// as a content scan of the arriving fill would, and emits them at the
// processor's next observed reference (fills complete at bus time, not
// CPU time, so issue waits for the CPU to be back at a reference
// boundary).
//
// The edge table is bounded with a small per-line fan-out (a line holds
// few pointers) and evicts nothing beyond the FIFO fan-out, so behavior
// cannot depend on map iteration order.

// pointerTableSize bounds the number of source lines with learned edges.
const pointerTableSize = 1 << 14

// pointerFanout bounds the out-edges learned per source line.
const pointerFanout = 4

// pointerNearLines is the stride exclusion window: jumps of at most this
// many lines are left to the stride engine's territory and not learned as
// pointer edges.
const pointerNearLines = 2

type pointerEngine struct {
	track
	edges    map[memory.Addr][]memory.Addr
	queue    []Candidate // fill-time discoveries awaiting the next Observe
	lastLine memory.Addr
	haveLast bool
}

func newPointerEngine(opt EngineOptions) *pointerEngine {
	return &pointerEngine{track: track{opt: opt}, edges: make(map[memory.Addr][]memory.Addr)}
}

func (e *pointerEngine) Kind() Kind { return Pointer }

func (e *pointerEngine) Observe(r Ref, cand []Candidate) []Candidate {
	e.stats.Observed++
	e.noteMiss(r)
	// Drain what the last fill's "content scan" discovered, up to degree.
	if e.enabled() {
		n := e.opt.degree()
		if n > len(e.queue) {
			n = len(e.queue)
		}
		for _, c := range e.queue[:n] {
			cand = e.emit(cand, c)
		}
		e.queue = e.queue[:0]
	}
	// Learn pointer-like jumps from the miss stream: the previous
	// reference touched lastLine, and now the processor misses on a far
	// line — the dereference signature.
	if r.Miss && e.haveLast && e.lastLine != r.Line && !e.near(e.lastLine, r.Line) {
		e.learn(e.lastLine, r.Line)
	}
	e.lastLine, e.haveLast = r.Line, true
	return cand
}

// near reports whether b is within the stride exclusion window of a.
func (e *pointerEngine) near(a, b memory.Addr) bool {
	d := int64(b) - int64(a)
	if d < 0 {
		d = -d
	}
	return d <= int64(pointerNearLines*e.opt.Geometry.LineSize)
}

// learn records the out-edge src -> dst, FIFO-bounded per source line.
func (e *pointerEngine) learn(src, dst memory.Addr) {
	out := e.edges[src]
	for _, x := range out {
		if x == dst {
			return
		}
	}
	if out == nil && len(e.edges) >= pointerTableSize {
		return
	}
	if len(out) >= pointerFanout {
		copy(out, out[1:])
		out = out[:len(out)-1]
	}
	e.edges[src] = append(out, dst)
	e.stats.Trained++
}

func (e *pointerEngine) Fill(la memory.Addr, wasPrefetch bool) {
	e.noteFill(la)
	if !e.enabled() {
		return
	}
	// The modeled content scan: the arriving line's learned out-edges
	// become candidates, queued until the processor's next reference.
	limit := 2 * e.opt.degree()
	for _, dst := range e.edges[la] {
		if len(e.queue) >= limit {
			break
		}
		e.queue = append(e.queue, Candidate{Line: dst})
	}
}
