package prefetch

import (
	"fmt"
	"sort"

	"busprefetch/internal/filter"
	"busprefetch/internal/memory"
	"busprefetch/internal/names"
	"busprefetch/internal/trace"
)

// Strategy selects a prefetching discipline.
type Strategy int

const (
	// NP performs no prefetching.
	NP Strategy = iota
	// PREF is the baseline oracle prefetcher.
	PREF
	// EXCL prefetches predicted write misses in exclusive mode.
	EXCL
	// LPD uses a 400-cycle prefetch distance instead of 100.
	LPD
	// PWS adds aggressive prefetching of write-shared data.
	PWS
	// NumStrategies is the number of disciplines.
	NumStrategies
)

var strategyNames = [NumStrategies]string{"NP", "PREF", "EXCL", "LPD", "PWS"}

func (s Strategy) String() string {
	if s >= 0 && int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Strategies lists all disciplines in the paper's presentation order.
func Strategies() []Strategy { return []Strategy{NP, PREF, EXCL, LPD, PWS} }

// ParseStrategy converts a name ("PREF", "pws", ...) to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	i, err := names.Parse("strategy", strategyNames[:], name)
	if err != nil {
		return NP, fmt.Errorf("prefetch: %w", err)
	}
	return Strategy(i), nil
}

// Options configures insertion.
type Options struct {
	// Strategy is the discipline to apply.
	Strategy Strategy
	// Geometry is the cache shape used by the oracle filter; it should
	// match the simulated cache ("the filter cache (of the same size as the
	// actual cache)").
	Geometry memory.Geometry
	// Distance overrides the strategy's prefetch distance in estimated CPU
	// cycles. Zero selects the paper's value: 100, or 400 for LPD.
	Distance int
	// ExcludeWriteShared suppresses prefetches of write-shared lines. It is
	// required when simulating with sim.PrefetchToBuffer: the paper's
	// prefetch buffers do not snoop, so "no shared data can be prefetched,
	// unless it can be guaranteed not to be written during the interval"
	// (§3.1). Not meaningful together with PWS, whose whole point is
	// prefetching write-shared data.
	ExcludeWriteShared bool
}

// DefaultDistance is the paper's prefetch distance for PREF, EXCL and PWS.
const DefaultDistance = 100

// LongDistance is the paper's prefetch distance for LPD.
const LongDistance = 400

func (o Options) distance() uint64 {
	if o.Distance > 0 {
		return uint64(o.Distance)
	}
	if o.Strategy == LPD {
		return LongDistance
	}
	return DefaultDistance
}

// Annotate returns a copy of t with prefetch instructions inserted according
// to the options. With Strategy NP the trace is cloned unchanged (so callers
// can uniformly mutate the result).
func Annotate(t *trace.Trace, opt Options) (*trace.Trace, error) {
	if err := opt.Geometry.Validate(); err != nil {
		return nil, err
	}
	if opt.Strategy < NP || opt.Strategy >= NumStrategies {
		return nil, fmt.Errorf("prefetch: bad strategy %d", int(opt.Strategy))
	}
	if opt.Strategy == NP {
		return t.Clone(), nil
	}
	out := &trace.Trace{Name: t.Name, Streams: make([]trace.Stream, t.Procs())}

	if opt.ExcludeWriteShared && opt.Strategy == PWS {
		return nil, fmt.Errorf("prefetch: ExcludeWriteShared contradicts PWS")
	}

	// PWS needs the global write-shared line set, which only the whole
	// trace reveals — the stand-in for the compiler's knowledge of which
	// data structures are write-shared. ExcludeWriteShared needs the same
	// set to suppress those lines instead.
	var isWS func(memory.Addr) bool
	if opt.Strategy == PWS || opt.ExcludeWriteShared {
		prof := trace.AnalyzeSharing(t, opt.Geometry)
		isWS = prof.WriteShared
	}

	for p, s := range t.Streams {
		out.Streams[p] = annotateStream(s, opt, isWS)
	}
	return out, nil
}

// insertion is one prefetch to place immediately before event index at.
type insertion struct {
	at  int
	ev  trace.Event
	seq int
}

func annotateStream(s trace.Stream, opt Options, isWS func(memory.Addr) bool) trace.Stream {
	miss := filter.MarkMisses(s, opt.Geometry)
	var wsMiss []bool
	if isWS != nil && opt.Strategy == PWS {
		wsMiss = filter.MarkWriteSharedMisses(s, opt.Geometry, isWS)
	}

	// start[i] is the estimated CPU cycle at which event i begins, assuming
	// every access hits: Gap instruction cycles precede it, and each prior
	// event costs Gap+1.
	start := make([]uint64, len(s)+1)
	var clock uint64
	for i, e := range s {
		start[i] = clock + uint64(e.Gap)
		clock += uint64(e.Gap) + 1
	}
	start[len(s)] = clock

	dist := opt.distance()
	var ins []insertion
	for i, e := range s {
		wantPref := miss[i] || (wsMiss != nil && wsMiss[i])
		if !wantPref || !e.Kind.IsDemand() {
			continue
		}
		if opt.ExcludeWriteShared && isWS != nil && isWS(e.Addr) {
			continue
		}
		kind := trace.Prefetch
		if opt.Strategy == EXCL && e.Kind == trace.Write && miss[i] {
			kind = trace.PrefetchExcl
		}
		at := placeBefore(start, i, dist)
		ins = append(ins, insertion{at: at, ev: trace.Event{Kind: kind, Addr: e.Addr}, seq: len(ins)})
	}
	if len(ins) == 0 {
		return append(trace.Stream(nil), s...)
	}
	// Keep insertions ordered by position, then by the order of their
	// target accesses, so earlier-needed data is requested first.
	sort.Slice(ins, func(a, b int) bool {
		if ins[a].at != ins[b].at {
			return ins[a].at < ins[b].at
		}
		return ins[a].seq < ins[b].seq
	})

	outLen := len(s) + len(ins)
	out := make(trace.Stream, 0, outLen)
	k := 0
	for i, e := range s {
		for k < len(ins) && ins[k].at == i {
			out = append(out, ins[k].ev)
			k++
		}
		out = append(out, e)
	}
	for k < len(ins) {
		out = append(out, ins[k].ev)
		k++
	}
	return out
}

// placeBefore returns the largest event index j <= i such that the estimated
// cycles between the start of event j and the start of event i are at least
// dist — the latest insertion point that still hides dist cycles. It returns
// 0 when the stream's beginning is closer than dist.
func placeBefore(start []uint64, i int, dist uint64) int {
	target := start[i]
	if target <= dist {
		return 0
	}
	want := target - dist
	// Binary search for the last j with start[j] <= want.
	lo, hi := 0, i
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if start[mid] <= want {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Overhead reports the instruction overhead the annotation added: the number
// of prefetch events per demand reference.
func Overhead(annotated *trace.Trace) float64 {
	var pref, demand int
	for _, s := range annotated.Streams {
		for _, e := range s {
			switch {
			case e.Kind.IsPrefetch():
				pref++
			case e.Kind.IsDemand():
				demand++
			}
		}
	}
	if demand == 0 {
		return 0
	}
	return float64(pref) / float64(demand)
}
