package prefetch

import (
	"testing"

	"busprefetch/internal/memory"
	"busprefetch/internal/trace"
)

func geom() memory.Geometry { return memory.DefaultGeometry() }

func TestNPIsIdentity(t *testing.T) {
	tr := &trace.Trace{Streams: []trace.Stream{{{Kind: trace.Read, Addr: 0x1000}}}}
	out, err := Annotate(tr, Options{Strategy: NP, Geometry: geom()})
	if err != nil {
		t.Fatal(err)
	}
	if out.Events() != 1 || out.Streams[0][0] != tr.Streams[0][0] {
		t.Error("NP changed the trace")
	}
	out.Streams[0][0].Addr = 99
	if tr.Streams[0][0].Addr == 99 {
		t.Error("NP returned shared storage")
	}
}

func TestPREFInsertsBeforePredictedMisses(t *testing.T) {
	// A long run of hits, then a miss on a new line: the prefetch should be
	// inserted ~100 estimated cycles before that miss.
	var s trace.Stream
	for i := 0; i < 60; i++ {
		s = append(s, trace.Event{Kind: trace.Read, Addr: memory.Addr(0x1000 + (i%8)*4), Gap: 4})
	}
	s = append(s, trace.Event{Kind: trace.Read, Addr: 0x9000, Gap: 4})
	tr := &trace.Trace{Streams: []trace.Stream{s}}
	out, err := Annotate(tr, Options{Strategy: PREF, Geometry: geom()})
	if err != nil {
		t.Fatal(err)
	}
	// Two predicted misses: the first access (cold) and 0x9000.
	var prefs []int
	for i, e := range out.Streams[0] {
		if e.Kind.IsPrefetch() {
			prefs = append(prefs, i)
		}
	}
	if len(prefs) != 2 {
		t.Fatalf("inserted %d prefetches, want 2", len(prefs))
	}
	// The prefetch for 0x9000 must target it and precede it by roughly the
	// default distance in estimated cycles (each original event is 5
	// estimated cycles, so ~20 events).
	target := -1
	for i, e := range out.Streams[0] {
		if e.Kind == trace.Read && e.Addr == 0x9000 {
			target = i
		}
	}
	pf := prefs[1]
	if out.Streams[0][pf].Addr != 0x9000 {
		t.Fatalf("second prefetch targets %#x", uint64(out.Streams[0][pf].Addr))
	}
	gapEvents := target - pf
	if gapEvents < 18 || gapEvents > 24 {
		t.Errorf("prefetch placed %d events ahead, want ~20 (100 cycles / 5 cycles-per-event)", gapEvents)
	}
}

func TestEstimatedDistanceRespected(t *testing.T) {
	// Verify the estimated-cycle distance between prefetch and access is
	// >= the requested distance (or the prefetch is at stream start).
	var s trace.Stream
	for i := 0; i < 400; i++ {
		s = append(s, trace.Event{Kind: trace.Read, Addr: memory.Addr(0x1000 + i*64), Gap: 2})
	}
	tr := &trace.Trace{Streams: []trace.Stream{s}}
	for _, dist := range []int{50, 100, 400} {
		out, err := Annotate(tr, Options{Strategy: PREF, Geometry: geom(), Distance: dist})
		if err != nil {
			t.Fatal(err)
		}
		// Build estimated start times on the ORIGINAL timeline: placement
		// ran before insertion, so inserted prefetch instructions do not
		// count toward the distance guarantee.
		starts := make([]uint64, len(out.Streams[0])+1)
		var clock uint64
		for i, e := range out.Streams[0] {
			starts[i] = clock + uint64(e.Gap)
			if !e.Kind.IsPrefetch() {
				clock += uint64(e.Gap) + 1
			}
		}
		// A prefetch may be closer than dist only when it sits in the head
		// cluster: placed before any original event because the stream's
		// beginning was nearer than the distance.
		atStart := make([]bool, len(out.Streams[0]))
		seenOriginal := false
		for i, e := range out.Streams[0] {
			atStart[i] = !seenOriginal
			if !e.Kind.IsPrefetch() {
				seenOriginal = true
			}
		}
		lastUse := map[memory.Addr]int{}
		for i := len(out.Streams[0]) - 1; i >= 0; i-- {
			e := out.Streams[0][i]
			if e.Kind.IsDemand() {
				lastUse[e.Addr] = i
			}
			if e.Kind.IsPrefetch() {
				use, ok := lastUse[e.Addr]
				if !ok {
					t.Fatalf("prefetch at %d has no later use", i)
				}
				if !atStart[i] && starts[use]-starts[i] < uint64(dist) {
					t.Errorf("dist %d: prefetch %d only %d estimated cycles ahead of use %d",
						dist, i, starts[use]-starts[i], use)
				}
			}
		}
	}
}

func TestEXCLMarksOnlyPredictedWriteMisses(t *testing.T) {
	s := trace.Stream{
		{Kind: trace.Read, Addr: 0x1000, Gap: 200},  // predicted read miss
		{Kind: trace.Write, Addr: 0x2000, Gap: 200}, // predicted write miss
		{Kind: trace.Write, Addr: 0x2004, Gap: 200}, // hit (same line)
	}
	tr := &trace.Trace{Streams: []trace.Stream{s}}
	out, err := Annotate(tr, Options{Strategy: EXCL, Geometry: geom()})
	if err != nil {
		t.Fatal(err)
	}
	var shared, excl int
	for _, e := range out.Streams[0] {
		switch e.Kind {
		case trace.Prefetch:
			shared++
		case trace.PrefetchExcl:
			excl++
			if e.Addr != 0x2000 {
				t.Errorf("exclusive prefetch targets %#x, want the write miss", uint64(e.Addr))
			}
		}
	}
	if shared != 1 || excl != 1 {
		t.Errorf("shared=%d excl=%d, want 1 and 1", shared, excl)
	}
}

func TestPREFNeverUsesExclusive(t *testing.T) {
	s := trace.Stream{{Kind: trace.Write, Addr: 0x2000, Gap: 200}}
	tr := &trace.Trace{Streams: []trace.Stream{s}}
	out, err := Annotate(tr, Options{Strategy: PREF, Geometry: geom()})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range out.Streams[0] {
		if e.Kind == trace.PrefetchExcl {
			t.Error("PREF inserted an exclusive prefetch")
		}
	}
}

func TestLPDUsesLongDistance(t *testing.T) {
	if (Options{Strategy: LPD}).distance() != LongDistance {
		t.Error("LPD default distance wrong")
	}
	if (Options{Strategy: PREF}).distance() != DefaultDistance {
		t.Error("PREF default distance wrong")
	}
	if (Options{Strategy: PREF, Distance: 42}).distance() != 42 {
		t.Error("explicit distance ignored")
	}
}

func TestPWSAddsRedundantWriteSharedPrefetches(t *testing.T) {
	// Proc 0 repeatedly reads a write-shared line with poor temporal
	// locality (17 distinct lines between touches). PREF predicts only the
	// cold misses; PWS must add redundant prefetches for the later touches.
	mkStream := func() trace.Stream {
		var s trace.Stream
		for rep := 0; rep < 3; rep++ {
			s = append(s, trace.Event{Kind: trace.Read, Addr: 0x8000, Gap: 30})
			for i := 0; i < 17; i++ {
				// Filler lines in adjacent sets: no filter conflicts with
				// the shared line, only PWS-window pressure.
				s = append(s, trace.Event{Kind: trace.Read, Addr: memory.Addr(0x8000 + 32*(i+1)), Gap: 30})
			}
		}
		return s
	}
	// Proc 1 writes every line involved, so the whole working set is
	// write-shared and flows through the PWS temporal filter.
	var writer trace.Stream
	for i := 0; i <= 17; i++ {
		writer = append(writer, trace.Event{Kind: trace.Write, Addr: memory.Addr(0x8000 + 32*i), Gap: 5})
	}
	tr := &trace.Trace{Streams: []trace.Stream{mkStream(), writer}}
	pref, err := Annotate(tr, Options{Strategy: PREF, Geometry: geom()})
	if err != nil {
		t.Fatal(err)
	}
	pws, err := Annotate(tr, Options{Strategy: PWS, Geometry: geom()})
	if err != nil {
		t.Fatal(err)
	}
	count := func(tr *trace.Trace, addr memory.Addr) int {
		n := 0
		for _, e := range tr.Streams[0] {
			if e.Kind.IsPrefetch() && geom().LineAddr(e.Addr) == addr {
				n++
			}
		}
		return n
	}
	if got := count(pref, 0x8000); got != 1 {
		t.Errorf("PREF issued %d prefetches of the shared line, want 1 (cold only)", got)
	}
	if got := count(pws, 0x8000); got != 3 {
		t.Errorf("PWS issued %d prefetches of the shared line, want 3 (every poor-locality touch)", got)
	}
}

func TestPWSSkipsWriteSharedLinesWithGoodLocality(t *testing.T) {
	// The shared line is re-touched within the 16-line window: PWS must NOT
	// add redundant prefetches (the paper's uncovered contended misses).
	var s trace.Stream
	for rep := 0; rep < 5; rep++ {
		s = append(s, trace.Event{Kind: trace.Read, Addr: 0x8000, Gap: 30})
		for i := 0; i < 4; i++ {
			s = append(s, trace.Event{Kind: trace.Read, Addr: memory.Addr(0x8000 + 32*(i+1)), Gap: 30})
		}
	}
	var writer trace.Stream
	for i := 0; i <= 4; i++ {
		writer = append(writer, trace.Event{Kind: trace.Write, Addr: memory.Addr(0x8000 + 32*i), Gap: 5})
	}
	tr := &trace.Trace{Streams: []trace.Stream{s, writer}}
	pws, err := Annotate(tr, Options{Strategy: PWS, Geometry: geom()})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range pws.Streams[0] {
		if e.Kind.IsPrefetch() && geom().LineAddr(e.Addr) == 0x8000 {
			n++
		}
	}
	if n != 1 {
		t.Errorf("PWS issued %d prefetches of a filter-resident shared line, want 1 (cold only)", n)
	}
}

func TestOverhead(t *testing.T) {
	tr := &trace.Trace{Streams: []trace.Stream{{
		{Kind: trace.Prefetch, Addr: 0},
		{Kind: trace.Read, Addr: 0},
		{Kind: trace.Read, Addr: 4},
		{Kind: trace.Write, Addr: 8},
		{Kind: trace.Prefetch, Addr: 64},
	}}}
	if got := Overhead(tr); got != 2.0/3.0 {
		t.Errorf("Overhead = %f, want 2/3", got)
	}
}

func TestAnnotatedTraceStaysValid(t *testing.T) {
	tr := &trace.Trace{Streams: []trace.Stream{
		{
			{Kind: trace.Lock, Addr: 0x100},
			{Kind: trace.Read, Addr: 0x1000, Gap: 50},
			{Kind: trace.Unlock, Addr: 0x100},
			{Kind: trace.Barrier, Addr: 1},
		},
		{
			{Kind: trace.Write, Addr: 0x1000, Gap: 20},
			{Kind: trace.Barrier, Addr: 1},
		},
	}}
	for _, st := range Strategies() {
		out, err := Annotate(tr, Options{Strategy: st, Geometry: geom()})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if err := out.Validate(); err != nil {
			t.Errorf("%v: annotated trace invalid: %v", st, err)
		}
		if out.DemandRefs() != tr.DemandRefs() {
			t.Errorf("%v: annotation changed demand refs", st)
		}
	}
}
