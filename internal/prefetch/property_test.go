package prefetch_test

import (
	"testing"

	"busprefetch/internal/memory"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/sim"
	"busprefetch/internal/trace"
	"busprefetch/internal/workload"
)

// Property tests for the annotation pipeline, asserted over every workload
// and every strategy rather than at hand-picked points.

func generateAll(t *testing.T) map[string]*trace.Trace {
	t.Helper()
	traces := make(map[string]*trace.Trace)
	for _, w := range workload.All() {
		tr, _, err := w.Generate(workload.Params{Scale: 0.05, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		traces[w.Name] = tr
	}
	return traces
}

// demandOnly strips a stream to its demand references.
func demandOnly(s trace.Stream) []trace.Event {
	var out []trace.Event
	for _, e := range s {
		if e.Kind.IsDemand() {
			out = append(out, trace.Event{Kind: e.Kind, Addr: e.Addr})
		}
	}
	return out
}

// TestAnnotatePreservesDemandStream: inserting prefetches must not add,
// drop, reorder or retarget a single demand reference — the workload's
// computation is fixed; only hints are added.
func TestAnnotatePreservesDemandStream(t *testing.T) {
	for name, base := range generateAll(t) {
		for _, st := range prefetch.Strategies() {
			annotated, err := prefetch.Annotate(base, prefetch.Options{Strategy: st, Geometry: memory.DefaultGeometry()})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, st, err)
			}
			if annotated.Procs() != base.Procs() {
				t.Errorf("%s/%s: proc count changed", name, st)
				continue
			}
			for p := range base.Streams {
				want := demandOnly(base.Streams[p])
				got := demandOnly(annotated.Streams[p])
				if len(want) != len(got) {
					t.Errorf("%s/%s proc %d: demand refs %d -> %d", name, st, p, len(want), len(got))
					continue
				}
				for i := range want {
					if want[i] != got[i] {
						t.Errorf("%s/%s proc %d: demand ref %d changed from %v to %v",
							name, st, p, i, want[i], got[i])
						break
					}
				}
			}
			// Non-NP strategies must actually insert prefetches somewhere.
			if st != prefetch.NP && annotated.Events() <= base.Events() {
				t.Errorf("%s/%s: no prefetches inserted", name, st)
			}
			if st == prefetch.NP && annotated.Events() != base.Events() {
				t.Errorf("%s/NP: event count changed on a no-op annotation", name)
			}
		}
	}
}

// TestMissRateOrdering is the paper's metric hierarchy as an invariant. For
// every workload and strategy:
//
//	adjusted CPU miss rate <= CPU miss rate <= total miss rate
//
// (adjusted drops prefetch-in-progress misses; total adds the misses
// prefetch bus traffic causes on top of CPU misses), plus the sharing
// hierarchy: false-sharing misses are a subset of invalidation misses,
// which are a subset of CPU misses.
func TestMissRateOrdering(t *testing.T) {
	for name, base := range generateAll(t) {
		for _, st := range prefetch.Strategies() {
			annotated, err := prefetch.Annotate(base, prefetch.Options{Strategy: st, Geometry: memory.DefaultGeometry()})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, st, err)
			}
			res, err := sim.Run(sim.DefaultConfig(), annotated)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, st, err)
			}
			adj, cpu, total := res.AdjustedCPUMissRate(), res.CPUMissRate(), res.TotalMissRate()
			if adj > cpu {
				t.Errorf("%s/%s: adjusted MR %.6f above CPU MR %.6f", name, st, adj, cpu)
			}
			if cpu > total {
				t.Errorf("%s/%s: CPU MR %.6f above total MR %.6f", name, st, cpu, total)
			}
			c := &res.Counters
			if c.FalseSharing > c.InvalidationMisses() {
				t.Errorf("%s/%s: false-sharing misses %d exceed invalidation misses %d",
					name, st, c.FalseSharing, c.InvalidationMisses())
			}
			if c.InvalidationMisses() > c.TotalCPUMisses() {
				t.Errorf("%s/%s: invalidation misses %d exceed CPU misses %d",
					name, st, c.InvalidationMisses(), c.TotalCPUMisses())
			}
			if total > 0 && res.Cycles == 0 {
				t.Errorf("%s/%s: misses with zero execution time", name, st)
			}
		}
	}
}
