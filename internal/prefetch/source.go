package prefetch

import (
	"fmt"

	"busprefetch/internal/filter"
	"busprefetch/internal/memory"
	"busprefetch/internal/trace"
)

// AnnotateSource is Annotate over a streaming trace.Source: it returns
// a Source whose streams carry the same prefetch insertions, in the
// same positions, as Annotate would produce on the materialized trace —
// byte-identical by construction — without materializing either the
// input or the output.
//
// The oracle algorithm needs bounded lookback, not whole-stream
// access: an insertion for event i lands at placeBefore(i), which is at
// most `distance` events earlier (every event costs at least one
// estimated cycle), and placeBefore is monotone in i (estimated start
// times strictly increase). So a sliding window of the last ~distance
// events suffices, and insertions emerge already ordered by
// (position, target order), exactly the order Annotate's sort yields.
//
// PWS and ExcludeWriteShared need the whole-trace write-shared line
// set. When prof is non-nil it is used directly (it must have been
// computed with opt.Geometry — callers memoize it per trace and
// geometry); otherwise a streaming pre-pass drains src once to compute
// it.
//
// With Strategy NP src itself is returned: sources are read-only, so
// the defensive clone Annotate performs is unnecessary.
func AnnotateSource(src trace.Source, opt Options, prof *trace.SharingProfile) (trace.Source, error) {
	if err := opt.Geometry.Validate(); err != nil {
		return nil, err
	}
	if opt.Strategy < NP || opt.Strategy >= NumStrategies {
		return nil, fmt.Errorf("prefetch: bad strategy %d", int(opt.Strategy))
	}
	if opt.Strategy == NP {
		return src, nil
	}
	if opt.ExcludeWriteShared && opt.Strategy == PWS {
		return nil, fmt.Errorf("prefetch: ExcludeWriteShared contradicts PWS")
	}
	var isWS func(memory.Addr) bool
	if opt.Strategy == PWS || opt.ExcludeWriteShared {
		if prof == nil {
			var err error
			prof, err = trace.AnalyzeSharingSource(src, opt.Geometry)
			if err != nil {
				return nil, err
			}
		}
		isWS = prof.WriteShared
	}
	return &oracleSource{base: src, opt: opt, isWS: isWS}, nil
}

// oracleSource streams base with prefetch events inserted on the fly.
type oracleSource struct {
	base trace.Source
	opt  Options
	isWS func(memory.Addr) bool
}

func (s *oracleSource) Name() string { return s.base.Name() }

func (s *oracleSource) Procs() int { return s.base.Procs() }

func (s *oracleSource) Events(proc int) trace.Iterator {
	base := s.base.Events(proc)
	return trace.NewPipe(func(flush func([]trace.Event) []trace.Event) error {
		defer base.Close()
		return annotateStreaming(base, s.opt, s.isWS, flush)
	})
}

// annRing is a growable power-of-two ring buffer holding the
// not-yet-final window of events. Events and their estimated start cycles
// live in parallel arrays: the monotone placeBefore scan touches only
// starts, and final events bulk-copy straight out of the event array.
type annRing struct {
	evs    []trace.Event
	starts []uint64
	head   int
	n      int
}

func newAnnRing() *annRing {
	return &annRing{evs: make([]trace.Event, 512), starts: make([]uint64, 512)}
}

// push appends without a capacity check: the caller tests fullness and
// reserve()s first, which keeps push small enough to inline in the
// per-event loop.
func (r *annRing) push(ev trace.Event, start uint64) {
	i := (r.head + r.n) & (len(r.evs) - 1)
	r.evs[i] = ev
	r.starts[i] = start
	r.n++
}

// reserve grows the ring until it can hold n entries.
func (r *annRing) reserve(n int) {
	for n > len(r.evs) {
		evs := make([]trace.Event, len(r.evs)*2)
		starts := make([]uint64, len(r.starts)*2)
		mask := len(r.evs) - 1
		for i := 0; i < r.n; i++ {
			evs[i] = r.evs[(r.head+i)&mask]
			starts[i] = r.starts[(r.head+i)&mask]
		}
		r.evs, r.starts, r.head = evs, starts, 0
	}
}

func (r *annRing) popEv() trace.Event {
	ev := r.evs[r.head]
	r.head = (r.head + 1) & (len(r.evs) - 1)
	r.n--
	return ev
}

func (r *annRing) startAt(i int) uint64 { return r.starts[(r.head+i)&(len(r.starts)-1)] }

// pendingIns is one queued prefetch insertion: emit ev immediately
// before absolute event position at.
type pendingIns struct {
	at int
	ev trace.Event
}

// annEmitBatch is how many final window positions accumulate before they
// are emitted. Batching keeps the bulk-copy spans long; the window then
// holds at most annEmitBatch + distance events, still comfortably inside
// the ring's initial capacity.
const annEmitBatch = 256

// annotateStreaming replays annotateStream's algorithm over an event
// stream with an incremental miss filter and a bounded window. The
// emitted sequence is identical to annotateStream's: start times are
// computed by the same clock, misses by the same filter fed in the
// same order, and insertions land at the same placeBefore positions in
// the same relative order.
func annotateStreaming(base trace.Iterator, opt Options, isWS func(memory.Addr) bool, flush func([]trace.Event) []trace.Event) error {
	mainF := filter.NewCache(opt.Geometry)
	var pwsF *filter.Cache
	if isWS != nil && opt.Strategy == PWS {
		pwsF = filter.NewCache(filter.PWSGeometry(opt.Geometry.LineSize))
	}
	dist := opt.distance()

	out := flush(nil)
	emit := func(e trace.Event) {
		if len(out) == cap(out) {
			out = flush(out)
		}
		out = append(out, e)
	}

	win := newAnnRing()
	var insq []pendingIns
	insHead := 0
	var clock uint64
	idx := 0     // absolute index of the event being processed
	flushed := 0 // absolute index of the first not-yet-emitted position
	place := 0   // monotone placeBefore pointer: last j with start[j] <= want

	// emitRun pops k final window events, bulk-copying contiguous ring
	// spans — the common case between insertion positions.
	emitRun := func(k int) {
		for k > 0 {
			run := len(win.evs) - win.head
			if run > win.n {
				run = win.n
			}
			if run > k {
				run = k
			}
			space := cap(out) - len(out)
			if space == 0 {
				out = flush(out)
				space = cap(out) - len(out)
			}
			if run > space {
				run = space
			}
			out = append(out, win.evs[win.head:win.head+run]...)
			win.head = (win.head + run) & (len(win.evs) - 1)
			win.n -= run
			k -= run
		}
	}
	// emitFinal emits queued insertions and window events for positions
	// [flushed, upto).
	emitFinal := func(upto int) {
		for flushed < upto {
			// Bulk-copy the insertion-free span up to the next queued
			// insertion position.
			next := upto
			if insHead < len(insq) && insq[insHead].at < next {
				next = insq[insHead].at
			}
			if next > flushed {
				emitRun(next - flushed)
				flushed = next
				continue
			}
			for insHead < len(insq) && insq[insHead].at == flushed {
				emit(insq[insHead].ev)
				insHead++
			}
			emit(win.popEv())
			flushed++
		}
	}

	for {
		chunk, err := base.Next()
		if err != nil {
			return err
		}
		if chunk == nil {
			break
		}
		for _, e := range chunk {
			start := clock + uint64(e.Gap)
			clock += uint64(e.Gap) + 1
			if win.n == len(win.evs) {
				win.reserve(win.n + 1)
			}
			win.push(e, start)

			var miss, wsMiss bool
			if e.Kind <= trace.Write { // Read or Write
				miss = mainF.Access(e.Addr)
			} else if e.Kind == trace.Lock || e.Kind == trace.Unlock {
				mainF.Access(e.Addr)
			}
			if pwsF != nil && e.Kind.IsDemand() && isWS(e.Addr) {
				wsMiss = pwsF.Access(e.Addr)
			}

			// Advance the monotone insertion pointer. Because start
			// strictly increases, want does too, so the pointer never
			// moves backward — this loop is amortized O(1) per event.
			if start > dist {
				want := start - dist
				for place < idx && win.startAt(place+1-flushed) <= want {
					place++
				}
			}
			// Positions before the pointer can never receive another
			// insertion (future events place at or after it): they are
			// final. Emitting them is deferred until a batch has
			// accumulated so emitRun copies long spans instead of
			// single events.
			if place-flushed >= annEmitBatch {
				emitFinal(place)
				if insHead == len(insq) {
					insq, insHead = insq[:0], 0
				} else if insHead >= 1024 {
					// Compact the consumed prefix so the queue stays
					// window-sized even when it never fully drains.
					n := copy(insq, insq[insHead:])
					insq, insHead = insq[:n], 0
				}
			}

			wantPref := miss || wsMiss
			if wantPref && e.Kind.IsDemand() && !(opt.ExcludeWriteShared && isWS != nil && isWS(e.Addr)) {
				kind := trace.Prefetch
				if opt.Strategy == EXCL && e.Kind == trace.Write && miss {
					kind = trace.PrefetchExcl
				}
				insq = append(insq, pendingIns{at: place, ev: trace.Event{Kind: kind, Addr: e.Addr}})
			}
			idx++
		}
	}
	// End of stream: everything left in the window is final.
	emitFinal(idx)
	flush(out)
	return nil
}

// OverheadSource reports the annotation's instruction overhead —
// prefetch events per demand reference — by draining src once.
func OverheadSource(src trace.Source) (float64, error) {
	var pref, demand int
	for p := 0; p < src.Procs(); p++ {
		it := src.Events(p)
		for {
			chunk, err := it.Next()
			if err != nil {
				it.Close()
				return 0, err
			}
			if chunk == nil {
				break
			}
			for _, e := range chunk {
				switch {
				case e.Kind.IsPrefetch():
					pref++
				case e.Kind.IsDemand():
					demand++
				}
			}
		}
		it.Close()
	}
	if demand == 0 {
		return 0, nil
	}
	return float64(pref) / float64(demand), nil
}
