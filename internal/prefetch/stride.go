package prefetch

import "busprefetch/internal/memory"

// The sequential/stride engine: a per-PC table in the tradition of
// Chen & Baer's reference prediction table. Each access site (PC proxy)
// gets an entry recording its last address, its current stride, and a
// confidence counter; once the same stride repeats, the engine prefetches
// the lines the site is about to reach.
//
// Predictions are emitted at line granularity. Sub-line strides (the
// common unit-stride array walk, which revisits a 32-byte line for
// several consecutive references) are widened to one line per step in the
// stride's direction, so the engine asks for the *next lines*, not the
// next words; strides of a line or more use the raw stride. Both forms
// depend only on address deltas, which is what makes issue decisions
// invariant under line-aligned relabelings of the address space.

// strideTableSize bounds the per-PC table; sites beyond the bound are
// ignored (never evicted, so behavior cannot depend on map iteration
// order). The synthetic workloads have far fewer static sites.
const strideTableSize = 4096

// strideConfidence is how many consecutive repeats of a stride the engine
// demands before predicting from it.
const strideConfidence = 2

type strideEntry struct {
	last   memory.Addr
	stride int64
	conf   uint8
}

type strideEngine struct {
	track
	table map[uint64]*strideEntry
}

func newStrideEngine(opt EngineOptions) *strideEngine {
	return &strideEngine{track: track{opt: opt}, table: make(map[uint64]*strideEntry)}
}

func (e *strideEngine) Kind() Kind { return Stride }

func (e *strideEngine) Observe(r Ref, cand []Candidate) []Candidate {
	e.stats.Observed++
	e.noteMiss(r)
	ent := e.table[r.PC]
	if ent == nil {
		if len(e.table) >= strideTableSize {
			return cand
		}
		e.table[r.PC] = &strideEntry{last: r.Addr}
		e.stats.Trained++
		return cand
	}
	delta := int64(r.Addr) - int64(ent.last)
	ent.last = r.Addr
	if delta == 0 {
		// A repeat of the same address carries no stride information
		// (spin on a flag, reread of a scalar); leave the entry as is.
		return cand
	}
	if delta != ent.stride {
		ent.stride = delta
		ent.conf = 1
		e.stats.Trained++
		return cand
	}
	if ent.conf < strideConfidence {
		ent.conf++
		if ent.conf < strideConfidence {
			return cand
		}
	}
	if !e.enabled() {
		return cand
	}
	// Widen sub-line strides to whole lines so every step is a new line.
	step := ent.stride
	lineSize := int64(e.opt.Geometry.LineSize)
	if step > -lineSize && step < lineSize {
		if step > 0 {
			step = lineSize
		} else {
			step = -lineSize
		}
	}
	excl := e.opt.excl(r)
	look := int64(e.opt.lookahead())
	for k := int64(0); k < int64(e.opt.degree()); k++ {
		pred := int64(r.Addr) + step*(look+k)
		if pred < 0 {
			break
		}
		cand = e.emit(cand, Candidate{Line: e.opt.Geometry.LineAddr(memory.Addr(pred)), Excl: excl})
	}
	return cand
}

func (e *strideEngine) Fill(la memory.Addr, wasPrefetch bool) { e.noteFill(la) }
