package prefetch

import "busprefetch/internal/memory"

// The PC-indexed temporal engine, in the style of the simple temporal
// prefetchers built from a training unit plus a correlation ("mapping")
// cache (SISB and kin). Temporal prefetching targets the irregular miss
// sequences stride detection cannot see: if the program missed on line A
// and then line B last time through a data structure, it will likely do
// so again.
//
// The training unit records, per PC, the previous miss line observed at
// that site; when the site misses again on a new line, the engine learns
// the succession old -> new in the mapping cache. Prediction replays the
// learned chain from the current miss line, up to the configured degree
// (the LPD strategy first skips lpdLookahead-1 links so the replayed
// window sits further ahead of the processor). A succession that
// contradicts a previously learned one overwrites it and counts as a
// divergence — the engine's signal that the miss stream is not stable.
//
// Both tables are bounded and evict nothing (entries beyond the bound are
// simply not learned), so behavior cannot depend on map iteration order.

// temporalTableSize bounds the training unit and the mapping cache.
const temporalTableSize = 1 << 15

type temporalEngine struct {
	track
	tu      map[uint64]memory.Addr      // training unit: PC -> previous miss line
	mapping map[memory.Addr]memory.Addr // learned successions: miss line -> next miss line
}

func newTemporalEngine(opt EngineOptions) *temporalEngine {
	return &temporalEngine{
		track:   track{opt: opt},
		tu:      make(map[uint64]memory.Addr),
		mapping: make(map[memory.Addr]memory.Addr),
	}
}

func (e *temporalEngine) Kind() Kind { return Temporal }

func (e *temporalEngine) Observe(r Ref, cand []Candidate) []Candidate {
	e.stats.Observed++
	e.noteMiss(r)
	if !r.Miss {
		// Temporal engines train on the miss stream only: hits neither
		// advance the training unit nor trigger predictions.
		return cand
	}
	la := r.Line
	if last, ok := e.tu[r.PC]; ok && last != la {
		if m, learned := e.mapping[last]; learned {
			if m != la {
				e.mapping[last] = la
				e.stats.Divergence++
			}
		} else if len(e.mapping) < temporalTableSize {
			e.mapping[last] = la
			e.stats.Trained++
		}
	}
	if _, ok := e.tu[r.PC]; ok || len(e.tu) < temporalTableSize {
		e.tu[r.PC] = la
	}
	if !e.enabled() {
		return cand
	}
	// Replay the learned chain from the current miss. The chain may
	// cycle; the bounded walk just stops when it returns to the trigger.
	excl := e.opt.excl(r)
	skip := e.opt.lookahead() - 1
	next := la
	for i := 0; i < skip+e.opt.degree(); i++ {
		m, ok := e.mapping[next]
		if !ok || m == la {
			break
		}
		next = m
		if i >= skip {
			cand = e.emit(cand, Candidate{Line: next, Excl: excl})
		}
	}
	return cand
}

func (e *temporalEngine) Fill(la memory.Addr, wasPrefetch bool) { e.noteFill(la) }
