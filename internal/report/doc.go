// Package report renders experiment results as fixed-width text tables and
// simple ASCII charts, the formats cmd/mkfigures and the examples print.
package report
