package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 3 decimal
// places.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// A row longer than the header list still renders: the extra
			// cells print unpadded instead of indexing past width.
			wd := 0
			if i < len(width) {
				wd = width[i]
			}
			b.WriteString(pad(c, wd))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.headers); err != nil {
		return err
	}
	var sep []string
	for _, wd := range width {
		sep = append(sep, strings.Repeat("-", wd))
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b) // strings.Builder never errors
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one line of an ASCII chart.
type Series struct {
	Name   string
	Points []float64
}

// Chart renders small multi-series data as an ASCII line chart: one row per
// series, one column block per x value, values printed numerically with a
// bar. It favors readability over fidelity — the numeric table is the
// authoritative output.
type Chart struct {
	Title  string
	XLabel string
	XTicks []string
	Series []Series
}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
		return err
	}
	lo, hi := c.bounds()
	if hi <= lo {
		hi = lo + 1
	}
	nameW := 0
	for _, s := range c.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for _, s := range c.Series {
		if _, err := fmt.Fprintf(w, "  %s ", pad(s.Name, nameW)); err != nil {
			return err
		}
		for _, v := range s.Points {
			bar := int(20 * (v - lo) / (hi - lo))
			if bar < 0 {
				bar = 0
			}
			if bar > 20 {
				bar = 20
			}
			if _, err := fmt.Fprintf(w, "%6.3f|%-6s", v, strings.Repeat("#", bar/3)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if len(c.XTicks) > 0 {
		if _, err := fmt.Fprintf(w, "  %s ", pad(c.XLabel, nameW)); err != nil {
			return err
		}
		for _, t := range c.XTicks {
			if _, err := fmt.Fprintf(w, "%6s|%-6s", t, ""); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func (c *Chart) bounds() (lo, hi float64) {
	first := true
	for _, s := range c.Series {
		for _, v := range s.Points {
			if first || v < lo {
				lo = v
			}
			if first || v > hi {
				hi = v
			}
			first = false
		}
	}
	return lo, hi
}

// String renders the chart to a string.
func (c *Chart) String() string {
	var b strings.Builder
	_ = c.Render(&b) // strings.Builder never errors
	return b.String()
}
