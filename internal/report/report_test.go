package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("My Table", "name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("b", "raw")
	tbl.AddRow("gamma-long-name", 42)
	out := tbl.String()
	if !strings.Contains(out, "My Table") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + separator + 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Error("header missing")
	}
	if !strings.Contains(lines[3], "1.500") {
		t.Errorf("float not formatted: %q", lines[3])
	}
	// All value columns start at the same offset.
	col := strings.Index(lines[3], "1.500")
	if strings.Index(lines[4], "raw") != col {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("x")
	out := tbl.String()
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title produced a blank line")
	}
}

func TestChartRendering(t *testing.T) {
	c := &Chart{
		Title:  "exec time",
		XLabel: "T",
		XTicks: []string{"4", "8"},
		Series: []Series{
			{Name: "PREF", Points: []float64{0.9, 1.0}},
			{Name: "PWS", Points: []float64{0.8, 0.95}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "exec time") || !strings.Contains(out, "PREF") || !strings.Contains(out, "PWS") {
		t.Errorf("chart missing content:\n%s", out)
	}
	if !strings.Contains(out, "0.900") || !strings.Contains(out, "0.950") {
		t.Errorf("chart missing values:\n%s", out)
	}
	if !strings.Contains(out, "T") || !strings.Contains(out, "4") {
		t.Errorf("chart missing x axis:\n%s", out)
	}
}

func TestChartFlatSeries(t *testing.T) {
	c := &Chart{Title: "flat", Series: []Series{{Name: "s", Points: []float64{1, 1, 1}}}}
	out := c.String() // must not divide by zero
	if !strings.Contains(out, "1.000") {
		t.Errorf("flat chart broken:\n%s", out)
	}
}
