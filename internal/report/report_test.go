package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("My Table", "name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("b", "raw")
	tbl.AddRow("gamma-long-name", 42)
	out := tbl.String()
	if !strings.Contains(out, "My Table") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + separator + 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Error("header missing")
	}
	if !strings.Contains(lines[3], "1.500") {
		t.Errorf("float not formatted: %q", lines[3])
	}
	// All value columns start at the same offset.
	col := strings.Index(lines[3], "1.500")
	if strings.Index(lines[4], "raw") != col {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("x")
	out := tbl.String()
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title produced a blank line")
	}
}

func TestChartRendering(t *testing.T) {
	c := &Chart{
		Title:  "exec time",
		XLabel: "T",
		XTicks: []string{"4", "8"},
		Series: []Series{
			{Name: "PREF", Points: []float64{0.9, 1.0}},
			{Name: "PWS", Points: []float64{0.8, 0.95}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "exec time") || !strings.Contains(out, "PREF") || !strings.Contains(out, "PWS") {
		t.Errorf("chart missing content:\n%s", out)
	}
	if !strings.Contains(out, "0.900") || !strings.Contains(out, "0.950") {
		t.Errorf("chart missing values:\n%s", out)
	}
	if !strings.Contains(out, "T") || !strings.Contains(out, "4") {
		t.Errorf("chart missing x axis:\n%s", out)
	}
}

func TestChartFlatSeries(t *testing.T) {
	c := &Chart{Title: "flat", Series: []Series{{Name: "s", Points: []float64{1, 1, 1}}}}
	out := c.String() // must not divide by zero
	if !strings.Contains(out, "1.000") {
		t.Errorf("flat chart broken:\n%s", out)
	}
}

// TestTableRaggedRows pins the width-guard in Render: rows shorter or longer
// than the header list must render (extra cells unpadded), never panic on an
// out-of-range width index.
func TestTableRaggedRows(t *testing.T) {
	tbl := NewTable("ragged", "a", "b")
	tbl.AddRow("only")                       // shorter than headers
	tbl.AddRow("x", "y", "overflow", "more") // longer than headers
	tbl.AddRow()                             // empty row
	out := tbl.String()
	for _, want := range []string{"only", "overflow", "more"} {
		if !strings.Contains(out, want) {
			t.Errorf("ragged table dropped %q:\n%s", want, out)
		}
	}
}

func TestTableNoRows(t *testing.T) {
	tbl := NewTable("empty", "a", "b")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // title + header + separator
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableNoColumns(t *testing.T) {
	tbl := NewTable("bare")
	tbl.AddRow("stray")
	out := tbl.String() // must not panic
	if !strings.Contains(out, "stray") {
		t.Errorf("column-less table dropped its row:\n%s", out)
	}
}

func TestChartBounds(t *testing.T) {
	cases := []struct {
		name   string
		series []Series
		lo, hi float64
	}{
		{"empty", nil, 0, 0},
		{"single point", []Series{{Points: []float64{2.5}}}, 2.5, 2.5},
		{"all equal", []Series{{Points: []float64{3, 3}}, {Points: []float64{3}}}, 3, 3},
		{"spread", []Series{{Points: []float64{1, 5}}, {Points: []float64{-2, 4}}}, -2, 5},
		{"negative only", []Series{{Points: []float64{-3, -1}}}, -3, -1},
	}
	for _, tc := range cases {
		c := &Chart{Series: tc.series}
		lo, hi := c.bounds()
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("%s: bounds() = (%v, %v), want (%v, %v)", tc.name, lo, hi, tc.lo, tc.hi)
		}
	}
}

func TestChartEmptyAndSinglePoint(t *testing.T) {
	empty := &Chart{Title: "empty"}
	if out := empty.String(); !strings.Contains(out, "empty") {
		t.Errorf("empty chart lost its title:\n%s", out)
	}
	single := &Chart{Title: "one", Series: []Series{{Name: "s", Points: []float64{0.5}}}}
	if out := single.String(); !strings.Contains(out, "0.500") {
		t.Errorf("single-point chart broken:\n%s", out)
	}
}
