// Package restructure implements the shared-data layout transformations the
// paper applies to Topopt and Pverify (§4.4, Tables 4 and 5), following
// Jeremiassen & Eggers' restructuring algorithm: false sharing is removed by
// (a) padding records so independently-written records never share a cache
// line, and (b) grouping data by the processor that writes it so each
// processor's data occupies its own lines.
//
// Workload generators describe their arrays through Mapper so the same
// kernel can run with the original (false-sharing-prone) layout or the
// restructured one; the choice is the only difference between the paper's
// "before" and "after" programs.
package restructure
