package restructure

import (
	"fmt"

	"busprefetch/internal/memory"
)

// Mapper lays out an array of fixed-size records and answers where each
// record (and each word within it) lives.
type Mapper struct {
	base     memory.Addr
	recSize  int
	count    int
	lineSize int
	// perm[i] is the record slot index where logical record i is stored
	// (nil means identity).
	perm []int
	// slotStride is the distance between consecutive slots; >= recSize.
	slotStride int
	size       int
}

// Packed lays records out contiguously — the original layout, in which
// records smaller than a line share lines and writes by different processors
// to neighbouring records falsely share. A non-positive record size or a
// negative count is a layout-configuration error, reported to the caller
// (workload generators surface it through Generate) rather than crashing.
func Packed(base memory.Addr, recSize, count int) (*Mapper, error) {
	if recSize <= 0 || count < 0 {
		return nil, fmt.Errorf("restructure: record size %d must be positive and count %d non-negative", recSize, count)
	}
	return &Mapper{
		base:       base,
		recSize:    recSize,
		count:      count,
		slotStride: recSize,
		size:       recSize * count,
	}, nil
}

// Padded lays each record on its own cache line (or a multiple, for records
// bigger than a line). No two records ever share a line, so writes to one
// record can never falsely invalidate another.
func Padded(base memory.Addr, recSize, count, lineSize int) (*Mapper, error) {
	if recSize <= 0 || count < 0 {
		return nil, fmt.Errorf("restructure: record size %d must be positive and count %d non-negative", recSize, count)
	}
	if lineSize <= 0 {
		return nil, fmt.Errorf("restructure: line size %d must be positive", lineSize)
	}
	stride := ((recSize + lineSize - 1) / lineSize) * lineSize
	return &Mapper{
		base:       base,
		recSize:    recSize,
		count:      count,
		lineSize:   lineSize,
		slotStride: stride,
		size:       stride * count,
	}, nil
}

// BlockedByOwner groups records by owning processor: each processor's
// records are stored contiguously, and each group starts on a fresh cache
// line. Records of different owners never share a line, which removes false
// sharing between owners while keeping each owner's records dense (good
// spatial locality for the owner, unlike Padded). owner must return a value
// in [0, procs); a stray owner is reported as an error naming the offending
// record so the workload author can fix the ownership function.
func BlockedByOwner(base memory.Addr, recSize, count, lineSize, procs int, owner func(i int) int) (*Mapper, error) {
	if recSize <= 0 || count < 0 {
		return nil, fmt.Errorf("restructure: record size %d must be positive and count %d non-negative", recSize, count)
	}
	if procs <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("restructure: procs %d and line size %d must both be positive", procs, lineSize)
	}
	// Count each owner's records, lay groups out line-aligned, then assign
	// slot indices in logical order within each group.
	counts := make([]int, procs)
	for i := 0; i < count; i++ {
		o := owner(i)
		if o < 0 || o >= procs {
			return nil, fmt.Errorf("restructure: owner(%d) = %d outside [0, %d)", i, o, procs)
		}
		counts[o]++
	}
	recsPerLine := lineSize / recSize
	if recsPerLine == 0 {
		recsPerLine = 1
	}
	groupStart := make([]int, procs) // in record slots
	slots := 0
	for o := 0; o < procs; o++ {
		groupStart[o] = slots
		// Round each group up to a whole number of lines worth of slots.
		g := counts[o]
		rounded := ((g + recsPerLine - 1) / recsPerLine) * recsPerLine
		slots += rounded
	}
	next := append([]int(nil), groupStart...)
	perm := make([]int, count)
	for i := 0; i < count; i++ {
		o := owner(i)
		perm[i] = next[o]
		next[o]++
	}
	stride := recSize
	size := slots * stride
	// Groups were rounded to line multiples only if recSize divides the
	// line evenly; otherwise pad the whole array to be safe.
	if lineSize%recSize != 0 {
		return Padded(base, recSize, count, lineSize)
	}
	return &Mapper{
		base:       base,
		recSize:    recSize,
		count:      count,
		lineSize:   lineSize,
		perm:       perm,
		slotStride: stride,
		size:       size,
	}, nil
}

// Elem returns the address of record i's first byte.
func (m *Mapper) Elem(i int) memory.Addr {
	if i < 0 || i >= m.count {
		panic(fmt.Sprintf("restructure: record %d outside [0, %d)", i, m.count))
	}
	slot := i
	if m.perm != nil {
		slot = m.perm[i]
	}
	return m.base + memory.Addr(slot*m.slotStride)
}

// Word returns the address of word w (0-based) within record i.
func (m *Mapper) Word(i, w int) memory.Addr {
	if w < 0 || (w+1)*memory.WordSize > m.recSize {
		panic(fmt.Sprintf("restructure: word %d outside record of %d bytes", w, m.recSize))
	}
	return m.Elem(i) + memory.Addr(w*memory.WordSize)
}

// Size returns the array's total footprint in bytes.
func (m *Mapper) Size() int { return m.size }

// Count returns the number of records.
func (m *Mapper) Count() int { return m.count }

// RecordSize returns the record size in bytes.
func (m *Mapper) RecordSize() int { return m.recSize }
