package restructure

import (
	"testing"
	"testing/quick"

	"busprefetch/internal/memory"
)

const lineSize = 32

func lineOf(a memory.Addr) uint64 { return uint64(a) / lineSize }

func mustMapper(t *testing.T) func(*Mapper, error) *Mapper {
	return func(m *Mapper, err error) *Mapper {
		t.Helper()
		if err != nil {
			t.Fatalf("building mapper: %v", err)
		}
		return m
	}
}

func TestPackedLayout(t *testing.T) {
	m := mustMapper(t)(Packed(0x1000, 8, 16))
	if m.Size() != 128 {
		t.Errorf("Size = %d, want 128", m.Size())
	}
	if m.Elem(0) != 0x1000 || m.Elem(1) != 0x1008 {
		t.Error("packed elements not contiguous")
	}
	// Four 8-byte records per 32-byte line: records 0-3 share a line.
	if lineOf(m.Elem(0)) != lineOf(m.Elem(3)) {
		t.Error("packed records 0 and 3 should share a line")
	}
	if lineOf(m.Elem(0)) == lineOf(m.Elem(4)) {
		t.Error("packed records 0 and 4 should not share a line")
	}
}

func TestPaddedLayoutIsolatesRecords(t *testing.T) {
	m := mustMapper(t)(Padded(0x1000, 8, 16, lineSize))
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		l := lineOf(m.Elem(i))
		if seen[l] {
			t.Fatalf("padded records share line %d", l)
		}
		seen[l] = true
	}
	if m.Size() != 16*lineSize {
		t.Errorf("Size = %d, want %d", m.Size(), 16*lineSize)
	}
}

func TestPaddedLargeRecords(t *testing.T) {
	m := mustMapper(t)(Padded(0, 40, 4, lineSize)) // 40-byte records need 2 lines each
	if m.Size() != 4*64 {
		t.Errorf("Size = %d, want 256", m.Size())
	}
	if m.Elem(1)-m.Elem(0) != 64 {
		t.Error("large records not padded to line multiples")
	}
}

func TestBlockedByOwnerSeparatesOwners(t *testing.T) {
	procs := 4
	owner := func(i int) int { return i % procs }
	m := mustMapper(t)(BlockedByOwner(0x1000, 8, 64, lineSize, procs, owner))
	// Build line -> set of owners; no line may host two owners.
	owners := map[uint64]map[int]bool{}
	for i := 0; i < 64; i++ {
		l := lineOf(m.Elem(i))
		if owners[l] == nil {
			owners[l] = map[int]bool{}
		}
		owners[l][owner(i)] = true
	}
	for l, os := range owners {
		if len(os) > 1 {
			t.Errorf("line %d hosts %d owners", l, len(os))
		}
	}
}

func TestBlockedByOwnerKeepsOwnersDense(t *testing.T) {
	procs := 4
	owner := func(i int) int { return i % procs }
	m := mustMapper(t)(BlockedByOwner(0, 8, 64, lineSize, procs, owner))
	// Each owner's 16 records must fit in 16*8 = 128 bytes = 4 lines.
	lines := map[int]map[uint64]bool{}
	for i := 0; i < 64; i++ {
		o := owner(i)
		if lines[o] == nil {
			lines[o] = map[uint64]bool{}
		}
		lines[o][lineOf(m.Elem(i))] = true
	}
	for o, ls := range lines {
		if len(ls) > 4 {
			t.Errorf("owner %d spread over %d lines, want <= 4", o, len(ls))
		}
	}
}

func TestBlockedByOwnerNoAddressCollisions(t *testing.T) {
	f := func(seed int64) bool {
		procs := 3 + int(uint64(seed)%5)
		count := 50
		off := int(uint64(seed) % 97)
		owner := func(i int) int { return (i*7 + off) % procs }
		m, err := BlockedByOwner(0x2000, 8, count, lineSize, procs, owner)
		if err != nil {
			return false
		}
		seen := map[memory.Addr]bool{}
		for i := 0; i < count; i++ {
			a := m.Elem(i)
			if seen[a] {
				return false
			}
			seen[a] = true
			if a < 0x2000 || a >= 0x2000+memory.Addr(m.Size()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := Packed(0, 0, 4); err == nil {
		t.Error("Packed accepted a zero record size")
	}
	if _, err := Packed(0, 8, -1); err == nil {
		t.Error("Packed accepted a negative count")
	}
	if _, err := Padded(0, 8, 4, 0); err == nil {
		t.Error("Padded accepted a zero line size")
	}
	if _, err := BlockedByOwner(0, 8, 4, lineSize, 0, func(int) int { return 0 }); err == nil {
		t.Error("BlockedByOwner accepted zero procs")
	}
	if _, err := BlockedByOwner(0, 8, 4, lineSize, 2, func(int) int { return 5 }); err == nil {
		t.Error("BlockedByOwner accepted an out-of-range owner")
	}
}

func TestWordAddressing(t *testing.T) {
	m := mustMapper(t)(Packed(0x1000, 12, 4))
	if m.Word(1, 0) != 0x100c || m.Word(1, 2) != 0x1014 {
		t.Error("Word addressing wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-record word did not panic")
		}
	}()
	m.Word(0, 3) // 12-byte record has words 0..2
}

func TestElemBoundsPanic(t *testing.T) {
	m := mustMapper(t)(Packed(0, 8, 4))
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Elem did not panic")
		}
	}()
	m.Elem(4)
}
