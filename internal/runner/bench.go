package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// BenchSchema versions the benchmark report format.
const BenchSchema = "busprefetch-bench/v1"

// CellTime is one task's wall-clock cost in a benchmark report.
type CellTime struct {
	Cell   string  `json:"cell"`
	Millis float64 `json:"millis"`
}

// BenchReport records one suite run's performance trajectory: what ran, how
// wide, how long, and how well the trace cache deduplicated generation work.
// Comparing reports across commits (or across -jobs values on the same
// commit) is the repo's perf regression signal.
type BenchReport struct {
	Schema string `json:"schema"`
	// Scale and Seed identify the suite configuration measured.
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`
	// Workers is the pool bound the run used; GOMAXPROCS is the hardware
	// parallelism actually available, so Workers > GOMAXPROCS means the
	// extra workers only overlapped, not parallelized.
	Workers    int `json:"workers"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Cells is every pool-executed task with its wall-clock cost, sorted by
	// label so reports diff cleanly.
	Cells []CellTime `json:"cells"`
	// CellMillisTotal sums the per-cell costs (CPU-ish time); TotalMillis
	// is the end-to-end wall clock the caller measured. Their ratio is the
	// achieved parallel speedup.
	CellMillisTotal float64 `json:"cell_millis_total"`
	TotalMillis     float64 `json:"total_millis"`
	// Trace-cache effectiveness: Misses is the number of traces actually
	// generated, Hits the number of generations avoided.
	TraceCacheHits    uint64  `json:"trace_cache_hits"`
	TraceCacheMisses  uint64  `json:"trace_cache_misses"`
	TraceCacheHitRate float64 `json:"trace_cache_hit_rate"`
}

// NewBenchReport assembles a report from pool timings and trace-cache stats.
// total is the end-to-end wall clock of the run being recorded.
func NewBenchReport(scale float64, seed int64, workers int, gomaxprocs int,
	timings []Timing, total time.Duration, traces *TraceCache) *BenchReport {
	r := &BenchReport{
		Schema:      BenchSchema,
		Scale:       scale,
		Seed:        seed,
		Workers:     workers,
		GOMAXPROCS:  gomaxprocs,
		TotalMillis: float64(total) / float64(time.Millisecond),
	}
	for _, t := range timings {
		ms := float64(t.Duration) / float64(time.Millisecond)
		r.Cells = append(r.Cells, CellTime{Cell: t.Label, Millis: ms})
		r.CellMillisTotal += ms
	}
	sort.Slice(r.Cells, func(i, j int) bool { return r.Cells[i].Cell < r.Cells[j].Cell })
	if traces != nil {
		r.TraceCacheHits, r.TraceCacheMisses = traces.Stats()
		r.TraceCacheHitRate = traces.HitRate()
	}
	return r
}

// WriteFile writes the report as indented JSON, atomically: the report lands
// complete or not at all, never as a torn file a comparison script would
// misparse.
func (r *BenchReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encoding bench report: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("runner: writing bench report: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("runner: writing bench report: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runner: writing bench report: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("runner: writing bench report: %w", err)
	}
	return nil
}

// ReadBenchReport loads a report written by WriteFile and rejects unknown
// schemas, so a comparison against a stale or foreign file fails loudly.
func ReadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("runner: parsing bench report %s: %w", path, err)
	}
	if r.Schema != BenchSchema {
		return nil, fmt.Errorf("runner: bench report %s has schema %q, want %q", path, r.Schema, BenchSchema)
	}
	return &r, nil
}
