package runner

import (
	"fmt"
	"sort"
)

// Regression is one suite cell whose wall-clock cost grew beyond the allowed
// tolerance relative to a reference report.
type Regression struct {
	Cell      string
	RefMillis float64
	NewMillis float64
	// Ratio is NewMillis / RefMillis (1.10 = 10% slower than the reference).
	Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0fms -> %.0fms (%.2fx)", r.Cell, r.RefMillis, r.NewMillis, r.Ratio)
}

// CompareCells matches cells by label between a reference report and a new
// one and returns every cell whose wall clock regressed by more than
// tolerance (0.10 = 10%), worst ratio first. Cells below minMillis in the
// reference are skipped — scheduler noise dominates sub-threshold timings —
// and cells present in only one report are ignored (the suite's shape
// changed; that is a golden-file concern, not a perf one).
func CompareCells(ref, cur *BenchReport, tolerance, minMillis float64) []Regression {
	refBy := make(map[string]float64, len(ref.Cells))
	for _, c := range ref.Cells {
		refBy[c.Cell] = c.Millis
	}
	var regs []Regression
	for _, c := range cur.Cells {
		base, ok := refBy[c.Cell]
		if !ok || base < minMillis || base <= 0 {
			continue
		}
		ratio := c.Millis / base
		if ratio > 1+tolerance {
			regs = append(regs, Regression{Cell: c.Cell, RefMillis: base, NewMillis: c.Millis, Ratio: ratio})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Ratio != regs[j].Ratio {
			return regs[i].Ratio > regs[j].Ratio
		}
		return regs[i].Cell < regs[j].Cell
	})
	return regs
}
