package runner

import (
	"os"
	"strings"
	"testing"
)

func report(cells ...CellTime) *BenchReport {
	return &BenchReport{Schema: BenchSchema, Cells: cells}
}

func TestCompareCells(t *testing.T) {
	ref := report(
		CellTime{"a", 100},
		CellTime{"b", 200},
		CellTime{"tiny", 5},
		CellTime{"gone", 150},
	)
	cur := report(
		CellTime{"a", 109},   // +9%: within tolerance
		CellTime{"b", 260},   // +30%: regression
		CellTime{"tiny", 50}, // 10x, but below the noise floor
		CellTime{"new", 999}, // no reference: ignored
	)
	regs := CompareCells(ref, cur, 0.10, 50)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions %v, want exactly the 'b' cell", len(regs), regs)
	}
	r := regs[0]
	if r.Cell != "b" || r.RefMillis != 200 || r.NewMillis != 260 {
		t.Errorf("regression = %+v, want b 200->260", r)
	}
	if r.Ratio < 1.29 || r.Ratio > 1.31 {
		t.Errorf("Ratio = %v, want 1.30", r.Ratio)
	}
	if got := r.String(); !strings.Contains(got, "b: 200ms -> 260ms") {
		t.Errorf("String() = %q", got)
	}
}

func TestCompareCellsOrdersWorstFirst(t *testing.T) {
	ref := report(CellTime{"x", 100}, CellTime{"y", 100}, CellTime{"z", 100})
	cur := report(CellTime{"x", 150}, CellTime{"y", 300}, CellTime{"z", 150})
	regs := CompareCells(ref, cur, 0.10, 50)
	if len(regs) != 3 {
		t.Fatalf("got %d regressions, want 3", len(regs))
	}
	if regs[0].Cell != "y" {
		t.Errorf("worst regression = %s, want y (ties broken by label after ratio)", regs[0].Cell)
	}
	if regs[1].Cell != "x" || regs[2].Cell != "z" {
		t.Errorf("tie order = %s, %s, want x, z", regs[1].Cell, regs[2].Cell)
	}
}

func TestCompareCellsNoRegressions(t *testing.T) {
	ref := report(CellTime{"a", 100})
	if regs := CompareCells(ref, report(CellTime{"a", 90}), 0.10, 50); regs != nil {
		t.Errorf("faster run reported regressions: %v", regs)
	}
}

// TestBenchAgainstReference gates the live perf check: record a fresh report
// with
//
//	go run ./cmd/mkfigures -scale 1 -jobs 8 -bench-out /tmp/bench_new.json -q
//	BUSPREFETCH_BENCH_NEW=/tmp/bench_new.json go test ./internal/runner -run TestBenchAgainstReference
//
// and every cell's wall clock must stay within 10% of the checked-in
// BENCH_suite.json reference. Wall-clock comparisons are only meaningful on a
// quiet machine, so the test skips unless pointed at a fresh report.
func TestBenchAgainstReference(t *testing.T) {
	newPath := os.Getenv("BUSPREFETCH_BENCH_NEW")
	if newPath == "" {
		t.Skip("set BUSPREFETCH_BENCH_NEW to a freshly recorded bench report to compare against BENCH_suite.json")
	}
	ref, err := ReadBenchReport("../../BENCH_suite.json")
	if err != nil {
		t.Fatalf("reading checked-in reference: %v", err)
	}
	cur, err := ReadBenchReport(newPath)
	if err != nil {
		t.Fatalf("reading fresh report: %v", err)
	}
	// 100ms floor: below that, scheduler jitter on a loaded runner swamps
	// any real signal.
	regs := CompareCells(ref, cur, 0.10, 100)
	for _, r := range regs {
		t.Errorf("cell regressed beyond 10%%: %s", r)
	}
}
