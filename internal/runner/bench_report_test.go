package runner

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestBenchReportRoundTrip(t *testing.T) {
	c := NewTraceCache()
	_, _, _ = c.Get(context.Background(), testKey("water", false), generate("water", false))
	_, _, _ = c.Get(context.Background(), testKey("water", false), generate("water", false))
	timings := []Timing{
		{Label: "b-cell", Duration: 30 * time.Millisecond},
		{Label: "a-cell", Duration: 20 * time.Millisecond},
	}
	r := NewBenchReport(0.1, 1, 8, 4, timings, 40*time.Millisecond, c)
	if r.Schema != BenchSchema {
		t.Errorf("schema = %q", r.Schema)
	}
	if len(r.Cells) != 2 || r.Cells[0].Cell != "a-cell" {
		t.Errorf("cells not sorted by label: %+v", r.Cells)
	}
	if r.CellMillisTotal != 50 {
		t.Errorf("CellMillisTotal = %v, want 50", r.CellMillisTotal)
	}
	if r.TotalMillis != 40 {
		t.Errorf("TotalMillis = %v, want 40", r.TotalMillis)
	}
	if r.TraceCacheHits != 1 || r.TraceCacheMisses != 1 || r.TraceCacheHitRate != 0.5 {
		t.Errorf("trace cache stats = %d/%d/%v", r.TraceCacheHits, r.TraceCacheMisses, r.TraceCacheHitRate)
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workers != 8 || got.GOMAXPROCS != 4 || len(got.Cells) != 2 || got.Scale != 0.1 {
		t.Errorf("round-tripped report = %+v", got)
	}
}

func TestBenchReportRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchReport(path); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if err := os.WriteFile(path, []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchReport(path); err == nil {
		t.Fatal("corrupt report accepted")
	}
}

func TestBenchReportWriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_suite.json")
	r := NewBenchReport(1, 1, 1, 1, nil, time.Second, nil)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "BENCH_suite.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory contents = %v, want just BENCH_suite.json", names)
	}
}
