package runner

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// The checkpoint store persists completed sweep cells so an interrupted
// sweep — Ctrl-C, a crash, kill -9 — resumes with only the missing cells
// recomputed. It is content-addressed: the caller's key is a canonical spec
// string (workload, strategy, transfer, scale, seed, protocol, build
// version, ...) and the entry's filename is the key's SHA-256, so two sweeps
// that agree on a cell's spec share its result and any spec change misses
// cleanly instead of resurrecting stale data.
//
// Every entry uses the BPTR v2 write discipline: the payload is framed with
// a magic, a version, the full key (verified on read — a hash collision or a
// renamed file cannot alias entries), and a CRC32 footer over every
// preceding byte; writes land via create-temp + rename, so a crash at any
// instant leaves either the complete entry or none. A torn, truncated, or
// bit-flipped entry fails the frame or CRC check on read, is deleted
// (quarantined) and reported as a miss — the store self-heals; it never
// serves corrupt bytes.

const (
	ckptMagic   = "BPCK"
	ckptVersion = 1

	// maxCkptKeyLen and maxCkptPayloadLen bound what Get trusts from a file
	// before allocating: a corrupt length cannot drive an OOM.
	maxCkptKeyLen     = 1 << 16
	maxCkptPayloadLen = 1 << 30
)

// CheckpointStats counts a store's traffic.
type CheckpointStats struct {
	// Hits and Misses count Get outcomes; Corrupt is the subset of misses
	// caused by an entry that existed but failed validation (and was
	// deleted).
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Corrupt uint64 `json:"corrupt"`
	// Puts counts successful writes.
	Puts uint64 `json:"puts"`
}

// CheckpointStore is an on-disk content-addressed result store. It is safe
// for concurrent use by multiple goroutines; concurrent processes sharing a
// directory are safe too (writes are atomic renames; double-computing a cell
// wastes work but never corrupts).
type CheckpointStore struct {
	dir string

	mu    sync.Mutex
	stats CheckpointStats
}

// OpenCheckpointStore opens (creating if needed) a store rooted at dir and
// sweeps leftover temp files from a previous crash.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: opening checkpoint store: %w", err)
	}
	// A kill mid-write leaves an orphaned temp file; the rename never
	// happened, so deleting it loses nothing.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("runner: opening checkpoint store: %w", err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &CheckpointStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *CheckpointStore) Dir() string { return s.dir }

// Stats returns the traffic counters accumulated so far.
func (s *CheckpointStore) Stats() CheckpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *CheckpointStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:16])+".ckpt")
}

func (s *CheckpointStore) count(f func(*CheckpointStats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Put stores payload under key, atomically: concurrent readers see either
// the previous entry or the complete new one, never a torn file.
func (s *CheckpointStore) Put(key string, payload []byte) error {
	if len(key) > maxCkptKeyLen {
		return fmt.Errorf("runner: checkpoint key of %d bytes exceeds the %d-byte limit", len(key), maxCkptKeyLen)
	}
	if len(payload) > maxCkptPayloadLen {
		return fmt.Errorf("runner: checkpoint payload of %d bytes exceeds the %d-byte limit", len(payload), maxCkptPayloadLen)
	}
	data := encodeCheckpoint(key, payload)
	path := s.path(key)
	tmp, err := os.CreateTemp(s.dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("runner: writing checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("runner: writing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runner: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("runner: writing checkpoint: %w", err)
	}
	s.count(func(st *CheckpointStats) { st.Puts++ })
	return nil
}

// Get returns the payload stored under key. ok is false on a miss — the
// entry does not exist, or it exists but is corrupt (torn write, bit rot,
// wrong key), in which case the bad file is deleted so the recomputed result
// can land cleanly. Get never returns corrupt bytes.
func (s *CheckpointStore) Get(key string) (payload []byte, ok bool, err error) {
	path := s.path(key)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		s.count(func(st *CheckpointStats) { st.Misses++ })
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("runner: reading checkpoint: %w", err)
	}
	payload, derr := decodeCheckpoint(key, data)
	if derr != nil {
		// Quarantine: a corrupt entry must not shadow the slot forever.
		os.Remove(path)
		s.count(func(st *CheckpointStats) { st.Misses++; st.Corrupt++ })
		return nil, false, nil
	}
	s.count(func(st *CheckpointStats) { st.Hits++ })
	return payload, true, nil
}

// Len returns the number of entries currently on disk (valid or not).
func (s *CheckpointStore) Len() (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			n++
		}
	}
	return n, nil
}

// Verify scans every entry on disk and returns the filenames that fail
// validation (frame, CRC, or name/key hash mismatch). The chaos harness uses
// it to assert a soak never corrupted the store; it does not delete anything.
func (s *CheckpointStore) Verify() (corrupt []string, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			corrupt = append(corrupt, name)
			continue
		}
		key, _, derr := parseCheckpoint(data)
		if derr != nil || s.path(key) != filepath.Join(s.dir, name) {
			corrupt = append(corrupt, name)
		}
	}
	return corrupt, nil
}

// encodeCheckpoint frames key+payload:
//
//	magic "BPCK" | version u8 | key len uvarint | key | payload len uvarint |
//	payload | crc32 (IEEE) of everything above, little-endian u32
func encodeCheckpoint(key string, payload []byte) []byte {
	var lenBuf [binary.MaxVarintLen64]byte
	data := make([]byte, 0, len(ckptMagic)+1+2*binary.MaxVarintLen64+len(key)+len(payload)+4)
	data = append(data, ckptMagic...)
	data = append(data, ckptVersion)
	data = append(data, lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(key)))]...)
	data = append(data, key...)
	data = append(data, lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(payload)))]...)
	data = append(data, payload...)
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc32.ChecksumIEEE(data))
	return append(data, foot[:]...)
}

// parseCheckpoint validates the frame and CRC and returns the stored key and
// payload.
func parseCheckpoint(data []byte) (key string, payload []byte, err error) {
	if len(data) < len(ckptMagic)+1+4 {
		return "", nil, fmt.Errorf("truncated checkpoint (%d bytes)", len(data))
	}
	body, foot := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(foot); got != want {
		return "", nil, fmt.Errorf("checkpoint CRC mismatch: footer %08x, computed %08x", want, got)
	}
	if string(body[:len(ckptMagic)]) != ckptMagic {
		return "", nil, fmt.Errorf("bad checkpoint magic %q", body[:len(ckptMagic)])
	}
	rest := body[len(ckptMagic):]
	if rest[0] != ckptVersion {
		return "", nil, fmt.Errorf("unsupported checkpoint version %d", rest[0])
	}
	rest = rest[1:]
	keyLen, n := binary.Uvarint(rest)
	if n <= 0 || keyLen > maxCkptKeyLen || uint64(len(rest)-n) < keyLen {
		return "", nil, fmt.Errorf("bad checkpoint key length")
	}
	rest = rest[n:]
	key, rest = string(rest[:keyLen]), rest[keyLen:]
	payLen, n := binary.Uvarint(rest)
	if n <= 0 || payLen > maxCkptPayloadLen || uint64(len(rest)-n) != payLen {
		return "", nil, fmt.Errorf("bad checkpoint payload length")
	}
	return key, rest[n:], nil
}

// decodeCheckpoint parses data and additionally pins the stored key to the
// requested one.
func decodeCheckpoint(wantKey string, data []byte) ([]byte, error) {
	key, payload, err := parseCheckpoint(data)
	if err != nil {
		return nil, err
	}
	if key != wantKey {
		return nil, fmt.Errorf("checkpoint key mismatch: stored %q, want %q", key, wantKey)
	}
	return payload, nil
}
