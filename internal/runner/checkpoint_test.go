package runner

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	s, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "cell|mp3d/PREF/8|scale=0.1|seed=1"
	payload := []byte(`{"cycles":123456}`)
	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("Get before Put = ok=%v err=%v, want miss", ok, err)
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %q, want %q", got, payload)
	}
	if n, _ := s.Len(); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCheckpointOverwrite(t *testing.T) {
	s, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.Get("k")
	if !ok || string(got) != "new" {
		t.Errorf("Get = %q ok=%v, want new", got, ok)
	}
	if n, _ := s.Len(); n != 1 {
		t.Errorf("Len = %d after overwrite, want 1", n)
	}
}

// TestCheckpointSelfHealsCorruption: every corruption mode — truncation, a
// flipped payload bit, a flipped footer bit, garbage — must read as a miss,
// delete the bad file, and let a fresh Put land cleanly. The store never
// serves corrupt bytes.
func TestCheckpointSelfHealsCorruption(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"payload bit flip", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }},
		{"footer bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"empty", func([]byte) []byte { return nil }},
		{"garbage", func([]byte) []byte { return []byte("not a checkpoint at all") }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenCheckpointStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			const key = "victim"
			if err := s.Put(key, []byte("precious result")); err != nil {
				t.Fatal(err)
			}
			path := s.path(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok, err := s.Get(key); err != nil || ok {
				t.Fatalf("corrupt Get = ok=%v err=%v, want clean miss", ok, err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry not quarantined")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Errorf("Corrupt = %d, want 1", st.Corrupt)
			}
			// The slot is reusable.
			if err := s.Put(key, []byte("recomputed")); err != nil {
				t.Fatal(err)
			}
			if got, ok, _ := s.Get(key); !ok || string(got) != "recomputed" {
				t.Errorf("recomputed Get = %q ok=%v", got, ok)
			}
		})
	}
}

// TestCheckpointKeyPinning: a file renamed onto another key's slot (or a
// hypothetical hash collision) fails the stored-key check and reads as a miss.
func TestCheckpointKeyPinning(t *testing.T) {
	s, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("alpha", []byte("A")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.path("alpha"), s.path("beta")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("beta"); err != nil || ok {
		t.Fatalf("aliased Get = ok=%v err=%v, want miss", ok, err)
	}
}

func TestCheckpointVerify(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put(k, []byte("payload-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if corrupt, err := s.Verify(); err != nil || len(corrupt) != 0 {
		t.Fatalf("clean store Verify = %v, %v", corrupt, err)
	}
	// Tear one entry and alias another.
	data, err := os.ReadFile(s.path("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("a"), data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.path("b"), filepath.Join(dir, strings.Repeat("ee", 16)+".ckpt")); err != nil {
		t.Fatal(err)
	}
	corrupt, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 2 {
		t.Errorf("Verify found %d corrupt entries (%v), want 2", len(corrupt), corrupt)
	}
}

// TestCheckpointOpenSweepsTempFiles: a kill mid-write leaves a temp file; a
// reopened store must clear it without touching completed entries.
func TestCheckpointOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("done", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "deadbeef.ckpt.tmp123")
	if err := os.WriteFile(orphan, []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpointStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphaned temp file survived reopen")
	}
	if got, ok, _ := s.Get("done"); !ok || string(got) != "ok" {
		t.Errorf("completed entry lost in temp sweep: %q ok=%v", got, ok)
	}
}

func TestCheckpointRejectsOversizedInputs(t *testing.T) {
	s, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(strings.Repeat("k", maxCkptKeyLen+1), []byte("x")); err == nil {
		t.Error("oversized key accepted")
	}
}

func TestCheckpointConcurrentAccess(t *testing.T) {
	s, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			key := string(rune('a' + g%4))
			for i := 0; i < 20; i++ {
				if err := s.Put(key, []byte{byte(g), byte(i)}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, _, err := s.Get(key); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if corrupt, err := s.Verify(); err != nil || len(corrupt) != 0 {
		t.Errorf("concurrent traffic corrupted the store: %v, %v", corrupt, err)
	}
}
