// Package runner is the parallel experiment engine behind
// internal/experiments: a bounded worker pool that shards independent
// simulation cells across CPUs, a singleflight trace cache that stops the
// five prefetch strategies of one workload from regenerating the identical
// trace, and a benchmark report that records the wall-clock trajectory of a
// suite run.
//
// Determinism is the package's contract. The pool executes tasks in whatever
// order the scheduler picks, but every reduction — errors, timings — comes
// back indexed by the caller's input order, so a caller that submits cells
// in canonical order observes canonical results regardless of worker count.
// The trace cache guarantees each key is generated exactly once, by exactly
// one goroutine; everyone else blocks until the generation completes and
// then shares the immutable result.
package runner
