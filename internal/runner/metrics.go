package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"busprefetch/internal/obs"
)

// MetricsSchema versions the observability-metrics report format.
const MetricsSchema = "busprefetch-metrics/v1"

// CellMetrics is one suite cell's observability summary: the prefetch
// lifetime classes, latency histograms (fixed bucket edges, so the JSON is
// deterministic for a deterministic run) and bus/phase aggregates recorded
// for that cell.
type CellMetrics struct {
	// Cell labels the cell, "workload/strategy/transfer" (for example
	// "mp3d/PREF/8").
	Cell    string       `json:"cell"`
	Summary *obs.Summary `json:"summary"`
}

// CellFailure is one failed sweep cell in a metrics report: which cell, what
// happened, how hard the engine tried, and whether the error was terminal
// (deterministic — an invariant violation, a panic) or retryable-but-
// exhausted (a stall or timeout that survived every attempt).
type CellFailure struct {
	Cell string `json:"cell"`
	Err  string `json:"err"`
	// Attempts is how many times the cell ran before the error stuck.
	Attempts int `json:"attempts"`
	// Class is "terminal" or "retryable" (see runner.Classify).
	Class string `json:"class"`
}

// MetricsReport is the per-cell observability companion to BenchReport,
// written alongside BENCH_suite.json by mkfigures -metrics-out. Where the
// bench report answers "how long did each cell take to simulate", this one
// answers "what did the machine do during each cell" — lifetime-class
// shares, issue→grant/issue→fill/fill→use distributions, bus occupancy by
// op, and processor phase totals.
type MetricsReport struct {
	Schema string `json:"schema"`
	// Scale and Seed identify the suite configuration measured.
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`
	// Cells is sorted by label so reports diff cleanly.
	Cells []CellMetrics `json:"cells"`
	// Errors lists the sweep cells that failed (empty on a clean run),
	// sorted by label. A failed cell has no metrics entry; this is where its
	// story lives.
	Errors []CellFailure `json:"errors,omitempty"`
}

// SetErrors records the failed cells, sorted by label.
func (r *MetricsReport) SetErrors(failures []CellFailure) {
	r.Errors = append([]CellFailure(nil), failures...)
	sort.Slice(r.Errors, func(i, j int) bool { return r.Errors[i].Cell < r.Errors[j].Cell })
}

// NewMetricsReport assembles a report; cells are sorted by label.
func NewMetricsReport(scale float64, seed int64, cells []CellMetrics) *MetricsReport {
	r := &MetricsReport{Schema: MetricsSchema, Scale: scale, Seed: seed}
	r.Cells = append(r.Cells, cells...)
	sort.Slice(r.Cells, func(i, j int) bool { return r.Cells[i].Cell < r.Cells[j].Cell })
	return r
}

// WriteFile writes the report as indented JSON, atomically, mirroring
// BenchReport.WriteFile: the file lands complete or not at all.
func (r *MetricsReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encoding metrics report: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("runner: writing metrics report: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("runner: writing metrics report: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runner: writing metrics report: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("runner: writing metrics report: %w", err)
	}
	return nil
}

// ReadMetricsReport loads a report written by WriteFile and rejects unknown
// schemas.
func ReadMetricsReport(path string) (*MetricsReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r MetricsReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("runner: parsing metrics report %s: %w", path, err)
	}
	if r.Schema != MetricsSchema {
		return nil, fmt.Errorf("runner: metrics report %s has schema %q, want %q", path, r.Schema, MetricsSchema)
	}
	return &r, nil
}
