package runner

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"busprefetch/internal/obs"
)

func sampleSummary() *obs.Summary {
	r := obs.New(2, obs.Options{})
	r.PrefetchIssued(0, 0x1000, 10)
	r.PrefetchGranted(0, 0x1000, 105)
	r.PrefetchFilled(0, 0x1000, 113)
	r.PrefetchFirstUse(0, 0x1000, 150)
	r.PrefetchIssued(1, 0x2000, 20)
	r.BusOccupied(105, 8, "fill", "prefetch", 0)
	r.Wait(0, obs.PhaseMemWait, 10, 113)
	r.Finish(500)
	return r.Summary()
}

func TestMetricsReportRoundTrip(t *testing.T) {
	cells := []CellMetrics{
		{Cell: "mp3d/PREF/8", Summary: sampleSummary()},
		{Cell: "barnes/EXCL/8", Summary: sampleSummary()},
	}
	r := NewMetricsReport(1.0, 42, cells)
	if r.Cells[0].Cell != "barnes/EXCL/8" {
		t.Fatalf("cells not sorted: %v, %v", r.Cells[0].Cell, r.Cells[1].Cell)
	}

	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMetricsReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != MetricsSchema || back.Scale != 1.0 || back.Seed != 42 {
		t.Fatalf("round trip lost header: %+v", back)
	}
	if len(back.Cells) != 2 || back.Cells[1].Cell != "mp3d/PREF/8" {
		t.Fatalf("round trip lost cells: %+v", back.Cells)
	}
	s := back.Cells[1].Summary
	if s == nil || s.Lifetimes["useful"] != 1 || s.Lifetimes["unused"] != 1 {
		t.Fatalf("round trip lost summary: %+v", s)
	}
	if s.IssueToFill.Samples != 1 || s.BusOps["fill/prefetch"].Grants != 1 {
		t.Fatalf("round trip lost histograms: %+v", s)
	}
}

// TestMetricsReportDeterministic pins the fixed-bucket-edges rationale: two
// identical recordings serialize to identical bytes.
func TestMetricsReportDeterministic(t *testing.T) {
	dir := t.TempDir()
	var files [2][]byte
	for i := range files {
		r := NewMetricsReport(0.5, 7, []CellMetrics{{Cell: "mp3d/PREF/8", Summary: sampleSummary()}})
		path := filepath.Join(dir, "m.json")
		if err := r.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = data
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Fatal("identical recordings serialized differently")
	}
}

func TestMetricsReportRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"busprefetch-bench/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMetricsReport(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if err := os.WriteFile(path, []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMetricsReport(path); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := ReadMetricsReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
