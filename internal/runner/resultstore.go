package runner

import (
	"context"
	"errors"
	"sync"
)

// ResultStore is the content-addressed result cache behind the experiment
// server: completed results are memoized by canonical spec string so a spec
// resubmitted by any client — concurrently or days later — is served without
// recomputation. It generalizes the TraceCache's singleflight discipline from
// (TraceKey → trace) to (spec string → opaque payload bytes), and layers it
// over an optional CheckpointStore so results survive process restarts behind
// the same CRC-protected, torn-write-quarantining frame checkpoints use.
//
// Keys must embed every input that determines the payload, including the
// build revision (see buildinfo.Revision): the store never expires entries,
// so only a key discipline in which different computations never collide
// makes "serve the cached bytes forever" correct. Determinism makes that
// discipline sufficient — the repo's byte-identical-at-any-parallelism
// goldens are what license serving one tenant's cells to another.
type ResultStore struct {
	disk *CheckpointStore // nil = memory only

	mu      sync.Mutex
	entries map[string]*resultEntry
	stats   ResultStats
}

// ResultStats counts a store's traffic.
type ResultStats struct {
	// Hits counts Do calls served without running compute: from a completed
	// entry, by waiting on an in-flight computation of the same key, or from
	// the disk store. Misses counts the calls that ran compute.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// DiskHits is the subset of hits satisfied by the persistent store after
	// a process restart (the in-memory entry did not exist yet).
	DiskHits uint64 `json:"disk_hits"`
}

// resultEntry is one slot; ready is closed once payload/err are immutable.
type resultEntry struct {
	ready   chan struct{}
	payload []byte
	err     error
}

// NewResultStore returns an empty store. disk, when non-nil, persists every
// computed payload and is consulted on in-memory misses, so results survive
// restarts; a corrupt disk entry is quarantined by the CheckpointStore and
// the result recomputed (see CheckpointStore.Get).
func NewResultStore(disk *CheckpointStore) *ResultStore {
	return &ResultStore{disk: disk, entries: make(map[string]*resultEntry)}
}

// Stats returns the traffic counters accumulated so far.
func (s *ResultStore) Stats() ResultStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len returns the number of in-memory entries (completed or in flight).
func (s *ResultStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Do returns the payload for key, calling compute to produce it on first
// use. compute runs at most once per key across all concurrent callers: the
// first caller to miss computes while later callers block on the same entry,
// and every call observes the same (payload, error). hit reports whether
// this call was served without running compute. Callers must treat the
// returned payload as immutable.
//
// compute additionally reports whether its payload is cacheable. A
// non-cacheable success (e.g. a sweep report degraded by tolerated cell
// failures — valid for the caller, but a later run with a bigger budget
// could do better) is returned to every caller of this flight but neither
// memoized nor persisted: the entry is evicted so the next submission
// recomputes.
//
// Terminally-failed computations are memoized (a deterministic spec fails
// the same way every time; retry policy belongs inside compute). Failures
// Classify as Retryable — stalls, exhausted timeout budgets — are evicted,
// matching the "might succeed on resubmission" promise their APIError class
// makes to clients. Cancellations are likewise evicted so the next caller
// recomputes instead of inheriting a dead context's failure, and a waiter
// whose own ctx fires bails with ctx.Err() while the in-flight computation
// proceeds for everyone else. Mirrors TraceCache.Get.
func (s *ResultStore) Do(ctx context.Context, key string, compute func(ctx context.Context) (payload []byte, cacheable bool, err error)) (payload []byte, hit bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.stats.Hits++
		s.mu.Unlock()
		select {
		case <-e.ready:
			return e.payload, true, e.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &resultEntry{ready: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()

	if s.disk != nil {
		// A restart dropped the in-memory map but not the disk entries. Get
		// validates frame, CRC and key, quarantining anything corrupt, so
		// whatever comes back is exactly what a compute once produced.
		if data, ok, derr := s.disk.Get(key); derr == nil && ok {
			e.payload = data
			s.mu.Lock()
			s.stats.Hits++
			s.stats.DiskHits++
			s.mu.Unlock()
			close(e.ready)
			return e.payload, true, nil
		}
	}

	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
	var cacheable bool
	e.payload, cacheable, e.err = compute(ctx)
	evict := false
	switch {
	case e.err != nil:
		// Cancellation never describes the spec; retryable failures promise
		// the client that resubmission might succeed, so honoring that
		// promise requires actually recomputing.
		evict = errors.Is(e.err, context.Canceled) ||
			errors.Is(e.err, context.DeadlineExceeded) ||
			Classify(e.err) == Retryable
	case !cacheable:
		evict = true
	}
	if evict {
		s.mu.Lock()
		if s.entries[key] == e {
			delete(s.entries, key)
		}
		s.mu.Unlock()
	}
	if e.err == nil && cacheable && s.disk != nil {
		// Best-effort, like cell checkpoints: a full or read-only volume
		// must not fail the computation that just succeeded.
		_ = s.disk.Put(key, e.payload)
	}
	close(e.ready)
	return e.payload, false, e.err
}
