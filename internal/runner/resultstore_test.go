package runner

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestResultStoreSingleflight pins the server cache's core economics: N
// concurrent submissions of one spec run the computation once — misses==1,
// hits==N-1, every caller observing the identical bytes — exactly the stats
// law the TraceCache pins for trace generation.
func TestResultStoreSingleflight(t *testing.T) {
	s := NewResultStore(nil)
	const n = 32
	var computes atomic.Int64
	var wg sync.WaitGroup
	results := make([][]byte, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload, hit, err := s.Do(context.Background(), "spec|build=r1", func(context.Context) ([]byte, bool, error) {
				computes.Add(1)
				return []byte("report"), true, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], hits[i] = payload, hit
		}(i)
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	nhits := 0
	for i := range results {
		if !bytes.Equal(results[i], []byte("report")) {
			t.Errorf("caller %d got %q", i, results[i])
		}
		if hits[i] {
			nhits++
		}
	}
	if nhits != n-1 {
		t.Errorf("%d callers reported a hit, want %d", nhits, n-1)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != n-1 {
		t.Errorf("stats = %+v, want misses==1, hits==%d", st, n-1)
	}
}

// TestResultStoreRevisionChangeInvalidates pins the cache-invalidation
// discipline: the key embeds the build revision, so a result computed by one
// build can never be served to another — the new revision's key misses
// cleanly and recomputes.
func TestResultStoreRevisionChangeInvalidates(t *testing.T) {
	disk, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewResultStore(disk)
	key := func(rev string) string { return fmt.Sprintf("busprefetch-sweep/v1|build=%s|scale=1|seed=1", rev) }
	compute := func(out string) func(context.Context) ([]byte, bool, error) {
		return func(context.Context) ([]byte, bool, error) { return []byte(out), true, nil }
	}
	if _, hit, _ := s.Do(context.Background(), key("aaaa0000"), compute("old")); hit {
		t.Fatal("first compute reported a hit")
	}
	if payload, hit, _ := s.Do(context.Background(), key("aaaa0000"), compute("WRONG")); !hit || string(payload) != "old" {
		t.Fatalf("same revision: hit=%v payload=%q, want cached %q", hit, payload, "old")
	}
	payload, hit, _ := s.Do(context.Background(), key("bbbb1111"), compute("new"))
	if hit {
		t.Error("revision change was served from cache; stale results resurrected across builds")
	}
	if string(payload) != "new" {
		t.Errorf("new revision got %q, want %q", payload, "new")
	}
	if st := s.Stats(); st.Misses != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 2 misses (one per revision), 1 hit", st)
	}
}

// TestResultStoreDiskRoundTrip proves results survive a restart: a second
// store over the same directory (fresh memory) serves the payload from disk
// without recomputation, and counts it as a disk hit.
func TestResultStoreDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	disk, err := OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewResultStore(disk)
	if _, _, err := s1.Do(context.Background(), "spec|build=r1", func(context.Context) ([]byte, bool, error) {
		return []byte("persisted"), true, nil
	}); err != nil {
		t.Fatal(err)
	}

	disk2, err := OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewResultStore(disk2)
	payload, hit, err := s2.Do(context.Background(), "spec|build=r1", func(context.Context) ([]byte, bool, error) {
		t.Error("compute ran despite a valid disk entry")
		return nil, true, nil
	})
	if err != nil || !hit || string(payload) != "persisted" {
		t.Fatalf("restarted store: payload=%q hit=%v err=%v, want persisted hit", payload, hit, err)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Hits != 1 || st.Misses != 0 {
		t.Errorf("stats = %+v, want exactly one disk hit", st)
	}
}

// TestResultStoreCorruptEntryQuarantined pins the self-healing path: a
// bit-flipped persisted result fails the CheckpointStore's CRC on Get, is
// quarantined (deleted), and the result is recomputed and re-persisted —
// the store never serves corrupt bytes.
func TestResultStoreCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	disk, err := OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewResultStore(disk)
	if _, _, err := s1.Do(context.Background(), "spec|build=r1", func(context.Context) ([]byte, bool, error) {
		return []byte("good bytes"), true, nil
	}); err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit in the single .ckpt entry on disk.
	entries, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one persisted entry, got %v (%v)", entries, err)
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(entries[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	disk2, err := OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewResultStore(disk2)
	recomputed := false
	payload, hit, err := s2.Do(context.Background(), "spec|build=r1", func(context.Context) ([]byte, bool, error) {
		recomputed = true
		return []byte("good bytes"), true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit || !recomputed {
		t.Errorf("corrupt entry served as a hit (hit=%v recomputed=%v)", hit, recomputed)
	}
	if string(payload) != "good bytes" {
		t.Errorf("payload = %q after quarantine", payload)
	}
	if st := disk2.Stats(); st.Corrupt != 1 {
		t.Errorf("checkpoint stats = %+v, want Corrupt==1", st)
	}
	// The recomputed result must have landed cleanly where the corrupt one was.
	if data, ok, _ := disk2.Get("spec|build=r1"); !ok || string(data) != "good bytes" {
		t.Errorf("re-persisted entry = %q ok=%v, want clean replacement", data, ok)
	}
}

// TestResultStoreCancellationNotMemoized mirrors the TraceCache rule: a
// compute that dies with its caller's cancellation is evicted, so the next
// caller recomputes instead of inheriting a dead context's failure forever.
func TestResultStoreCancellationNotMemoized(t *testing.T) {
	s := NewResultStore(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Do(ctx, "k", func(ctx context.Context) ([]byte, bool, error) {
		return nil, false, ctx.Err()
	}); err == nil {
		t.Fatal("cancelled compute returned nil error")
	}
	payload, hit, err := s.Do(context.Background(), "k", func(context.Context) ([]byte, bool, error) {
		return []byte("ok"), true, nil
	})
	if err != nil || hit || string(payload) != "ok" {
		t.Errorf("after cancellation: payload=%q hit=%v err=%v, want fresh compute", payload, hit, err)
	}
}

// TestResultStoreFailureMemoized: a terminally-classified failure is
// memoized like TraceCache generation failures — the broken spec fails once
// and every resubmission gets the same error without recomputation.
func TestResultStoreFailureMemoized(t *testing.T) {
	s := NewResultStore(nil)
	var computes int
	fail := func(context.Context) ([]byte, bool, error) {
		computes++
		return nil, false, fmt.Errorf("broken spec")
	}
	if _, _, err := s.Do(context.Background(), "k", fail); err == nil {
		t.Fatal("want error")
	}
	_, hit, err := s.Do(context.Background(), "k", fail)
	if err == nil || !hit || computes != 1 {
		t.Errorf("resubmitted broken spec: hit=%v err=%v computes=%d, want memoized failure", hit, err, computes)
	}
}

// TestResultStoreRetryableFailureEvicted: a failure that classifies as
// retryable (an exhausted timeout budget, a transient fault) promises the
// client that resubmission might succeed — so it must not be memoized, or
// the resubmission would replay the cached error without recomputing until
// the process restarts.
func TestResultStoreRetryableFailureEvicted(t *testing.T) {
	s := NewResultStore(nil)
	var computes int
	if _, _, err := s.Do(context.Background(), "k", func(context.Context) ([]byte, bool, error) {
		computes++
		return nil, false, &TransientError{Err: fmt.Errorf("injected fault")}
	}); err == nil {
		t.Fatal("want error")
	}
	payload, hit, err := s.Do(context.Background(), "k", func(context.Context) ([]byte, bool, error) {
		computes++
		return []byte("recovered"), true, nil
	})
	if err != nil || hit || string(payload) != "recovered" || computes != 2 {
		t.Errorf("after retryable failure: payload=%q hit=%v err=%v computes=%d, want fresh recompute",
			payload, hit, err, computes)
	}
}

// TestResultStoreUncacheableNotMemoizedOrPersisted: a compute that flags its
// payload non-cacheable (a sweep degraded by tolerated cell failures) serves
// that payload to its caller, but neither the memory tier nor the disk tier
// keeps it — the next submission recomputes, and a restart finds nothing.
func TestResultStoreUncacheableNotMemoizedOrPersisted(t *testing.T) {
	dir := t.TempDir()
	disk, err := OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewResultStore(disk)
	payload, hit, err := s.Do(context.Background(), "k", func(context.Context) ([]byte, bool, error) {
		return []byte("degraded"), false, nil
	})
	if err != nil || hit || string(payload) != "degraded" {
		t.Fatalf("uncacheable compute: payload=%q hit=%v err=%v, want the payload served once", payload, hit, err)
	}
	if _, ok, _ := disk.Get("k"); ok {
		t.Error("uncacheable payload was persisted to disk")
	}
	payload, hit, err = s.Do(context.Background(), "k", func(context.Context) ([]byte, bool, error) {
		return []byte("complete"), true, nil
	})
	if err != nil || hit || string(payload) != "complete" {
		t.Errorf("resubmission: payload=%q hit=%v err=%v, want a fresh compute", payload, hit, err)
	}
	if st := s.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 2 misses, 0 hits", st)
	}
	if data, ok, _ := disk.Get("k"); !ok || string(data) != "complete" {
		t.Errorf("disk entry = %q ok=%v, want the cacheable result persisted", data, ok)
	}
}
