package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"busprefetch/internal/check"
)

// ErrClass is the sweep engine's error taxonomy: whether re-running a failed
// cell can plausibly succeed.
type ErrClass int

const (
	// Retryable errors are transient conditions — an injected fault, a
	// watchdog stall, a per-cell deadline — where a fresh attempt on the
	// same inputs may complete. The engine retries them with backoff.
	Retryable ErrClass = iota
	// Terminal errors are deterministic facts about the configuration — an
	// invariant violation, a panic, an invalid spec, a cancelled sweep —
	// that no number of retries will change. The engine fails the cell
	// immediately and records the classification.
	Terminal
)

func (c ErrClass) String() string {
	if c == Terminal {
		return "terminal"
	}
	return "retryable"
}

// TransientError marks an error as retryable regardless of its underlying
// type. Fault injectors and flaky external resources (a checkpoint volume, a
// remote trace source) wrap their failures in it to route them into the
// retry path.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }
func (e *TransientError) Unwrap() error { return e.Err }

// Classify sorts an error into the retryable/terminal taxonomy:
//
//   - *TransientError: retryable by declaration.
//   - *check.StallError: retryable. A watchdog trip is a symptom — under
//     fault injection a re-run without the fault completes, and a genuine
//     deterministic deadlock simply exhausts its retries and surfaces with
//     the full stall diagnosis attached.
//   - context.DeadlineExceeded: retryable. A per-cell timeout may be
//     contention on an oversubscribed worker pool, not a wedged cell.
//   - context.Canceled: terminal. The sweep itself was cancelled; retrying
//     would fight the operator.
//   - *check.Violation, *PanicError, and everything else: terminal. A
//     coherence-invariant violation or a panic is a deterministic bug, and
//     unknown errors default to terminal so a typo'd configuration fails
//     fast instead of retrying N times.
func Classify(err error) ErrClass {
	if err == nil {
		return Retryable
	}
	var transient *TransientError
	if errors.As(err, &transient) {
		return Retryable
	}
	if errors.Is(err, context.Canceled) {
		return Terminal
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return Retryable
	}
	var stall *check.StallError
	if errors.As(err, &stall) {
		return Retryable
	}
	return Terminal
}

// ExhaustedError reports that every attempt of a retryable operation failed;
// Err is the last attempt's error.
type ExhaustedError struct {
	Attempts int
	Err      error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("runner: gave up after %d attempts: %v", e.Attempts, e.Err)
}

func (e *ExhaustedError) Unwrap() error { return e.Err }

// Policy configures Retry.
type Policy struct {
	// MaxAttempts is the total number of attempts (first try included);
	// values <= 1 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it, capped at MaxDelay. Zero selects 10ms (and 1s).
	BaseDelay, MaxDelay time.Duration
	// Seed seeds the jitter: every delay is scaled by a uniform factor in
	// [0.5, 1.5) so a sweep's failed cells do not retry in lockstep. A fixed
	// seed makes retry schedules reproducible in tests.
	Seed int64
	// Classify overrides the error taxonomy; nil selects Classify.
	Classify func(error) ErrClass
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Classify == nil {
		p.Classify = Classify
	}
	return p
}

// Retry runs fn up to p.MaxAttempts times, backing off exponentially with
// jitter between attempts, until it succeeds, fails terminally (per the
// policy's classification), or the context is cancelled. Terminal errors and
// single-attempt failures return as-is; a retryable error that survives every
// attempt returns wrapped in *ExhaustedError carrying the attempt count.
// attempts reports how many times fn ran.
func Retry(ctx context.Context, p Policy, fn func(ctx context.Context) error) (err error, attempts int) {
	p = p.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	var rng *rand.Rand
	delay := p.BaseDelay
	for attempts < p.MaxAttempts {
		attempts++
		err = fn(ctx)
		if err == nil {
			return nil, attempts
		}
		if p.Classify(err) == Terminal || attempts >= p.MaxAttempts {
			break
		}
		if ctx.Err() != nil {
			// The sweep was cancelled while the attempt ran; surface the
			// cancellation rather than sleeping into a doomed retry.
			return ctx.Err(), attempts
		}
		if rng == nil {
			rng = rand.New(rand.NewSource(p.Seed))
		}
		jittered := time.Duration(float64(delay) * (0.5 + rng.Float64()))
		t := time.NewTimer(jittered)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err(), attempts
		}
		if delay *= 2; delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
	if attempts > 1 {
		return &ExhaustedError{Attempts: attempts, Err: err}, attempts
	}
	return err, attempts
}
