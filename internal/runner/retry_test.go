package runner

import (
	"context"
	"errors"
	"testing"
	"time"

	"busprefetch/internal/check"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrClass
	}{
		{"nil", nil, Retryable},
		{"transient", &TransientError{Err: errors.New("disk hiccup")}, Retryable},
		{"wrapped transient", wrap(&TransientError{Err: errors.New("x")}), Retryable},
		{"stall", &check.StallError{Cycle: 10, Reason: "empty queue"}, Retryable},
		{"wrapped stall", wrap(&check.StallError{Cycle: 10, Reason: "q"}), Retryable},
		{"deadline", context.DeadlineExceeded, Retryable},
		{"cancelled", context.Canceled, Terminal},
		{"violation", &check.Violation{Rule: "SWMR"}, Terminal},
		{"panic", &PanicError{Label: "x", Value: "boom"}, Terminal},
		{"unknown", errors.New("mystery"), Terminal},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func wrap(err error) error { return &wrapped{err} }

type wrapped struct{ err error }

func (w *wrapped) Error() string { return "wrapped: " + w.err.Error() }
func (w *wrapped) Unwrap() error { return w.err }

func TestErrClassString(t *testing.T) {
	if Retryable.String() != "retryable" || Terminal.String() != "terminal" {
		t.Errorf("String() = %q/%q", Retryable, Terminal)
	}
}

// TestRetrySucceedsAfterTransientFailures: a fault that clears after two
// attempts converges, and the attempt count is faithful.
func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err, attempts := Retry(context.Background(), Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}, func(context.Context) error {
		if calls++; calls < 3 {
			return &TransientError{Err: errors.New("injected")}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if attempts != 3 || calls != 3 {
		t.Errorf("attempts = %d, calls = %d, want 3", attempts, calls)
	}
}

// TestRetryTerminalStopsImmediately: terminal errors must not burn retries.
func TestRetryTerminalStopsImmediately(t *testing.T) {
	boom := errors.New("deterministic bug")
	calls := 0
	err, attempts := Retry(context.Background(), Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}, func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Retry: %v", err)
	}
	if attempts != 1 || calls != 1 {
		t.Errorf("terminal error retried: attempts = %d, calls = %d", attempts, calls)
	}
	var ex *ExhaustedError
	if errors.As(err, &ex) {
		t.Error("single terminal failure wrapped in ExhaustedError")
	}
}

// TestRetryExhaustion: a persistently retryable error surfaces as
// *ExhaustedError wrapping the last failure, still unwrappable to the cause.
func TestRetryExhaustion(t *testing.T) {
	cause := &check.StallError{Cycle: 7, Reason: "stuck"}
	err, attempts := Retry(context.Background(), Policy{MaxAttempts: 3, BaseDelay: time.Microsecond}, func(context.Context) error {
		return cause
	})
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("Retry = %v, want *ExhaustedError", err)
	}
	if ex.Attempts != 3 {
		t.Errorf("ExhaustedError.Attempts = %d, want 3", ex.Attempts)
	}
	var stall *check.StallError
	if !errors.As(err, &stall) || stall.Cycle != 7 {
		t.Errorf("cause lost through ExhaustedError: %v", err)
	}
}

// TestRetryHonorsCancellation: cancelling between attempts must end the loop
// with ctx.Err() instead of sleeping into a doomed retry.
func TestRetryHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err, attempts := Retry(ctx, Policy{MaxAttempts: 10, BaseDelay: time.Hour}, func(context.Context) error {
		calls++
		cancel()
		return &TransientError{Err: errors.New("injected")}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Retry = %v, want context.Canceled", err)
	}
	if calls != 1 || attempts != 1 {
		t.Errorf("ran %d attempts after cancellation", calls)
	}
}

// TestRetryBackoffIsDeterministic: a fixed seed produces a reproducible
// jitter schedule — two runs with the same policy sleep identically.
func TestRetryBackoffIsDeterministic(t *testing.T) {
	schedule := func() []time.Duration {
		var gaps []time.Duration
		last := time.Now()
		Retry(context.Background(), Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, Seed: 42}, func(context.Context) error {
			now := time.Now()
			gaps = append(gaps, now.Sub(last))
			last = now
			return &TransientError{Err: errors.New("always")}
		})
		return gaps
	}
	a, b := schedule(), schedule()
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("schedules ran %d/%d attempts, want 4", len(a), len(b))
	}
	// Jittered delays double from BaseDelay with factor in [0.5, 1.5); assert
	// each gap is within the admissible window rather than comparing noisy
	// wall-clock samples directly.
	for i, gap := range a[1:] {
		base := time.Millisecond << i
		if gap < base/2 {
			t.Errorf("gap %d = %v, below the minimum jittered delay %v", i, gap, base/2)
		}
	}
}

func TestRetryZeroPolicyRunsOnce(t *testing.T) {
	calls := 0
	err, attempts := Retry(context.Background(), Policy{}, func(context.Context) error {
		calls++
		return &TransientError{Err: errors.New("x")}
	})
	if calls != 1 || attempts != 1 {
		t.Errorf("zero policy ran %d times, want 1", calls)
	}
	if err == nil {
		t.Error("error swallowed")
	}
}
