package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Task is one named unit of independent work.
type Task struct {
	// Label identifies the task in timings and progress output.
	Label string
	// Run executes the task. It must be safe to call concurrently with
	// other tasks' Run functions. The context is the one passed to Pool.Do;
	// long-running tasks should honor its cancellation.
	Run func(ctx context.Context) error
}

// Timing records one executed task's wall-clock cost and outcome.
type Timing struct {
	Label    string
	Duration time.Duration
	// Err is the task's final error text ("" on success), so progress and
	// benchmark consumers can label exactly which cells failed without
	// re-correlating against the error slice. A task skipped because the
	// sweep was cancelled before it started carries the cancellation error
	// and a zero Duration.
	Err string
}

// PanicError is a task panic captured by Pool.Do's per-task isolation: one
// panicking cell fails alone instead of crashing the whole sweep (and, under
// a long-lived server, the whole process). It is terminal by classification —
// a panic is a bug, not a transient condition worth retrying.
type PanicError struct {
	// Label is the panicking task's label.
	Label string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: task %q panicked: %v", e.Label, e.Value)
}

// Pool executes tasks on a bounded number of concurrent workers.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given worker bound; values <= 0 select
// runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Do executes every task, at most Workers at a time, and returns the
// per-task errors and timings in input order — the reduction is canonical no
// matter how execution interleaved. A failing task never stops the others,
// and a panicking task is isolated: its panic is recovered into a
// *PanicError in its error slot rather than crashing the process.
//
// Cancelling ctx stops the sweep at task boundaries: running tasks see the
// cancellation through their own ctx and wind down; tasks that have not
// started are skipped, their error slot set to ctx.Err(). Do always waits
// for running tasks to return, so when it returns the pool is fully drained.
//
// onDone, when non-nil, is called after each task completes — run, failed,
// panicked, or skipped — with the number finished so far; calls are
// serialized but not ordered by task index, and done always reaches
// len(tasks) exactly once per task, even when tasks error early.
func (p *Pool) Do(ctx context.Context, tasks []Task, onDone func(done, total int)) ([]error, []Timing) {
	if ctx == nil {
		ctx = context.Background()
	}
	errs := make([]error, len(tasks))
	times := make([]Timing, len(tasks))
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes onDone
		done int
	)
	finish := func(i int) {
		times[i].Label = tasks[i].Label
		if errs[i] != nil {
			times[i].Err = errs[i].Error()
		}
		if onDone != nil {
			mu.Lock()
			done++
			onDone(done, len(tasks))
			mu.Unlock()
		}
	}
	sem := make(chan struct{}, p.workers)
	for i := range tasks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				// The sweep was cancelled while this task queued for a
				// worker: skip it without running, but still count it so
				// progress totals stay correct.
				errs[i] = ctx.Err()
				finish(i)
				return
			}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				finish(i)
				return
			}
			start := time.Now()
			errs[i] = runIsolated(ctx, tasks[i])
			times[i].Duration = time.Since(start)
			finish(i)
		}(i)
	}
	wg.Wait()
	return errs, times
}

// runIsolated runs one task with panic isolation.
func runIsolated(ctx context.Context, t Task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Label: t.Label, Value: r, Stack: debug.Stack()}
		}
	}()
	return t.Run(ctx)
}
