package runner

import (
	"runtime"
	"sync"
	"time"
)

// Task is one named unit of independent work.
type Task struct {
	// Label identifies the task in timings and progress output.
	Label string
	// Run executes the task. It must be safe to call concurrently with
	// other tasks' Run functions.
	Run func() error
}

// Timing records one executed task's wall-clock cost.
type Timing struct {
	Label    string
	Duration time.Duration
}

// Pool executes tasks on a bounded number of concurrent workers.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given worker bound; values <= 0 select
// runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Do executes every task, at most Workers at a time, and returns the
// per-task errors and timings in input order — the reduction is canonical no
// matter how execution interleaved. A failing task never stops the others.
// onDone, when non-nil, is called after each task completes with the number
// finished so far; calls are serialized but not ordered by task index.
func (p *Pool) Do(tasks []Task, onDone func(done, total int)) ([]error, []Timing) {
	errs := make([]error, len(tasks))
	times := make([]Timing, len(tasks))
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes onDone
		done int
	)
	sem := make(chan struct{}, p.workers)
	for i := range tasks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			errs[i] = tasks[i].Run()
			times[i] = Timing{Label: tasks[i].Label, Duration: time.Since(start)}
			if onDone != nil {
				mu.Lock()
				done++
				onDone(done, len(tasks))
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return errs, times
}
