package runner

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolDefaultsWorkers(t *testing.T) {
	if w := NewPool(0).Workers(); w < 1 {
		t.Fatalf("Workers() = %d, want >= 1", w)
	}
	if w := NewPool(-3).Workers(); w < 1 {
		t.Fatalf("Workers() = %d, want >= 1", w)
	}
	if w := NewPool(7).Workers(); w != 7 {
		t.Fatalf("Workers() = %d, want 7", w)
	}
}

// TestPoolCanonicalReduction is the determinism contract: whatever order the
// tasks ran in, errors and timings come back in input order.
func TestPoolCanonicalReduction(t *testing.T) {
	p := NewPool(8)
	const n = 64
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			Label: fmt.Sprintf("task-%02d", i),
			Run: func() error {
				if i%3 == 0 {
					return fmt.Errorf("fail-%d", i)
				}
				return nil
			},
		}
	}
	errs, times := p.Do(tasks, nil)
	if len(errs) != n || len(times) != n {
		t.Fatalf("got %d errs, %d timings, want %d each", len(errs), len(times), n)
	}
	for i := range tasks {
		if times[i].Label != tasks[i].Label {
			t.Errorf("timing %d has label %q, want %q", i, times[i].Label, tasks[i].Label)
		}
		if i%3 == 0 {
			if errs[i] == nil || errs[i].Error() != fmt.Sprintf("fail-%d", i) {
				t.Errorf("errs[%d] = %v, want fail-%d", i, errs[i], i)
			}
		} else if errs[i] != nil {
			t.Errorf("errs[%d] = %v, want nil", i, errs[i])
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const bound = 3
	p := NewPool(bound)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	tasks := make([]Task, 24)
	for i := range tasks {
		tasks[i] = Task{Label: "t", Run: func() error {
			n := cur.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			defer cur.Add(-1)
			return nil
		}}
	}
	p.Do(tasks, nil)
	if got := peak.Load(); got > bound {
		t.Errorf("peak concurrency %d exceeded bound %d", got, bound)
	}
}

func TestPoolProgressSerialized(t *testing.T) {
	p := NewPool(8)
	tasks := make([]Task, 20)
	for i := range tasks {
		tasks[i] = Task{Label: "t", Run: func() error { return nil }}
	}
	var seen []int
	p.Do(tasks, func(done, total int) {
		if total != len(tasks) {
			t.Errorf("total = %d, want %d", total, len(tasks))
		}
		seen = append(seen, done)
	})
	if len(seen) != len(tasks) {
		t.Fatalf("progress called %d times, want %d", len(seen), len(tasks))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress sequence %v not monotonically 1..n", seen)
		}
	}
}

func TestPoolEmptyTasks(t *testing.T) {
	errs, times := NewPool(4).Do(nil, nil)
	if len(errs) != 0 || len(times) != 0 {
		t.Fatalf("empty Do returned %d errs, %d timings", len(errs), len(times))
	}
}

func TestPoolFailureIsolation(t *testing.T) {
	p := NewPool(2)
	boom := errors.New("boom")
	var ran atomic.Int64
	tasks := []Task{
		{Label: "a", Run: func() error { ran.Add(1); return boom }},
		{Label: "b", Run: func() error { ran.Add(1); return nil }},
		{Label: "c", Run: func() error { ran.Add(1); return nil }},
	}
	errs, _ := p.Do(tasks, nil)
	if ran.Load() != 3 {
		t.Errorf("only %d tasks ran; a failure must not stop the others", ran.Load())
	}
	if !errors.Is(errs[0], boom) || errs[1] != nil || errs[2] != nil {
		t.Errorf("errs = %v", errs)
	}
}
