package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolDefaultsWorkers(t *testing.T) {
	if w := NewPool(0).Workers(); w < 1 {
		t.Fatalf("Workers() = %d, want >= 1", w)
	}
	if w := NewPool(-3).Workers(); w < 1 {
		t.Fatalf("Workers() = %d, want >= 1", w)
	}
	if w := NewPool(7).Workers(); w != 7 {
		t.Fatalf("Workers() = %d, want 7", w)
	}
}

// TestPoolCanonicalReduction is the determinism contract: whatever order the
// tasks ran in, errors and timings come back in input order.
func TestPoolCanonicalReduction(t *testing.T) {
	p := NewPool(8)
	const n = 64
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			Label: fmt.Sprintf("task-%02d", i),
			Run: func(context.Context) error {
				if i%3 == 0 {
					return fmt.Errorf("fail-%d", i)
				}
				return nil
			},
		}
	}
	errs, times := p.Do(context.Background(), tasks, nil)
	if len(errs) != n || len(times) != n {
		t.Fatalf("got %d errs, %d timings, want %d each", len(errs), len(times), n)
	}
	for i := range tasks {
		if times[i].Label != tasks[i].Label {
			t.Errorf("timing %d has label %q, want %q", i, times[i].Label, tasks[i].Label)
		}
		if i%3 == 0 {
			if errs[i] == nil || errs[i].Error() != fmt.Sprintf("fail-%d", i) {
				t.Errorf("errs[%d] = %v, want fail-%d", i, errs[i], i)
			}
			if times[i].Err != fmt.Sprintf("fail-%d", i) {
				t.Errorf("times[%d].Err = %q, want fail-%d", i, times[i].Err, i)
			}
		} else {
			if errs[i] != nil {
				t.Errorf("errs[%d] = %v, want nil", i, errs[i])
			}
			if times[i].Err != "" {
				t.Errorf("times[%d].Err = %q, want empty", i, times[i].Err)
			}
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const bound = 3
	p := NewPool(bound)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	tasks := make([]Task, 24)
	for i := range tasks {
		tasks[i] = Task{Label: "t", Run: func(context.Context) error {
			n := cur.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			defer cur.Add(-1)
			return nil
		}}
	}
	p.Do(context.Background(), tasks, nil)
	if got := peak.Load(); got > bound {
		t.Errorf("peak concurrency %d exceeded bound %d", got, bound)
	}
}

func TestPoolProgressSerialized(t *testing.T) {
	p := NewPool(8)
	tasks := make([]Task, 20)
	for i := range tasks {
		tasks[i] = Task{Label: "t", Run: func(context.Context) error { return nil }}
	}
	var seen []int
	p.Do(context.Background(), tasks, func(done, total int) {
		if total != len(tasks) {
			t.Errorf("total = %d, want %d", total, len(tasks))
		}
		seen = append(seen, done)
	})
	if len(seen) != len(tasks) {
		t.Fatalf("progress called %d times, want %d", len(seen), len(tasks))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress sequence %v not monotonically 1..n", seen)
		}
	}
}

func TestPoolEmptyTasks(t *testing.T) {
	errs, times := NewPool(4).Do(context.Background(), nil, nil)
	if len(errs) != 0 || len(times) != 0 {
		t.Fatalf("empty Do returned %d errs, %d timings", len(errs), len(times))
	}
}

func TestPoolFailureIsolation(t *testing.T) {
	p := NewPool(2)
	boom := errors.New("boom")
	var ran atomic.Int64
	tasks := []Task{
		{Label: "a", Run: func(context.Context) error { ran.Add(1); return boom }},
		{Label: "b", Run: func(context.Context) error { ran.Add(1); return nil }},
		{Label: "c", Run: func(context.Context) error { ran.Add(1); return nil }},
	}
	errs, _ := p.Do(context.Background(), tasks, nil)
	if ran.Load() != 3 {
		t.Errorf("only %d tasks ran; a failure must not stop the others", ran.Load())
	}
	if !errors.Is(errs[0], boom) || errs[1] != nil || errs[2] != nil {
		t.Errorf("errs = %v", errs)
	}
}

// TestPoolPanicIsolation: a panicking task must fail alone, surfacing as a
// *PanicError in its slot, while every other task still runs to completion.
func TestPoolPanicIsolation(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int64
	tasks := []Task{
		{Label: "bomb", Run: func(context.Context) error { panic("kaboom") }},
		{Label: "b", Run: func(context.Context) error { ran.Add(1); return nil }},
		{Label: "c", Run: func(context.Context) error { ran.Add(1); return nil }},
	}
	errs, times := p.Do(context.Background(), tasks, nil)
	if ran.Load() != 2 {
		t.Errorf("only %d healthy tasks ran after a sibling panicked", ran.Load())
	}
	var pe *PanicError
	if !errors.As(errs[0], &pe) {
		t.Fatalf("errs[0] = %v, want *PanicError", errs[0])
	}
	if pe.Label != "bomb" || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {Label:%q Value:%v stack:%d bytes}", pe.Label, pe.Value, len(pe.Stack))
	}
	if times[0].Err == "" {
		t.Error("panicking task's Timing.Err is empty")
	}
	if errs[1] != nil || errs[2] != nil {
		t.Errorf("healthy tasks failed: %v", errs)
	}
}

// TestPoolCancellation: cancelling mid-sweep skips unstarted tasks with
// ctx.Err() while still reporting a complete reduction — len(tasks) errors,
// len(tasks) timings, and onDone reaching the full total (the progress
// totals must stay correct even when tasks error early).
func TestPoolCancellation(t *testing.T) {
	p := NewPool(1)
	ctx, cancel := context.WithCancel(context.Background())
	const n = 8
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Label: fmt.Sprintf("t%d", i), Run: func(c context.Context) error {
			once.Do(func() { close(started) })
			<-release
			return c.Err()
		}}
	}
	go func() {
		<-started
		cancel()
		close(release)
	}()
	var last, calls int
	errs, times := p.Do(ctx, tasks, func(done, total int) {
		last, calls = done, calls+1
		if total != n {
			t.Errorf("total = %d, want %d", total, n)
		}
	})
	if len(errs) != n || len(times) != n {
		t.Fatalf("got %d errs, %d timings, want %d", len(errs), len(times), n)
	}
	if last != n || calls != n {
		t.Errorf("onDone reached %d after %d calls, want %d/%d: cancelled tasks must still be counted", last, calls, n, n)
	}
	skipped := 0
	for i, err := range errs {
		if errors.Is(err, context.Canceled) {
			skipped++
			if times[i].Err == "" {
				t.Errorf("cancelled task %d has empty Timing.Err", i)
			}
		}
	}
	if skipped == 0 {
		t.Error("no task observed the cancellation")
	}
}

// TestPoolNilContext: a nil ctx must behave as context.Background, not panic.
func TestPoolNilContext(t *testing.T) {
	var nilCtx context.Context
	errs, _ := NewPool(2).Do(nilCtx, []Task{
		{Label: "a", Run: func(context.Context) error { return nil }},
	}, nil)
	if errs[0] != nil {
		t.Fatalf("errs = %v", errs)
	}
}
