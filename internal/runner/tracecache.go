package runner

import (
	"context"
	"errors"
	"sync"

	"busprefetch/internal/memory"
	"busprefetch/internal/trace"
	"busprefetch/internal/workload"
)

// TraceKey identifies one generated workload trace. Two suite cells that
// agree on every field replay the identical trace, so generating it twice is
// pure waste — at the paper sweep each workload's five strategies share one
// generation.
type TraceKey struct {
	Workload     string
	Procs        int
	Scale        float64
	Seed         int64
	Restructured bool
	Geometry     memory.Geometry
}

// NormalizeGeometry canonicalizes the key's geometry: the zero Geometry and
// memory.DefaultGeometry() generate identical traces, so they must share a
// cache entry.
func (k TraceKey) NormalizeGeometry() TraceKey {
	if k.Geometry == (memory.Geometry{}) {
		k.Geometry = memory.DefaultGeometry()
	}
	return k
}

// traceEntry is one cache slot. ready is closed once the generating
// goroutine has filled t/info/err; the fields are immutable afterwards.
type traceEntry struct {
	ready chan struct{}
	t     *trace.Trace
	info  workload.Info
	err   error
}

// TraceCache memoizes generated traces with singleflight semantics: the
// first goroutine to ask for a key generates it while later askers block on
// the same entry, so concurrent workers never duplicate a generation and
// never share a half-built trace (workload builders are single-goroutine
// objects; the cache hands out only completed, immutable traces).
//
// Failed generations are memoized too: a broken configuration fails once and
// every cell that needs it gets the same error.
type TraceCache struct {
	mu       sync.Mutex
	entries  map[TraceKey]*traceEntry
	sources  map[TraceKey]*sourceEntry
	profiles map[profileKey]*profileEntry
	hits     uint64
	misses   uint64
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: make(map[TraceKey]*traceEntry)}
}

// Get returns the trace for k, calling gen to produce it on first use. Every
// call for the same key observes the same (*trace.Trace, Info, error); gen
// runs at most once per key, on the calling goroutine that missed. Callers
// must treat the returned trace as immutable.
//
// Cancellation cannot poison the cache: a waiter whose ctx fires bails with
// ctx.Err() while the in-flight generation proceeds for everyone else, and a
// generation that itself fails with a cancellation error is evicted before
// its waiters are released — later callers regenerate instead of inheriting
// one caller's dead context as a permanent failure.
func (c *TraceCache) Get(ctx context.Context, k TraceKey, gen func() (*trace.Trace, workload.Info, error)) (*trace.Trace, workload.Info, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	k = k.NormalizeGeometry()
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.hits++
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.t, e.info, e.err
		case <-ctx.Done():
			return nil, workload.Info{}, ctx.Err()
		}
	}
	e := &traceEntry{ready: make(chan struct{})}
	c.entries[k] = e
	c.misses++
	c.mu.Unlock()

	e.t, e.info, e.err = gen()
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		// The generation died with its caller's context, not on its own
		// merits: evict the entry (if it is still ours) so the next caller
		// regenerates rather than observing the memoized cancellation.
		c.mu.Lock()
		if c.entries[k] == e {
			delete(c.entries, k)
		}
		c.mu.Unlock()
	}
	close(e.ready)
	return e.t, e.info, e.err
}

// sourceEntry is one streaming-source cache slot; ready is closed once
// src/info/err are immutable.
type sourceEntry struct {
	ready chan struct{}
	src   trace.Source
	info  workload.Info
	err   error
}

// GetSource is Get for streaming sources: gen plans the workload source
// (layout and sizing, no event generation) at most once per key, and every
// caller observes the same (Source, Info, error). Sources are restartable
// and return a fresh iterator per Events call, so one cached source serves
// any number of concurrent cells. Hits and misses land in the same Stats
// counters as Get — the cells of a sweep share one accounting whichever
// path they take.
//
// Cancellation follows Get's rules: waiters bail with ctx.Err(), and a
// generation that fails with a cancellation error is evicted.
func (c *TraceCache) GetSource(ctx context.Context, k TraceKey, gen func() (trace.Source, workload.Info, error)) (trace.Source, workload.Info, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	k = k.NormalizeGeometry()
	c.mu.Lock()
	if c.sources == nil {
		c.sources = make(map[TraceKey]*sourceEntry)
	}
	if e, ok := c.sources[k]; ok {
		c.hits++
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.src, e.info, e.err
		case <-ctx.Done():
			return nil, workload.Info{}, ctx.Err()
		}
	}
	e := &sourceEntry{ready: make(chan struct{})}
	c.sources[k] = e
	c.misses++
	c.mu.Unlock()

	e.src, e.info, e.err = gen()
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		c.mu.Lock()
		if c.sources[k] == e {
			delete(c.sources, k)
		}
		c.mu.Unlock()
	}
	close(e.ready)
	return e.src, e.info, e.err
}

// profileKey identifies one sharing profile: the trace it describes and
// the line size it was computed at.
type profileKey struct {
	trace TraceKey
	geom  memory.Geometry
}

type profileEntry struct {
	ready chan struct{}
	prof  *trace.SharingProfile
	err   error
}

// SharingProfile memoizes trace.AnalyzeSharingSource(src, geom) per
// (trace key, geometry) with the same singleflight semantics as Get: the
// profile pre-pass drains the whole source, so the strategies of one
// sweep cell family (PWS, EXCL variants) must share one analysis instead
// of re-deriving it per cell. src must be the un-annotated source for k.
func (c *TraceCache) SharingProfile(ctx context.Context, k TraceKey, geom memory.Geometry, src trace.Source) (*trace.SharingProfile, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pk := profileKey{trace: k.NormalizeGeometry(), geom: geom}
	c.mu.Lock()
	if c.profiles == nil {
		c.profiles = make(map[profileKey]*profileEntry)
	}
	if e, ok := c.profiles[pk]; ok {
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.prof, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &profileEntry{ready: make(chan struct{})}
	c.profiles[pk] = e
	c.mu.Unlock()

	e.prof, e.err = trace.AnalyzeSharingSource(src, geom)
	close(e.ready)
	return e.prof, e.err
}

// Stats returns how many Get calls were served from the cache (hits,
// including waits on an in-flight generation) and how many generated
// (misses).
func (c *TraceCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// HitRate returns hits / (hits + misses), or 0 before any access.
func (c *TraceCache) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
