package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"busprefetch/internal/trace"
	"busprefetch/internal/workload"
)

// TestTraceCacheWaiterCancellation: a waiter blocked on someone else's
// in-flight generation must bail with its own ctx.Err() when cancelled, while
// the generation completes normally for everyone still interested.
func TestTraceCacheWaiterCancellation(t *testing.T) {
	c := NewTraceCache()
	k := testKey("water", false)
	genStarted := make(chan struct{})
	genRelease := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Get(context.Background(), k, func() (*trace.Trace, workload.Info, error) {
			close(genStarted)
			<-genRelease
			return generate("water", false)()
		})
		if err != nil {
			t.Errorf("generator Get: %v", err)
		}
	}()
	<-genStarted
	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := c.Get(ctx, k, generate("water", false))
		waiterErr <- err
	}()
	cancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
	close(genRelease)
	wg.Wait()
	// The entry completed despite the waiter's cancellation: a fresh caller
	// hits it without regenerating.
	var regen atomic.Int64
	if _, _, err := c.Get(context.Background(), k, func() (*trace.Trace, workload.Info, error) {
		regen.Add(1)
		return generate("water", false)()
	}); err != nil {
		t.Fatal(err)
	}
	if regen.Load() != 0 {
		t.Error("completed entry regenerated after a waiter was cancelled")
	}
}

// TestTraceCacheCancelledGenerationNotPoisoned is the singleflight-poisoning
// regression test: when the generating caller's context dies mid-generation,
// the memoized entry must NOT pin that cancellation forever — the next caller
// regenerates and succeeds.
func TestTraceCacheCancelledGenerationNotPoisoned(t *testing.T) {
	c := NewTraceCache()
	k := testKey("mp3d", false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Get(ctx, k, func() (*trace.Trace, workload.Info, error) {
		// A well-behaved generator notices its caller's dead context.
		return nil, workload.Info{}, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("first Get = %v, want context.Canceled", err)
	}
	// The poisoned entry was evicted: a healthy caller regenerates.
	tr, _, err := c.Get(context.Background(), k, generate("mp3d", false))
	if err != nil {
		t.Fatalf("Get after cancelled generation: %v", err)
	}
	if tr == nil {
		t.Fatal("nil trace from regeneration")
	}
}

// TestTraceCacheConcurrentCancellationStorm hammers one key with a mix of
// cancelled and healthy callers under the race detector. A healthy waiter
// that was already parked on a cancelled caller's in-flight generation may
// transiently observe that cancellation, but the entry is evicted, so its
// retry must succeed — no caller's dead context becomes a permanent failure.
func TestTraceCacheConcurrentCancellationStorm(t *testing.T) {
	c := NewTraceCache()
	k := testKey("water", true)
	const goroutines = 24
	var wg sync.WaitGroup
	var badErr atomic.Value
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%3 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				cancel()
			}
			gen := func() (*trace.Trace, workload.Info, error) {
				if err := ctx.Err(); err != nil {
					return nil, workload.Info{}, err
				}
				return generate("water", true)()
			}
			if i%3 == 0 {
				c.Get(ctx, k, gen) // cancelled callers may get ctx.Err() or a trace; both are fine
				return
			}
			for attempt := 0; ; attempt++ {
				tr, _, err := c.Get(ctx, k, gen)
				if err == nil && tr != nil {
					return
				}
				if err != nil && !errors.Is(err, context.Canceled) {
					badErr.Store(err)
					return
				}
				if attempt >= goroutines {
					badErr.Store(errors.New("healthy caller never converged past neighbours' cancellations"))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err := badErr.Load(); err != nil {
		t.Fatalf("healthy caller failed: %v", err)
	}
	// The cache converged: one final Get is a pure hit.
	var regen atomic.Int64
	if _, _, err := c.Get(context.Background(), k, func() (*trace.Trace, workload.Info, error) {
		regen.Add(1)
		return generate("water", true)()
	}); err != nil {
		t.Fatal(err)
	}
	if regen.Load() != 0 {
		t.Error("cache did not converge to a completed entry")
	}
}
