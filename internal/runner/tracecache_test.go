package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"busprefetch/internal/memory"
	"busprefetch/internal/trace"
	"busprefetch/internal/workload"
)

func testKey(name string, restructured bool) TraceKey {
	return TraceKey{Workload: name, Scale: 0.1, Seed: 1, Restructured: restructured}
}

func generate(name string, restructured bool) func() (*trace.Trace, workload.Info, error) {
	return func() (*trace.Trace, workload.Info, error) {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, workload.Info{}, err
		}
		return w.Generate(workload.Params{Scale: 0.1, Seed: 1, Restructured: restructured})
	}
}

// TestTraceCacheSingleflight is the regression test for shared-generator
// races: many goroutines demand the same trace at once, exactly one
// generation runs (on one goroutine — workload builders are not concurrency
// safe), and everyone observes the same completed trace. Run under -race
// this fails if trace generation ever starts sharing mutable builder state
// across goroutines again.
func TestTraceCacheSingleflight(t *testing.T) {
	c := NewTraceCache()
	var generations atomic.Int64
	const goroutines = 16
	results := make([]*trace.Trace, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, _, err := c.Get(context.Background(), testKey("mp3d", false), func() (*trace.Trace, workload.Info, error) {
				generations.Add(1)
				return generate("mp3d", false)()
			})
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			results[i] = tr
		}(i)
	}
	wg.Wait()
	if n := generations.Load(); n != 1 {
		t.Errorf("%d generations ran, want exactly 1", n)
	}
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Errorf("goroutine %d got a different trace pointer", i)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Errorf("stats = %d hits, %d misses; want %d, 1", hits, misses, goroutines-1)
	}
}

func TestTraceCacheDistinctKeys(t *testing.T) {
	c := NewTraceCache()
	a, _, err := c.Get(context.Background(), testKey("water", false), generate("water", false))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := c.Get(context.Background(), TraceKey{Workload: "water", Scale: 0.1, Seed: 2}, func() (*trace.Trace, workload.Info, error) {
		w, _ := workload.ByName("water")
		return w.Generate(workload.Params{Scale: 0.1, Seed: 2})
	})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different seeds shared a cache entry")
	}
	if _, misses := c.Stats(); misses != 2 {
		t.Errorf("misses = %d, want 2", misses)
	}
}

// TestTraceCacheGeometryNormalization: the zero geometry and the explicit
// default geometry describe the same generation, so they must share one
// entry — this is what lets ablations at the default geometry reuse the
// suite's base traces.
func TestTraceCacheGeometryNormalization(t *testing.T) {
	c := NewTraceCache()
	k0 := testKey("water", false)
	kd := k0
	kd.Geometry = memory.DefaultGeometry()
	a, _, err := c.Get(context.Background(), k0, generate("water", false))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := c.Get(context.Background(), kd, generate("water", false))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("zero geometry and default geometry did not share an entry")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
}

func TestTraceCacheMemoizesErrors(t *testing.T) {
	c := NewTraceCache()
	boom := errors.New("generation broke")
	var calls atomic.Int64
	bad := func() (*trace.Trace, workload.Info, error) {
		calls.Add(1)
		return nil, workload.Info{}, boom
	}
	if _, _, err := c.Get(context.Background(), testKey("mp3d", true), bad); !errors.Is(err, boom) {
		t.Fatalf("first Get: %v", err)
	}
	if _, _, err := c.Get(context.Background(), testKey("mp3d", true), bad); !errors.Is(err, boom) {
		t.Fatalf("second Get: %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("failed generation ran %d times, want 1", calls.Load())
	}
}

// TestTraceCacheSourceSingleflight is the streaming twin of
// TestTraceCacheSingleflight: concurrent GetSource calls for one key plan
// the source exactly once (misses == 1) and every other caller is a hit —
// waiters on an in-flight generation count as hits, not misses.
func TestTraceCacheSourceSingleflight(t *testing.T) {
	c := NewTraceCache()
	var generations atomic.Int64
	const goroutines = 16
	results := make([]trace.Source, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src, _, err := c.GetSource(context.Background(), testKey("mp3d", false), func() (trace.Source, workload.Info, error) {
				generations.Add(1)
				w, err := workload.ByName("mp3d")
				if err != nil {
					return nil, workload.Info{}, err
				}
				return w.Source(workload.Params{Scale: 0.1, Seed: 1})
			})
			if err != nil {
				t.Errorf("GetSource: %v", err)
				return
			}
			results[i] = src
		}(i)
	}
	wg.Wait()
	if n := generations.Load(); n != 1 {
		t.Errorf("%d plans ran, want exactly 1", n)
	}
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Errorf("goroutine %d got a different source", i)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Errorf("stats = %d hits, %d misses; want %d, 1", hits, misses, goroutines-1)
	}
}

// TestTraceCacheSharingProfileSingleflight: the whole-source sharing
// analysis runs once per (key, geometry) however many cells demand it
// concurrently, and everyone observes the same profile.
func TestTraceCacheSharingProfileSingleflight(t *testing.T) {
	c := NewTraceCache()
	w, err := workload.ByName("water")
	if err != nil {
		t.Fatal(err)
	}
	src, _, err := w.Source(workload.Params{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	geom := memory.DefaultGeometry()
	const goroutines = 8
	profs := make([]*trace.SharingProfile, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.SharingProfile(context.Background(), testKey("water", false), geom, src)
			if err != nil {
				t.Errorf("SharingProfile: %v", err)
				return
			}
			profs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if profs[i] != profs[0] {
			t.Errorf("goroutine %d got a different profile", i)
		}
	}
	// A different geometry is a different profile.
	geom2 := geom
	geom2.LineSize *= 2
	geom2.CacheSize *= 2
	p2, err := c.SharingProfile(context.Background(), testKey("water", false), geom2, src)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == profs[0] {
		t.Error("distinct geometries shared a profile entry")
	}
}

func TestTraceCacheHitRate(t *testing.T) {
	c := NewTraceCache()
	if r := c.HitRate(); r != 0 {
		t.Errorf("empty cache hit rate = %v", r)
	}
	k := testKey("water", false)
	for i := 0; i < 4; i++ {
		if _, _, err := c.Get(context.Background(), k, generate("water", false)); err != nil {
			t.Fatal(err)
		}
	}
	if r := c.HitRate(); r != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", r)
	}
}
