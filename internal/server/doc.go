// Package server is the always-on experiment service behind cmd/benchserver:
// an HTTP/JSON API that accepts single simulations (RunSpecs) and whole
// sweep grids, schedules them onto bounded worker goroutines with per-tenant
// queue backpressure, and fronts every computation with a content-addressed
// result store keyed by (canonical spec string, build revision) so a spec
// resubmitted by any client is served from cache without recomputation.
//
// The service is a thin, faithful shell over the existing engine: sweeps run
// through experiments.Suite exactly the way cmd/mkfigures runs them —
// Prewarm the cells on a runner.Pool, reduce in canonical order — so a sweep
// report fetched over HTTP is byte-identical to the same sweep run from the
// command line (pinned by a golden equivalence test and the CI smoke
// script). Determinism at any parallelism is what makes cached, shared
// results safe by construction.
//
// See docs/API.md for the full endpoint reference and DESIGN.md §8 for the
// queueing, keying and sharding architecture.
package server
