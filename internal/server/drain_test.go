package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestDrainCompletesInFlightAndRejectsNew is the graceful-shutdown
// regression: once Drain begins, new submissions are 503 draining, but jobs
// already accepted — running or still queued — execute to completion before
// Drain returns.
func TestDrainCompletesInFlightAndRejectsNew(t *testing.T) {
	s, h := testServer(t, Options{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	inject := func(id string) *Job {
		j := blockingJob(id, "alice", release)
		w := httptest.NewRecorder()
		s.mu.Lock()
		s.jobs[j.id] = j
		s.mu.Unlock()
		s.submit(w, httptest.NewRequest("POST", "/v1/runs", nil), j)
		if w.Code != http.StatusAccepted {
			t.Fatalf("%s: %d", id, w.Code)
		}
		return j
	}
	running := inject("d1") // one worker: d1 runs, d2 queues
	queued := inject("d2")

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Draining must surface before it finishes: healthz flips and new
	// submissions bounce.
	waitFor(t, func() bool { return s.sched.stats().Draining })
	var r JobResource
	if w := do(t, h, "POST", "/v1/runs", "", tinyRun(), &r); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", w.Code)
	}
	if w := do(t, h, "GET", "/v1/healthz", "", nil, nil); w.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", w.Code)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) with jobs still in flight", err)
	default:
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, j := range []*Job{running, queued} {
		res := j.resource()
		if res.Status != StatusDone {
			t.Errorf("%s finished as %s, want done (accepted work must complete)", res.ID, res.Status)
		}
	}
}

// TestDrainDeadlineAbortsThroughContext: when the drain deadline expires the
// caller cancels the server's base context, which aborts the in-flight
// compute through the same context plumbing the simulator polls; the job
// fails with a cancellation-classified error and Drain's second wait
// completes.
func TestDrainDeadlineAbortsThroughContext(t *testing.T) {
	base, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	s := New(base, Options{Workers: 1})

	release := make(chan struct{}) // never closed: the job only ends by abort
	j := blockingJob("stuck", "alice", release)
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	w := httptest.NewRecorder()
	s.submit(w, httptest.NewRequest("POST", "/v1/runs", nil), j)

	short, cancelShort := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancelShort()
	if err := s.Drain(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain under deadline = %v, want DeadlineExceeded", err)
	}
	// The benchserver shutdown path: deadline hit → cancel the base context,
	// then wait out the (now aborting) jobs.
	cancelBase()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("post-abort Drain: %v", err)
	}
	res := j.resource()
	if res.Status != StatusFailed || res.Error == nil {
		t.Fatalf("aborted job = %+v, want failed", res)
	}
	if res.Error.Class != "terminal" {
		t.Errorf("abort classified %q, want terminal (cancellation)", res.Error.Class)
	}
}

// TestDrainIdleReturnsImmediately: draining an idle server does not hang.
func TestDrainIdleReturnsImmediately(t *testing.T) {
	s, _ := testServer(t, Options{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("idle Drain: %v", err)
	}
}

// waitFor polls cond to true within the test deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestDrainAbortFailsQueuedJobs is the reviewer's repro for the shutdown
// wedge: one worker, one running job (which never finishes on its own) plus
// one queued job. The drain deadline expires, the base context is cancelled
// — and the queued job, which no worker will ever pick up, must be failed
// and retired so the post-abort Drain(Background) returns instead of
// hanging the process, and so clients blocked on the queued job are
// released.
func TestDrainAbortFailsQueuedJobs(t *testing.T) {
	base, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	s := New(base, Options{Workers: 1})

	release := make(chan struct{}) // never closed: jobs only end by abort
	inject := func(id string) *Job {
		j := blockingJob(id, "alice", release)
		s.mu.Lock()
		s.jobs[j.id] = j
		s.mu.Unlock()
		w := httptest.NewRecorder()
		s.submit(w, httptest.NewRequest("POST", "/v1/runs", nil), j)
		if w.Code != http.StatusAccepted {
			t.Fatalf("%s: %d", id, w.Code)
		}
		return j
	}
	running := inject("r1")
	queued := inject("r2")

	// A client parked on the queued job the way ?wait=1 is.
	waiterDone := make(chan struct{})
	go func() { <-queued.Done(); close(waiterDone) }()

	short, cancelShort := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancelShort()
	if err := s.Drain(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain under deadline = %v, want DeadlineExceeded", err)
	}
	cancelBase()

	done := make(chan error, 1)
	go func() { done <- s.Drain(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("post-abort Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-abort Drain never returned: queued jobs were not retired")
	}
	select {
	case <-waiterDone:
	case <-time.After(5 * time.Second):
		t.Fatal("client waiting on the queued job was never released")
	}

	if res := running.resource(); res.Status != StatusFailed {
		t.Errorf("running job = %s, want failed (aborted through its context)", res.Status)
	}
	res := queued.resource()
	if res.Status != StatusFailed || res.Error == nil || res.Error.Code != "aborted" {
		t.Fatalf("queued job = %+v, want failed with code aborted", res)
	}
	if st := s.sched.stats(); st.Pending != 0 || st.Active != 0 {
		t.Errorf("scheduler stats = %+v, want fully retired accounting", st)
	}

	// The scheduler is dead: a late submission must bounce, not enqueue into
	// a pool with no workers.
	late := blockingJob("r3", "alice", release)
	s.mu.Lock()
	s.jobs[late.id] = late
	s.mu.Unlock()
	w := httptest.NewRecorder()
	s.submit(w, httptest.NewRequest("POST", "/v1/runs", nil), late)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("submit after abort: %d, want 503", w.Code)
	}
}
