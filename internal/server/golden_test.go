package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"busprefetch/internal/experiments"
	"busprefetch/internal/runner"
)

// TestSweepReportMatchesMkfigures is the service's equivalence golden: a
// sweep requested over HTTP must render byte-for-byte what cmd/mkfigures
// prints for the same configuration — the suite path (KeysFor → Prewarm →
// RenderSections, plus Fprintln's trailing newline) run directly here, the
// way mkfigures runs it. Then the same sweep resubmitted must come back
// from the result store, cached, with the identical bytes.
func TestSweepReportMatchesMkfigures(t *testing.T) {
	req := SweepRequest{Scale: 0.05, Seed: 1, Transfers: []int{8}, Sections: []string{"table2"}}

	// The mkfigures path, inline: same config the server will build.
	plan, err := planSweep(req, Options{})
	if err != nil {
		t.Fatal(err)
	}
	suite := experiments.NewSuite(plan.cfg)
	if err := suite.Prewarm(context.Background(), suite.KeysFor(plan.want), nil); err != nil {
		t.Fatal(err)
	}
	text, err := suite.RenderSections(context.Background(), plan.want)
	if err != nil {
		t.Fatal(err)
	}
	wantReport := text + "\n" // mkfigures prints the report with Fprintln

	_, h := testServer(t, Options{Workers: 1})
	var r JobResource
	if w := do(t, h, "POST", "/v1/sweeps?wait=1", "", req, &r); w.Code != http.StatusOK {
		t.Fatalf("sweep: %d %s", w.Code, w.Body.String())
	}
	if r.Status != StatusDone {
		t.Fatalf("sweep %+v, want done", r)
	}
	var res SweepResult
	if err := json.Unmarshal(r.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Report != wantReport {
		t.Errorf("HTTP report diverges from the mkfigures path:\n--- HTTP ---\n%s\n--- mkfigures ---\n%s", res.Report, wantReport)
	}
	if res.Bench == nil || res.Bench.Schema != "busprefetch-bench/v1" {
		t.Errorf("bench report = %+v, want busprefetch-bench/v1", res.Bench)
	}

	// Resubmission: served from the store, byte-identical.
	var again JobResource
	do(t, h, "POST", "/v1/sweeps?wait=1", "other-tenant", req, &again)
	if !again.Cached {
		t.Error("resubmitted sweep was recomputed, want a store hit")
	}
	if !bytes.Equal(r.Result, again.Result) {
		t.Error("cached sweep bytes differ from the original computation")
	}
}

// TestSweepSectionCanonicalization: two requests naming the same sections in
// different order and case share one result-store key — the second is a
// cache hit.
func TestSweepSectionCanonicalization(t *testing.T) {
	s, h := testServer(t, Options{Workers: 1})
	a := SweepRequest{Scale: 0.05, Transfers: []int{8}, Sections: []string{"fig1", "table2"}}
	b := SweepRequest{Scale: 0.05, Transfers: []int{8}, Sections: []string{"TABLE2", "Fig1"}}
	var ra, rb JobResource
	do(t, h, "POST", "/v1/sweeps?wait=1", "", a, &ra)
	do(t, h, "POST", "/v1/sweeps?wait=1", "", b, &rb)
	if ra.Status != StatusDone || rb.Status != StatusDone {
		t.Fatalf("statuses %s / %s", ra.Status, rb.Status)
	}
	if !rb.Cached {
		t.Error("reordered section list missed the cache; keys are not canonical")
	}
	if !bytes.Equal(ra.Result, rb.Result) {
		t.Error("same sections, different bytes")
	}
	if st := s.results.Stats(); st.Misses != 1 {
		t.Errorf("stats = %+v, want a single compute", st)
	}
}

// TestSweepMetricsAttached: metrics=true runs the observability slice and
// attaches a busprefetch-metrics/v1 report — and keys separately from the
// same sweep without metrics.
func TestSweepMetricsAttached(t *testing.T) {
	_, h := testServer(t, Options{Workers: 1})
	req := SweepRequest{Scale: 0.05, Transfers: []int{8}, Sections: []string{"table2"}, Metrics: true}
	var r JobResource
	if w := do(t, h, "POST", "/v1/sweeps?wait=1", "", req, &r); w.Code != http.StatusOK || r.Status != StatusDone {
		t.Fatalf("sweep: %d %+v", w.Code, r)
	}
	var res SweepResult
	if err := json.Unmarshal(r.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil || res.Metrics.Schema != "busprefetch-metrics/v1" || len(res.Metrics.Cells) == 0 {
		t.Errorf("metrics = %+v, want populated busprefetch-metrics/v1", res.Metrics)
	}
	// The metrics flag is part of the key: the metrics-less variant is a
	// distinct computation, not a hit on this one.
	plain := req
	plain.Metrics = false
	var rp JobResource
	do(t, h, "POST", "/v1/sweeps?wait=1", "", plain, &rp)
	if rp.Cached {
		t.Error("metrics=false hit the metrics=true entry; keys must differ")
	}
}

// TestSweepResultSurvivesRestart: with a durable store configured, a second
// server over the same directory (fresh process, fresh memory) serves the
// sweep from disk without recomputation.
func TestSweepResultSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() Options {
		store, err := runner.OpenCheckpointStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		return Options{Workers: 1, Checkpoints: store}
	}
	req := SweepRequest{Scale: 0.05, Transfers: []int{8}, Sections: []string{"table2"}}

	_, h1 := testServer(t, open())
	var r1 JobResource
	do(t, h1, "POST", "/v1/sweeps?wait=1", "", req, &r1)
	if r1.Status != StatusDone || r1.Cached {
		t.Fatalf("first server: %+v", r1)
	}

	s2, h2 := testServer(t, open())
	var r2 JobResource
	do(t, h2, "POST", "/v1/sweeps?wait=1", "", req, &r2)
	if r2.Status != StatusDone || !r2.Cached {
		t.Fatalf("restarted server: %+v, want a disk hit", r2)
	}
	if !bytes.Equal(r1.Result, r2.Result) {
		t.Error("result changed across restart")
	}
	if st := s2.results.Stats(); st.DiskHits != 1 {
		t.Errorf("stats = %+v, want the hit attributed to disk", st)
	}
}
