package server

import (
	"context"
	"encoding/json"
	"sync"
)

// Job statuses, in lifecycle order. A job moves queued → running →
// done|failed and never backwards; cached hits pass through running for a
// few microseconds on their way to done.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Event is one line of a job's NDJSON progress stream
// (GET /v1/{runs,sweeps}/{id}/events). Seq is contiguous from 1, so a client
// that reconnects can detect gaps; the stream ends after the terminal "done"
// or "failed" event.
type Event struct {
	Seq   int    `json:"seq"`
	Event string `json:"event"`
	// Done/Total carry sweep cell progress on "progress" events (the
	// runner.Pool onDone counters riding straight through).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Message carries human-readable detail on "failed" events.
	Message string `json:"message,omitempty"`
}

// Job is one accepted submission: a single run or a whole sweep. The
// scheduler executes it once; its result (or error) then serves every poll
// and event stream. Fields under mu are mutable; everything else is set at
// submission and read-only afterwards.
type Job struct {
	id     string
	kind   string // "run" | "sweep"
	tenant string
	spec   json.RawMessage // echo of the validated request body
	key    string          // content-addressed result-store key
	// compute produces the result payload and whether the result store
	// served it; it runs under the server's job context (not the submitting
	// request's, so a disconnecting client never cancels work other clients
	// may be waiting on).
	compute func(ctx context.Context, j *Job) ([]byte, bool, error)

	mu     sync.Mutex
	cond   *sync.Cond // broadcast on every event append and status change
	status string
	cached bool
	events []Event
	result json.RawMessage
	apiErr *APIError
	done   chan struct{} // closed on terminal status
}

func newJob(id, kind, tenant string, spec json.RawMessage, key string,
	compute func(ctx context.Context, j *Job) ([]byte, bool, error)) *Job {
	j := &Job{id: id, kind: kind, tenant: tenant, spec: spec, key: key,
		compute: compute, status: StatusQueued, done: make(chan struct{})}
	j.cond = sync.NewCond(&j.mu)
	j.appendEventLocked(Event{Event: "queued"})
	return j
}

// appendEventLocked stamps the next sequence number and wakes streamers.
// Callers hold j.mu or are inside a method that does.
func (j *Job) appendEventLocked(e Event) {
	e.Seq = len(j.events) + 1
	j.events = append(j.events, e)
	j.cond.Broadcast()
}

func (j *Job) event(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEventLocked(e)
}

// progress records sweep cell progress (the Prewarm callback target).
func (j *Job) progress(done, total int) {
	j.event(Event{Event: "progress", Done: done, Total: total})
}

func (j *Job) start() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = StatusRunning
	j.appendEventLocked(Event{Event: "started"})
}

// complete records the result payload. cached reports whether the result
// store served it without recomputation.
func (j *Job) complete(payload []byte, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.result = json.RawMessage(payload)
	j.cached = cached
	j.status = StatusDone
	if cached {
		j.appendEventLocked(Event{Event: "cached"})
	}
	j.appendEventLocked(Event{Event: "done"})
	close(j.done)
}

func (j *Job) fail(apiErr *APIError) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.apiErr = apiErr
	j.status = StatusFailed
	j.appendEventLocked(Event{Event: "failed", Message: apiErr.Message})
	close(j.done)
}

// Done exposes the terminal-state channel (?wait=1 blocks on it).
func (j *Job) Done() <-chan struct{} { return j.done }

// resource renders the job as its API representation.
func (j *Job) resource() *JobResource {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &JobResource{
		ID:     j.id,
		Kind:   j.kind,
		Tenant: j.tenant,
		Status: j.status,
		Cached: j.cached,
		Spec:   j.spec,
		Result: j.result,
		Error:  j.apiErr,
	}
}

// eventsAfter returns the events with Seq > after, plus whether the job has
// reached a terminal status (the stream can end once every event is out).
// It blocks until at least one new event exists, the job is terminal, or
// wake is closed (the streaming handler's client disconnected).
func (j *Job) eventsAfter(after int, wake <-chan struct{}) ([]Event, bool) {
	// A watcher turns the channel close into a cond broadcast so the wait
	// below can observe it. It broadcasts under the mutex: the waiter below
	// holds it from the wake check until Wait parks, so the broadcast cannot
	// slip into that window and be missed.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-wake:
			j.mu.Lock()
			j.cond.Broadcast()
			j.mu.Unlock()
		case <-stop:
		}
	}()
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		terminal := j.status == StatusDone || j.status == StatusFailed
		if len(j.events) > after || terminal {
			out := make([]Event, len(j.events)-after)
			copy(out, j.events[after:])
			return out, terminal
		}
		select {
		case <-wake:
			return nil, false
		default:
		}
		j.cond.Wait()
	}
}
