package server

import (
	"context"
	"errors"
	"sort"
	"sync"

	"busprefetch/internal/runner"
)

// Scheduling errors, mapped to HTTP statuses by the handler (429 with a
// Retry-After for a full queue, 503 once the server is draining).
var (
	errQueueFull = errors.New("server: tenant queue is full")
	errDraining  = errors.New("server: draining, not accepting new jobs")
)

// scheduler fans accepted jobs across a fixed pool of worker goroutines with
// one bounded FIFO queue per tenant. Admission is per-tenant — a tenant may
// hold at most depth jobs queued-or-running, so one client flooding the
// service backpressures itself (429) without starving anyone else — and
// dispatch is round-robin across tenants in sorted-name order, so service is
// fair regardless of submission bursts.
type scheduler struct {
	depth int

	mu       sync.Mutex
	cond     *sync.Cond // signalled on submit, drain, and job completion
	pending  map[string][]*Job
	inflight map[string]int // queued + running per tenant (admission counter)
	tenants  []string       // sorted round-robin ring of tenants with pending work
	next     int            // ring cursor
	draining bool
	stopped  bool // base context cancelled: workers are exiting, nothing runs again
	active   int  // jobs admitted and not yet terminal (drain barrier)
	idle     chan struct{}
}

// newScheduler starts workers goroutines executing jobs under ctx. Each
// job's compute runs under that base context — not the submitting request's
// — so a disconnecting client never cancels a computation other clients may
// be waiting on; cancelling ctx (the drain deadline path) aborts everything.
func newScheduler(ctx context.Context, workers, depth int) *scheduler {
	if workers <= 0 {
		workers = 1
	}
	if depth <= 0 {
		depth = 8
	}
	s := &scheduler{
		depth:    depth,
		pending:  make(map[string][]*Job),
		inflight: make(map[string]int),
		idle:     make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	// A watcher turns ctx cancellation into a broadcast so parked workers
	// observe it. Broadcasting under the mutex closes the missed-wakeup
	// window between a worker's ctx check and its Wait. Cancellation also
	// aborts every still-queued job: workers are about to exit, so nothing
	// would ever run those jobs, and leaving them admitted would wedge both
	// Drain (active never reaches 0) and clients blocked on the jobs.
	context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.stopped = true
		s.abortPendingLocked()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	for i := 0; i < workers; i++ {
		go s.work(ctx)
	}
	return s
}

// submit admits a job into its tenant's queue, or rejects it with
// errQueueFull / errDraining. Admission and execution both count against the
// tenant's depth: a tenant cannot park depth jobs and run depth more.
func (s *scheduler) submit(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.stopped {
		return errDraining
	}
	if s.inflight[j.tenant] >= s.depth {
		return errQueueFull
	}
	s.inflight[j.tenant]++
	s.active++
	if len(s.pending[j.tenant]) == 0 {
		s.addTenantLocked(j.tenant)
	}
	s.pending[j.tenant] = append(s.pending[j.tenant], j)
	s.cond.Broadcast()
	return nil
}

// addTenantLocked inserts t into the sorted round-robin ring, keeping the
// cursor pointed at the same tenant it was about to serve.
func (s *scheduler) addTenantLocked(t string) {
	i := sort.SearchStrings(s.tenants, t)
	s.tenants = append(s.tenants, "")
	copy(s.tenants[i+1:], s.tenants[i:])
	s.tenants[i] = t
	if i < s.next {
		s.next++
	}
}

// take pops the next job round-robin across tenants, blocking until one is
// available or ctx dies. It returns nil when the scheduler should stop
// (context cancelled, or draining with nothing left).
func (s *scheduler) take(ctx context.Context) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if ctx.Err() != nil {
			// Belt and suspenders with the AfterFunc watcher: a worker that
			// observes cancellation retires whatever is still queued before
			// exiting, so no admitted job can outlive the worker pool.
			s.abortPendingLocked()
			return nil
		}
		if len(s.tenants) > 0 {
			if s.next >= len(s.tenants) {
				s.next = 0
			}
			t := s.tenants[s.next]
			q := s.pending[t]
			j := q[0]
			if len(q) == 1 {
				delete(s.pending, t)
				s.tenants = append(s.tenants[:s.next], s.tenants[s.next+1:]...)
			} else {
				s.pending[t] = q[1:]
				s.next++
			}
			return j
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// finish retires a terminal job from the admission counters and closes the
// idle channel when a drain has nothing left to wait for.
func (s *scheduler) finish(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retireLocked(j)
	s.cond.Broadcast()
}

// retireLocked removes one admitted job from the accounting and signals idle
// when a drain has nothing left to wait for.
func (s *scheduler) retireLocked(j *Job) {
	s.inflight[j.tenant]--
	if s.inflight[j.tenant] == 0 {
		delete(s.inflight, j.tenant)
	}
	s.active--
	if s.draining && s.active == 0 {
		select {
		case <-s.idle:
		default:
			close(s.idle)
		}
	}
}

// abortPendingLocked fails and retires every still-queued job. It runs once
// the scheduler's base context is cancelled (the drain-deadline abort path):
// no worker will ever pick those jobs up, so failing them here is what
// releases their ?wait=1 and event-stream clients and lets the accounting
// reach idle so a post-abort Drain returns. Running jobs are not touched —
// they observe the same cancellation through their compute contexts and
// retire through the normal worker path.
func (s *scheduler) abortPendingLocked() {
	for t, q := range s.pending {
		for _, j := range q {
			j.fail(&APIError{
				Code:    "aborted",
				Message: "server shut down before the job ran",
				Class:   runner.Classify(context.Canceled).String(),
			})
			s.retireLocked(j)
		}
		delete(s.pending, t)
	}
	s.tenants = nil
	s.next = 0
}

// work is one worker goroutine: pull, execute, repeat. The job's own
// compute handles result-store consultation; the worker just frames it with
// status transitions and admission accounting.
func (s *scheduler) work(ctx context.Context) {
	for {
		j := s.take(ctx)
		if j == nil {
			return
		}
		j.start()
		payload, cached, err := j.compute(ctx, j)
		if err != nil {
			j.fail(apiErrorFrom(err))
		} else {
			j.complete(payload, cached)
		}
		s.finish(j)
	}
}

// Drain stops admission and blocks until every in-flight job reaches a
// terminal state. Queued jobs still execute — a graceful shutdown finishes
// accepted work — but if ctx expires first the caller is expected to cancel
// the scheduler's base context, which aborts running cells through the
// simulator's cancellation polls and fails every still-queued job (no
// worker would ever run them again); a subsequent Drain call then observes
// the accounting reach idle and returns. Drain itself returns ctx.Err()
// when its deadline expires.
func (s *scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.active == 0 {
		select {
		case <-s.idle:
		default:
			close(s.idle)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	select {
	case <-s.idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// queueStats is the scheduler's /v1/stats contribution.
type queueStats struct {
	Pending  int  `json:"pending"`
	Active   int  `json:"active"`
	Tenants  int  `json:"tenants"`
	Depth    int  `json:"depth"`
	Draining bool `json:"draining"`
}

func (s *scheduler) stats() queueStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	pending := 0
	for _, q := range s.pending {
		pending += len(q)
	}
	return queueStats{
		Pending:  pending,
		Active:   s.active,
		Tenants:  len(s.inflight),
		Depth:    s.depth,
		Draining: s.draining,
	}
}
