package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"busprefetch"
	"busprefetch/internal/buildinfo"
	"busprefetch/internal/coherence"
	"busprefetch/internal/experiments"
	"busprefetch/internal/interconnect"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/runner"
)

// Options configures a Server.
type Options struct {
	// Workers is how many jobs (runs or whole sweeps) execute concurrently;
	// 0 selects 2. Shards is each sweep's internal cell parallelism
	// (experiments.Config.Parallelism; 0 selects GOMAXPROCS) — the seam a
	// multi-process deployment would push sweep cells across.
	Workers int
	Shards  int
	// QueueDepth bounds each tenant's queued-plus-running jobs; a submission
	// beyond it is rejected with 429 and a Retry-After. 0 selects 8.
	QueueDepth int
	// Checkpoints, when non-nil, is the durable tier: completed results
	// persist into it (CRC-framed, quarantined on corruption) and completed
	// sweep cells checkpoint into it, so both whole results and partial
	// sweeps survive a restart.
	Checkpoints *runner.CheckpointStore
	// Timeout and Retries are each sweep cell's attempt budget
	// (experiments.Config.Timeout / Retries).
	Timeout time.Duration
	Retries int
	// JobRetention caps how many terminal job resources the server keeps
	// addressable: past it, the oldest-finished jobs are evicted (their ids
	// answer 404) so an always-on service does not grow without bound. The
	// evicted results remain reproducible from the result store — resubmit
	// the spec and it is served as a cache hit. 0 selects 512.
	JobRetention int
	// Logf, when non-nil, receives one line per accepted and finished job.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	if o.JobRetention <= 0 {
		o.JobRetention = 512
	}
	return o
}

// Server is the experiment service: submissions become Jobs on a scheduler,
// every computation runs through a content-addressed ResultStore keyed by
// (canonical spec string, build revision), and results stream back as
// resources and NDJSON event feeds. See docs/API.md for the HTTP surface.
type Server struct {
	opts    Options
	sched   *scheduler
	results *runner.ResultStore

	seq     atomic.Int64
	mu      sync.Mutex
	jobs    map[string]*Job
	retired []string // terminal job ids in completion order (eviction FIFO)
}

// New creates a Server whose jobs run under ctx: cancelling it aborts every
// running computation (the drain-deadline path; see Drain).
func New(ctx context.Context, opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		opts:    opts,
		sched:   newScheduler(ctx, opts.Workers, opts.QueueDepth),
		results: runner.NewResultStore(opts.Checkpoints),
		jobs:    make(map[string]*Job),
	}
}

// Drain stops accepting submissions (503) and waits for in-flight jobs to
// finish; see scheduler.Drain for the deadline contract.
func (s *Server) Drain(ctx context.Context) error { return s.sched.Drain(ctx) }

// logf logs one line through Options.Logf, when configured.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// APIError is the wire form of every failure: HTTP-level errors fill the
// whole response body with {"error": ...}; job-level failures embed it in
// the job resource. Class carries the runner.Classify taxonomy for
// compute failures ("terminal" or "retryable, exhausted budget"), so a
// client knows whether resubmitting the same spec can ever succeed.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Class   string `json:"class,omitempty"`
}

func (e *APIError) Error() string { return e.Message }

// apiErrorFrom wraps a compute failure with its retry classification.
func apiErrorFrom(err error) *APIError {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae
	}
	return &APIError{Code: "compute_failed", Message: err.Error(), Class: runner.Classify(err).String()}
}

// JobResource is the API representation of a job
// (GET /v1/{runs,sweeps}/{id}). Result is a RunResult or SweepResult once
// Status is "done"; Error is set once Status is "failed".
type JobResource struct {
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	Tenant string          `json:"tenant"`
	Status string          `json:"status"`
	Cached bool            `json:"cached"`
	Spec   json.RawMessage `json:"spec"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *APIError       `json:"error,omitempty"`
}

// RunRequest is the body of POST /v1/runs: busprefetch.RunSpec field for
// field, in wire case. Zero values select the same defaults RunSpec does.
type RunRequest struct {
	Workload         string  `json:"workload"`
	Strategy         string  `json:"strategy,omitempty"`
	Prefetcher       string  `json:"prefetcher,omitempty"`
	Transfer         int     `json:"transfer,omitempty"`
	MemLatency       int     `json:"mem_latency,omitempty"`
	Procs            int     `json:"procs,omitempty"`
	Scale            float64 `json:"scale,omitempty"`
	Seed             int64   `json:"seed,omitempty"`
	Restructured     bool    `json:"restructured,omitempty"`
	Distance         int     `json:"distance,omitempty"`
	CacheKB          int     `json:"cache_kb,omitempty"`
	LineBytes        int     `json:"line_bytes,omitempty"`
	Protocol         string  `json:"protocol,omitempty"`
	VictimCacheLines int     `json:"victim_cache_lines,omitempty"`
	BufferPrefetch   bool    `json:"buffer_prefetch,omitempty"`
	Interconnect     string  `json:"interconnect,omitempty"`
	Buses            int     `json:"buses,omitempty"`
	Discipline       string  `json:"discipline,omitempty"`
}

func (r RunRequest) spec() busprefetch.RunSpec {
	return busprefetch.RunSpec{
		Workload:         r.Workload,
		Strategy:         r.Strategy,
		Prefetcher:       r.Prefetcher,
		Transfer:         r.Transfer,
		MemLatency:       r.MemLatency,
		Procs:            r.Procs,
		Scale:            r.Scale,
		Seed:             r.Seed,
		Restructured:     r.Restructured,
		Distance:         r.Distance,
		CacheKB:          r.CacheKB,
		LineBytes:        r.LineBytes,
		Protocol:         r.Protocol,
		VictimCacheLines: r.VictimCacheLines,
		BufferPrefetch:   r.BufferPrefetch,
		Interconnect:     r.Interconnect,
		Buses:            r.Buses,
		Discipline:       r.Discipline,
	}
}

// Handler returns the service's HTTP handler (the full /v1 surface).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGetJob("run"))
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetJob("sweep"))
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents("run"))
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents("sweep"))
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/meta", s.handleMeta)
	return mux
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes an error-only body: {"error": {...}}.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, map[string]*APIError{"error": {Code: code, Message: message}})
}

// tenant resolves the submission's tenant: the X-Tenant header, or the
// shared "default" queue.
func tenant(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// decodeBody strictly decodes the request body into v; unknown fields are a
// client error (they are almost always a typo'd knob that would otherwise
// silently revert to its default).
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// submit registers and schedules a new job, mapping admission failures to
// their statuses, then answers 202 with the job resource (or, under ?wait=1,
// blocks until the job is terminal and answers 200).
func (s *Server) submit(w http.ResponseWriter, r *http.Request, j *Job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	if err := s.sched.submit(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		switch {
		case errors.Is(err, errQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "queue_full",
				fmt.Sprintf("tenant %q already has %d jobs queued or running; retry shortly", j.tenant, s.opts.QueueDepth))
		case errors.Is(err, errDraining):
			writeError(w, http.StatusServiceUnavailable, "draining", "server is draining; not accepting new jobs")
		default:
			writeError(w, http.StatusInternalServerError, "internal", err.Error())
		}
		return
	}
	s.logf("accepted %s (tenant %s, key %s)", j.id, j.tenant, j.key)
	go s.retire(j)
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.Done():
			writeJSON(w, http.StatusOK, j.resource())
		case <-r.Context().Done():
			// The client gave up; the job keeps running and remains pollable.
		}
		return
	}
	w.Header().Set("Location", fmt.Sprintf("/v1/%ss/%s", j.kind, j.id))
	writeJSON(w, http.StatusAccepted, j.resource())
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_body", err.Error())
		return
	}
	spec := req.spec()
	key, err := runKey(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_spec", err.Error())
		return
	}
	echo, _ := json.Marshal(req)
	id := fmt.Sprintf("run-%d", s.seq.Add(1))
	j := newJob(id, "run", tenant(r), echo, key,
		func(ctx context.Context, j *Job) ([]byte, bool, error) {
			return s.results.Do(ctx, key, func(ctx context.Context) ([]byte, bool, error) {
				return computeRun(ctx, spec)
			})
		})
	s.submit(w, r, j)
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_body", err.Error())
		return
	}
	plan, err := planSweep(req, s.opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_spec", err.Error())
		return
	}
	key := plan.key()
	echo, _ := json.Marshal(req)
	id := fmt.Sprintf("sweep-%d", s.seq.Add(1))
	j := newJob(id, "sweep", tenant(r), echo, key,
		func(ctx context.Context, j *Job) ([]byte, bool, error) {
			return s.results.Do(ctx, key, func(ctx context.Context) ([]byte, bool, error) {
				return computeSweep(ctx, j, plan)
			})
		})
	s.submit(w, r, j)
}

// retire waits for j to reach a terminal state, then enforces the terminal-
// job retention cap: j joins the completion-order FIFO and the oldest
// terminal jobs beyond Options.JobRetention are evicted from the registry.
// In-flight jobs are never evicted (only terminal ids enter the FIFO), so a
// poll or event stream can always find a job that is still running.
func (s *Server) retire(j *Job) {
	<-j.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retired = append(s.retired, j.id)
	for len(s.retired) > s.opts.JobRetention {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
}

// job looks a job up by id, kind-checked: a run id is not addressable under
// /v1/sweeps and vice versa.
func (s *Server) job(id, kind string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.kind != kind {
		return nil, false
	}
	return j, true
}

func (s *Server) handleGetJob(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.job(r.PathValue("id"), kind)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown_id", fmt.Sprintf("no %s with id %q", kind, r.PathValue("id")))
			return
		}
		if r.URL.Query().Get("wait") != "" {
			select {
			case <-j.Done():
			case <-r.Context().Done():
				return
			}
		}
		writeJSON(w, http.StatusOK, j.resource())
	}
}

// handleEvents streams a job's progress as NDJSON: one Event per line,
// flushed as produced, ending after the terminal "done"/"failed" event. A
// client may connect at any point in the job's life — the stream always
// replays from the first event, so it is a complete, gapless history.
func (s *Server) handleEvents(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.job(r.PathValue("id"), kind)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown_id", fmt.Sprintf("no %s with id %q", kind, r.PathValue("id")))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		after := 0
		for {
			events, terminal := j.eventsAfter(after, r.Context().Done())
			for _, e := range events {
				if enc.Encode(e) != nil {
					return
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
			after += len(events)
			if terminal || (len(events) == 0 && r.Context().Err() != nil) {
				return
			}
		}
	}
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"version":  buildinfo.String("benchserver"),
		"revision": buildinfo.Revision(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.sched.stats().Draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": status})
}

// statsResponse is the /v1/stats body: the result store's hit economics,
// the durable tier's integrity counters, the scheduler's load, and a job
// census by status.
type statsResponse struct {
	Results     runner.ResultStats      `json:"results"`
	Checkpoints *runner.CheckpointStats `json:"checkpoints,omitempty"`
	Queue       queueStats              `json:"queue"`
	Jobs        map[string]int          `json:"jobs"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Results: s.results.Stats(),
		Queue:   s.sched.stats(),
		Jobs:    map[string]int{},
	}
	if s.opts.Checkpoints != nil {
		cs := s.opts.Checkpoints.Stats()
		resp.Checkpoints = &cs
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		resp.Jobs[j.resource().Status]++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleMeta enumerates every valid name a spec field accepts, so clients
// can build requests without hardcoding the vocabulary.
func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	var workloads []map[string]any
	for _, wl := range busprefetch.Workloads() {
		workloads = append(workloads, map[string]any{
			"name": wl.Name, "description": wl.Description, "default_procs": wl.DefaultProcs,
		})
	}
	names := func(n int, at func(i int) string) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = at(i)
		}
		return out
	}
	protos := coherence.Kinds()
	ics := interconnect.Kinds()
	pfs := prefetch.Kinds()
	writeJSON(w, http.StatusOK, map[string]any{
		"workloads":     workloads,
		"strategies":    busprefetch.Strategies(),
		"prefetchers":   names(len(pfs), func(i int) string { return pfs[i].String() }),
		"protocols":     names(len(protos), func(i int) string { return protos[i].String() }),
		"interconnects": names(len(ics), func(i int) string { return ics[i].String() }),
		"disciplines":   []string{"priority", "fcfs"},
		"sections":      experiments.SectionNames(),
		"transfers":     experiments.DefaultConfig().Transfers,
		"workers":       s.opts.Workers,
		"shards":        s.opts.Shards,
	})
}
