package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testServer builds a Server plus its handler over a cancellable base
// context, with small-test defaults.
func testServer(t *testing.T, opts Options) (*Server, http.Handler) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s := New(ctx, opts)
	return s, s.Handler()
}

// do performs one request against the handler and decodes the JSON body.
func do(t *testing.T, h http.Handler, method, path, tenant string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: body %q does not decode: %v", method, path, w.Body.String(), err)
		}
	}
	return w
}

// tinyRun is a fast single-simulation request for handler tests.
func tinyRun() RunRequest {
	return RunRequest{Workload: "mp3d", Strategy: "PREF", Transfer: 8, Scale: 0.02}
}

// TestSubmitRunWaitAndCacheHit is the core API economics test: a run
// submitted with ?wait=1 completes with metrics; the identical spec
// resubmitted — by a different tenant, in different field case — is served
// from the result store with byte-identical result bytes, and the store's
// stats prove no recomputation happened.
func TestSubmitRunWaitAndCacheHit(t *testing.T) {
	s, h := testServer(t, Options{Workers: 1})
	var first JobResource
	w := do(t, h, "POST", "/v1/runs?wait=1", "alice", tinyRun(), &first)
	if w.Code != http.StatusOK {
		t.Fatalf("first submit: %d %s", w.Code, w.Body.String())
	}
	if first.Status != StatusDone || first.Cached || first.Kind != "run" {
		t.Fatalf("first = %+v, want done, uncached run", first)
	}
	var res RunResult
	if err := json.Unmarshal(first.Result, &res); err != nil || res.Metrics == nil {
		t.Fatalf("result %s: %v", first.Result, err)
	}
	if res.Metrics.Cycles == 0 || res.Metrics.Workload != "mp3d" {
		t.Errorf("metrics = %+v, want a real mp3d run", res.Metrics)
	}

	// Same spec, different tenant and name case: one canonical key.
	req2 := tinyRun()
	req2.Strategy = "pref"
	var second JobResource
	do(t, h, "POST", "/v1/runs?wait=1", "bob", req2, &second)
	if second.Status != StatusDone || !second.Cached {
		t.Fatalf("second = status %s cached %v, want cached done", second.Status, second.Cached)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Errorf("cached result differs from original:\n%s\nvs\n%s", first.Result, second.Result)
	}
	if st := s.results.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("result-store stats = %+v, want 1 miss + 1 hit", st)
	}
}

// TestSubmitAsyncAndPoll covers the 202 path: submission returns a Location
// and a queued/running resource, and polling with ?wait=1 returns the
// terminal state.
func TestSubmitAsyncAndPoll(t *testing.T) {
	_, h := testServer(t, Options{Workers: 1})
	var r JobResource
	w := do(t, h, "POST", "/v1/runs", "", tinyRun(), &r)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body.String())
	}
	loc := w.Header().Get("Location")
	if loc != "/v1/runs/"+r.ID {
		t.Fatalf("Location = %q, id %q", loc, r.ID)
	}
	var done JobResource
	if w := do(t, h, "GET", loc+"?wait=1", "", nil, &done); w.Code != http.StatusOK {
		t.Fatalf("poll: %d", w.Code)
	}
	if done.Status != StatusDone {
		t.Fatalf("status = %s (error %+v)", done.Status, done.Error)
	}
	if done.Tenant != "default" {
		t.Errorf("tenant = %q, want default", done.Tenant)
	}
}

// TestValidationErrors pins the 400 taxonomy: malformed JSON and unknown
// fields are invalid_body; a well-formed body with a bad name is
// invalid_spec; a bad sweep section likewise.
func TestValidationErrors(t *testing.T) {
	_, h := testServer(t, Options{Workers: 1})
	cases := []struct {
		path string
		body string
		code string
	}{
		{"/v1/runs", `{"workload": }`, "invalid_body"},
		{"/v1/runs", `{"workload":"mp3d","no_such_knob":1}`, "invalid_body"},
		{"/v1/runs", `{"workload":"mp3d","strategy":"WARP"}`, "invalid_spec"},
		{"/v1/runs", `{"workload":"mp3d","protocol":"mesif"}`, "invalid_spec"},
		{"/v1/sweeps", `{"sections":["table9"]}`, "invalid_spec"},
		{"/v1/sweeps", `{"prefetcher":"psychic"}`, "invalid_spec"},
		{"/v1/sweeps", `{"transfers":[0]}`, "invalid_spec"},
	}
	for _, c := range cases {
		req := httptest.NewRequest("POST", c.path, strings.NewReader(c.body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s %s: code %d, want 400", c.path, c.body, w.Code)
			continue
		}
		var resp struct {
			Error APIError `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Error.Code != c.code {
			t.Errorf("%s %s: error %+v (decode %v), want code %s", c.path, c.body, resp.Error, err, c.code)
		}
	}
}

// TestUnknownIDAndKindMismatch: missing ids are 404, and a run id is not
// addressable under /v1/sweeps (the registries are kind-checked).
func TestUnknownIDAndKindMismatch(t *testing.T) {
	_, h := testServer(t, Options{Workers: 1})
	var r JobResource
	do(t, h, "POST", "/v1/runs?wait=1", "", tinyRun(), &r)
	for _, path := range []string{"/v1/runs/run-999", "/v1/sweeps/" + r.ID, "/v1/sweeps/" + r.ID + "/events"} {
		if w := do(t, h, "GET", path, "", nil, nil); w.Code != http.StatusNotFound {
			t.Errorf("GET %s: code %d, want 404", path, w.Code)
		}
	}
}

// blockingJob builds a job whose compute parks until release is closed —
// the deterministic way to fill queues and exercise drain.
func blockingJob(id, tenant string, release <-chan struct{}) *Job {
	return newJob(id, "run", tenant, json.RawMessage(`{}`), "key-"+id,
		func(ctx context.Context, j *Job) ([]byte, bool, error) {
			select {
			case <-release:
				return []byte(`{"ok":true}`), false, nil
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		})
}

// TestBackpressure pins the 429 contract: a tenant at its queue depth is
// rejected with queue_full and a Retry-After, while another tenant is still
// admitted (per-tenant isolation); capacity freed by a completing job is
// usable again.
func TestBackpressure(t *testing.T) {
	s, _ := testServer(t, Options{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	submit := func(id, tenant string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		r := httptest.NewRequest("POST", "/v1/runs", nil)
		j := blockingJob(id, tenant, release)
		s.mu.Lock()
		s.jobs[j.id] = j
		s.mu.Unlock()
		s.submit(w, r, j)
		return w
	}
	if w := submit("j1", "alice"); w.Code != http.StatusAccepted {
		t.Fatalf("j1: %d", w.Code)
	}
	if w := submit("j2", "alice"); w.Code != http.StatusAccepted {
		t.Fatalf("j2: %d", w.Code)
	}
	w := submit("j3", "alice")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("j3: code %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var resp struct {
		Error APIError `json:"error"`
	}
	if json.Unmarshal(w.Body.Bytes(), &resp) != nil || resp.Error.Code != "queue_full" {
		t.Errorf("429 body = %s, want queue_full", w.Body.String())
	}
	// Another tenant still has its own budget.
	if w := submit("j4", "bob"); w.Code != http.StatusAccepted {
		t.Errorf("bob's submit: code %d, want 202 despite alice's full queue", w.Code)
	}
	close(release)
	for _, id := range []string{"j1", "j2", "j4"} {
		j, _ := s.job(id, "run")
		<-j.Done()
	}
	// alice's queue drained; a new submission is admitted again.
	release2 := make(chan struct{})
	close(release2)
	w = submit("j5", "alice")
	if w.Code != http.StatusAccepted {
		t.Errorf("post-drain submit: code %d, want 202", w.Code)
	}
}

// TestEventStream reads a completed run's NDJSON feed and checks the
// lifecycle shape: contiguous seqs from 1, "queued" first, terminal "done"
// last.
func TestEventStream(t *testing.T) {
	_, h := testServer(t, Options{Workers: 1})
	var r JobResource
	do(t, h, "POST", "/v1/runs?wait=1", "", tinyRun(), &r)

	req := httptest.NewRequest("GET", "/v1/runs/"+r.ID+"/events", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("events: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(w.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) < 3 {
		t.Fatalf("only %d events: %+v", len(events), events)
	}
	for i, e := range events {
		if e.Seq != i+1 {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	if events[0].Event != "queued" || events[len(events)-1].Event != "done" {
		t.Errorf("lifecycle = %q .. %q, want queued .. done", events[0].Event, events[len(events)-1].Event)
	}
}

// TestIntrospectionEndpoints sanity-checks /v1/version, /v1/healthz,
// /v1/stats and /v1/meta shapes.
func TestIntrospectionEndpoints(t *testing.T) {
	_, h := testServer(t, Options{Workers: 1, Shards: 3})
	var ver struct{ Version, Revision string }
	if w := do(t, h, "GET", "/v1/version", "", nil, &ver); w.Code != http.StatusOK || ver.Version == "" || ver.Revision == "" {
		t.Errorf("version: %d %+v", w.Code, ver)
	}
	var hz struct{ Status string }
	if w := do(t, h, "GET", "/v1/healthz", "", nil, &hz); w.Code != http.StatusOK || hz.Status != "ok" {
		t.Errorf("healthz: %d %+v", w.Code, hz)
	}
	var meta struct {
		Workloads  []map[string]any `json:"workloads"`
		Strategies []string         `json:"strategies"`
		Sections   []string         `json:"sections"`
		Transfers  []int            `json:"transfers"`
		Shards     int              `json:"shards"`
	}
	do(t, h, "GET", "/v1/meta", "", nil, &meta)
	if len(meta.Workloads) != 5 || len(meta.Strategies) != 5 || len(meta.Sections) == 0 || meta.Shards != 3 {
		t.Errorf("meta = %+v", meta)
	}
	var stats statsResponse
	do(t, h, "GET", "/v1/stats", "", nil, &stats)
	if stats.Queue.Depth == 0 {
		t.Errorf("stats = %+v, want a real queue depth", stats)
	}
}

// TestFailedJobCarriesClassifiedError: a run against a nonexistent workload
// fails at compute time; the resource reports status failed with the
// runner.Classify taxonomy attached, and resubmission gets the memoized
// failure (still classified) without recomputation.
func TestFailedJobCarriesClassifiedError(t *testing.T) {
	_, h := testServer(t, Options{Workers: 1})
	req := RunRequest{Workload: "no-such-program", Scale: 0.02}
	var r JobResource
	if w := do(t, h, "POST", "/v1/runs?wait=1", "", req, &r); w.Code != http.StatusOK {
		t.Fatalf("submit: %d %s", w.Code, w.Body.String())
	}
	if r.Status != StatusFailed || r.Error == nil {
		t.Fatalf("resource = %+v, want failed with error", r)
	}
	if r.Error.Code != "compute_failed" || r.Error.Class != "terminal" {
		t.Errorf("error = %+v, want terminal compute_failed", r.Error)
	}
	var again JobResource
	do(t, h, "POST", "/v1/runs?wait=1", "", req, &again)
	if again.Status != StatusFailed || again.Error == nil || again.Error.Class != "terminal" {
		t.Errorf("resubmitted failure = %+v, want the memoized terminal error", again)
	}
}

// TestRoundRobinFairness: with one worker and two tenants, a burst from one
// tenant does not starve the other — completion order alternates between
// tenants rather than finishing the burst first.
func TestRoundRobinFairness(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sched := newScheduler(ctx, 1, 16)
	var mu orderLog
	mk := func(id, tenant string) *Job {
		return newJob(id, "run", tenant, nil, id, func(ctx context.Context, j *Job) ([]byte, bool, error) {
			mu.append(tenant)
			return []byte("{}"), false, nil
		})
	}
	// Gate the worker with a blocker so the queues fill before any order is
	// observable.
	release := make(chan struct{})
	gate := blockingJob("gate", "zz-gate", release)
	if err := sched.submit(gate); err != nil {
		t.Fatal(err)
	}
	jobs := []*Job{
		mk("a1", "alice"), mk("a2", "alice"), mk("a3", "alice"),
		mk("b1", "bob"),
	}
	for _, j := range jobs {
		if err := sched.submit(j); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	for _, j := range jobs {
		<-j.Done()
	}
	order := mu.get()
	// bob's single job must not run last: round-robin interleaves it among
	// alice's three.
	if order[len(order)-1] == "bob" {
		t.Errorf("completion order %v starves bob", order)
	}
}

// orderLog is a tiny mutex-guarded string log.
type orderLog struct {
	mu  sync.Mutex
	log []string
}

func (s *orderLog) append(v string) {
	s.mu.Lock()
	s.log = append(s.log, v)
	s.mu.Unlock()
}

func (s *orderLog) get() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.log...)
}

// TestTerminalJobRetentionCap: the job registry does not grow without
// bound — past Options.JobRetention, the oldest-finished job resources are
// evicted (404), while newer ones stay addressable. The evicted results are
// still reproducible: resubmitting the spec hits the result store.
func TestTerminalJobRetentionCap(t *testing.T) {
	s, h := testServer(t, Options{Workers: 1, JobRetention: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		req := tinyRun()
		req.Seed = int64(i + 1) // distinct specs: three real computations
		var r JobResource
		if w := do(t, h, "POST", "/v1/runs?wait=1", "", req, &r); w.Code != http.StatusOK {
			t.Fatalf("submit %d: %d %s", i, w.Code, w.Body.String())
		}
		ids = append(ids, r.ID)
	}
	// retire() runs asynchronously after the terminal state; poll for it.
	waitFor(t, func() bool {
		return do(t, h, "GET", "/v1/runs/"+ids[0], "", nil, nil).Code == http.StatusNotFound
	})
	for _, id := range ids[1:] {
		if w := do(t, h, "GET", "/v1/runs/"+id, "", nil, nil); w.Code != http.StatusOK {
			t.Errorf("GET %s after eviction of older job: %d, want 200", id, w.Code)
		}
	}
	// The evicted job's result is still one cache hit away.
	req := tinyRun()
	req.Seed = 1
	var again JobResource
	do(t, h, "POST", "/v1/runs?wait=1", "", req, &again)
	if again.Status != StatusDone || !again.Cached {
		t.Errorf("evicted spec resubmitted = status %s cached %v, want cached done", again.Status, again.Cached)
	}
	if st := s.results.Stats(); st.Misses != 3 || st.Hits != 1 {
		t.Errorf("result-store stats = %+v, want 3 misses + 1 hit", st)
	}
}

// TestDegradedSweepNotCached: a sweep whose cells exhaust their
// timeout/retry budget is tolerated — the report annotates the failures and
// the submitter gets it — but the degraded payload must not enter the
// result store, or the incomplete report would be served for that spec
// forever (even after a restart with a bigger -timeout). Resubmission
// recomputes instead of hitting.
func TestDegradedSweepNotCached(t *testing.T) {
	// A 1ns per-cell budget fails every cell retryably, instantly.
	s, h := testServer(t, Options{Workers: 1, Timeout: time.Nanosecond})
	req := SweepRequest{Scale: 0.02, Transfers: []int{8}, Sections: []string{"table2"}}
	var first JobResource
	if w := do(t, h, "POST", "/v1/sweeps?wait=1", "", req, &first); w.Code != http.StatusOK {
		t.Fatalf("submit: %d %s", w.Code, w.Body.String())
	}
	if first.Status != StatusDone || first.Cached {
		t.Fatalf("first = status %s cached %v (error %+v), want uncached done", first.Status, first.Cached, first.Error)
	}
	var res SweepResult
	if err := json.Unmarshal(first.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.FailedCells) == 0 {
		t.Fatal("budget of 1ns produced no failed cells; the test premise is broken")
	}

	var second JobResource
	do(t, h, "POST", "/v1/sweeps?wait=1", "", req, &second)
	if second.Status != StatusDone || second.Cached {
		t.Errorf("degraded sweep resubmitted = status %s cached %v, want a fresh recompute", second.Status, second.Cached)
	}
	if st := s.results.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Errorf("result-store stats = %+v, want 2 misses + 0 hits (degraded results evicted)", st)
	}
}
