package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"busprefetch"
	"busprefetch/internal/buildinfo"
	"busprefetch/internal/coherence"
	"busprefetch/internal/experiments"
	"busprefetch/internal/interconnect"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/runner"
)

// SweepRequest is the body of POST /v1/sweeps: the sweep-shaping subset of
// experiments.Config (names, not parsed kinds — the handler validates and
// canonicalizes), plus which report sections to render. It is exactly the
// parameter surface of cmd/mkfigures, so a sweep served over HTTP and a
// sweep run from the command line are the same computation.
type SweepRequest struct {
	// Scale multiplies trace lengths (0 = 1.0). Seed seeds the workload
	// generators (0 = 1). MemLatency is the total memory latency (0 = the
	// paper's 100).
	Scale      float64 `json:"scale,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	MemLatency int     `json:"mem_latency,omitempty"`
	// Transfers is the data-transfer sweep; empty selects the paper's
	// {4, 8, 16, 24, 32}.
	Transfers []int `json:"transfers,omitempty"`
	// Protocol, Prefetcher, Interconnect, Buses and Discipline shape the
	// machine every grid cell simulates, with the same names and defaults as
	// the mkfigures flags of the same name.
	Protocol     string `json:"protocol,omitempty"`
	Prefetcher   string `json:"prefetcher,omitempty"`
	Interconnect string `json:"interconnect,omitempty"`
	Buses        int    `json:"buses,omitempty"`
	Discipline   string `json:"discipline,omitempty"`
	// Sections selects which report sections to render (mkfigures -only,
	// but plural); empty renders the full report. Invalid names are a 400.
	Sections []string `json:"sections,omitempty"`
	// Metrics additionally runs the observability slice and attaches a
	// busprefetch-metrics/v1 report (mkfigures -metrics-out).
	Metrics bool `json:"metrics,omitempty"`
}

// sweepPlan is a validated SweepRequest: the suite configuration plus the
// canonical section list.
type sweepPlan struct {
	cfg      experiments.Config
	sections []string // canonical order; empty means all
	metrics  bool
}

func (p sweepPlan) want(name string) bool {
	if len(p.sections) == 0 {
		return true
	}
	for _, s := range p.sections {
		if strings.EqualFold(s, name) {
			return true
		}
	}
	return false
}

// planSweep validates a request into a sweepPlan, defaulting names the way
// mkfigures defaults its flags. Every validation failure is a 400 naming the
// offending field.
func planSweep(req SweepRequest, opts Options) (sweepPlan, error) {
	if req.Protocol == "" {
		req.Protocol = "illinois"
	}
	proto, err := coherence.Parse(req.Protocol)
	if err != nil {
		return sweepPlan{}, err
	}
	if req.Prefetcher == "" {
		req.Prefetcher = "oracle"
	}
	pf, err := prefetch.ParsePrefetcher(req.Prefetcher)
	if err != nil {
		return sweepPlan{}, err
	}
	if req.Interconnect == "" {
		req.Interconnect = "bus"
	}
	if req.Discipline == "" {
		req.Discipline = "priority"
	}
	ic, err := interconnect.ParseConfig(req.Interconnect, req.Buses, req.Discipline)
	if err != nil {
		return sweepPlan{}, err
	}
	if req.Scale < 0 {
		return sweepPlan{}, fmt.Errorf("scale must be non-negative, got %g", req.Scale)
	}
	for _, t := range req.Transfers {
		if t <= 0 {
			return sweepPlan{}, fmt.Errorf("transfers must be positive, got %d", t)
		}
	}
	for _, s := range req.Sections {
		if !experiments.ValidSection(s) {
			return sweepPlan{}, fmt.Errorf("unknown section %q (valid: %s)",
				s, strings.Join(experiments.SectionNames(), ", "))
		}
	}
	// Canonicalize the section list into presentation order so two requests
	// naming the same sections in different orders (or cases) share a key.
	var sections []string
	if len(req.Sections) > 0 {
		for _, name := range experiments.SectionNames() {
			for _, s := range req.Sections {
				if strings.EqualFold(s, name) {
					sections = append(sections, name)
					break
				}
			}
		}
	}
	return sweepPlan{
		cfg: experiments.Config{
			Scale:        req.Scale,
			Seed:         req.Seed,
			MemLatency:   req.MemLatency,
			Transfers:    req.Transfers,
			Protocol:     proto,
			Prefetcher:   pf,
			Interconnect: ic,
			Parallelism:  opts.Shards,
			Timeout:      opts.Timeout,
			Retries:      opts.Retries,
			Checkpoints:  opts.Checkpoints,
		},
		sections: sections,
		metrics:  req.Metrics,
	}, nil
}

// key is the sweep's content-addressed result-store key. It extends the
// suite's canonical spec string (which already embeds the build revision)
// with the per-request fields the cell keys ignore: the transfer sweep and
// the rendered section list. Scheduling knobs — shards, timeout, retries —
// are deliberately absent. Shards never change the bytes (pinned by the
// determinism goldens); timeout and retries can — a cell that exhausts its
// budget is tolerated and annotated in the report — but such a degraded
// result is never cached (computeSweep flags it non-cacheable), so every
// payload stored under this key is the complete, budget-independent report.
func (p sweepPlan) key() string {
	cfg := p.cfg
	sections := p.sections
	if len(sections) == 0 {
		sections = []string{"all"}
	}
	return fmt.Sprintf("busprefetch-sweep/v1|%s|transfers=%v|sections=%s|metrics=%t",
		cfg.SpecString(), experiments.NewSuite(cfg).Config().Transfers,
		strings.Join(sections, ","), p.metrics)
}

// SweepResult is the payload of a completed sweep job (the "result" field of
// its resource). Report is byte-for-byte what mkfigures prints to stdout for
// the same configuration and sections. Bench is the computation's
// busprefetch-bench/v1 report, recorded when the sweep actually ran — a
// cached re-serve returns the original run's trajectory. Metrics (when
// requested) is the busprefetch-metrics/v1 observability report.
// FailedCells names any cells that failed after retries; the report
// annotates them in place, mkfigures-style, rather than failing the sweep.
// A result carrying FailedCells is served to its submitter but never enters
// the result store, so a resubmission (perhaps under a bigger -timeout /
// -retries budget) recomputes the full report.
type SweepResult struct {
	Report      string                `json:"report"`
	Bench       *runner.BenchReport   `json:"bench,omitempty"`
	Metrics     *runner.MetricsReport `json:"metrics,omitempty"`
	FailedCells []runner.CellFailure  `json:"failed_cells,omitempty"`
}

// computeSweep runs one sweep exactly the way cmd/mkfigures does — Prewarm
// the needed cells on the suite's pool (progress streamed into the job's
// events), tolerate per-cell failures, render in canonical order — and
// returns the canonical result JSON. The report field is RenderSections'
// output plus the trailing newline Fprintln adds, so it is byte-identical to
// mkfigures stdout.
//
// cacheable is false when any cell failed: the degraded report is still a
// valid answer for the submitting client, but memoizing it would serve an
// incomplete sweep forever even after a restart with a bigger
// timeout/retry budget, so the result store drops it and a resubmission
// recomputes.
func computeSweep(ctx context.Context, j *Job, p sweepPlan) (payload []byte, cacheable bool, err error) {
	suite := experiments.NewSuite(p.cfg)
	start := time.Now()
	keys := suite.KeysFor(p.want)
	var cellErrs *experiments.CellErrors
	if err := suite.Prewarm(ctx, keys, j.progress); err != nil {
		if !errors.As(err, &cellErrs) {
			return nil, false, err
		}
	}
	text, err := suite.RenderSections(ctx, p.want)
	if err != nil {
		return nil, false, err
	}
	result := SweepResult{Report: text + "\n", Bench: suite.Bench(time.Since(start))}
	if p.metrics {
		cells, err := suite.Observability(ctx, nil)
		if err != nil {
			return nil, false, err
		}
		cfg := suite.Config()
		result.Metrics = runner.NewMetricsReport(cfg.Scale, cfg.Seed, experiments.MetricsCells(cells))
		if cellErrs != nil {
			result.Metrics.SetErrors(cellErrs.Failures())
		}
	}
	if cellErrs != nil {
		result.FailedCells = cellErrs.Failures()
	}
	payload, err = json.Marshal(result)
	return payload, cellErrs == nil, err
}

// RunResult is the payload of a completed run job.
type RunResult struct {
	Metrics *busprefetch.Metrics `json:"metrics"`
}

// runKey is the run's content-addressed result-store key: the build revision
// plus the spec's canonical string (which covers every result-determining
// field).
func runKey(spec busprefetch.RunSpec) (string, error) {
	s, err := spec.SpecString()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("busprefetch-run/v1|build=%s|%s", buildinfo.Revision(), s), nil
}

// computeRun executes one RunSpec and returns the canonical result JSON.
// A successful run is always cacheable: it is the complete answer for its
// spec at any scheduling budget.
func computeRun(ctx context.Context, spec busprefetch.RunSpec) (payload []byte, cacheable bool, err error) {
	m, err := busprefetch.RunContext(ctx, spec)
	if err != nil {
		return nil, false, err
	}
	payload, err = json.Marshal(RunResult{Metrics: m})
	return payload, true, err
}
