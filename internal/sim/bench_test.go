package sim_test

import (
	"reflect"
	"testing"

	"busprefetch/internal/bus"
	"busprefetch/internal/interconnect"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/sim"
	"busprefetch/internal/trace"
	"busprefetch/internal/workload"
)

// BenchmarkFullCell is the kernel's headline microbenchmark: one full
// experiment cell (mp3d, PREF annotation, 8-cycle transfer) simulated end to
// end, the unit of work every table and figure of the paper is assembled
// from. The perf CI job gates on this benchmark regressing more than 10%
// against bench/baseline.txt, and PERFORMANCE.md records its trajectory.
//
// The benchmark body is benchCell, a plain function; TestFullCellBodyMatchesSim
// asserts in normal `go test` mode that it returns a Result byte-identical to
// the non-benchmark path, so the benchmarked cell can never drift from the
// simulated semantics.

// benchCellTrace generates the benchmark cell's annotated trace: the mp3d
// workload at scale 0.2, seed 1, annotated with the PREF discipline.
func benchCellTrace(tb testing.TB) (*trace.Trace, sim.Config) {
	tb.Helper()
	w, err := workload.ByName("mp3d")
	if err != nil {
		tb.Fatal(err)
	}
	base, _, err := w.Generate(workload.Params{Scale: 0.2, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.TransferCycles = 8
	tr, err := prefetch.Annotate(base, prefetch.Options{Strategy: prefetch.PREF, Geometry: cfg.Geometry})
	if err != nil {
		tb.Fatal(err)
	}
	return tr, cfg
}

func BenchmarkFullCell(b *testing.B) {
	tr, cfg := benchCellTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cycles == 0 {
			b.Fatal("empty simulation")
		}
	}
	b.ReportMetric(float64(tr.Events()*b.N)/b.Elapsed().Seconds(), "events/s")
}

// TestFullCellBodyMatchesSim runs the benchmark body once under normal `go
// test` and asserts its Result is identical to the non-benchmark path — a
// fresh sim.Run on an independently generated trace of the same cell. Any
// drift between what BenchmarkFullCell times and what the experiment suite
// simulates fails here, not in a timing report.
func TestFullCellBodyMatchesSim(t *testing.T) {
	tr, cfg := benchCellTrace(t)
	bench, err := sim.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	tr2, cfg2 := benchCellTrace(t)
	direct, err := sim.Run(cfg2, tr2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bench, direct) {
		t.Errorf("benchmark-path Result differs from non-benchmark path:\nbench:  %+v\ndirect: %+v", bench, direct)
	}
}

// benchCellSource plans the benchmark cell as a fused streaming pipeline:
// the mp3d generator feeding the PREF oracle annotator, no materialized
// trace anywhere.
func benchCellSource(tb testing.TB) (trace.Source, sim.Config) {
	tb.Helper()
	w, err := workload.ByName("mp3d")
	if err != nil {
		tb.Fatal(err)
	}
	src, _, err := w.Source(workload.Params{Scale: 0.2, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.TransferCycles = 8
	annotated, err := prefetch.AnnotateSource(src, prefetch.Options{Strategy: prefetch.PREF, Geometry: cfg.Geometry}, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return annotated, cfg
}

// drainCell drains every processor stream of src to completion, returning
// the total event count — the generate→annotate hot path with no simulator
// behind it, which is what the streaming seam itself costs.
func drainCell(b *testing.B, src trace.Source) int {
	events := 0
	for p := 0; p < src.Procs(); p++ {
		it := src.Events(p)
		for {
			chunk, err := it.Next()
			if err != nil {
				b.Fatal(err)
			}
			if chunk == nil {
				break
			}
			events += len(chunk)
		}
		it.Close()
	}
	return events
}

// BenchmarkStreamingCell times the fused generate-into-annotate hot path of
// the benchmark cell: workload events flow from the mp3d generator through
// the PREF oracle annotator in pooled fixed-size chunks and are drained at
// the simulator's seam. This is the producer side every streamed simulation
// rides on; the perf CI job gates on it regressing more than 10% against
// bench/baseline.txt.
func BenchmarkStreamingCell(b *testing.B) {
	src, _ := benchCellSource(b)
	events := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events += drainCell(b, src)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkMaterializedCell times the pre-fusion producer path of the same
// cell for comparison: materialize the whole workload trace, then annotate
// it into a second materialized trace — what every trace-cache miss paid
// before the streaming seam, and the "before" column of PERFORMANCE.md's
// fusion table. Not gated in CI; it exists so the streamed/materialized
// producer comparison stays reproducible with one command.
func BenchmarkMaterializedCell(b *testing.B) {
	w, err := workload.ByName("mp3d")
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	events := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base, _, err := w.Generate(workload.Params{Scale: 0.2, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		tr, err := prefetch.Annotate(base, prefetch.Options{Strategy: prefetch.PREF, Geometry: cfg.Geometry})
		if err != nil {
			b.Fatal(err)
		}
		events += tr.Events()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// TestStreamingCellBodyMatchesSim is BenchmarkStreamingCell's semantic
// anchor: the streamed cell, simulated, produces a Result byte-identical to
// the materialized benchmark cell, so the benchmark can never time a
// pipeline that drifts from what the experiments run.
func TestStreamingCellBodyMatchesSim(t *testing.T) {
	src, cfg := benchCellSource(t)
	streamed, err := sim.RunSource(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	tr, cfg2 := benchCellTrace(t)
	direct, err := sim.Run(cfg2, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, direct) {
		t.Errorf("streamed Result differs from materialized path:\nstream: %+v\ndirect: %+v", streamed, direct)
	}
}

// BenchmarkInterconnectOverhead times the same full cell across the fabric
// ladder. The bus variant is the seam-overhead check: it simulates exactly
// what BenchmarkFullCell simulates, but spelled through the Interconnect
// configuration, so the perf CI job can gate the abstraction's cost on the
// single-bus path (the paper-baseline configuration every other benchmark
// and golden runs through).
func BenchmarkInterconnectOverhead(b *testing.B) {
	for _, v := range []struct {
		name string
		ic   interconnect.Config
	}{
		{"bus", interconnect.Config{}},
		{"fcfs", interconnect.Config{Discipline: bus.FCFS}},
		{"dual", interconnect.Config{Kind: interconnect.MultiBus, Links: 2}},
		{"quad", interconnect.Config{Kind: interconnect.MultiBus, Links: 4}},
		{"directory", interconnect.Config{Kind: interconnect.Directory}},
	} {
		b.Run(v.name, func(b *testing.B) {
			tr, cfg := benchCellTrace(b)
			cfg.Interconnect = v.ic
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(cfg, tr)
				if err != nil {
					b.Fatal(err)
				}
				if res.Cycles == 0 {
					b.Fatal("empty simulation")
				}
			}
			b.ReportMetric(float64(tr.Events()*b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
