// Package sim is this repository's analogue of Charlie, the multiprocessor
// cache simulator used in the paper (§3.3). It replays a multiprocessor
// address trace through per-processor snooping caches connected by the
// contended memory resource of internal/bus, while enforcing a legal
// interleaving of lock and barrier synchronization. The coherence state
// machine itself — fill states, write-hit actions, snoop responses, legality
// — is supplied by a pluggable internal/coherence.Protocol (Illinois by
// default; MSI and Dragon write-update as ablations).
//
// Modeled behaviour, following the paper:
//
//   - CPUs execute one cycle per instruction plus one cycle per data access
//     that hits; demand misses block the CPU (blocking loads).
//   - Caches are lockup-free for prefetches: a 16-deep prefetch issue buffer
//     lets the CPU continue past outstanding prefetches, stalling only when
//     the buffer is full.
//   - The 100-cycle memory latency splits into an uncontended portion and a
//     contended data-transfer portion of 4-32 cycles; bus arbitration is
//     round-robin and favors blocking loads over prefetches.
//   - A demand access to a line whose prefetch is still in flight merges with
//     it and stalls for the residual latency (a prefetch-in-progress miss).
//   - Every CPU miss is classified for the paper's Figure 3 taxonomy:
//     {non-sharing, invalidation} x {prefetched, not prefetched} plus
//     prefetch-in-progress, with invalidation misses further tested for
//     false sharing.
package sim
