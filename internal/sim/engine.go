package sim

import "container/heap"

// event is a scheduled callback on the simulation's time line.
type event struct {
	t   uint64
	seq uint64
	fn  func(now uint64)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// engine is a deterministic discrete-event scheduler. Same-time events run in
// scheduling order, which makes whole simulations reproducible bit for bit.
type engine struct {
	h   eventHeap
	now uint64
	seq uint64
}

// At implements bus.Scheduler.
func (e *engine) At(t uint64, fn func(now uint64)) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.h, event{t: t, seq: e.seq, fn: fn})
}

// run drains the event queue. When watch is non-nil it runs before every
// event dispatch; a non-nil error from it aborts the run immediately —
// remaining events are discarded — and is returned. The simulator uses this
// hook for its progress watchdog and for first-error abort.
func (e *engine) run(watch func(now uint64) error) error {
	for e.h.Len() > 0 {
		ev := heap.Pop(&e.h).(event)
		e.now = ev.t
		if watch != nil {
			if err := watch(ev.t); err != nil {
				e.h = e.h[:0]
				return err
			}
		}
		ev.fn(ev.t)
	}
	return nil
}
