package sim

// event is a scheduled callback on the simulation's time line.
type event struct {
	t   uint64
	seq uint64
	fn  func(now uint64)
}

// engine is a deterministic discrete-event scheduler. Same-time events run in
// scheduling order, which makes whole simulations reproducible bit for bit.
//
// The queue is a hand-rolled binary min-heap over a typed slice rather than
// container/heap: the standard library's interface{}-based API boxes every
// pushed event into a heap allocation, and the push/pop pair runs once per
// simulated bus transaction and processor resumption — the kernel's hottest
// allocation site before the heap was typed.
type engine struct {
	h   []event
	now uint64
	seq uint64
}

// At implements bus.Scheduler.
func (e *engine) At(t uint64, fn func(now uint64)) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.h = append(e.h, event{t: t, seq: e.seq, fn: fn})
	e.up(len(e.h) - 1)
}

func (e *engine) less(i, j int) bool {
	if e.h[i].t != e.h[j].t {
		return e.h[i].t < e.h[j].t
	}
	return e.h[i].seq < e.h[j].seq
}

func (e *engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.h[i], e.h[parent] = e.h[parent], e.h[i]
		i = parent
	}
}

func (e *engine) down(i int) {
	n := len(e.h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		next := l
		if r := l + 1; r < n && e.less(r, l) {
			next = r
		}
		if !e.less(next, i) {
			break
		}
		e.h[i], e.h[next] = e.h[next], e.h[i]
		i = next
	}
}

// pop removes and returns the earliest event. The vacated tail slot is
// zeroed so the heap does not pin the popped closure for the GC.
func (e *engine) pop() event {
	top := e.h[0]
	n := len(e.h) - 1
	e.h[0] = e.h[n]
	e.h[n] = event{}
	e.h = e.h[:n]
	if n > 0 {
		e.down(0)
	}
	return top
}

// run drains the event queue. When watch is non-nil it runs before every
// event dispatch; a non-nil error from it aborts the run immediately —
// remaining events are discarded — and is returned. The simulator uses this
// hook for its progress watchdog and for first-error abort.
func (e *engine) run(watch func(now uint64) error) error {
	for len(e.h) > 0 {
		ev := e.pop()
		e.now = ev.t
		if watch != nil {
			if err := watch(ev.t); err != nil {
				e.h = e.h[:0]
				return err
			}
		}
		ev.fn(ev.t)
	}
	return nil
}
