package sim_test

import (
	"testing"

	"busprefetch/internal/memory"
	"busprefetch/internal/sim"
	"busprefetch/internal/trace"
	"busprefetch/internal/workload"
)

// --- MSI protocol ---

func TestMSIReadFillsShared(t *testing.T) {
	c := cfg()
	c.Protocol = sim.MSI
	// Under MSI a sole read fills Shared, so the following write costs an
	// invalidation bus operation — unlike Illinois (see
	// TestSiloWriteGetsExclusiveSilently).
	res := run(t, c, trace.Stream{
		{Kind: trace.Read, Addr: 0x1000},
		{Kind: trace.Write, Addr: 0x1000},
	})
	if got := res.Bus.Ops[1]; got != 1 { // OpInvalidate
		t.Errorf("invalidation ops = %d, want 1 under MSI", got)
	}
}

func TestMSICostsMoreThanIllinois(t *testing.T) {
	// A read-then-write pattern over many private lines: free under
	// Illinois, one upgrade per line under MSI.
	var s trace.Stream
	for i := 0; i < 50; i++ {
		a := memory.Addr(0x1000 + i*64)
		s = append(s, trace.Event{Kind: trace.Read, Addr: a, Gap: 3})
		s = append(s, trace.Event{Kind: trace.Write, Addr: a, Gap: 3})
	}
	illinois := run(t, cfg(), s)
	c := cfg()
	c.Protocol = sim.MSI
	msi := run(t, c, s)
	if msi.Cycles <= illinois.Cycles {
		t.Errorf("MSI (%d cycles) not slower than Illinois (%d)", msi.Cycles, illinois.Cycles)
	}
	if msi.Bus.Ops[1] != 50 {
		t.Errorf("MSI upgrades = %d, want 50", msi.Bus.Ops[1])
	}
	if illinois.Bus.Ops[1] != 0 {
		t.Errorf("Illinois upgrades = %d, want 0", illinois.Bus.Ops[1])
	}
}

func TestMSIInvariantsHold(t *testing.T) {
	c := cfg()
	c.Protocol = sim.MSI
	c.CheckInvariants = true
	res := run(t, c,
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000},
			{Kind: trace.Write, Addr: 0x1000, Gap: 300},
			{Kind: trace.Read, Addr: 0x1000, Gap: 300},
		},
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000, Gap: 150},
			{Kind: trace.Write, Addr: 0x1010, Gap: 600},
		},
	)
	if res.Cycles == 0 {
		t.Fatal("no progress")
	}
}

// --- Dragon write-update protocol ---

func TestDragonWriteToSharedBroadcastsUpdate(t *testing.T) {
	c := cfg()
	c.Protocol = sim.Dragon
	// Both processors read the line; proc 0 then writes it. Under Dragon the
	// write broadcasts a word update instead of invalidating, so proc 1's
	// copy stays valid and its second read hits.
	res := run(t, c,
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000},
			{Kind: trace.Write, Addr: 0x1000, Gap: 300},
		},
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000, Gap: 150},
			{Kind: trace.Read, Addr: 0x1000, Gap: 600},
		},
	)
	if got := res.Bus.Ops[3]; got != 1 { // OpUpdate
		t.Errorf("update ops = %d, want 1", got)
	}
	if got := res.Bus.Ops[1]; got != 0 { // OpInvalidate
		t.Errorf("invalidation ops = %d, want 0 under Dragon", got)
	}
	if res.Counters.UpdatesSent != 1 || res.Counters.UpdatesReceived != 1 {
		t.Errorf("updates sent/received = %d/%d, want 1/1",
			res.Counters.UpdatesSent, res.Counters.UpdatesReceived)
	}
	if got := res.Counters.InvalidationMisses(); got != 0 {
		t.Errorf("invalidation misses = %d, want 0 under Dragon", got)
	}
	// Proc 1's reread was kept current by the update: one cold miss each, no
	// third fetch.
	if got := res.Bus.Ops[0]; got != 2 { // OpFill
		t.Errorf("fills = %d, want 2", got)
	}
}

func TestDragonTradesInvalidationMissesForBusOccupancy(t *testing.T) {
	// A ping-pong write-sharing pattern: alternating writes to one line.
	// Illinois turns every remote write into an invalidation miss; Dragon
	// eliminates them entirely but pays a broadcast per write to a line that
	// stays shared.
	mk := func(gap0 uint32) trace.Stream {
		var s trace.Stream
		for i := 0; i < 40; i++ {
			s = append(s, trace.Event{Kind: trace.Write, Addr: 0x2000, Gap: 120})
		}
		s[0].Gap = gap0
		return s
	}
	illinois := run(t, cfg(), mk(0), mk(60))
	c := cfg()
	c.Protocol = sim.Dragon
	dragon := run(t, c, mk(0), mk(60))
	if got := illinois.Counters.InvalidationMisses(); got == 0 {
		t.Fatal("pattern produced no invalidation misses under Illinois")
	}
	if got := dragon.Counters.InvalidationMisses(); got != 0 {
		t.Errorf("invalidation misses = %d, want 0 under Dragon", got)
	}
	if dragon.Counters.UpdatesSent == 0 {
		t.Error("Dragon sent no updates on a write-sharing pattern")
	}
}

func TestDragonLoneWriterStopsUpdating(t *testing.T) {
	c := cfg()
	c.Protocol = sim.Dragon
	// Proc 1 reads the line, then displaces it with a conflicting read (same
	// cache set, one cache-size apart). Proc 0's first write broadcasts an
	// update, finds no remaining sharer, and takes the line exclusive; the
	// second write is silent.
	res := run(t, c,
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000},
			{Kind: trace.Write, Addr: 0x1000, Gap: 500},
			{Kind: trace.Write, Addr: 0x1004, Gap: 100},
		},
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000, Gap: 120},
			{Kind: trace.Read, Addr: 0x9000, Gap: 120}, // evicts 0x1000
		},
	)
	if got := res.Bus.Ops[3]; got != 1 { // OpUpdate
		t.Errorf("update ops = %d, want 1 (second write must be silent)", got)
	}
	if res.Counters.UpdatesReceived != 0 {
		t.Errorf("updates received = %d, want 0 (no sharer left)", res.Counters.UpdatesReceived)
	}
}

func TestDragonInvariantsHold(t *testing.T) {
	c := cfg()
	c.Protocol = sim.Dragon
	c.CheckInvariants = true
	// Interleaved writes from both processors hand the update-owner (Sm)
	// role back and forth; the checker verifies single-ownership at every
	// grant under the Dragon legality rule.
	res := run(t, c,
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000},
			{Kind: trace.Write, Addr: 0x1000, Gap: 300},
			{Kind: trace.Read, Addr: 0x1010, Gap: 300},
			{Kind: trace.Write, Addr: 0x1010, Gap: 300},
		},
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000, Gap: 150},
			{Kind: trace.Write, Addr: 0x1010, Gap: 450},
			{Kind: trace.Write, Addr: 0x1000, Gap: 300},
		},
	)
	if res.Cycles == 0 {
		t.Fatal("no progress")
	}
}

// --- Victim cache ---

func TestVictimCacheCatchesConflicts(t *testing.T) {
	// Two lines in the same set of a tiny direct-mapped cache, accessed
	// alternately: pure conflict misses without a victim cache, all victim
	// hits with one.
	g := memory.Geometry{CacheSize: 4 * 32, LineSize: 32, Assoc: 1}
	var s trace.Stream
	for i := 0; i < 20; i++ {
		s = append(s, trace.Event{Kind: trace.Read, Addr: 0, Gap: 2})
		s = append(s, trace.Event{Kind: trace.Read, Addr: 4 * 32, Gap: 2})
	}
	plain := cfg()
	plain.Geometry = g
	base := run(t, plain, s)

	withVictim := cfg()
	withVictim.Geometry = g
	withVictim.VictimCacheLines = 4
	vc := run(t, withVictim, s)

	if vc.Counters.VictimHits == 0 {
		t.Fatal("no victim hits on a pure conflict pattern")
	}
	if vc.Counters.TotalCPUMisses() >= base.Counters.TotalCPUMisses() {
		t.Errorf("victim cache did not reduce misses: %d vs %d",
			vc.Counters.TotalCPUMisses(), base.Counters.TotalCPUMisses())
	}
	if vc.Cycles >= base.Cycles {
		t.Errorf("victim cache did not reduce cycles: %d vs %d", vc.Cycles, base.Cycles)
	}
	if vc.Bus.TotalOps() >= base.Bus.TotalOps() {
		t.Errorf("victim hits still cost bus operations: %d vs %d",
			vc.Bus.TotalOps(), base.Bus.TotalOps())
	}
}

func TestVictimCacheIsCoherent(t *testing.T) {
	// Proc 0's line gets evicted into its victim cache; proc 1 then writes
	// the line. Proc 0's re-read must MISS (the victim copy was
	// invalidated by the snoop), not silently hit stale data.
	g := memory.Geometry{CacheSize: 2 * 32, LineSize: 32, Assoc: 1}
	c := cfg()
	c.Geometry = g
	c.VictimCacheLines = 4
	c.CheckInvariants = true
	res := run(t, c,
		trace.Stream{
			{Kind: trace.Read, Addr: 0},           // fill
			{Kind: trace.Read, Addr: 2 * 32},      // evicts line 0 into victim
			{Kind: trace.Read, Addr: 0, Gap: 600}, // after proc 1's write
		},
		trace.Stream{
			{Kind: trace.Write, Addr: 0, Gap: 250},
		},
	)
	if res.Counters.VictimHits != 0 {
		t.Errorf("victim hit on an invalidated line (%d hits)", res.Counters.VictimHits)
	}
}

func TestVictimCacheSuppliesRemoteReads(t *testing.T) {
	// A Modified line sitting in proc 0's victim cache must still be
	// snooped by proc 1's read (downgrade + sharers), keeping one-owner.
	g := memory.Geometry{CacheSize: 2 * 32, LineSize: 32, Assoc: 1}
	c := cfg()
	c.Geometry = g
	c.VictimCacheLines = 4
	c.CheckInvariants = true
	res := run(t, c,
		trace.Stream{
			{Kind: trace.Write, Addr: 0},     // M
			{Kind: trace.Read, Addr: 2 * 32}, // evict M line 0 into victim
		},
		trace.Stream{
			{Kind: trace.Read, Addr: 0, Gap: 400},
		},
	)
	if res.Cycles == 0 {
		t.Fatal("no progress")
	}
}

// --- Prefetch buffer (PrefetchToBuffer) ---

func TestBufferPrefetchHit(t *testing.T) {
	c := cfg()
	c.PrefetchTarget = sim.PrefetchToBuffer
	res := run(t, c, trace.Stream{
		{Kind: trace.Prefetch, Addr: 0x1000},
		{Kind: trace.Read, Addr: 0x1000, Gap: 200},
	})
	if res.Counters.StreamBufferHits != 1 {
		t.Errorf("buffer hits = %d, want 1", res.Counters.StreamBufferHits)
	}
	if res.Counters.TotalCPUMisses() != 0 {
		t.Errorf("CPU misses = %d, want 0", res.Counters.TotalCPUMisses())
	}
}

func TestBufferDoesNotPolluteCache(t *testing.T) {
	// Tiny cache, one set: a buffered prefetch must NOT evict the line the
	// CPU is using (the buffer's whole advantage, paper §3.1).
	g := memory.Geometry{CacheSize: 2 * 32, LineSize: 32, Assoc: 1}
	c := cfg()
	c.Geometry = g
	c.PrefetchTarget = sim.PrefetchToBuffer
	res := run(t, c, trace.Stream{
		{Kind: trace.Read, Addr: 0},               // working line
		{Kind: trace.Prefetch, Addr: 2 * 32},      // same set; buffered, no eviction
		{Kind: trace.Read, Addr: 0, Gap: 300},     // must still hit
		{Kind: trace.Read, Addr: 2 * 32, Gap: 10}, // buffer hit
	})
	if got := res.Counters.TotalCPUMisses(); got != 1 {
		t.Errorf("CPU misses = %d, want 1 (only the cold miss)", got)
	}
	if res.Counters.StreamBufferHits != 1 {
		t.Errorf("buffer hits = %d", res.Counters.StreamBufferHits)
	}
}

func TestBufferDropsRemotelyWrittenLines(t *testing.T) {
	c := cfg()
	c.PrefetchTarget = sim.PrefetchToBuffer
	res := run(t, c,
		trace.Stream{
			{Kind: trace.Prefetch, Addr: 0x1000},
			{Kind: trace.Read, Addr: 0x1000, Gap: 800},
		},
		trace.Stream{
			{Kind: trace.Write, Addr: 0x1000, Gap: 300},
		},
	)
	if res.Counters.StreamBufferDrops != 1 {
		t.Errorf("buffer drops = %d, want 1", res.Counters.StreamBufferDrops)
	}
	if res.Counters.StreamBufferHits != 0 {
		t.Errorf("buffer hits = %d, want 0 (entry was dropped)", res.Counters.StreamBufferHits)
	}
	// The read pays a full miss: the buffer could not be trusted.
	if res.Counters.TotalCPUMisses() == 0 {
		t.Error("demand access hit a dropped buffer entry")
	}
}

func TestBufferFIFOEviction(t *testing.T) {
	c := cfg()
	c.PrefetchTarget = sim.PrefetchToBuffer
	c.StreamBufferLines = 2
	var s trace.Stream
	for i := 0; i < 3; i++ { // three prefetches into a 2-line buffer
		s = append(s, trace.Event{Kind: trace.Prefetch, Addr: memory.Addr(0x1000 + i*64), Gap: 5})
	}
	s = append(s, trace.Event{Kind: trace.Read, Addr: 0x1000, Gap: 500}) // oldest: evicted
	s = append(s, trace.Event{Kind: trace.Read, Addr: 0x1080, Gap: 10})  // newest: present
	res := run(t, c, s)
	if res.Counters.StreamBufferHits != 1 {
		t.Errorf("buffer hits = %d, want 1 (FIFO evicted the oldest)", res.Counters.StreamBufferHits)
	}
}

func TestConfigValidationExtensions(t *testing.T) {
	c := cfg()
	c.VictimCacheLines = -1
	if err := c.Validate(); err == nil {
		t.Error("negative victim cache accepted")
	}
	c = cfg()
	c.Protocol = sim.Protocol(9)
	if err := c.Validate(); err == nil {
		t.Error("unknown protocol accepted")
	}
	c = cfg()
	c.PrefetchTarget = sim.PrefetchTarget(9)
	if err := c.Validate(); err == nil {
		t.Error("unknown prefetch target accepted")
	}
}

// --- Region attribution ---

func TestRegionAttribution(t *testing.T) {
	c := cfg()
	c.Regions = []memory.Region{
		{Name: "alpha", Base: 0x1000, Size: 0x1000, Shared: true},
		{Name: "beta", Base: 0x4000, Size: 0x1000, Shared: false},
	}
	res := run(t, c, trace.Stream{
		{Kind: trace.Read, Addr: 0x1000},          // alpha miss
		{Kind: trace.Read, Addr: 0x1040, Gap: 10}, // alpha miss
		{Kind: trace.Read, Addr: 0x4000, Gap: 10}, // beta miss
		{Kind: trace.Read, Addr: 0xa020, Gap: 10}, // unattributed miss (distinct set)
		{Kind: trace.Read, Addr: 0x1000, Gap: 10}, // alpha hit
	})
	if got := res.RegionMisses["alpha"].Total(); got != 2 {
		t.Errorf("alpha misses = %d, want 2", got)
	}
	if got := res.RegionMisses["beta"].Total(); got != 1 {
		t.Errorf("beta misses = %d, want 1", got)
	}
	if got := res.RegionMisses["(unattributed)"].Total(); got != 1 {
		t.Errorf("unattributed misses = %d, want 1", got)
	}
}

func TestRegionAttributionSumsToTotal(t *testing.T) {
	w, err := workload.ByName("pverify")
	if err != nil {
		t.Fatal(err)
	}
	tr, info, err := w.Generate(workload.Params{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := cfg()
	c.Regions = info.Regions
	res, err := sim.Run(c, tr)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, rm := range res.RegionMisses {
		sum += rm.Total()
	}
	if sum != res.Counters.TotalCPUMisses() {
		t.Errorf("region misses sum to %d, total is %d", sum, res.Counters.TotalCPUMisses())
	}
	// The interleaved value array must be a major miss source.
	if v := res.RegionMisses["values"]; v.Total() < res.Counters.TotalCPUMisses()/4 {
		t.Errorf("values region only %d of %d misses", v.Total(), res.Counters.TotalCPUMisses())
	}
}

func TestNoRegionsMeansNilMap(t *testing.T) {
	res := run(t, cfg(), trace.Stream{{Kind: trace.Read, Addr: 0}})
	if res.RegionMisses != nil {
		t.Error("RegionMisses non-nil without Config.Regions")
	}
}
