package sim_test

import (
	"errors"
	"testing"

	"busprefetch/internal/cache"
	"busprefetch/internal/check"
	"busprefetch/internal/sim"
	"busprefetch/internal/trace"
)

// TestDroppedLockReleaseTripsWatchdog injects the classic never-released-lock
// hang: both processors' lock releases are suppressed at runtime (the trace
// itself is balanced, so it validates), so whichever processor acquires the
// lock first starves the other forever. The run must fail with a
// *check.StallError naming the starved processor, the lock, and its holder.
func TestDroppedLockReleaseTripsWatchdog(t *testing.T) {
	c := cfg()
	c.Faults = &check.Plan{DropReleases: []check.LockDrop{
		{Proc: 0, Nth: -1},
		{Proc: 1, Nth: -1},
	}}
	lock := trace.Stream{
		{Kind: trace.Lock, Addr: 0x40},
		{Kind: trace.Read, Addr: 0x1000, Gap: 10},
		{Kind: trace.Unlock, Addr: 0x40},
	}
	_, err := sim.Run(c, &trace.Trace{Name: "test", Streams: []trace.Stream{lock, lock}})
	if err == nil {
		t.Fatal("run with dropped lock releases completed")
	}
	var stall *check.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("error is %T (%v), want *check.StallError", err, err)
	}
	if len(stall.Stalls) != 1 {
		t.Fatalf("stall report: %v, want exactly one starved processor", stall)
	}
	s := stall.Stalls[0]
	if s.Wait != check.WaitLock {
		t.Errorf("wait kind = %v, want lock", s.Wait)
	}
	if !s.HasObject || s.Object != 0x40 {
		t.Errorf("stall object = %#x (has=%v), want lock 0x40", uint64(s.Object), s.HasObject)
	}
	holder := 1 - s.Proc // the other processor won the lock and kept it
	if s.Holder != holder {
		t.Errorf("holder = %d, want %d", s.Holder, holder)
	}
	// The same trace without the fault plan completes.
	c.Faults = nil
	if _, err := sim.Run(c, &trace.Trace{Name: "test", Streams: []trace.Stream{lock, lock}}); err != nil {
		t.Errorf("fault-free run failed: %v", err)
	}
}

// TestStateFlipTripsCoherenceChecker corrupts proc 0's cache after each of its
// line fills, forcing the just-filled line to Modified while proc 1 still
// holds a Shared copy — exactly the owner-with-sharers state the Illinois
// invariants forbid. The post-fill invariant check must abort the run with a
// *check.Violation.
func TestStateFlipTripsCoherenceChecker(t *testing.T) {
	c := cfg()
	c.CheckInvariants = true
	c.Faults = &check.Plan{Flips: []check.StateFlip{
		{Proc: 0, To: cache.Modified, OnFill: -1},
	}}
	streams := []trace.Stream{
		// Proc 0 reads the line well after proc 1 holds it, so the fill
		// installs Shared and the injected flip to Modified is illegal.
		{{Kind: trace.Read, Addr: 0x1000, Gap: 300}},
		{{Kind: trace.Read, Addr: 0x1000}},
	}
	_, err := sim.Run(c, &trace.Trace{Name: "test", Streams: streams})
	if err == nil {
		t.Fatal("run with corrupted cache state completed")
	}
	var v *check.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error is %T (%v), want *check.Violation", err, err)
	}
	if v.Rule != "owner-with-sharers" && v.Rule != "multiple-owner" {
		t.Errorf("rule = %q", v.Rule)
	}
	// Without the fault the identical run is clean under full checking.
	c.Faults = nil
	if _, err := sim.Run(c, &trace.Trace{Name: "test", Streams: streams}); err != nil {
		t.Errorf("fault-free checked run failed: %v", err)
	}
}

// TestTruncatedStreamRejected: cutting one processor's stream off before its
// barrier (check.Injector models a trace cut off mid-computation) leaves the
// barrier counts unbalanced; Run must reject the trace up front with a clear
// error instead of replaying into a guaranteed deadlock.
func TestTruncatedStreamRejected(t *testing.T) {
	full := trace.Stream{
		{Kind: trace.Read, Addr: 0x1000},
		{Kind: trace.Barrier, Addr: 1},
		{Kind: trace.Read, Addr: 0x2000},
	}
	base := &trace.Trace{Name: "test", Streams: []trace.Stream{full, full}}
	cut, err := check.NewInjector(1).TruncateStream(base, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(cfg(), cut); err == nil {
		t.Fatal("run accepted a trace with unbalanced barriers")
	}
}

// TestBarrierStallNamesBarrier: with every lock release dropped, the
// processor that wins the lock sails on to the barrier and waits for the
// starved loser forever. The stall report must name both: one processor on the
// lock, one on the barrier.
func TestBarrierStallNamesBarrier(t *testing.T) {
	c := cfg()
	c.Faults = &check.Plan{DropReleases: []check.LockDrop{
		{Proc: 0, Nth: -1},
		{Proc: 1, Nth: -1},
	}}
	s := trace.Stream{
		{Kind: trace.Lock, Addr: 0x40},
		{Kind: trace.Unlock, Addr: 0x40, Gap: 10},
		{Kind: trace.Barrier, Addr: 3},
	}
	_, err := sim.Run(c, &trace.Trace{Name: "test", Streams: []trace.Stream{s, s}})
	if err == nil {
		t.Fatal("run completed despite dropped releases")
	}
	var stall *check.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("error is %T (%v), want *check.StallError", err, err)
	}
	var onLock, onBarrier int
	for _, st := range stall.Stalls {
		switch st.Wait {
		case check.WaitLock:
			onLock++
		case check.WaitBarrier:
			onBarrier++
			if !st.HasObject || st.Object != 3 {
				t.Errorf("barrier stall object = %#x, want 3", uint64(st.Object))
			}
		}
	}
	if onLock != 1 || onBarrier != 1 {
		t.Errorf("stall report %v: %d on lock, %d on barrier, want 1 and 1", stall, onLock, onBarrier)
	}
}

// TestCheckedRunsMatchUnchecked verifies the checker is an observer: enabling
// CheckInvariants must not change any simulation outcome.
func TestCheckedRunsMatchUnchecked(t *testing.T) {
	streams := []trace.Stream{
		{
			{Kind: trace.Lock, Addr: 0x40},
			{Kind: trace.Write, Addr: 0x1000, Gap: 4},
			{Kind: trace.Unlock, Addr: 0x40},
			{Kind: trace.Prefetch, Addr: 0x2000, Gap: 2},
			{Kind: trace.Read, Addr: 0x2000, Gap: 150},
			{Kind: trace.Barrier, Addr: 9},
		},
		{
			{Kind: trace.Lock, Addr: 0x40, Gap: 7},
			{Kind: trace.Write, Addr: 0x1004, Gap: 4},
			{Kind: trace.Unlock, Addr: 0x40},
			{Kind: trace.Read, Addr: 0x1000, Gap: 60},
			{Kind: trace.Barrier, Addr: 9},
		},
	}
	tr := &trace.Trace{Name: "test", Streams: streams}
	plain, err := sim.Run(cfg(), tr)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg()
	c.CheckInvariants = true
	checked, err := sim.Run(c, tr)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != checked.Cycles || plain.Counters != checked.Counters {
		t.Errorf("checked run diverged: cycles %d vs %d", plain.Cycles, checked.Cycles)
	}
}
