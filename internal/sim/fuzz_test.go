package sim_test

import (
	"math/rand"
	"testing"

	"busprefetch/internal/memory"
	"busprefetch/internal/sim"
	"busprefetch/internal/trace"
)

// randomTrace builds a small adversarial trace: several processors
// hammering a handful of cache lines with random reads, writes and
// prefetches of both modes — the densest possible coherence traffic.
func randomTrace(seed int64, procs, events, lines int) *trace.Trace {
	r := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Streams: make([]trace.Stream, procs)}
	for p := range tr.Streams {
		var s trace.Stream
		for i := 0; i < events; i++ {
			k := trace.Kind(r.Intn(4)) // Read, Write, Prefetch, PrefetchExcl
			addr := memory.Addr(0x1000 + 32*r.Intn(lines) + 4*r.Intn(8))
			s = append(s, trace.Event{Kind: k, Addr: addr, Gap: uint32(r.Intn(5))})
		}
		tr.Streams[p] = s
	}
	return tr
}

// TestCoherenceFuzz runs randomized high-contention traces with the MESI
// invariant checker enabled, across protocols, victim caches and prefetch
// targets. This exact harness found a real grant-before-install ordering
// bug in the bus during development; it stays as a regression net.
func TestCoherenceFuzz(t *testing.T) {
	iterations := 300
	if testing.Short() {
		iterations = 50
	}
	variants := []func(*sim.Config){
		func(c *sim.Config) {},
		func(c *sim.Config) { c.Protocol = sim.MSI },
		func(c *sim.Config) { c.VictimCacheLines = 4 },
		func(c *sim.Config) { c.PrefetchTarget = sim.PrefetchToBuffer; c.StreamBufferLines = 4 },
		func(c *sim.Config) { c.TransferCycles = 32 },
		func(c *sim.Config) { c.Geometry = memory.Geometry{CacheSize: 2 * 32, LineSize: 32, Assoc: 1} },
	}
	for seed := 0; seed < iterations; seed++ {
		tr := randomTrace(int64(seed), 3, 40, 3)
		v := variants[seed%len(variants)]
		c := sim.DefaultConfig()
		v(&c)
		c.CheckInvariants = true
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("seed %d variant %d: %v", seed, seed%len(variants), p)
				}
			}()
			res, err := sim.Run(c, tr)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			// Conservation: every demand reference either hit or missed;
			// misses never exceed references.
			if res.Counters.TotalCPUMisses() > res.Counters.DemandRefs() {
				t.Fatalf("seed %d: more misses than references", seed)
			}
			// All processors must finish (Run errors otherwise), and the
			// execution time must cover the busiest processor.
			for i, p := range res.Procs {
				if p.FinishTime > res.Cycles {
					t.Fatalf("seed %d: proc %d finished after the run ended", seed, i)
				}
			}
		}()
	}
}

// TestLockFuzz replays randomized lock-heavy traces: every interleaving the
// simulator produces must respect mutual exclusion (enforced structurally
// by the FCFS lock table — this test asserts the run completes and the sync
// accounting stays sane under contention).
func TestLockFuzz(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		procs := 2 + r.Intn(4)
		tr := &trace.Trace{Streams: make([]trace.Stream, procs)}
		locks := []memory.Addr{0x8000, 0x8040, 0x8080}
		for p := range tr.Streams {
			var s trace.Stream
			for i := 0; i < 10; i++ {
				l := locks[r.Intn(len(locks))]
				s = append(s, trace.Event{Kind: trace.Lock, Addr: l, Gap: uint32(r.Intn(10))})
				for j := 0; j < r.Intn(4); j++ {
					s = append(s, trace.Event{Kind: trace.Read, Addr: memory.Addr(0x1000 + 32*r.Intn(8)), Gap: 2})
				}
				s = append(s, trace.Event{Kind: trace.Unlock, Addr: l, Gap: 1})
			}
			tr.Streams[p] = s
		}
		res, err := sim.Run(sim.DefaultConfig(), tr)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Counters.SyncRefs != uint64(procs*20) {
			t.Fatalf("seed %d: sync refs %d, want %d", seed, res.Counters.SyncRefs, procs*20)
		}
	}
}

// TestBusFairnessStatistical drives symmetric processors and checks the
// round-robin arbiter spreads grants evenly: no processor's miss service
// should starve.
func TestBusFairnessStatistical(t *testing.T) {
	procs := 4
	tr := &trace.Trace{Streams: make([]trace.Stream, procs)}
	for p := range tr.Streams {
		var s trace.Stream
		// Each processor streams through its own lines: identical load.
		for i := 0; i < 300; i++ {
			s = append(s, trace.Event{Kind: trace.Read, Addr: memory.Addr(0x100000*(p+1) + 32*i), Gap: 1})
		}
		tr.Streams[p] = s
	}
	c := sim.DefaultConfig()
	c.TransferCycles = 32 // saturate so arbitration decides everything
	res, err := sim.Run(c, tr)
	if err != nil {
		t.Fatal(err)
	}
	var min, max uint64
	for i, p := range res.Procs {
		if i == 0 || p.FinishTime < min {
			min = p.FinishTime
		}
		if p.FinishTime > max {
			max = p.FinishTime
		}
	}
	if float64(max-min) > 0.02*float64(max) {
		t.Errorf("symmetric processors finished %d apart (total %d) — arbiter unfair", max-min, max)
	}
}
