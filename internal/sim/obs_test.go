package sim_test

import (
	"reflect"
	"testing"

	"busprefetch/internal/memory"
	"busprefetch/internal/obs"
	"busprefetch/internal/sim"
	"busprefetch/internal/trace"
)

// obsRun runs the trace twice — recorder off and recorder on — and fails if
// any reported number differs. It returns the recorded result.
func obsRun(t *testing.T, c sim.Config, opt obs.Options, streams ...trace.Stream) *sim.Result {
	t.Helper()
	tr := &trace.Trace{Name: "obs-test", Streams: streams}
	plain, err := sim.Run(c, tr)
	if err != nil {
		t.Fatal(err)
	}
	c.Obs = obs.New(len(streams), opt)
	rec, err := sim.Run(c, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Everything except the recorder output itself must be identical.
	pc, rc := plain.Config, rec.Config
	pc.Obs, rc.Obs = nil, nil
	if !reflect.DeepEqual(pc, rc) || plain.Cycles != rec.Cycles ||
		plain.Counters != rec.Counters || plain.Bus != rec.Bus ||
		!reflect.DeepEqual(plain.Procs, rec.Procs) {
		t.Fatalf("recording changed the result:\noff: %+v\non:  %+v", plain, rec)
	}
	return rec
}

// TestRecordingPreservesResults pins the tentpole's core guarantee on an
// adversarial high-contention trace: enabling the recorder changes nothing.
func TestRecordingPreservesResults(t *testing.T) {
	for seed := 0; seed < 10; seed++ {
		tr := randomTrace(int64(seed), 3, 60, 4)
		c := sim.DefaultConfig()
		if seed%2 == 1 {
			c.PrefetchTarget = sim.PrefetchToBuffer
			c.StreamBufferLines = 4
		}
		obsRun(t, c, obs.Options{Spans: seed%3 == 0}, tr.Streams...)
	}
}

func TestObsUsefulPrefetch(t *testing.T) {
	// A prefetch with a long gap before the use: the fill completes first,
	// so the lifetime is useful and the demand access hits.
	res := obsRun(t, cfg(), obs.Options{},
		trace.Stream{
			{Kind: trace.Prefetch, Addr: 0x1000},
			{Kind: trace.Read, Addr: 0x1000, Gap: 300},
		})
	if res.Obs == nil {
		t.Fatal("no summary on recorded run")
	}
	if res.Obs.Lifetimes["useful"] != 1 || res.Obs.LifetimesTotal() != 1 {
		t.Fatalf("lifetimes = %v, want exactly 1 useful", res.Obs.Lifetimes)
	}
	if res.Obs.IssueToFill.Samples != 1 || res.Obs.FillToUse.Samples != 1 {
		t.Fatalf("histograms = %d fill / %d use samples, want 1/1",
			res.Obs.IssueToFill.Samples, res.Obs.FillToUse.Samples)
	}
	// Uncontended single prefetch: issue -> fill is the full 100-cycle
	// latency (92 uncontended + 8 transfer).
	if got := res.Obs.IssueToFill.Mean(); got != 100 {
		t.Errorf("issue->fill mean = %v, want 100", got)
	}
	if res.Obs.Accuracy() != 1 || res.Obs.Timeliness() != 1 {
		t.Errorf("accuracy/timeliness = %v/%v, want 1/1", res.Obs.Accuracy(), res.Obs.Timeliness())
	}
}

func TestObsLatePrefetch(t *testing.T) {
	// The demand access arrives one cycle after the prefetch issues: it
	// merges with the in-flight fetch — a prefetch-in-progress miss, a late
	// lifetime.
	res := obsRun(t, cfg(), obs.Options{},
		trace.Stream{
			{Kind: trace.Prefetch, Addr: 0x1000},
			{Kind: trace.Read, Addr: 0x1000},
		})
	if res.Counters.CPUMisses[sim.PrefetchInProgress] != 1 {
		t.Fatalf("expected a prefetch-in-progress miss, got %+v", res.Counters.CPUMisses)
	}
	if res.Obs.Lifetimes["late"] != 1 || res.Obs.LifetimesTotal() != 1 {
		t.Fatalf("lifetimes = %v, want exactly 1 late", res.Obs.Lifetimes)
	}
	if res.Obs.Timeliness() != 0 {
		t.Errorf("timeliness = %v, want 0", res.Obs.Timeliness())
	}
}

func TestObsInvalidatedPrefetch(t *testing.T) {
	// Proc 0 prefetches a line; proc 1 writes it before proc 0's use: the
	// lifetime dies invalidated, and proc 0's eventual read misses as an
	// invalidation miss on a prefetched line.
	res := obsRun(t, cfg(), obs.Options{},
		trace.Stream{
			{Kind: trace.Prefetch, Addr: 0x1000},
			{Kind: trace.Read, Addr: 0x1000, Gap: 1000},
		},
		trace.Stream{
			{Kind: trace.Write, Addr: 0x1000, Gap: 200},
		})
	if res.Obs.Lifetimes["invalidated"] != 1 {
		t.Fatalf("lifetimes = %v, want 1 invalidated", res.Obs.Lifetimes)
	}
	if res.Counters.CPUMisses[sim.InvalPref] != 1 {
		t.Errorf("misses = %+v, want 1 invalidation-prefetched", res.Counters.CPUMisses)
	}
}

func TestObsEvictedPrefetch(t *testing.T) {
	// A two-line direct-mapped cache: the prefetched line is displaced by
	// two demand fills to its set before its use.
	c := cfg()
	c.Geometry.CacheSize = 2 * c.Geometry.LineSize
	line := memory.Addr(0x1000) // an even line number: set 0 of the 2-line cache
	res := obsRun(t, c, obs.Options{},
		trace.Stream{
			{Kind: trace.Prefetch, Addr: line},
			// Same set (2-line cache: every other line maps to set 0).
			{Kind: trace.Read, Addr: line + memory.Addr(2*c.Geometry.LineSize), Gap: 300},
			{Kind: trace.Read, Addr: line + memory.Addr(4*c.Geometry.LineSize), Gap: 300},
			{Kind: trace.Read, Addr: line, Gap: 300},
		})
	if res.Obs.Lifetimes["evicted"] != 1 {
		t.Fatalf("lifetimes = %v, want 1 evicted", res.Obs.Lifetimes)
	}
	if res.Counters.CPUMisses[sim.NonSharingPref] != 1 {
		t.Errorf("misses = %+v, want 1 non-sharing-prefetched", res.Counters.CPUMisses)
	}
}

func TestObsUnusedPrefetch(t *testing.T) {
	res := obsRun(t, cfg(), obs.Options{},
		trace.Stream{
			{Kind: trace.Prefetch, Addr: 0x1000},
			{Kind: trace.Read, Addr: 0x8000, Gap: 300},
		})
	if res.Obs.Lifetimes["unused"] != 1 {
		t.Fatalf("lifetimes = %v, want 1 unused", res.Obs.Lifetimes)
	}
	if res.Obs.Accuracy() != 0 {
		t.Errorf("accuracy = %v, want 0", res.Obs.Accuracy())
	}
}

func TestObsBufferLifetimes(t *testing.T) {
	// Buffer mode: a used buffered line is useful; a line dropped by a
	// remote write is invalidated.
	c := cfg()
	c.PrefetchTarget = sim.PrefetchToBuffer
	c.StreamBufferLines = 4
	res := obsRun(t, c, obs.Options{},
		trace.Stream{
			{Kind: trace.Prefetch, Addr: 0x1000},
			{Kind: trace.Prefetch, Addr: 0x2000},
			{Kind: trace.Read, Addr: 0x1000, Gap: 300},
			{Kind: trace.Read, Addr: 0x4000, Gap: 1000},
		},
		trace.Stream{
			{Kind: trace.Write, Addr: 0x2000, Gap: 600},
		})
	if res.Counters.StreamBufferHits != 1 || res.Counters.StreamBufferDrops != 1 {
		t.Fatalf("buffer hits/drops = %d/%d, want 1/1",
			res.Counters.StreamBufferHits, res.Counters.StreamBufferDrops)
	}
	if res.Obs.Lifetimes["useful"] != 1 || res.Obs.Lifetimes["invalidated"] != 1 {
		t.Fatalf("lifetimes = %v, want 1 useful + 1 invalidated", res.Obs.Lifetimes)
	}
}

func TestObsBusOccupancyMatchesStats(t *testing.T) {
	tr := randomTrace(7, 3, 60, 4)
	res := obsRun(t, cfg(), obs.Options{}, tr.Streams...)
	var cycles, grants uint64
	for _, c := range res.Obs.BusOps {
		cycles += c.Cycles
		grants += c.Grants
	}
	if cycles != res.Bus.BusyCycles {
		t.Errorf("observed bus cycles %d != Stats.BusyCycles %d", cycles, res.Bus.BusyCycles)
	}
	if grants != res.Bus.TotalOps() {
		t.Errorf("observed grants %d != Stats.TotalOps %d", grants, res.Bus.TotalOps())
	}
	fills := res.Obs.BusOps["fill/demand"].Grants + res.Obs.BusOps["fill/prefetch"].Grants
	if fills != res.Bus.DemandGrants+res.Bus.PrefetchGrants {
		t.Errorf("observed fills %d != Stats fills %d", fills, res.Bus.DemandGrants+res.Bus.PrefetchGrants)
	}
}

func TestObsWaitCyclesMatchProcStats(t *testing.T) {
	tr := randomTrace(11, 3, 60, 4)
	res := obsRun(t, cfg(), obs.Options{}, tr.Streams...)
	var mem, lock, barrier, buffer uint64
	for _, p := range res.Procs {
		mem += p.MemWait
		lock += p.LockWait
		barrier += p.BarrierWait
		buffer += p.BufferWait
	}
	got := res.Obs.PhaseCycles
	if got["mem-wait"] != mem || got["lock-wait"] != lock ||
		got["barrier-wait"] != barrier || got["buffer-wait"] != buffer {
		t.Errorf("phase cycles %v != proc stats mem=%d lock=%d barrier=%d buffer=%d",
			got, mem, lock, barrier, buffer)
	}
}

func TestObsLifetimesCoverAllPrefetchFetches(t *testing.T) {
	// Every prefetch that initiated a bus fetch must end in exactly one
	// lifetime class.
	for seed := 0; seed < 20; seed++ {
		tr := randomTrace(int64(100+seed), 3, 80, 4)
		c := cfg()
		res := obsRun(t, c, obs.Options{}, tr.Streams...)
		if got, want := res.Obs.LifetimesTotal(), res.Counters.PrefetchFetches; got != want {
			t.Fatalf("seed %d: %d lifetimes for %d prefetch fetches (%v)",
				seed, got, want, res.Obs.Lifetimes)
		}
	}
}
