package sim

import (
	"fmt"

	"busprefetch/internal/bus"
	"busprefetch/internal/cache"
	"busprefetch/internal/check"
	"busprefetch/internal/coherence"
	"busprefetch/internal/memory"
	"busprefetch/internal/obs"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/trace"
)

// yieldQuantum bounds how far a processor's local clock may run ahead of the
// global event clock before it yields back to the scheduler. Processors
// execute runs of hits without touching the bus; yielding keeps remote
// invalidations from being observed more than ~yieldQuantum cycles late,
// comfortably inside the 100-cycle memory latency.
const yieldQuantum = 64

// inflight is an outstanding fetch (demand or prefetch) for one line. The
// bus request is embedded, and completed inflights return to a per-processor
// free list (with their OnGrant/OnComplete closures bound once, at first
// allocation), so the per-fetch hot path allocates nothing after the pool
// warms up — a processor's outstanding fetches are bounded by the prefetch
// buffer depth plus one blocked demand fetch.
type inflight struct {
	la         memory.Addr
	word       int
	excl       bool
	isPrefetch bool
	req        bus.Request
	// cpuWaiting is true when the CPU is blocked on this fetch: always for
	// demand fetches, and for prefetches a demand access has merged into.
	cpuWaiting bool
	// sharers records, at the bus grant (the coherence point), whether any
	// other cache held the line; it picks Shared vs Exclusive on fill.
	sharers bool
}

// writeOp is the bus operation a blocked write owes (invalidation upgrade or
// word-update broadcast). The CPU blocks until it completes, so one reusable
// struct per processor — its request callbacks bound at construction —
// serves every write op without allocating.
type writeOp struct {
	la     memory.Addr
	word   int
	action coherence.WriteAction
	failed bool
	req    bus.Request
}

// buffered is one line in the non-snooping prefetch buffer. sharers records
// whether any other cache held the line at the fetch's bus grant: a buffer
// hit must then install Shared, not Exclusive — installing private-clean
// while remote Shared copies exist would let a later silent write break the
// single-owner invariant (a bug the internal/check pre-snoop verification
// caught in this exact path).
type buffered struct {
	la      memory.Addr
	sharers bool
}

// proc replays one processor's event stream through a chunk cursor:
// stream is the current chunk, pc the position within it, and base the
// absolute index of the chunk's first event. A materialized replay sets
// stream to the whole trace stream and leaves it nil — one chunk, never
// refilled — so both paths share one run loop and one set of semantics.
type proc struct {
	s      *simulator
	id     int
	stream trace.Stream
	cache  *cache.Cache
	pc     int
	base   int
	clock  uint64
	stats  ProcStats

	// it feeds the cursor in streaming mode; nil means stream is the
	// whole event stream. srcFailed latches an iterator error or an
	// inline-validation failure so the processor never advances past it.
	it        trace.Iterator
	srcFailed bool
	// validate enables the inline structural checks of streaming replays
	// (trace.Validate's rules, enforced as events retire): held tracks
	// the locks this processor holds, barSeen its barrier arrivals
	// (checked against simulator.barLog).
	validate bool
	held     map[memory.Addr]bool
	barSeen  int

	// inflight holds the outstanding fetches (at most the prefetch buffer
	// depth plus one blocked demand fetch — a dozen and change), so lookup
	// by line address is a short linear scan, cheaper and allocation-free
	// compared to the map it replaces. inflightFree pools completed entries
	// for reuse; wop is the single reusable write-op; wbFree pools
	// writeback requests, each returning itself on completion.
	inflight            []*inflight
	inflightFree        []*inflight
	wop                 writeOp
	wbFree              []*bus.Request
	outstandingPrefetch int
	waitingForSlot      bool
	// runFn is the run method bound once, so scheduling a continuation does
	// not allocate a method value per event.
	runFn func(uint64)
	// victim is the optional fully-associative victim cache.
	victim *cache.Cache
	// streamBuf is the FIFO prefetch buffer of PrefetchToBuffer mode, in
	// arrival order. The buffer does not snoop; to stay coherent, an entry
	// is dropped as soon as any remote processor touches the line with a bus
	// fill or invalidation, and each entry remembers whether the line was
	// shared at its fetch's grant so a buffer hit installs the right state.
	streamBuf []buffered
	// wasted records line addresses whose prefetched-but-unused copy was
	// displaced, so the eventual demand miss is classified "prefetched".
	wasted map[memory.Addr]bool
	// online is this processor's online prefetch engine (Config.Online);
	// nil when disabled, and every use is behind a nil check so the
	// oracle path is untouched. cands is the reused candidate buffer
	// passed to Observe.
	online prefetch.Engine
	cands  []prefetch.Candidate

	// Per-event progress flags; reset when pc advances. They make event
	// handlers idempotent across block/resume cycles.
	gapDone     bool
	refCounted  bool
	missCounted bool
	atBarrier   bool
	// onlineDone marks that the online engine has observed the current
	// event, so a blocked access's retries do not re-train it.
	onlineDone bool

	// writeOpDone is set when the blocked write's bus operation (upgrade or
	// update broadcast) completed successfully, so the retry must finish the
	// access rather than consult WriteHit again — under a write-update
	// protocol the post-broadcast state (SharedMod) would demand another
	// broadcast, looping forever. Consumed by the next demandAccess.
	writeOpDone bool

	// releases and fills are fault-injection ordinals: lock releases
	// performed and line fills installed, matched against Config.Faults.
	releases int
	fills    int

	waitStart uint64
	finished  bool
}

func newProc(s *simulator, id int) *proc {
	p := &proc{
		s:      s,
		id:     id,
		cache:  cache.New(s.cfg.Geometry),
		wasted: make(map[memory.Addr]bool),
		online: s.cfg.Online.NewEngine(s.cfg.Geometry),
	}
	p.runFn = p.run
	p.wop.req.OnGrant = func(g uint64) { p.grantWriteOp(g) }
	p.wop.req.OnComplete = func(t uint64) { p.completeWriteOp(t) }
	if n := s.cfg.VictimCacheLines; n > 0 {
		p.victim = cache.New(memory.Geometry{
			CacheSize: n * s.cfg.Geometry.LineSize,
			LineSize:  s.cfg.Geometry.LineSize,
			Assoc:     0,
		})
	}
	return p
}

// findInflight returns the outstanding fetch for line la, or nil.
func (p *proc) findInflight(la memory.Addr) *inflight {
	for _, inf := range p.inflight {
		if inf.la == la {
			return inf
		}
	}
	return nil
}

// newInflight takes an entry from the free list or allocates one, binding
// its bus-request callbacks exactly once per allocation.
func (p *proc) newInflight() *inflight {
	if n := len(p.inflightFree); n > 0 {
		inf := p.inflightFree[n-1]
		p.inflightFree[n-1] = nil
		p.inflightFree = p.inflightFree[:n-1]
		return inf
	}
	inf := &inflight{}
	inf.req.OnGrant = func(g uint64) { p.grantFetch(inf, g) }
	inf.req.OnComplete = func(t uint64) { p.completeFetch(inf, t) }
	return inf
}

// releaseInflight removes inf from the outstanding list and returns it to
// the free list. The caller must be done reading its fields: the next
// startFetch may reuse the struct immediately.
func (p *proc) releaseInflight(inf *inflight) {
	for i, o := range p.inflight {
		if o == inf {
			last := len(p.inflight) - 1
			copy(p.inflight[i:], p.inflight[i+1:])
			p.inflight[last] = nil
			p.inflight = p.inflight[:last]
			break
		}
	}
	p.inflightFree = append(p.inflightFree, inf)
}

// dropBuffered removes la from the non-snooping prefetch buffer; a remote
// bus operation on the line means the buffered copy can no longer be trusted.
func (p *proc) dropBuffered(la memory.Addr, now uint64) {
	for i, b := range p.streamBuf {
		if b.la == la {
			p.streamBuf = append(p.streamBuf[:i], p.streamBuf[i+1:]...)
			p.s.c.StreamBufferDrops++
			// The remote action killed the buffered copy before any use — the
			// conservative drop is the buffer's form of invalidation.
			if r := p.s.rec; r != nil {
				r.PrefetchInvalidated(p.id, uint64(la), now)
			}
			return
		}
	}
}

// bufferIndex returns la's position in the prefetch buffer, or -1.
func (p *proc) bufferIndex(la memory.Addr) int {
	for i, b := range p.streamBuf {
		if b.la == la {
			return i
		}
	}
	return -1
}

// run executes events until the processor blocks, yields, or finishes. It is
// both the initial entry point and the continuation invoked after every wait.
func (p *proc) run(now uint64) {
	if now > p.clock {
		p.clock = now
	}
	entry := p.clock
	for {
		if p.pc >= len(p.stream) && !p.refill() {
			return
		}
		e := p.stream[p.pc]
		if !p.gapDone {
			p.clock += uint64(e.Gap)
			p.stats.BusyCycles += uint64(e.Gap)
			p.gapDone = true
			// Absorbing the gap is progress: a gap of any size is one event,
			// so even multi-billion-cycle gaps cannot trip the watchdog.
			p.s.progress++
			// A long instruction gap can carry the local clock far past the
			// global clock; yield before touching memory so remote coherence
			// actions scheduled in the meantime are visible to this access.
			if p.clock >= entry+yieldQuantum {
				p.s.eng.At(p.clock, p.runFn)
				return
			}
		}
		var blocked bool
		switch e.Kind {
		case trace.Read:
			blocked = p.demandAccess(e.Addr, false, false)
		case trace.Write:
			blocked = p.demandAccess(e.Addr, true, false)
		case trace.Prefetch:
			blocked = p.prefetchOp(e.Addr, false)
		case trace.PrefetchExcl:
			blocked = p.prefetchOp(e.Addr, true)
		case trace.Lock:
			blocked = p.lockOp(e.Addr)
		case trace.Unlock:
			blocked = p.unlockOp(e.Addr)
		case trace.Barrier:
			blocked = p.barrierOp(e.Addr)
		default:
			// Unreachable on a materialized trace (Validate rejects unknown
			// kinds up front); in streaming mode this is the inline check.
			p.srcFailed = true
			p.s.fail(fmt.Errorf("sim: proc %d event %d has unknown kind %d", p.id, p.base+p.pc, int(e.Kind)))
			return
		}
		// The online engine observes each demand reference exactly once,
		// after its first processing pass — the miss flag is settled by
		// then — whether or not the access blocked. Sync accesses (lock,
		// unlock, barrier) are not demand references and are never shown.
		if p.online != nil && !p.onlineDone && e.Kind.IsDemand() {
			p.onlineDone = true
			p.onlineObserve(e)
		}
		if blocked {
			return
		}
		if p.validate && !p.checkRetire(e) {
			return
		}
		p.pc++
		p.s.progress++
		p.gapDone, p.refCounted, p.missCounted, p.atBarrier, p.onlineDone = false, false, false, false, false
		if p.clock >= entry+yieldQuantum {
			p.s.eng.At(p.clock, p.runFn)
			return
		}
	}
}

// refill advances the cursor to the next non-empty chunk of the
// processor's stream. It returns false when no events remain: either
// the stream is exhausted (the processor finishes, after the end-of-
// stream validation of streaming mode) or the source failed (the run
// aborts through the recorded error at the next dispatch).
func (p *proc) refill() bool {
	if p.srcFailed {
		return false
	}
	for p.it != nil {
		chunk, err := p.it.Next()
		if err != nil {
			p.srcFailed = true
			p.s.fail(fmt.Errorf("sim: proc %d event stream: %w", p.id, err))
			return false
		}
		if chunk == nil {
			p.it = nil
			break
		}
		if len(chunk) == 0 {
			continue
		}
		p.base += len(p.stream)
		p.stream, p.pc = chunk, 0
		return true
	}
	if p.validate && len(p.held) != 0 {
		p.srcFailed = true
		p.s.fail(fmt.Errorf("sim: proc %d stream ends holding %d locks", p.id, len(p.held)))
		return false
	}
	if !p.finished {
		p.finished = true
		p.stats.FinishTime = p.clock
	}
	return false
}

// checkRetire enforces the lock-nesting rules of trace.Validate as an
// event retires in streaming mode (retirement is the one point each
// event passes exactly once, whatever blocking and retrying preceded
// it). It returns false when the event violates them; the run aborts.
func (p *proc) checkRetire(e trace.Event) bool {
	switch e.Kind {
	case trace.Lock:
		if p.held[e.Addr] {
			p.srcFailed = true
			p.s.fail(fmt.Errorf("sim: proc %d event %d re-acquires held lock 0x%x", p.id, p.base+p.pc, uint64(e.Addr)))
			return false
		}
		p.held[e.Addr] = true
	case trace.Unlock:
		if !p.held[e.Addr] {
			p.srcFailed = true
			p.s.fail(fmt.Errorf("sim: proc %d event %d releases unheld lock 0x%x", p.id, p.base+p.pc, uint64(e.Addr)))
			return false
		}
		delete(p.held, e.Addr)
	}
	return true
}

// onlinePC derives the engine's PC proxy from a demand event. The traces
// carry no program counter; references from the same static access site
// share the generator-assigned instruction gap that precedes them, so
// (gap, read/write) identifies a site well enough for PC-indexed tables —
// and, being address-independent, keeps engine decisions invariant under
// address relabelings.
func onlinePC(e trace.Event) uint64 {
	pc := uint64(e.Gap) << 1
	if e.Kind == trace.Write {
		pc |= 1
	}
	return pc
}

// onlineObserve shows a demand reference to the online engine and issues
// the candidates it returns.
func (p *proc) onlineObserve(e trace.Event) {
	r := prefetch.Ref{
		PC:    onlinePC(e),
		Addr:  e.Addr,
		Line:  p.s.geom.LineAddr(e.Addr),
		Write: e.Kind == trace.Write,
		Miss:  p.missCounted,
	}
	p.cands = p.online.Observe(r, p.cands[:0])
	p.s.c.OnlineEmitted += uint64(len(p.cands))
	for _, c := range p.cands {
		p.onlineIssue(c)
	}
}

// onlineIssue launches one engine candidate as a prefetch fetch, applying
// the same residency filters as a prefetch instruction (prefetchOp). The
// one difference is the full issue buffer: an instruction stalls the CPU
// for a slot, an online engine just loses the candidate.
func (p *proc) onlineIssue(c prefetch.Candidate) {
	la := c.Line
	if p.findInflight(la) != nil {
		p.s.c.OnlineFiltered++
		return
	}
	if l := p.cache.Lookup(la); l != nil && l.State.Valid() {
		p.s.c.OnlineFiltered++
		return
	}
	if p.victim != nil {
		if vl := p.victim.Lookup(la); vl != nil && vl.State.Valid() {
			p.s.c.OnlineFiltered++
			return
		}
	}
	if p.bufferIndex(la) >= 0 {
		p.s.c.OnlineFiltered++
		return
	}
	if p.outstandingPrefetch >= p.s.cfg.PrefetchBufferDepth {
		p.s.c.OnlineDropped++
		return
	}
	delete(p.wasted, la) // a fresh prefetch supersedes the wasted record
	p.s.c.OnlineIssued++
	p.startFetch(la, c.Excl, p.s.geom.WordIndex(la), true, bus.Prefetch)
}

// demandAccess performs a demand read or write. It returns true when the CPU
// must block (miss, upgrade, or merge with an in-flight prefetch); the
// continuation re-enters through run and retries the access, which then hits.
func (p *proc) demandAccess(a memory.Addr, isWrite, isSync bool) (blocked bool) {
	if !p.refCounted {
		p.refCounted = true
		if isWrite {
			p.s.c.Writes++
		} else {
			p.s.c.Reads++
		}
		if isSync {
			p.s.c.SyncRefs++
		}
	}
	la := p.s.geom.LineAddr(a)
	if inf := p.findInflight(la); inf != nil {
		// A prefetch for this line is still in flight: merge with it and
		// stall until it completes. The transaction keeps its prefetch
		// arbitration class — the paper's round-robin arbiter prioritizes
		// by request type, so a prefetch the CPU has since blocked on
		// still yields to demand fetches, which is what makes
		// prefetch-in-progress misses grow costly as the bus loads up.
		if !p.missCounted {
			p.missCounted = true
			p.s.c.CPUMisses[PrefetchInProgress]++
			p.s.attributeMiss(la, PrefetchInProgress, false)
			if r := p.s.rec; r != nil && inf.isPrefetch {
				r.PrefetchMerged(p.id, uint64(la), p.clock)
			}
		}
		inf.cpuWaiting = true
		p.waitStart = p.clock
		return true
	}
	// A set writeOpDone means this access's own broadcast just completed:
	// the write must now finish, not be charged again. The flag is consumed
	// here whatever the retry finds (a lost race leaves the line invalid and
	// the retry falls through to the miss path).
	opDone := p.writeOpDone
	p.writeOpDone = false
	line, hit := p.cache.Probe(a)
	if hit {
		if isWrite && !opDone {
			// The protocol decides what the write owes the bus: nothing
			// (ownership held), an invalidation upgrade, or a word-update
			// broadcast.
			if act := p.s.tab.writeAct[line.State]; act != coherence.WriteSilent {
				p.startWriteOp(a, la, act)
				return true
			}
		}
		p.finishHit(line, a, isWrite)
		return false
	}
	// A victim-cache hit swaps the line back into the data cache: one
	// extra cycle, no bus operation, and no CPU miss.
	if p.victim != nil {
		if vl := p.victim.Lookup(la); vl != nil && vl.State.Valid() {
			st := vl.State
			p.victim.SnoopInvalidate(la, cache.NoInvalidatingWord)
			nl, ev := p.cache.Allocate(la)
			nl.State = st
			p.handleEviction(ev, p.clock)
			p.s.c.VictimHits++
			p.clock++ // the swap penalty
			p.stats.BusyCycles++
			p.finishHit(nl, a, isWrite)
			return false
		}
	}
	// A prefetch-buffer hit moves the buffered line into the cache. Because
	// any remote bus operation on the line drops the entry, a surviving
	// entry's sharedness is exactly what its fetch observed at the grant: the
	// line enters privately only when no other cache held it then.
	if idx := p.bufferIndex(la); idx >= 0 {
		entry := p.streamBuf[idx]
		p.streamBuf = append(p.streamBuf[:idx], p.streamBuf[idx+1:]...)
		if r := p.s.rec; r != nil {
			r.PrefetchFirstUse(p.id, uint64(la), p.clock)
		}
		if p.online != nil {
			p.online.Useful(la)
		}
		nl, ev := p.cache.Allocate(la)
		// The install state is whatever the protocol gives the original
		// (read) prefetch fill, given the sharers observed at its grant.
		nl.State = p.s.tab.fill[fillIndex(false, true, entry.sharers)]
		p.handleEviction(ev, p.clock)
		p.s.c.StreamBufferHits++
		p.clock++ // the move penalty
		p.stats.BusyCycles++
		p.finishHit(nl, a, isWrite)
		if isWrite {
			// A non-exclusive install still owes the write its bus
			// operation (invalidation or update).
			if act := p.s.tab.writeAct[nl.State]; act != coherence.WriteSilent {
				p.startWriteOp(a, la, act)
				return true
			}
		}
		return false
	}
	p.classifyMiss(line, la)
	p.startFetch(la, isWrite, p.s.geom.WordIndex(a), false, bus.Demand)
	p.waitStart = p.clock
	return true
}

// finishHit completes a hitting access: one cycle, word-use bookkeeping, and
// any silent write transition the protocol allows (Illinois' Exclusive to
// Modified being the canonical one).
func (p *proc) finishHit(line *cache.Line, a memory.Addr, isWrite bool) {
	p.clock++
	p.stats.BusyCycles++
	line.WordsAccessed |= p.s.geom.WordMask(a)
	if line.PrefetchedUnused {
		line.PrefetchedUnused = false
		if r := p.s.rec; r != nil {
			r.PrefetchFirstUse(p.id, uint64(p.s.geom.LineAddr(a)), p.clock)
		}
		if p.online != nil {
			p.online.Useful(p.s.geom.LineAddr(a))
		}
	}
	if isWrite {
		if tab := &p.s.tab; tab.writeAct[line.State] == coherence.WriteSilent {
			line.State = tab.writeNext[line.State]
		}
	}
}

// classifyMiss records the CPU miss in the paper's Figure 3 taxonomy.
func (p *proc) classifyMiss(line *cache.Line, la memory.Addr) {
	if p.missCounted {
		return
	}
	p.missCounted = true
	inval := line != nil && line.HasTag() && !line.State.Valid()
	var prefd, falseSharing bool
	if inval {
		prefd = line.PrefetchedUnused
		if w := line.InvalidatingWord; w != cache.NoInvalidatingWord && line.WordsAccessed&(1<<uint(w)) == 0 {
			p.s.c.FalseSharing++
			falseSharing = true
		}
	} else {
		prefd = p.wasted[la]
	}
	delete(p.wasted, la)
	var class MissClass
	switch {
	case inval && prefd:
		class = InvalPref
	case inval:
		class = InvalNotPref
	case prefd:
		class = NonSharingPref
	default:
		class = NonSharingNotPref
	}
	p.s.c.CPUMisses[class]++
	p.s.attributeMiss(la, class, falseSharing)
}

// startFetch launches a line fetch on the bus. The transaction's uncontended
// phase (address + memory lookup) takes MemLatency-TransferCycles cycles;
// the contended data transfer then occupies the bus for TransferCycles.
func (p *proc) startFetch(la memory.Addr, excl bool, word int, isPrefetch bool, class bus.Class) {
	inf := p.newInflight()
	inf.la, inf.word = la, word
	inf.excl, inf.isPrefetch = excl, isPrefetch
	inf.cpuWaiting = !isPrefetch
	inf.sharers = false
	inf.req.Reset()
	inf.req.Ready = p.clock + p.s.uncont
	inf.req.Occupancy = uint64(p.s.cfg.TransferCycles)
	inf.req.Class = class
	inf.req.Op = bus.OpFill
	inf.req.Addr = uint64(la)
	inf.req.Proc = p.id
	p.inflight = append(p.inflight, inf)
	if isPrefetch {
		p.s.c.PrefetchFetches++
		p.outstandingPrefetch++
		if r := p.s.rec; r != nil {
			r.PrefetchIssued(p.id, uint64(la), p.clock)
		}
	}
	if err := p.s.ic.Submit(p.clock, &inf.req); err != nil {
		p.s.fail(err)
	}
}

// grantFetch performs a fetch's coherence actions at its bus grant.
func (p *proc) grantFetch(inf *inflight, g uint64) {
	// The grant is the serialization point: resident states must already be
	// legal here, before snooping repairs remote copies and could mask a
	// corrupted state.
	if p.s.cfg.CheckInvariants {
		p.s.checkLine(g, inf.la)
	}
	if r := p.s.rec; r != nil && inf.isPrefetch {
		r.PrefetchGranted(p.id, uint64(inf.la), g)
	}
	inf.sharers = p.s.snoopFetch(g, p.id, inf.la, inf.excl, inf.word)
}

// completeFetch installs a fetched line and resumes whoever was waiting.
func (p *proc) completeFetch(inf *inflight, t uint64) {
	p.s.progress++
	// Copy what the rest of the completion needs, then recycle the entry:
	// resuming the CPU below may start the next fetch, which is free to
	// reuse this struct.
	la, excl, isPrefetch := inf.la, inf.excl, inf.isPrefetch
	cpuWaiting, sharers := inf.cpuWaiting, inf.sharers
	p.releaseInflight(inf)
	if isPrefetch && !cpuWaiting && p.s.cfg.PrefetchTarget == PrefetchToBuffer {
		// Buffer-mode prefetch: the line lands in the FIFO prefetch buffer,
		// not the cache. The buffer never holds coherence state; remote
		// writes drop entries.
		p.outstandingPrefetch--
		cap := p.s.cfg.StreamBufferLines
		if cap == 0 {
			cap = 16
		}
		if r := p.s.rec; r != nil {
			r.PrefetchFilled(p.id, uint64(la), t)
		}
		if p.bufferIndex(la) < 0 {
			if len(p.streamBuf) >= cap {
				if r := p.s.rec; r != nil {
					r.PrefetchEvicted(p.id, uint64(p.streamBuf[0].la), t)
				}
				p.streamBuf = p.streamBuf[1:] // FIFO eviction
			}
			p.streamBuf = append(p.streamBuf, buffered{la: la, sharers: sharers})
		}
		if p.online != nil {
			p.online.Fill(la, true)
		}
		if p.waitingForSlot {
			p.waitingForSlot = false
			p.stats.BufferWait += t - p.waitStart
			if r := p.s.rec; r != nil {
				r.Wait(p.id, obs.PhaseBufferWait, p.waitStart, t)
			}
			p.run(t)
		}
		return
	}
	line, ev := p.cache.Allocate(la)
	p.handleEviction(ev, t)
	// The protocol picks the install state from what the fetch was (demand
	// or prefetch, read or read-for-ownership) and whether any other cache
	// held the line at the bus grant.
	line.State = p.s.tab.fill[fillIndex(excl, isPrefetch, sharers)]
	if isPrefetch {
		line.PrefetchedUnused = true
		p.outstandingPrefetch--
		if r := p.s.rec; r != nil {
			r.PrefetchFilled(p.id, uint64(la), t)
		}
	}
	if p.online != nil {
		p.online.Fill(la, isPrefetch)
	}
	// Fault injection: force the configured state onto the configured line
	// after this fill, bypassing the protocol. The invariant check below (or
	// the pre-snoop check at the next grant touching the line) must catch it.
	fill := p.fills
	p.fills++
	for _, f := range p.s.cfg.Faults.FlipsAfterFill(p.id, fill, la) {
		if l := p.cache.Lookup(p.s.geom.LineAddr(f.Addr)); l != nil {
			l.State = f.To
		}
	}
	if p.s.cfg.Faults.SpinAfterFill(p.id, fill) {
		// Injected fault: the processor abandons its stream and busy-loops.
		// Each spin iteration is a progress-bearing event, so neither the
		// cycle nor the event watchdog can trip — exactly the wedged-but-busy
		// run only an external deadline (context cancellation) terminates.
		p.startSpin(t)
		return
	}
	if p.s.cfg.CheckInvariants {
		p.s.checkLine(t, la)
		n := 0
		for _, o := range p.inflight {
			if o.isPrefetch {
				n++
			}
		}
		if v := check.PrefetchAccounting(t, p.id, p.outstandingPrefetch, n, p.s.cfg.PrefetchBufferDepth); v != nil {
			p.s.fail(v)
		}
	}
	switch {
	case cpuWaiting:
		p.stats.MemWait += t - p.waitStart
		if r := p.s.rec; r != nil {
			r.Wait(p.id, obs.PhaseMemWait, p.waitStart, t)
		}
		p.run(t)
	case isPrefetch && p.waitingForSlot:
		p.waitingForSlot = false
		p.stats.BufferWait += t - p.waitStart
		if r := p.s.rec; r != nil {
			r.Wait(p.id, obs.PhaseBufferWait, p.waitStart, t)
		}
		p.run(t)
	}
}

// startSpin implements the check.Spin fault: from now on the processor
// retires a no-op unit of progress every cycle and never finishes. Only
// context cancellation (sim.RunContext) ends such a run.
func (p *proc) startSpin(now uint64) {
	var spin func(now uint64)
	spin = func(now uint64) {
		p.s.progress++
		p.s.eng.At(now+1, spin)
	}
	spin(now)
}

// handleEviction accounts for a displaced line: dirty victims owe a
// writeback bus operation, and displaced prefetched-but-unused lines are
// remembered so their future miss is classified "prefetched".
func (p *proc) handleEviction(ev cache.Eviction, t uint64) {
	if !ev.HadTag {
		return
	}
	if ev.PrefetchedUnused {
		p.wasted[ev.LineAddr] = true
		if r := p.s.rec; r != nil {
			r.PrefetchEvicted(p.id, uint64(ev.LineAddr), t)
		}
	}
	// With a victim cache, valid victims move there instead of leaving the
	// chip; only a dirty line falling out of the victim cache itself is
	// written back.
	if p.victim != nil && ev.State.Valid() {
		vl, vev := p.victim.Allocate(ev.LineAddr)
		vl.State = ev.State
		if vev.HadTag && vev.State.Dirty() {
			p.writeback(t, vev.LineAddr)
		}
		return
	}
	if ev.State.Dirty() {
		p.writeback(t, ev.LineAddr)
	}
}

// writeback posts a dirty-line writeback bus operation for the evicted line.
// Requests come from a per-processor pool; each returns itself to the pool on
// completion, so a steady state of writebacks allocates nothing.
func (p *proc) writeback(t uint64, la memory.Addr) {
	var req *bus.Request
	if n := len(p.wbFree); n > 0 {
		req = p.wbFree[n-1]
		p.wbFree[n-1] = nil
		p.wbFree = p.wbFree[:n-1]
		req.Reset()
	} else {
		r := &bus.Request{}
		// A completed writeback is progress: with the bus saturated, the
		// lowest-priority writeback class starves and backlogs, and on long
		// traces the post-run drain of that backlog alone can exceed the
		// watchdog threshold — every processor finished, the bus busy every
		// cycle — which must not read as a stall.
		r.OnComplete = func(uint64) { p.s.progress++; p.wbFree = append(p.wbFree, r) }
		req = r
	}
	req.Ready = t
	req.Occupancy = uint64(p.s.cfg.TransferCycles)
	req.Class = bus.Writeback
	req.Op = bus.OpWriteback
	req.Addr = uint64(la)
	req.Proc = p.id
	if err := p.s.ic.Submit(t, req); err != nil {
		p.s.fail(err)
	}
}

// startWriteOp posts the bus operation a write hitting a valid line owes:
// an address-only invalidation upgrade (WriteUpgrade) or a word-update
// broadcast (WriteUpdate). The grant is the coherence point: if a remote
// write won the race and invalidated the line first, the operation converts
// to a miss on resume (write-invalidate protocols only — an update protocol
// never invalidates, so the line is still valid at the grant).
func (p *proc) startWriteOp(a, la memory.Addr, action coherence.WriteAction) {
	w := &p.wop
	w.la = la
	w.word = p.s.geom.WordIndex(a)
	w.action = action
	w.failed = false
	w.req.Reset()
	w.req.Ready = p.clock
	w.req.Occupancy = uint64(p.s.cfg.InvalidateCycles)
	w.req.Op = bus.OpInvalidate
	if action == coherence.WriteUpdate {
		w.req.Op, w.req.Occupancy = bus.OpUpdate, p.s.updCycles
	}
	w.req.Class = bus.Demand
	w.req.Addr = uint64(la)
	w.req.Proc = p.id
	p.waitStart = p.clock
	if err := p.s.ic.Submit(p.clock, &w.req); err != nil {
		p.s.fail(err)
	}
}

// grantWriteOp performs the blocked write's coherence actions at the grant
// of its broadcast (see startWriteOp).
func (p *proc) grantWriteOp(g uint64) {
	w := &p.wop
	if p.s.cfg.CheckInvariants {
		p.s.checkLine(g, w.la) // pre-snoop: resident states must be legal
	}
	l := p.cache.Lookup(w.la)
	if l == nil || !l.State.Valid() {
		w.failed = true
		return
	}
	var sharers bool
	if w.action == coherence.WriteUpdate {
		sharers = p.s.snoopUpdate(g, p.id, w.la)
		p.s.c.UpdatesSent++
	} else {
		p.s.snoopInvalidate(g, p.id, w.la, w.word)
	}
	if sharers {
		l.State = p.s.tab.writer[w.action][1]
	} else {
		l.State = p.s.tab.writer[w.action][0]
	}
	if p.s.cfg.CheckInvariants {
		p.s.checkLine(g, w.la)
	}
}

// completeWriteOp resumes the blocked write once its broadcast's occupancy
// ends.
func (p *proc) completeWriteOp(t uint64) {
	p.stats.MemWait += t - p.waitStart
	if r := p.s.rec; r != nil {
		r.Wait(p.id, obs.PhaseMemWait, p.waitStart, t)
	}
	if p.wop.failed {
		p.s.c.UpgradeRetries++
	}
	p.writeOpDone = !p.wop.failed
	p.run(t)
}

// prefetchOp executes a prefetch instruction. Prefetches are non-blocking
// unless the 16-deep issue buffer is full.
func (p *proc) prefetchOp(a memory.Addr, excl bool) (blocked bool) {
	if !p.refCounted {
		p.refCounted = true
		p.s.c.PrefetchesIssued++
		p.clock++ // the prefetch instruction itself
		p.stats.BusyCycles++
	}
	la := p.s.geom.LineAddr(a)
	if p.findInflight(la) != nil {
		p.s.c.PrefetchMerged++
		return false
	}
	if l := p.cache.Lookup(la); l != nil && l.State.Valid() {
		// Hit: no bus operation, even for an exclusive prefetch of a
		// Shared line (paper §4.1, EXCL).
		p.s.c.PrefetchCacheHits++
		return false
	}
	if p.victim != nil {
		if vl := p.victim.Lookup(la); vl != nil && vl.State.Valid() {
			p.s.c.PrefetchCacheHits++
			return false
		}
	}
	if p.bufferIndex(la) >= 0 {
		p.s.c.PrefetchCacheHits++
		return false
	}
	if p.outstandingPrefetch >= p.s.cfg.PrefetchBufferDepth {
		p.waitingForSlot = true
		p.waitStart = p.clock
		return true
	}
	delete(p.wasted, la) // a fresh prefetch supersedes the wasted record
	p.startFetch(la, excl, p.s.geom.WordIndex(a), true, bus.Prefetch)
	return false
}

// lockOp acquires the FCFS lock at a, performing the acquire's exclusive
// read-modify-write access to the lock's cache line.
func (p *proc) lockOp(a memory.Addr) (blocked bool) {
	ls := &p.s.locks[p.s.lockSlot(a)]
	switch ls.holder {
	case p.id:
		// Granted while waiting (or re-entry after the access blocked).
		return p.demandAccess(a, true, true)
	case -1:
		ls.holder = p.id
		return p.demandAccess(a, true, true)
	default:
		ls.queue = append(ls.queue, p.id)
		p.waitStart = p.clock
		return true
	}
}

// unlockOp performs the releasing store and hands the lock to the next
// waiter once the store completes.
func (p *proc) unlockOp(a memory.Addr) (blocked bool) {
	if p.demandAccess(a, true, true) {
		return true
	}
	nth := p.releases
	p.releases++
	if p.s.cfg.Faults.DropRelease(p.id, a, nth) {
		// Injected fault: the store happened but the release signal is lost,
		// so queued waiters stay blocked — the hang the watchdog must report.
		return false
	}
	p.s.releaseLock(a, p.clock)
	return false
}

// barrierOp blocks until every processor reaches the barrier. All
// participants resume at the latest arrival time.
func (p *proc) barrierOp(id memory.Addr) (blocked bool) {
	if p.atBarrier {
		return false
	}
	if p.validate {
		// Inline barrier-sequence check (trace.Validate's rule): every
		// processor's k-th barrier must name the same object as the first
		// processor to arrive at its own k-th barrier. A mismatch would
		// deadlock the replay; failing here reports it as the trace bug it
		// is rather than as a watchdog stall.
		k := p.barSeen
		p.barSeen++
		if k < len(p.s.barLog) {
			if p.s.barLog[k] != id {
				p.srcFailed = true
				p.s.fail(fmt.Errorf("sim: proc %d barrier %d is %d, an earlier arrival had %d",
					p.id, k, uint64(id), uint64(p.s.barLog[k])))
				return true
			}
		} else {
			p.s.barLog = append(p.s.barLog, id)
		}
	}
	p.atBarrier = true
	p.waitStart = p.clock
	return p.s.arriveBarrier(id, p, p.clock)
}
