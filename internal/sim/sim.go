package sim

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"busprefetch/internal/bus"
	"busprefetch/internal/cache"
	"busprefetch/internal/check"
	"busprefetch/internal/coherence"
	"busprefetch/internal/interconnect"
	"busprefetch/internal/memory"
	"busprefetch/internal/names"
	"busprefetch/internal/obs"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/trace"
)

// Protocol selects the coherence protocol. It aliases coherence.Kind, so
// sim.Illinois and coherence.Illinois are interchangeable; the state machine
// each kind names lives in internal/coherence.
type Protocol = coherence.Kind

const (
	// Illinois is the paper's protocol (Papamarcos & Patel); see
	// coherence.Illinois.
	Illinois = coherence.Illinois
	// MSI is the ablation protocol without the private-clean state; see
	// coherence.MSI.
	MSI = coherence.MSI
	// Dragon is the write-update ablation; see coherence.Dragon.
	Dragon = coherence.Dragon
)

// PrefetchTarget selects where prefetched lines land.
type PrefetchTarget int

const (
	// PrefetchToCache is the paper's choice: prefetches fill the data cache
	// itself, where they stay coherent (the cache snoops) but compete with
	// the current working set.
	PrefetchToCache PrefetchTarget = iota
	// PrefetchToBuffer models the alternative the paper rejects for
	// bus-based machines (§3.1): a separate FIFO prefetch buffer. It
	// eliminates conflicts with the working set, but the buffer does not
	// snoop, so shared data must not be prefetched into it — use
	// prefetch.Options.ExcludeWriteShared when annotating for this mode.
	// The simulator conservatively drops any buffered line whose address a
	// remote processor writes, modeling the guarantee the paper demands
	// ("unless it can be guaranteed not to be written during the interval").
	PrefetchToBuffer
)

var prefetchTargetNames = []string{"cache", "buffer"}

func (p PrefetchTarget) String() string {
	return names.Lookup("PrefetchTarget", prefetchTargetNames, int(p))
}

// Config sets the simulated machine's parameters. The zero value is not
// valid; use DefaultConfig.
type Config struct {
	// Label names the run in diagnostics — the sweep cell it simulates
	// ("mp3d/PREF/T=8"). It never affects simulation results; stall reports
	// and cancellation errors carry it so a failure inside a 200-cell sweep
	// identifies itself. Empty is fine.
	Label string
	// Geometry is the per-processor data cache shape.
	Geometry memory.Geometry
	// MemLatency is the total uncontended memory access latency in cycles
	// (the paper uses 100).
	MemLatency int
	// TransferCycles is the contended data-transfer portion of MemLatency
	// (the paper sweeps 4-32). Must be <= MemLatency.
	TransferCycles int
	// InvalidateCycles is the bus occupancy of an address-only invalidation
	// operation (a write upgrading a Shared line).
	InvalidateCycles int
	// UpdateCycles is the bus occupancy of a word-update broadcast under a
	// write-update protocol (Dragon): the address cycles of an invalidation
	// plus a data-word cycle and the snoop-ack turnaround that tells the
	// writer whether any sharer remains — more than an address-only
	// invalidation, far less than a line transfer. Zero selects
	// InvalidateCycles+2.
	UpdateCycles int
	// PrefetchBufferDepth is the number of outstanding prefetches a
	// processor may have (the paper uses 16).
	PrefetchBufferDepth int
	// Protocol selects Illinois (default), the MSI ablation, or the Dragon
	// write-update ablation.
	Protocol Protocol
	// Interconnect selects the contended fabric's topology and service
	// discipline. The zero value is the paper's machine — one
	// priority-arbitrated split-transaction bus — and simulates
	// byte-identically to the pre-seam simulator. RouteShift is set by the
	// simulator from Geometry; callers leave it zero.
	Interconnect interconnect.Config
	// VictimCacheLines, when non-zero, adds a small fully-associative
	// victim cache (Jouppi) behind each data cache — the fix the paper
	// suggests for the conflict misses prefetching introduces (§4.3).
	// Victim hits cost one extra cycle and no bus operation.
	VictimCacheLines int
	// PrefetchTarget selects cache prefetching (default) or the separate
	// non-snooping prefetch buffer of §3.1.
	PrefetchTarget PrefetchTarget
	// StreamBufferLines sizes the FIFO prefetch buffer when PrefetchTarget
	// is PrefetchToBuffer; zero selects 16 lines.
	StreamBufferLines int
	// Regions, when non-nil, attributes every CPU miss to the named data
	// structure containing its address (workload.Info.Regions supplies
	// them). Results appear in Result.RegionMisses, keyed by region name;
	// misses outside every region land under "(unattributed)".
	Regions []memory.Region
	// CheckInvariants enables per-transaction MESI invariant verification
	// (internal/check): the Illinois single-owner invariants are verified at
	// every bus grant — before snooping can repair a corrupted state — and
	// after every fill, and prefetch issue-buffer accounting is verified on
	// every completion. A violation aborts the run with a *check.Violation.
	// Slow; intended for tests.
	CheckInvariants bool
	// WatchdogCycles is the progress watchdog's threshold: the run aborts
	// with a *check.StallError when this many cycles pass without any
	// processor making progress (retiring an event, absorbing an instruction
	// gap, completing a fetch, or completing a queued writeback). Zero
	// selects the 2^20-cycle default. The
	// watchdog also trips when ~2^20 events dispatch at no cycle cost without
	// progress (livelock), and when the event queue drains with unfinished
	// processors (deadlock).
	WatchdogCycles uint64
	// Online selects an online prefetch engine (prefetch.Stride, Temporal
	// or Pointer) that trains on the demand stream during the run and
	// issues its own prefetch fetches, bounded by PrefetchBufferDepth. The
	// zero value (prefetch.Oracle) disables it: the simulator constructs
	// no engines and every online hook is behind a nil check, so
	// oracle-annotated runs are byte-identical to runs before the online
	// kernel existed.
	Online prefetch.OnlineConfig
	// Faults, when non-nil, injects runtime faults (dropped lock releases,
	// forced cache-line states) into the run. Used by tests to prove the
	// watchdog and the invariant checker catch real failures; nil for normal
	// simulation.
	Faults *check.Plan
	// Obs, when non-nil, records the run's observability events — processor
	// phase spans, bus occupancy, full prefetch lifetimes — into the
	// recorder, and Result.Obs carries the reduced summary. Recording only
	// observes times the simulator already computed, so it never changes a
	// reported number; nil (the default) disables it at zero cost.
	Obs *obs.Recorder
}

// DefaultConfig returns the paper's machine: 32 KB direct-mapped caches with
// 32-byte lines, 100-cycle memory latency with an 8-cycle data transfer, a
// 2-cycle invalidation operation and a 16-deep prefetch buffer.
func DefaultConfig() Config {
	return Config{
		Geometry:            memory.DefaultGeometry(),
		MemLatency:          100,
		TransferCycles:      8,
		InvalidateCycles:    2,
		UpdateCycles:        4,
		PrefetchBufferDepth: 16,
	}
}

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	switch {
	case c.MemLatency <= 0:
		return fmt.Errorf("sim: memory latency %d", c.MemLatency)
	case c.TransferCycles <= 0 || c.TransferCycles > c.MemLatency:
		return fmt.Errorf("sim: transfer cycles %d outside (0, %d]", c.TransferCycles, c.MemLatency)
	case c.InvalidateCycles <= 0:
		return fmt.Errorf("sim: invalidate cycles %d", c.InvalidateCycles)
	case c.UpdateCycles < 0:
		return fmt.Errorf("sim: negative update cycles %d", c.UpdateCycles)
	case c.PrefetchBufferDepth <= 0:
		return fmt.Errorf("sim: prefetch buffer depth %d", c.PrefetchBufferDepth)
	case c.Geometry.WordsPerLine() > 64:
		return fmt.Errorf("sim: %d words per line exceeds the 64-word tracking limit", c.Geometry.WordsPerLine())
	case c.VictimCacheLines < 0:
		return fmt.Errorf("sim: negative victim cache size %d", c.VictimCacheLines)
	case c.StreamBufferLines < 0:
		return fmt.Errorf("sim: negative stream buffer size %d", c.StreamBufferLines)
	case !c.Protocol.Valid():
		return fmt.Errorf("sim: unknown protocol %d", int(c.Protocol))
	case c.PrefetchTarget != PrefetchToCache && c.PrefetchTarget != PrefetchToBuffer:
		return fmt.Errorf("sim: unknown prefetch target %d", int(c.PrefetchTarget))
	}
	if err := c.Interconnect.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := c.Online.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// MissClass is a CPU-miss category of the paper's Figure 3.
type MissClass int

const (
	// NonSharingNotPref: first use, or replaced, and no prefetch covered it.
	NonSharingNotPref MissClass = iota
	// NonSharingPref: prefetched, but replaced before use.
	NonSharingPref
	// InvalNotPref: invalidated by another processor; not prefetched.
	InvalNotPref
	// InvalPref: prefetched, then invalidated before use.
	InvalPref
	// PrefetchInProgress: the prefetch reached the bus but had not completed
	// when the CPU asked for the data.
	PrefetchInProgress
	// NumMissClasses is the number of categories.
	NumMissClasses
)

var missClassNames = []string{
	"non-sharing, not pref'd",
	"non-sharing, pref'd",
	"invalidation, not pref'd",
	"invalidation, pref'd",
	"prefetch in progress",
}

func (m MissClass) String() string {
	return names.Lookup("MissClass", missClassNames, int(m))
}

// Counters aggregates whole-run event counts.
type Counters struct {
	// Reads and Writes are demand references, including the exclusive
	// accesses performed by lock acquire/release.
	Reads, Writes uint64
	// SyncRefs is the subset of Writes issued by lock operations.
	SyncRefs uint64
	// CPUMisses is the per-class demand-miss count.
	CPUMisses [NumMissClasses]uint64
	// FalseSharing counts invalidation misses whose invalidating write
	// touched a word the local processor had not accessed.
	FalseSharing uint64
	// PrefetchesIssued counts executed prefetch instructions.
	PrefetchesIssued uint64
	// PrefetchCacheHits counts prefetches that found the line already valid
	// (no bus operation, per the paper's EXCL description).
	PrefetchCacheHits uint64
	// PrefetchMerged counts prefetches dropped because the line was already
	// being fetched.
	PrefetchMerged uint64
	// PrefetchFetches counts prefetches that initiated a bus fetch.
	PrefetchFetches uint64
	// UpgradeRetries counts write upgrades that lost a coherence race and
	// re-executed as misses.
	UpgradeRetries uint64
	// UpdatesSent counts word-update broadcasts put on the bus by writes to
	// shared lines — the write-update analogue of the invalidation, and
	// always zero under a write-invalidate protocol.
	UpdatesSent uint64
	// UpdatesReceived counts remote cache copies refreshed in place by those
	// broadcasts (one broadcast may refresh several sharers).
	UpdatesReceived uint64
	// VictimHits counts demand misses satisfied by the victim cache
	// (one-cycle penalty, no bus operation).
	VictimHits uint64
	// StreamBufferHits counts demand misses satisfied by the prefetch
	// buffer in PrefetchToBuffer mode.
	StreamBufferHits uint64
	// StreamBufferDrops counts buffered lines discarded because a remote
	// processor wrote them (the non-snooping buffer's correctness guard).
	StreamBufferDrops uint64
	// OnlineEmitted counts candidate lines the online engines proposed.
	// Always zero without Config.Online; every emitted candidate lands in
	// exactly one of the three counters below.
	OnlineEmitted uint64
	// OnlineIssued counts candidates that initiated a bus fetch (these are
	// also counted in PrefetchFetches, like any other prefetch fetch).
	OnlineIssued uint64
	// OnlineFiltered counts candidates dropped because the line was
	// already resident, buffered, or being fetched.
	OnlineFiltered uint64
	// OnlineDropped counts candidates dropped because the issue buffer was
	// full — unlike a prefetch instruction, an online engine never stalls
	// the CPU for a slot.
	OnlineDropped uint64
}

// DemandRefs returns the demand-reference count (the miss-rate denominator).
func (c *Counters) DemandRefs() uint64 { return c.Reads + c.Writes }

// TotalCPUMisses returns all demand misses including prefetch-in-progress.
func (c *Counters) TotalCPUMisses() uint64 {
	var n uint64
	for _, v := range c.CPUMisses {
		n += v
	}
	return n
}

// AdjustedCPUMisses returns demand misses excluding prefetch-in-progress
// (the paper's adjusted CPU miss rate).
func (c *Counters) AdjustedCPUMisses() uint64 {
	return c.TotalCPUMisses() - c.CPUMisses[PrefetchInProgress]
}

// InvalidationMisses returns demand misses caused by invalidation.
func (c *Counters) InvalidationMisses() uint64 {
	return c.CPUMisses[InvalNotPref] + c.CPUMisses[InvalPref]
}

// TotalMisses returns all accesses (demand and prefetch) that initiated a
// memory fetch — the paper's total-miss metric, "indicative of the demand at
// the bottleneck component of the machine". Prefetch-in-progress misses do
// not initiate a second fetch and are excluded.
func (c *Counters) TotalMisses() uint64 {
	return c.AdjustedCPUMisses() + c.PrefetchFetches
}

// ProcStats reports one processor's time breakdown.
type ProcStats struct {
	// BusyCycles counts instruction cycles plus completed access cycles.
	BusyCycles uint64
	// MemWait, LockWait, BarrierWait and BufferWait are stall cycles by
	// cause. MemWait includes demand misses, upgrades and prefetch-in-
	// progress stalls.
	MemWait, LockWait, BarrierWait, BufferWait uint64
	// FinishTime is when the processor retired its last event.
	FinishTime uint64
}

// Utilization returns the processor's busy fraction of the full run.
func (p ProcStats) Utilization(total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(p.BusyCycles) / float64(total)
}

// RegionMisses attributes one data structure's share of the CPU misses.
type RegionMisses struct {
	// CPUMisses counts all demand misses inside the region, by class.
	CPUMisses [NumMissClasses]uint64
	// FalseSharing counts the false-sharing subset.
	FalseSharing uint64
}

// Total returns all CPU misses attributed to the region.
func (r RegionMisses) Total() uint64 {
	var n uint64
	for _, v := range r.CPUMisses {
		n += v
	}
	return n
}

// Result is the outcome of one simulation.
type Result struct {
	Config Config
	// Cycles is the parallel execution time: the latest processor finish.
	Cycles uint64
	// Counters aggregates event counts across processors.
	Counters Counters
	// Bus is the contended-resource traffic summary, summed across every
	// interconnect link.
	Bus bus.Stats
	// Links is the per-link traffic breakdown when the interconnect has more
	// than one link (nil on the paper's single bus, so single-bus results —
	// and their checkpoints and goldens — are unchanged by the seam).
	Links []bus.Stats
	// Procs is the per-processor breakdown.
	Procs []ProcStats
	// RegionMisses attributes CPU misses to data structures when
	// Config.Regions was supplied (nil otherwise).
	RegionMisses map[string]RegionMisses
	// Obs is the observability summary when Config.Obs was set (nil
	// otherwise).
	Obs *obs.Summary
	// Online is the summed per-processor engine bookkeeping when
	// Config.Online selected an engine (nil otherwise).
	Online *prefetch.EngineStats
}

// CPUMissRate returns CPU misses (including prefetch-in-progress) per demand
// reference.
func (r *Result) CPUMissRate() float64 {
	return rate(r.Counters.TotalCPUMisses(), r.Counters.DemandRefs())
}

// AdjustedCPUMissRate excludes prefetch-in-progress misses.
func (r *Result) AdjustedCPUMissRate() float64 {
	return rate(r.Counters.AdjustedCPUMisses(), r.Counters.DemandRefs())
}

// TotalMissRate returns all memory fetches per demand reference.
func (r *Result) TotalMissRate() float64 {
	return rate(r.Counters.TotalMisses(), r.Counters.DemandRefs())
}

// InvalidationMissRate returns invalidation misses per demand reference.
func (r *Result) InvalidationMissRate() float64 {
	return rate(r.Counters.InvalidationMisses(), r.Counters.DemandRefs())
}

// FalseSharingMissRate returns false-sharing misses per demand reference.
func (r *Result) FalseSharingMissRate() float64 {
	return rate(r.Counters.FalseSharing, r.Counters.DemandRefs())
}

// UpdateRate returns word-update broadcasts per demand reference — the
// sustained bus cost a write-update protocol pays in place of invalidation
// misses. Always zero under a write-invalidate protocol.
func (r *Result) UpdateRate() float64 {
	return rate(r.Counters.UpdatesSent, r.Counters.DemandRefs())
}

// MissClassRate returns the given class's misses per demand reference.
func (r *Result) MissClassRate(m MissClass) float64 {
	return rate(r.Counters.CPUMisses[m], r.Counters.DemandRefs())
}

// BusUtilization returns the fraction of the run the contended resource was
// in use. With a multi-link interconnect it is the mean per-link utilization
// (aggregate busy cycles over link-count × run cycles), so a half-loaded
// dual bus reads 0.5, not 1.0.
func (r *Result) BusUtilization() float64 {
	if r.Cycles == 0 {
		return 0
	}
	capacity := float64(r.Cycles)
	if len(r.Links) > 1 {
		capacity *= float64(len(r.Links))
	}
	u := float64(r.Bus.BusyCycles) / capacity
	if u > 1 {
		u = 1 // rounding guard: the bus can be busy through the final cycle
	}
	return u
}

// WaitBreakdown sums each stall cause across processors and returns the
// fractions of total processor-cycles (Cycles * procs) spent busy, waiting
// on memory, waiting on locks, waiting at barriers, and waiting for a
// prefetch-buffer slot.
func (r *Result) WaitBreakdown() (busy, mem, lock, barrier, buffer float64) {
	if r.Cycles == 0 || len(r.Procs) == 0 {
		return
	}
	total := float64(r.Cycles) * float64(len(r.Procs))
	var b, m, l, ba, bu uint64
	for _, p := range r.Procs {
		b += p.BusyCycles
		m += p.MemWait
		l += p.LockWait
		ba += p.BarrierWait
		bu += p.BufferWait
	}
	return float64(b) / total, float64(m) / total, float64(l) / total, float64(ba) / total, float64(bu) / total
}

// MeanProcUtilization returns the average processor busy fraction.
func (r *Result) MeanProcUtilization() float64 {
	if len(r.Procs) == 0 || r.Cycles == 0 {
		return 0
	}
	var s float64
	for _, p := range r.Procs {
		s += p.Utilization(r.Cycles)
	}
	return s / float64(len(r.Procs))
}

func rate(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Run simulates the trace on the configured machine and returns the result.
// The trace must validate (see trace.Validate); Run checks it and reports a
// deadlocked or hung replay as an error.
func Run(cfg Config, t *trace.Trace) (*Result, error) {
	return RunContext(context.Background(), cfg, t)
}

// RunContext is Run under a context: cancelling ctx (Ctrl-C, a per-cell
// deadline) aborts the replay at the next event-dispatch boundary with an
// error wrapping ctx.Err(), leaving no goroutines or partial state behind —
// the simulator is single-goroutine and simply stops dispatching. The
// cancellation check is polled every cancelPollEvents dispatches, so an
// enabled context costs a counter increment per event on the hot path, and
// even a run wedged in progress-bearing work (a livelock the watchdog cannot
// distinguish from real work) terminates promptly once ctx fires.
func RunContext(ctx context.Context, cfg Config, t *trace.Trace) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := checkProcs(t.Procs()); err != nil {
		return nil, err
	}
	s, err := newSimulator(cfg, t.Procs())
	if err != nil {
		return nil, err
	}
	for i, p := range s.procs {
		p.stream = t.Streams[i]
	}
	s.ctx = ctx
	return s.run()
}

// RunSource simulates a streaming trace.Source on the configured machine.
// Events are consumed chunk by chunk as each processor's iterator is
// drained — nothing is materialized — so a workload source (or an
// annotated wrapping of one) simulates in constant memory. The result is
// identical to Run on the materialized equivalent: chunking never affects
// scheduling, because iterators block until events are available and
// simulated time comes only from event content.
//
// A materialized trace is validated up front; a source cannot be without
// draining it, so the structural checks trace.Validate performs (known
// event kinds, matched lock nesting, consistent barrier sequences) run
// inline during the replay and abort it on the first violation.
func RunSource(cfg Config, src trace.Source) (*Result, error) {
	return RunSourceContext(context.Background(), cfg, src)
}

// RunSourceContext is RunSource under a context (see RunContext). All
// iterators are closed before it returns, on every path, so abandoned
// producer goroutines never outlive the run.
func RunSourceContext(ctx context.Context, cfg Config, src trace.Source) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkProcs(src.Procs()); err != nil {
		return nil, err
	}
	s, err := newSimulator(cfg, src.Procs())
	if err != nil {
		return nil, err
	}
	iters := make([]trace.Iterator, len(s.procs))
	defer func() {
		for _, it := range iters {
			if it != nil {
				it.Close()
			}
		}
	}()
	for i, p := range s.procs {
		iters[i] = src.Events(i)
		p.it = iters[i]
		p.validate = true
		p.held = make(map[memory.Addr]bool)
	}
	s.ctx = ctx
	return s.run()
}

func checkProcs(n int) error {
	if n == 0 {
		return fmt.Errorf("sim: trace has no processors")
	}
	if n > 64 {
		return fmt.Errorf("sim: %d processors exceeds the 64-processor limit", n)
	}
	return nil
}

// protoTables is the active coherence protocol's state machine flattened
// into dense per-state arrays at construction. Protocol implementations are
// stateless and total over the cache.States, so every hot-path transition —
// snoop responses applied per resident copy per bus grant, the write-hit
// action consulted per demand write, fill-state selection per completing
// fetch — becomes an array index instead of an interface call (and, for the
// snoops, instead of a per-call method-value allocation).
type protoTables struct {
	snoopRead   [cache.NumStates]cache.State
	snoopWrite  [cache.NumStates]cache.State
	snoopUpdate [cache.NumStates]cache.State
	// writeAct and writeNext tabulate WriteHit: the bus action a write
	// hitting state st owes, and (for WriteSilent) the state it assumes.
	writeAct  [cache.NumStates]coherence.WriteAction
	writeNext [cache.NumStates]cache.State
	// fill tabulates FillState over the three Fill booleans; index with
	// fillIndex.
	fill [8]cache.State
	// writer tabulates WriterState[action][sharers]; only the WriteUpgrade
	// and WriteUpdate rows are ever consulted.
	writer [3][2]cache.State
}

func buildProtoTables(p coherence.Protocol) protoTables {
	var t protoTables
	for st := cache.State(0); st < cache.NumStates; st++ {
		t.snoopRead[st] = p.SnoopRead(st)
		t.snoopWrite[st] = p.SnoopWrite(st)
		t.snoopUpdate[st] = p.SnoopUpdate(st)
		t.writeAct[st], t.writeNext[st] = p.WriteHit(st)
	}
	for i := range t.fill {
		t.fill[i] = p.FillState(coherence.Fill{Excl: i&4 != 0, IsPrefetch: i&2 != 0, Sharers: i&1 != 0})
	}
	for _, act := range []coherence.WriteAction{coherence.WriteUpgrade, coherence.WriteUpdate} {
		t.writer[act][0] = p.WriterState(act, false)
		t.writer[act][1] = p.WriterState(act, true)
	}
	return t
}

// fillIndex maps a coherence.Fill to its protoTables.fill slot.
func fillIndex(excl, isPrefetch, sharers bool) int {
	i := 0
	if excl {
		i |= 4
	}
	if isPrefetch {
		i |= 2
	}
	if sharers {
		i |= 1
	}
	return i
}

// simulator owns the machine state for one run.
type simulator struct {
	cfg Config
	eng *engine
	// ic is the contended fabric (Config.Interconnect); the default is the
	// paper's single bus.
	ic    interconnect.Interconnect
	procs []*proc
	// Lock and barrier state lives in dense slices; lockIdx/barrIdx resolve
	// an object's address to its slot, registered lazily on first use
	// (lockSlot/barrSlot). Lazy registration lets the streaming path run
	// without a whole-trace pre-scan, and slot order never affects results —
	// every access goes through the map — so the materialized path is
	// byte-identical to the pre-scanning simulator it replaces.
	locks   []lockState
	barrs   []barrierState
	lockIdx map[memory.Addr]int32
	barrIdx map[memory.Addr]int32
	// barLog is the inline barrier-sequence check of streaming replays: the
	// k-th arrival value of whichever processor got there first, which every
	// other processor's k-th barrier must match (trace.Validate's rule,
	// enforced on the fly because a source cannot be pre-validated).
	barLog []memory.Addr
	c       Counters
	geom    memory.Geometry
	uncont  uint64 // MemLatency - TransferCycles

	// proto is the coherence state machine, tab its transitions flattened
	// into dense tables (the form every hot path consults), rule its
	// legality predicate, and updCycles the resolved bus occupancy of a
	// word-update broadcast.
	proto     coherence.Protocol
	tab       protoTables
	rule      check.LineRule
	updCycles uint64

	// rec is the observability recorder (Config.Obs); nil when disabled.
	// Every use is behind a nil check so a disabled run allocates nothing.
	rec *obs.Recorder

	// ctx, when non-nil, is polled every cancelPollEvents event dispatches;
	// once it is done the run aborts with an error wrapping ctx.Err().
	ctx       context.Context
	pollCount uint64

	// err is the first fatal condition (invariant violation, bus misuse,
	// watchdog trip, context cancellation) seen during the run; the engine
	// aborts on it.
	err error
	// progress counts retired work across all processors; the watchdog in
	// watch trips when it stops advancing.
	progress            uint64
	lastProgress        uint64
	lastProgressAt      uint64
	eventsSinceProgress uint64
	watchdogCycles      uint64

	// regions, sorted by base address, attributes misses to data
	// structures. regionTallies accumulates per region index — one extra
	// trailing slot catches unattributed misses — and is folded into the
	// name-keyed result map once at the end of the run, so the per-miss cost
	// is a binary search and an array index, not a string-keyed map access.
	regions       []memory.Region
	regionTallies []RegionMisses
}

// fail records the first fatal error; the watch hook aborts the engine on it
// before the next event dispatches.
func (s *simulator) fail(err error) {
	if s.err == nil && err != nil {
		s.err = err
	}
}

// defaultWatchdogCycles is the no-progress threshold when Config leaves
// WatchdogCycles zero. Instruction gaps cannot false-positive it: a gap of
// any size is absorbed in a single event that itself counts as progress.
const defaultWatchdogCycles = 1 << 20

// watchdogEventLimit bounds events dispatched without progress, catching
// livelocks that churn same-cycle events without advancing time.
const watchdogEventLimit = 1 << 20

// cancelPollEvents is how many event dispatches pass between context polls:
// frequent enough that cancellation lands within microseconds of real time,
// rare enough that the poll's synchronization cost vanishes from the hot
// path (the kernel dispatches ~10M events/s).
const cancelPollEvents = 1024

// watch runs before every event dispatch: it aborts the run on the first
// recorded error, polls the context, and implements the progress watchdog.
func (s *simulator) watch(now uint64) error {
	if s.err != nil {
		return s.err
	}
	if s.pollCount++; s.pollCount%cancelPollEvents == 0 && s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			if s.cfg.Label != "" {
				s.err = fmt.Errorf("sim: %s: run cancelled at cycle %d: %w", s.cfg.Label, now, err)
			} else {
				s.err = fmt.Errorf("sim: run cancelled at cycle %d: %w", now, err)
			}
			return s.err
		}
	}
	if s.progress != s.lastProgress {
		s.lastProgress = s.progress
		s.lastProgressAt = now
		s.eventsSinceProgress = 0
		return nil
	}
	s.eventsSinceProgress++
	if stalled := now - s.lastProgressAt; stalled > s.watchdogCycles {
		s.err = s.stallError(now, fmt.Sprintf("no progress for %d cycles", stalled))
		return s.err
	}
	if s.eventsSinceProgress > watchdogEventLimit {
		s.err = s.stallError(now, fmt.Sprintf("%d events dispatched without progress (livelock)", s.eventsSinceProgress))
		return s.err
	}
	return nil
}

// stallError diagnoses every unfinished processor: what it waits on, and for
// locks, who holds the contended lock.
func (s *simulator) stallError(now uint64, reason string) *check.StallError {
	e := &check.StallError{Label: s.cfg.Label, Cycle: now, Progress: s.progress, Reason: reason}
	for _, p := range s.procs {
		if p.finished {
			continue
		}
		st := check.ProcStall{Proc: p.id, Event: p.base + p.pc, Events: p.base + len(p.stream), Wait: check.WaitUnknown, Holder: -1}
		if p.waitingForSlot {
			st.Wait = check.WaitBufferSlot
		}
		if st.Wait == check.WaitUnknown {
			for _, inf := range p.inflight {
				if inf.cpuWaiting {
					st.Wait = check.WaitMemory
					st.Object, st.HasObject = inf.la, true
					break
				}
			}
		}
		if st.Wait == check.WaitUnknown {
			for i := range s.locks {
				ls := &s.locks[i]
				for _, q := range ls.queue {
					if q == p.id {
						st.Wait = check.WaitLock
						st.Object, st.HasObject = ls.addr, true
						st.Holder = ls.holder
					}
				}
			}
		}
		if st.Wait == check.WaitUnknown {
			for i := range s.barrs {
				bs := &s.barrs[i]
				for _, w := range bs.waiting {
					if w == p.id {
						st.Wait = check.WaitBarrier
						st.Object, st.HasObject = bs.addr, true
					}
				}
			}
		}
		e.Stalls = append(e.Stalls, st)
	}
	return e
}

// regionIndex returns the index of the region containing a, or len(regions)
// — the unattributed slot. Regions are sorted by base; binary search.
func (s *simulator) regionIndex(a memory.Addr) int {
	lo, hi := 0, len(s.regions)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		r := s.regions[mid]
		switch {
		case a < r.Base:
			hi = mid - 1
		case a >= r.End():
			lo = mid + 1
		default:
			return mid
		}
	}
	return len(s.regions)
}

// attributeMiss records a classified CPU miss against its data structure.
func (s *simulator) attributeMiss(a memory.Addr, class MissClass, falseSharing bool) {
	if s.regionTallies == nil {
		return
	}
	rm := &s.regionTallies[s.regionIndex(a)]
	rm.CPUMisses[class]++
	if falseSharing {
		rm.FalseSharing++
	}
}

type lockState struct {
	addr   memory.Addr
	holder int // processor id, or -1
	queue  []int
}

type barrierState struct {
	addr       memory.Addr
	arrived    int
	maxArrival uint64
	waiting    []int
}

func newSimulator(cfg Config, nprocs int) (*simulator, error) {
	s := &simulator{
		cfg:            cfg,
		eng:            &engine{},
		geom:           cfg.Geometry,
		uncont:         uint64(cfg.MemLatency - cfg.TransferCycles),
		proto:          coherence.ByKind(cfg.Protocol),
		updCycles:      uint64(cfg.UpdateCycles),
		watchdogCycles: cfg.WatchdogCycles,
	}
	s.tab = buildProtoTables(s.proto)
	s.rule = s.proto.Invariant()
	if s.updCycles == 0 {
		s.updCycles = uint64(cfg.InvalidateCycles + 2)
	}
	if s.watchdogCycles == 0 {
		s.watchdogCycles = defaultWatchdogCycles
	}
	if len(cfg.Regions) > 0 {
		s.regions = append([]memory.Region(nil), cfg.Regions...)
		sort.Slice(s.regions, func(i, j int) bool { return s.regions[i].Base < s.regions[j].Base })
		s.regionTallies = make([]RegionMisses, len(s.regions)+1)
	}
	s.lockIdx = make(map[memory.Addr]int32)
	s.barrIdx = make(map[memory.Addr]int32)
	icCfg := cfg.Interconnect
	// Route on line numbers, not raw line addresses: dropping the offset bits
	// interleaves consecutive lines across links.
	icCfg.RouteShift = uint(bits.TrailingZeros64(uint64(cfg.Geometry.LineSize)))
	ic, err := interconnect.New(icCfg, s.eng, nprocs)
	if err != nil {
		return nil, err
	}
	s.ic = ic
	if cfg.Obs != nil {
		s.rec = cfg.Obs
		rec := s.rec
		ic.SetObserver(func(link int, grant, occupancy uint64, op bus.Op, class bus.Class, proc int) {
			rec.BusOccupiedLink(link, grant, occupancy, op.String(), class.String(), proc)
		})
	}
	s.procs = make([]*proc, nprocs)
	for i := range s.procs {
		s.procs[i] = newProc(s, i)
	}
	return s, nil
}

// lockSlot returns the dense-slice index of lock a, registering it on
// first use.
func (s *simulator) lockSlot(a memory.Addr) int32 {
	if i, ok := s.lockIdx[a]; ok {
		return i
	}
	i := int32(len(s.locks))
	s.lockIdx[a] = i
	s.locks = append(s.locks, lockState{addr: a, holder: -1})
	return i
}

// barrSlot returns the dense-slice index of barrier id, registering it
// on first use.
func (s *simulator) barrSlot(id memory.Addr) int32 {
	if i, ok := s.barrIdx[id]; ok {
		return i
	}
	i := int32(len(s.barrs))
	s.barrIdx[id] = i
	s.barrs = append(s.barrs, barrierState{addr: id})
	return i
}

func (s *simulator) run() (*Result, error) {
	for _, p := range s.procs {
		s.eng.At(0, p.runFn)
	}
	if err := s.eng.run(s.watch); err != nil {
		return nil, err
	}
	if s.err != nil {
		return nil, s.err
	}
	res := &Result{Config: s.cfg, Counters: s.c, Bus: s.ic.Stats(), Procs: make([]ProcStats, len(s.procs))}
	if s.ic.Links() > 1 {
		res.Links = s.ic.LinkStats()
	}
	if s.regionTallies != nil {
		// Fold the dense per-region tallies into the name-keyed result map:
		// regions sharing a name merge, and regions that attracted no misses
		// are omitted (a name appears only once a miss lands in it, exactly
		// as the lazily populated map used to behave).
		res.RegionMisses = make(map[string]RegionMisses, len(s.regions))
		for i := range s.regionTallies {
			rm := s.regionTallies[i]
			if rm.Total() == 0 {
				continue
			}
			name := "(unattributed)"
			if i < len(s.regions) {
				name = s.regions[i].Name
			}
			agg := res.RegionMisses[name]
			for c := range agg.CPUMisses {
				agg.CPUMisses[c] += rm.CPUMisses[c]
			}
			agg.FalseSharing += rm.FalseSharing
			res.RegionMisses[name] = agg
		}
	}
	for i, p := range s.procs {
		if !p.finished {
			// The event queue drained with this processor still blocked — the
			// classic deadlock (a lock release that never happened, a barrier
			// a peer never reached). Report every blocked processor.
			return nil, s.stallError(s.eng.now, "event queue drained with unfinished processors")
		}
		res.Procs[i] = p.stats
		if p.stats.FinishTime > res.Cycles {
			res.Cycles = p.stats.FinishTime
		}
	}
	if s.rec != nil {
		for _, p := range s.procs {
			s.rec.ProcFinished(p.id, p.stats.FinishTime)
		}
		s.rec.Finish(res.Cycles)
		res.Obs = s.rec.Summary()
	}
	if s.cfg.Online.Enabled() {
		var agg prefetch.EngineStats
		for _, p := range s.procs {
			agg.Add(p.online.Stats())
		}
		res.Online = &agg
	}
	return res, nil
}

// snoopFetch performs the coherence actions of a fetch at its bus grant time
// and reports whether any other cache held a valid copy (which the protocol's
// FillState consults). Remote copies take the protocol's SnoopRead or — for
// exclusive fetches — SnoopWrite transition, recording word for false-sharing
// analysis when a copy is invalidated.
func (s *simulator) snoopFetch(now uint64, requester int, la memory.Addr, excl bool, word int) (sharers bool) {
	next, w := &s.tab.snoopRead, int(cache.NoInvalidatingWord)
	if excl {
		next, w = &s.tab.snoopWrite, word
	}
	for _, p := range s.procs {
		if p.id == requester {
			continue
		}
		if p.cache.SnoopTable(la, w, next) != cache.Invalid {
			sharers = true
			if s.rec != nil {
				s.observeSnoopKill(now, p, la)
			}
		}
		if p.victim != nil && p.victim.SnoopTable(la, w, next) != cache.Invalid {
			sharers = true
		}
		// The non-snooping prefetch buffer cannot track the line once another
		// processor fetches it — even a read fill may enter private-clean and
		// be written silently later — so any remote fill drops the entry.
		p.dropBuffered(la, now)
	}
	return sharers
}

// observeSnoopKill reports to the recorder a snoop that just invalidated a
// prefetched-but-unused copy — the lifetime the taxonomy scores against
// sharing. Callers guard with s.rec != nil so the disabled path pays a
// branch, not a call; the re-lookup runs only with recording enabled and
// mutates nothing.
func (s *simulator) observeSnoopKill(now uint64, p *proc, la memory.Addr) {
	if l := p.cache.Lookup(la); l != nil && !l.State.Valid() && l.PrefetchedUnused {
		s.rec.PrefetchInvalidated(p.id, uint64(la), now)
	}
}

// snoopInvalidate broadcasts an upgrade's invalidation: remote copies take
// the protocol's SnoopWrite transition.
func (s *simulator) snoopInvalidate(now uint64, requester int, la memory.Addr, word int) {
	for _, p := range s.procs {
		if p.id != requester {
			if p.cache.SnoopTable(la, word, &s.tab.snoopWrite) != cache.Invalid {
				if s.rec != nil {
					s.observeSnoopKill(now, p, la)
				}
			}
			if p.victim != nil {
				p.victim.SnoopTable(la, word, &s.tab.snoopWrite)
			}
			p.dropBuffered(la, now)
		}
	}
}

// snoopUpdate broadcasts a word-update: every remote valid copy absorbs the
// written word via the protocol's SnoopUpdate transition and stays resident.
// It reports whether any remote data cache still holds the line, which
// decides whether the writer remains the update-owner (more broadcasts to
// come) or takes the line exclusive. The non-snooping prefetch buffer still
// drops its entry — it has no way to fold the new word in.
func (s *simulator) snoopUpdate(now uint64, requester int, la memory.Addr) (sharers bool) {
	for _, p := range s.procs {
		if p.id == requester {
			continue
		}
		if p.cache.SnoopTable(la, int(cache.NoInvalidatingWord), &s.tab.snoopUpdate) != cache.Invalid {
			sharers = true
			s.c.UpdatesReceived++
		}
		if p.victim != nil && p.victim.SnoopTable(la, int(cache.NoInvalidatingWord), &s.tab.snoopUpdate) != cache.Invalid {
			sharers = true
		}
		p.dropBuffered(la, now)
	}
	return sharers
}

// releaseLock hands the lock to the next FCFS waiter, if any, at time now.
func (s *simulator) releaseLock(a memory.Addr, now uint64) {
	ls := &s.locks[s.lockSlot(a)]
	if len(ls.queue) == 0 {
		ls.holder = -1
		return
	}
	next := ls.queue[0]
	ls.queue = ls.queue[1:]
	ls.holder = next
	p := s.procs[next]
	p.stats.LockWait += now - p.waitStart
	if s.rec != nil {
		s.rec.Wait(p.id, obs.PhaseLockWait, p.waitStart, now)
	}
	s.eng.At(now, p.runFn)
}

// arriveBarrier registers proc p at barrier id. Every participant — the last
// arrival included — resumes at the latest arrival time, since processor
// clocks advance asynchronously. It always blocks the caller; the release
// event re-enters the processor past the barrier.
func (s *simulator) arriveBarrier(id memory.Addr, p *proc, now uint64) (blocked bool) {
	bs := &s.barrs[s.barrSlot(id)]
	bs.arrived++
	if now > bs.maxArrival {
		bs.maxArrival = now
	}
	if bs.arrived < len(s.procs) {
		bs.waiting = append(bs.waiting, p.id)
		return true
	}
	release := bs.maxArrival
	for _, wid := range bs.waiting {
		w := s.procs[wid]
		w.stats.BarrierWait += release - w.waitStart
		if s.rec != nil {
			s.rec.Wait(w.id, obs.PhaseBarrierWait, w.waitStart, release)
		}
		s.eng.At(release, w.runFn)
	}
	bs.arrived = 0
	bs.maxArrival = 0
	bs.waiting = bs.waiting[:0]
	p.stats.BarrierWait += release - now
	if s.rec != nil {
		s.rec.Wait(p.id, obs.PhaseBarrierWait, now, release)
	}
	s.eng.At(release, p.runFn)
	return true
}

// checkLine verifies the active protocol's ownership invariants for one line
// across all caches (internal/check; the rule comes from
// coherence.Protocol.Invariant). Enabled by Config.CheckInvariants. It is
// called at each bus grant touching the line — the transaction's
// serialization point, before snooping would repair a corrupted remote copy —
// and again after a fill installs. A violation fails the run with a
// *check.Violation carrying every cache's view of the line.
func (s *simulator) checkLine(now uint64, la memory.Addr) {
	states := make([]check.ProcLineState, len(s.procs))
	for i, p := range s.procs {
		ps := check.ProcLineState{Proc: p.id, State: p.cache.StateOf(la)}
		if p.victim != nil {
			ps.VictimState = p.victim.StateOf(la)
		}
		if inf := p.findInflight(la); inf != nil {
			ps.Inflight, ps.Excl, ps.IsPrefetch = true, inf.excl, inf.isPrefetch
		}
		states[i] = ps
	}
	if v := check.CheckLine(now, la, states, s.rule); v != nil {
		s.fail(v)
	}
}
