package sim_test

import (
	"testing"

	"busprefetch/internal/memory"
	"busprefetch/internal/sim"
	"busprefetch/internal/trace"
	"busprefetch/internal/workload"
)

func cfg() sim.Config {
	c := sim.DefaultConfig() // 100-cycle latency, 8-cycle transfer, 2-cycle invalidate
	return c
}

func run(t *testing.T, c sim.Config, streams ...trace.Stream) *sim.Result {
	t.Helper()
	res, err := sim.Run(c, &trace.Trace{Name: "test", Streams: streams})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	bad := []sim.Config{
		{},
		{Geometry: memory.DefaultGeometry(), MemLatency: 0, TransferCycles: 8, InvalidateCycles: 2, PrefetchBufferDepth: 16},
		{Geometry: memory.DefaultGeometry(), MemLatency: 100, TransferCycles: 0, InvalidateCycles: 2, PrefetchBufferDepth: 16},
		{Geometry: memory.DefaultGeometry(), MemLatency: 100, TransferCycles: 101, InvalidateCycles: 2, PrefetchBufferDepth: 16},
		{Geometry: memory.DefaultGeometry(), MemLatency: 100, TransferCycles: 8, InvalidateCycles: 0, PrefetchBufferDepth: 16},
		{Geometry: memory.DefaultGeometry(), MemLatency: 100, TransferCycles: 8, InvalidateCycles: 2, PrefetchBufferDepth: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if err := cfg().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestRunRejectsInvalidTrace(t *testing.T) {
	_, err := sim.Run(cfg(), &trace.Trace{Streams: []trace.Stream{{{Kind: trace.Unlock, Addr: 1}}}})
	if err == nil {
		t.Error("unbalanced unlock accepted")
	}
	_, err = sim.Run(cfg(), &trace.Trace{})
	if err == nil {
		t.Error("empty trace accepted")
	}
}

func TestSingleMissTiming(t *testing.T) {
	// One processor, one cold read: miss detected at 0, uncontended phase
	// 92 cycles, transfer 8, access completion 1 -> finish at 101.
	res := run(t, cfg(), trace.Stream{{Kind: trace.Read, Addr: 0x1000}})
	if res.Cycles != 101 {
		t.Errorf("cycles = %d, want 101", res.Cycles)
	}
	if res.Counters.TotalCPUMisses() != 1 {
		t.Errorf("misses = %d", res.Counters.TotalCPUMisses())
	}
	if res.Counters.CPUMisses[sim.NonSharingNotPref] != 1 {
		t.Error("cold miss not classified non-sharing/not-prefetched")
	}
	if res.Bus.BusyCycles != 8 {
		t.Errorf("bus busy %d, want 8", res.Bus.BusyCycles)
	}
}

func TestHitTiming(t *testing.T) {
	// Second access to the same line hits: one extra cycle.
	res := run(t, cfg(), trace.Stream{
		{Kind: trace.Read, Addr: 0x1000},
		{Kind: trace.Read, Addr: 0x1004},
	})
	if res.Cycles != 102 {
		t.Errorf("cycles = %d, want 102", res.Cycles)
	}
	if res.Counters.TotalCPUMisses() != 1 {
		t.Errorf("misses = %d, want 1", res.Counters.TotalCPUMisses())
	}
}

func TestGapCostsInstructionCycles(t *testing.T) {
	res := run(t, cfg(), trace.Stream{
		{Kind: trace.Read, Addr: 0x1000},
		{Kind: trace.Read, Addr: 0x1004, Gap: 17},
	})
	if res.Cycles != 102+17 {
		t.Errorf("cycles = %d, want 119", res.Cycles)
	}
}

func TestSiloWriteGetsExclusiveSilently(t *testing.T) {
	// Illinois: a read with no other sharers fills Exclusive, so a
	// subsequent write needs no bus operation.
	res := run(t, cfg(), trace.Stream{
		{Kind: trace.Read, Addr: 0x1000},
		{Kind: trace.Write, Addr: 0x1000},
	})
	if res.Cycles != 102 {
		t.Errorf("cycles = %d, want 102 (silent E->M)", res.Cycles)
	}
	if got := res.Bus.Ops[1]; got != 0 { // OpInvalidate
		t.Errorf("invalidation ops = %d, want 0", got)
	}
}

func TestWriteToSharedLinePostsInvalidation(t *testing.T) {
	// Proc 1 reads the line first (so proc 0's read fills Shared), then
	// proc 0 writes it: that write must post an invalidation bus operation.
	res := run(t, cfg(),
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000, Gap: 150},
			{Kind: trace.Write, Addr: 0x1000, Gap: 300},
		},
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000},
		},
	)
	if got := res.Bus.Ops[1]; got != 1 { // OpInvalidate
		t.Errorf("invalidation ops = %d, want 1", got)
	}
}

func TestInvalidationMissAndFalseSharing(t *testing.T) {
	// Proc 0 reads word 0 of a line; proc 1 writes word 4 of the same line;
	// proc 0 re-reads word 0: an invalidation miss whose invalidating write
	// touched a word proc 0 never accessed -> false sharing.
	res := run(t, cfg(),
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000},
			{Kind: trace.Read, Addr: 0x1000, Gap: 600},
		},
		trace.Stream{
			{Kind: trace.Write, Addr: 0x1010, Gap: 200},
		},
	)
	if got := res.Counters.InvalidationMisses(); got != 1 {
		t.Fatalf("invalidation misses = %d, want 1", got)
	}
	if res.Counters.FalseSharing != 1 {
		t.Errorf("false sharing = %d, want 1", res.Counters.FalseSharing)
	}
}

func TestTrueSharingMissIsNotFalse(t *testing.T) {
	// Same shape, but proc 1 writes the word proc 0 reads.
	res := run(t, cfg(),
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000},
			{Kind: trace.Read, Addr: 0x1000, Gap: 600},
		},
		trace.Stream{
			{Kind: trace.Write, Addr: 0x1000, Gap: 200},
		},
	)
	if got := res.Counters.InvalidationMisses(); got != 1 {
		t.Fatalf("invalidation misses = %d, want 1", got)
	}
	if res.Counters.FalseSharing != 0 {
		t.Errorf("false sharing = %d, want 0 (write hit an accessed word)", res.Counters.FalseSharing)
	}
}

func TestReplacedLineIsNonSharingMiss(t *testing.T) {
	// Two lines mapping to the same set of a tiny cache: the second fetch
	// evicts the first, so re-reading the first is a non-sharing miss.
	c := cfg()
	c.Geometry = memory.Geometry{CacheSize: 4 * 32, LineSize: 32, Assoc: 1}
	res := run(t, c, trace.Stream{
		{Kind: trace.Read, Addr: 0},
		{Kind: trace.Read, Addr: 4 * 32},
		{Kind: trace.Read, Addr: 0},
	})
	if got := res.Counters.CPUMisses[sim.NonSharingNotPref]; got != 3 {
		t.Errorf("non-sharing misses = %d, want 3", got)
	}
	if res.Counters.InvalidationMisses() != 0 {
		t.Error("replacement misclassified as invalidation")
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	// A prefetch issued far enough ahead turns the demand access into a hit.
	res := run(t, cfg(), trace.Stream{
		{Kind: trace.Prefetch, Addr: 0x1000},
		{Kind: trace.Read, Addr: 0x1000, Gap: 200},
	})
	if got := res.Counters.TotalCPUMisses(); got != 0 {
		t.Errorf("CPU misses = %d, want 0 (prefetch covered)", got)
	}
	if res.Counters.PrefetchFetches != 1 {
		t.Errorf("prefetch fetches = %d", res.Counters.PrefetchFetches)
	}
	// 1 prefetch instr + 200 gap + 1 access = 202.
	if res.Cycles != 202 {
		t.Errorf("cycles = %d, want 202", res.Cycles)
	}
}

func TestPrefetchInProgressMiss(t *testing.T) {
	// The demand access arrives 10 cycles after the prefetch: it merges and
	// waits for the residual latency.
	res := run(t, cfg(), trace.Stream{
		{Kind: trace.Prefetch, Addr: 0x1000},
		{Kind: trace.Read, Addr: 0x1000, Gap: 10},
	})
	if got := res.Counters.CPUMisses[sim.PrefetchInProgress]; got != 1 {
		t.Fatalf("prefetch-in-progress misses = %d, want 1", got)
	}
	// Prefetch issued at 1 (after its instruction cycle), fills at 101; the
	// read completes at 102.
	if res.Cycles != 102 {
		t.Errorf("cycles = %d, want 102", res.Cycles)
	}
}

func TestPrefetchOfResidentLineIsFree(t *testing.T) {
	res := run(t, cfg(), trace.Stream{
		{Kind: trace.Read, Addr: 0x1000},
		{Kind: trace.Prefetch, Addr: 0x1000},
		{Kind: trace.Read, Addr: 0x1000},
	})
	if res.Counters.PrefetchCacheHits != 1 {
		t.Errorf("prefetch cache hits = %d", res.Counters.PrefetchCacheHits)
	}
	if res.Counters.PrefetchFetches != 0 {
		t.Errorf("prefetch fetches = %d, want 0", res.Counters.PrefetchFetches)
	}
}

func TestDuplicatePrefetchMerges(t *testing.T) {
	res := run(t, cfg(), trace.Stream{
		{Kind: trace.Prefetch, Addr: 0x1000},
		{Kind: trace.Prefetch, Addr: 0x1004},
		{Kind: trace.Read, Addr: 0x1000, Gap: 300},
	})
	if res.Counters.PrefetchMerged != 1 {
		t.Errorf("merged prefetches = %d, want 1", res.Counters.PrefetchMerged)
	}
	if res.Counters.PrefetchFetches != 1 {
		t.Errorf("prefetch fetches = %d, want 1", res.Counters.PrefetchFetches)
	}
}

func TestPrefetchBufferBackpressure(t *testing.T) {
	c := cfg()
	c.PrefetchBufferDepth = 2
	var s trace.Stream
	for i := 0; i < 4; i++ {
		s = append(s, trace.Event{Kind: trace.Prefetch, Addr: memory.Addr(0x1000 + 64*i)})
	}
	s = append(s, trace.Event{Kind: trace.Read, Addr: 0x1000, Gap: 500})
	res := run(t, c, s)
	var buf uint64
	for _, p := range res.Procs {
		buf += p.BufferWait
	}
	if buf == 0 {
		t.Error("no buffer-full stall with depth 2 and 4 outstanding prefetches")
	}
}

func TestExclusivePrefetchAllowsSilentWrite(t *testing.T) {
	res := run(t, cfg(), trace.Stream{
		{Kind: trace.PrefetchExcl, Addr: 0x1000},
		{Kind: trace.Write, Addr: 0x1000, Gap: 200},
	})
	if got := res.Bus.Ops[1]; got != 0 {
		t.Errorf("invalidation ops = %d, want 0 after exclusive prefetch", got)
	}
	if res.Counters.TotalCPUMisses() != 0 {
		t.Errorf("misses = %d", res.Counters.TotalCPUMisses())
	}
}

func TestExclusivePrefetchInvalidatesRemoteCopies(t *testing.T) {
	// Proc 1 holds the line; proc 0's exclusive prefetch invalidates it, so
	// proc 1's re-read is an invalidation miss classified "prefetched" on
	// proc 0's side... and proc 1 sees a plain invalidation miss.
	res := run(t, cfg(),
		trace.Stream{
			{Kind: trace.PrefetchExcl, Addr: 0x1000, Gap: 200},
		},
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000},
			{Kind: trace.Read, Addr: 0x1000, Gap: 600},
		},
	)
	if got := res.Counters.InvalidationMisses(); got != 1 {
		t.Errorf("invalidation misses = %d, want 1 (victim of exclusive prefetch)", got)
	}
}

func TestWastedPrefetchClassifiedPrefetched(t *testing.T) {
	// Tiny cache: the second prefetch evicts the first line before its use,
	// so the demand miss is "non-sharing, prefetched".
	c := cfg()
	c.Geometry = memory.Geometry{CacheSize: 2 * 32, LineSize: 32, Assoc: 1}
	res := run(t, c, trace.Stream{
		{Kind: trace.Prefetch, Addr: 0},
		{Kind: trace.Prefetch, Addr: 2 * 32, Gap: 150}, // same set, evicts line 0
		{Kind: trace.Read, Addr: 0, Gap: 300},
	})
	if got := res.Counters.CPUMisses[sim.NonSharingPref]; got != 1 {
		t.Errorf("non-sharing prefetched misses = %d, want 1 (components: %v)", got, res.Counters.CPUMisses)
	}
}

func TestInvalidatedPrefetchClassifiedInvalPrefetched(t *testing.T) {
	// Proc 0 prefetches a line; proc 1 writes it before proc 0's use.
	res := run(t, cfg(),
		trace.Stream{
			{Kind: trace.Prefetch, Addr: 0x1000},
			{Kind: trace.Read, Addr: 0x1000, Gap: 800},
		},
		trace.Stream{
			{Kind: trace.Write, Addr: 0x1010, Gap: 300},
		},
	)
	if got := res.Counters.CPUMisses[sim.InvalPref]; got != 1 {
		t.Errorf("invalidation-prefetched misses = %d (components %v)", got, res.Counters.CPUMisses)
	}
}

func TestLockMutualExclusionAndFCFS(t *testing.T) {
	// Both processors contend for one lock; the loser must wait for the
	// holder's unlock.
	res := run(t, cfg(),
		trace.Stream{
			{Kind: trace.Lock, Addr: 0x2000},
			{Kind: trace.Read, Addr: 0x3000, Gap: 50},
			{Kind: trace.Unlock, Addr: 0x2000},
		},
		trace.Stream{
			{Kind: trace.Lock, Addr: 0x2000, Gap: 5},
			{Kind: trace.Read, Addr: 0x4000, Gap: 50},
			{Kind: trace.Unlock, Addr: 0x2000},
		},
	)
	var lockWait uint64
	for _, p := range res.Procs {
		lockWait += p.LockWait
	}
	if lockWait == 0 {
		t.Error("no lock contention recorded")
	}
	if res.Counters.SyncRefs != 4 {
		t.Errorf("sync refs = %d, want 4 (2 locks + 2 unlocks)", res.Counters.SyncRefs)
	}
}

func TestBarrierReleasesAtLatestArrival(t *testing.T) {
	// Proc 0 reaches the barrier after ~101 cycles (one miss); proc 1
	// arrives at cycle 5. Both must leave at proc 0's arrival time.
	res := run(t, cfg(),
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000},
			{Kind: trace.Barrier, Addr: 1},
			{Kind: trace.Read, Addr: 0x1004},
		},
		trace.Stream{
			{Kind: trace.Barrier, Addr: 1, Gap: 5},
			{Kind: trace.Read, Addr: 0x5000},
		},
	)
	if res.Procs[1].BarrierWait < 90 {
		t.Errorf("proc 1 barrier wait = %d, want ~96", res.Procs[1].BarrierWait)
	}
	// Proc 1 finishes its read ~101 cycles after release (~101): ~202.
	if res.Procs[1].FinishTime < 200 {
		t.Errorf("proc 1 finished at %d, too early", res.Procs[1].FinishTime)
	}
}

func TestRepeatedBarrier(t *testing.T) {
	mk := func() trace.Stream {
		return trace.Stream{
			{Kind: trace.Read, Addr: 0x1000},
			{Kind: trace.Barrier, Addr: 1},
			{Kind: trace.Read, Addr: 0x2000},
			{Kind: trace.Barrier, Addr: 1}, // same id reused
		}
	}
	res := run(t, cfg(), mk(), mk(), mk())
	if res.Cycles == 0 {
		t.Fatal("no progress through repeated barriers")
	}
}

func TestCacheToCacheSharingStates(t *testing.T) {
	// After proc 0 fetches and proc 1 fetches the same line, both hold it
	// Shared; a write by proc 0 then posts an invalidation and proc 1
	// misses.
	res := run(t, cfg(),
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000},
			{Kind: trace.Write, Addr: 0x1000, Gap: 500},
		},
		trace.Stream{
			{Kind: trace.Read, Addr: 0x1000, Gap: 150},
			{Kind: trace.Read, Addr: 0x1000, Gap: 800},
		},
	)
	if got := res.Bus.Ops[1]; got != 1 {
		t.Errorf("invalidation ops = %d, want 1", got)
	}
	if got := res.Counters.InvalidationMisses(); got != 1 {
		t.Errorf("invalidation misses = %d, want 1", got)
	}
}

func TestBusUtilizationBounded(t *testing.T) {
	res := run(t, cfg(), trace.Stream{{Kind: trace.Read, Addr: 0}})
	if u := res.BusUtilization(); u < 0 || u > 1 {
		t.Errorf("bus utilization %f out of range", u)
	}
	if u := res.MeanProcUtilization(); u <= 0 || u > 1 {
		t.Errorf("proc utilization %f out of range", u)
	}
}

func TestWaitBreakdownSumsToOne(t *testing.T) {
	w, err := workload.ByName("mp3d")
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := w.Generate(workload.Params{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg(), tr)
	if err != nil {
		t.Fatal(err)
	}
	busy, mem, lock, barrier, buffer := res.WaitBreakdown()
	sum := busy + mem + lock + barrier + buffer
	if sum < 0.95 || sum > 1.01 {
		t.Errorf("wait breakdown sums to %f (busy %f mem %f lock %f barrier %f buffer %f)",
			sum, busy, mem, lock, barrier, buffer)
	}
}

// TestCoherenceInvariants runs every workload at small scale with the MESI
// invariant checker enabled; any single-owner violation panics inside the
// simulator.
func TestCoherenceInvariants(t *testing.T) {
	for _, name := range []string{"topopt", "mp3d", "locus", "pverify", "water"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			tr, _, err := w.Generate(workload.Params{Scale: 0.03, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			c := cfg()
			c.CheckInvariants = true
			if _, err := sim.Run(c, tr); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeterminism: identical configurations must produce identical results.
func TestDeterminism(t *testing.T) {
	w, err := workload.ByName("pverify")
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := w.Generate(workload.Params{Scale: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.Run(cfg(), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(cfg(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Counters != b.Counters {
		t.Error("simulation is not deterministic")
	}
}

func TestSlowerBusRunsLonger(t *testing.T) {
	w, err := workload.ByName("mp3d")
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := w.Generate(workload.Params{Scale: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for _, transfer := range []int{4, 16, 32} {
		c := cfg()
		c.TransferCycles = transfer
		res, err := sim.Run(c, tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles <= prev {
			t.Errorf("T=%d cycles %d not greater than previous %d", transfer, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}
