package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"busprefetch/internal/memory"
	"busprefetch/internal/prefetch"
	"busprefetch/internal/trace"
	"busprefetch/internal/workload"
)

// streamTestCell runs one workload/strategy cell both ways — materialized
// (Generate, Annotate, Run) and streamed (Source, AnnotateSource,
// RunSource) — and requires identical Results.
func streamTestCell(t *testing.T, w *workload.Workload, wp workload.Params, opt prefetch.Options) {
	t.Helper()
	cfg := DefaultConfig()

	tr, _, err := w.Generate(wp)
	if err != nil {
		t.Fatal(err)
	}
	ann, err := prefetch.Annotate(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(cfg, ann)
	if err != nil {
		t.Fatal(err)
	}

	src, _, err := w.Source(wp)
	if err != nil {
		t.Fatal(err)
	}
	annSrc, err := prefetch.AnnotateSource(src, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSource(cfg, annSrc)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Errorf("streamed result differs from materialized result:\n got %+v\nwant %+v", got, want)
	}
}

func TestRunSourceMatchesRun(t *testing.T) {
	for _, w := range workload.All() {
		for _, strat := range []prefetch.Strategy{prefetch.NP, prefetch.PREF, prefetch.PWS} {
			w, strat := w, strat
			t.Run(w.Name+"/"+strat.String(), func(t *testing.T) {
				t.Parallel()
				streamTestCell(t, w, workload.Params{Scale: 0.05, Seed: 7},
					prefetch.Options{Strategy: strat, Geometry: memory.DefaultGeometry()})
			})
		}
	}
}

// kindSource yields a hand-built per-proc event sequence; it exercises the
// streaming replay's inline validation, which materialized traces get from
// trace.Validate up front.
type kindSource struct {
	streams []trace.Stream
}

func (s *kindSource) Name() string { return "hand" }

func (s *kindSource) Procs() int { return len(s.streams) }

func (s *kindSource) Events(proc int) trace.Iterator {
	st := s.streams[proc]
	return trace.NewPipe(func(flush func([]trace.Event) []trace.Event) error {
		buf := flush(nil)
		for _, e := range st {
			buf = append(buf, e)
		}
		flush(buf)
		return nil
	})
}

func TestRunSourceInlineValidation(t *testing.T) {
	read := trace.Event{Kind: trace.Read, Addr: 0x1000}
	cases := []struct {
		name    string
		streams []trace.Stream
		want    string
	}{
		{
			name:    "unknown kind",
			streams: []trace.Stream{{read, {Kind: trace.Kind(250), Addr: 0x2000}}, {read}},
			want:    "unknown kind",
		},
		{
			name: "re-acquire held lock",
			streams: []trace.Stream{
				{{Kind: trace.Lock, Addr: 0x9000}, {Kind: trace.Lock, Addr: 0x9000}},
				{read},
			},
			want: "re-acquires held lock",
		},
		{
			name:    "release unheld lock",
			streams: []trace.Stream{{{Kind: trace.Unlock, Addr: 0x9000}}, {read}},
			want:    "releases unheld lock",
		},
		{
			name: "ends holding a lock",
			streams: []trace.Stream{
				{{Kind: trace.Lock, Addr: 0x9000}, read},
				{read},
			},
			want: "ends holding",
		},
		{
			name: "barrier value mismatch",
			streams: []trace.Stream{
				{{Kind: trace.Barrier, Addr: 0}},
				{{Kind: trace.Barrier, Addr: 1}},
			},
			want: "barrier",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunSource(DefaultConfig(), &kindSource{streams: tc.streams})
			if err == nil {
				t.Fatalf("invalid stream simulated without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want it to mention %q", err, tc.want)
			}
		})
	}
}

// errSource fails mid-stream; the run must surface the error, not hang or
// report a stall.
type errSource struct{ boom error }

func (s *errSource) Name() string { return "err" }

func (s *errSource) Procs() int { return 2 }

func (s *errSource) Events(proc int) trace.Iterator {
	boom := s.boom
	return trace.NewPipe(func(flush func([]trace.Event) []trace.Event) error {
		buf := flush(nil)
		buf = append(buf, trace.Event{Kind: trace.Read, Addr: 0x1000})
		flush(buf)
		if proc == 1 {
			return boom
		}
		return nil
	})
}

func TestRunSourceIteratorError(t *testing.T) {
	boom := errors.New("synthetic stream failure")
	_, err := RunSource(DefaultConfig(), &errSource{boom: boom})
	if err == nil {
		t.Fatal("failing source simulated without error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("error = %v, want it to wrap the source failure", err)
	}
}

func TestRunSourceRejectsBadProcs(t *testing.T) {
	if _, err := RunSource(DefaultConfig(), &kindSource{}); err == nil {
		t.Error("zero-proc source accepted")
	}
	many := &kindSource{streams: make([]trace.Stream, 65)}
	if _, err := RunSource(DefaultConfig(), many); err == nil {
		t.Error("65-proc source accepted")
	}
}
