package sim_test

import (
	"errors"
	"strings"
	"testing"

	"busprefetch/internal/check"
	"busprefetch/internal/sim"
	"busprefetch/internal/trace"
)

// TestStallReportNamesCellAndProgress: when the sweep engine labels a run
// (sim.Config.Label carries the cell, e.g. "mp3d/PREF/T=8"), a watchdog stall
// must surface that label and an elapsed-progress snapshot, so a stall report
// from a 25-cell sweep says which cell hung and how far into the run — not
// just that "a" simulation stopped.
func TestStallReportNamesCellAndProgress(t *testing.T) {
	c := cfg()
	c.Label = "mp3d/PREF/T=8"
	c.Faults = &check.Plan{DropReleases: []check.LockDrop{
		{Proc: 0, Nth: -1},
		{Proc: 1, Nth: -1},
	}}
	lock := trace.Stream{
		{Kind: trace.Lock, Addr: 0x40},
		{Kind: trace.Read, Addr: 0x1000, Gap: 10},
		{Kind: trace.Unlock, Addr: 0x40},
	}
	_, err := sim.Run(c, &trace.Trace{Name: "test", Streams: []trace.Stream{lock, lock}})
	if err == nil {
		t.Fatal("run with dropped lock releases completed")
	}
	var stall *check.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("error is %T (%v), want *check.StallError", err, err)
	}
	if stall.Label != c.Label {
		t.Errorf("stall label = %q, want %q", stall.Label, c.Label)
	}
	if stall.Progress == 0 {
		t.Error("stall progress snapshot is zero; the lock winner retired work before the loser starved")
	}
	if stall.Cycle == 0 {
		t.Error("stall cycle snapshot is zero")
	}
	if !strings.Contains(err.Error(), "[mp3d/PREF/T=8]") {
		t.Errorf("stall message does not name the cell: %q", err.Error())
	}
	// An unlabeled run reports the same stall without a label decoration.
	c.Label = ""
	_, err = sim.Run(c, &trace.Trace{Name: "test", Streams: []trace.Stream{lock, lock}})
	var bare *check.StallError
	if !errors.As(err, &bare) {
		t.Fatalf("unlabeled run error is %T (%v), want *check.StallError", err, err)
	}
	if bare.Label != "" {
		t.Errorf("unlabeled run reported label %q", bare.Label)
	}
	if strings.Contains(err.Error(), "[") {
		t.Errorf("unlabeled stall message has a label decoration: %q", err.Error())
	}
}
