package sim

import (
	"errors"
	"strings"
	"testing"

	"busprefetch/internal/check"
	"busprefetch/internal/trace"
)

func watchdogSim(t *testing.T) *simulator {
	t.Helper()
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 100
	s, err := newSimulator(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.procs[0].stream = trace.Stream{{Kind: trace.Read, Addr: 0x1000}}
	return s
}

func TestWatchdogNoProgressTrips(t *testing.T) {
	s := watchdogSim(t)
	if err := s.watch(0); err != nil {
		t.Fatalf("watch tripped immediately: %v", err)
	}
	// Progress resets the clock.
	s.progress++
	if err := s.watch(50); err != nil {
		t.Fatalf("watch tripped on progress: %v", err)
	}
	if err := s.watch(140); err != nil {
		t.Fatalf("watch tripped within threshold: %v", err)
	}
	err := s.watch(151) // 101 cycles past the last progress at 50
	if err == nil {
		t.Fatal("watchdog did not trip after the threshold")
	}
	var stall *check.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("error is %T, want *check.StallError", err)
	}
	if !strings.Contains(stall.Reason, "no progress") {
		t.Errorf("reason = %q", stall.Reason)
	}
	// Once tripped, the error is sticky.
	if err2 := s.watch(152); err2 != err {
		t.Errorf("watch after trip = %v, want the same error", err2)
	}
}

func TestWatchdogLivelockTrips(t *testing.T) {
	s := watchdogSim(t)
	s.progress++
	if err := s.watch(10); err != nil {
		t.Fatal(err)
	}
	// Same-cycle events churning without progress: the event-count limit
	// catches what the cycle threshold cannot.
	s.eventsSinceProgress = watchdogEventLimit
	err := s.watch(10)
	if err == nil {
		t.Fatal("livelock limit did not trip")
	}
	var stall *check.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("error is %T, want *check.StallError", err)
	}
	if !strings.Contains(stall.Reason, "livelock") {
		t.Errorf("reason = %q", stall.Reason)
	}
}

func TestWatchdogDefaultThreshold(t *testing.T) {
	cfg := DefaultConfig()
	s, err := newSimulator(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.watchdogCycles != defaultWatchdogCycles {
		t.Errorf("watchdogCycles = %d, want default %d", s.watchdogCycles, uint64(defaultWatchdogCycles))
	}
	// Huge instruction gaps must not trip the default watchdog: a gap is one
	// event that itself counts as progress (see proc.run).
	big := &trace.Trace{Streams: []trace.Stream{
		{{Kind: trace.Read, Addr: 0x1000, Gap: 1 << 24}, {Kind: trace.Read, Addr: 0x2000, Gap: 1 << 24}},
	}}
	if _, err := Run(cfg, big); err != nil {
		t.Errorf("huge-gap trace tripped the watchdog: %v", err)
	}
}

func TestFailKeepsFirstError(t *testing.T) {
	s := watchdogSim(t)
	first := errors.New("first")
	s.fail(first)
	s.fail(errors.New("second"))
	if s.err != first {
		t.Errorf("err = %v, want the first failure", s.err)
	}
	s2 := watchdogSim(t)
	s2.fail(nil)
	if s2.err != nil {
		t.Errorf("fail(nil) recorded %v", s2.err)
	}
}
