package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"busprefetch/internal/memory"
)

// The binary trace format is a small, self-describing container so generated
// traces can be saved and replayed without regenerating the workload:
//
//	magic "BPTR" | version u8 | name len uvarint | name bytes
//	proc count uvarint
//	per stream: event count uvarint, then per event:
//	  kind u8 | gap uvarint | addr delta zigzag-varint (delta from previous
//	  addr in the stream, which compresses the strided accesses workloads
//	  produce)
//	crc32 (IEEE) of everything above, little-endian u32  [version >= 2]
//
// All integers are unsigned varints except the address delta, which is
// zigzag-encoded because strides run both directions.
//
// Version history:
//
//	1: initial format, no checksum.
//	2: appends a CRC32 footer covering every preceding byte, and Decode
//	   additionally rejects trailing garbage after the footer.
//
// Decode reads both versions and is safe on adversarial input: every count
// and length is bounded before allocation, unknown versions and kinds are
// errors, and a version-2 trace whose bytes were corrupted in storage or
// transit fails the CRC check with a diagnostic error. Decode never panics.

const (
	codecMagic   = "BPTR"
	codecVersion = 2

	// maxNameLen bounds the workload-name field.
	maxNameLen = 1 << 20
	// maxCodecProcs mirrors the simulator's 64-processor limit.
	maxCodecProcs = 64
	// maxStreamEvents bounds one processor's event count. The cap exists so
	// a corrupt or hostile count cannot drive allocation; real traces are
	// orders of magnitude smaller.
	maxStreamEvents = 1 << 28
	// preallocEvents caps the capacity trusted from a declared event count;
	// larger streams grow as their bytes actually arrive, so a huge declared
	// count in a tiny file cannot allocate gigabytes.
	preallocEvents = 1 << 16
)

// crcWriter tees every written byte into a running CRC32. Write errors are
// sticky so the encoding helpers can stay unconditional; the first error
// surfaces at the end.
type crcWriter struct {
	w   *bufio.Writer
	crc hash.Hash32
	err error
}

func (c *crcWriter) write(p []byte) {
	if c.err != nil {
		return
	}
	if _, err := c.w.Write(p); err != nil {
		c.err = err
		return
	}
	c.crc.Write(p) //nolint:errcheck // hash writes cannot fail
}

func (c *crcWriter) writeByte(b byte) { c.write([]byte{b}) }

func (c *crcWriter) writeUvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	c.write(buf[:n])
}

func (c *crcWriter) writeVarint(v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	c.write(buf[:n])
}

// Encode writes the trace to w in the binary trace format (version 2, with
// a CRC32 footer). Traces exceeding the format's hard limits are rejected
// rather than written unreadably.
func Encode(w io.Writer, t *Trace) error {
	if len(t.Name) > maxNameLen {
		return fmt.Errorf("trace: name of %d bytes exceeds the %d-byte limit", len(t.Name), maxNameLen)
	}
	if len(t.Streams) > maxCodecProcs {
		return fmt.Errorf("trace: %d processors exceeds the %d-processor limit", len(t.Streams), maxCodecProcs)
	}
	for p, s := range t.Streams {
		if len(s) > maxStreamEvents {
			return fmt.Errorf("trace: proc %d has %d events, limit %d", p, len(s), maxStreamEvents)
		}
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw, crc: crc32.NewIEEE()}
	cw.write([]byte(codecMagic))
	cw.writeByte(codecVersion)
	cw.writeUvarint(uint64(len(t.Name)))
	cw.write([]byte(t.Name))
	cw.writeUvarint(uint64(len(t.Streams)))
	for _, s := range t.Streams {
		cw.writeUvarint(uint64(len(s)))
		prev := uint64(0)
		for _, e := range s {
			cw.writeByte(byte(e.Kind))
			cw.writeUvarint(uint64(e.Gap))
			delta := int64(uint64(e.Addr) - prev)
			cw.writeVarint(delta)
			prev = uint64(e.Addr)
		}
	}
	if cw.err != nil {
		return cw.err
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], cw.crc.Sum32())
	if _, err := bw.Write(foot[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// crcReader hashes exactly the bytes Decode consumes. It sits above the
// bufio.Reader, so buffered readahead never leaks into the hash — only what
// the decoder actually reads is covered, leaving the CRC footer outside.
type crcReader struct {
	br  *bufio.Reader
	crc hash.Hash32
	one [1]byte
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err != nil {
		return 0, err
	}
	c.one[0] = b
	c.crc.Write(c.one[:]) //nolint:errcheck // hash writes cannot fail
	return b, nil
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	if n > 0 {
		c.crc.Write(p[:n]) //nolint:errcheck // hash writes cannot fail
	}
	return n, err
}

// Decode reads a trace previously written by Encode. It accepts format
// versions 1 (no checksum) and 2 (CRC32 footer). Decode validates every
// count and length before allocating, so corrupt, truncated or adversarial
// input yields an error — never a panic or an out-of-memory crash.
func Decode(r io.Reader) (*Trace, error) {
	cr := &crcReader{br: bufio.NewReader(r), crc: crc32.NewIEEE()}
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("trace: bad magic %q (not a BPTR trace)", magic)
	}
	ver, err := cr.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if ver < 1 || ver > codecVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (this build reads versions 1-%d)", ver, codecVersion)
	}
	nameLen, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("trace: name length %d exceeds the %d-byte limit", nameLen, maxNameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(cr, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	procs, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("trace: reading processor count: %w", err)
	}
	if procs > maxCodecProcs {
		return nil, fmt.Errorf("trace: %d processors exceeds the %d-processor limit", procs, maxCodecProcs)
	}
	t := &Trace{Name: string(name), Streams: make([]Stream, procs)}
	for p := range t.Streams {
		n, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, fmt.Errorf("trace: proc %d: reading event count: %w", p, err)
		}
		if n > maxStreamEvents {
			return nil, fmt.Errorf("trace: proc %d declares %d events, limit %d", p, n, maxStreamEvents)
		}
		prealloc := n
		if prealloc > preallocEvents {
			prealloc = preallocEvents
		}
		s := make(Stream, 0, prealloc)
		prev := uint64(0)
		for i := uint64(0); i < n; i++ {
			kb, err := cr.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: proc %d event %d: reading kind: %w", p, i, err)
			}
			if Kind(kb) >= numKinds {
				return nil, fmt.Errorf("trace: proc %d event %d: unknown kind %d", p, i, kb)
			}
			gap, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, fmt.Errorf("trace: proc %d event %d: reading gap: %w", p, i, err)
			}
			if gap > 1<<32-1 {
				return nil, fmt.Errorf("trace: proc %d event %d: gap %d overflows", p, i, gap)
			}
			delta, err := binary.ReadVarint(cr)
			if err != nil {
				return nil, fmt.Errorf("trace: proc %d event %d: reading address delta: %w", p, i, err)
			}
			prev += uint64(delta)
			s = append(s, Event{Kind: Kind(kb), Gap: uint32(gap), Addr: memory.Addr(prev)})
		}
		t.Streams[p] = s
	}
	if ver >= 2 {
		// The footer is read below the hasher so it does not hash itself.
		var foot [4]byte
		if _, err := io.ReadFull(cr.br, foot[:]); err != nil {
			return nil, fmt.Errorf("trace: reading CRC footer: %w", err)
		}
		want := binary.LittleEndian.Uint32(foot[:])
		if got := cr.crc.Sum32(); got != want {
			return nil, fmt.Errorf("trace: CRC mismatch: footer %08x, computed %08x (corrupt trace file)", want, got)
		}
		if _, err := cr.br.ReadByte(); err != io.EOF {
			return nil, fmt.Errorf("trace: trailing data after CRC footer")
		}
	}
	return t, nil
}
