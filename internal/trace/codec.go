package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"busprefetch/internal/memory"
)

// The binary trace format is a small, self-describing container so generated
// traces can be saved and replayed without regenerating the workload:
//
//	magic "BPTR" | version u8 | name len uvarint | name bytes
//	proc count uvarint
//	per stream: event count uvarint, then per event:
//	  kind u8 | gap uvarint | addr delta zigzag-varint (delta from previous
//	  addr in the stream, which compresses the strided accesses workloads
//	  produce)
//
// All integers are unsigned varints except the address delta, which is
// zigzag-encoded because strides run both directions.

const (
	codecMagic   = "BPTR"
	codecVersion = 1
)

// Encode writes the trace to w in the binary trace format.
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(codecVersion); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(t.Name)))
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(t.Streams)))
	for _, s := range t.Streams {
		writeUvarint(bw, uint64(len(s)))
		prev := uint64(0)
		for _, e := range s {
			if err := bw.WriteByte(byte(e.Kind)); err != nil {
				return err
			}
			writeUvarint(bw, uint64(e.Gap))
			delta := int64(uint64(e.Addr) - prev)
			writeVarint(bw, delta)
			prev = uint64(e.Addr)
		}
	}
	return bw.Flush()
}

// Decode reads a trace previously written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != codecVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	procs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if procs > 64 {
		return nil, fmt.Errorf("trace: %d processors exceeds the 64-processor limit", procs)
	}
	t := &Trace{Name: string(name), Streams: make([]Stream, procs)}
	for p := range t.Streams {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		s := make(Stream, 0, n)
		prev := uint64(0)
		for i := uint64(0); i < n; i++ {
			kb, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: proc %d event %d: %w", p, i, err)
			}
			if Kind(kb) >= numKinds {
				return nil, fmt.Errorf("trace: proc %d event %d: unknown kind %d", p, i, kb)
			}
			gap, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if gap > 1<<32-1 {
				return nil, fmt.Errorf("trace: proc %d event %d: gap %d overflows", p, i, gap)
			}
			delta, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			prev += uint64(delta)
			s = append(s, Event{Kind: Kind(kb), Gap: uint32(gap), Addr: memory.Addr(prev)})
		}
		t.Streams[p] = s
	}
	return t, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // flush reports the error
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // flush reports the error
}
