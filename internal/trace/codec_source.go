package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"busprefetch/internal/memory"
)

// DecodeSource reads an encoded trace and returns it as a restartable
// streaming Source instead of a materialized Trace. The whole input is
// read and structurally validated up front — every count, kind, gap
// and the CRC footer, with the same bounds as Decode — but the events
// themselves are decoded lazily, one pooled chunk at a time, as each
// iterator is drained. This is the ingestion bridge into the streaming
// hot path: a persisted BPTR trace replays without ever allocating its
// full event array.
func DecodeSource(r io.Reader) (Source, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading encoded trace: %w", err)
	}
	d := &byteCursor{buf: raw}
	if string(d.take(len(codecMagic))) != codecMagic {
		return nil, fmt.Errorf("trace: bad magic (not a BPTR trace)")
	}
	ver, ok := d.byte()
	if !ok {
		return nil, fmt.Errorf("trace: reading version: %w", io.ErrUnexpectedEOF)
	}
	if ver < 1 || ver > codecVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (this build reads versions 1-%d)", ver, codecVersion)
	}
	nameLen, ok := d.uvarint()
	if !ok {
		return nil, fmt.Errorf("trace: reading name length: %w", io.ErrUnexpectedEOF)
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("trace: name length %d exceeds the %d-byte limit", nameLen, maxNameLen)
	}
	name := d.take(int(nameLen))
	if name == nil {
		return nil, fmt.Errorf("trace: reading name: %w", io.ErrUnexpectedEOF)
	}
	procs, ok := d.uvarint()
	if !ok {
		return nil, fmt.Errorf("trace: reading processor count: %w", io.ErrUnexpectedEOF)
	}
	if procs > maxCodecProcs {
		return nil, fmt.Errorf("trace: %d processors exceeds the %d-processor limit", procs, maxCodecProcs)
	}
	src := &decodedSource{name: string(name), streams: make([]decodedStream, procs)}
	for p := range src.streams {
		n, ok := d.uvarint()
		if !ok {
			return nil, fmt.Errorf("trace: proc %d: reading event count: %w", p, io.ErrUnexpectedEOF)
		}
		if n > maxStreamEvents {
			return nil, fmt.Errorf("trace: proc %d declares %d events, limit %d", p, n, maxStreamEvents)
		}
		start := d.off
		// Validation walk: every event's kind, gap and delta are checked
		// here so lazy iteration can never fail mid-simulation.
		for i := uint64(0); i < n; i++ {
			kb, ok := d.byte()
			if !ok {
				return nil, fmt.Errorf("trace: proc %d event %d: reading kind: %w", p, i, io.ErrUnexpectedEOF)
			}
			if Kind(kb) >= numKinds {
				return nil, fmt.Errorf("trace: proc %d event %d: unknown kind %d", p, i, kb)
			}
			gap, ok := d.uvarint()
			if !ok {
				return nil, fmt.Errorf("trace: proc %d event %d: reading gap: %w", p, i, io.ErrUnexpectedEOF)
			}
			if gap > 1<<32-1 {
				return nil, fmt.Errorf("trace: proc %d event %d: gap %d overflows", p, i, gap)
			}
			if _, ok := d.varint(); !ok {
				return nil, fmt.Errorf("trace: proc %d event %d: reading address delta: %w", p, i, io.ErrUnexpectedEOF)
			}
		}
		src.streams[p] = decodedStream{data: raw[start:d.off], n: n}
	}
	if ver >= 2 {
		if len(raw)-d.off != 4 {
			if len(raw)-d.off < 4 {
				return nil, fmt.Errorf("trace: reading CRC footer: %w", io.ErrUnexpectedEOF)
			}
			return nil, fmt.Errorf("trace: trailing data after CRC footer")
		}
		want := binary.LittleEndian.Uint32(raw[d.off:])
		if got := crc32.ChecksumIEEE(raw[:d.off]); got != want {
			return nil, fmt.Errorf("trace: CRC mismatch: footer %08x, computed %08x (corrupt trace file)", want, got)
		}
	} else if d.off != len(raw) {
		return nil, fmt.Errorf("trace: %d trailing bytes after events", len(raw)-d.off)
	}
	return src, nil
}

// byteCursor is a bounds-checked reader over an in-memory buffer.
type byteCursor struct {
	buf []byte
	off int
}

func (d *byteCursor) take(n int) []byte {
	if n < 0 || d.off+n > len(d.buf) {
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *byteCursor) byte() (byte, bool) {
	if d.off >= len(d.buf) {
		return 0, false
	}
	b := d.buf[d.off]
	d.off++
	return b, true
}

func (d *byteCursor) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, false
	}
	d.off += n
	return v, true
}

func (d *byteCursor) varint() (int64, bool) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, false
	}
	d.off += n
	return v, true
}

// decodedSource streams events straight out of the validated encoded
// bytes. Restartable: each Events call walks the stream's byte range
// from the beginning.
type decodedSource struct {
	name    string
	streams []decodedStream
}

type decodedStream struct {
	data []byte
	n    uint64
}

func (s *decodedSource) Name() string { return s.name }

func (s *decodedSource) Procs() int { return len(s.streams) }

func (s *decodedSource) Events(proc int) Iterator {
	st := s.streams[proc]
	return &decodedIterator{d: byteCursor{buf: st.data}, rem: st.n}
}

type decodedIterator struct {
	d    byteCursor
	rem  uint64
	prev uint64
	buf  []Event
	done bool
}

func (it *decodedIterator) Next() ([]Event, error) {
	if it.buf != nil {
		putChunk(it.buf)
		it.buf = nil
	}
	if it.done || it.rem == 0 {
		it.done = true
		return nil, nil
	}
	buf := grabChunk()
	for it.rem > 0 && len(buf) < cap(buf) {
		// The validation walk in DecodeSource proved these bytes well
		// formed, so the decodes here cannot fail.
		kb, _ := it.d.byte()
		gap, _ := it.d.uvarint()
		delta, _ := it.d.varint()
		it.prev += uint64(delta)
		buf = append(buf, Event{Kind: Kind(kb), Gap: uint32(gap), Addr: memory.Addr(it.prev)})
		it.rem--
	}
	it.buf = buf
	return buf, nil
}

func (it *decodedIterator) Close() {
	if it.buf != nil {
		putChunk(it.buf)
		it.buf = nil
	}
	it.done = true
}
