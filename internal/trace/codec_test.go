package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"busprefetch/internal/memory"
)

func TestCodecRoundTrip(t *testing.T) {
	tr := &Trace{Name: "roundtrip", Streams: []Stream{
		{
			{Kind: Read, Addr: 0x1000, Gap: 3},
			{Kind: Write, Addr: 0x1004},
			{Kind: Prefetch, Addr: 0x8000_0000_0000, Gap: 1000000},
			{Kind: PrefetchExcl, Addr: 0x20},
			{Kind: Lock, Addr: 0x40},
			{Kind: Unlock, Addr: 0x40},
			{Kind: Barrier, Addr: 7},
		},
		{}, // empty stream survives
		{{Kind: Read, Addr: 0}},
	}}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "q", Streams: []Stream{make(Stream, 0, n)}}
		prev := memory.Addr(r.Uint64() % (1 << 40))
		for i := 0; i < int(n); i++ {
			// Random walk so deltas are signed.
			prev = memory.Addr(uint64(prev) + uint64(int64(r.Intn(4096)-2048)))
			tr.Streams[0] = append(tr.Streams[0], Event{
				Kind: Kind(r.Intn(int(numKinds))),
				Gap:  uint32(r.Intn(1 << 20)),
				Addr: prev,
			})
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE\x01\x00\x00"),
		"bad version": []byte("BPTR\x63\x00\x00"),
		"truncated":   []byte("BPTR\x01"),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Decode accepted", name)
		}
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	tr := &Trace{Name: "k", Streams: []Stream{{{Kind: Read, Addr: 4}}}}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The event's kind byte is right after magic(4)+ver(1)+namelen(1)+name(1)+procs(1)+evcount(1).
	raw[9] = 0xEE
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Error("Decode accepted an unknown event kind")
	}
}

func TestDecodeRejectsTooManyProcs(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("BPTR\x01")
	buf.WriteByte(0)  // empty name
	buf.WriteByte(65) // 65 processors
	if _, err := Decode(&buf); err == nil {
		t.Error("Decode accepted 65 processors")
	}
}

func TestCodecCompressesStrides(t *testing.T) {
	// Sequential word accesses should cost only a few bytes per event.
	tr := &Trace{Name: "s", Streams: []Stream{make(Stream, 0, 10000)}}
	for i := 0; i < 10000; i++ {
		tr.Streams[0] = append(tr.Streams[0], Event{Kind: Read, Gap: 3, Addr: memory.Addr(0x10000 + 4*i)})
	}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(buf.Len()) / 10000
	if perEvent > 4 {
		t.Errorf("stride encoding too fat: %.1f bytes/event", perEvent)
	}
}
