// Package trace defines the multiprocessor address-trace representation that
// flows through the whole pipeline: workload generators emit traces, the
// offline prefetch inserter annotates them, and the multiprocessor simulator
// replays them.
//
// A trace holds one event stream per processor. Each event carries a Gap —
// the number of ordinary (non-memory) instructions executed since the
// previous event — which models the paper's CPU timing of one cycle per
// instruction plus one cycle per data access. Synchronization shows up
// explicitly as Lock/Unlock/Barrier events so the simulator can keep the
// interleaving legal while the memory system perturbs timing (paper §3.3).
package trace
