package trace

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// encodeBytes is a test helper: Encode into memory or fail the test.
func encodeBytes(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSeedTrace is a small trace exercising every event kind, signed address
// deltas, and an empty stream.
func fuzzSeedTrace() *Trace {
	return &Trace{Name: "seed", Streams: []Stream{
		{
			{Kind: Read, Addr: 0x1000, Gap: 3},
			{Kind: Write, Addr: 0x0800}, // negative delta
			{Kind: Prefetch, Addr: 0x8000_0000},
			{Kind: PrefetchExcl, Addr: 0x20, Gap: 1 << 20},
			{Kind: Lock, Addr: 0x40},
			{Kind: Unlock, Addr: 0x40},
			{Kind: Barrier, Addr: 7},
		},
		{},
		{{Kind: Read, Addr: 0}},
	}}
}

// FuzzDecode feeds arbitrary bytes to Decode. Decode must never panic or
// allocate unboundedly, whatever the input; and anything it does accept must
// survive a re-encode/re-decode round trip unchanged.
func FuzzDecode(f *testing.F) {
	var valid bytes.Buffer
	if err := Encode(&valid, fuzzSeedTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2]) // truncated mid-stream
	f.Add([]byte("XXXX\x02\x00\x00\x00"))       // bad magic
	f.Add([]byte("BPTR\x63"))                   // unsupported version
	// A header declaring a huge event count with no bytes to back it.
	huge := []byte("BPTR\x02\x00\x01")
	huge = binary.AppendUvarint(huge, maxStreamEvents)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatalf("decoded trace does not re-encode: %v", err)
		}
		again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		if !reflect.DeepEqual(tr, again) {
			t.Errorf("round trip diverged:\n first %+v\nsecond %+v", tr, again)
		}
	})
}

// FuzzDecodeSource feeds arbitrary bytes to DecodeSource. It must never
// panic; it must accept exactly the inputs Decode accepts; and for accepted
// inputs the streamed events must equal the materialized trace event for
// event — the two decoders are one format.
func FuzzDecodeSource(f *testing.F) {
	var valid bytes.Buffer
	if err := Encode(&valid, fuzzSeedTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2]) // truncated mid-stream
	f.Add([]byte("XXXX\x02\x00\x00\x00"))       // bad magic
	f.Add([]byte("BPTR\x63"))                   // unsupported version
	huge := []byte("BPTR\x02\x00\x01")
	huge = binary.AppendUvarint(huge, maxStreamEvents)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, terr := Decode(bytes.NewReader(data))
		src, serr := DecodeSource(bytes.NewReader(data))
		if (terr == nil) != (serr == nil) {
			t.Fatalf("decoders disagree: Decode err %v, DecodeSource err %v", terr, serr)
		}
		if serr != nil {
			return
		}
		if src.Name() != tr.Name || src.Procs() != tr.Procs() {
			t.Fatalf("source header (%q, %d) != trace header (%q, %d)",
				src.Name(), src.Procs(), tr.Name, tr.Procs())
		}
		for p := 0; p < src.Procs(); p++ {
			var got Stream
			it := src.Events(p)
			for {
				chunk, err := it.Next()
				if err != nil {
					t.Fatalf("proc %d: streamed decode failed after validation: %v", p, err)
				}
				if chunk == nil {
					break
				}
				got = append(got, chunk...)
			}
			it.Close()
			if len(got) != len(tr.Streams[p]) {
				t.Fatalf("proc %d: streamed %d events, materialized %d", p, len(got), len(tr.Streams[p]))
			}
			for i := range got {
				if got[i] != tr.Streams[p][i] {
					t.Fatalf("proc %d event %d: streamed %+v, materialized %+v", p, i, got[i], tr.Streams[p][i])
				}
			}
		}
	})
}

// TestDecodeRejectsBitFlips flips a single bit at every byte offset of a valid
// version-2 file. Every flip must be rejected — by a structural check or, for
// bytes the structure cannot see, by the CRC footer — and none may panic.
// (Bit flips are applied inline rather than via check.Injector because
// internal/check imports this package.)
func TestDecodeRejectsBitFlips(t *testing.T) {
	data := encodeBytes(t, fuzzSeedTrace())
	for i := range data {
		for _, mask := range []byte{0x01, 0x80} {
			corrupt := bytes.Clone(data)
			corrupt[i] ^= mask
			if _, err := Decode(bytes.NewReader(corrupt)); err == nil {
				t.Errorf("flip of bit mask %#02x at byte %d went undetected", mask, i)
			}
		}
	}
}

// TestDecodeV1StillSupported hand-builds a version-1 stream (no CRC footer)
// and checks this build still reads it: old trace files stay replayable.
func TestDecodeV1StillSupported(t *testing.T) {
	var b []byte
	b = append(b, codecMagic...)
	b = append(b, 1) // version 1
	b = binary.AppendUvarint(b, 2)
	b = append(b, "v1"...)
	b = binary.AppendUvarint(b, 2) // two processors
	// Proc 0: Read 0x1000 gap 3, then Write 0x800 (negative delta).
	b = binary.AppendUvarint(b, 2)
	b = append(b, byte(Read))
	b = binary.AppendUvarint(b, 3)
	b = binary.AppendVarint(b, 0x1000)
	b = append(b, byte(Write))
	b = binary.AppendUvarint(b, 0)
	b = binary.AppendVarint(b, -0x800)
	// Proc 1: empty.
	b = binary.AppendUvarint(b, 0)

	got, err := Decode(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("version-1 stream rejected: %v", err)
	}
	want := &Trace{Name: "v1", Streams: []Stream{
		{
			{Kind: Read, Addr: 0x1000, Gap: 3},
			{Kind: Write, Addr: 0x800},
		},
		{},
	}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("decoded v1 trace:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	data := encodeBytes(t, fuzzSeedTrace())
	data = append(data, 0x00)
	_, err := Decode(bytes.NewReader(data))
	if err == nil {
		t.Fatal("Decode accepted trailing data after the CRC footer")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("trailing")) {
		t.Errorf("error %q does not mention trailing data", err)
	}
}

// TestDecodeHugeDeclaredCountNoOOM checks both sides of the event-count caps:
// counts over the hard limit are rejected outright, and a large-but-legal
// declared count backed by a tiny file fails on the missing bytes without
// first allocating event storage for the declared size.
func TestDecodeHugeDeclaredCountNoOOM(t *testing.T) {
	header := func(events uint64) []byte {
		var b []byte
		b = append(b, codecMagic...)
		b = append(b, 2)               // version
		b = binary.AppendUvarint(b, 0) // empty name
		b = binary.AppendUvarint(b, 1) // one processor
		b = binary.AppendUvarint(b, events)
		return b
	}
	if _, err := Decode(bytes.NewReader(header(maxStreamEvents + 1))); err == nil {
		t.Error("Decode accepted an event count over the hard limit")
	}
	// 2^27 events would be gigabytes of Stream if the declared count were
	// trusted; the prealloc cap keeps this to at most preallocEvents entries
	// before the read fails on the empty body. -test.timeout and the test
	// runner's memory both stay comfortable if the cap works.
	if _, err := Decode(bytes.NewReader(header(1 << 27))); err == nil {
		t.Error("Decode accepted a huge declared count with no body")
	}
}

// TestCodecV2FooterPresent pins the on-disk layout: a version-2 file ends in
// exactly four CRC bytes after the event data, and re-encoding is
// deterministic.
func TestCodecV2FooterPresent(t *testing.T) {
	tr := &Trace{Name: "f", Streams: []Stream{{{Kind: Read, Addr: 0x40}}}}
	a := encodeBytes(t, tr)
	b := encodeBytes(t, tr)
	if !bytes.Equal(a, b) {
		t.Error("Encode is not deterministic")
	}
	if a[4] != 2 {
		t.Errorf("version byte = %d, want 2", a[4])
	}
	// Chopping the 4-byte footer must break decoding (footer is mandatory).
	if _, err := Decode(bytes.NewReader(a[:len(a)-4])); err == nil {
		t.Error("Decode accepted a v2 stream with the footer removed")
	}
	// Corrupting only the footer must be caught as a CRC mismatch.
	c := bytes.Clone(a)
	c[len(c)-1] ^= 0xFF
	_, err := Decode(bytes.NewReader(c))
	if err == nil {
		t.Fatal("Decode accepted a corrupted CRC footer")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("CRC mismatch")) {
		t.Errorf("error %q is not a CRC mismatch", err)
	}
}
