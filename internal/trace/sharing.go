package trace

import (
	"sort"

	"busprefetch/internal/memory"
)

// LineUse summarizes how one cache line is used across the whole trace.
type LineUse struct {
	// Readers and Writers are bitmasks of processor indices (processor p is
	// bit p). Traces in this repository never exceed 64 processors.
	Readers uint64
	Writers uint64
}

// SharedRead reports whether at least two processors access the line and
// nobody writes it.
func (u LineUse) SharedRead() bool {
	return u.Writers == 0 && popcount(u.Readers) >= 2
}

// WriteShared reports whether the line is written by at least one processor
// and accessed by at least two (the paper's write-shared data, the PWS
// strategy's target class).
func (u LineUse) WriteShared() bool {
	return u.Writers != 0 && popcount(u.Readers|u.Writers) >= 2
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// SharingProfile maps each referenced cache line to its usage summary.
type SharingProfile struct {
	geom  memory.Geometry
	lines map[memory.Addr]LineUse
}

// AnalyzeSharing scans every demand reference in the trace and classifies
// each touched cache line. Prefetch events are ignored: sharing is a property
// of the program, and this analysis also runs before prefetch insertion to
// identify the write-shared lines PWS should target.
func AnalyzeSharing(t *Trace, geom memory.Geometry) *SharingProfile {
	p := &SharingProfile{geom: geom, lines: make(map[memory.Addr]LineUse)}
	for proc, s := range t.Streams {
		bit := uint64(1) << uint(proc)
		for _, e := range s {
			switch e.Kind {
			case Read:
				la := geom.LineAddr(e.Addr)
				u := p.lines[la]
				u.Readers |= bit
				p.lines[la] = u
			case Write:
				la := geom.LineAddr(e.Addr)
				u := p.lines[la]
				u.Readers |= bit
				u.Writers |= bit
				p.lines[la] = u
			case Lock, Unlock:
				// Lock words are write-shared by construction: the
				// acquire/release perform read-modify-writes.
				la := geom.LineAddr(e.Addr)
				u := p.lines[la]
				u.Readers |= bit
				u.Writers |= bit
				p.lines[la] = u
			}
		}
	}
	return p
}

// Use returns the usage summary for the line containing a.
func (p *SharingProfile) Use(a memory.Addr) LineUse {
	return p.lines[p.geom.LineAddr(a)]
}

// WriteShared reports whether the line containing a is write-shared.
func (p *SharingProfile) WriteShared(a memory.Addr) bool {
	return p.Use(a).WriteShared()
}

// Counts returns the number of distinct lines that are private, read-shared
// and write-shared, in that order.
func (p *SharingProfile) Counts() (private, readShared, writeShared int) {
	for _, u := range p.lines {
		switch {
		case u.WriteShared():
			writeShared++
		case u.SharedRead():
			readShared++
		default:
			private++
		}
	}
	return
}

// TotalLines returns how many distinct cache lines the trace touches.
func (p *SharingProfile) TotalLines() int { return len(p.lines) }

// WriteSharedLines returns the sorted addresses of all write-shared lines.
func (p *SharingProfile) WriteSharedLines() []memory.Addr {
	var out []memory.Addr
	for la, u := range p.lines {
		if u.WriteShared() {
			out = append(out, la)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats summarizes a trace for reports and for the paper's Table 1.
type Stats struct {
	Procs       int
	Events      int
	DemandRefs  int
	Reads       int
	Writes      int
	Prefetches  int
	Locks       int
	Barriers    int
	TouchedData int // bytes of distinct cache lines referenced
	SharedData  int // bytes of distinct cache lines referenced by >=2 procs
	WriteShared int // bytes of distinct write-shared cache lines
}

// Summarize computes whole-trace statistics using geom for line accounting.
func Summarize(t *Trace, geom memory.Geometry) Stats {
	st := Stats{Procs: t.Procs()}
	prof := AnalyzeSharing(t, geom)
	for _, s := range t.Streams {
		st.Events += len(s)
		for _, e := range s {
			switch e.Kind {
			case Read:
				st.Reads++
			case Write:
				st.Writes++
			case Prefetch, PrefetchExcl:
				st.Prefetches++
			case Lock:
				st.Locks++
			case Barrier:
				st.Barriers++
			}
		}
	}
	st.DemandRefs = st.Reads + st.Writes
	st.Barriers /= max(1, st.Procs) // count barrier episodes, not arrivals
	st.TouchedData = prof.TotalLines() * geom.LineSize
	for _, u := range prof.lines {
		if popcount(u.Readers|u.Writers) >= 2 {
			st.SharedData += geom.LineSize
		}
		if u.WriteShared() {
			st.WriteShared += geom.LineSize
		}
	}
	return st
}
