package trace

import (
	"fmt"
	"sync"
)

// Source is a pull-based stream of trace events, one iterator per
// processor. It is the fusion seam between workload generators, the
// prefetch annotator and the simulator: events flow straight from the
// producer to the consumer in pooled chunks, with no materialized
// trace in between.
//
// A Source must be restartable: Events may be called any number of
// times for the same processor, and each call returns a fresh iterator
// positioned at the beginning of that processor's stream. Iterators
// for different processors may be drained concurrently.
type Source interface {
	// Name identifies the workload that produces the events.
	Name() string
	// Procs returns the number of processor streams.
	Procs() int
	// Events returns a fresh iterator over processor proc's stream.
	Events(proc int) Iterator
}

// Iterator yields one processor's events in chunks. The returned chunk
// is only valid until the next call to Next or Close — consumers must
// finish with (or copy) a chunk before asking for the next one. Next
// returns a nil chunk at end of stream, with a non-nil error if the
// stream failed (for example a corrupt encoded trace). Close releases
// the iterator's resources and stops any producer goroutine; it is
// safe to call more than once, and must be called when abandoning an
// iterator before end of stream.
type Iterator interface {
	Next() ([]Event, error)
	Close()
}

// chunkEvents is the number of events per pooled chunk: 4096 events ≈
// 64 KiB, large enough to amortize per-chunk overheads to fractions of
// a nanosecond per event, small enough to stay cache-resident.
const chunkEvents = 4096

// pipeDepth bounds the number of chunks in flight between a producer
// goroutine and its consumer.
const pipeDepth = 4

// chunkPool recycles event chunks across iterators and cells so the
// steady-state generate path allocates nothing.
var chunkPool = sync.Pool{
	New: func() any { return make([]Event, 0, chunkEvents) },
}

func grabChunk() []Event { return chunkPool.Get().([]Event)[:0] }

func putChunk(c []Event) {
	if cap(c) == chunkEvents {
		chunkPool.Put(c[:0])
	}
}

// pipeStop unwinds a producer goroutine when its consumer closes the
// iterator early.
type pipeStop struct{}

// pipe is an Iterator fed by a producer goroutine through a bounded
// channel of pooled chunks. Consumed chunks are recycled back to the
// producer through the free channel, so a drained stream reuses the
// same pipeDepth+1 buffers end to end.
type pipe struct {
	ch     chan []Event
	free   chan []Event
	stop   chan struct{}
	errc   chan error
	cur    []Event
	err    error
	done   bool
	closed bool
}

// NewPipe returns an Iterator whose events are produced by produce,
// run in its own goroutine. produce fills chunks and hands them
// downstream via flush, which delivers buf (if non-empty) and returns
// an empty buffer to keep filling; produce must flush its final
// partial chunk before returning. The flush function blocks when the
// consumer falls behind, so producer and consumer overlap without
// unbounded buffering. If produce returns an error, Next reports it
// after the chunks flushed so far.
func NewPipe(produce func(flush func([]Event) []Event) error) Iterator {
	p := &pipe{
		ch:   make(chan []Event, pipeDepth),
		free: make(chan []Event, pipeDepth+1),
		stop: make(chan struct{}),
		errc: make(chan error, 1),
	}
	go p.run(produce)
	return p
}

func (p *pipe) run(produce func(flush func([]Event) []Event) error) {
	defer close(p.ch)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(pipeStop); ok {
				p.errc <- nil
				return
			}
			panic(r)
		}
	}()
	p.errc <- produce(p.flush)
}

// flush sends a filled chunk downstream and returns an empty buffer,
// recycled from the consumer when one is available. It panics with
// pipeStop when the consumer has closed the pipe, unwinding the
// producer through NewPipe's recover.
func (p *pipe) flush(buf []Event) []Event {
	if len(buf) > 0 {
		select {
		case p.ch <- buf:
		case <-p.stop:
			panic(pipeStop{})
		}
	}
	select {
	case next := <-p.free:
		return next[:0]
	default:
		return grabChunk()
	}
}

func (p *pipe) Next() ([]Event, error) {
	if p.done {
		return nil, p.err
	}
	if p.cur != nil {
		select {
		case p.free <- p.cur[:0]:
		default:
			putChunk(p.cur)
		}
		p.cur = nil
	}
	buf, ok := <-p.ch
	if !ok {
		p.done = true
		p.err = <-p.errc
		return nil, p.err
	}
	p.cur = buf
	return buf, nil
}

func (p *pipe) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.stop)
	// Drain so a producer blocked on a full channel sees stop and
	// exits; recycle everything it had in flight.
	for buf := range p.ch {
		putChunk(buf)
	}
	if p.cur != nil {
		putChunk(p.cur)
		p.cur = nil
	}
	for {
		select {
		case buf := <-p.free:
			putChunk(buf)
		default:
			p.done = true
			return
		}
	}
}

// sliceSource adapts a materialized Trace to the Source interface.
// Each iterator yields the processor's whole stream as a single chunk;
// the chunk aliases the trace, so the usual validity contract applies.
type sliceSource struct{ t *Trace }

// FromTrace returns a Source backed by a materialized trace. The
// source aliases t; the caller must not mutate t while iterating.
func FromTrace(t *Trace) Source { return sliceSource{t} }

func (s sliceSource) Name() string { return s.t.Name }

func (s sliceSource) Procs() int { return s.t.Procs() }

func (s sliceSource) Events(proc int) Iterator {
	return &sliceIterator{s: s.t.Streams[proc]}
}

type sliceIterator struct {
	s    Stream
	done bool
}

func (it *sliceIterator) Next() ([]Event, error) {
	if it.done {
		return nil, nil
	}
	it.done = true
	if len(it.s) == 0 {
		return nil, nil
	}
	return it.s, nil
}

func (it *sliceIterator) Close() { it.done = true }

// Materialize drains every processor stream of src into a Trace. It is
// the recording bridge from the streaming world back to the
// materialized one (persistence via Encode, APIs that want a *Trace).
func Materialize(src Source) (*Trace, error) {
	t := &Trace{Name: src.Name(), Streams: make([]Stream, src.Procs())}
	for p := range t.Streams {
		s, err := DrainProc(src, p)
		if err != nil {
			return nil, fmt.Errorf("trace: materialize %s proc %d: %w", src.Name(), p, err)
		}
		t.Streams[p] = s
	}
	return t, nil
}

// DrainProc collects one processor's stream of src into a slice.
func DrainProc(src Source, proc int) (Stream, error) {
	it := src.Events(proc)
	defer it.Close()
	var s Stream
	for {
		chunk, err := it.Next()
		if err != nil {
			return nil, err
		}
		if chunk == nil {
			return s, nil
		}
		s = append(s, chunk...)
	}
}

// CountEvents drains src and returns the total event and demand-
// reference counts across all processors, without materializing
// anything.
func CountEvents(src Source) (events, demand int, err error) {
	for p := 0; p < src.Procs(); p++ {
		it := src.Events(p)
		for {
			chunk, cerr := it.Next()
			if cerr != nil {
				it.Close()
				return 0, 0, cerr
			}
			if chunk == nil {
				break
			}
			events += len(chunk)
			for _, e := range chunk {
				if e.Kind.IsDemand() {
					demand++
				}
			}
		}
		it.Close()
	}
	return events, demand, nil
}
