package trace

import (
	"busprefetch/internal/memory"
)

// AnalyzeSharingSource is AnalyzeSharing over a streaming Source: it
// drains a fresh iterator per processor and classifies each touched
// cache line, without materializing the trace. The result is identical
// to AnalyzeSharing on the materialized trace — line classification
// only ORs per-processor bits, so it is independent of event order.
func AnalyzeSharingSource(src Source, geom memory.Geometry) (*SharingProfile, error) {
	p := &SharingProfile{geom: geom, lines: make(map[memory.Addr]LineUse)}
	for proc := 0; proc < src.Procs(); proc++ {
		bit := uint64(1) << uint(proc)
		it := src.Events(proc)
		for {
			chunk, err := it.Next()
			if err != nil {
				it.Close()
				return nil, err
			}
			if chunk == nil {
				break
			}
			for _, e := range chunk {
				switch e.Kind {
				case Read:
					la := geom.LineAddr(e.Addr)
					u := p.lines[la]
					u.Readers |= bit
					p.lines[la] = u
				case Write, Lock, Unlock:
					la := geom.LineAddr(e.Addr)
					u := p.lines[la]
					u.Readers |= bit
					u.Writers |= bit
					p.lines[la] = u
				}
			}
		}
		it.Close()
	}
	return p, nil
}

// SummarizeSource computes the same whole-trace statistics as Summarize
// from a streaming Source in a single drain per processor, fusing the
// event counting and the sharing analysis.
func SummarizeSource(src Source, geom memory.Geometry) (Stats, error) {
	st := Stats{Procs: src.Procs()}
	prof := &SharingProfile{geom: geom, lines: make(map[memory.Addr]LineUse)}
	for proc := 0; proc < src.Procs(); proc++ {
		bit := uint64(1) << uint(proc)
		it := src.Events(proc)
		for {
			chunk, err := it.Next()
			if err != nil {
				it.Close()
				return Stats{}, err
			}
			if chunk == nil {
				break
			}
			st.Events += len(chunk)
			for _, e := range chunk {
				switch e.Kind {
				case Read:
					st.Reads++
					la := geom.LineAddr(e.Addr)
					u := prof.lines[la]
					u.Readers |= bit
					prof.lines[la] = u
				case Write:
					st.Writes++
					la := geom.LineAddr(e.Addr)
					u := prof.lines[la]
					u.Readers |= bit
					u.Writers |= bit
					prof.lines[la] = u
				case Prefetch, PrefetchExcl:
					st.Prefetches++
				case Lock:
					st.Locks++
					la := geom.LineAddr(e.Addr)
					u := prof.lines[la]
					u.Readers |= bit
					u.Writers |= bit
					prof.lines[la] = u
				case Unlock:
					la := geom.LineAddr(e.Addr)
					u := prof.lines[la]
					u.Readers |= bit
					u.Writers |= bit
					prof.lines[la] = u
				case Barrier:
					st.Barriers++
				}
			}
		}
		it.Close()
	}
	st.DemandRefs = st.Reads + st.Writes
	st.Barriers /= max(1, st.Procs) // count barrier episodes, not arrivals
	st.TouchedData = prof.TotalLines() * geom.LineSize
	for _, u := range prof.lines {
		if popcount(u.Readers|u.Writers) >= 2 {
			st.SharedData += geom.LineSize
		}
		if u.WriteShared() {
			st.WriteShared += geom.LineSize
		}
	}
	return st, nil
}
